package spdy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Control frame types (SPDY/3 §2.6).
const (
	TypeSynStream    = 1
	TypeSynReply     = 2
	TypeRstStream    = 3
	TypeSettings     = 4
	TypePing         = 6
	TypeGoaway       = 7
	TypeHeaders      = 8
	TypeWindowUpdate = 9
)

// Frame flags.
const (
	FlagFin            = 0x01
	FlagUnidirectional = 0x02
)

// RST_STREAM and GOAWAY status codes (subset).
const (
	StatusProtocolError       = 1
	StatusInvalidStream       = 2
	StatusRefusedStream       = 3
	StatusCancel              = 5
	StatusInternalError       = 6
	StatusFlowControlErr      = 7
	StatusStreamInUse         = 8
	StatusStreamAlreadyClosed = 9
)

// Priority is a SPDY/3 stream priority: 0 (highest) through 7 (lowest).
type Priority uint8

// MaxPriority is the lowest-urgency priority value.
const MaxPriority Priority = 7

// Frame is any SPDY frame.
type Frame interface {
	frameType() int
}

// SynStream opens a stream (a request, when client-initiated).
type SynStream struct {
	StreamID uint32
	AssocID  uint32
	Priority Priority
	Fin      bool
	Headers  Headers
}

// SynReply answers a SynStream (a response head).
type SynReply struct {
	StreamID uint32
	Fin      bool
	Headers  Headers
}

// RstStream abnormally terminates a stream.
type RstStream struct {
	StreamID uint32
	Status   uint32
}

// Setting is one SETTINGS entry.
type Setting struct {
	Flags uint8
	ID    uint32 // 24 bits
	Value uint32
}

// SettingsFrame carries session configuration.
type SettingsFrame struct {
	Settings []Setting
}

// Ping measures liveness/RTT; the receiver echoes it.
type Ping struct {
	ID uint32
}

// Goaway initiates session shutdown.
type Goaway struct {
	LastStreamID uint32
	Status       uint32
}

// HeadersFrame carries additional headers for an open stream.
type HeadersFrame struct {
	StreamID uint32
	Fin      bool
	Headers  Headers
}

// WindowUpdate grows the flow-control window of a stream.
type WindowUpdate struct {
	StreamID uint32
	Delta    uint32
}

// DataFrame carries stream payload bytes.
type DataFrame struct {
	StreamID uint32
	Fin      bool
	Data     []byte
}

func (SynStream) frameType() int     { return TypeSynStream }
func (SynReply) frameType() int      { return TypeSynReply }
func (RstStream) frameType() int     { return TypeRstStream }
func (SettingsFrame) frameType() int { return TypeSettings }
func (Ping) frameType() int          { return TypePing }
func (Goaway) frameType() int        { return TypeGoaway }
func (HeadersFrame) frameType() int  { return TypeHeaders }
func (WindowUpdate) frameType() int  { return TypeWindowUpdate }
func (DataFrame) frameType() int     { return -1 }

// ErrFrameTooLarge guards against absurd length fields.
var ErrFrameTooLarge = errors.New("spdy: frame exceeds maximum length")

// maxFrameLen bounds accepted frame payloads (2^24-1 is the wire limit;
// we cap lower to bound allocation).
const maxFrameLen = 1 << 22

// Framer reads and writes SPDY frames on a byte stream, holding the
// session's shared header compression contexts. A Framer is not safe for
// concurrent use; sessions serialize through their write loop.
type Framer struct {
	w io.Writer
	r io.Reader

	compressTx   *headerCompressor
	decompressRx *headerDecompressor

	// BytesWritten / BytesRead account wire volume for tests and the
	// simulator's size oracle.
	BytesWritten int64
	BytesRead    int64
}

// NewFramer creates a framer over rw.
func NewFramer(rw io.ReadWriter) *Framer {
	return &Framer{
		w:            rw,
		r:            rw,
		compressTx:   newHeaderCompressor(),
		decompressRx: newHeaderDecompressor(),
	}
}

// ErrFramerReleased is returned by ReadFrame/WriteFrame after Release.
var ErrFramerReleased = errors.New("spdy: framer used after Release")

// Release returns the framer's zlib contexts to the shared pools, so
// short-lived sessions (one per page load in a live proxy) stop paying a
// fresh deflate window + dictionary allocation each. The framer is dead
// afterwards: ReadFrame and WriteFrame return ErrFramerReleased. Release
// is idempotent but, like the rest of Framer, not concurrency-safe —
// callers must quiesce both loops first.
func (f *Framer) Release() {
	if f.compressTx != nil {
		f.compressTx.release()
		f.compressTx = nil
	}
	if f.decompressRx != nil {
		f.decompressRx.release()
		f.decompressRx = nil
	}
}

func (f *Framer) writeAll(b []byte) error {
	n, err := f.w.Write(b)
	f.BytesWritten += int64(n)
	return err
}

func controlHeader(frameType int, flags uint8, length int) []byte {
	var h [8]byte
	binary.BigEndian.PutUint16(h[0:2], 0x8000|Version)
	binary.BigEndian.PutUint16(h[2:4], uint16(frameType))
	h[4] = flags
	h[5] = byte(length >> 16)
	h[6] = byte(length >> 8)
	h[7] = byte(length)
	return h[:]
}

// WriteFrame serializes one frame.
func (f *Framer) WriteFrame(fr Frame) error {
	if f.compressTx == nil {
		return ErrFramerReleased
	}
	switch fr := fr.(type) {
	case DataFrame:
		return f.writeData(fr)
	case *DataFrame:
		return f.writeData(*fr)
	case SynStream:
		return f.writeSynStream(fr)
	case *SynStream:
		return f.writeSynStream(*fr)
	case SynReply:
		return f.writeSynReply(fr)
	case *SynReply:
		return f.writeSynReply(*fr)
	case RstStream:
		body := make([]byte, 8)
		binary.BigEndian.PutUint32(body[0:4], fr.StreamID&0x7fffffff)
		binary.BigEndian.PutUint32(body[4:8], fr.Status)
		if err := f.writeAll(controlHeader(TypeRstStream, 0, len(body))); err != nil {
			return err
		}
		return f.writeAll(body)
	case SettingsFrame:
		body := make([]byte, 4+8*len(fr.Settings))
		binary.BigEndian.PutUint32(body[0:4], uint32(len(fr.Settings)))
		for i, s := range fr.Settings {
			off := 4 + 8*i
			body[off] = s.Flags
			body[off+1] = byte(s.ID >> 16)
			body[off+2] = byte(s.ID >> 8)
			body[off+3] = byte(s.ID)
			binary.BigEndian.PutUint32(body[off+4:off+8], s.Value)
		}
		if err := f.writeAll(controlHeader(TypeSettings, 0, len(body))); err != nil {
			return err
		}
		return f.writeAll(body)
	case Ping:
		body := make([]byte, 4)
		binary.BigEndian.PutUint32(body, fr.ID)
		if err := f.writeAll(controlHeader(TypePing, 0, len(body))); err != nil {
			return err
		}
		return f.writeAll(body)
	case Goaway:
		body := make([]byte, 8)
		binary.BigEndian.PutUint32(body[0:4], fr.LastStreamID&0x7fffffff)
		binary.BigEndian.PutUint32(body[4:8], fr.Status)
		if err := f.writeAll(controlHeader(TypeGoaway, 0, len(body))); err != nil {
			return err
		}
		return f.writeAll(body)
	case HeadersFrame:
		block := f.compressTx.Compress(fr.Headers)
		body := make([]byte, 4, 4+len(block))
		binary.BigEndian.PutUint32(body[0:4], fr.StreamID&0x7fffffff)
		body = append(body, block...)
		var flags uint8
		if fr.Fin {
			flags |= FlagFin
		}
		if err := f.writeAll(controlHeader(TypeHeaders, flags, len(body))); err != nil {
			return err
		}
		return f.writeAll(body)
	case WindowUpdate:
		body := make([]byte, 8)
		binary.BigEndian.PutUint32(body[0:4], fr.StreamID&0x7fffffff)
		binary.BigEndian.PutUint32(body[4:8], fr.Delta&0x7fffffff)
		if err := f.writeAll(controlHeader(TypeWindowUpdate, 0, len(body))); err != nil {
			return err
		}
		return f.writeAll(body)
	default:
		return fmt.Errorf("spdy: cannot write frame type %T", fr)
	}
}

func (f *Framer) writeData(fr DataFrame) error {
	if len(fr.Data) > maxFrameLen {
		return ErrFrameTooLarge
	}
	var h [8]byte
	binary.BigEndian.PutUint32(h[0:4], fr.StreamID&0x7fffffff)
	if fr.Fin {
		h[4] = FlagFin
	}
	h[5] = byte(len(fr.Data) >> 16)
	h[6] = byte(len(fr.Data) >> 8)
	h[7] = byte(len(fr.Data))
	if err := f.writeAll(h[:]); err != nil {
		return err
	}
	return f.writeAll(fr.Data)
}

func (f *Framer) writeSynStream(fr SynStream) error {
	block := f.compressTx.Compress(fr.Headers)
	body := make([]byte, 10, 10+len(block))
	binary.BigEndian.PutUint32(body[0:4], fr.StreamID&0x7fffffff)
	binary.BigEndian.PutUint32(body[4:8], fr.AssocID&0x7fffffff)
	body[8] = byte(fr.Priority) << 5
	body[9] = 0 // credential slot
	body = append(body, block...)
	var flags uint8
	if fr.Fin {
		flags |= FlagFin
	}
	if err := f.writeAll(controlHeader(TypeSynStream, flags, len(body))); err != nil {
		return err
	}
	return f.writeAll(body)
}

func (f *Framer) writeSynReply(fr SynReply) error {
	block := f.compressTx.Compress(fr.Headers)
	body := make([]byte, 4, 4+len(block))
	binary.BigEndian.PutUint32(body[0:4], fr.StreamID&0x7fffffff)
	body = append(body, block...)
	var flags uint8
	if fr.Fin {
		flags |= FlagFin
	}
	if err := f.writeAll(controlHeader(TypeSynReply, flags, len(body))); err != nil {
		return err
	}
	return f.writeAll(body)
}

// ReadFrame reads and parses the next frame from the stream.
func (f *Framer) ReadFrame() (Frame, error) {
	if f.decompressRx == nil {
		return nil, ErrFramerReleased
	}
	var head [8]byte
	if _, err := io.ReadFull(f.r, head[:]); err != nil {
		return nil, err
	}
	f.BytesRead += 8
	length := int(head[5])<<16 | int(head[6])<<8 | int(head[7])
	if length > maxFrameLen {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f.r, payload); err != nil {
		return nil, fmt.Errorf("spdy: short frame payload: %w", err)
	}
	f.BytesRead += int64(length)
	flags := head[4]

	if head[0]&0x80 == 0 {
		// Data frame.
		streamID := binary.BigEndian.Uint32(head[0:4]) & 0x7fffffff
		return DataFrame{StreamID: streamID, Fin: flags&FlagFin != 0, Data: payload}, nil
	}

	version := binary.BigEndian.Uint16(head[0:2]) & 0x7fff
	if version != Version {
		return nil, fmt.Errorf("spdy: unsupported version %d", version)
	}
	frameType := int(binary.BigEndian.Uint16(head[2:4]))

	switch frameType {
	case TypeSynStream:
		if len(payload) < 10 {
			return nil, errors.New("spdy: short SYN_STREAM")
		}
		h, err := f.decompressRx.Decompress(payload[10:])
		if err != nil {
			return nil, err
		}
		return SynStream{
			StreamID: binary.BigEndian.Uint32(payload[0:4]) & 0x7fffffff,
			AssocID:  binary.BigEndian.Uint32(payload[4:8]) & 0x7fffffff,
			Priority: Priority(payload[8] >> 5),
			Fin:      flags&FlagFin != 0,
			Headers:  h,
		}, nil
	case TypeSynReply:
		if len(payload) < 4 {
			return nil, errors.New("spdy: short SYN_REPLY")
		}
		h, err := f.decompressRx.Decompress(payload[4:])
		if err != nil {
			return nil, err
		}
		return SynReply{
			StreamID: binary.BigEndian.Uint32(payload[0:4]) & 0x7fffffff,
			Fin:      flags&FlagFin != 0,
			Headers:  h,
		}, nil
	case TypeRstStream:
		if len(payload) < 8 {
			return nil, errors.New("spdy: short RST_STREAM")
		}
		return RstStream{
			StreamID: binary.BigEndian.Uint32(payload[0:4]) & 0x7fffffff,
			Status:   binary.BigEndian.Uint32(payload[4:8]),
		}, nil
	case TypeSettings:
		if len(payload) < 4 {
			return nil, errors.New("spdy: short SETTINGS")
		}
		n := binary.BigEndian.Uint32(payload[0:4])
		if int(n)*8+4 > len(payload) {
			return nil, errors.New("spdy: SETTINGS count overruns payload")
		}
		sf := SettingsFrame{Settings: make([]Setting, n)}
		for i := 0; i < int(n); i++ {
			off := 4 + 8*i
			sf.Settings[i] = Setting{
				Flags: payload[off],
				ID:    uint32(payload[off+1])<<16 | uint32(payload[off+2])<<8 | uint32(payload[off+3]),
				Value: binary.BigEndian.Uint32(payload[off+4 : off+8]),
			}
		}
		return sf, nil
	case TypePing:
		if len(payload) < 4 {
			return nil, errors.New("spdy: short PING")
		}
		return Ping{ID: binary.BigEndian.Uint32(payload[0:4])}, nil
	case TypeGoaway:
		if len(payload) < 8 {
			return nil, errors.New("spdy: short GOAWAY")
		}
		return Goaway{
			LastStreamID: binary.BigEndian.Uint32(payload[0:4]) & 0x7fffffff,
			Status:       binary.BigEndian.Uint32(payload[4:8]),
		}, nil
	case TypeHeaders:
		if len(payload) < 4 {
			return nil, errors.New("spdy: short HEADERS")
		}
		h, err := f.decompressRx.Decompress(payload[4:])
		if err != nil {
			return nil, err
		}
		return HeadersFrame{
			StreamID: binary.BigEndian.Uint32(payload[0:4]) & 0x7fffffff,
			Fin:      flags&FlagFin != 0,
			Headers:  h,
		}, nil
	case TypeWindowUpdate:
		if len(payload) < 8 {
			return nil, errors.New("spdy: short WINDOW_UPDATE")
		}
		return WindowUpdate{
			StreamID: binary.BigEndian.Uint32(payload[0:4]) & 0x7fffffff,
			Delta:    binary.BigEndian.Uint32(payload[4:8]) & 0x7fffffff,
		}, nil
	default:
		return nil, fmt.Errorf("spdy: unknown control frame type %d", frameType)
	}
}
