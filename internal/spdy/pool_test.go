package spdy

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// sessionFrames is a representative header-bearing frame sequence that
// exercises the shared compression context across several blocks.
func sessionFrames() []Frame {
	return []Frame{
		SynStream{StreamID: 1, Priority: 2, Fin: true,
			Headers: RequestHeaders("GET", "http", "pool.example.com", "/", "spdier-test")},
		SynReply{StreamID: 1,
			Headers: ResponseHeaders("200 OK", "text/html", 1234)},
		SynStream{StreamID: 3, Priority: 0, Fin: true,
			Headers: RequestHeaders("GET", "http", "pool.example.com", "/logo.png", "spdier-test")},
		HeadersFrame{StreamID: 3, Fin: true,
			Headers: Headers{"x-trailer": "done"}},
	}
}

func writeSession(t *testing.T) (*Framer, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	tx := NewFramer(&buf)
	for _, fr := range sessionFrames() {
		if err := tx.WriteFrame(fr); err != nil {
			t.Fatalf("write %T: %v", fr, err)
		}
	}
	return tx, &buf
}

// TestPooledFramerByteIdentity proves a framer built from recycled zlib
// contexts emits the identical wire bytes, and decodes them to identical
// frames, as one whose contexts were freshly constructed.
func TestPooledFramerByteIdentity(t *testing.T) {
	tx1, buf1 := writeSession(t)
	rx1 := NewFramer(bytes.NewBuffer(buf1.Bytes()))
	want := make([]Frame, 0, 4)
	for range sessionFrames() {
		fr, err := rx1.ReadFrame()
		if err != nil {
			t.Fatalf("first read: %v", err)
		}
		want = append(want, fr)
	}
	// Recycle both sides' contexts, then run the same session again. The
	// pool hands back warm contexts whose Reset state must be
	// indistinguishable from new.
	tx1.Release()
	rx1.Release()

	tx2, buf2 := writeSession(t)
	defer tx2.Release()
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("pooled compressor output differs from fresh: %d vs %d bytes", buf1.Len(), buf2.Len())
	}
	rx2 := NewFramer(bytes.NewBuffer(buf2.Bytes()))
	defer rx2.Release()
	for i := range want {
		fr, err := rx2.ReadFrame()
		if err != nil {
			t.Fatalf("pooled read %d: %v", i, err)
		}
		if !reflect.DeepEqual(fr, want[i]) {
			t.Fatalf("pooled frame %d mismatch:\n got %+v\nwant %+v", i, fr, want[i])
		}
	}
}

func TestFramerUseAfterRelease(t *testing.T) {
	var buf bytes.Buffer
	f := NewFramer(&buf)
	if err := f.WriteFrame(Ping{ID: 1}); err != nil {
		t.Fatalf("write before release: %v", err)
	}
	f.Release()
	f.Release() // idempotent
	if err := f.WriteFrame(Ping{ID: 2}); !errors.Is(err, ErrFramerReleased) {
		t.Fatalf("WriteFrame after Release: got %v, want ErrFramerReleased", err)
	}
	if _, err := f.ReadFrame(); !errors.Is(err, ErrFramerReleased) {
		t.Fatalf("ReadFrame after Release: got %v, want ErrFramerReleased", err)
	}
}
