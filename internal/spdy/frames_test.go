package spdy

import (
	"bytes"
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, frames ...Frame) []Frame {
	t.Helper()
	var buf bytes.Buffer
	tx := NewFramer(&buf)
	for _, fr := range frames {
		if err := tx.WriteFrame(fr); err != nil {
			t.Fatalf("write %T: %v", fr, err)
		}
	}
	rx := NewFramer(&buf)
	out := make([]Frame, 0, len(frames))
	for range frames {
		fr, err := rx.ReadFrame()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		out = append(out, fr)
	}
	return out
}

func TestSynStreamRoundTrip(t *testing.T) {
	in := SynStream{
		StreamID: 1,
		Priority: 2,
		Fin:      true,
		Headers:  RequestHeaders("GET", "http", "example.com", "/index.html", "spdier-test"),
	}
	out := roundTrip(t, in)
	got, ok := out[0].(SynStream)
	if !ok {
		t.Fatalf("got %T", out[0])
	}
	if got.StreamID != 1 || got.Priority != 2 || !got.Fin {
		t.Fatalf("fields mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Headers, in.Headers) {
		t.Fatalf("headers mismatch:\n got %v\nwant %v", got.Headers, in.Headers)
	}
}

func TestHeaderCompressionContextShrinksSecondRequest(t *testing.T) {
	o := NewSizeOracle()
	h1 := RequestHeaders("GET", "http", "news.example.com", "/", "Mozilla/5.0 Chrome/23")
	h2 := RequestHeaders("GET", "http", "news.example.com", "/logo.png", "Mozilla/5.0 Chrome/23")
	s1 := o.FrameSize(SynStream{StreamID: 1, Headers: h1})
	s2 := o.FrameSize(SynStream{StreamID: 3, Headers: h2})
	if s2 >= s1 {
		t.Fatalf("second request should compress smaller: first=%d second=%d", s1, s2)
	}
	if s2 > 200 {
		t.Fatalf("warm-context request should be small, got %d bytes", s2)
	}
	t.Logf("first=%dB second=%dB", s1, s2)
}

func TestAllFrameTypesRoundTrip(t *testing.T) {
	frames := []Frame{
		SynStream{StreamID: 1, Priority: 0, Headers: Headers{":method": "GET", ":path": "/"}},
		SynReply{StreamID: 1, Headers: Headers{":status": "200 OK"}},
		DataFrame{StreamID: 1, Data: []byte("hello world")},
		DataFrame{StreamID: 1, Fin: true, Data: []byte{}},
		RstStream{StreamID: 3, Status: StatusCancel},
		SettingsFrame{Settings: []Setting{{ID: 4, Value: 100}, {ID: 7, Value: 65536}}},
		Ping{ID: 42},
		HeadersFrame{StreamID: 1, Headers: Headers{"x-extra": "1"}},
		WindowUpdate{StreamID: 1, Delta: 65536},
		Goaway{LastStreamID: 41, Status: 0},
	}
	out := roundTrip(t, frames...)
	for i, fr := range out {
		if reflect.TypeOf(fr) != reflect.TypeOf(frames[i]) {
			t.Fatalf("frame %d: got %T want %T", i, fr, frames[i])
		}
	}
	if d := out[2].(DataFrame); string(d.Data) != "hello world" || d.Fin {
		t.Fatalf("data frame mismatch: %+v", d)
	}
	if p := out[6].(Ping); p.ID != 42 {
		t.Fatalf("ping mismatch: %+v", p)
	}
	if w := out[8].(WindowUpdate); w.Delta != 65536 {
		t.Fatalf("window update mismatch: %+v", w)
	}
}
