// Package spdy implements the SPDY/3 wire protocol: control and data
// frame marshaling, zlib header compression with a shared per-session
// dictionary, stream state, and a priority-ordered write scheduler.
//
// The package serves two masters:
//
//   - The live track (internal/liveproxy) frames real bytes over real
//     net.Conn sockets — a working SPDY proxy.
//   - The simulator charges the *actual serialized sizes* produced here
//     for requests and responses, so SPDY's header-compression advantage
//     and densely-packed small frames (Figure 1(d)) are modeled with
//     real numbers rather than guesses.
package spdy

// Version is the SPDY protocol version implemented (SPDY/3).
const Version = 3

// headerDictionary seeds the zlib compression context shared by all
// header blocks on a session. SPDY/3 specifies a particular dictionary;
// this one is functionally equivalent (same common header names, verbs,
// status strings and boilerplate values, length-prefixed the same way)
// but not byte-identical to the draft's blob, which only matters for
// interop with foreign SPDY/3 stacks — both of our endpoints use this
// constant, and the simulator only needs realistic compressed sizes.
var headerDictionary = buildDictionary()

func buildDictionary() []byte {
	words := []string{
		"options", "head", "post", "put", "delete", "trace", "get",
		"accept", "accept-charset", "accept-encoding", "accept-language",
		"accept-ranges", "age", "allow", "authorization", "cache-control",
		"connection", "content-base", "content-encoding", "content-language",
		"content-length", "content-location", "content-md5", "content-range",
		"content-type", "date", "etag", "expect", "expires", "from", "host",
		"if-match", "if-modified-since", "if-none-match", "if-range",
		"if-unmodified-since", "last-modified", "location", "max-forwards",
		"pragma", "proxy-authenticate", "proxy-authorization", "range",
		"referer", "retry-after", "server", "te", "trailer",
		"transfer-encoding", "upgrade", "user-agent", "vary", "via",
		"warning", "www-authenticate", "method", "status", "version", "url",
		"public", "set-cookie", "keep-alive", "origin",
		"100", "101", "200", "201", "202", "203", "204", "205", "206",
		"300", "301", "302", "303", "304", "305", "306", "307",
		"400", "401", "402", "403", "404", "405", "406", "407", "408",
		"409", "410", "411", "412", "413", "414", "415", "416", "417",
		"500", "501", "502", "503", "504", "505",
		"accepted", "bad gateway", "bad request", "continue", "created",
		"forbidden", "found", "gateway timeout", "gone",
		"internal server error", "length required", "method not allowed",
		"moved permanently", "multiple choices", "no content",
		"non-authoritative information", "not acceptable", "not found",
		"not implemented", "not modified", "ok", "partial content",
		"payment required", "precondition failed", "proxy authentication required",
		"request entity too large", "request timeout", "request-uri too long",
		"requested range not satisfiable", "reset content", "see other",
		"service unavailable", "switching protocols", "temporary redirect",
		"unauthorized", "unsupported media type", "use proxy", "expectation failed",
		"http gateway time-out", "version not supported",
		"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun",
		"Jan", "Feb", "Mar", "Apr", "May", "Jun",
		"Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
		" GMT", "chunked", "text/html", "image/png", "image/jpg",
		"image/gif", "application/xml", "application/xhtml+xml",
		"text/plain", "text/javascript", "text/css", "public",
		"privatemax-age", "gzip", "deflate", "sdch", "charset=utf-8",
		"charset=iso-8859-1", "utf-", "identity,gzip,deflate",
		"HTTP/1.1", "status", "version", "url",
	}
	var dict []byte
	for _, w := range words {
		n := len(w)
		dict = append(dict,
			byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		dict = append(dict, w...)
	}
	return dict
}
