package spdy

import "io"

// SizeOracle measures the real wire size of SPDY frames for the
// simulator: it runs an actual Framer (with its stateful compression
// context) against a counting sink, so the first request on a session
// costs its full compressed header block and subsequent ones shrink as
// the shared zlib context warms — the behaviour that lets almost every
// SPDY request fit in a single TCP packet (Section 5.1).
type SizeOracle struct {
	framer *Framer
	sink   countWriter
}

type countWriter struct{ n *int64 }

func (w countWriter) Write(p []byte) (int, error) { *w.n += int64(len(p)); return len(p), nil }
func (countWriter) Read([]byte) (int, error)      { return 0, io.EOF }

type oracleRW struct{ countWriter }

// NewSizeOracle returns a fresh per-session size oracle.
func NewSizeOracle() *SizeOracle {
	o := &SizeOracle{}
	n := new(int64)
	o.sink = countWriter{n: n}
	o.framer = NewFramer(oracleRW{o.sink})
	return o
}

// FrameSize returns the serialized size of fr on this session, advancing
// the compression context exactly as a real transmission would.
func (o *SizeOracle) FrameSize(fr Frame) int {
	before := *o.sink.n
	if err := o.framer.WriteFrame(fr); err != nil {
		panic("spdy: size oracle write: " + err.Error())
	}
	return int(*o.sink.n - before)
}

// DataFrameOverhead is the fixed header cost of a DATA frame.
const DataFrameOverhead = 8
