package spdy

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestPriorityQueueStrictOrder(t *testing.T) {
	var q PriorityQueue[string]
	q.Push(4, "img1")
	q.Push(0, "html")
	q.Push(2, "js")
	q.Push(4, "img2")
	q.Push(1, "css")
	want := []string{"html", "css", "js", "img1", "img2"}
	for _, w := range want {
		got, ok := q.Pop()
		if !ok || got != w {
			t.Fatalf("pop %q, want %q", got, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue")
	}
}

func TestPriorityQueuePeek(t *testing.T) {
	var q PriorityQueue[int]
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty")
	}
	q.Push(3, 42)
	v, ok := q.Peek()
	if !ok || v != 42 || q.Len() != 1 {
		t.Fatal("peek must not consume")
	}
}

func TestPriorityQueueClampsPriority(t *testing.T) {
	var q PriorityQueue[int]
	q.Push(Priority(200), 1) // clamps to MaxPriority
	q.Push(7, 2)
	a, _ := q.Pop()
	b, _ := q.Pop()
	if a != 1 || b != 2 {
		t.Fatalf("clamped priority broke FIFO: %d %d", a, b)
	}
}

func TestPriorityQueueProperty(t *testing.T) {
	// Popping drains items in non-decreasing priority, FIFO within a
	// class, and Len is always consistent.
	check := func(prios []uint8) bool {
		var q PriorityQueue[int]
		for i, p := range prios {
			q.Push(Priority(p%8), i)
		}
		if q.Len() != len(prios) {
			return false
		}
		lastPrio := -1
		lastIdxByPrio := map[int]int{}
		for range prios {
			idx, ok := q.Pop()
			if !ok {
				return false
			}
			p := int(prios[idx] % 8)
			if p < lastPrio {
				return false // priority went backwards
			}
			if prev, seen := lastIdxByPrio[p]; seen && idx < prev {
				return false // not FIFO within class
			}
			lastIdxByPrio[p] = idx
			lastPrio = p
		}
		return q.Len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityForType(t *testing.T) {
	if PriorityForType("html") >= PriorityForType("css") ||
		PriorityForType("css") >= PriorityForType("js") ||
		PriorityForType("js") >= PriorityForType("img") {
		t.Fatal("priority ordering html < css < js < img violated")
	}
}

func TestHeadersCloneAndAccessors(t *testing.T) {
	h := Headers{":method": "GET"}
	h.Set("Content-Type", "text/html")
	if h.Get("content-TYPE") != "text/html" {
		t.Fatal("case-insensitive get failed")
	}
	c := h.Clone()
	c.Set("x-extra", "1")
	if _, ok := h["x-extra"]; ok {
		t.Fatal("clone aliases original")
	}
}

func TestHeaderBlockRoundTripProperty(t *testing.T) {
	check := func(keys, vals []string) bool {
		h := Headers{}
		for i, k := range keys {
			if k == "" {
				continue
			}
			k = strings.ToLower(k)
			v := ""
			if i < len(vals) {
				v = vals[i]
			}
			h[k] = v
		}
		comp := newHeaderCompressor()
		dec := newHeaderDecompressor()
		block := comp.Compress(h)
		got, err := dec.Decompress(block)
		if err != nil {
			return false
		}
		if len(got) != len(h) {
			return false
		}
		for k, v := range h {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedContextSequenceOfBlocks(t *testing.T) {
	comp := newHeaderCompressor()
	dec := newHeaderDecompressor()
	for i := 0; i < 50; i++ {
		h := RequestHeaders("GET", "http", "example.com", "/obj/"+strings.Repeat("x", i), "ua")
		got, err := dec.Decompress(comp.Compress(h))
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if got[":path"] != h[":path"] {
			t.Fatalf("block %d: path %q", i, got[":path"])
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Truncated header.
	f := NewFramer(bytes.NewBuffer([]byte{0x80, 0x03, 0x00}))
	if _, err := f.ReadFrame(); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Unsupported version.
	var buf bytes.Buffer
	buf.Write([]byte{0x80, 0x02, 0x00, 0x01, 0x00, 0x00, 0x00, 0x0a})
	buf.Write(make([]byte, 10))
	f = NewFramer(&buf)
	if _, err := f.ReadFrame(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
	// Unknown control type.
	buf.Reset()
	buf.Write([]byte{0x80, 0x03, 0x00, 0x63, 0x00, 0x00, 0x00, 0x00})
	f = NewFramer(&buf)
	if _, err := f.ReadFrame(); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown type: %v", err)
	}
	// Short SYN_STREAM payload.
	buf.Reset()
	buf.Write([]byte{0x80, 0x03, 0x00, 0x01, 0x00, 0x00, 0x00, 0x04})
	buf.Write(make([]byte, 4))
	f = NewFramer(&buf)
	if _, err := f.ReadFrame(); err == nil {
		t.Fatal("short SYN_STREAM accepted")
	}
}

type discardRW struct{}

func (discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (discardRW) Read(p []byte) (int, error)  { return 0, io.EOF }

func TestWriteDataFrameTooLarge(t *testing.T) {
	f := NewFramer(discardRW{})
	err := f.WriteFrame(DataFrame{StreamID: 1, Data: make([]byte, maxFrameLen+1)})
	if err != ErrFrameTooLarge {
		t.Fatalf("err %v", err)
	}
}

func TestFramerByteAccounting(t *testing.T) {
	var buf bytes.Buffer
	tx := NewFramer(&buf)
	tx.WriteFrame(Ping{ID: 1})
	tx.WriteFrame(DataFrame{StreamID: 1, Data: []byte("hello")})
	if tx.BytesWritten != int64(buf.Len()) {
		t.Fatalf("wrote %d, accounted %d", buf.Len(), tx.BytesWritten)
	}
	rx := NewFramer(&buf)
	rx.ReadFrame()
	rx.ReadFrame()
	if rx.BytesRead != tx.BytesWritten {
		t.Fatalf("read accounting %d vs %d", rx.BytesRead, tx.BytesWritten)
	}
}

func TestSizeOracleMatchesRealFramer(t *testing.T) {
	o := NewSizeOracle()
	var buf bytes.Buffer
	real := NewFramer(&buf)
	for i := 0; i < 10; i++ {
		fr := SynStream{
			StreamID: uint32(i*2 + 1),
			Priority: Priority(i % 8),
			Headers:  RequestHeaders("GET", "http", "h.example", "/x", "ua"),
		}
		predicted := o.FrameSize(fr)
		before := buf.Len()
		if err := real.WriteFrame(fr); err != nil {
			t.Fatal(err)
		}
		if got := buf.Len() - before; got != predicted {
			t.Fatalf("frame %d: oracle %d, real %d", i, predicted, got)
		}
	}
}

func TestMultiValueHeadersNulJoined(t *testing.T) {
	h := Headers{"set-cookie": "a=1\x00b=2"}
	comp := newHeaderCompressor()
	dec := newHeaderDecompressor()
	got, err := dec.Decompress(comp.Compress(h))
	if err != nil {
		t.Fatal(err)
	}
	if got["set-cookie"] != "a=1\x00b=2" {
		t.Fatalf("NUL-joined values corrupted: %q", got["set-cookie"])
	}
}

func TestDictionaryHelpsCompression(t *testing.T) {
	h := RequestHeaders("GET", "http", "www.example.com", "/index.html", "Mozilla/5.0")
	withDict := newHeaderCompressor().Compress(h)
	plain := h.marshalPlain()
	if len(withDict) >= len(plain) {
		t.Fatalf("dictionary compression ineffective: %d vs %d plain", len(withDict), len(plain))
	}
}
