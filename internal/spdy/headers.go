package spdy

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Headers is a SPDY name/value block. Per SPDY/3, names are lowercase and
// multiple values for a name are NUL-joined into one string. Pseudo
// headers (":method", ":path", ":version", ":host", ":scheme", ":status")
// carry the request/status line.
type Headers map[string]string

// Clone returns a deep copy.
func (h Headers) Clone() Headers {
	out := make(Headers, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// Get returns the value for name (names are matched lowercase).
func (h Headers) Get(name string) string { return h[strings.ToLower(name)] }

// Set assigns value to the lowercased name.
func (h Headers) Set(name, value string) { h[strings.ToLower(name)] = value }

// sortedNames returns deterministic iteration order for serialization.
func (h Headers) sortedNames() []string {
	names := make([]string, 0, len(h))
	for k := range h {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// marshalPlain serializes the uncompressed SPDY/3 name/value block:
// a 32-bit pair count, then length-prefixed name and value per pair.
func (h Headers) marshalPlain() []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	put := func(s string) {
		binary.BigEndian.PutUint32(u32[:], uint32(len(s)))
		buf.Write(u32[:])
		buf.WriteString(s)
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(h)))
	buf.Write(u32[:])
	for _, name := range h.sortedNames() {
		put(name)
		put(h[name])
	}
	return buf.Bytes()
}

// errHeaderBlock reports malformed name/value blocks.
var errHeaderBlock = errors.New("spdy: malformed header block")

// unmarshalPlain parses an uncompressed name/value block.
func unmarshalPlain(r io.Reader) (Headers, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: count: %v", errHeaderBlock, err)
	}
	count := binary.BigEndian.Uint32(u32[:])
	if count > 4096 {
		return nil, fmt.Errorf("%w: absurd pair count %d", errHeaderBlock, count)
	}
	read := func() (string, error) {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return "", err
		}
		n := binary.BigEndian.Uint32(u32[:])
		if n > 1<<20 {
			return "", fmt.Errorf("%w: absurd string length %d", errHeaderBlock, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	h := make(Headers, count)
	for i := uint32(0); i < count; i++ {
		name, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: name: %v", errHeaderBlock, err)
		}
		value, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: value: %v", errHeaderBlock, err)
		}
		h[name] = value
	}
	return h, nil
}

// headerCompressor maintains the per-session zlib compression context.
// SPDY compresses all header blocks on a connection with one shared
// context, which is why the *second* request's headers shrink to a few
// dozen bytes — the redundancy the paper credits SPDY for removing.
type headerCompressor struct {
	buf bytes.Buffer
	zw  *zlib.Writer
}

// compressorPool recycles zlib compression contexts across sessions.
// zlib.Writer.Reset restores the exact NewWriterLevelDict initial state
// (same level, same dictionary), so a pooled context produces output
// byte-identical to a fresh one.
var compressorPool = sync.Pool{New: func() any {
	c := &headerCompressor{}
	zw, err := zlib.NewWriterLevelDict(&c.buf, zlib.BestCompression, headerDictionary)
	if err != nil {
		panic("spdy: zlib init: " + err.Error())
	}
	c.zw = zw
	return c
}}

func newHeaderCompressor() *headerCompressor {
	c := compressorPool.Get().(*headerCompressor)
	c.buf.Reset()
	c.zw.Reset(&c.buf)
	return c
}

// release returns the context to the pool. The caller must not use it
// afterwards.
func (c *headerCompressor) release() { compressorPool.Put(c) }

// Compress returns the compressed encoding of h, flushed at a sync point
// so the receiver can decode the block without further input.
func (c *headerCompressor) Compress(h Headers) []byte {
	plain := h.marshalPlain()
	c.buf.Reset()
	if _, err := c.zw.Write(plain); err != nil {
		panic("spdy: zlib write: " + err.Error())
	}
	if err := c.zw.Flush(); err != nil {
		panic("spdy: zlib flush: " + err.Error())
	}
	out := make([]byte, c.buf.Len())
	copy(out, c.buf.Bytes())
	return out
}

// headerDecompressor is the receive-side shared context.
type headerDecompressor struct {
	in bytes.Buffer
	zr io.ReadCloser
	// stale marks a pooled zr that still holds the previous session's
	// inflate state. The reset is deferred to the first Decompress because
	// zlib's Reset consumes the 2-byte stream header immediately, which is
	// only available once the first block has been buffered.
	stale bool
}

// decompressorPool recycles receive-side contexts across sessions.
var decompressorPool = sync.Pool{New: func() any { return &headerDecompressor{} }}

func newHeaderDecompressor() *headerDecompressor {
	d := decompressorPool.Get().(*headerDecompressor)
	d.in.Reset()
	d.stale = d.zr != nil
	return d
}

// release returns the context to the pool. The caller must not use it
// afterwards.
func (d *headerDecompressor) release() { decompressorPool.Put(d) }

// Decompress decodes one compressed block produced by a matching
// headerCompressor on the same session.
func (d *headerDecompressor) Decompress(block []byte) (Headers, error) {
	d.in.Write(block)
	if d.stale {
		if err := d.zr.(zlib.Resetter).Reset(&d.in, headerDictionary); err != nil {
			return nil, fmt.Errorf("spdy: zlib reader reset: %w", err)
		}
		d.stale = false
	}
	if d.zr == nil {
		zr, err := zlib.NewReaderDict(&d.in, headerDictionary)
		if err != nil {
			return nil, fmt.Errorf("spdy: zlib reader: %w", err)
		}
		d.zr = zr
	}
	h, err := unmarshalPlain(d.zr)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// RequestHeaders builds the SPDY/3 pseudo-header set for a proxied GET.
func RequestHeaders(method, scheme, host, path, userAgent string) Headers {
	h := Headers{
		":method":         method,
		":scheme":         scheme,
		":host":           host,
		":path":           path,
		":version":        "HTTP/1.1",
		"accept":          "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
		"accept-encoding": "gzip,deflate,sdch",
		"accept-language": "en-US,en;q=0.8",
	}
	if userAgent != "" {
		h["user-agent"] = userAgent
	}
	return h
}

// ResponseHeaders builds the SPDY/3 pseudo-header set for a response.
func ResponseHeaders(status string, contentType string, contentLength int64) Headers {
	return Headers{
		":status":        status,
		":version":       "HTTP/1.1",
		"content-type":   contentType,
		"content-length": fmt.Sprintf("%d", contentLength),
		"server":         "spdier-origin/1.0",
	}
}
