package spdy

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame parser: it must never
// panic or over-allocate, only return frames or errors. Seeds include
// every valid frame type plus truncations.
func FuzzReadFrame(f *testing.F) {
	// Valid frames as seeds.
	var buf bytes.Buffer
	tx := NewFramer(&buf)
	seeds := []Frame{
		SynStream{StreamID: 1, Priority: 3, Headers: Headers{":method": "GET", ":path": "/"}},
		SynReply{StreamID: 1, Headers: Headers{":status": "200 OK"}},
		DataFrame{StreamID: 1, Fin: true, Data: []byte("payload")},
		RstStream{StreamID: 3, Status: StatusCancel},
		SettingsFrame{Settings: []Setting{{ID: 4, Value: 100}}},
		Ping{ID: 9},
		Goaway{LastStreamID: 5},
		HeadersFrame{StreamID: 1, Headers: Headers{"k": "v"}},
		WindowUpdate{StreamID: 1, Delta: 1024},
	}
	for _, fr := range seeds {
		buf.Reset()
		if err := tx.WriteFrame(fr); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), buf.Bytes()...))
		// Truncated variant.
		if buf.Len() > 3 {
			f.Add(append([]byte(nil), buf.Bytes()[:buf.Len()/2]...))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x03, 0x00, 0x01, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rx := NewFramer(bytes.NewBuffer(data))
		for i := 0; i < 16; i++ {
			fr, err := rx.ReadFrame()
			if err != nil {
				return
			}
			if fr == nil {
				t.Fatal("nil frame without error")
			}
		}
	})
}

// FuzzHeaderDecompress feeds arbitrary bytes to the shared-context
// header decompressor; it must fail cleanly on garbage.
func FuzzHeaderDecompress(f *testing.F) {
	c := newHeaderCompressor()
	f.Add(c.Compress(Headers{":method": "GET"}))
	f.Add([]byte{})
	f.Add([]byte{0x78, 0x9c, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := newHeaderDecompressor()
		h, err := d.Decompress(data)
		if err == nil && h == nil {
			t.Fatal("nil headers without error")
		}
	})
}
