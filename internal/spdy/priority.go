package spdy

// PriorityQueue schedules items by SPDY priority: strict priority order
// (0 first), FIFO within a class. This is the transmit discipline the
// SPDY server uses so that high-priority resources are transferred
// before low-priority ones (Figure 1(d)): the connection is never
// congested with non-critical resources while critical requests pend.
type PriorityQueue[T any] struct {
	classes [MaxPriority + 1][]T
	n       int
}

// Push enqueues item at priority p (clamped to the valid range).
func (q *PriorityQueue[T]) Push(p Priority, item T) {
	if p > MaxPriority {
		p = MaxPriority
	}
	q.classes[p] = append(q.classes[p], item)
	q.n++
}

// Pop removes the highest-priority, oldest item.
func (q *PriorityQueue[T]) Pop() (T, bool) {
	for p := range q.classes {
		if len(q.classes[p]) > 0 {
			item := q.classes[p][0]
			q.classes[p] = q.classes[p][1:]
			q.n--
			return item, true
		}
	}
	var zero T
	return zero, false
}

// Peek returns the item Pop would return without removing it.
func (q *PriorityQueue[T]) Peek() (T, bool) {
	for p := range q.classes {
		if len(q.classes[p]) > 0 {
			return q.classes[p][0], true
		}
	}
	var zero T
	return zero, false
}

// Len reports the number of queued items.
func (q *PriorityQueue[T]) Len() int { return q.n }

// PriorityForType maps an object's content kind to the priority Chrome
// assigns: documents and scripts/stylesheets ahead of images.
func PriorityForType(kind string) Priority {
	switch kind {
	case "html":
		return 0
	case "css":
		return 1
	case "js":
		return 2
	case "xhr", "text":
		return 3
	case "img":
		return 4
	default:
		return 5
	}
}
