package netem

import (
	"time"

	"spdier/internal/sim"
)

// Impairments adds hostile wire behaviour to a link: bursty
// (Gilbert-Elliott) loss, packet reordering, duplication, and extra
// one-sided jitter. All randomness is drawn from the link's seeded RNG
// in a fixed per-packet order, and every draw is gated on its knob
// being enabled, so a zero Impairments value changes nothing — the
// link's event and RNG streams are bit-identical to an unimpaired run,
// and impaired sweeps replay bit-identically from their seed at any
// parallelism.
//
// The per-accepted-packet draw order is: GE state transition, GE drop,
// extra jitter, reorder, duplicate. (The base uniform LossRate and
// Jitter draws of LinkConfig happen in their pre-existing positions.)
type Impairments struct {
	// Gilbert-Elliott bursty loss. The channel alternates between a
	// Good and a Bad state; each packet first transitions the state
	// (Good→Bad with probability GEGoodToBad, Bad→Good with
	// GEBadToGood), then drops with the state's loss rate. Typical
	// cellular-ish settings: GEGoodToBad 0.005, GEBadToGood 0.3,
	// GELossGood 0, GELossBad 0.5 — rare loss episodes that then eat
	// several packets in a row, the pattern Goel et al. show flips
	// H2-vs-HTTP conclusions.
	GEGoodToBad float64
	GEBadToGood float64
	GELossGood  float64
	GELossBad   float64

	// ReorderProb is the probability an accepted packet is pulled out
	// of the FIFO delivery order and held for ReorderDelay extra
	// propagation time, arriving behind packets sent after it.
	// ReorderDelay <= 0 defaults to the link's propagation delay
	// (doubling it for the straggler), or 1ms on a zero-delay link.
	ReorderProb  float64
	ReorderDelay time.Duration

	// DupProb is the probability an accepted packet is delivered twice,
	// the copy arriving one serialization time after the original.
	// Pooled payloads must implement Duplicable or the copy is
	// suppressed (delivering one pooled pointer twice would corrupt the
	// pool when the receiver recycles it).
	DupProb float64

	// ExtraJitter adds a uniform [0, ExtraJitter) term to each packet's
	// propagation delay, on top of LinkConfig.Jitter. Like the base
	// jitter it cannot reorder on its own: FIFO delivery is still
	// enforced for non-reordered packets.
	ExtraJitter time.Duration
}

// Enabled reports whether any impairment knob is active.
func (im Impairments) Enabled() bool {
	return im.geEnabled() || im.ReorderProb > 0 || im.DupProb > 0 || im.ExtraJitter > 0
}

func (im Impairments) geEnabled() bool {
	return im.GEGoodToBad > 0 || im.GELossGood > 0 || im.GELossBad > 0
}

// Duplicable lets a pooled payload supply an independent copy of itself
// for duplicate delivery. Returning nil vetoes the duplicate.
type Duplicable interface {
	DupPayload() Payload
}

// WithImpairments returns a copy of the path config with the same
// impairments applied to both directions.
func (pc PathConfig) WithImpairments(im Impairments) PathConfig {
	pc.Up.Impair = im
	pc.Down.Impair = im
	return pc
}

// geStep advances the Gilbert-Elliott channel state for one packet and
// reports whether that packet is lost to the burst process. Only called
// when geEnabled, so disabled runs draw nothing here.
func (l *Link) geStep() bool {
	im := &l.cfg.Impair
	if l.geBad {
		if im.GEBadToGood > 0 && l.rng.Bool(im.GEBadToGood) {
			l.geBad = false
		}
	} else {
		if im.GEGoodToBad > 0 && l.rng.Bool(im.GEGoodToBad) {
			l.geBad = true
		}
	}
	p := im.GELossGood
	if l.geBad {
		p = im.GELossBad
	}
	return p > 0 && l.rng.Bool(p)
}

// deliverAside schedules a delivery that bypasses the FIFO arrival ring
// (reordered and duplicated packets). These use a per-event closure:
// the prebound ring callbacks are only sound for monotone, in-order
// arrival streams, which is exactly what these packets are not.
func (l *Link) deliverAside(p Payload, size int, at sim.Time) {
	l.loop.At(at, func() {
		l.stats.Delivered++
		l.stats.Bytes += int64(size)
		if l.receiver != nil {
			l.receiver(p)
		}
	})
}

// reorderHold returns how much extra propagation a reordered packet
// suffers.
func (l *Link) reorderHold() time.Duration {
	if d := l.cfg.Impair.ReorderDelay; d > 0 {
		return d
	}
	if l.cfg.Delay > 0 {
		return l.cfg.Delay
	}
	return time.Millisecond
}
