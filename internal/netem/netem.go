// Package netem emulates network paths inside the discrete-event
// simulator: token-by-token serialization at a configured bandwidth,
// propagation delay with optional jitter, drop-tail queueing, random
// loss, and — for cellular paths — gating by an RRC radio state machine.
//
// The cellular gate is the load-bearing piece of the reproduction: when
// the radio is idle, packets in either direction stall for the promotion
// delay (~2 s on 3G). TCP, living above this layer, knows nothing about
// it; the spurious retransmissions in the paper emerge from the timing
// alone.
package netem

import (
	"time"

	"spdier/internal/rrc"
	"spdier/internal/sim"
)

// Payload is an opaque unit carried across a link (a TCP segment model).
type Payload any

// Gate is anything that can stall and rate-limit a link. The RRC machine
// implements it; wired links use no gate.
type Gate interface {
	// ReadyAt records activity of the given size now and returns the
	// earliest time the radio can carry it.
	ReadyAt(bytes int) sim.Time
	// CurrentRate returns a rate ceiling in bits/sec (0 = unconstrained).
	CurrentRate() int64
}

var _ Gate = (*rrc.Machine)(nil)

// LinkConfig describes one direction of a path.
type LinkConfig struct {
	// BandwidthBPS is the serialization rate in bits per second.
	BandwidthBPS int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a truncated-normal random term (stddev = Jitter) to the
	// propagation delay of every packet. Reordering is prevented.
	Jitter time.Duration
	// QueueBytes bounds the drop-tail queue (bytes awaiting or under
	// serialization). Zero means a generous default of 256 KiB.
	QueueBytes int
	// LossRate is the independent per-packet drop probability.
	LossRate float64
	// Impair adds bursty loss, reordering, duplication and extra jitter.
	// The zero value is inert: it draws no randomness and leaves the
	// link's behaviour bit-identical to an unimpaired run.
	Impair Impairments
}

func (c LinkConfig) queueLimit() int {
	if c.QueueBytes <= 0 {
		return 256 << 10
	}
	return c.QueueBytes
}

// LinkStats counts per-link activity.
type LinkStats struct {
	Sent          int
	Delivered     int
	DroppedQueue  int
	DroppedLoss   int   // independent (uniform) loss
	DroppedBurst  int   // Gilbert-Elliott burst loss
	DroppedFilter int   // dropped by an installed packet filter
	Reordered     int   // delivered out of FIFO order
	Duplicated    int   // delivered twice
	Bytes         int64 // delivered bytes, duplicates included
}

// Link is one direction of a network path.
type Link struct {
	loop *sim.Loop
	cfg  LinkConfig
	rng  *sim.RNG
	gate Gate

	receiver func(Payload)
	// filter, when non-nil, sees every payload before the drop stages and
	// may veto it (return false = drop). Targeted-loss oracles use this to
	// drop, say, only one stream's packets; nil (the default) leaves the
	// link's behaviour and randomness draws untouched.
	filter func(Payload, int) bool

	// busyUntil is when the serializer frees up.
	busyUntil sim.Time
	// queuedBytes tracks backlog for drop-tail accounting.
	queuedBytes int
	// lastArrival enforces FIFO delivery despite jitter.
	lastArrival sim.Time
	// geBad is the Gilbert-Elliott channel state (true = Bad/bursty).
	geBad bool

	// In-flight packets are tracked in two FIFO rings driven by two
	// prebound callbacks, instead of one capturing closure per event.
	// This is sound because both event streams are scheduled in
	// monotonically non-decreasing time order (busyUntil never moves
	// backwards; arrivals are clamped to lastArrival) and the event loop
	// breaks time ties in scheduling order, so events fire in exactly the
	// order the rings were pushed.
	txq       intRing      // wire sizes awaiting end-of-serialization
	arrivals  deliveryRing // payloads awaiting delivery at the far end
	onTxDone  func()
	onArrival func()

	stats LinkStats
}

// NewLink creates a link. gate may be nil (wired/WiFi).
func NewLink(loop *sim.Loop, cfg LinkConfig, rng *sim.RNG, gate Gate) *Link {
	l := &Link{loop: loop, cfg: cfg, rng: rng, gate: gate}
	l.onTxDone = func() { l.queuedBytes -= l.txq.pop() }
	l.onArrival = func() {
		d := l.arrivals.pop()
		l.stats.Delivered++
		l.stats.Bytes += int64(d.size)
		if l.receiver != nil {
			l.receiver(d.p)
		}
	}
	return l
}

// SetReceiver installs the delivery callback for the far end.
func (l *Link) SetReceiver(fn func(Payload)) { l.receiver = fn }

// SetFilter installs a packet filter consulted first in Send, before any
// randomness is drawn: returning false drops the packet (counted in
// DroppedFilter). Passing nil removes the filter.
func (l *Link) SetFilter(fn func(Payload, int) bool) { l.filter = fn }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// transmissionTime returns how long size bytes occupy the serializer,
// honoring any rate ceiling from the gate (e.g. CELL_FACH's shared
// low-rate channel).
func (l *Link) transmissionTime(size int) time.Duration {
	bps := l.cfg.BandwidthBPS
	if l.gate != nil {
		if r := l.gate.CurrentRate(); r > 0 && r < bps {
			bps = r
		}
	}
	if bps <= 0 {
		return 0
	}
	return time.Duration(float64(size*8) / float64(bps) * float64(time.Second))
}

// Send enqueues a payload of the given wire size. It reports false if the
// packet was dropped (queue overflow or random loss).
func (l *Link) Send(p Payload, size int) bool {
	l.stats.Sent++
	now := l.loop.Now()

	if l.filter != nil && !l.filter(p, size) {
		l.stats.DroppedFilter++
		return false
	}
	if l.queuedBytes+size > l.cfg.queueLimit() {
		l.stats.DroppedQueue++
		return false
	}
	if l.cfg.LossRate > 0 && l.rng.Bool(l.cfg.LossRate) {
		l.stats.DroppedLoss++
		return false
	}
	if l.cfg.Impair.geEnabled() && l.geStep() {
		l.stats.DroppedBurst++
		return false
	}

	// Radio gating: the packet cannot begin serialization before the
	// radio is ready. ReadyAt also resets the RRC inactivity timers.
	ready := now
	if l.gate != nil {
		ready = l.gate.ReadyAt(size)
	}

	start := l.busyUntil
	if start < ready {
		start = ready
	}
	if start < now {
		start = now
	}
	txTime := l.transmissionTime(size)
	done := start.Add(txTime)
	l.busyUntil = done
	l.queuedBytes += size

	// Propagation with jitter; clamp to preserve FIFO ordering.
	prop := l.cfg.Delay
	if l.cfg.Jitter > 0 {
		j := l.rng.Norm(0, float64(l.cfg.Jitter))
		prop += time.Duration(j)
		if prop < l.cfg.Delay/2 {
			prop = l.cfg.Delay / 2
		}
	}
	if ej := l.cfg.Impair.ExtraJitter; ej > 0 {
		prop += time.Duration(l.rng.Float64() * float64(ej))
	}

	l.txq.push(size)
	l.loop.At(done, l.onTxDone)

	// Reordered packets are held for extra propagation and delivered
	// outside the FIFO arrival ring: they neither wait for nor advance
	// lastArrival, so later packets overtake them.
	if rp := l.cfg.Impair.ReorderProb; rp > 0 && l.rng.Bool(rp) {
		l.stats.Reordered++
		arrive := done.Add(prop).Add(l.reorderHold())
		l.deliverAside(p, size, arrive)
		l.maybeDup(p, size, arrive, txTime)
		return true
	}

	arrive := done.Add(prop)
	if arrive < l.lastArrival {
		arrive = l.lastArrival
	}
	l.lastArrival = arrive

	l.arrivals.push(delivery{p: p, size: size})
	l.loop.At(arrive, l.onArrival)
	l.maybeDup(p, size, arrive, txTime)
	return true
}

// maybeDup schedules a duplicate delivery of an accepted packet with
// probability DupProb, one serialization time behind the original.
func (l *Link) maybeDup(p Payload, size int, arrive sim.Time, txTime time.Duration) {
	dp := l.cfg.Impair.DupProb
	if dp <= 0 || !l.rng.Bool(dp) {
		return
	}
	cp := p
	if d, ok := p.(Duplicable); ok {
		cp = d.DupPayload()
	}
	if cp == nil {
		return
	}
	l.stats.Duplicated++
	l.deliverAside(cp, size, arrive.Add(txTime))
}

// delivery is one queued arrival at the far end of a link.
type delivery struct {
	p    Payload
	size int
}

// intRing and deliveryRing are minimal power-of-two FIFO rings. They
// exist so the per-packet dequeue and delivery bookkeeping costs zero
// allocations in steady state.

type intRing struct {
	buf     []int
	head, n int
}

func (r *intRing) push(v int) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *intRing) pop() int {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *intRing) grow() {
	nb := make([]int, max(2*len(r.buf), 16))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

type deliveryRing struct {
	buf     []delivery
	head, n int
}

func (r *deliveryRing) push(v delivery) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *deliveryRing) pop() delivery {
	i := r.head
	v := r.buf[i]
	r.buf[i] = delivery{} // drop the payload reference
	r.head = (i + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *deliveryRing) grow() {
	nb := make([]delivery, max(2*len(r.buf), 16))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// Path is a duplex pair of links, optionally sharing one radio gate.
// Direction A→B is conventionally "uplink" (device to proxy) and B→A
// "downlink" (proxy to device).
type Path struct {
	AtoB  *Link
	BtoA  *Link
	Radio *rrc.Machine
}

// PathConfig configures both directions of a path.
type PathConfig struct {
	Up   LinkConfig // A→B
	Down LinkConfig // B→A
}

// NewPath builds a duplex path. radio may be nil for wired/WiFi.
func NewPath(loop *sim.Loop, cfg PathConfig, rng *sim.RNG, radio *rrc.Machine) *Path {
	var gate Gate
	if radio != nil {
		gate = radio
	}
	return &Path{
		AtoB:  NewLink(loop, cfg.Up, rng.Fork(1), gate),
		BtoA:  NewLink(loop, cfg.Down, rng.Fork(2), gate),
		Radio: radio,
	}
}

// Profile3G describes the client↔proxy leg over a production 3G (UMTS)
// network: a few Mbit/s down, high and variable latency, deep buffers.
func Profile3G() PathConfig {
	return PathConfig{
		Up: LinkConfig{
			BandwidthBPS: 1_500_000,
			Delay:        70 * time.Millisecond,
			Jitter:       45 * time.Millisecond,
			QueueBytes:   192 << 10,
			LossRate:     0.0003,
		},
		Down: LinkConfig{
			BandwidthBPS: 6_000_000,
			Delay:        70 * time.Millisecond,
			Jitter:       45 * time.Millisecond,
			QueueBytes:   1 << 20,
			LossRate:     0.0003,
		},
	}
}

// ProfileLTE describes the client↔proxy leg over LTE: higher rate,
// much lower and steadier latency.
func ProfileLTE() PathConfig {
	return PathConfig{
		Up: LinkConfig{
			BandwidthBPS: 8_000_000,
			Delay:        25 * time.Millisecond,
			Jitter:       6 * time.Millisecond,
			QueueBytes:   256 << 10,
			LossRate:     0.0005,
		},
		Down: LinkConfig{
			BandwidthBPS: 20_000_000,
			Delay:        25 * time.Millisecond,
			Jitter:       6 * time.Millisecond,
			QueueBytes:   1 << 20,
			LossRate:     0.0005,
		},
	}
}

// ProfileWiFi describes the 802.11g + residential broadband setup of
// Section 4.0.1: 15 Mbit/s down / 2 Mbit/s up, stable ~20 ms latency.
func ProfileWiFi() PathConfig {
	return PathConfig{
		Up: LinkConfig{
			BandwidthBPS: 2_000_000,
			Delay:        20 * time.Millisecond,
			Jitter:       3 * time.Millisecond,
			QueueBytes:   128 << 10,
			LossRate:     0.0002,
		},
		Down: LinkConfig{
			BandwidthBPS: 15_000_000,
			Delay:        20 * time.Millisecond,
			Jitter:       3 * time.Millisecond,
			QueueBytes:   640 << 10,
			LossRate:     0.0002,
		},
	}
}
