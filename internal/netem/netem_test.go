package netem

import (
	"testing"
	"time"

	"spdier/internal/rrc"
	"spdier/internal/sim"
)

func fastLink(loop *sim.Loop, cfg LinkConfig, seed uint64) *Link {
	return NewLink(loop, cfg, sim.NewRNG(seed), nil)
}

func TestSerializationRate(t *testing.T) {
	loop := sim.NewLoop()
	l := fastLink(loop, LinkConfig{BandwidthBPS: 8_000_000, Delay: 0}, 1)
	var arrived []sim.Time
	l.SetReceiver(func(Payload) { arrived = append(arrived, loop.Now()) })
	// 1000 bytes at 8 Mbit/s = exactly 1 ms each.
	l.Send("a", 1000)
	l.Send("b", 1000)
	l.Send("c", 1000)
	loop.RunUntilIdle()
	for i, want := range []sim.Time{sim.Time(time.Millisecond), sim.Time(2 * time.Millisecond), sim.Time(3 * time.Millisecond)} {
		if arrived[i] != want {
			t.Fatalf("packet %d arrived %v, want %v", i, arrived[i], want)
		}
	}
}

func TestPropagationDelayAdds(t *testing.T) {
	loop := sim.NewLoop()
	l := fastLink(loop, LinkConfig{BandwidthBPS: 8_000_000, Delay: 50 * time.Millisecond}, 1)
	var at sim.Time
	l.SetReceiver(func(Payload) { at = loop.Now() })
	l.Send("x", 1000)
	loop.RunUntilIdle()
	if want := sim.Time(51 * time.Millisecond); at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
}

func TestFIFOPreservedUnderJitter(t *testing.T) {
	loop := sim.NewLoop()
	l := fastLink(loop, LinkConfig{BandwidthBPS: 100_000_000, Delay: 20 * time.Millisecond, Jitter: 15 * time.Millisecond}, 42)
	var got []int
	l.SetReceiver(func(p Payload) { got = append(got, p.(int)) })
	for i := 0; i < 200; i++ {
		l.Send(i, 200)
	}
	loop.RunUntilIdle()
	if len(got) != 200 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordering at %d: got %d", i, v)
		}
	}
}

func TestQueueDropTail(t *testing.T) {
	loop := sim.NewLoop()
	l := fastLink(loop, LinkConfig{BandwidthBPS: 1_000_000, Delay: 0, QueueBytes: 5000}, 1)
	delivered := 0
	l.SetReceiver(func(Payload) { delivered++ })
	accepted := 0
	for i := 0; i < 20; i++ {
		if l.Send(i, 1000) {
			accepted++
		}
	}
	loop.RunUntilIdle()
	if accepted != 5 {
		t.Fatalf("accepted %d with a 5000-byte queue", accepted)
	}
	if delivered != accepted {
		t.Fatalf("delivered %d != accepted %d", delivered, accepted)
	}
	if st := l.Stats(); st.DroppedQueue != 15 {
		t.Fatalf("dropped %d", st.DroppedQueue)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	loop := sim.NewLoop()
	l := fastLink(loop, LinkConfig{BandwidthBPS: 1_000_000, Delay: 0, QueueBytes: 5000}, 1)
	l.SetReceiver(func(Payload) {})
	for i := 0; i < 5; i++ {
		l.Send(i, 1000)
	}
	if l.Send("over", 1000) {
		t.Fatal("queue should be full")
	}
	loop.Run(loop.Now().Add(50 * time.Millisecond))
	if !l.Send("later", 1000) {
		t.Fatal("queue should have drained")
	}
}

func TestRandomLossRate(t *testing.T) {
	loop := sim.NewLoop()
	l := fastLink(loop, LinkConfig{BandwidthBPS: 1_000_000_000, Delay: 0, LossRate: 0.1, QueueBytes: 1 << 30}, 3)
	dropped := 0
	for i := 0; i < 10000; i++ {
		if !l.Send(i, 100) {
			dropped++
		}
	}
	if dropped < 850 || dropped > 1150 {
		t.Fatalf("loss rate off: %d/10000", dropped)
	}
	if st := l.Stats(); st.DroppedLoss != dropped {
		t.Fatalf("stats mismatch: %d vs %d", st.DroppedLoss, dropped)
	}
}

func TestRadioGateStallsDelivery(t *testing.T) {
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	l := NewLink(loop, LinkConfig{BandwidthBPS: 8_000_000, Delay: 10 * time.Millisecond}, sim.NewRNG(1), radio)
	var at sim.Time
	l.SetReceiver(func(Payload) { at = loop.Now() })
	l.Send("x", 1400)
	loop.RunUntilIdle()
	// 2 s promotion + ~1.4 ms serialization + 10 ms propagation.
	if at < sim.Time(2011*time.Millisecond) || at > sim.Time(2013*time.Millisecond) {
		t.Fatalf("gated arrival %v", at)
	}
}

func TestFACHRateCeiling(t *testing.T) {
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	l := NewLink(loop, LinkConfig{BandwidthBPS: 8_000_000, Delay: 0}, sim.NewRNG(1), radio)
	var at sim.Time
	l.SetReceiver(func(Payload) { at = loop.Now() })
	// Promote, then let the radio fall back to FACH.
	radio.ReadyAt(1400)
	loop.Run(sim.Time(9 * time.Second))
	if radio.State() != rrc.FACH {
		t.Fatalf("precondition %v", radio.State())
	}
	start := loop.Now()
	l.Send("small", 400) // rides FACH at 16 kbit/s: 400B = 200 ms
	loop.RunUntilIdle()
	ser := at.Sub(start)
	if ser < 190*time.Millisecond || ser > 210*time.Millisecond {
		t.Fatalf("FACH serialization %v, want ≈200ms", ser)
	}
}

func TestPathDuplexSharesRadio(t *testing.T) {
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	p := NewPath(loop, Profile3G(), sim.NewRNG(9), radio)
	if p.Radio != radio {
		t.Fatal("radio not attached")
	}
	var upAt, downAt sim.Time
	p.AtoB.SetReceiver(func(Payload) { upAt = loop.Now() })
	p.BtoA.SetReceiver(func(Payload) { downAt = loop.Now() })
	p.AtoB.Send("up", 1400)   // triggers promotion
	p.BtoA.Send("down", 1400) // rides the same promotion
	loop.RunUntilIdle()
	if upAt < sim.Time(2*time.Second) || downAt < sim.Time(2*time.Second) {
		t.Fatalf("promotion did not stall both directions: up=%v down=%v", upAt, downAt)
	}
	if downAt > sim.Time(2500*time.Millisecond) {
		t.Fatalf("downlink stalled past shared promotion: %v", downAt)
	}
}

func TestProfilesSane(t *testing.T) {
	for name, pc := range map[string]PathConfig{
		"3g": Profile3G(), "lte": ProfileLTE(), "wifi": ProfileWiFi(),
	} {
		if pc.Down.BandwidthBPS <= pc.Up.BandwidthBPS {
			t.Errorf("%s: downlink should exceed uplink", name)
		}
		if pc.Up.Delay <= 0 || pc.Down.Delay <= 0 {
			t.Errorf("%s: zero delay", name)
		}
		if pc.Down.QueueBytes < 256<<10 {
			t.Errorf("%s: queue too shallow for IW bursts", name)
		}
	}
	lte, g3 := ProfileLTE(), Profile3G()
	if lte.Down.Delay >= g3.Down.Delay {
		t.Error("LTE latency should undercut 3G")
	}
}

func TestLinkStatsBytes(t *testing.T) {
	loop := sim.NewLoop()
	l := fastLink(loop, LinkConfig{BandwidthBPS: 8_000_000, Delay: 0}, 1)
	l.SetReceiver(func(Payload) {})
	l.Send("a", 1000)
	l.Send("b", 500)
	loop.RunUntilIdle()
	st := l.Stats()
	if st.Bytes != 1500 || st.Sent != 2 || st.Delivered != 2 {
		t.Fatalf("stats %+v", st)
	}
}
