package netem

import (
	"fmt"
	"testing"
	"time"

	"spdier/internal/sim"
)

// impairedLink builds a fast link with the given impairments.
func impairedLink(loop *sim.Loop, im Impairments, seed uint64) *Link {
	return fastLink(loop, LinkConfig{
		BandwidthBPS: 100_000_000,
		Delay:        20 * time.Millisecond,
		QueueBytes:   1 << 30,
		Impair:       im,
	}, seed)
}

func TestGilbertElliottBurstLoss(t *testing.T) {
	loop := sim.NewLoop()
	l := impairedLink(loop, Impairments{
		GEGoodToBad: 0.01,
		GEBadToGood: 0.25,
		GELossBad:   0.8,
	}, 7)
	l.SetReceiver(func(Payload) {})
	accepted := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if l.Send(i, 100) {
			accepted++
		}
	}
	loop.RunUntilIdle()
	st := l.Stats()
	if st.DroppedBurst == 0 {
		t.Fatal("no burst loss recorded")
	}
	if st.DroppedBurst+accepted != n {
		t.Fatalf("accounting: %d dropped + %d accepted != %d", st.DroppedBurst, accepted, n)
	}
	// Stationary loss ≈ P(bad)·0.8 = (0.01/(0.01+0.25))·0.8 ≈ 3.1%.
	rate := float64(st.DroppedBurst) / n
	if rate < 0.015 || rate > 0.06 {
		t.Fatalf("burst loss rate %.3f outside plausible band", rate)
	}
}

func TestGilbertElliottLossIsBursty(t *testing.T) {
	loop := sim.NewLoop()
	l := impairedLink(loop, Impairments{
		GEGoodToBad: 0.002,
		GEBadToGood: 0.2,
		GELossBad:   1.0,
	}, 11)
	l.SetReceiver(func(Payload) {})
	// Record the run-length distribution of consecutive drops; with
	// certain loss in Bad, mean burst length should be ≈ 1/0.2 = 5,
	// far above the ≈1 of independent loss at the same average rate.
	bursts, cur := []int{}, 0
	for i := 0; i < 50000; i++ {
		if l.Send(i, 100) {
			if cur > 0 {
				bursts = append(bursts, cur)
				cur = 0
			}
		} else {
			cur++
		}
	}
	loop.RunUntilIdle()
	if len(bursts) == 0 {
		t.Fatal("no loss bursts observed")
	}
	total := 0
	for _, b := range bursts {
		total += b
	}
	mean := float64(total) / float64(len(bursts))
	if mean < 3 {
		t.Fatalf("mean burst length %.2f; want bursty (≥3)", mean)
	}
}

func TestReorderingDeliversOutOfOrder(t *testing.T) {
	loop := sim.NewLoop()
	l := impairedLink(loop, Impairments{ReorderProb: 0.05, ReorderDelay: 5 * time.Millisecond}, 3)
	var got []int
	l.SetReceiver(func(p Payload) { got = append(got, p.(int)) })
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(i, 200)
	}
	loop.RunUntilIdle()
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	st := l.Stats()
	if st.Reordered == 0 || inversions == 0 {
		t.Fatalf("no reordering observed: stats=%d inversions=%d", st.Reordered, inversions)
	}
	// Every packet still arrives exactly once.
	seen := make(map[int]bool, n)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("packet %d delivered twice", v)
		}
		seen[v] = true
	}
}

type dupPayload struct {
	id     int
	copies *int
}

func (d dupPayload) DupPayload() Payload {
	*d.copies++
	return dupPayload{id: d.id, copies: d.copies}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	loop := sim.NewLoop()
	l := impairedLink(loop, Impairments{DupProb: 0.1}, 5)
	counts := map[int]int{}
	l.SetReceiver(func(p Payload) { counts[p.(dupPayload).id]++ })
	copies := 0
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(dupPayload{id: i, copies: &copies}, 200)
	}
	loop.RunUntilIdle()
	st := l.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates")
	}
	if copies != st.Duplicated {
		t.Fatalf("DupPayload called %d times, stats say %d", copies, st.Duplicated)
	}
	dups := 0
	for id, c := range counts {
		switch c {
		case 1:
		case 2:
			dups++
		default:
			t.Fatalf("packet %d delivered %d times", id, c)
		}
	}
	if dups != st.Duplicated {
		t.Fatalf("%d packets seen twice, stats say %d", dups, st.Duplicated)
	}
	if st.Delivered != n+st.Duplicated {
		t.Fatalf("Delivered=%d want %d", st.Delivered, n+st.Duplicated)
	}
}

func TestExtraJitterDelaysButKeepsFIFO(t *testing.T) {
	loop := sim.NewLoop()
	l := impairedLink(loop, Impairments{ExtraJitter: 30 * time.Millisecond}, 9)
	var got []int
	l.SetReceiver(func(p Payload) { got = append(got, p.(int)) })
	for i := 0; i < 500; i++ {
		l.Send(i, 200)
	}
	loop.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("extra jitter reordered: pos %d got %d", i, v)
		}
	}
}

// TestZeroImpairmentsBitIdentical asserts the inertness contract: a
// zero Impairments value must not perturb the RNG stream or event
// timing relative to a link that predates impairments at all.
func TestZeroImpairmentsBitIdentical(t *testing.T) {
	trace := func(im Impairments) string {
		loop := sim.NewLoop()
		l := fastLink(loop, LinkConfig{
			BandwidthBPS: 5_000_000,
			Delay:        30 * time.Millisecond,
			Jitter:       10 * time.Millisecond,
			LossRate:     0.05,
			QueueBytes:   1 << 20,
			Impair:       im,
		}, 1234)
		out := ""
		l.SetReceiver(func(p Payload) {
			out += fmt.Sprintf("%v@%v;", p, loop.Now())
		})
		for i := 0; i < 300; i++ {
			l.Send(i, 700)
		}
		loop.RunUntilIdle()
		return out
	}
	if trace(Impairments{}) != trace(Impairments{}) {
		t.Fatal("same-seed runs differ")
	}
	if (Impairments{}).Enabled() {
		t.Fatal("zero Impairments reports Enabled")
	}
}

// TestImpairedRunsDeterministic asserts impaired delivery sequences are
// a pure function of the seed.
func TestImpairedRunsDeterministic(t *testing.T) {
	im := Impairments{
		GEGoodToBad: 0.01, GEBadToGood: 0.3, GELossBad: 0.6,
		ReorderProb: 0.02, DupProb: 0.02, ExtraJitter: 5 * time.Millisecond,
	}
	trace := func(seed uint64) string {
		loop := sim.NewLoop()
		l := impairedLink(loop, im, seed)
		out := ""
		l.SetReceiver(func(p Payload) { out += fmt.Sprintf("%v@%v;", p, loop.Now()) })
		for i := 0; i < 1000; i++ {
			l.Send(i, 300)
		}
		loop.RunUntilIdle()
		return out
	}
	if trace(77) != trace(77) {
		t.Fatal("same seed produced different impaired traces")
	}
	if trace(77) == trace(78) {
		t.Fatal("different seeds produced identical impaired traces (RNG not wired?)")
	}
}
