package experiment

import (
	"time"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/stats"
)

func init() {
	register("protocols", "Protocol arms: HTTP/1.1, SPDY, HTTP/2 and QUIC-style transport on the RRC grid", runProtocols)
}

// protocolArms enumerates the four wire protocols the composable
// transport refactor makes comparable: the paper's two, plus the h2 and
// QUIC-style arms that answer its §7 "would SPDY's successors fare
// better?" question. The quic-no0rtt arm ablates resumption so the
// 0-RTT contribution is separable from loss isolation.
var protocolArms = []struct {
	name string
	set  func(*Options)
}{
	{"http", func(o *Options) { o.Mode = browser.ModeHTTP }},
	{"spdy", func(o *Options) { o.Mode = browser.ModeSPDY }},
	{"h2", func(o *Options) { o.Mode = browser.ModeH2 }},
	{"quic", func(o *Options) { o.Mode = browser.ModeQUIC }},
	{"quic-no0rtt", func(o *Options) { o.Mode = browser.ModeQUIC; o.QUICNo0RTT = true }},
}

// protocolScenarios is the RRC-idle impairment grid: the clean 3G
// baseline, stretched promotion delays (the paper's central pathology,
// doubled), burst loss on top of the radio, and the §6.2.1 RTT-reset
// fix arm — the conditions under which the protocol orderings of
// Figures 3/4 and Table 2 were derived.
var protocolScenarios = []struct {
	name string
	set  func(*Options)
}{
	{"3g-idle", func(*Options) {}},
	{"3g-promo2x", func(o *Options) { o.PromotionScale = 2 }},
	{"3g-bursty", func(o *Options) {
		o.Impair = netem.Impairments{
			GEGoodToBad: 0.002, GEBadToGood: 0.4, GELossBad: 0.25,
			ExtraJitter: 2 * time.Millisecond,
		}
	}},
	{"3g-rttreset", func(o *Options) { o.ResetRTTAfterIdle = true }},
}

// protocolRow aggregates one (scenario, protocol) cell.
type protocolRow struct {
	plt      float64
	retx     float64
	spurious float64
	meanCwnd float64
	radioMJ  float64
}

func protocolCell(h Harness, scen, arm func(*Options)) protocolRow {
	o := Options{Network: Net3G}
	scen(&o)
	arm(&o)
	rs := sweepStats(h, o)
	n := float64(len(rs))
	var row protocolRow
	row.plt = stats.Mean(allPLTStats(rs))
	for _, r := range rs {
		row.retx += float64(r.Retx) / n
		row.spurious += float64(r.Spurious) / n
		row.meanCwnd += r.MeanCwnd / n
		row.radioMJ += r.RadioMJ / n
	}
	return row
}

// runProtocols re-runs the paper's comparison with the h2 and
// QUIC-style arms beside HTTP and SPDY on the RRC-idle impairment grid:
// Figure 3/4-style PLT and retransmission aggregates and Table 2-style
// cwnd means, per protocol per scenario. The SPDY rows reproduce the
// baseline experiments exactly (the new arms share every layer beneath
// the framing); the quic rows isolate what stream-level loss recovery
// and 0-RTT buy against the promotion pathology that SPDY's single TCP
// connection concentrates.
func runProtocols(h Harness) *Report {
	r := NewReport("protocols", "HTTP/1.1 vs SPDY vs HTTP/2 vs QUIC-style transport on 3G",
		"the paper conjectures (§7) that SPDY's fragility is TCP's, not multiplexing's: a transport with per-stream loss isolation and resumable handshakes should keep the single-session win without inheriting the single-connection damage")
	for _, scen := range protocolScenarios {
		r.Printf("== scenario %s ==", scen.name)
		r.Printf("%-12s %8s %8s %9s %9s %9s",
			"protocol", "plt_s", "retx", "spurious", "mean_cwnd", "radio_mj")
		rows := map[string]protocolRow{}
		for _, arm := range protocolArms {
			row := protocolCell(h, scen.set, arm.set)
			rows[arm.name] = row
			r.Printf("%-12s %8.3f %8.1f %9.1f %9.1f %9.0f",
				arm.name, row.plt, row.retx, row.spurious, row.meanCwnd, row.radioMJ)
		}
		spdy := rows["spdy"]
		for _, name := range []string{"http", "spdy", "h2", "quic", "quic-no0rtt"} {
			r.Metric(scen.name+" "+name+" plt", rows[name].plt, "s")
		}
		if spdy.plt > 0 {
			r.Metric(scen.name+" h2 plt vs spdy", 100*(rows["h2"].plt/spdy.plt-1), "%")
			r.Metric(scen.name+" quic plt vs spdy", 100*(rows["quic"].plt/spdy.plt-1), "%")
		}
		if no0 := rows["quic-no0rtt"].plt; no0 > 0 {
			r.Metric(scen.name+" quic 0rtt saving", 100*(1-rows["quic"].plt/no0), "%")
		}
	}
	return r
}
