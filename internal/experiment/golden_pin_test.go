package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// goldenPins are the SHA-256 digests of the golden reports as they
// stood before the composable-transport refactor landed. The layering
// tests prove the composed stack equals the old monolith run by run;
// this test proves nobody quietly re-blessed the files instead. A pin
// only moves when a change is *meant* to alter paper-era output, and
// moving it is a deliberate, reviewable act — `-update` alone cannot.
//
// protocols.golden is deliberately unpinned: it is the new experiment's
// own golden, born with the refactor, and TestGoldenReports already
// locks its bytes.
var goldenPins = map[string]string{
	"fig3.golden":     "b3e4692806ec1828da3c33791e8be4ab666263f9eb374c3e714e38d227a07d66",
	"table2.golden":   "c4a55ebed879f65c6cc369bca65a2136dd5dd01bc507f850bffac01fc2804ac0",
	"recovery.golden": "def5f27fe9f69e50bb256d6626829ce3ee05a71a3ef8adc04271e653d383636b",
}

// TestGoldenFilesPinned re-hashes the checked-in pre-refactor goldens.
// It reads the files, not the experiments, so it stays green even while
// TestGoldenReports is being re-blessed — catching exactly the case
// where -update rewrote bytes it was not supposed to touch.
func TestGoldenFilesPinned(t *testing.T) {
	for name, want := range goldenPins {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want {
			t.Errorf("%s: sha256 %s, pinned %s — a pre-refactor golden moved; if that is intended, update the pin in the same change and say why",
				name, got, want)
		}
	}
}
