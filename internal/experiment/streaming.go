// Streaming sweep engine: the bounded-memory counterpart of Sweep.
//
// A full Result retains a probe trace, telemetry samples and the page
// graph (~2 MB per condition even after the columnar squeeze), so the
// store-everything sweep caps how many simulated users fit in memory.
// The streaming path distills each finished run into a RunStats — a few
// hundred bytes of exact per-run aggregates — and releases the Result
// immediately. RunStats still carries the per-run PLT vector (~20
// floats), so experiments reconstruct their flat sample vectors in seed
// order and every downstream statistic is bit-identical to the
// store-everything path; what is dropped is only the bulky machinery no
// converted experiment reads.
package experiment

import (
	"sync"
	"time"

	"spdier/internal/tcpsim"
	"spdier/internal/trace"
)

// RunStats is the bounded-size distillation of one Result: everything
// the sweep-style experiments aggregate across runs, and nothing else.
// All fields are exact — identical whether derived from a full-trace or
// a lean (rare-only probe) Result.
type RunStats struct {
	Seed uint64

	// PLTs holds page load times in seconds, in visit order, skipping
	// incomplete pages; Sites holds the matching 1-based Table 1 site
	// index per entry. Concatenating PLTs across runs in seed order
	// reproduces the store-everything sample vectors bit-for-bit.
	PLTs  []float64
	Sites []int

	Incomplete int
	Retx       int
	Spurious   int
	RadioMJ    float64
	DurationS  float64

	// Per-cause retransmission ledger (the -exp recovery matrix). RTORetx
	// and FastRetx partition the paper-era causes; TLPProbes, RACKRetx and
	// FrtoUndos count fix-arm activity and are zero with the arms off.
	// Retx above remains the wire total (RTO + fast + RACK + TLP probes).
	RTORetx   int
	FastRetx  int
	TLPProbes int
	RACKRetx  int
	FrtoUndos int

	// Probe aggregates (Table 2, Figure 13).
	MeanCwnd float64
	MaxCwnd  float64
	// RetxConns counts connections with at least one retransmission;
	// RetxPerConn and TopConnRetxShare are meaningful when it is > 0.
	RetxConns           int
	RetxPerConn         float64
	TopConnRetxShare    float64
	SingleConnBurstFrac float64

	// Telemetry aggregates (Figure 13, Table 2).
	PeakConns int
	// TpAvgBps is the mean of the positive 1-second throughput bins
	// (valid when TpHasPos); TpMaxBps is their maximum.
	TpAvgBps float64
	TpHasPos bool
	TpMaxBps float64
}

// retxBurstWindow is the clustering window Figure 13 uses.
const retxBurstWindow = 500 * time.Millisecond

// NewRunStats distills a Result. The derivations repeat the experiments'
// own per-run loops exactly, so converted experiments report
// bit-identically to their store-everything versions.
func NewRunStats(res *Result) *RunStats {
	rs := &RunStats{
		Seed:       res.Opts.Seed,
		Incomplete: res.Incomplete,
		RadioMJ:    res.RadioMJ,
		DurationS:  res.Duration.Seconds(),
	}
	for i, rec := range res.Records {
		if rec == nil {
			continue
		}
		rs.Sites = append(rs.Sites, res.VisitOrder[i]+1)
		rs.PLTs = append(rs.PLTs, rec.PLT().Seconds())
	}
	if res.Recorder != nil {
		rs.Retx = res.Recorder.Retransmissions()
		rs.Spurious = res.Recorder.SpuriousRetransmissions()
		rs.RTORetx = res.Recorder.Count(tcpsim.EvRetransmit)
		rs.FastRetx = res.Recorder.Count(tcpsim.EvFastRetx)
		rs.TLPProbes = res.Recorder.Count(tcpsim.EvTLPProbe)
		rs.RACKRetx = res.Recorder.Count(tcpsim.EvRACKRetx)
		rs.FrtoUndos = res.Recorder.Count(tcpsim.EvFRTOUndo)
		rs.MeanCwnd = res.Recorder.MeanCwnd()
		rs.MaxCwnd = res.Recorder.MaxCwnd()
		byConn := map[string]int{}
		res.Recorder.Each(func(s tcpsim.ProbeSample) bool {
			if s.Event == tcpsim.EvRetransmit || s.Event == tcpsim.EvFastRetx {
				byConn[s.ConnID]++
			}
			return true
		})
		total, top := 0, 0
		for _, n := range byConn {
			total += n
			if n > top {
				top = n
			}
		}
		rs.RetxConns = len(byConn)
		if total > 0 {
			rs.RetxPerConn = float64(total) / float64(len(byConn))
			rs.TopConnRetxShare = float64(top) / float64(total)
		}
		bursts := trace.FindRetxBursts(res.Recorder, retxBurstWindow)
		rs.SingleConnBurstFrac = trace.SingleConnBurstFraction(bursts)
	}
	for _, s := range res.Samples {
		if s.ActiveConns > rs.PeakConns {
			rs.PeakConns = s.ActiveConns
		}
	}
	ts := res.ThroughputSeries()
	var sum, n float64
	for _, v := range ts.Bins {
		if v > 0 {
			sum += v
			n++
			if v > rs.TpMaxBps {
				rs.TpMaxBps = v
			}
		}
	}
	if n > 0 {
		rs.TpAvgBps = sum / n
		rs.TpHasPos = true
	}
	return rs
}

// RunStats executes (or replays) one run and returns its aggregates.
// Aggregates are memoized separately from full Results: a cached full
// Result is distilled for free; otherwise the run executes with a lean
// (rare-only) probe recorder and the Result is released immediately —
// aggregate-only sweeps never materialize the columnar trace.
func (r *Runner) RunStats(opts Options) *RunStats {
	statsOpts := opts
	statsOpts.LeanProbe = false // lean and full runs share one aggregate entry
	key, ok := CacheKey(statsOpts)
	if !ok {
		return NewRunStats(Run(opts))
	}
	return r.stats.getOrRun(key, func() *RunStats {
		if res, hit := r.cache.peek(key); hit {
			return NewRunStats(res)
		}
		lean := opts
		lean.LeanProbe = true
		return NewRunStats(Run(lean))
	})
}

// SweepStats runs one condition across h.Runs seeds, returning per-run
// aggregates ordered by seed. Like Sweep, the output is bit-for-bit
// identical regardless of parallelism; unlike Sweep, memory stays flat —
// each worker releases its Result the moment it is distilled.
func (r *Runner) SweepStats(h Harness, base Options) []*RunStats {
	out := make([]*RunStats, h.Runs)
	r.beginSweep(h.Runs)
	if h.Runs <= 1 || r.parallel <= 1 {
		for i := range out {
			opts := base
			opts.Seed = h.Seed + uint64(i)
			out[i] = r.RunStats(opts)
			r.noteRun()
		}
		return out
	}
	var wg sync.WaitGroup
	for i := range out {
		opts := base
		opts.Seed = h.Seed + uint64(i)
		wg.Add(1)
		go func(i int, opts Options) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			out[i] = r.RunStats(opts)
			r.noteRun()
		}(i, opts)
	}
	wg.Wait()
	return out
}

// SweepEach streams full Results through fn strictly in seed order,
// releasing each one afterwards. Seeds are computed in parallel chunks
// of the worker-pool size, so at most `parallel` Results are in flight
// while fn observes exactly the sequence a serial sweep would produce —
// for the few experiments whose flat fold order over full Results cannot
// be regrouped per run without perturbing float low bits.
func (r *Runner) SweepEach(h Harness, base Options, fn func(*Result)) {
	r.beginSweep(h.Runs)
	if h.Runs <= 1 || r.parallel <= 1 {
		for i := 0; i < h.Runs; i++ {
			opts := base
			opts.Seed = h.Seed + uint64(i)
			res := r.Run(opts)
			r.noteRun()
			fn(res)
		}
		return
	}
	chunk := r.parallel
	buf := make([]*Result, chunk)
	for lo := 0; lo < h.Runs; lo += chunk {
		hi := lo + chunk
		if hi > h.Runs {
			hi = h.Runs
		}
		var wg sync.WaitGroup
		for i := lo; i < hi; i++ {
			opts := base
			opts.Seed = h.Seed + uint64(i)
			wg.Add(1)
			go func(slot int, opts Options) {
				defer wg.Done()
				r.sem <- struct{}{}
				defer func() { <-r.sem }()
				buf[slot] = r.Run(opts)
				r.noteRun()
			}(i-lo, opts)
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			fn(buf[i-lo])
			buf[i-lo] = nil
		}
	}
}

// Folder accumulates RunStats into mergeable state — typically a struct
// of stats.Moments / stats.QuantileSketch / stats.Hist fields.
type Folder interface {
	// Fold incorporates one run.
	Fold(*RunStats)
	// Merge incorporates another shard's accumulated state. The argument
	// is always a Folder produced by the same constructor.
	Merge(Folder)
}

// sweepShardSize fixes how many consecutive seeds each shard accumulator
// folds. It is a pure function of nothing — the shard partition depends
// only on h.Runs — so shard boundaries, and therefore every float fold
// order, are identical at any parallelism: serial and sharded-parallel
// sweeps produce bit-identical merged state. The process fabric reuses
// exactly this partition, which is why a fabric sweep's merged state is
// bit-identical to the in-process engine at any worker count.
const sweepShardSize = 16

// ShardCount reports how many fixed-size shards a sweep of runs seeds
// partitions into — the same partition SweepStream folds and merges.
func ShardCount(runs int) int {
	if runs <= 0 {
		return 0
	}
	return (runs + sweepShardSize - 1) / sweepShardSize
}

// ShardRange reports the half-open seed-index range [lo, hi) of shard
// si in a sweep of runs seeds.
func ShardRange(runs, si int) (lo, hi int) {
	lo = si * sweepShardSize
	hi = lo + sweepShardSize
	if hi > runs {
		hi = runs
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// FillShard folds shard si's runs into f exactly as the in-process
// sweep path does: consecutive seeds, fold order ascending, one lean
// aggregate run per seed. Worker processes and the in-process engine
// both go through this one function, so their accumulator states are
// identical by construction. onRun, when non-nil, is invoked after each
// folded run (the fabric worker streams a progress frame from it).
func (r *Runner) FillShard(h Harness, base Options, si int, f Folder, onRun func()) {
	lo, hi := ShardRange(h.Runs, si)
	for i := lo; i < hi; i++ {
		opts := base
		opts.Seed = h.Seed + uint64(i)
		f.Fold(r.RunStats(opts))
		r.noteRun()
		if onRun != nil {
			onRun()
		}
	}
}

// SweepStream folds one condition's runs into shard accumulators and
// merges the shards in index order. Workers fold their seed range
// sequentially and release each Result immediately, so memory stays flat
// no matter how large h.Runs grows. When a ShardExecutor is installed
// (SetShardExecutor), each shard is offered to it first — the process
// fabric computes it in a worker process — and any declined shard falls
// back to the in-process fold; either way the merge below consumes
// shards strictly in index order, so the result is bit-identical.
func (r *Runner) SweepStream(h Harness, base Options, newShard func() Folder) Folder {
	r.beginSweep(h.Runs)
	if h.Runs <= 0 {
		return newShard()
	}
	shards := ShardCount(h.Runs)
	out := make([]Folder, shards)
	ex := r.shardExecutor()
	fill := func(si int) {
		if ex != nil {
			if f := ex.ExecuteShard(h, base, si, newShard); f != nil {
				out[si] = f
				return
			}
		}
		f := newShard()
		r.FillShard(h, base, si, f, nil)
		out[si] = f
	}
	// Dispatch width: the runner's own pool, widened to the executor's
	// worker-process count when one is installed — a dispatch goroutine
	// for a remote shard just waits on a pipe, so the in-process
	// GOMAXPROCS bound would strand worker processes idle. The executor's
	// own slot pool still bounds actual remote compute.
	width := r.parallel
	if wp, ok := ex.(interface{ Workers() int }); ok && wp.Workers() > width {
		width = wp.Workers()
	}
	if shards == 1 || width <= 1 {
		for si := range out {
			fill(si)
		}
	} else {
		sem := r.sem
		if width > r.parallel {
			sem = make(chan struct{}, width)
		}
		var wg sync.WaitGroup
		for si := range out {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				fill(si)
			}(si)
		}
		wg.Wait()
	}
	acc := out[0]
	for _, f := range out[1:] {
		acc.Merge(f)
	}
	return acc
}

// The report-side helpers below mirror pltBySite/allPLTs/meanRetx over
// RunStats, preserving the exact append orders so converted experiments
// stay bit-identical.

// pltBySiteStats maps 1-based site index to PLT seconds across runs.
func pltBySiteStats(rs []*RunStats) map[int][]float64 {
	out := make(map[int][]float64)
	for _, r := range rs {
		for i, site := range r.Sites {
			out[site] = append(out[site], r.PLTs[i])
		}
	}
	return out
}

// allPLTStats concatenates every run's PLTs in seed order.
func allPLTStats(rs []*RunStats) []float64 {
	var out []float64
	for _, r := range rs {
		out = append(out, r.PLTs...)
	}
	return out
}

// meanRetxStats averages per-run retransmission totals.
func meanRetxStats(rs []*RunStats) float64 {
	var s float64
	for _, r := range rs {
		s += float64(r.Retx)
	}
	return s / float64(len(rs))
}
