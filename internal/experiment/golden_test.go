package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment reports")

// TestGoldenReports pins the byte-exact rendering of representative
// experiments: fig3 (the paper's headline PLT comparison), table2 (the
// CC-variant sweep) and recovery (the loss-recovery fix-arm matrix,
// whose paper-era rows double as an arms-off baseline pin). Everything
// feeds these bytes — the RNG stream, the TCP model, the RRC machine,
// the report formatting — so any unintended behaviour change anywhere
// in the stack shows up as a golden diff. Intended changes are
// re-blessed with `go test -run TestGoldenReports -update
// ./internal/experiment/`.
func TestGoldenReports(t *testing.T) {
	h := Harness{Runs: 2, Seed: 1}
	for _, id := range []string{"fig3", "table2", "recovery", "protocols"} {
		id := id
		t.Run(id, func(t *testing.T) {
			spec, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			got := spec.Run(h).String()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s report drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}
