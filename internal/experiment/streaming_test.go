package experiment

import (
	"reflect"
	"testing"

	"spdier/internal/browser"
	"spdier/internal/stats"
	"spdier/internal/webpage"
)

// TestRunStatsLeanMatchesFull: distilling a lean (rare-only probe) run
// must produce exactly the aggregates of the full-trace run — the
// property that lets aggregate-only sweeps skip the columnar trace.
func TestRunStatsLeanMatchesFull(t *testing.T) {
	base := Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: 5, Sites: webpage.Table1()[:5]}
	full := NewRunStats(Run(base))
	lean := base
	lean.LeanProbe = true
	got := NewRunStats(Run(lean))
	if !reflect.DeepEqual(got, full) {
		t.Fatalf("lean RunStats differ from full:\n got %+v\nwant %+v", got, full)
	}
}

// TestRunStatsMatchesSweepDerivation: the distilled vectors must
// reproduce what a store-everything sweep derives by hand.
func TestRunStatsMatchesSweepDerivation(t *testing.T) {
	h := Harness{Runs: 3, Seed: 9}
	base := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Sites: webpage.Table1()[:4]}
	results := NewRunner(1).Sweep(h, base)
	rs := NewRunner(1).SweepStats(h, base)

	if got, want := allPLTStats(rs), allPLTs(results); !reflect.DeepEqual(got, want) {
		t.Fatalf("allPLTs mismatch:\n got %v\nwant %v", got, want)
	}
	if got, want := pltBySiteStats(rs), pltBySite(results); !reflect.DeepEqual(got, want) {
		t.Fatalf("pltBySite mismatch:\n got %v\nwant %v", got, want)
	}
	if got, want := meanRetxStats(rs), meanRetx(results); got != want {
		t.Fatalf("meanRetx mismatch: %v vs %v", got, want)
	}
}

// TestSweepStatsParallelMatchesSerial: per-run aggregates must be
// bit-identical at any parallelism, including when lean runs replay from
// the aggregate cache.
func TestSweepStatsParallelMatchesSerial(t *testing.T) {
	h := Harness{Runs: 4, Seed: 11}
	base := Options{Mode: browser.ModeSPDY, Network: NetWiFi, Sites: webpage.Table1()[:4]}
	serial := NewRunner(1).SweepStats(h, base)
	par := NewRunner(4).SweepStats(h, base)
	if !reflect.DeepEqual(par, serial) {
		t.Fatalf("parallel SweepStats differ from serial")
	}
	// Second pass on the same runner replays every entry from the
	// aggregate cache.
	r := NewRunner(4)
	r.SweepStats(h, base)
	if s := r.StreamCacheStats(); s.Misses != uint64(h.Runs) {
		t.Fatalf("first pass: %d stream misses, want %d", s.Misses, h.Runs)
	}
	cached := r.SweepStats(h, base)
	if s := r.StreamCacheStats(); s.Hits != uint64(h.Runs) {
		t.Fatalf("second pass: %d stream hits, want %d", s.Hits, h.Runs)
	}
	if !reflect.DeepEqual(cached, serial) {
		t.Fatalf("cached SweepStats differ from serial")
	}
}

// momentsFolder is a minimal Folder for the engine tests.
type momentsFolder struct {
	plt  stats.Moments
	pltQ stats.QuantileSketch
	n    int
}

func newMomentsFolder() Folder { return &momentsFolder{} }

func (f *momentsFolder) Fold(rs *RunStats) {
	for _, p := range rs.PLTs {
		f.plt.Add(p)
		f.pltQ.Add(p)
	}
	f.n++
}

func (f *momentsFolder) Merge(o Folder) {
	of := o.(*momentsFolder)
	f.plt.Merge(&of.plt)
	f.pltQ.Merge(&of.pltQ)
	f.n += of.n
}

// TestSweepStreamParallelMatchesSerial: the merged accumulator state must
// be bit-identical whether shards fill serially or across the worker
// pool. Runs > sweepShardSize forces a real multi-shard merge.
func TestSweepStreamParallelMatchesSerial(t *testing.T) {
	h := Harness{Runs: sweepShardSize + 3, Seed: 2}
	base := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Sites: webpage.Table1()[:2]}
	serial := NewRunner(1).SweepStream(h, base, newMomentsFolder).(*momentsFolder)
	par := NewRunner(4).SweepStream(h, base, newMomentsFolder).(*momentsFolder)
	if !reflect.DeepEqual(par, serial) {
		t.Fatalf("parallel SweepStream state differs from serial:\n got %+v\nwant %+v", par, serial)
	}
	if serial.n != h.Runs {
		t.Fatalf("folded %d runs, want %d", serial.n, h.Runs)
	}
	if int(serial.plt.N()) != len(allPLTStats(NewRunner(1).SweepStats(h, base))) {
		t.Fatalf("fold count mismatch")
	}
}

// TestSweepEachOrderAndEquality: SweepEach must deliver exactly the
// serial sweep's Results, in seed order, at any parallelism.
func TestSweepEachOrderAndEquality(t *testing.T) {
	h := Harness{Runs: 5, Seed: 21}
	base := Options{Mode: browser.ModeSPDY, Network: NetWiFi, Sites: webpage.Table1()[:3]}
	want := NewRunner(1).Sweep(h, base)

	for _, workers := range []int{1, 3} {
		var seeds []uint64
		var plts []float64
		NewRunner(workers).SweepEach(h, base, func(res *Result) {
			seeds = append(seeds, res.Opts.Seed)
			plts = append(plts, res.PLTSeconds()...)
		})
		var wantSeeds []uint64
		var wantPLTs []float64
		for _, res := range want {
			wantSeeds = append(wantSeeds, res.Opts.Seed)
			wantPLTs = append(wantPLTs, res.PLTSeconds()...)
		}
		if !reflect.DeepEqual(seeds, wantSeeds) {
			t.Fatalf("workers=%d: delivery order %v, want %v", workers, seeds, wantSeeds)
		}
		if !reflect.DeepEqual(plts, wantPLTs) {
			t.Fatalf("workers=%d: folded PLTs differ", workers)
		}
	}
}

// TestLeanRunNotReplayedAsFull: a lean Result must never satisfy a
// trace-walking caller's cache lookup, and vice versa the full Result
// must be reused for aggregates when already resident.
func TestLeanRunNotReplayedAsFull(t *testing.T) {
	opts := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Seed: 3, Sites: webpage.Table1()[:2]}
	kFull, ok := CacheKey(opts)
	if !ok {
		t.Fatalf("expected cacheable options")
	}
	lean := opts
	lean.LeanProbe = true
	kLean, ok := CacheKey(lean)
	if !ok {
		t.Fatalf("expected cacheable lean options")
	}
	if kFull == kLean {
		t.Fatalf("lean and full runs share cache key %q", kFull)
	}

	// A runner that has computed aggregates via the lean path must still
	// produce a full trace when the Result is requested directly.
	r := NewRunner(1)
	rs := r.RunStats(opts)
	res := r.Run(opts)
	if res.Recorder.RareOnly() {
		t.Fatalf("full Run returned a rare-only recorder after lean aggregate pass")
	}
	if got := NewRunStats(res); !reflect.DeepEqual(got, rs) {
		t.Fatalf("aggregates from full trace differ from lean pass")
	}

	// The reverse order: with the full Result resident, RunStats must
	// peek it instead of simulating a lean twin.
	r2 := NewRunner(1)
	r2.Run(opts)
	miss := r2.CacheStats().Misses
	r2.RunStats(opts)
	if r2.CacheStats().Misses != miss {
		t.Fatalf("RunStats re-simulated despite resident full Result")
	}
}
