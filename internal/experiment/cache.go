package experiment

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// CacheKey returns the canonical serialization of opts: two Options that
// produce bit-for-bit identical simulations map to the same key, and any
// field that changes the simulation changes the key. Defaults are applied
// first, so a zero field and its explicit default collide as they must.
//
// LeanProbe does not change the simulation, but it changes how much of
// the probe trace the Result retains, so it is part of the key: a lean
// Result must never be replayed to an experiment that walks the trace.
//
// Runs configured through Pages have no canonical key (the pages are
// arbitrary pointers, not declarative specs) and return ok == false:
// such runs are never memoized.
func CacheKey(opts Options) (key string, ok bool) {
	o := opts.withDefaults()
	if len(o.Pages) > 0 {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "net=%s|mode=%s|seed=%d|think=%d", o.Network, o.Mode, o.Seed, o.ThinkTime)
	fmt.Fprintf(&b, "|ping=%t,%d,%d", o.PingKeepalive, o.PingInterval, o.PingBytes)
	fmt.Fprintf(&b, "|ssai_off=%t|rttreset=%t|cc=%s|nomcache=%t",
		o.SlowStartAfterIdleOff, o.ResetRTTAfterIdle, o.CC, o.NoMetricsCache)
	fmt.Fprintf(&b, "|sess=%d|latebind=%t|pipe=%t|nobeacons=%t|fastorigin=%t|noundo=%t|lean=%t",
		o.SPDYSessions, o.SPDYLateBinding, o.Pipelining, o.NoBeacons, o.FastOrigin, o.DisableUndo, o.LeanProbe)
	// Loss-recovery fix arms change the simulation; configs that differ
	// only in an arm must never alias.
	fmt.Fprintf(&b, "|tlp=%t|rack=%t|frto=%t", o.TLP, o.RACK, o.FRTO)
	// Protocol-arm knobs (h2 equal-framing oracle mode, QUIC 0-RTT
	// ablation) likewise change the simulation.
	fmt.Fprintf(&b, "|h2eq=%t|q0off=%t", o.H2EqualFraming, o.QUICNo0RTT)
	// PromotionScale 1 and 0 both mean "unscaled"; canonicalize so they
	// share a key, as they share a simulation.
	promo := o.PromotionScale
	if promo == 1 {
		promo = 0
	}
	fmt.Fprintf(&b, "|xlat=%d|promo=%g|noloss=%t", o.ExtraLatency, promo, o.NoLinkLoss)
	if im := o.Impair; im.Enabled() {
		fmt.Fprintf(&b, "|imp=[%g,%g,%g,%g,%g,%d,%g,%d]",
			im.GEGoodToBad, im.GEBadToGood, im.GELossGood, im.GELossBad,
			im.ReorderProb, im.ReorderDelay, im.DupProb, im.ExtraJitter)
	}
	fmt.Fprintf(&b, "|sample=%d|pstride=%d|sites=", o.SampleEvery, o.ProbeStride)
	for _, s := range o.Sites {
		fmt.Fprintf(&b, "[%d,%s,%g,%g,%g,%g,%g,%g]",
			s.Index, s.Category, s.TotalObjs, s.AvgSizeKB, s.Domains, s.TextObjs, s.JSCSS, s.ImgsOther)
	}
	return b.String(), true
}

// CacheStats counts cache outcomes. A hit is any lookup that reuses a
// completed or in-flight computation; a miss is a lookup that had to run
// the simulation itself.
type CacheStats struct {
	Hits, Misses uint64
}

// HitRate is Hits / (Hits + Misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// DefaultCacheCapacity bounds how many Results a runner retains. A full
// 20-site run used to keep ~16 MB of boxed tcp_probe samples; the
// columnar, stride-downsampled recorder holds the same run in ~2 MB, so
// the bound rises accordingly. The LRU still evicts beyond capacity while
// the baseline conditions every experiment re-sweeps stay resident.
const DefaultCacheCapacity = 256

// DefaultStatsCacheCapacity bounds the per-run aggregate (RunStats)
// cache. Entries are a few hundred bytes — roughly four orders of
// magnitude smaller than a full Result — so the streaming sweep path can
// afford to remember far more conditions than the Result cache.
const DefaultStatsCacheCapacity = 1 << 16

// memoCache memoizes computed values by canonical Options key, evicting
// least-recently-used entries beyond capacity. Safe for concurrent use;
// concurrent lookups of the same key run the computation exactly once
// (the losers block until the winner finishes).
type memoCache[V any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[V]
	cap     int    // max retained entries; <= 0 means unbounded
	tick    uint64 // LRU clock
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type memoEntry[V any] struct {
	once    sync.Once
	done    atomic.Bool // set after once completes; lets peek skip in-flight entries
	val     V
	lastUse uint64 // guarded by memoCache.mu
}

func newMemoCache[V any](capacity int) *memoCache[V] {
	return &memoCache[V]{entries: make(map[string]*memoEntry[V], 16), cap: capacity}
}

// resultCache memoizes full simulation Results.
type resultCache = memoCache[*Result]

func newResultCache(capacity int) *resultCache {
	return newMemoCache[*Result](capacity)
}

// getOrRun returns the memoized value for key, computing it with run on
// the first lookup.
func (c *memoCache[V]) getOrRun(key string, run func() V) V {
	c.mu.Lock()
	e, hit := c.entries[key]
	if !hit {
		if c.cap > 0 && len(c.entries) >= c.cap {
			c.evictLRU()
		}
		e = &memoEntry[V]{}
		c.entries[key] = e
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.val = run()
		e.done.Store(true)
	})
	return e.val
}

// peek returns the completed value for key without computing anything.
// In-flight entries are skipped rather than waited on.
func (c *memoCache[V]) peek(key string) (V, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.tick++
		e.lastUse = c.tick
	}
	c.mu.Unlock()
	if ok && e.done.Load() {
		return e.val, true
	}
	var zero V
	return zero, false
}

// evictLRU drops the least-recently-used entry. Caller holds mu. An
// in-flight entry may be evicted; its waiters keep their pointer and
// finish normally, the result just is not reused.
func (c *memoCache[V]) evictLRU() {
	var victim string
	var oldest uint64
	for k, e := range c.entries {
		if victim == "" || e.lastUse < oldest {
			victim, oldest = k, e.lastUse
		}
	}
	delete(c.entries, victim)
}

// stats returns a snapshot of the hit/miss counters.
func (c *memoCache[V]) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// reset drops all memoized values and zeroes the counters.
func (c *memoCache[V]) reset() {
	c.mu.Lock()
	c.entries = make(map[string]*memoEntry[V])
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// len reports the number of memoized (or in-flight) conditions.
func (c *memoCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
