package experiment

import (
	"reflect"
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/webpage"
)

// TestCacheKeySeparatesEveryField is the runtime twin of the fieldcover
// rule on (Options, CacheKey): for every Options field there must be a
// perturbation under which the cache key changes — otherwise two
// different configurations would replay each other's Results. The
// perturbation table is keyed by field name and the test fails on any
// Options field without an entry, so adding a field forces a decision
// here as well as in CacheKey itself.
func TestCacheKeySeparatesEveryField(t *testing.T) {
	perturb := map[string]func(*Options){
		"Network":               func(o *Options) { o.Network = NetworkKind("perturbed") },
		"Mode":                  func(o *Options) { o.Mode = browser.Mode("perturbed") },
		"Seed":                  func(o *Options) { o.Seed = 987654321 },
		"Sites":                 func(o *Options) { o.Sites = []webpage.SiteSpec{{Index: 99, Category: "perturbed"}} },
		"Pages":                 func(o *Options) { o.Pages = []*webpage.Page{{}} },
		"ThinkTime":             func(o *Options) { o.ThinkTime = time.Nanosecond },
		"PingKeepalive":         func(o *Options) { o.PingKeepalive = true },
		"PingInterval":          func(o *Options) { o.PingInterval = time.Nanosecond },
		"PingBytes":             func(o *Options) { o.PingBytes = 7 },
		"SlowStartAfterIdleOff": func(o *Options) { o.SlowStartAfterIdleOff = true },
		"ResetRTTAfterIdle":     func(o *Options) { o.ResetRTTAfterIdle = true },
		"CC":                    func(o *Options) { o.CC = "perturbed" },
		"NoMetricsCache":        func(o *Options) { o.NoMetricsCache = true },
		"SPDYSessions":          func(o *Options) { o.SPDYSessions = 9 },
		"SPDYLateBinding":       func(o *Options) { o.SPDYLateBinding = true },
		"Pipelining":            func(o *Options) { o.Pipelining = true },
		"NoBeacons":             func(o *Options) { o.NoBeacons = true },
		"FastOrigin":            func(o *Options) { o.FastOrigin = true },
		"DisableUndo":           func(o *Options) { o.DisableUndo = true },
		"TLP":                   func(o *Options) { o.TLP = true },
		"RACK":                  func(o *Options) { o.RACK = true },
		"FRTO":                  func(o *Options) { o.FRTO = true },
		"H2EqualFraming":        func(o *Options) { o.H2EqualFraming = true },
		"QUICNo0RTT":            func(o *Options) { o.QUICNo0RTT = true },
		"Impair":                func(o *Options) { o.Impair = netem.Impairments{ReorderProb: 0.5} },
		"ExtraLatency":          func(o *Options) { o.ExtraLatency = time.Nanosecond },
		// 1 collides with 0 by design (both mean "unscaled"), so the
		// separating perturbation must be a real scale.
		"PromotionScale": func(o *Options) { o.PromotionScale = 2 },
		"NoLinkLoss":     func(o *Options) { o.NoLinkLoss = true },
		"SampleEvery":    func(o *Options) { o.SampleEvery = time.Nanosecond },
		"ProbeStride":    func(o *Options) { o.ProbeStride = 1 },
		"LeanProbe":      func(o *Options) { o.LeanProbe = true },
	}

	baseKey, ok := CacheKey(Options{})
	if !ok {
		t.Fatal("zero Options must be memoizable")
	}

	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		fn, covered := perturb[name]
		if !covered {
			t.Errorf("Options.%s has no perturbation here: decide how it separates cache keys (and wire it through CacheKey)", name)
			continue
		}
		var o Options
		fn(&o)
		key, ok := CacheKey(o)
		if name == "Pages" {
			if ok {
				t.Error("Options.Pages: page-configured runs have no canonical key and must never be memoized")
			}
			continue
		}
		if !ok {
			t.Errorf("Options.%s: perturbed Options must still be memoizable", name)
			continue
		}
		if key == baseKey {
			t.Errorf("Options.%s: perturbation did not change the cache key — two different configurations would share one cache entry", name)
		}
	}

	// The deliberate canonicalizations must survive: a zero and a unit
	// PromotionScale run the same simulation and must share a key.
	unit := Options{PromotionScale: 1}
	if key, ok := CacheKey(unit); !ok || key != baseKey {
		t.Errorf("PromotionScale=1 must share the unscaled key (got ok=%t, equal=%t)", ok, key == baseKey)
	}
}
