package experiment

import (
	"spdier/internal/browser"
	"spdier/internal/stats"
)

func init() {
	register("fig8", "Proxy-side timing: origin fetch vs client transfer queue", runFig8)
	register("fig9", "Average data transferred proxy→device per second", runFig9)
}

// runFig8 reproduces the proxy-side step timing: the origin leg is fast
// (avg 14 ms wait, 4 ms download in the paper); the delay lives between
// having the data and getting it onto the client link — SPDY moved the
// bottleneck from the client to the proxy.
func runFig8(h Harness) *Report {
	r := NewReport("fig8", "Proxy-side object timing (SPDY)",
		"origin wait avg 14 ms (max 46 ms), download avg 4 ms; transfer to client delayed significantly — responses queue at the proxy")
	res := cachedRun(Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: h.Seed, FastOrigin: true})

	var wait, dl, queue, transfer []float64
	for _, pr := range res.Proxy.Records {
		if pr.SendDone == 0 {
			continue
		}
		wait = append(wait, pr.OriginWait().Seconds()*1000)
		dl = append(dl, pr.OriginDownload().Seconds()*1000)
		queue = append(queue, pr.QueueDelay().Seconds()*1000)
		transfer = append(transfer, pr.Transfer().Seconds()*1000)
	}
	r.Metric("origin wait, mean", stats.Mean(wait), "ms")
	r.Metric("origin wait, max", stats.Quantile(wait, 1), "ms")
	r.Metric("origin download, mean", stats.Mean(dl), "ms")
	r.Metric("proxy queue delay, mean", stats.Mean(queue), "ms")
	r.Metric("proxy queue delay, p90", stats.Quantile(queue, 0.9), "ms")
	r.Metric("client transfer, mean", stats.Mean(transfer), "ms")
	r.Printf("objects measured: %d", len(wait))
	r.Printf("shape check: queue delay + transfer dwarf the origin leg — the proxy-origin link is not the bottleneck")

	// A representative per-object strip for one mid-run page, like the
	// paper's randomly chosen sample execution.
	r.Printf("%-6s %10s %10s %10s %10s  (ms; objects of one page in request order)", "obj", "wait", "origin-dl", "queue", "transfer")
	n := 0
	for _, pr := range res.Proxy.Records {
		if pr.SendDone == 0 || pr.ReqArrived.Seconds() < 300 {
			continue
		}
		r.Printf("%-6d %10.1f %10.1f %10.1f %10.1f", pr.Obj.ID,
			pr.OriginWait().Seconds()*1000, pr.OriginDownload().Seconds()*1000,
			pr.QueueDelay().Seconds()*1000, pr.Transfer().Seconds()*1000)
		if n++; n >= 25 {
			break
		}
	}
	return r
}

// runFig9 bins downlink bytes per second, aligned on page starts, and
// averages across runs: HTTP's parallel connections move more data per
// second than SPDY's single window.
func runFig9(h Harness) *Report {
	r := NewReport("fig9", "Average data transferred per second",
		"HTTP achieves higher per-second transfer than SPDY, sometimes 2×, despite identical link capacity")
	series := make(map[browser.Mode]*stats.BinSeries)
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		agg := stats.NewBinSeries(1.0)
		// Streamed in seed order via SweepEach: the bin accumulation
		// order matches the old store-everything sweep bit-for-bit.
		sweepEach(h, Options{Mode: mode, Network: Net3G}, func(res *Result) {
			s := res.ThroughputSeries()
			for i, v := range s.Bins {
				agg.Add(float64(i), v)
			}
		})
		agg.MeanOver(h.Runs)
		series[mode] = agg
	}

	// Mean transfer during the busy part of each page window (first 20 s
	// after each request) and the HTTP/SPDY ratio.
	busyMean := func(s *stats.BinSeries) float64 {
		var sum, n float64
		for i, v := range s.Bins {
			if i%60 < 20 && v > 0 {
				sum += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / n
	}
	hb := busyMean(series[browser.ModeHTTP]) / 1024
	sb := busyMean(series[browser.ModeSPDY]) / 1024
	r.Metric("HTTP mean transfer while busy", hb, "KB/s")
	r.Metric("SPDY mean transfer while busy", sb, "KB/s")
	if sb > 0 {
		r.Metric("HTTP/SPDY busy-transfer ratio", hb/sb, "×")
	}

	// Print the first two page windows second by second.
	r.Printf("%-5s %12s %12s   (KB transferred in that second)", "t[s]", "HTTP", "SPDY")
	for t := 0; t < 120; t += 2 {
		hv, sv := 0.0, 0.0
		if t < len(series[browser.ModeHTTP].Bins) {
			hv = series[browser.ModeHTTP].Bins[t] / 1024
		}
		if t < len(series[browser.ModeSPDY].Bins) {
			sv = series[browser.ModeSPDY].Bins[t] / 1024
		}
		r.Printf("%-5d %12.1f %12.1f", t, hv, sv)
	}
	return r
}
