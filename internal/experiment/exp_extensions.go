package experiment

import (
	"spdier/internal/browser"
	"spdier/internal/stats"
)

func init() {
	register("pipelining", "Extension: HTTP/1.1 pipelining (untestable in the paper)", runPipelining)
	register("latebinding", "Extension: SPDY over N connections with late binding (§6.2 proposal)", runLateBinding)
}

// runPipelining evaluates the mode the paper could not (Squid's
// pipelining support was rudimentary): HTTP with several outstanding
// requests per connection. Pipelining removes request round trips but
// keeps HTTP/1.1's in-order response rule, so head-of-line blocking —
// the very problem SPDY's multiplexing removes — caps the benefit.
func runPipelining(h Harness) *Report {
	r := NewReport("pipelining", "HTTP/1.1 pipelining over 3G",
		"not measured in the paper (Squid limitation); §2.1 predicts improvement bounded by head-of-line blocking")
	plain := sweep(h, Options{Mode: browser.ModeHTTP, Network: Net3G})
	piped := sweep(h, Options{Mode: browser.ModeHTTP, Network: Net3G, Pipelining: true})
	spdyR := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G})

	pm, qm, sm := stats.Mean(allPLTs(plain)), stats.Mean(allPLTs(piped)), stats.Mean(allPLTs(spdyR))
	r.Metric("HTTP mean PLT", pm, "s")
	r.Metric("HTTP+pipelining mean PLT", qm, "s")
	r.Metric("SPDY mean PLT", sm, "s")
	r.Metric("pipelining improvement over HTTP", 100*(pm-qm)/pm, "%")

	// Init time should collapse (requests no longer wait for a free
	// connection), like SPDY's.
	meanInit := func(results []*Result) float64 {
		var sum, n float64
		for _, res := range results {
			for _, rec := range res.Records {
				if rec == nil {
					continue
				}
				for _, or := range rec.Objects {
					if or.Done != 0 {
						sum += or.Init().Seconds() * 1000
						n++
					}
				}
			}
		}
		return sum / n
	}
	r.Metric("HTTP mean init", meanInit(plain), "ms")
	r.Metric("HTTP+pipelining mean init", meanInit(piped), "ms")
	return r
}

// runLateBinding evaluates the fix §6.2 sketches for the failed §6.1
// experiment: keep SPDY's burst of early requests, but deliver each
// response over whichever TCP connection has an open window right now,
// so one connection's spurious-timeout stall no longer delays every
// object pinned to it.
func runLateBinding(h Harness) *Report {
	r := NewReport("latebinding", "SPDY striped with late binding",
		"§6.2: late binding of responses to available connections should recover the multi-connection benefit that early binding squanders")
	single := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 1})
	early := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 8})
	late := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 8, SPDYLateBinding: true})

	sm, em, lm := stats.Mean(allPLTs(single)), stats.Mean(allPLTs(early)), stats.Mean(allPLTs(late))
	r.Metric("SPDY mean PLT, 1 connection", sm, "s")
	r.Metric("SPDY mean PLT, 8 early-bound", em, "s")
	r.Metric("SPDY mean PLT, 8 late-bound", lm, "s")
	r.Metric("late vs early improvement", 100*(em-lm)/em, "%")
	r.Metric("late vs single improvement", 100*(sm-lm)/sm, "%")
	r.Metric("retx/run, 8 early-bound", meanRetx(early), "retx")
	r.Metric("retx/run, 8 late-bound", meanRetx(late), "retx")
	return r
}
