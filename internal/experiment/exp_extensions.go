package experiment

import (
	"spdier/internal/browser"
	"spdier/internal/stats"
)

func init() {
	register("pipelining", "Extension: HTTP/1.1 pipelining (untestable in the paper)", runPipelining)
	register("latebinding", "Extension: SPDY over N connections with late binding (§6.2 proposal)", runLateBinding)
}

// runPipelining evaluates the mode the paper could not (Squid's
// pipelining support was rudimentary): HTTP with several outstanding
// requests per connection. Pipelining removes request round trips but
// keeps HTTP/1.1's in-order response rule, so head-of-line blocking —
// the very problem SPDY's multiplexing removes — caps the benefit.
func runPipelining(h Harness) *Report {
	r := NewReport("pipelining", "HTTP/1.1 pipelining over 3G",
		"not measured in the paper (Squid limitation); §2.1 predicts improvement bounded by head-of-line blocking")

	// This experiment needs full Results (it walks per-object records),
	// so it streams them through SweepEach: strictly seed order, each
	// Result released after folding. The flat accumulation order — and
	// therefore every reported bit — matches the old store-everything
	// sweep, at bounded memory.
	type pipeAgg struct {
		pltSum float64
		pltN   int
		// Init time should collapse (requests no longer wait for a free
		// connection), like SPDY's.
		initSum, initN float64
	}
	fold := func(agg *pipeAgg) func(*Result) {
		return func(res *Result) {
			for _, rec := range res.Records {
				if rec == nil {
					continue
				}
				agg.pltSum += rec.PLT().Seconds()
				agg.pltN++
				for _, or := range rec.Objects {
					if or.Done != 0 {
						agg.initSum += or.Init().Seconds() * 1000
						agg.initN++
					}
				}
			}
		}
	}
	var plain, piped, spdyR pipeAgg
	sweepEach(h, Options{Mode: browser.ModeHTTP, Network: Net3G}, fold(&plain))
	sweepEach(h, Options{Mode: browser.ModeHTTP, Network: Net3G, Pipelining: true}, fold(&piped))
	sweepEach(h, Options{Mode: browser.ModeSPDY, Network: Net3G}, fold(&spdyR))

	mean := func(a *pipeAgg) float64 {
		if a.pltN == 0 {
			return 0
		}
		return a.pltSum / float64(a.pltN)
	}
	pm, qm, sm := mean(&plain), mean(&piped), mean(&spdyR)
	r.Metric("HTTP mean PLT", pm, "s")
	r.Metric("HTTP+pipelining mean PLT", qm, "s")
	r.Metric("SPDY mean PLT", sm, "s")
	r.Metric("pipelining improvement over HTTP", 100*(pm-qm)/pm, "%")

	r.Metric("HTTP mean init", plain.initSum/plain.initN, "ms")
	r.Metric("HTTP+pipelining mean init", piped.initSum/piped.initN, "ms")
	return r
}

// runLateBinding evaluates the fix §6.2 sketches for the failed §6.1
// experiment: keep SPDY's burst of early requests, but deliver each
// response over whichever TCP connection has an open window right now,
// so one connection's spurious-timeout stall no longer delays every
// object pinned to it.
func runLateBinding(h Harness) *Report {
	r := NewReport("latebinding", "SPDY striped with late binding",
		"§6.2: late binding of responses to available connections should recover the multi-connection benefit that early binding squanders")
	single := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 1})
	early := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 8})
	late := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 8, SPDYLateBinding: true})

	sm, em, lm := stats.Mean(allPLTStats(single)), stats.Mean(allPLTStats(early)), stats.Mean(allPLTStats(late))
	r.Metric("SPDY mean PLT, 1 connection", sm, "s")
	r.Metric("SPDY mean PLT, 8 early-bound", em, "s")
	r.Metric("SPDY mean PLT, 8 late-bound", lm, "s")
	r.Metric("late vs early improvement", 100*(em-lm)/em, "%")
	r.Metric("late vs single improvement", 100*(sm-lm)/sm, "%")
	r.Metric("retx/run, 8 early-bound", meanRetxStats(early), "retx")
	r.Metric("retx/run, 8 late-bound", meanRetxStats(late), "retx")
	return r
}
