package experiment

import (
	"fmt"

	"spdier/internal/validate"
)

func init() {
	register("validate", "Differential validation: simulator vs live SPDY wire", runValidate)
}

// runValidate replays the differential corpus through both tracks — the
// discrete-event simulator and the real SPDY/3 frames over loopback
// sockets — and reports whether they agree on completion order, byte
// counts and multiplexing. This is the harness's ground-truth check:
// the simulator answers the paper's questions only insofar as its
// protocol behaviour matches a real wire.
func runValidate(h Harness) *Report {
	r := NewReport("validate", "Simulator vs live-wire differential replay",
		"not a paper figure: cross-validates the two tracks of this reproduction")
	agreed := 0
	pages := validate.Pages()
	for _, pg := range pages {
		simR, err := validate.RunSim(pg, h.Seed)
		if err != nil {
			r.Printf("%-14s SIM ERROR: %v", pg.Name, err)
			continue
		}
		liveR, err := validate.RunLive(pg)
		if err != nil {
			r.Printf("%-14s LIVE ERROR: %v", pg.Name, err)
			continue
		}
		if err := validate.Compare(simR, liveR); err != nil {
			r.Printf("%-14s DISAGREE: %v", pg.Name, err)
			continue
		}
		agreed++
		r.Printf("%-14s agree: %d objects, order %v, 1 session, multiplexed", pg.Name, len(simR.Order), simR.Order)
	}
	r.Metric("pages agreeing", float64(agreed), fmt.Sprintf("of %d", len(pages)))
	return r
}
