package experiment

import (
	"strings"
	"testing"
)

func TestReportRendering(t *testing.T) {
	r := NewReport("figX", "A title", "the paper said so")
	r.Printf("line %d", 1)
	r.Printf("line 2\n")       // trailing newline must not double
	r.Printf("%s", "line 3\n") // newline via argument must not double either
	r.Metric("some metric", 3.14159, "s")
	out := r.String()
	if !strings.HasPrefix(out, "== figX: A title ==\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "paper: the paper said so") {
		t.Fatal("missing paper summary")
	}
	if strings.Contains(out, "line 2\n\n") {
		t.Fatal("doubled newline")
	}
	if strings.Contains(out, "line 3\n\n") {
		t.Fatal("doubled newline when the format argument ends in \\n")
	}
	if r.Metrics["some metric"] != 3.14159 {
		t.Fatal("metric not recorded")
	}
	if !strings.Contains(out, "3.14 s") {
		t.Fatalf("metric not printed: %q", out)
	}
}

func TestReportWithoutPaperLine(t *testing.T) {
	r := NewReport("x", "t", "")
	if strings.Contains(r.String(), "paper:") {
		t.Fatal("empty paper summary printed")
	}
}

func TestDefaultHarness(t *testing.T) {
	h := DefaultHarness()
	if h.Runs < 2 || h.Seed == 0 {
		t.Fatalf("harness %+v", h)
	}
}

func TestGetUnknownExperiment(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown experiment resolved")
	}
}

func TestSweepUsesDistinctSeeds(t *testing.T) {
	h := Harness{Runs: 2, Seed: 10}
	results := sweep(h, Options{Network: NetWiFi})
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Opts.Seed == results[1].Opts.Seed {
		t.Fatal("seeds not swept")
	}
	// Different seeds must give different outcomes somewhere.
	a, b := results[0].PLTSeconds(), results[1].PLTSeconds()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed sweep produced identical runs")
	}
}
