package experiment

import (
	"sort"

	"spdier/internal/browser"
	"spdier/internal/stats"
)

func init() {
	register("fig3", "Page load time, HTTP vs SPDY over 3G (box plots)", runFig3)
	register("fig4", "Page load time over 802.11g/broadband", runFig4)
	register("fig16", "Page load time, HTTP vs SPDY over LTE (box plots)", runFig16)
}

// boxPerSite renders per-site box plots for both protocols and counts
// who wins at the median.
func boxPerSite(r *Report, httpRes, spdyRes []*RunStats) (httpWins, spdyWins, ties int) {
	httpSite := pltBySiteStats(httpRes)
	spdySite := pltBySiteStats(spdyRes)

	sites := make([]int, 0, len(httpSite))
	for s := range httpSite {
		sites = append(sites, s)
	}
	sort.Ints(sites)

	r.Printf("%-5s | %-38s | %-38s | %s", "site", "HTTP  min/q1/med/q3/max (mean) [s]", "SPDY  min/q1/med/q3/max (mean) [s]", "winner")
	for _, s := range sites {
		hb := stats.Box(httpSite[s])
		sb := stats.Box(spdySite[s])
		win := "~"
		switch {
		case hb.Median < sb.Median*0.95:
			win = "HTTP"
			httpWins++
		case sb.Median < hb.Median*0.95:
			win = "SPDY"
			spdyWins++
		default:
			ties++
		}
		r.Printf("%-5d | %5.1f %5.1f %5.1f %5.1f %5.1f (%5.1f) | %5.1f %5.1f %5.1f %5.1f %5.1f (%5.1f) | %s",
			s, hb.Min, hb.Q1, hb.Median, hb.Q3, hb.Max, hb.Mean,
			sb.Min, sb.Q1, sb.Median, sb.Q3, sb.Max, sb.Mean, win)
	}
	r.Metric("HTTP mean PLT", stats.Mean(allPLTStats(httpRes)), "s")
	r.Metric("SPDY mean PLT", stats.Mean(allPLTStats(spdyRes)), "s")
	r.Metric("HTTP mean retransmissions/run", meanRetxStats(httpRes), "retx")
	r.Metric("SPDY mean retransmissions/run", meanRetxStats(spdyRes), "retx")
	return httpWins, spdyWins, ties
}

func runFig3(h Harness) *Report {
	r := NewReport("fig3", "Page load time, HTTP vs SPDY over 3G",
		"no convincing winner: SPDY better on some sites (3,7), HTTP on others (1,4), most similar")
	httpRes := sweepStats(h, Options{Mode: browser.ModeHTTP, Network: Net3G})
	spdyRes := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G})
	hw, sw, ties := boxPerSite(r, httpRes, spdyRes)
	r.Metric("sites where HTTP wins at median", float64(hw), "sites")
	r.Metric("sites where SPDY wins at median", float64(sw), "sites")
	r.Metric("sites with no significant difference", float64(ties), "sites")
	return r
}

func runFig4(h Harness) *Report {
	r := NewReport("fig4", "Page load time over 802.11g/broadband",
		"SPDY consistently better: 4% (site 4) to 56% (site 9) improvement")
	httpRes := sweepStats(h, Options{Mode: browser.ModeHTTP, Network: NetWiFi})
	spdyRes := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: NetWiFi})
	httpSite := pltBySiteStats(httpRes)
	spdySite := pltBySiteStats(spdyRes)

	sites := make([]int, 0, len(httpSite))
	for s := range httpSite {
		sites = append(sites, s)
	}
	sort.Ints(sites)

	better := 0
	var improvements []float64
	r.Printf("%-5s | %-24s | %-24s | %s", "site", "HTTP mean ±95%CI [s]", "SPDY mean ±95%CI [s]", "SPDY improvement")
	for _, s := range sites {
		hm, hci := stats.Mean(httpSite[s]), stats.CI95(httpSite[s])
		sm, sci := stats.Mean(spdySite[s]), stats.CI95(spdySite[s])
		imp := stats.RelDiff(hm, sm) // positive = SPDY faster
		if sm < hm {
			better++
			improvements = append(improvements, (hm-sm)/hm*100)
		}
		r.Printf("%-5d | %9.2f ± %6.2f     | %9.2f ± %6.2f     | %+6.1f%%", s, hm, hci, sm, sci, imp)
	}
	r.Metric("sites where SPDY is faster", float64(better), "of 20")
	if len(improvements) > 0 {
		// Sorted-once multi-quantile path; bit-identical to two
		// Quantile calls.
		qs := stats.Quantiles(improvements, 0, 1)
		r.Metric("min SPDY improvement", qs[0], "%")
		r.Metric("max SPDY improvement", qs[1], "%")
	}
	r.Metric("HTTP mean PLT", stats.Mean(allPLTStats(httpRes)), "s")
	r.Metric("SPDY mean PLT", stats.Mean(allPLTStats(spdyRes)), "s")
	return r
}

func runFig16(h Harness) *Report {
	r := NewReport("fig16", "Page load time, HTTP vs SPDY over LTE",
		"both much faster than 3G; HTTP as good as SPDY initially, SPDY better after first pages; retx 8.9 (HTTP) vs 7.52 (SPDY)")
	httpRes := sweepStats(h, Options{Mode: browser.ModeHTTP, Network: NetLTE})
	spdyRes := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: NetLTE})
	hw, sw, ties := boxPerSite(r, httpRes, spdyRes)
	r.Metric("sites where HTTP wins at median", float64(hw), "sites")
	r.Metric("sites where SPDY wins at median", float64(sw), "sites")
	r.Metric("sites with no significant difference", float64(ties), "sites")

	// The paper notes SPDY pulls ahead after the first few pages once the
	// session's window has grown; compare mean PLT over the first five
	// visits to the rest.
	firstLast := func(results []*RunStats) (first, rest float64) {
		var f, l []float64
		for _, res := range results {
			plts := res.PLTs
			k := 5
			if k > len(plts) {
				k = len(plts)
			}
			f = append(f, plts[:k]...)
			l = append(l, plts[k:]...)
		}
		return stats.Mean(f), stats.Mean(l)
	}
	hf, hl := firstLast(httpRes)
	sf, sl := firstLast(spdyRes)
	r.Metric("HTTP mean PLT pages 1-5", hf, "s")
	r.Metric("HTTP mean PLT pages 6-20", hl, "s")
	r.Metric("SPDY mean PLT pages 1-5", sf, "s")
	r.Metric("SPDY mean PLT pages 6-20", sl, "s")
	return r
}
