package experiment

import (
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/sim"
)

// schedulerDiffOptions is a deliberately hostile full-stack workload for
// the wheel-vs-heap differential: bursty Gilbert-Elliott loss, extra
// jitter, reordering and duplication on the wire, with every modern
// recovery arm (TLP, RACK, F-RTO) enabled so the run exercises the full
// retransmit-timer choreography — arm, re-arm, cancel-on-ack, probe
// timeout — on top of the browser/RRC/think-time timer spectrum.
// ProbeStride 1 and LeanProbe off keep the complete probe trace so the
// comparison is sample-by-sample, not aggregate-only.
func schedulerDiffOptions(seed uint64) Options {
	return Options{
		Mode:      browser.ModeSPDY,
		Network:   Net3G,
		Sites:     metaSites(),
		Seed:      seed,
		ThinkTime: 5 * time.Second,
		TLP:       true,
		RACK:      true,
		FRTO:      true,
		Impair: netem.Impairments{
			GEGoodToBad: 0.02,
			GEBadToGood: 0.3,
			GELossBad:   0.5,
			ReorderProb: 0.01,
			DupProb:     0.005,
			ExtraJitter: 3 * time.Millisecond,
		},
		ProbeStride: 1,
	}
}

// runWith runs one experiment under an explicit process-wide scheduler,
// restoring the previous default before returning.
func runWith(s sim.Scheduler, opts Options) *Result {
	prev := sim.SetDefaultScheduler(s)
	defer sim.SetDefaultScheduler(prev)
	return Run(opts)
}

// TestSchedulerDifferentialImpairedRun replays a long seeded impaired
// run — GE burst loss, jitter, reordering, duplication, TLP+RACK+FRTO —
// through the heap and the wheel schedulers and requires the two runs to
// be bit-for-bit identical: same total event count, same page load
// times, same retransmission ledger, and the same full tcp_probe trace
// sample by sample. Any divergence in (time, seq) firing order anywhere
// in the stack shows up here as a trace mismatch.
func TestSchedulerDifferentialImpairedRun(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		opts := schedulerDiffOptions(seed)
		heap := runWith(sim.SchedulerHeap, opts)
		wheel := runWith(sim.SchedulerWheel, opts)

		if heap.Fired != wheel.Fired {
			t.Errorf("seed %d: Fired heap=%d wheel=%d", seed, heap.Fired, wheel.Fired)
		}
		if heap.Duration != wheel.Duration {
			t.Errorf("seed %d: Duration heap=%v wheel=%v", seed, heap.Duration, wheel.Duration)
		}
		if hr, wr := heap.Retransmissions(), wheel.Retransmissions(); hr != wr {
			t.Errorf("seed %d: Retransmissions heap=%d wheel=%d", seed, hr, wr)
		}
		if heap.Retransmissions() == 0 {
			t.Errorf("seed %d: impaired run produced zero retransmissions; differential is vacuous", seed)
		}
		hp, wp := heap.PLTSeconds(), wheel.PLTSeconds()
		if len(hp) != len(wp) {
			t.Fatalf("seed %d: PLT count heap=%d wheel=%d", seed, len(hp), len(wp))
		}
		for i := range hp {
			if hp[i] != wp[i] {
				t.Errorf("seed %d: PLT[%d] heap=%v wheel=%v", seed, i, hp[i], wp[i])
			}
		}

		hrec, wrec := heap.Recorder, wheel.Recorder
		if hrec.TotalSamples() != wrec.TotalSamples() {
			t.Errorf("seed %d: TotalSamples heap=%d wheel=%d",
				seed, hrec.TotalSamples(), wrec.TotalSamples())
		}
		if hrec.Len() != wrec.Len() {
			t.Fatalf("seed %d: probe trace length heap=%d wheel=%d",
				seed, hrec.Len(), wrec.Len())
		}
		for i := 0; i < hrec.Len(); i++ {
			if h, w := hrec.Get(i), wrec.Get(i); h != w {
				t.Fatalf("seed %d: probe sample %d diverges:\n  heap:  %+v\n  wheel: %+v",
					seed, i, h, w)
			}
		}
		if t.Failed() {
			return
		}
	}
}
