package experiment

import (
	"math"
	"time"

	"spdier/internal/browser"
	"spdier/internal/stats"
	"spdier/internal/tcpsim"
)

func init() {
	register("fig10", "Bytes in flight vs page load time", runFig10)
	register("fig11", "cwnd / ssthresh / retransmissions over a SPDY run", runFig11)
	register("fig12", "Idle-period zoom: cwnd reset, spurious RTO, ssthresh collapse", runFig12)
	register("fig13", "Retransmission bursts and per-connection impact", runFig13)
	register("fig17", "SPDY congestion window and retransmissions over LTE", runFig17)
	register("table2", "HTTP and SPDY with Reno vs Cubic", runTable2)
}

// runFig10 relates outstanding (unacknowledged) bytes to page load time:
// whichever protocol keeps more data in flight during a page's window
// loads that page faster.
func runFig10(h Harness) *Report {
	r := NewReport("fig10", "Bytes in flight vs page load time",
		"more outstanding bytes ⇒ lower page load time; SPDY's in-flight bytes grow slowly after idle")
	httpRes := cachedRun(Options{Mode: browser.ModeHTTP, Network: Net3G, Seed: h.Seed})
	spdyRes := cachedRun(Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: h.Seed})

	type pagePoint struct{ inflight, plt float64 }
	collect := func(res *Result) []pagePoint {
		var pts []pagePoint
		for i, rec := range res.Records {
			if rec == nil {
				continue
			}
			start := float64(i) * 60
			var sum, n float64
			for _, s := range res.Samples {
				t := s.At.Seconds()
				if t >= start && t < start+rec.PLT().Seconds() {
					sum += float64(s.InFlightBytes)
					n++
				}
			}
			if n > 0 {
				pts = append(pts, pagePoint{sum / n / 1024, rec.PLT().Seconds()})
			}
		}
		return pts
	}
	corr := func(pts []pagePoint) float64 {
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.inflight)
			ys = append(ys, p.plt)
		}
		mx, my := stats.Mean(xs), stats.Mean(ys)
		var num, dx, dy float64
		for i := range xs {
			num += (xs[i] - mx) * (ys[i] - my)
			dx += (xs[i] - mx) * (xs[i] - mx)
			dy += (ys[i] - my) * (ys[i] - my)
		}
		if dx == 0 || dy == 0 {
			return 0
		}
		return num / math.Sqrt(dx*dy)
	}

	hp, sp := collect(httpRes), collect(spdyRes)
	r.Printf("%-6s | %-24s | %-24s", "page", "HTTP inflightKB / PLT s", "SPDY inflightKB / PLT s")
	agree, total := 0, 0
	for i := 0; i < len(hp) && i < len(sp); i++ {
		winner := "HTTP"
		if sp[i].inflight > hp[i].inflight {
			winner = "SPDY"
		}
		faster := "HTTP"
		if sp[i].plt < hp[i].plt {
			faster = "SPDY"
		}
		if winner == faster {
			agree++
		}
		total++
		r.Printf("%-6d | %10.1f / %6.2f    | %10.1f / %6.2f    more-inflight=%s faster=%s",
			i, hp[i].inflight, hp[i].plt, sp[i].inflight, sp[i].plt, winner, faster)
	}
	if total > 0 {
		// The paper's per-page claim: whichever protocol keeps more data
		// outstanding loads that page faster.
		r.Metric("pages where more-inflight protocol is faster", float64(agree)/float64(total), "frac")
	}
	// Within-protocol correlations confound with page size (bigger pages
	// have both more in-flight data and longer PLTs); report them for
	// completeness only.
	r.Metric("HTTP corr(inflight, PLT) [size-confounded]", corr(hp), "r")
	r.Metric("SPDY corr(inflight, PLT) [size-confounded]", corr(sp), "r")
	return r
}

// cwndTrace renders tcp_probe-style samples for a single connection.
func cwndTrace(r *Report, rec *tcpsim.Recorder, connID string, from, to float64, step float64) {
	r.Printf("%-8s %8s %9s %10s %8s", "t[s]", "cwnd", "ssthresh", "inflightKB", "events")
	next := from
	var cw, ss float64
	var infl int
	events := ""
	rec.Each(func(s tcpsim.ProbeSample) bool {
		if s.ConnID != connID {
			return true
		}
		t := s.At.Seconds()
		if t < from {
			return true
		}
		if t > to {
			return false
		}
		for t >= next {
			r.Printf("%-8.0f %8.1f %9.1f %10.1f %8s", next, cw, ss, float64(infl)/1024, events)
			next += step
			events = ""
		}
		cw, ss, infl = s.Cwnd, s.Ssthresh, s.InFlight
		switch s.Event {
		case tcpsim.EvRetransmit:
			events += "R"
		case tcpsim.EvFastRetx:
			events += "F"
		case tcpsim.EvIdleRestart:
			events += "I"
		case tcpsim.EvUndo:
			events += "U"
		}
		return true
	})
}

func runFig11(h Harness) *Report {
	r := NewReport("fig11", "cwnd/ssthresh/outstanding data over one SPDY 3G run",
		"cwnd ceilings the outstanding data; cwnd and ssthresh fluctuate all run; bursty retransmissions throughout")
	res := cachedRun(Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: h.Seed})
	cwndTrace(r, res.Recorder, "spdy00:s", 0, 1200, 30)

	var cwnds []float64
	res.Recorder.Each(func(s tcpsim.ProbeSample) bool {
		if s.ConnID == "spdy00:s" {
			cwnds = append(cwnds, s.Cwnd)
		}
		return true
	})
	r.Metric("retransmission events", float64(res.Recorder.Retransmissions()), "retx")
	r.Metric("cwnd mean", stats.Mean(cwnds), "segments")
	r.Metric("cwnd stddev (fluctuation)", stats.StdDev(cwnds), "segments")
	r.Metric("cwnd max", res.Recorder.MaxCwnd(), "segments")
	return r
}

func runFig12(h Harness) *Report {
	r := NewReport("fig12", "Zoom into three consecutive websites (40–190 s)",
		"after idle: cwnd reset to 10 (slow start after idle), spurious RTO during promotion, ssthresh collapse, then regrowth; no retx when the idle was too short for the radio to sleep")
	res := cachedRun(Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: h.Seed})
	cwndTrace(r, res.Recorder, "spdy00:s", 40, 190, 5)

	// Event ledger for the window.
	counts := map[tcpsim.ProbeEvent]int{}
	res.Recorder.Each(func(s tcpsim.ProbeSample) bool {
		t := s.At.Seconds()
		if s.ConnID != "spdy00:s" || t < 40 || t > 190 {
			return true
		}
		switch s.Event {
		case tcpsim.EvRetransmit, tcpsim.EvFastRetx, tcpsim.EvIdleRestart, tcpsim.EvUndo, tcpsim.EvSpurious:
			counts[s.Event]++
		}
		return true
	})
	r.Metric("idle restarts (cwnd→IW) in window", float64(counts[tcpsim.EvIdleRestart]), "events")
	r.Metric("retransmissions in window", float64(counts[tcpsim.EvRetransmit]+counts[tcpsim.EvFastRetx]), "segments")
	r.Metric("undo events in window", float64(counts[tcpsim.EvUndo]), "events")
	return r
}

func runFig13(h Harness) *Report {
	r := NewReport("fig13", "Retransmission bursts",
		"HTTP: 117.3 retx/run but 2.9 per connection over 42.6 concurrent connections — bursts hit one stream while others proceed; SPDY: 67.3 retx all on the single connection")
	httpRes := sweepStats(h, Options{Mode: browser.ModeHTTP, Network: Net3G})
	spdyRes := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G})

	r.Metric("HTTP mean retransmissions/run", meanRetxStats(httpRes), "retx")
	r.Metric("SPDY mean retransmissions/run", meanRetxStats(spdyRes), "retx")

	// Per-connection spread for HTTP and burst locality.
	var perConn, conns, singleFrac []float64
	for _, rs := range httpRes {
		if rs.RetxConns > 0 {
			perConn = append(perConn, rs.RetxPerConn)
		}
		singleFrac = append(singleFrac, rs.SingleConnBurstFrac)
		conns = append(conns, float64(rs.PeakConns))
	}
	r.Metric("HTTP retx per affected connection", stats.Mean(perConn), "retx/conn")
	r.Metric("HTTP peak concurrent connections", stats.Mean(conns), "conns")
	r.Metric("fraction of bursts confined to one connection", stats.Mean(singleFrac), "frac")

	// SPDY concentration: share of retransmissions on the busiest conn.
	var topShare []float64
	for _, rs := range spdyRes {
		if rs.RetxConns > 0 {
			topShare = append(topShare, rs.TopConnRetxShare)
		}
	}
	r.Metric("SPDY retx share on single connection", stats.Mean(topShare), "frac")
	return r
}

func runFig17(h Harness) *Report {
	r := NewReport("fig17", "SPDY cwnd and retransmissions over LTE",
		"retransmissions still occur after idle periods on LTE (promotion 400 ms beats small RTOs), but far less often than 3G")
	res := cachedRun(Options{Mode: browser.ModeSPDY, Network: NetLTE, Seed: h.Seed})
	cwndTrace(r, res.Recorder, "spdy00:s", 300, 800, 20)
	r.Metric("retransmissions/run (LTE SPDY)", float64(res.Recorder.Retransmissions()), "retx")

	// Do retransmissions follow idle exits?
	idleExits := res.Recorder.Filter(tcpsim.EvIdleRestart)
	retx := res.Recorder.Filter(tcpsim.EvRetransmit)
	nearIdle := 0
	for _, rt := range retx {
		for _, ie := range idleExits {
			d := rt.At.Sub(ie.At)
			if d >= 0 && d < 3*time.Second {
				nearIdle++
				break
			}
		}
	}
	if len(retx) > 0 {
		r.Metric("fraction of retx within 3 s of an idle exit", float64(nearIdle)/float64(len(retx)), "frac")
	}
	return r
}

// runTable2 sweeps TCP variant × protocol on 3G.
func runTable2(h Harness) *Report {
	r := NewReport("table2", "HTTP and SPDY with different TCP variants",
		"Cubic best avg PLT (SPDY-Cubic 8671 ms); avg throughput similar; SPDY-Cubic max cwnd 197 vs Reno 48; HTTP max cwnd 22")
	r.Printf("%-28s | %10s %10s | %10s %10s", "", "Reno HTTP", "Reno SPDY", "Cubic HTTP", "Cubic SPDY")
	type cell struct{ plt, avgTp, maxTp, avgCwnd, maxCwnd float64 }
	cells := map[string]cell{}
	for _, cc := range []string{"reno", "cubic"} {
		for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
			results := sweepStats(h, Options{Mode: mode, Network: Net3G, CC: cc})
			var plts []float64
			var avgTp, maxTp, avgCw, maxCw float64
			for _, rs := range results {
				plts = append(plts, rs.PLTs...)
				if rs.TpHasPos {
					avgTp += rs.TpAvgBps
				}
				if rs.TpMaxBps > maxTp {
					maxTp = rs.TpMaxBps
				}
				avgCw += rs.MeanCwnd
				if rs.MaxCwnd > maxCw {
					maxCw = rs.MaxCwnd
				}
			}
			n := float64(len(results))
			cells[cc+string(mode)] = cell{
				plt:     stats.Mean(plts) * 1000,
				avgTp:   avgTp / n / 1024,
				maxTp:   maxTp / 1024,
				avgCwnd: avgCw / n,
				maxCwnd: maxCw,
			}
		}
	}
	row := func(name string, f func(cell) float64) {
		r.Printf("%-28s | %10.1f %10.1f | %10.1f %10.1f", name,
			f(cells["reno"+string(browser.ModeHTTP)]), f(cells["reno"+string(browser.ModeSPDY)]),
			f(cells["cubic"+string(browser.ModeHTTP)]), f(cells["cubic"+string(browser.ModeSPDY)]))
	}
	row("Avg. page load (msec)", func(c cell) float64 { return c.plt })
	row("Avg. throughput (KBps)", func(c cell) float64 { return c.avgTp })
	row("Max. throughput (KBps)", func(c cell) float64 { return c.maxTp })
	row("Avg. cwnd (# segments)", func(c cell) float64 { return c.avgCwnd })
	row("Max. cwnd (# segments)", func(c cell) float64 { return c.maxCwnd })
	r.Metrics["cubic spdy plt ms"] = cells["cubic"+string(browser.ModeSPDY)].plt
	r.Metrics["reno spdy plt ms"] = cells["reno"+string(browser.ModeSPDY)].plt
	r.Metrics["cubic spdy max cwnd"] = cells["cubic"+string(browser.ModeSPDY)].maxCwnd
	r.Metrics["reno spdy max cwnd"] = cells["reno"+string(browser.ModeSPDY)].maxCwnd
	r.Metrics["cubic http max cwnd"] = cells["cubic"+string(browser.ModeHTTP)].maxCwnd
	return r
}
