package experiment

import (
	"time"

	"spdier/internal/rrc"
	"spdier/internal/sim"
)

func init() {
	register("fig18", "RRC state machines for 3G UMTS and LTE", runFig18)
}

// runFig18 drives both radio state machines through a scripted activity
// pattern and prints the resulting transition timelines and energy, the
// appendix-A material every cellular experiment in this repository
// rests on.
func runFig18(h Harness) *Report {
	r := NewReport("fig18", "RRC state machines (Appendix A)",
		"3G: IDLE→DCH ≈2 s promotion, DCH→FACH after 5 s idle, FACH→IDLE after 12 s more; LTE: 400 ms promotion, Continuous→ShortDRX→LongDRX→IDLE with 11.5 s tail")
	for _, profile := range []rrc.Profile{rrc.Profile3G(), rrc.ProfileLTE()} {
		loop := sim.NewLoop()
		m := rrc.NewMachine(loop, profile)

		// Activity script: a burst at t=0, a small packet at t=8 s (rides
		// FACH on 3G), then silence until t=40 s, then another burst.
		readyTimes := make(map[string]sim.Time)
		loop.At(0, func() { readyTimes["burst@0s"] = m.ReadyAt(1400) })
		loop.At(8*sim.Second, func() { readyTimes["small@8s"] = m.ReadyAt(100) })
		loop.At(40*sim.Second, func() { readyTimes["burst@40s"] = m.ReadyAt(1400) })
		loop.Run(60 * sim.Second)

		r.Printf("-- %s --", profile.Name)
		for _, k := range []string{"burst@0s", "small@8s", "burst@40s"} {
			at := readyTimes[k]
			r.Printf("  %-10s radio ready at %v", k, at)
		}
		for _, tr := range m.Transitions() {
			r.Printf("  %10v  %s -> %s", time.Duration(tr.At), tr.From, tr.To)
		}
		r.Metric(profile.Name+" promotions with delay", float64(m.Promotions()), "promotions")
		r.Metric(profile.Name+" radio energy over 60 s", m.EnergyMilliJoules()/1000, "J")
	}
	return r
}
