package experiment

import (
	"testing"

	"spdier/internal/browser"
)

func TestHarnessSmoke3G(t *testing.T) {
	if testing.Short() {
		t.Skip("full run")
	}
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		res := Run(Options{Mode: mode, Network: Net3G, Seed: 7})
		if len(res.Records) != 20 {
			t.Fatalf("%s: %d page records", mode, len(res.Records))
		}
		for i, rec := range res.Records {
			if rec == nil {
				t.Fatalf("%s: page %d never completed", mode, i)
			}
			plt := rec.PLT().Seconds()
			if plt <= 0.2 || plt > 56 {
				t.Errorf("%s: page %d (%s) implausible PLT %.2fs aborted=%v objs=%d",
					mode, i, rec.Page.Name, plt, rec.Aborted, len(rec.Objects))
			}
		}
		t.Logf("%s: mean PLT %.2fs retx=%d conns=%d", mode,
			mean(res.PLTSeconds()), res.Retransmissions(), len(res.Proxy.Records))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
