package experiment

import (
	"spdier/internal/browser"
	"spdier/internal/stats"
)

func init() {
	register("fig14", "Impact of keeping the radio in DCH (background ping)", runFig14)
	register("fig15", "Disabling tcp_slow_start_after_idle", runFig15)
	register("rttreset", "§6.2.1: resetting the RTT estimate after idle", runRTTReset)
	register("metricscache", "§6.2.4: disabling the TCP metrics cache", runMetricsCache)
	register("multiconn", "§6.1: striping SPDY over 20 connections", runMultiConn)
}

// runFig14 compares page-load CDFs with and without a background ping
// that pins the radio in DCH — turning the cellular network into a
// stable-latency network at the cost of battery.
func runFig14(h Harness) *Report {
	r := NewReport("fig14", "Impact of the cellular RRC state machine",
		">80% of loads <8 s with ping vs 40-45% without; retx −91% (HTTP) / −96% (SPDY); SPDY beats HTTP for ~60% of instances with ping; pinning DCH wastes battery")
	type cond struct {
		mode browser.Mode
		ping bool
	}
	conds := []cond{
		{browser.ModeHTTP, false}, {browser.ModeHTTP, true},
		{browser.ModeSPDY, false}, {browser.ModeSPDY, true},
	}
	cdfs := map[cond]*stats.CDF{}
	retxs := map[cond]float64{}
	energy := map[cond]float64{}
	for _, c := range conds {
		results := sweepStats(h, Options{Mode: c.mode, Network: Net3G, PingKeepalive: c.ping})
		cdfs[c] = stats.NewCDF(allPLTStats(results))
		retxs[c] = meanRetxStats(results)
		var e float64
		for _, res := range results {
			e += res.RadioMJ
		}
		energy[c] = e / float64(len(results)) / 1000 // joules
	}
	name := func(c cond) string {
		s := string(c.mode)
		if c.ping {
			return s + " + ping"
		}
		return s + " (no ping)"
	}
	r.Printf("%-18s %14s %14s %14s %14s", "condition", "P(PLT<4s)", "P(PLT<8s)", "retx/run", "radio energy J")
	for _, c := range conds {
		r.Printf("%-18s %14.2f %14.2f %14.1f %14.0f",
			name(c), cdfs[c].At(4), cdfs[c].At(8), retxs[c], energy[c])
	}
	r.Metric("HTTP P(PLT<8s) with ping", cdfs[cond{browser.ModeHTTP, true}].At(8), "frac")
	r.Metric("HTTP P(PLT<8s) without ping", cdfs[cond{browser.ModeHTTP, false}].At(8), "frac")
	r.Metric("SPDY P(PLT<8s) with ping", cdfs[cond{browser.ModeSPDY, true}].At(8), "frac")
	r.Metric("SPDY P(PLT<8s) without ping", cdfs[cond{browser.ModeSPDY, false}].At(8), "frac")
	if retxs[cond{browser.ModeHTTP, false}] > 0 {
		r.Metric("HTTP retx reduction from ping",
			100*(1-retxs[cond{browser.ModeHTTP, true}]/retxs[cond{browser.ModeHTTP, false}]), "%")
	}
	if retxs[cond{browser.ModeSPDY, false}] > 0 {
		r.Metric("SPDY retx reduction from ping",
			100*(1-retxs[cond{browser.ModeSPDY, true}]/retxs[cond{browser.ModeSPDY, false}]), "%")
	}
	r.Metric("radio energy cost of ping (SPDY)",
		energy[cond{browser.ModeSPDY, true}]-energy[cond{browser.ModeSPDY, false}], "J")
	return r
}

// runFig15 disables congestion-window validation after idle and reports
// the per-site relative PLT difference — benefits vary, and with the
// parameter off the receive window can become the bottleneck.
func runFig15(h Harness) *Report {
	r := NewReport("fig15", "Page load times with & w/o tcp_slow_start_after_idle",
		"benefits vary across sites; outstanding data similar; with the parameter off, cwnd can grow so large the receive window becomes the bottleneck")
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		on := sweepStats(h, Options{Mode: mode, Network: Net3G})
		off := sweepStats(h, Options{Mode: mode, Network: Net3G, SlowStartAfterIdleOff: true})
		onSite, offSite := pltBySiteStats(on), pltBySiteStats(off)
		r.Printf("-- %s: relative PLT difference, negative = disabling helps --", mode)
		neg, pos := 0, 0
		for site := 1; site <= 20; site++ {
			d := stats.RelDiff(stats.Mean(offSite[site]), stats.Mean(onSite[site]))
			bar := ""
			n := int(d / 4)
			if n > 12 {
				n = 12
			}
			if n < -12 {
				n = -12
			}
			for i := 0; i < n; i++ {
				bar += "+"
			}
			for i := 0; i > n; i-- {
				bar += "-"
			}
			r.Printf("site %2d %+7.1f%% %s", site, d, bar)
			if d < 0 {
				neg++
			} else {
				pos++
			}
		}
		r.Metric(string(mode)+" sites helped by disabling", float64(neg), "sites")
		r.Metric(string(mode)+" sites hurt by disabling", float64(pos), "sites")
		r.Metric(string(mode)+" mean PLT enabled", stats.Mean(allPLTStats(on)), "s")
		r.Metric(string(mode)+" mean PLT disabled", stats.Mean(allPLTStats(off)), "s")
	}
	return r
}

// runRTTReset evaluates the paper's proposed fix: reset the RTT estimate
// (and hence restore the conservative initial RTO) whenever the window
// is validated after idle.
func runRTTReset(h Harness) *Report {
	r := NewReport("rttreset", "Resetting the RTT estimate after idle (§6.2.1)",
		"initial RTO (multiple seconds) exceeds the promotion delay ⇒ no spurious timeout after idle ⇒ cwnd grows rapidly, page load times drop; SPDY benefits most (the paper proposes but does not measure this)")
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		base := sweepStats(h, Options{Mode: mode, Network: Net3G})
		fix := sweepStats(h, Options{Mode: mode, Network: Net3G, ResetRTTAfterIdle: true})
		bm, fm := stats.Mean(allPLTStats(base)), stats.Mean(allPLTStats(fix))
		r.Metric(string(mode)+" mean PLT baseline", bm, "s")
		r.Metric(string(mode)+" mean PLT with RTT reset", fm, "s")
		r.Metric(string(mode)+" PLT improvement", 100*(bm-fm)/bm, "%")
		r.Metric(string(mode)+" retx baseline", meanRetxStats(base), "retx")
		r.Metric(string(mode)+" retx with RTT reset", meanRetxStats(fix), "retx")
	}
	r.Printf("ablation: on a stack whose DSACK undo is ineffective (the damage the paper")
	r.Printf("observed persisting in Figure 12), the fix's PLT benefit is much larger:")
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		base := sweepStats(h, Options{Mode: mode, Network: Net3G, DisableUndo: true})
		fix := sweepStats(h, Options{Mode: mode, Network: Net3G, DisableUndo: true, ResetRTTAfterIdle: true})
		bm, fm := stats.Mean(allPLTStats(base)), stats.Mean(allPLTStats(fix))
		r.Metric(string(mode)+" mean PLT baseline (no undo)", bm, "s")
		r.Metric(string(mode)+" mean PLT with RTT reset (no undo)", fm, "s")
		r.Metric(string(mode)+" PLT improvement (no undo)", 100*(bm-fm)/bm, "%")
	}
	return r
}

// runMetricsCache disables the per-destination TCP metrics cache.
func runMetricsCache(h Harness) *Report {
	r := NewReport("metricscache", "Disabling TCP metrics caching (§6.2.4)",
		"both HTTP and SPDY load pages faster with caching disabled (~35% improvement for half the runs); little to distinguish the protocols")
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		on := sweepStats(h, Options{Mode: mode, Network: Net3G})
		off := sweepStats(h, Options{Mode: mode, Network: Net3G, NoMetricsCache: true})
		om, fm := stats.Mean(allPLTStats(on)), stats.Mean(allPLTStats(off))
		// Paired per-page improvement distribution.
		var imps []float64
		onAll, offAll := allPLTStats(on), allPLTStats(off)
		for i := range onAll {
			if i < len(offAll) && onAll[i] > 0 {
				imps = append(imps, 100*(onAll[i]-offAll[i])/onAll[i])
			}
		}
		r.Metric(string(mode)+" mean PLT cache on", om, "s")
		r.Metric(string(mode)+" mean PLT cache off", fm, "s")
		r.Metric(string(mode)+" median per-page improvement", stats.Median(imps), "%")
	}
	return r
}

// runMultiConn stripes SPDY over 20 sessions with early binding (§6.1):
// requests are pinned to a session when issued, so a session hit by
// retransmissions still delays its pending objects.
func runMultiConn(h Harness) *Report {
	r := NewReport("multiconn", "SPDY over 20 connections (§6.1)",
		"multiple connections do not improve SPDY page load times: early binding pins requests to stalled connections; late binding would be needed")
	one := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 1})
	twenty := sweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 20})
	om, tm := stats.Mean(allPLTStats(one)), stats.Mean(allPLTStats(twenty))
	r.Metric("SPDY mean PLT, 1 session", om, "s")
	r.Metric("SPDY mean PLT, 20 sessions", tm, "s")
	r.Metric("relative change (positive = 20 sessions worse)", stats.RelDiff(tm, om), "%")
	r.Metric("retx/run, 1 session", meanRetxStats(one), "retx")
	r.Metric("retx/run, 20 sessions", meanRetxStats(twenty), "retx")
	return r
}
