package experiment

import (
	"time"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/stats"
)

func init() {
	register("recovery", "Loss-recovery fix arms: TLP, RACK, F-RTO vs the spurious RTO", runRecovery)
}

// recoveryArms enumerates the fix-arm matrix: the paper-era stack, each
// arm solo, and all three stacked — the composition Linux actually
// ships. Table 2 / Figure 3 / Figure 4-style aggregates are re-derived
// per cell.
var recoveryArms = []struct {
	name string
	set  func(*Options)
}{
	{"paper-era", func(*Options) {}},
	{"+tlp", func(o *Options) { o.TLP = true }},
	{"+rack", func(o *Options) { o.RACK = true }},
	{"+frto", func(o *Options) { o.FRTO = true }},
	{"+all", func(o *Options) { o.TLP, o.RACK, o.FRTO = true, true, true }},
}

// recoveryScenarios picks the two path conditions the tentpole targets:
// the clean 3G profile, where every retransmission after idle is the
// paper's spurious promotion timeout, and the same profile under mild
// Gilbert-Elliott burst loss, where genuine tail drops let TLP and RACK
// contribute too.
var recoveryScenarios = []struct {
	name string
	set  func(*Options)
}{
	{"3g-clean", func(*Options) {}},
	{"3g-bursty", func(o *Options) {
		o.Impair = netem.Impairments{
			GEGoodToBad: 0.002, GEBadToGood: 0.4, GELossBad: 0.25,
			ExtraJitter: 2 * time.Millisecond,
		}
	}},
}

// recoveryRow aggregates one (scenario, mode, arm) cell.
type recoveryRow struct {
	plt      float64
	retx     float64
	rto      float64
	fast     float64
	tlp      float64
	rack     float64
	undos    float64
	spurious float64
}

func recoveryCell(h Harness, mode browser.Mode, scen, arm func(*Options)) recoveryRow {
	o := Options{Mode: mode, Network: Net3G}
	scen(&o)
	arm(&o)
	rs := sweepStats(h, o)
	n := float64(len(rs))
	var row recoveryRow
	row.plt = stats.Mean(allPLTStats(rs))
	for _, r := range rs {
		row.retx += float64(r.Retx) / n
		row.rto += float64(r.RTORetx) / n
		row.fast += float64(r.FastRetx) / n
		row.tlp += float64(r.TLPProbes) / n
		row.rack += float64(r.RACKRetx) / n
		row.undos += float64(r.FrtoUndos) / n
		row.spurious += float64(r.Spurious) / n
	}
	return row
}

// runRecovery re-runs the paper's protocol comparison with each
// loss-recovery fix arm enabled on the proxy stack, reporting the
// per-cause retransmission ledger and how much of SPDY's PLT deficit
// against HTTP each arm closes. The paper-era rows reproduce the
// baseline experiments exactly (the arms are inert when off); the +frto
// rows answer the question the paper leaves open in §6.2.1 — whether
// undoing the spurious RTO in-protocol recovers what the RTT-reset
// workaround recovers by avoidance.
func runRecovery(h Harness) *Report {
	r := NewReport("recovery", "Undoing the spurious RTO: TLP, RACK and F-RTO fix arms",
		"the spurious promotion RTO is recoverable in-protocol: F-RTO's Eifel undo repairs the window damage the paper worked around by resetting the RTT estimate; TLP and RACK convert tail-drop timeouts into probe-triggered recovery under burst loss")
	for _, scen := range recoveryScenarios {
		r.Printf("== scenario %s ==", scen.name)
		r.Printf("%-6s %-10s %8s %8s %6s %6s %6s %6s %6s %8s",
			"mode", "arm", "plt_s", "retx", "rto", "fast", "tlp", "rack", "undo", "spurious")
		rows := map[string]recoveryRow{}
		for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
			for _, arm := range recoveryArms {
				row := recoveryCell(h, mode, scen.set, arm.set)
				rows[string(mode)+arm.name] = row
				r.Printf("%-6s %-10s %8.3f %8.1f %6.1f %6.1f %6.1f %6.1f %6.1f %8.1f",
					mode, arm.name, row.plt, row.retx, row.rto, row.fast,
					row.tlp, row.rack, row.undos, row.spurious)
			}
		}
		httpBase := rows["http"+"paper-era"]
		spdyBase := rows["spdy"+"paper-era"]
		for _, arm := range recoveryArms[1:] {
			spdy := rows["spdy"+arm.name]
			r.Metric(scen.name+" spdy plt "+arm.name, spdy.plt, "s")
			if spdyBase.spurious > 0 {
				r.Metric(scen.name+" spdy spurious reduction "+arm.name,
					100*(1-spdy.spurious/spdyBase.spurious), "%")
			}
			// Deficit closure: what fraction of SPDY's PLT gap to the HTTP
			// baseline the arm recovers (only meaningful when SPDY trails).
			if deficit := spdyBase.plt - httpBase.plt; deficit > 0 {
				r.Metric(scen.name+" spdy deficit closed "+arm.name,
					100*(spdyBase.plt-spdy.plt)/deficit, "%")
			}
		}
		r.Metric(scen.name+" http plt paper-era", httpBase.plt, "s")
		r.Metric(scen.name+" spdy plt paper-era", spdyBase.plt, "s")
	}
	return r
}
