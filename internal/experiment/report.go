package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Report is the rendered output of one experiment: the same rows/series
// the paper's table or figure shows, as text.
type Report struct {
	ID    string
	Title string
	// Paper summarizes what the paper found, so every report shows the
	// expected shape next to the measured one.
	Paper string

	buf strings.Builder
	// Metrics holds machine-readable headline numbers for tests and
	// EXPERIMENTS.md generation.
	Metrics map[string]float64
}

// NewReport creates an empty report.
func NewReport(id, title, paper string) *Report {
	return &Report{ID: id, Title: title, Paper: paper, Metrics: make(map[string]float64)}
}

// Printf appends a formatted line to the report body. The rendered
// string decides whether a newline is added (a bare format check would
// double-blank-line when a %s argument ends in \n).
func (r *Report) Printf(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	r.buf.WriteString(s)
	if !strings.HasSuffix(s, "\n") {
		r.buf.WriteByte('\n')
	}
}

// Metric records a headline number and prints it.
func (r *Report) Metric(name string, value float64, unit string) {
	r.Metrics[name] = value
	r.Printf("  %-42s %10.2f %s", name, value, unit)
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	b.WriteString(r.buf.String())
	return b.String()
}

// Harness bounds an experiment's cost.
type Harness struct {
	// Runs is the number of seeds per condition (the paper ran each
	// experiment many times across four months; we sweep seeds).
	Runs int
	// Seed is the base seed; run i uses Seed+i.
	Seed uint64
}

// DefaultHarness gives enough runs for stable box plots while staying
// fast enough for `go test -bench`.
func DefaultHarness() Harness { return Harness{Runs: 5, Seed: 1} }

// Spec is one registered experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Harness) *Report
}

var registry []Spec

func register(id, title string, run func(Harness) *Report) {
	registry = append(registry, Spec{ID: id, Title: title, Run: run})
}

// All returns every registered experiment, in registration order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns all experiment IDs sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, s := range registry {
		out = append(out, s.ID)
	}
	sort.Strings(out)
	return out
}

// pltBySite aggregates PLT samples (seconds) per Table 1 site index
// across runs.
func pltBySite(results []*Result) map[int][]float64 {
	out := make(map[int][]float64)
	for _, r := range results {
		for site, plt := range r.PLTBySite() {
			out[site] = append(out[site], plt)
		}
	}
	return out
}

// allPLTs flattens every page-load time (seconds) across runs.
func allPLTs(results []*Result) []float64 {
	var out []float64
	for _, r := range results {
		out = append(out, r.PLTSeconds()...)
	}
	return out
}

// meanRetx averages total retransmissions per run.
func meanRetx(results []*Result) float64 {
	var s float64
	for _, r := range results {
		s += float64(r.Retransmissions())
	}
	return s / float64(len(results))
}
