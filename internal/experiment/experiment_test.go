package experiment

import (
	"testing"

	"spdier/internal/browser"
	"spdier/internal/stats"
)

// quickHarness keeps shape tests fast: two seeds per condition.
func quickHarness() Harness { return Harness{Runs: 2, Seed: 1} }

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"rttreset", "metricscache", "multiconn", "pipelining", "latebinding",
		"scale", "validate", "recovery", "protocols",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, expected %d", len(All()), len(want))
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs() inconsistent")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a := Run(Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: 5})
	b := Run(Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: 5})
	pa, pb := a.PLTSeconds(), b.PLTSeconds()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("page %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	if a.Retransmissions() != b.Retransmissions() {
		t.Fatalf("retx %d vs %d", a.Retransmissions(), b.Retransmissions())
	}
}

func TestVisitOrderFixedAcrossConditions(t *testing.T) {
	a := Run(Options{Mode: browser.ModeHTTP, Network: Net3G, Seed: 1})
	b := Run(Options{Mode: browser.ModeSPDY, Network: NetWiFi, Seed: 9})
	for i := range a.VisitOrder {
		if a.VisitOrder[i] != b.VisitOrder[i] {
			t.Fatal("visit order differs across conditions")
		}
	}
}

func TestAllRunsComplete(t *testing.T) {
	for _, net := range []NetworkKind{Net3G, NetLTE, NetWiFi} {
		for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
			res := Run(Options{Mode: mode, Network: net, Seed: 3})
			if len(res.Records) != 20 {
				t.Fatalf("%s/%s: %d records", net, mode, len(res.Records))
			}
			for i, rec := range res.Records {
				if rec == nil {
					t.Fatalf("%s/%s: page %d missing", net, mode, i)
				}
				if rec.Aborted {
					t.Errorf("%s/%s: page %d (%s) aborted", net, mode, i, rec.Page.Name)
				}
			}
		}
	}
}

// --- headline shape assertions: the paper's findings must hold ---

func TestShapeFig3No3GWinner(t *testing.T) {
	h := quickHarness()
	httpPLT := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeHTTP, Network: Net3G})))
	spdyPLT := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G})))
	ratio := spdyPLT / httpPLT
	// "SPDY does not clearly outperform HTTP over cellular": neither side
	// wins by anything near the wired 27-60%.
	if ratio < 0.80 || ratio > 1.35 {
		t.Fatalf("3G ratio %0.2f breaks the no-clear-winner finding (http=%.2fs spdy=%.2fs)",
			ratio, httpPLT, spdyPLT)
	}
}

func TestShapeFig4SPDYWinsOnWiFi(t *testing.T) {
	h := quickHarness()
	httpPLT := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeHTTP, Network: NetWiFi})))
	spdyPLT := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeSPDY, Network: NetWiFi})))
	if spdyPLT >= httpPLT {
		t.Fatalf("SPDY must win on WiFi: http=%.2fs spdy=%.2fs", httpPLT, spdyPLT)
	}
	imp := (httpPLT - spdyPLT) / httpPLT * 100
	if imp < 4 {
		t.Fatalf("WiFi improvement %.1f%% below the paper's 4%% floor", imp)
	}
}

func TestShapeFig5PhaseAsymmetry(t *testing.T) {
	httpRes := Run(Options{Mode: browser.ModeHTTP, Network: Net3G, Seed: 1})
	spdyRes := Run(Options{Mode: browser.ModeSPDY, Network: Net3G, Seed: 1})
	meanPhase := func(res *Result, f func(init, wait float64) float64) float64 {
		var v, n float64
		for _, rec := range res.Records {
			for _, or := range rec.Objects {
				if or.Done == 0 {
					continue
				}
				v += f(or.Init().Seconds(), or.Wait().Seconds())
				n++
			}
		}
		return v / n
	}
	httpInit := meanPhase(httpRes, func(i, _ float64) float64 { return i })
	spdyInit := meanPhase(spdyRes, func(i, _ float64) float64 { return i })
	httpWait := meanPhase(httpRes, func(_, w float64) float64 { return w })
	spdyWait := meanPhase(spdyRes, func(_, w float64) float64 { return w })
	if spdyInit > httpInit/5 {
		t.Fatalf("SPDY init %.0fms should be tiny vs HTTP %.0fms", spdyInit*1000, httpInit*1000)
	}
	if spdyWait < 2*httpWait {
		t.Fatalf("SPDY wait %.0fms should dwarf HTTP wait %.0fms", spdyWait*1000, httpWait*1000)
	}
}

func TestShapeFig13RetxConcentration(t *testing.T) {
	h := quickHarness()
	httpRetx := meanRetx(sweep(h, Options{Mode: browser.ModeHTTP, Network: Net3G}))
	spdyRetx := meanRetx(sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G}))
	if httpRetx <= spdyRetx {
		t.Fatalf("HTTP total retx (%.0f) should exceed SPDY's (%.0f)", httpRetx, spdyRetx)
	}
}

func TestShapeFig14PingPinsDCH(t *testing.T) {
	h := quickHarness()
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		plain := sweep(h, Options{Mode: mode, Network: Net3G})
		ping := sweep(h, Options{Mode: mode, Network: Net3G, PingKeepalive: true})
		if pr, br := meanRetx(ping), meanRetx(plain); pr >= br {
			t.Errorf("%s: ping did not cut retransmissions (%.0f vs %.0f)", mode, pr, br)
		}
		pCDF := stats.NewCDF(allPLTs(ping))
		bCDF := stats.NewCDF(allPLTs(plain))
		if pCDF.At(8) <= bCDF.At(8) {
			t.Errorf("%s: P(PLT<8s) with ping %.2f not above %.2f", mode, pCDF.At(8), bCDF.At(8))
		}
		// Pinning DCH costs battery.
		var pe, be float64
		for i := range ping {
			pe += ping[i].RadioMJ
			be += plain[i].RadioMJ
		}
		if pe <= be {
			t.Errorf("%s: ping did not increase radio energy", mode)
		}
	}
}

func TestShapeFig16LTEFasterThan3G(t *testing.T) {
	h := quickHarness()
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		g3 := stats.Mean(allPLTs(sweep(h, Options{Mode: mode, Network: Net3G})))
		lte := stats.Mean(allPLTs(sweep(h, Options{Mode: mode, Network: NetLTE})))
		if lte >= g3/2 {
			t.Errorf("%s: LTE %.2fs not substantially faster than 3G %.2fs", mode, lte, g3)
		}
	}
}

func TestShapeLTERetxFarBelow3G(t *testing.T) {
	h := quickHarness()
	g3 := meanRetx(sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G}))
	lte := meanRetx(sweep(h, Options{Mode: browser.ModeSPDY, Network: NetLTE}))
	if lte >= g3 {
		t.Fatalf("LTE retx %.0f not below 3G %.0f", lte, g3)
	}
	if lte == 0 {
		t.Fatal("LTE should still show some idle-exit retransmissions (Fig 17)")
	}
}

func TestShapeRTTResetFixHelps(t *testing.T) {
	h := quickHarness()
	base := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G})
	fix := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, ResetRTTAfterIdle: true})
	bp, fp := stats.Mean(allPLTs(base)), stats.Mean(allPLTs(fix))
	// The fix's core, measurable claim: spurious retransmissions vanish.
	if meanRetx(fix) >= meanRetx(base)/2 {
		t.Fatalf("fix did not slash retransmissions: %.0f vs %.0f", meanRetx(fix), meanRetx(base))
	}
	// PLT must not regress materially on an undo-capable stack.
	if fp > bp*1.10 {
		t.Fatalf("§6.2.1 fix regressed SPDY PLT: %.2f vs %.2f", fp, bp)
	}
	// On a stack without effective undo — the condition the paper's
	// Figure 12 exhibits — the claimed PLT reduction materializes.
	baseNU := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, DisableUndo: true})
	fixNU := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, DisableUndo: true, ResetRTTAfterIdle: true})
	bn, fn := stats.Mean(allPLTs(baseNU)), stats.Mean(allPLTs(fixNU))
	if fn >= bn {
		t.Fatalf("fix did not reduce PLT on the no-undo stack: %.2f vs %.2f", fn, bn)
	}
}

func TestShapeTable2CubicBeatsRenoForSPDY(t *testing.T) {
	h := quickHarness()
	cubic := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, CC: "cubic"})
	reno := sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, CC: "reno"})
	var cubicAvg, renoAvg float64
	for _, r := range cubic {
		cubicAvg += r.Recorder.MeanCwnd()
	}
	for _, r := range reno {
		renoAvg += r.Recorder.MeanCwnd()
	}
	cubicAvg /= float64(len(cubic))
	renoAvg /= float64(len(reno))
	// Table 2: SPDY-Cubic avg cwnd 52.11 vs Reno 24.16 — Cubic regrows
	// the window far more aggressively between loss episodes. (Both
	// variants share the same max ≈ the receive-window ceiling.)
	if cubicAvg <= renoAvg {
		t.Fatalf("Cubic avg cwnd %.1f not above Reno %.1f", cubicAvg, renoAvg)
	}
}

func TestShapeFig7TestPagesSPDYNotRescued(t *testing.T) {
	rep := runFig7(quickHarness())
	httpSame := rep.Metrics["http PLT, same domain"]
	spdySame := rep.Metrics["spdy PLT, same domain"]
	httpDiff := rep.Metrics["http PLT, different domains"]
	spdyDiff := rep.Metrics["spdy PLT, different domains"]
	// The §5.2 conclusion: even without interdependencies SPDY does not
	// pull ahead of HTTP on 3G.
	if spdySame < httpSame*0.9 || spdyDiff < httpDiff*0.9 {
		t.Fatalf("SPDY should not win the test pages: http=%.2f/%.2f spdy=%.2f/%.2f",
			httpSame, httpDiff, spdySame, spdyDiff)
	}
	// SPDY fires its requests in one burst.
	if span := rep.Metrics["spdy request span, same domain"]; span > 0.5 {
		t.Fatalf("SPDY request span %.2fs not a quick burst", span)
	}
}

func TestShapeFig8ProxyQueueDominates(t *testing.T) {
	rep := runFig8(Harness{Runs: 1, Seed: 1})
	wait := rep.Metrics["origin wait, mean"]
	queue := rep.Metrics["proxy queue delay, mean"]
	if wait > 25 {
		t.Fatalf("origin wait %.1fms departs from Figure 8's 14ms", wait)
	}
	if rep.Metrics["origin wait, max"] > 46 {
		t.Fatalf("origin wait max %.1fms above the 46ms ceiling", rep.Metrics["origin wait, max"])
	}
	if queue < 3*wait {
		t.Fatalf("proxy queue %.1fms does not dominate origin wait %.1fms", queue, wait)
	}
}

func TestShapeFig10MoreInflightLoadsFaster(t *testing.T) {
	rep := runFig10(Harness{Runs: 1, Seed: 2})
	if frac := rep.Metrics["pages where more-inflight protocol is faster"]; frac <= 0.5 {
		t.Fatalf("more-inflight protocol faster on only %.0f%% of pages", frac*100)
	}
}

func TestShapeMetricsCacheDisablingHelpsHTTP(t *testing.T) {
	h := quickHarness()
	on := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeHTTP, Network: Net3G})))
	off := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeHTTP, Network: Net3G, NoMetricsCache: true})))
	// §6.2.4: disabling caching should not hurt; stale metrics poison
	// fresh connections.
	if off > on*1.1 {
		t.Fatalf("disabling the metrics cache hurt badly: %.2f vs %.2f", off, on)
	}
}

func TestShapeLateBindingBeatsEarlyBinding(t *testing.T) {
	h := quickHarness()
	early := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 8})))
	late := stats.Mean(allPLTs(sweep(h, Options{Mode: browser.ModeSPDY, Network: Net3G, SPDYSessions: 8, SPDYLateBinding: true})))
	if late >= early {
		t.Fatalf("late binding (%.2fs) did not beat early binding (%.2fs)", late, early)
	}
}

func TestEveryExperimentRunsWithoutPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	h := Harness{Runs: 1, Seed: 1}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			rep := spec.Run(h)
			if rep == nil || rep.ID != spec.ID {
				t.Fatalf("report mismatch for %s", spec.ID)
			}
			if rep.String() == "" {
				t.Fatal("empty report")
			}
		})
	}
}
