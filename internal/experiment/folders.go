// Folder registry and binary codec: the hooks the process-level sweep
// fabric (internal/fabric) needs to run SweepStream shards in worker
// processes. A worker is handed a folder *name* over the wire, rebuilds
// the accumulator via the registry, folds its shard, and streams the
// encoded state back; the coordinator decodes it and hands it to the
// shard-order merge. Because the stats encodings are bit-exact, a
// decoded shard merges identically to one folded in-process.
package experiment

import (
	"encoding"
	"fmt"
	"reflect"
	"sync"
)

// BinaryFolder is a Folder whose accumulated state round-trips through a
// stable binary encoding bit-exactly. Folders must implement it to be
// registered for fabric execution: encode(state) decoded into a fresh
// instance must reproduce the state exactly, so that shard-order merges
// of wire-travelled shards equal in-process merges byte for byte.
type BinaryFolder interface {
	Folder
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

var folderReg = struct {
	sync.Mutex
	byName map[string]func() Folder
	byType map[reflect.Type]string
}{
	byName: map[string]func() Folder{},
	byType: map[reflect.Type]string{},
}

// RegisterFolder names a shard-accumulator constructor so worker
// processes can rebuild it from its wire name. The constructor's product
// must implement BinaryFolder; registering a duplicate name or concrete
// type panics (both directions of the mapping must stay unambiguous).
func RegisterFolder(name string, ctor func() Folder) {
	probe := ctor()
	if _, ok := probe.(BinaryFolder); !ok {
		panic(fmt.Sprintf("experiment: folder %q (%T) does not implement BinaryFolder", name, probe))
	}
	t := reflect.TypeOf(probe)
	folderReg.Lock()
	defer folderReg.Unlock()
	if _, dup := folderReg.byName[name]; dup {
		panic(fmt.Sprintf("experiment: folder name %q registered twice", name))
	}
	if prev, dup := folderReg.byType[t]; dup {
		panic(fmt.Sprintf("experiment: folder type %v registered as both %q and %q", t, prev, name))
	}
	folderReg.byName[name] = ctor
	folderReg.byType[t] = name
}

// NewFolder constructs a fresh accumulator for a registered name.
func NewFolder(name string) (Folder, bool) {
	folderReg.Lock()
	ctor, ok := folderReg.byName[name]
	folderReg.Unlock()
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// FolderName reports the registered wire name for f's concrete type.
func FolderName(f Folder) (string, bool) {
	folderReg.Lock()
	name, ok := folderReg.byType[reflect.TypeOf(f)]
	folderReg.Unlock()
	return name, ok
}

// EncodeFolder serializes a folder's accumulated state. The folder must
// implement BinaryFolder (guaranteed for registered folders).
func EncodeFolder(f Folder) ([]byte, error) {
	bf, ok := f.(BinaryFolder)
	if !ok {
		return nil, fmt.Errorf("experiment: %T does not implement BinaryFolder", f)
	}
	return bf.MarshalBinary()
}

// DecodeFolder rebuilds a registered folder from EncodeFolder bytes.
func DecodeFolder(name string, data []byte) (Folder, error) {
	f, ok := NewFolder(name)
	if !ok {
		return nil, fmt.Errorf("experiment: folder %q not registered", name)
	}
	if err := f.(BinaryFolder).UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("experiment: decoding folder %q: %w", name, err)
	}
	return f, nil
}

// ShardExecutor computes one SweepStream shard somewhere other than the
// calling goroutine — the process-fabric coordinator implements it over
// a pool of worker processes. ExecuteShard returns the shard's folded
// accumulator, or nil to decline (unregistered folder, non-canonical
// options, exhausted workers), in which case the sweep falls back to
// the in-process path for that shard. Implementations must be safe for
// concurrent calls.
type ShardExecutor interface {
	ExecuteShard(h Harness, base Options, shard int, newShard func() Folder) Folder
}

// Helpers shared by the composite folder encoders: length-prefixed
// concatenation of sub-accumulator blobs.

func appendBlob(out []byte, m encoding.BinaryMarshaler) ([]byte, error) {
	b, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out = append(out, byte(len(b)), byte(len(b)>>8), byte(len(b)>>16), byte(len(b)>>24))
	return append(out, b...), nil
}

func takeBlob(data []byte, u encoding.BinaryUnmarshaler) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("experiment: truncated folder blob header")
	}
	n := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	data = data[4:]
	if n < 0 || len(data) < n {
		return nil, fmt.Errorf("experiment: truncated folder blob (%d of %d bytes)", len(data), n)
	}
	if err := u.UnmarshalBinary(data[:n]); err != nil {
		return nil, err
	}
	return data[n:], nil
}
