package experiment

import (
	"time"

	"spdier/internal/browser"
	"spdier/internal/stats"
	"spdier/internal/webpage"
)

func init() {
	register("fig5", "Object download time split (init/send/wait/recv)", runFig5)
	register("fig6", "Object request patterns for four websites", runFig6)
	register("fig7", "Synthetic 50-object test pages, same vs different domains", runFig7)
}

// runFig5 splits object download time into the four phases of Figure 5:
// HTTP pays in initialization (connection setup / pool wait), SPDY pays
// in wait (responses queue behind the single congestion window).
func runFig5(h Harness) *Report {
	r := NewReport("fig5", "Object download time split",
		"HTTP: large init (handshake or pool wait); SPDY: near-zero init but wait far larger, negating the setup savings; send ≈0 for both")
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		perSite := make(map[int][4]float64)
		counts := make(map[int]int)
		// Full Results are needed (per-object phase splits), so stream
		// them through SweepEach: seed order in, released after folding —
		// identical accumulation order to the old sweep, bounded memory.
		sweepEach(h, Options{Mode: mode, Network: Net3G}, func(res *Result) {
			for i, rec := range res.Records {
				if rec == nil {
					continue
				}
				site := res.VisitOrder[i] + 1
				acc := perSite[site]
				for _, or := range rec.Objects {
					if or.Done == 0 {
						continue
					}
					acc[0] += or.Init().Seconds() * 1000
					acc[1] += or.Send().Seconds() * 1000
					acc[2] += or.Wait().Seconds() * 1000
					acc[3] += or.Recv().Seconds() * 1000
					counts[site]++
				}
				perSite[site] = acc
			}
		})
		r.Printf("-- %s --", mode)
		r.Printf("%-5s %10s %10s %10s %10s  (avg per object, ms)", "site", "init", "send", "wait", "recv")
		var tInit, tWait, tRecv, tN float64
		for site := 1; site <= 20; site++ {
			n := float64(counts[site])
			if n == 0 {
				continue
			}
			acc := perSite[site]
			r.Printf("%-5d %10.0f %10.0f %10.0f %10.0f", site, acc[0]/n, acc[1]/n, acc[2]/n, acc[3]/n)
			tInit += acc[0]
			tWait += acc[2]
			tRecv += acc[3]
			tN += n
		}
		r.Metric(string(mode)+" mean init", tInit/tN, "ms")
		r.Metric(string(mode)+" mean wait", tWait/tN, "ms")
		r.Metric(string(mode)+" mean recv", tRecv/tN, "ms")
	}
	return r
}

// runFig6 shows when objects are requested: SPDY requests arrive in
// dependency-driven steps rather than all at once; HTTP trickles
// continuously as connections free up.
func runFig6(h Harness) *Report {
	r := NewReport("fig6", "Object request patterns",
		"SPDY requests objects in steps (JS/CSS interdependencies gate discovery); HTTP requests continuously as connections free")
	// Two news sites and two photo/video-heavy sites, as in the paper.
	sites := []int{7, 15, 12, 18}
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		res := cachedRun(Options{Mode: mode, Network: Net3G, Seed: h.Seed})
		r.Printf("-- %s --", mode)
		for _, site := range sites {
			for i, rec := range res.Records {
				if rec == nil || res.VisitOrder[i]+1 != site {
					continue
				}
				// Cumulative requests per 500 ms bucket for the first 10 s.
				bins := stats.NewBinSeries(0.5)
				waves := 0
				for _, or := range rec.Objects {
					bins.Add(or.Requested.Sub(rec.Start).Seconds(), 1)
					if or.Obj.Wave > waves {
						waves = or.Obj.Wave
					}
				}
				cum := 0.0
				line := ""
				for b := 0; b < 20 && b < len(bins.Bins); b++ {
					cum += bins.Bins[b]
					line += sprintf3(cum)
				}
				r.Printf("site %2d (%-14s) waves=%d objs=%3d | cum req per 0.5s: %s",
					site, rec.Page.Category, waves, len(rec.Objects), line)
			}
		}
	}
	r.Printf("note: each column is a 0.5 s bucket; SPDY jumps in steps at wave boundaries, HTTP climbs gradually")
	return r
}

func sprintf3(v float64) string {
	const digits = "0123456789"
	n := int(v)
	if n > 999 {
		n = 999
	}
	return " " + string([]byte{digits[n/100], digits[(n/10)%10], digits[n%10]})
}

// runFig7 runs the §5.2 validation pages: 50 images with no
// interdependencies, all on one domain vs each on its own domain.
func runFig7(h Harness) *Report {
	r := NewReport("fig7", "50-object test pages",
		"HTTP 5.29 s (same domain) / 6.80 s (different domains); SPDY 7.22 s / 8.38 s — removing interdependencies does not rescue SPDY; prioritization alone is not a panacea")
	for _, tc := range []struct {
		name string
		same bool
	}{{"same domain", true}, {"different domains", false}} {
		for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
			var plts, spans []float64
			for i := 0; i < h.Runs; i++ {
				res := Run(Options{
					Mode:       mode,
					Network:    Net3G,
					Seed:       h.Seed + uint64(i),
					Pages:      []*webpage.Page{webpage.TestPage(tc.same)},
					FastOrigin: true, // the paper's dedicated test server
				})
				rec := res.Records[0]
				plts = append(plts, rec.PLT().Seconds())
				// Span between the first and last image request measures
				// "requests all the images in quick succession".
				var first, last time.Duration
				for _, or := range rec.Objects {
					if or.Obj.ID == 0 {
						continue
					}
					d := or.Requested.Sub(rec.Start)
					if first == 0 || d < first {
						first = d
					}
					if d > last {
						last = d
					}
				}
				spans = append(spans, (last - first).Seconds())
			}
			r.Metric(string(mode)+" PLT, "+tc.name, stats.Mean(plts), "s")
			r.Metric(string(mode)+" request span, "+tc.name, stats.Mean(spans), "s")
		}
	}
	return r
}
