package experiment

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/webpage"
)

// Metamorphic oracles: relations that must hold between runs whose
// configurations differ in one physically meaningful way, regardless of
// the absolute numbers either run produces. They catch the bugs golden
// tests cannot — a simulator that is self-consistently wrong.

// metaSites is the workload subset the metamorphic tests share. Eight
// sites keeps each run under a second while still mixing categories.
func metaSites() []webpage.SiteSpec { return webpage.Table1()[:8] }

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func meanPLT(rs []*RunStats) float64 { return meanOf(allPLTStats(rs)) }

// TestPLTMonotoneInAddedLatency: adding pure propagation delay to both
// directions of the path must not make pages load faster. Checked on
// both protocols so a latency-hiding bug in either stack is caught.
func TestPLTMonotoneInAddedLatency(t *testing.T) {
	h := Harness{Runs: 2, Seed: 3}
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		r := NewRunner(2)
		prev := -1.0
		prevLat := time.Duration(0)
		for _, lat := range []time.Duration{0, 80 * time.Millisecond, 240 * time.Millisecond} {
			rs := r.SweepStats(h, Options{
				Mode: mode, Network: NetWiFi, Sites: metaSites(), ExtraLatency: lat,
			})
			m := meanPLT(rs)
			if m <= 0 {
				t.Fatalf("%s lat=%v: degenerate mean PLT %v", mode, lat, m)
			}
			if prev >= 0 && m < prev {
				t.Errorf("%s: mean PLT decreased when latency rose %v -> %v: %.3fs -> %.3fs",
					mode, prevLat, lat, prev, m)
			}
			prev, prevLat = m, lat
		}
	}
}

// TestPLTMonotoneInPromotionDelay: stretching the 3G IDLE->DCH promotion
// delay is dead air before the first byte of every cold radio wakeup —
// pages must not get faster. This is the paper's central mechanism
// (radio state promotions dominating mobile PLT), so a violation means
// the RRC model is disconnected from the transport.
func TestPLTMonotoneInPromotionDelay(t *testing.T) {
	h := Harness{Runs: 2, Seed: 5}
	r := NewRunner(2)
	prev := -1.0
	prevScale := 0.0
	for _, scale := range []float64{0.5, 1, 2} {
		rs := r.SweepStats(h, Options{
			Mode: browser.ModeSPDY, Network: Net3G, Sites: metaSites(), PromotionScale: scale,
		})
		m := meanPLT(rs)
		if m <= 0 {
			t.Fatalf("scale=%g: degenerate mean PLT %v", scale, m)
		}
		if prev >= 0 && m < prev {
			t.Errorf("mean PLT decreased when promotion delay rose %gx -> %gx: %.3fs -> %.3fs",
				prevScale, scale, prev, m)
		}
		prev, prevScale = m, scale
	}
}

// TestNoLossNoRetx: on WiFi (no radio gate, so no spurious RTOs from
// promotion stalls) with link loss forced to zero and a single SPDY
// session, there is nothing that can destroy or delay a segment beyond
// the in-order FIFO path — any retransmission is a simulator bug.
func TestNoLossNoRetx(t *testing.T) {
	h := Harness{Runs: 3, Seed: 1}
	rs := NewRunner(2).SweepStats(h, Options{
		Mode: browser.ModeSPDY, Network: NetWiFi, Sites: metaSites(), NoLinkLoss: true,
	})
	for _, s := range rs {
		if s.Retx != 0 || s.Spurious != 0 {
			t.Errorf("seed %d: %d retx (%d spurious) on a lossless in-order path",
				s.Seed, s.Retx, s.Spurious)
		}
	}
}

// TestImpairmentCausesRetx is the converse control: the same lossless
// configuration with Gilbert-Elliott burst loss layered on top must
// produce retransmissions, proving the impairment actually reaches the
// transport (and that TestNoLossNoRetx is not vacuously green).
func TestImpairmentCausesRetx(t *testing.T) {
	h := Harness{Runs: 3, Seed: 1}
	rs := NewRunner(2).SweepStats(h, Options{
		Mode: browser.ModeSPDY, Network: NetWiFi, Sites: metaSites(), NoLinkLoss: true,
		Impair: netem.Impairments{GEGoodToBad: 0.02, GEBadToGood: 0.3, GELossBad: 0.5},
	})
	total := 0
	for _, s := range rs {
		total += s.Retx
	}
	if total == 0 {
		t.Fatal("burst-loss impairment produced zero retransmissions across 3 runs")
	}
}

// TestHTTPDilutesLossAcrossConnections reproduces the paper's Section 4
// observation as a relation: HTTP spreads the same workload over many
// short connections while SPDY concentrates it on one, so HTTP must
// both open more concurrent connections and spread its retransmissions
// over more of them.
func TestHTTPDilutesLossAcrossConnections(t *testing.T) {
	h := Harness{Runs: 3, Seed: 2}
	r := NewRunner(2)
	http := r.SweepStats(h, Options{Mode: browser.ModeHTTP, Network: Net3G, Sites: metaSites()})
	spdy := r.SweepStats(h, Options{Mode: browser.ModeSPDY, Network: Net3G, Sites: metaSites()})
	var httpPeak, spdyPeak, httpRetxConns, spdyRetxConns int
	for i := range http {
		httpPeak += http[i].PeakConns
		spdyPeak += spdy[i].PeakConns
		httpRetxConns += http[i].RetxConns
		spdyRetxConns += spdy[i].RetxConns
	}
	if httpPeak <= spdyPeak {
		t.Errorf("HTTP peak connections (%d) not above SPDY (%d): no connection dilution",
			httpPeak, spdyPeak)
	}
	if httpRetxConns <= spdyRetxConns {
		t.Errorf("HTTP retx spread over %d conns, SPDY over %d: losses not diluted",
			httpRetxConns, spdyRetxConns)
	}
}

// mildImpairments are perturbations small enough not to change the
// qualitative regime: ~0.1% extra bursty loss and FIFO-preserving
// jitter. Reordering is deliberately excluded — even 0.5% per-packet
// reordering floods SPDY's single large-window connection with
// duplicate ACKs and spurious fast retransmits, flipping the Figure 3/4
// orderings for real (the paper's own finding that SPDY's advantage is
// fragile under adverse paths), which is regime change, not noise.
func mildImpairments() []netem.Impairments {
	return []netem.Impairments{
		{},
		{GEGoodToBad: 0.002, GEBadToGood: 0.4, GELossBad: 0.25, ExtraJitter: 2 * time.Millisecond},
	}
}

// TestFig3DirectionStableUnderImpairment: Figure 3's qualitative claim —
// HTTP retransmits more than SPDY on 3G — must survive mild additional
// impairment. The absolute counts move; the ordering may not.
func TestFig3DirectionStableUnderImpairment(t *testing.T) {
	h := Harness{Runs: 3, Seed: 4}
	r := NewRunner(2)
	for _, im := range mildImpairments() {
		http := meanRetxStats(r.SweepStats(h, Options{
			Mode: browser.ModeHTTP, Network: Net3G, Sites: metaSites(), Impair: im,
		}))
		spdy := meanRetxStats(r.SweepStats(h, Options{
			Mode: browser.ModeSPDY, Network: Net3G, Sites: metaSites(), Impair: im,
		}))
		if http <= spdy {
			t.Errorf("impair=%+v: HTTP mean retx %.2f <= SPDY %.2f; Figure 3 ordering inverted",
				im, http, spdy)
		}
	}
}

// TestFig4DirectionStableUnderImpairment: Figure 4's qualitative claim —
// SPDY loads pages faster than HTTP on WiFi — must survive mild
// impairment. SPDY's single warm connection should, if anything, gain
// from adversity relative to HTTP's cold-start parade.
func TestFig4DirectionStableUnderImpairment(t *testing.T) {
	h := Harness{Runs: 3, Seed: 6}
	r := NewRunner(2)
	for _, im := range mildImpairments() {
		http := meanPLT(r.SweepStats(h, Options{
			Mode: browser.ModeHTTP, Network: NetWiFi, Sites: metaSites(), Impair: im,
		}))
		spdy := meanPLT(r.SweepStats(h, Options{
			Mode: browser.ModeSPDY, Network: NetWiFi, Sites: metaSites(), Impair: im,
		}))
		if spdy >= http {
			t.Errorf("impair=%+v: SPDY mean PLT %.3fs >= HTTP %.3fs; Figure 4 ordering inverted",
				im, spdy, http)
		}
	}
}

// TestFRTOEngagesAndRepairsPromotionDamage is the tentpole's oracle at
// session scale: on the paper's 3G think-time workload every idle gap
// ends in a radio promotion, so the F-RTO arm must actually engage
// (undos fire), and on a stack whose DSACK undo is ineffective —
// where the baseline keeps the collapsed window for good — undoing the
// spurious timeouts must not make pages slower, on either protocol.
// (The conn-level TestFRTOUndoRepairsPromotionTimeout pins the sharp
// per-connection claims: backoff cleared, ssthresh restored, spurious
// retransmissions at the irreducible floor.)
func TestFRTOEngagesAndRepairsPromotionDamage(t *testing.T) {
	h := Harness{Runs: 3, Seed: 8}
	r := NewRunner(2)
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		base := r.SweepStats(h, Options{
			Mode: mode, Network: Net3G, Sites: metaSites(), DisableUndo: true,
		})
		frto := r.SweepStats(h, Options{
			Mode: mode, Network: Net3G, Sites: metaSites(), DisableUndo: true, FRTO: true,
		})
		undos := 0
		for _, s := range frto {
			undos += s.FrtoUndos
		}
		if undos == 0 {
			t.Errorf("%s: F-RTO never engaged across %d promotion-heavy runs", mode, h.Runs)
		}
		for _, s := range base {
			if s.FrtoUndos != 0 {
				t.Errorf("%s seed %d: baseline reported %d F-RTO undos with the arm off",
					mode, s.Seed, s.FrtoUndos)
			}
		}
		bm, fm := meanPLT(base), meanPLT(frto)
		if fm > bm {
			t.Errorf("%s: undoing spurious RTOs slowed pages down: %.3fs -> %.3fs", mode, bm, fm)
		}
	}
}

// Cross-protocol oracles: relations between the protocol arms the
// composable transport refactor makes comparable. Each pins a claim the
// protocols experiment's absolute numbers rest on.

// TestH2EqualFramingMatchesSPDY is the differential half of the h2 arm:
// with equal framing — SPDY's zlib header sizes, SPDY's 8-byte DATA
// overhead, flow-control windows too large to ever bind — the h2 stack
// is byte-for-byte the SPDY stack on the wire, so every page load time
// must be bit-identical and every loss (the link drops bytes by
// position, deterministically per seed) must land on the same segment.
// Any divergence means the h2 session pump, priority order or request
// pricing silently differs from SPDY's beyond the framing it claims is
// the only difference.
func TestH2EqualFramingMatchesSPDY(t *testing.T) {
	cases := []struct {
		name string
		set  func(*Options)
	}{
		{"3g-noloss", func(o *Options) { o.Network = Net3G; o.NoLinkLoss = true }},
		{"3g-loss", func(o *Options) { o.Network = Net3G }},
		{"wifi-loss", func(o *Options) { o.Network = NetWiFi }},
	}
	for _, tc := range cases {
		spdyOpts := Options{Mode: browser.ModeSPDY, Sites: metaSites(), Seed: 3}
		tc.set(&spdyOpts)
		h2Opts := spdyOpts
		h2Opts.Mode = browser.ModeH2
		h2Opts.H2EqualFraming = true
		spdy, h2 := Run(spdyOpts), Run(h2Opts)

		sp, hp := spdy.PLTSeconds(), h2.PLTSeconds()
		if len(sp) != len(hp) {
			t.Fatalf("%s: page counts %d vs %d", tc.name, len(sp), len(hp))
		}
		for i := range sp {
			if sp[i] != hp[i] {
				t.Errorf("%s page %d: spdy PLT %v, equal-framing h2 PLT %v", tc.name, i, sp[i], hp[i])
			}
		}
		if sr, hr := spdy.Retransmissions(), h2.Retransmissions(); sr != hr {
			t.Errorf("%s: retransmissions %d vs %d — losses fell on different bytes", tc.name, sr, hr)
		}
		if spdy.Incomplete != 0 || h2.Incomplete != 0 {
			t.Errorf("%s: incomplete pages spdy=%d h2=%d", tc.name, spdy.Incomplete, h2.Incomplete)
		}
	}
}

// noHoLOutcome is one full execution of the no-HoL oracle: per-stream
// completion times for clean and single-stream-lossy transfers on both
// a QUIC-style transport and the shared TCP connection SPDY/h2 ride.
type noHoLOutcome struct {
	quicClean, quicLossy map[uint32]sim.Time
	tcpClean, tcpLossy   map[uint32]sim.Time
	quicDrops, tcpDrops  int
}

// geDropper is a seeded Gilbert-Elliott chain: the filter consults it
// once per candidate packet, so the loss pattern is bursty but fully
// deterministic for a given seed.
type geDropper struct {
	rng *sim.RNG
	bad bool
}

func (g *geDropper) drop() bool {
	if g.bad {
		if g.rng.Float64() < 0.3 {
			g.bad = false
		}
	} else if g.rng.Float64() < 0.25 {
		g.bad = true
	}
	return g.bad && g.rng.Float64() < 0.6
}

// runNoHoLOracle interleaves three equal streams over one session and
// applies seeded GE loss to stream 1's bytes only — QUIC can target the
// stream directly (packets carry stream IDs); on TCP the filter targets
// the byte ranges stream 1's chunks occupy in the multiplexed sequence
// space. Retransmissions are never dropped, so recovery always succeeds
// and completion times are well-defined.
func runNoHoLOracle(t *testing.T) noHoLOutcome {
	t.Helper()
	const (
		chunk   = 1380 // == MSS, so TCP segments align with chunk boundaries
		rounds  = 24
		total   = chunk * rounds
		geSeed  = 97
		streams = 3
	)

	quicRun := func(lossy bool) (map[uint32]sim.Time, int) {
		loop := sim.NewLoop()
		cfg := netem.ProfileWiFi()
		cfg.Up.LossRate, cfg.Down.LossRate = 0, 0
		cfg.Up.Jitter, cfg.Down.Jitter = 0, 0
		path := netem.NewPath(loop, cfg, sim.NewRNG(7), nil)
		net := tcpsim.NewNetwork(loop, path)
		ccfg := tcpsim.DefaultConfig()
		// A window larger than the whole transfer: congestion control
		// never binds, so the only coupling left between streams is the
		// delivery discipline under loss — exactly what the oracle tests.
		ccfg.InitialCwnd = 1 << 17
		client, server := net.NewQUICPair(ccfg, ccfg, "q1", "example.org")

		drops := 0
		if lossy {
			ge := &geDropper{rng: sim.NewRNG(geSeed)}
			path.AtoB.SetFilter(func(p netem.Payload, _ int) bool {
				qp, ok := p.(*tcpsim.QUICPacket)
				if !ok || qp.Ack || qp.Hs != 0 || qp.Len == 0 || qp.StreamID != 1 {
					return true
				}
				if ge.drop() {
					drops++
					return false
				}
				return true
			})
		}
		done := map[uint32]sim.Time{}
		got := map[uint32]int{}
		server.OnStreamDeliver(func(sid uint32, n int) {
			got[sid] += n
			if got[sid] == total {
				done[sid] = loop.Now()
			}
		})
		client.OnEstablished(func() {
			for i := 0; i < rounds; i++ {
				client.WriteStream(1, chunk)
				client.WriteStream(3, chunk)
				client.WriteStream(5, chunk)
			}
		})
		client.Connect()
		loop.RunUntilIdle()
		for _, sid := range []uint32{1, 3, 5} {
			if got[sid] != total {
				t.Fatalf("quic lossy=%v: stream %d delivered %d/%d bytes", lossy, sid, got[sid], total)
			}
		}
		return done, drops
	}

	tcpRun := func(lossy bool) (map[uint32]sim.Time, int) {
		loop := sim.NewLoop()
		cfg := netem.ProfileWiFi()
		cfg.Up.LossRate, cfg.Down.LossRate = 0, 0
		cfg.Up.Jitter, cfg.Down.Jitter = 0, 0
		path := netem.NewPath(loop, cfg, sim.NewRNG(7), nil)
		net := tcpsim.NewNetwork(loop, path)
		ccfg := tcpsim.DefaultConfig()
		ccfg.InitialCwnd = 1 << 17 // same discipline as the QUIC leg
		client, server := net.NewConnPair(ccfg, ccfg, "t1", "example.org")

		drops := 0
		if lossy {
			ge := &geDropper{rng: sim.NewRNG(geSeed)}
			base := ^uint64(0)
			path.AtoB.SetFilter(func(p netem.Payload, _ int) bool {
				seg, ok := p.(*tcpsim.Segment)
				if !ok || seg.Len == 0 || seg.Retx {
					return true
				}
				if base == ^uint64(0) {
					base = seg.Seq
				}
				// Chunks are written stream 1, 3, 5 per round and are
				// MSS-sized, so a segment whose cycle offset falls in the
				// first chunk carries stream 1's bytes.
				if (seg.Seq-base)%(streams*chunk) >= chunk {
					return true
				}
				if ge.drop() {
					drops++
					return false
				}
				return true
			})
		}
		done := map[uint32]sim.Time{}
		got := map[uint32]int{}
		asm := &tcpsim.StreamAssembler{}
		server.OnDeliver(asm.Deliver)
		for i := 0; i < rounds; i++ {
			for _, sid := range []uint32{1, 3, 5} {
				sid := sid
				asm.Expect(chunk, func() {
					got[sid] += chunk
					if got[sid] == total {
						done[sid] = loop.Now()
					}
				})
			}
		}
		client.OnEstablished(func() {
			for i := 0; i < rounds; i++ {
				client.Write(chunk) // stream 1's chunk
				client.Write(chunk) // stream 3's
				client.Write(chunk) // stream 5's
			}
		})
		client.Connect()
		loop.RunUntilIdle()
		for _, sid := range []uint32{1, 3, 5} {
			if got[sid] != total {
				t.Fatalf("tcp lossy=%v: stream %d delivered %d/%d bytes", lossy, sid, got[sid], total)
			}
		}
		return done, drops
	}

	var out noHoLOutcome
	out.quicClean, _ = quicRun(false)
	out.quicLossy, out.quicDrops = quicRun(true)
	out.tcpClean, _ = tcpRun(false)
	out.tcpLossy, out.tcpDrops = tcpRun(true)
	return out
}

// checkNoHoLOutcome asserts the oracle proper: under seeded GE loss
// confined to stream 1, QUIC's untouched streams complete no later than
// their zero-loss trace (no transport HoL blocking), while the same
// loss pattern on the shared TCP byte stream stalls the streams that
// lost nothing of their own — the paper's single-connection fragility,
// reproduced as a relation.
func checkNoHoLOutcome(t *testing.T, out noHoLOutcome) {
	t.Helper()
	if out.quicDrops == 0 || out.tcpDrops == 0 {
		t.Fatalf("filter never bit: quicDrops=%d tcpDrops=%d", out.quicDrops, out.tcpDrops)
	}
	for _, sid := range []uint32{3, 5} {
		if out.quicLossy[sid] > out.quicClean[sid] {
			t.Errorf("quic stream %d: lossy completion %v later than zero-loss %v (HoL blocking)",
				sid, out.quicLossy[sid], out.quicClean[sid])
		}
		if out.tcpLossy[sid] <= out.tcpClean[sid] {
			t.Errorf("tcp stream %d: lossy completion %v not later than zero-loss %v — shared-connection HoL blocking vanished",
				sid, out.tcpLossy[sid], out.tcpClean[sid])
		}
	}
	if out.quicLossy[1] <= out.quicClean[1] {
		t.Errorf("quic stream 1: lossy completion %v not later than zero-loss %v; loss had no effect",
			out.quicLossy[1], out.quicClean[1])
	}
}

// TestQUICNoHoLUnderSingleStreamLoss runs the no-HoL oracle serially,
// then as eight concurrent executions whose outcomes must all be
// bit-identical to the serial one — the determinism contract for the
// QUIC transport under -race at 1-way and 8-way parallelism.
func TestQUICNoHoLUnderSingleStreamLoss(t *testing.T) {
	serial := runNoHoLOracle(t)
	checkNoHoLOutcome(t, serial)

	outs := make([]noHoLOutcome, 8)
	var wg sync.WaitGroup
	for i := range outs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i] = runNoHoLOracle(t)
		}()
	}
	wg.Wait()
	for i, out := range outs {
		if !reflect.DeepEqual(out, serial) {
			t.Errorf("parallel execution %d diverged from serial:\n  serial:   %+v\n  parallel: %+v", i, serial, out)
		}
		checkNoHoLOutcome(t, out)
	}
}

// TestPLTMonotoneInPromotionDelayAllProtocols extends the promotion
// oracle across every protocol arm: stretching the IDLE->DCH promotion
// delay is dead air before every cold radio wakeup, so no protocol —
// however it multiplexes, frames or resumes — may load pages faster
// because of it.
func TestPLTMonotoneInPromotionDelayAllProtocols(t *testing.T) {
	h := Harness{Runs: 2, Seed: 5}
	r := NewRunner(2)
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY, browser.ModeH2, browser.ModeQUIC} {
		prev := -1.0
		prevScale := 0.0
		for _, scale := range []float64{1, 2} {
			rs := r.SweepStats(h, Options{
				Mode: mode, Network: Net3G, Sites: metaSites(), PromotionScale: scale,
			})
			m := meanPLT(rs)
			if m <= 0 {
				t.Fatalf("%s scale=%g: degenerate mean PLT %v", mode, scale, m)
			}
			if prev >= 0 && m < prev {
				t.Errorf("%s: mean PLT decreased when promotion delay rose %gx -> %gx: %.3fs -> %.3fs",
					mode, prevScale, scale, prev, m)
			}
			prev, prevScale = m, scale
		}
	}
}

// TestRecoveryArmsSweepParallelMatchesSerial extends the determinism
// contract to the fix arms: probe timers, RACK reordering windows and
// F-RTO undo decisions are all functions of simulated time and the run
// RNG, so a fully-armed sweep over an impaired path must stay
// bit-for-bit identical at any parallelism.
func TestRecoveryArmsSweepParallelMatchesSerial(t *testing.T) {
	h := Harness{Runs: 4, Seed: 31}
	base := Options{
		Mode: browser.ModeSPDY, Network: Net3G, Sites: metaSites(),
		TLP: true, RACK: true, FRTO: true,
		Impair: netem.Impairments{
			GEGoodToBad: 0.01, GEBadToGood: 0.25, GELossBad: 0.4,
			ReorderProb: 0.01, ReorderDelay: 10 * time.Millisecond,
			DupProb:     0.01,
			ExtraJitter: 5 * time.Millisecond,
		},
	}
	serial := NewRunner(1).Sweep(h, base)
	par := NewRunner(8).Sweep(h, base)
	if len(serial) != len(par) {
		t.Fatalf("length %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, g := serial[i], par[i]
		sp, gp := s.PLTSeconds(), g.PLTSeconds()
		if len(sp) != len(gp) {
			t.Fatalf("run %d: %d vs %d pages", i, len(sp), len(gp))
		}
		for j := range sp {
			if sp[j] != gp[j] {
				t.Fatalf("run %d page %d: PLT %v vs %v", i, j, sp[j], gp[j])
			}
		}
		if s.Retransmissions() != g.Retransmissions() {
			t.Fatalf("run %d: retx %d vs %d", i, s.Retransmissions(), g.Retransmissions())
		}
		compareRecorders(t, "arms-parallel", i, s.Recorder, g.Recorder)
	}
}

// TestImpairedSweepParallelMatchesSerial extends the determinism
// contract to impaired paths: Gilbert-Elliott state, reorder side
// deliveries and pool-sourced duplicates all draw from the run RNG, so
// a sweep with every impairment active must still be bit-for-bit
// identical at any parallelism.
func TestImpairedSweepParallelMatchesSerial(t *testing.T) {
	h := Harness{Runs: 4, Seed: 21}
	base := Options{
		Mode: browser.ModeSPDY, Network: Net3G, Sites: metaSites(),
		Impair: netem.Impairments{
			GEGoodToBad: 0.01, GEBadToGood: 0.25, GELossBad: 0.4,
			ReorderProb: 0.01, ReorderDelay: 10 * time.Millisecond,
			DupProb:     0.01,
			ExtraJitter: 5 * time.Millisecond,
		},
	}
	serial := NewRunner(1).Sweep(h, base)
	par := NewRunner(8).Sweep(h, base)
	if len(serial) != len(par) {
		t.Fatalf("length %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, g := serial[i], par[i]
		if s.Opts.Seed != g.Opts.Seed {
			t.Fatalf("run %d: seed %d vs %d", i, s.Opts.Seed, g.Opts.Seed)
		}
		sp, gp := s.PLTSeconds(), g.PLTSeconds()
		if len(sp) != len(gp) {
			t.Fatalf("run %d: %d vs %d pages", i, len(sp), len(gp))
		}
		for j := range sp {
			if sp[j] != gp[j] {
				t.Fatalf("run %d page %d: PLT %v vs %v", i, j, sp[j], gp[j])
			}
		}
		if s.Retransmissions() != g.Retransmissions() {
			t.Fatalf("run %d: retx %d vs %d", i, s.Retransmissions(), g.Retransmissions())
		}
		if s.Duration != g.Duration {
			t.Fatalf("run %d: duration %v vs %v", i, s.Duration, g.Duration)
		}
		compareRecorders(t, "impaired-parallel", i, s.Recorder, g.Recorder)
	}
}
