// Concurrent, memoizing experiment runner. Every Run is an isolated
// deterministic simulation (its own event loop, RNG, network and
// browser), so seeds of a sweep can execute on separate goroutines and
// identical (network, mode, flags, seed) conditions can be computed once
// and replayed from cache — `spdysim -exp all` re-sweeps the same base
// conditions dozens of times across the ~20 registered experiments.
package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes runs and sweeps through a bounded worker pool and a
// memoizing result cache. The zero value is not usable; call NewRunner.
// A Runner is safe for concurrent use.
type Runner struct {
	parallel int
	cache    *resultCache
	stats    *memoCache[*RunStats]
	sem      chan struct{}

	// shardExec, when non-nil, is offered every SweepStream shard before
	// the in-process fold (the process-fabric coordinator). Guarded by
	// shardExecMu: it is installed once at startup but read per sweep.
	shardExecMu sync.RWMutex
	shardExec   ShardExecutor

	// Progress counters for long sweeps (-progress in cmd/spdysim).
	// runsDone counts every completed run over the runner's lifetime;
	// sweepDone/sweepTotal track the sweep currently in flight (the
	// registered experiments run their sweeps sequentially).
	runsDone   atomic.Uint64
	sweepDone  atomic.Uint64
	sweepTotal atomic.Uint64
}

// NewRunner returns a Runner executing at most parallel simulations at
// once; parallel <= 0 selects GOMAXPROCS.
func NewRunner(parallel int) *Runner {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		parallel: parallel,
		cache:    newResultCache(DefaultCacheCapacity),
		stats:    newMemoCache[*RunStats](DefaultStatsCacheCapacity),
		sem:      make(chan struct{}, parallel),
	}
}

// beginSweep resets the current-sweep progress counters.
func (r *Runner) beginSweep(total int) {
	r.sweepTotal.Store(uint64(total))
	r.sweepDone.Store(0)
}

// noteRun records one completed run for progress reporting.
func (r *Runner) noteRun() {
	r.runsDone.Add(1)
	r.sweepDone.Add(1)
}

// NoteExternalRuns credits n runs computed outside this process (fabric
// worker progress frames, journal replays) to the progress counters, so
// -progress ETAs aggregate across worker processes.
func (r *Runner) NoteExternalRuns(n int) {
	if n <= 0 {
		return
	}
	r.runsDone.Add(uint64(n))
	r.sweepDone.Add(uint64(n))
}

// SetShardExecutor installs (or, with nil, removes) the executor offered
// every SweepStream shard before the in-process fold.
func (r *Runner) SetShardExecutor(ex ShardExecutor) {
	r.shardExecMu.Lock()
	r.shardExec = ex
	r.shardExecMu.Unlock()
}

func (r *Runner) shardExecutor() ShardExecutor {
	r.shardExecMu.RLock()
	defer r.shardExecMu.RUnlock()
	return r.shardExec
}

// Progress reports lifetime completed runs plus the current sweep's
// done/total counters.
func (r *Runner) Progress() (done, sweepDone, sweepTotal uint64) {
	return r.runsDone.Load(), r.sweepDone.Load(), r.sweepTotal.Load()
}

// SetCacheCapacity bounds how many Results the runner retains
// (n <= 0 means unbounded). Shrinking does not evict until the next
// insertion.
func (r *Runner) SetCacheCapacity(n int) {
	r.cache.mu.Lock()
	r.cache.cap = n
	r.cache.mu.Unlock()
}

// Parallelism reports the worker-pool bound.
func (r *Runner) Parallelism() int { return r.parallel }

// CacheStats snapshots the full-Result cache hit/miss counters.
func (r *Runner) CacheStats() CacheStats { return r.cache.stats() }

// CachedConditions reports how many distinct conditions are memoized.
func (r *Runner) CachedConditions() int { return r.cache.len() }

// StreamCacheStats snapshots the per-run aggregate (RunStats) cache
// counters used by the streaming sweep path.
func (r *Runner) StreamCacheStats() CacheStats { return r.stats.stats() }

// StreamCachedConditions reports how many per-run aggregates are
// memoized.
func (r *Runner) StreamCachedConditions() int { return r.stats.len() }

// ResetCache drops all memoized results and aggregates and zeroes the
// counters.
func (r *Runner) ResetCache() {
	r.cache.reset()
	r.stats.reset()
}

// Run executes (or replays from cache) one measurement run. Results are
// memoized by CacheKey, so callers must treat them as immutable; runs
// without a canonical key (explicit Pages) always simulate.
func (r *Runner) Run(opts Options) *Result {
	key, ok := CacheKey(opts)
	if !ok {
		return Run(opts)
	}
	return r.cache.getOrRun(key, func() *Result { return Run(opts) })
}

// Sweep runs one condition across h.Runs seeds, fanning the seeds out
// over the worker pool. The returned slice is ordered by seed (index i
// holds seed h.Seed+i), so output is bit-for-bit identical to a serial
// sweep regardless of parallelism.
func (r *Runner) Sweep(h Harness, base Options) []*Result {
	out := make([]*Result, h.Runs)
	r.beginSweep(h.Runs)
	if h.Runs <= 1 || r.parallel <= 1 {
		for i := range out {
			opts := base
			opts.Seed = h.Seed + uint64(i)
			out[i] = r.Run(opts)
			r.noteRun()
		}
		return out
	}
	var wg sync.WaitGroup
	for i := range out {
		opts := base
		opts.Seed = h.Seed + uint64(i)
		wg.Add(1)
		go func(i int, opts Options) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			out[i] = r.Run(opts)
			r.noteRun()
		}(i, opts)
	}
	wg.Wait()
	return out
}

// defaultRunner backs the package-level sweep()/cachedRun() helpers the
// registered experiments use; one shared cache means `spdysim -exp all`
// computes each condition exactly once across all experiments.
var (
	defaultRunnerMu sync.Mutex
	defaultRunner   = NewRunner(0)
)

// SetParallelism replaces the shared runner's worker-pool bound
// (n <= 0 selects GOMAXPROCS). The shared caches are kept.
func SetParallelism(n int) {
	defaultRunnerMu.Lock()
	defer defaultRunnerMu.Unlock()
	old := defaultRunner
	defaultRunner = NewRunner(n)
	defaultRunner.cache = old.cache
	defaultRunner.stats = old.stats
	defaultRunner.shardExec = old.shardExecutor()
}

// DefaultRunner returns the shared runner.
func DefaultRunner() *Runner {
	defaultRunnerMu.Lock()
	defer defaultRunnerMu.Unlock()
	return defaultRunner
}

// sweep runs one condition across h.Runs seeds on the shared runner.
func sweep(h Harness, base Options) []*Result {
	return DefaultRunner().Sweep(h, base)
}

// sweepStats runs one condition across h.Runs seeds on the shared
// runner, returning per-run aggregates instead of full Results.
func sweepStats(h Harness, base Options) []*RunStats {
	return DefaultRunner().SweepStats(h, base)
}

// sweepEach streams one condition's full Results through fn in seed
// order on the shared runner.
func sweepEach(h Harness, base Options, fn func(*Result)) {
	DefaultRunner().SweepEach(h, base, fn)
}

// sweepStream folds one condition's runs into mergeable shard
// accumulators on the shared runner.
func sweepStream(h Harness, base Options, newShard func() Folder) Folder {
	return DefaultRunner().SweepStream(h, base, newShard)
}

// cachedRun executes one memoized run on the shared runner.
func cachedRun(opts Options) *Result {
	return DefaultRunner().Run(opts)
}
