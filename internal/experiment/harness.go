// Package experiment defines one registered experiment per table and
// figure of the paper, plus the harness that runs a full field-test
// session inside the simulator: 20 sites visited in a fixed random
// order, 60 seconds apart, over a chosen access network and protocol,
// with tcp_probe-style instrumentation — the in-silico equivalent of one
// of the authors' overnight measurement runs.
package experiment

import (
	"time"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/proxy"
	"spdier/internal/rrc"
	"spdier/internal/sim"
	"spdier/internal/stats"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/transport"
	"spdier/internal/webpage"
)

// NetworkKind selects the access network under test.
type NetworkKind string

// Access networks.
const (
	Net3G   NetworkKind = "3g"
	NetLTE  NetworkKind = "lte"
	NetWiFi NetworkKind = "wifi"
)

// visitOrderSeed fixes the random site visit order, which the paper
// generated once and reused across all experiments.
const visitOrderSeed = 20131209 // CoNEXT'13 opening day

// Options configures one simulated measurement run.
type Options struct {
	Network NetworkKind
	Mode    browser.Mode
	Seed    uint64

	// Sites defaults to the Table 1 catalog.
	Sites []webpage.SiteSpec
	// Pages overrides generated pages entirely (test pages of §5.2).
	Pages []*webpage.Page

	// ThinkTime spaces page requests (60 s in the paper).
	ThinkTime time.Duration

	// PingKeepalive keeps the radio in DCH with a background ping
	// (Figure 14).
	PingKeepalive bool
	// PingInterval and PingBytes shape the keep-alive traffic. The
	// payload must exceed the FACH queue threshold so the device rides
	// DCH rather than idling down to the shared channel.
	PingInterval time.Duration
	PingBytes    int

	// SlowStartAfterIdleOff disables Linux cwnd validation (Figure 15).
	SlowStartAfterIdleOff bool
	// ResetRTTAfterIdle enables the paper's §6.2.1 fix.
	ResetRTTAfterIdle bool
	// CC selects "cubic" (default) or "reno" (Table 2).
	CC string
	// NoMetricsCache disables the destination cache (§6.2.4).
	NoMetricsCache bool
	// SPDYSessions stripes SPDY over N connections (§6.1).
	SPDYSessions int
	// SPDYLateBinding uses the §6.2 late-binding remedy when striping.
	SPDYLateBinding bool
	// Pipelining enables HTTP/1.1 pipelining (extension experiment).
	Pipelining bool
	// NoBeacons disables post-load periodic transfers.
	NoBeacons bool
	// FastOrigin uses the pure Figure 8 origin profile (the authors'
	// dedicated test server) instead of the default real-web mixture.
	FastOrigin bool
	// DisableUndo models a TCP stack without effective DSACK undo
	// (ablation for the §6.2.1 fix).
	DisableUndo bool

	// TLP, RACK and FRTO toggle the modern loss-recovery fix arms on
	// every proxy-side connection (see internal/tcpsim/recovery.go).
	// All off reproduces the paper-era stack bit for bit.
	TLP  bool
	RACK bool
	FRTO bool

	// H2EqualFraming makes the h2 mode price frames exactly as SPDY does
	// with never-binding windows — the differential-oracle configuration
	// under which h2 and SPDY runs are bit-identical. No-op outside h2.
	H2EqualFraming bool
	// QUICNo0RTT disables QUIC 0-RTT resumption (ablation of the §6.2.4
	// "cache more aggressively" answer). No-op outside quic.
	QUICNo0RTT bool

	// Impair applies seeded wire impairments (Gilbert-Elliott bursty
	// loss, reordering, duplication, extra jitter) to both directions of
	// the access path. The zero value is inert and leaves the simulation
	// bit-identical to an unimpaired run.
	Impair netem.Impairments
	// ExtraLatency adds one-way propagation delay to both directions of
	// the access path (the metamorphic latency oracle's knob).
	ExtraLatency time.Duration
	// PromotionScale multiplies every RRC promotion delay; 0 or 1 leaves
	// the profile untouched. No-op on WiFi (no radio).
	PromotionScale float64
	// NoLinkLoss zeroes the access profile's residual random loss, for
	// oracles of the form "zero loss implies zero retransmissions".
	NoLinkLoss bool

	// SampleEvery sets the telemetry sampling period (default 500 ms).
	SampleEvery time.Duration

	// ProbeStride downsamples bulk (ack/send) tcp_probe samples: every
	// stride-th one is retained. 0 selects the package default
	// (DefaultProbeStride); 1 retains everything. Rare events and all
	// aggregate statistics are unaffected — see tcpsim.Recorder.
	ProbeStride int

	// LeanProbe retains only rare tcp_probe events (no bulk ack/send
	// samples at all). The simulation itself is unchanged — aggregate
	// counters, retransmission ledgers and burst analysis stay exact —
	// but figure-style cwnd/trace walks see no bulk samples. The
	// streaming sweep path sets this so aggregate-only runs never
	// materialize the columnar trace.
	LeanProbe bool
}

// defaultProbeStride is the bulk-sample downsampling applied when
// Options.ProbeStride is zero. Stride 4 keeps figure traces dense while
// shrinking a cached full-sweep recorder by roughly another 3× on top of
// the columnar layout.
var defaultProbeStride = 4

// SetDefaultProbeStride replaces the package-wide default bulk-sample
// stride (n < 1 selects 1, i.e. retain everything). It backs the
// -probestride flag of cmd/spdysim; changing it invalidates nothing in
// flight but affects only subsequently started runs.
func SetDefaultProbeStride(n int) {
	if n < 1 {
		n = 1
	}
	defaultProbeStride = n
}

// DefaultProbeStride reports the current package default stride.
func DefaultProbeStride() int { return defaultProbeStride }

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = browser.ModeHTTP
	}
	if o.Network == "" {
		o.Network = Net3G
	}
	if len(o.Sites) == 0 && len(o.Pages) == 0 {
		o.Sites = webpage.Table1()
	}
	if o.ThinkTime == 0 {
		o.ThinkTime = 60 * time.Second
	}
	if o.PingInterval == 0 {
		o.PingInterval = 2 * time.Second
	}
	if o.PingBytes == 0 {
		o.PingBytes = 600
	}
	if o.CC == "" {
		o.CC = "cubic"
	}
	if o.SPDYSessions == 0 {
		o.SPDYSessions = 1
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 500 * time.Millisecond
	}
	if o.ProbeStride == 0 {
		o.ProbeStride = defaultProbeStride
	}
	return o
}

// Sample is one telemetry observation.
type Sample struct {
	At            sim.Time
	InFlightBytes int   // sum over proxy-side connections (Fig. 10)
	DownlinkBytes int64 // cumulative proxy→device wire bytes (Fig. 9)
	ActiveConns   int
}

// Result is everything one run produces.
type Result struct {
	Opts       Options
	VisitOrder []int               // indices into Pages
	Pages      []*webpage.Page     // in visit order
	Records    []*trace.PageRecord // in visit order
	Recorder   *tcpsim.Recorder
	Proxy      *proxy.Proxy
	Net        *tcpsim.Network
	Radio      *rrc.Machine // nil for WiFi
	Samples    []Sample
	RadioMJ    float64 // radio energy, millijoules
	Duration   sim.Time
	// Fired is the total number of events the run's loop executed,
	// captured before the loop is released. The scheduler-differential
	// tests assert it is identical under the wheel and heap schedulers.
	Fired uint64
	// Incomplete counts pages whose load callback never fired before the
	// hard deadline; their Records entries are nil and every accessor
	// skips them.
	Incomplete int
}

// PLTSeconds returns page load times in seconds, in visit order.
// Incomplete pages (nil records) are skipped.
func (r *Result) PLTSeconds() []float64 {
	out := make([]float64, 0, len(r.Records))
	for _, rec := range r.Records {
		if rec == nil {
			continue
		}
		out = append(out, rec.PLT().Seconds())
	}
	return out
}

// PLTBySite maps Table 1 site index (1-based) to PLT seconds.
// Incomplete pages (nil records) are skipped.
func (r *Result) PLTBySite() map[int]float64 {
	out := make(map[int]float64)
	for i, rec := range r.Records {
		if rec == nil {
			continue
		}
		site := r.VisitOrder[i] + 1
		out[site] = rec.PLT().Seconds()
	}
	return out
}

// Retransmissions totals RTO retransmissions plus fast retransmits
// across all proxy-side connections.
func (r *Result) Retransmissions() int {
	if r.Recorder == nil {
		return 0
	}
	return r.Recorder.Retransmissions()
}

// ThroughputSeries bins downlink bytes per second from the samples.
func (r *Result) ThroughputSeries() *stats.BinSeries {
	s := stats.NewBinSeries(1.0)
	var prev int64
	for _, smp := range r.Samples {
		s.Add(smp.At.Seconds(), float64(smp.DownlinkBytes-prev))
		prev = smp.DownlinkBytes
	}
	return s
}

// buildNetwork assembles the radio, path and TCP demux for the run,
// applying the Options' path modifiers (impairments, extra latency,
// scaled promotion delays, zeroed residual loss).
func buildNetwork(loop *sim.Loop, o Options, rng *sim.RNG) (*tcpsim.Network, *rrc.Machine) {
	var radio *rrc.Machine
	var pc netem.PathConfig
	var rp rrc.Profile
	hasRadio := false
	switch o.Network {
	case Net3G:
		rp, hasRadio = rrc.Profile3G(), true
		pc = netem.Profile3G()
	case NetLTE:
		rp, hasRadio = rrc.ProfileLTE(), true
		pc = netem.ProfileLTE()
	case NetWiFi:
		pc = netem.ProfileWiFi()
	default:
		panic("experiment: unknown network " + string(o.Network))
	}
	if hasRadio {
		if s := o.PromotionScale; s > 0 && s != 1 {
			scaled := make(map[rrc.State]time.Duration, len(rp.PromotionDelay))
			for st, d := range rp.PromotionDelay {
				scaled[st] = time.Duration(float64(d) * s)
			}
			rp.PromotionDelay = scaled
		}
		radio = rrc.NewMachine(loop, rp)
	}
	pc.Up.Delay += o.ExtraLatency
	pc.Down.Delay += o.ExtraLatency
	if o.NoLinkLoss {
		pc.Up.LossRate, pc.Down.LossRate = 0, 0
	}
	pc = pc.WithImpairments(o.Impair)
	path := netem.NewPath(loop, pc, rng.Fork(0xBEEF), radio)
	return tcpsim.NewNetwork(loop, path), radio
}

// GeneratePages builds the run's page set: deterministic for a given
// seed, identical across protocol modes so comparisons are paired.
func GeneratePages(sites []webpage.SiteSpec, seed uint64) []*webpage.Page {
	pages := make([]*webpage.Page, len(sites))
	base := sim.NewRNG(seed)
	for i, spec := range sites {
		pages[i] = webpage.Generate(spec, base.Fork(uint64(spec.Index)))
	}
	return pages
}

// VisitOrder returns the fixed pseudo-random visit order for n pages.
func VisitOrder(n int) []int {
	return sim.NewRNG(visitOrderSeed).Perm(n)
}

// Run executes one full measurement session and returns its Result.
func Run(opts Options) *Result {
	opts = opts.withDefaults()
	loop := sim.NewLoop()
	rng := sim.NewRNG(opts.Seed)
	net, radio := buildNetwork(loop, opts, rng)

	var rec *tcpsim.Recorder
	if opts.LeanProbe {
		rec = tcpsim.NewRecorderRareOnly()
	} else {
		rec = tcpsim.NewRecorderStride(opts.ProbeStride)
	}
	ocfg := proxy.DefaultOriginConfig()
	if opts.FastOrigin {
		ocfg = proxy.FastOriginConfig()
	}
	origin := proxy.NewOrigin(loop, ocfg, rng.Fork(0x0417))
	prox := proxy.New(loop, origin)

	bcfg := browser.DefaultConfig(opts.Mode)
	// The proxy-side stack is composed from transport layers; the Spec
	// produces a Config field-for-field identical to the direct
	// assignments it replaced (pinned by transport's equivalence test and
	// the layering tests here), so goldens cannot move.
	spec := transport.Spec{
		Kind:               transport.Kind(opts.Mode),
		CC:                 opts.CC,
		Recovery:           tcpsim.RecoveryPolicy{TLP: opts.TLP, RACK: opts.RACK, FRTO: opts.FRTO},
		SlowStartAfterIdle: !opts.SlowStartAfterIdleOff,
		ResetRTTAfterIdle:  opts.ResetRTTAfterIdle,
		DisableUndo:        opts.DisableUndo,
		Probe:              rec,
	}
	if !opts.NoMetricsCache {
		spec.Metrics = tcpsim.NewMetricsCache()
	}
	bcfg.ProxyTCP = spec.Apply(bcfg.ProxyTCP)
	if opts.Mode == browser.ModeQUIC {
		// 0-RTT is the client's resumption decision: it needs the shared
		// metrics cache (QUIC's session-ticket analogue) on its own side.
		bcfg.QUICZeroRTT = !opts.QUICNo0RTT
		bcfg.ClientTCP.Metrics = spec.Metrics
	}
	bcfg.H2EqualFraming = opts.H2EqualFraming
	bcfg.SPDYSessions = opts.SPDYSessions
	bcfg.SPDYLateBinding = opts.SPDYLateBinding
	bcfg.Pipelining = opts.Pipelining
	bcfg.PipelineDepth = 4
	bcfg.Beacons = !opts.NoBeacons
	br := browser.New(loop, net, prox, bcfg, rng.Fork(0xB0B))

	// Pages and visit order.
	pages := opts.Pages
	if pages == nil {
		pages = GeneratePages(opts.Sites, opts.Seed)
	}
	order := VisitOrder(len(pages))

	res := &Result{
		Opts:       opts,
		VisitOrder: order,
		Recorder:   rec,
		Proxy:      prox,
		Net:        net,
		Radio:      radio,
	}

	// Schedule page visits opts.ThinkTime apart.
	records := make([]*trace.PageRecord, len(order))
	for i, pi := range order {
		i, pi := i, pi
		page := pages[pi]
		res.Pages = append(res.Pages, page)
		loop.At(sim.Time(i)*sim.Time(opts.ThinkTime), func() {
			br.LoadPage(page, func(pr *trace.PageRecord) { records[i] = pr })
		})
	}

	// Keep-alive pinger (Figure 14).
	if opts.PingKeepalive {
		var ping func()
		ping = func() {
			net.Path().AtoB.Send("ping", opts.PingBytes)
			loop.After(opts.PingInterval, ping)
		}
		loop.After(opts.PingInterval, ping)
	}

	// Telemetry sampling.
	end := sim.Time(len(order))*sim.Time(opts.ThinkTime) + sim.Time(opts.ThinkTime)
	var sampler func()
	sampler = func() {
		inflight := 0
		for _, c := range br.ProxyConns() {
			inflight += c.InFlightBytes()
		}
		for _, c := range br.ProxyQUICConns() {
			inflight += c.InFlightBytes()
		}
		res.Samples = append(res.Samples, Sample{
			At:            loop.Now(),
			InFlightBytes: inflight,
			DownlinkBytes: net.Path().BtoA.Stats().Bytes,
			ActiveConns:   br.ActiveConns(),
		})
		if loop.Now() < end {
			loop.After(opts.SampleEvery, sampler)
		}
	}
	loop.After(opts.SampleEvery, sampler)

	loop.Run(end)

	// With a short ThinkTime the nominal end can arrive before the last
	// pages finish, leaving nil records. Every load is guaranteed a
	// callback by the browser's page watchdog, so keep the loop running
	// until all callbacks have fired, capped at the instant the last
	// possible watchdog fires.
	incomplete := func() bool {
		for _, rec := range records {
			if rec == nil {
				return true
			}
		}
		return false
	}
	if incomplete() {
		lastStart := sim.Time(len(order)-1) * sim.Time(opts.ThinkTime)
		hardCap := lastStart + sim.Time(bcfg.PageTimeout) + sim.Second
		if hardCap > end {
			loop.Run(hardCap)
		}
	}
	res.Records = records
	for _, rec := range records {
		if rec == nil {
			res.Incomplete++
		}
	}
	res.Duration = loop.Now()
	res.Fired = loop.Fired()
	if radio != nil {
		res.RadioMJ = radio.EnergyMilliJoules()
	}
	// A memoized Result must retain data, not the run's machinery: drop
	// the event queue's callbacks, the segment pool and per-connection
	// runtime state so the browser/proxy/compression graph of the run is
	// collectable while the Result sits in the cache.
	net.ReleaseRuntime()
	loop.Release()
	return res
}
