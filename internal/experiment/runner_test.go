package experiment

import (
	"sync"
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/webpage"
)

func TestCacheKeyCanonicalization(t *testing.T) {
	// Zero-valued fields and their explicit defaults must collide.
	base := Options{Mode: browser.ModeHTTP, Network: Net3G, Seed: 7}
	explicit := Options{
		Mode:         browser.ModeHTTP,
		Network:      Net3G,
		Seed:         7,
		Sites:        webpage.Table1(),
		ThinkTime:    60 * time.Second,
		PingInterval: 2 * time.Second,
		PingBytes:    600,
		CC:           "cubic",
		SPDYSessions: 1,
		SampleEvery:  500 * time.Millisecond,
	}
	bk, ok := CacheKey(base)
	if !ok {
		t.Fatal("base options not cacheable")
	}
	ek, ok := CacheKey(explicit)
	if !ok {
		t.Fatal("explicit options not cacheable")
	}
	if bk != ek {
		t.Fatalf("defaulted and explicit options disagree:\n%s\n%s", bk, ek)
	}

	// Every simulation-relevant field must change the key.
	variants := map[string]Options{
		"mode":       {Mode: browser.ModeSPDY, Network: Net3G, Seed: 7},
		"network":    {Mode: browser.ModeHTTP, Network: NetLTE, Seed: 7},
		"seed":       {Mode: browser.ModeHTTP, Network: Net3G, Seed: 8},
		"sites":      {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, Sites: webpage.Table1()[:5]},
		"think":      {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, ThinkTime: 30 * time.Second},
		"ping":       {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, PingKeepalive: true},
		"pingiv":     {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, PingInterval: 5 * time.Second},
		"pingbytes":  {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, PingBytes: 900},
		"ssai":       {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, SlowStartAfterIdleOff: true},
		"rttreset":   {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, ResetRTTAfterIdle: true},
		"cc":         {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, CC: "reno"},
		"nomcache":   {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, NoMetricsCache: true},
		"sessions":   {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, SPDYSessions: 8},
		"latebind":   {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, SPDYSessions: 8, SPDYLateBinding: true},
		"pipelining": {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, Pipelining: true},
		"nobeacons":  {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, NoBeacons: true},
		"fastorigin": {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, FastOrigin: true},
		"noundo":     {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, DisableUndo: true},
		"lean":       {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, LeanProbe: true},
		"sample":     {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, SampleEvery: time.Second},
		"pstride":    {Mode: browser.ModeHTTP, Network: Net3G, Seed: 7, ProbeStride: 2},
	}
	seen := map[string]string{bk: "base"}
	for name, opts := range variants {
		k, ok := CacheKey(opts)
		if !ok {
			t.Fatalf("%s: not cacheable", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, k)
		}
		seen[k] = name
	}

	// Explicit Pages cannot be canonicalized and must not be memoized.
	if _, ok := CacheKey(Options{Pages: []*webpage.Page{webpage.TestPage(true)}}); ok {
		t.Fatal("Pages-based options must not be cacheable")
	}
}

func TestRunnerDoesNotMemoizePagesRuns(t *testing.T) {
	r := NewRunner(1)
	opts := Options{
		Mode:    browser.ModeHTTP,
		Network: NetWiFi,
		Seed:    1,
		Pages:   []*webpage.Page{webpage.TestPage(true)},
	}
	a := r.Run(opts)
	b := r.Run(opts)
	if a == b {
		t.Fatal("Pages-based runs were memoized")
	}
	if s := r.CacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("Pages-based runs touched the cache: %+v", s)
	}
}

// TestParallelSweepMatchesSerial is the determinism contract: fanning
// seeds across goroutines, recycling events/segments through the pools,
// and re-running on a process whose pools are already warm must all be
// bit-for-bit identical to the serial sweep.
func TestParallelSweepMatchesSerial(t *testing.T) {
	h := Harness{Runs: 4, Seed: 11}
	base := Options{Mode: browser.ModeSPDY, Network: NetWiFi, Sites: webpage.Table1()[:8]}
	serial := NewRunner(1).Sweep(h, base)
	par := NewRunner(4).Sweep(h, base)

	// Pooled-after-reuse: one full sweep recycles thousands of events and
	// segments through the free lists; resetting the cache forces a second
	// sweep to re-simulate every condition on that reused state.
	reuse := NewRunner(2)
	reuse.Sweep(h, base)
	reuse.ResetCache()
	reused := reuse.Sweep(h, base)

	// Unpooled: the free lists disabled entirely, every event and segment
	// freshly allocated.
	sim.SetEventRecycling(false)
	tcpsim.SetSegmentPooling(false)
	unpooled := NewRunner(1).Sweep(h, base)
	sim.SetEventRecycling(true)
	tcpsim.SetSegmentPooling(true)

	for name, got := range map[string][]*Result{
		"parallel": par, "pooled-after-reuse": reused, "unpooled": unpooled,
	} {
		if len(serial) != len(got) {
			t.Fatalf("%s: length %d vs %d", name, len(serial), len(got))
		}
		for i := range serial {
			s, g := serial[i], got[i]
			if s.Opts.Seed != g.Opts.Seed {
				t.Fatalf("%s run %d: seed %d vs %d (ordering broken)", name, i, s.Opts.Seed, g.Opts.Seed)
			}
			sp, gp := s.PLTSeconds(), g.PLTSeconds()
			if len(sp) != len(gp) {
				t.Fatalf("%s run %d: %d vs %d pages", name, i, len(sp), len(gp))
			}
			for j := range sp {
				if sp[j] != gp[j] {
					t.Fatalf("%s run %d page %d: PLT %v vs %v", name, i, j, sp[j], gp[j])
				}
			}
			if s.Retransmissions() != g.Retransmissions() {
				t.Fatalf("%s run %d: retx %d vs %d", name, i, s.Retransmissions(), g.Retransmissions())
			}
			if len(s.Samples) != len(g.Samples) {
				t.Fatalf("%s run %d: %d vs %d samples", name, i, len(s.Samples), len(g.Samples))
			}
			if s.Duration != g.Duration {
				t.Fatalf("%s run %d: duration %v vs %v", name, i, s.Duration, g.Duration)
			}
			compareRecorders(t, name, i, s.Recorder, g.Recorder)
		}
	}
}

// compareRecorders checks the full columnar probe trace, not just its
// length: every retained sample and every exact aggregate must match.
func compareRecorders(t *testing.T, name string, run int, want, got *tcpsim.Recorder) {
	t.Helper()
	if want.Len() != got.Len() || want.TotalSamples() != got.TotalSamples() {
		t.Fatalf("%s run %d: recorder %d/%d retained vs %d/%d",
			name, run, want.Len(), want.TotalSamples(), got.Len(), got.TotalSamples())
	}
	if want.MeanCwnd() != got.MeanCwnd() || want.MaxCwnd() != got.MaxCwnd() {
		t.Fatalf("%s run %d: cwnd aggregates diverge", name, run)
	}
	for _, ev := range tcpsim.Events() {
		if want.Count(ev) != got.Count(ev) {
			t.Fatalf("%s run %d: %s count %d vs %d", name, run, ev, want.Count(ev), got.Count(ev))
		}
	}
	for i := 0; i < want.Len(); i++ {
		if want.Get(i) != got.Get(i) {
			t.Fatalf("%s run %d: sample %d diverges:\n%+v\n%+v", name, run, i, want.Get(i), got.Get(i))
		}
	}
}

func TestSweepMemoizesAcrossCalls(t *testing.T) {
	r := NewRunner(2)
	h := Harness{Runs: 3, Seed: 1}
	base := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Sites: webpage.Table1()[:4]}
	first := r.Sweep(h, base)
	if s := r.CacheStats(); s.Misses != 3 || s.Hits != 0 {
		t.Fatalf("first sweep: %+v", s)
	}
	second := r.Sweep(h, base)
	if s := r.CacheStats(); s.Misses != 3 || s.Hits != 3 {
		t.Fatalf("second sweep: %+v", s)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run %d: cache returned a different result instance", i)
		}
	}
	if n := r.CachedConditions(); n != 3 {
		t.Fatalf("%d conditions cached, want 3", n)
	}
	r.ResetCache()
	if n := r.CachedConditions(); n != 0 {
		t.Fatalf("%d conditions cached after reset", n)
	}
	if s := r.CacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

// TestCacheEvictsLRUBeyondCapacity bounds resident memory: the least
// recently used run is dropped once the capacity is exceeded.
func TestCacheEvictsLRUBeyondCapacity(t *testing.T) {
	r := NewRunner(1)
	r.SetCacheCapacity(2)
	sites := webpage.Table1()[:2]
	optA := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Seed: 1, Sites: sites}
	optB := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Seed: 2, Sites: sites}
	optC := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Seed: 3, Sites: sites}
	a := r.Run(optA)
	r.Run(optB)
	r.Run(optA) // A most recently used
	r.Run(optC) // evicts B
	if n := r.CachedConditions(); n != 2 {
		t.Fatalf("%d conditions cached, want 2", n)
	}
	if got := r.Run(optA); got != a {
		t.Fatal("recently-used A was evicted")
	}
	before := r.CacheStats()
	r.Run(optB) // must re-simulate
	after := r.CacheStats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("evicted B served from cache (misses %d -> %d)", before.Misses, after.Misses)
	}
}

// TestConcurrentIdenticalRunsComputeOnce checks the singleflight
// property: simultaneous lookups of one condition simulate it once.
func TestConcurrentIdenticalRunsComputeOnce(t *testing.T) {
	r := NewRunner(4)
	opts := Options{Mode: browser.ModeHTTP, Network: NetWiFi, Seed: 3, Sites: webpage.Table1()[:4]}
	results := make([]*Result, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(opts)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different result instance", i)
		}
	}
	if s := r.CacheStats(); s.Misses != 1 {
		t.Fatalf("condition simulated %d times, want 1 (%+v)", s.Misses, s)
	}
}

// TestRunShortThinkTimeCompletesAllRecords is the regression test for
// the nil-record crash: with a short ThinkTime the nominal end of the
// session arrives before the later pages finish loading, and Run used to
// leave records[i] == nil, nil-dereferencing in PLTSeconds. The loop now
// runs until every page callback fires (bounded by the page watchdog).
func TestRunShortThinkTimeCompletesAllRecords(t *testing.T) {
	res := Run(Options{
		Mode:      browser.ModeHTTP,
		Network:   Net3G,
		Seed:      2,
		Sites:     webpage.Table1()[:3],
		ThinkTime: 2 * time.Second,
	})
	if len(res.Records) != 3 {
		t.Fatalf("%d records, want 3", len(res.Records))
	}
	complete := 0
	for _, rec := range res.Records {
		if rec != nil {
			complete++
		}
	}
	if complete+res.Incomplete != len(res.Records) {
		t.Fatalf("complete %d + incomplete %d != %d", complete, res.Incomplete, len(res.Records))
	}
	// The watchdog guarantees every callback eventually fires within the
	// hard cap, so nothing should be left incomplete.
	if res.Incomplete != 0 {
		t.Errorf("%d pages incomplete despite watchdog", res.Incomplete)
	}
	plts := res.PLTSeconds() // must not panic
	if len(plts) != complete {
		t.Fatalf("%d PLTs for %d complete pages", len(plts), complete)
	}
	for i, p := range plts {
		if p <= 0 {
			t.Errorf("page %d: non-positive PLT %v", i, p)
		}
	}
	if len(res.PLTBySite()) != complete {
		t.Fatalf("PLTBySite covered %d pages, want %d", len(res.PLTBySite()), complete)
	}
}

// TestSweepSharedRunnerParallelism sanity-checks the package-level
// helpers the experiments use.
func TestSweepSharedRunnerParallelism(t *testing.T) {
	if DefaultRunner().Parallelism() < 1 {
		t.Fatal("shared runner has no workers")
	}
	SetParallelism(2)
	if got := DefaultRunner().Parallelism(); got != 2 {
		t.Fatalf("parallelism %d after SetParallelism(2)", got)
	}
	SetParallelism(0) // back to GOMAXPROCS
	if DefaultRunner().Parallelism() < 1 {
		t.Fatal("shared runner lost its workers")
	}
}
