package experiment

import (
	"fmt"

	"spdier/internal/browser"
	"spdier/internal/stats"
)

func init() {
	register("scale", "Population-scale PLT distribution (streaming sweep)", runScale)
	// Registered for the process fabric: a -fabric sweep ships this name
	// to worker processes, which rebuild the accumulator, fold their
	// shard, and stream the encoded state back.
	RegisterFolder("plt", newPLTFolder)
}

// pltFolder is the scale experiment's shard accumulator: mergeable
// moments, a quantile sketch and a histogram over page load times, plus
// retransmission moments — everything a population-scale protocol
// comparison needs, in fixed memory per shard.
type pltFolder struct {
	plt        stats.Moments
	pltQ       stats.QuantileSketch
	hist       stats.Hist
	retx       stats.Moments
	incomplete int
}

func newPLTFolder() Folder {
	return &pltFolder{hist: *stats.NewHist(1.0)} // 1-second PLT bins
}

func (f *pltFolder) Fold(rs *RunStats) {
	for _, plt := range rs.PLTs {
		f.plt.Add(plt)
		f.pltQ.Add(plt)
		f.hist.Add(plt)
	}
	f.retx.Add(float64(rs.Retx))
	f.incomplete += rs.Incomplete
}

func (f *pltFolder) Merge(o Folder) {
	of := o.(*pltFolder)
	f.plt.Merge(&of.plt)
	f.pltQ.Merge(&of.pltQ)
	f.hist.Merge(&of.hist)
	f.retx.Merge(&of.retx)
	f.incomplete += of.incomplete
}

// pltFolderVersion frames the composite encoding; each sub-accumulator
// carries its own version inside its blob.
const pltFolderVersion = 1

// MarshalBinary encodes the folder as a version byte followed by the
// length-prefixed sub-accumulator blobs in fixed order.
func (f *pltFolder) MarshalBinary() ([]byte, error) {
	out := []byte{pltFolderVersion}
	var err error
	if out, err = appendBlob(out, &f.plt); err != nil {
		return nil, err
	}
	if out, err = appendBlob(out, &f.pltQ); err != nil {
		return nil, err
	}
	if out, err = appendBlob(out, &f.hist); err != nil {
		return nil, err
	}
	if out, err = appendBlob(out, &f.retx); err != nil {
		return nil, err
	}
	out = append(out, byte(f.incomplete), byte(f.incomplete>>8), byte(f.incomplete>>16), byte(f.incomplete>>24))
	return out, nil
}

// UnmarshalBinary replaces the folder with the encoded state.
func (f *pltFolder) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != pltFolderVersion {
		return fmt.Errorf("experiment: pltFolder encoding version mismatch")
	}
	data = data[1:]
	var err error
	if data, err = takeBlob(data, &f.plt); err != nil {
		return err
	}
	if data, err = takeBlob(data, &f.pltQ); err != nil {
		return err
	}
	if data, err = takeBlob(data, &f.hist); err != nil {
		return err
	}
	if data, err = takeBlob(data, &f.retx); err != nil {
		return err
	}
	if len(data) != 4 {
		return fmt.Errorf("experiment: malformed pltFolder encoding")
	}
	f.incomplete = int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	return nil
}

// runScale is the methodology extension the streaming engine exists for:
// the paper's four months of overnight runs, replayed as one large seed
// sweep per protocol. Every run folds into mergeable accumulators and is
// released immediately, so `-runs 1000` costs the same memory as
// `-runs 5`; shard merges are deterministic, so the report is identical
// at any `-parallel`.
func runScale(h Harness) *Report {
	r := NewReport("scale", "Population-scale PLT distribution, HTTP vs SPDY over 3G",
		"methodology extension (streaming sweep): at population scale the HTTP/SPDY gap is a distribution, not a mean — Liu et al. show protocol crossovers only emerge across thousands of loads")
	r.Printf("%-8s %8s %10s %10s %8s %8s %8s %8s %10s %10s %10s",
		"mode", "loads", "mean[s]", "±CI95", "p10", "p50", "p90", "p99", "P(PLT<4s)", "P(PLT<8s)", "retx/run")
	folders := make(map[browser.Mode]*pltFolder)
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		f := sweepStream(h, Options{Mode: mode, Network: Net3G}, newPLTFolder).(*pltFolder)
		folders[mode] = f
		qs := []float64{f.pltQ.Quantile(0.10), f.pltQ.Quantile(0.50), f.pltQ.Quantile(0.90), f.pltQ.Quantile(0.99)}
		r.Printf("%-8s %8d %10.2f %10.2f %8.2f %8.2f %8.2f %8.2f %10.2f %10.2f %10.1f",
			mode, f.plt.N(), f.plt.Mean(), f.plt.CI95(),
			qs[0], qs[1], qs[2], qs[3], f.hist.At(4), f.hist.At(8), f.retx.Mean())
	}
	hf, sf := folders[browser.ModeHTTP], folders[browser.ModeSPDY]
	r.Metric("HTTP mean PLT", hf.plt.Mean(), "s")
	r.Metric("SPDY mean PLT", sf.plt.Mean(), "s")
	r.Metric("HTTP median PLT", hf.pltQ.Quantile(0.5), "s")
	r.Metric("SPDY median PLT", sf.pltQ.Quantile(0.5), "s")
	r.Metric("HTTP p99 PLT", hf.pltQ.Quantile(0.99), "s")
	r.Metric("SPDY p99 PLT", sf.pltQ.Quantile(0.99), "s")
	r.Metric("SPDY median improvement", stats.RelDiff(hf.pltQ.Quantile(0.5), sf.pltQ.Quantile(0.5)), "%")
	r.Metric("page loads aggregated", float64(hf.plt.N()+sf.plt.N()), "loads")
	r.Metric("incomplete loads", float64(hf.incomplete+sf.incomplete), "loads")
	return r
}
