package experiment

import (
	"os"
	"strings"
	"testing"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/tcpsim"
)

// TestDebugNetworkContrast prints mean PLT per mode for each access
// network — the paper's core cross-network finding in one view.
func TestDebugNetworkContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, net := range []NetworkKind{Net3G, NetLTE, NetWiFi} {
		for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
			res := Run(Options{Mode: mode, Network: net, Seed: 7})
			t.Logf("%-4s %-4s meanPLT=%6.2fs medianish retx=%4d aborted=%d",
				net, mode, mean(res.PLTSeconds()), res.Retransmissions(), countAborted(res))
		}
	}
}

// TestDebugCalibration prints link/TCP diagnostics for one run of each
// mode; it never fails and exists to support parameter calibration.
// Set SPDIER_DEBUG_NET to "lte" or "wifi" to inspect other networks.
func TestDebugCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	network := NetworkKind(os.Getenv("SPDIER_DEBUG_NET"))
	if network == "" {
		network = Net3G
	}
	if filter := os.Getenv("SPDIER_DEBUG_CONN"); filter != "" {
		var lines []string
		prefix := os.Getenv("SPDIER_DEBUG_PREFIX")
		tcpsim.SetDebugLog(func(s string) {
			if !strings.Contains(s, filter) || len(lines) >= 800 {
				return
			}
			if prefix != "" && !strings.HasPrefix(s, prefix) {
				return
			}
			lines = append(lines, s)
		})
		defer func() {
			tcpsim.SetDebugLog(nil)
			for _, l := range lines {
				t.Log(l)
			}
		}()
	}
	for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
		res := Run(Options{Mode: mode, Network: network, Seed: 7})
		down := resPathDown(res)
		t.Logf("%s: meanPLT=%.2f aborted=%d", mode, mean(res.PLTSeconds()), countAborted(res))
		t.Logf("  down: sent=%d delivered=%d dropQueue=%d dropLoss=%d",
			down.Sent, down.Delivered, down.DroppedQueue, down.DroppedLoss)
		t.Logf("  retx=%d fast=%d idleRestarts=%d spurious=%d",
			res.Recorder.Count(tcpsim.EvRetransmit), res.Recorder.Count(tcpsim.EvFastRetx),
			res.Recorder.Count(tcpsim.EvIdleRestart), res.Recorder.Count(tcpsim.EvSpurious))
		for i, rec := range res.Records {
			if rec.Aborted {
				t.Logf("  aborted page %d: %s objs=%d", i, rec.Page.Name, len(rec.Objects))
				stuck := 0
				for _, or := range rec.Objects {
					if or.Done == 0 && stuck < 6 {
						stuck++
						t.Logf("    stuck obj %d kind=%s size=%d dom=%s disc=%v req=%v fb=%v conn=%q",
							or.Obj.ID, or.Obj.Kind, or.Obj.Size, or.Obj.Domain, or.Discovered, or.Requested, or.FirstByte, or.ConnID)
					}
				}
			}
		}
		// Figure 5-style phase breakdown.
		var init, wait, recv, n float64
		for _, pr := range res.Records {
			for _, or := range pr.Objects {
				if or.Done == 0 {
					continue
				}
				init += or.Init().Seconds()
				wait += or.Wait().Seconds()
				recv += or.Recv().Seconds()
				n++
			}
		}
		t.Logf("  phases: init=%.0fms wait=%.0fms recv=%.0fms (n=%.0f)", init/n*1000, wait/n*1000, recv/n*1000, n)
		for i, pr := range res.Records {
			t.Logf("    page %2d %-22s plt=%6.2fs objs=%d", i, pr.Page.Name, pr.PLT().Seconds(), len(pr.Objects))
		}
		// Dump any proxy-side connection still holding data at the end.
		for _, c := range res.Net.Conns() {
			if c.BufferedBytes() > 0 || c.InFlightBytes() > 0 {
				t.Logf("  wedged: %v peerWnd=%d rto=%v", c, c.PeerWnd(), c.RTO())
			}
		}
		// Where in the 60 s page cycle do RTO retransmissions fall?
		var hist [6]int
		for _, s := range res.Recorder.Filter(tcpsim.EvRetransmit) {
			off := int(s.At.Seconds()) % 60
			hist[off/10]++
		}
		t.Logf("  retx by 10s-decile of page cycle: %v", hist)
		if mode == browser.ModeSPDY {
			n := 0
			for _, s := range res.Recorder.Filter(tcpsim.EvRetransmit) {
				if n < 40 {
					n++
					t.Logf("    %8.2fs %-12s cwnd=%.0f ssth=%.0f infl=%d rto=%.0fms srtt=%.0fms",
						s.At.Seconds(), s.ConnID, s.Cwnd, s.Ssthresh, s.InFlight, s.RTOms, s.SRTTms)
				}
			}
		}
		if mode == browser.ModeHTTP {
			n := 0
			for _, s := range res.Recorder.Filter(tcpsim.EvRetransmit) {
				if int(s.At.Seconds())%60 < 10 && n < 25 {
					n++
					t.Logf("    %8.2fs %-28s cwnd=%.0f ssth=%.0f rto=%.0fms srtt=%.0fms",
						s.At.Seconds(), s.ConnID, s.Cwnd, s.Ssthresh, s.RTOms, s.SRTTms)
				}
			}
		}
	}
}

func resPathDown(r *Result) netem.LinkStats { return r.Net.Path().BtoA.Stats() }

func countAborted(r *Result) int {
	n := 0
	for _, rec := range r.Records {
		if rec != nil && rec.Aborted {
			n++
		}
	}
	return n
}
