package experiment

import (
	"fmt"
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/proxy"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// runMonolith is a copy of the pre-refactor Run(): the monolithic wiring
// that assigned congestion control, the loss-recovery arms and the idle
// policy directly onto bcfg.ProxyTCP, before those knobs moved behind
// transport.Spec. It is kept verbatim as the reference implementation
// for the layering-equivalence regression below — if the composed stack
// ever drifts from what the direct assignments produced, the probe
// traces diverge here before any golden moves.
func runMonolith(opts Options) *Result {
	opts = opts.withDefaults()
	loop := sim.NewLoop()
	rng := sim.NewRNG(opts.Seed)
	net, radio := buildNetwork(loop, opts, rng)

	var rec *tcpsim.Recorder
	if opts.LeanProbe {
		rec = tcpsim.NewRecorderRareOnly()
	} else {
		rec = tcpsim.NewRecorderStride(opts.ProbeStride)
	}
	ocfg := proxy.DefaultOriginConfig()
	if opts.FastOrigin {
		ocfg = proxy.FastOriginConfig()
	}
	origin := proxy.NewOrigin(loop, ocfg, rng.Fork(0x0417))
	prox := proxy.New(loop, origin)

	bcfg := browser.DefaultConfig(opts.Mode)
	bcfg.ProxyTCP.Probe = rec
	bcfg.ProxyTCP.CC = opts.CC
	bcfg.ProxyTCP.SlowStartAfterIdle = !opts.SlowStartAfterIdleOff
	bcfg.ProxyTCP.ResetRTTAfterIdle = opts.ResetRTTAfterIdle
	bcfg.ProxyTCP.DisableUndo = opts.DisableUndo
	bcfg.ProxyTCP.TLP = opts.TLP
	bcfg.ProxyTCP.RACK = opts.RACK
	bcfg.ProxyTCP.FRTO = opts.FRTO
	if !opts.NoMetricsCache {
		bcfg.ProxyTCP.Metrics = tcpsim.NewMetricsCache()
	}
	bcfg.SPDYSessions = opts.SPDYSessions
	bcfg.SPDYLateBinding = opts.SPDYLateBinding
	bcfg.Pipelining = opts.Pipelining
	bcfg.PipelineDepth = 4
	bcfg.Beacons = !opts.NoBeacons
	br := browser.New(loop, net, prox, bcfg, rng.Fork(0xB0B))

	pages := opts.Pages
	if pages == nil {
		pages = GeneratePages(opts.Sites, opts.Seed)
	}
	order := VisitOrder(len(pages))

	res := &Result{
		Opts:       opts,
		VisitOrder: order,
		Recorder:   rec,
		Proxy:      prox,
		Net:        net,
		Radio:      radio,
	}

	records := make([]*trace.PageRecord, len(order))
	for i, pi := range order {
		i, pi := i, pi
		page := pages[pi]
		res.Pages = append(res.Pages, page)
		loop.At(sim.Time(i)*sim.Time(opts.ThinkTime), func() {
			br.LoadPage(page, func(pr *trace.PageRecord) { records[i] = pr })
		})
	}

	if opts.PingKeepalive {
		var ping func()
		ping = func() {
			net.Path().AtoB.Send("ping", opts.PingBytes)
			loop.After(opts.PingInterval, ping)
		}
		loop.After(opts.PingInterval, ping)
	}

	end := sim.Time(len(order))*sim.Time(opts.ThinkTime) + sim.Time(opts.ThinkTime)
	var sampler func()
	sampler = func() {
		inflight := 0
		for _, c := range br.ProxyConns() {
			inflight += c.InFlightBytes()
		}
		res.Samples = append(res.Samples, Sample{
			At:            loop.Now(),
			InFlightBytes: inflight,
			DownlinkBytes: net.Path().BtoA.Stats().Bytes,
			ActiveConns:   br.ActiveConns(),
		})
		if loop.Now() < end {
			loop.After(opts.SampleEvery, sampler)
		}
	}
	loop.After(opts.SampleEvery, sampler)

	loop.Run(end)

	incomplete := func() bool {
		for _, rec := range records {
			if rec == nil {
				return true
			}
		}
		return false
	}
	if incomplete() {
		lastStart := sim.Time(len(order)-1) * sim.Time(opts.ThinkTime)
		hardCap := lastStart + sim.Time(bcfg.PageTimeout) + sim.Second
		if hardCap > end {
			loop.Run(hardCap)
		}
	}
	res.Records = records
	for _, rec := range records {
		if rec == nil {
			res.Incomplete++
		}
	}
	res.Duration = loop.Now()
	res.Fired = loop.Fired()
	if radio != nil {
		res.RadioMJ = radio.EnergyMilliJoules()
	}
	net.ReleaseRuntime()
	loop.Release()
	return res
}

// layeringCombos enumerates {congestion control} × {loss-recovery arms}
// × {multiplexing mode}: every dimension the transport refactor moved
// behind Spec. The arm set includes each fix alone and all together, so
// a composition bug that only bites when two layers interact (e.g. RACK
// reordering timers under a composed CC hook) cannot hide.
func layeringCombos() []Options {
	arms := []struct {
		name            string
		tlp, rack, frto bool
	}{
		{"none", false, false, false},
		{"tlp", true, false, false},
		{"rack", false, true, false},
		{"frto", false, false, true},
		{"all", true, true, true},
	}
	var combos []Options
	for _, cc := range []string{"cubic", "reno"} {
		for _, arm := range arms {
			for _, mode := range []browser.Mode{browser.ModeHTTP, browser.ModeSPDY} {
				combos = append(combos, Options{
					Mode:        mode,
					Network:     Net3G,
					Sites:       webpage.Table1()[:2],
					Seed:        11,
					ThinkTime:   5 * time.Second,
					CC:          cc,
					TLP:         arm.tlp,
					RACK:        arm.rack,
					FRTO:        arm.frto,
					ProbeStride: 1,
				})
			}
		}
	}
	return combos
}

func comboName(o Options) string {
	return fmt.Sprintf("%s/%s/tlp=%t,rack=%t,frto=%t", o.CC, o.Mode, o.TLP, o.RACK, o.FRTO)
}

// assertRunsIdentical requires two Results to be bit-for-bit the same
// simulation: event counts, durations, page load times, the
// retransmission ledger and the full probe trace sample by sample.
func assertRunsIdentical(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if want.Fired != got.Fired {
		t.Errorf("%s: Fired %d vs %d", name, want.Fired, got.Fired)
	}
	if want.Duration != got.Duration {
		t.Errorf("%s: Duration %v vs %v", name, want.Duration, got.Duration)
	}
	if wr, gr := want.Retransmissions(), got.Retransmissions(); wr != gr {
		t.Errorf("%s: Retransmissions %d vs %d", name, wr, gr)
	}
	wp, gp := want.PLTSeconds(), got.PLTSeconds()
	if len(wp) != len(gp) {
		t.Fatalf("%s: PLT count %d vs %d", name, len(wp), len(gp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Errorf("%s: PLT[%d] %v vs %v", name, i, wp[i], gp[i])
		}
	}
	compareRecorders(t, name, 0, want.Recorder, got.Recorder)
}

// TestLayeringEquivalence pins the tentpole's non-negotiable: the
// composed transport stack (transport.Spec over layered CC / recovery /
// mux) reproduces the pre-refactor monolith bit for bit across every
// {CC} × {recovery arm} × {mux} combination. Any divergence in firing
// order, cwnd evolution or retransmit scheduling anywhere in the
// composed stack surfaces as a probe-trace mismatch here.
func TestLayeringEquivalence(t *testing.T) {
	for _, opts := range layeringCombos() {
		opts := opts
		t.Run(comboName(opts), func(t *testing.T) {
			t.Parallel()
			assertRunsIdentical(t, comboName(opts), runMonolith(opts), Run(opts))
		})
	}
}

// runMonolithWith mirrors runWith for the monolith reference.
func runMonolithWith(s sim.Scheduler, opts Options) *Result {
	prev := sim.SetDefaultScheduler(s)
	defer sim.SetDefaultScheduler(prev)
	return runMonolith(opts)
}

// TestLayeringEquivalenceBothSchedulers replays the heaviest combo —
// all three recovery arms on, both CC variants, SPDY mux — under the
// heap and the wheel schedulers: the composed stack must match the
// monolith under each scheduler, and (transitively with the scheduler
// differential) under both at once.
func TestLayeringEquivalenceBothSchedulers(t *testing.T) {
	for _, cc := range []string{"cubic", "reno"} {
		opts := Options{
			Mode:        browser.ModeSPDY,
			Network:     Net3G,
			Sites:       webpage.Table1()[:2],
			Seed:        11,
			ThinkTime:   5 * time.Second,
			CC:          cc,
			TLP:         true,
			RACK:        true,
			FRTO:        true,
			ProbeStride: 1,
		}
		for _, sched := range []struct {
			name string
			s    sim.Scheduler
		}{{"heap", sim.SchedulerHeap}, {"wheel", sim.SchedulerWheel}} {
			name := cc + "/" + sched.name
			t.Run(name, func(t *testing.T) {
				assertRunsIdentical(t, name,
					runMonolithWith(sched.s, opts), runWith(sched.s, opts))
			})
		}
	}
}
