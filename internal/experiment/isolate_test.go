package experiment

import (
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/netem"
	"spdier/internal/proxy"
	"spdier/internal/rrc"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// TestIsolateCleanHTTP loads pages over a lossless, deeply-buffered 3G
// path: any fast retransmissions here indicate a protocol-logic bug
// rather than genuine loss. RTO retransmissions can still occur
// (promotion-delay spurious timeouts are the point of the paper).
func TestIsolateCleanHTTP(t *testing.T) {
	isolateCleanHTTP(t, false)
}

// TestIsolateCleanHTTPTraced re-runs the scenario with the tcpsim debug
// log capturing the first duplicate-ACK sequences.
func TestIsolateCleanHTTPTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	isolateCleanHTTP(t, true)
}

func isolateCleanHTTP(t *testing.T, traced bool) {
	t.Helper()
	if traced {
		var lines []string
		tcpsim.SetDebugLog(func(s string) {
			if len(lines) < 100000 {
				lines = append(lines, s)
			}
		})
		defer func() {
			tcpsim.SetDebugLog(nil)
			for _, l := range lines {
				t.Log(l)
			}
		}()
	}
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	pc := netem.Profile3G()
	pc.Up.LossRate, pc.Down.LossRate = 0, 0
	pc.Up.QueueBytes, pc.Down.QueueBytes = 16<<20, 16<<20
	path := netem.NewPath(loop, pc, sim.NewRNG(3), radio)
	net := tcpsim.NewNetwork(loop, path)
	rec := tcpsim.NewRecorder()
	origin := proxy.NewOrigin(loop, proxy.DefaultOriginConfig(), sim.NewRNG(4))
	prox := proxy.New(loop, origin)
	bcfg := browser.DefaultConfig(browser.ModeHTTP)
	bcfg.ProxyTCP.Probe = rec
	bcfg.ProxyTCP.Metrics = tcpsim.NewMetricsCache()
	br := browser.New(loop, net, prox, bcfg, sim.NewRNG(5))
	pages := GeneratePages(webpage.Table1(), 7)
	var plts []float64
	for i := 0; i < 5; i++ {
		page := pages[i]
		loop.At(sim.Time(i)*sim.Time(60*time.Second), func() {
			br.LoadPage(page, func(pr *trace.PageRecord) {
				plts = append(plts, pr.PLT().Seconds())
				if pr.Aborted {
					t.Errorf("page %s aborted", pr.Page.Name)
					stuck := 0
					for _, or := range pr.Objects {
						if or.Done == 0 && stuck < 8 {
							stuck++
							t.Logf("  stuck obj %d kind=%s dom=%s disc=%v req=%v fb=%v conn=%q",
								or.Obj.ID, or.Obj.Kind, or.Obj.Domain, or.Discovered, or.Requested, or.FirstByte, or.ConnID)
						}
					}
				}
			})
		})
	}
	loop.Run(sim.Time(360 * time.Second))
	t.Logf("plts=%.2v", plts)
	t.Logf("retx=%d fast=%d spurious=%d idle=%d", rec.Count(tcpsim.EvRetransmit),
		rec.Count(tcpsim.EvFastRetx), rec.Count(tcpsim.EvSpurious), rec.Count(tcpsim.EvIdleRestart))
	// Fast retransmits on a lossless path can only come from duplicate
	// ACKs provoked by spurious RTO retransmissions landing after their
	// originals — the paper's pathology, not a protocol bug. Anything
	// beyond that small collateral indicates a logic error.
	if fast, spur := rec.Count(tcpsim.EvFastRetx), rec.Count(tcpsim.EvSpurious); fast > spur {
		t.Errorf("fast retransmissions (%d) exceed spurious-RTO collateral (%d)", fast, spur)
	}
}
