package experiment

import (
	"spdier/internal/sim"
	"spdier/internal/webpage"
)

func init() {
	register("table1", "Characteristics of tested websites", runTable1)
}

// runTable1 regenerates Table 1: for every site, the generator's average
// object counts, page weight and domain spread across seeds, next to the
// published numbers.
func runTable1(h Harness) *Report {
	r := NewReport("table1", "Characteristics of tested websites",
		"20 sites; 5.1–323 objects; 56 KB–4.7 MB; 2–84.7 domains; heavy JS/CSS use")
	specs := webpage.Table1()
	r.Printf("%-4s %-14s | %8s %8s %8s %8s %8s %8s | %8s %8s",
		"site", "category", "objs", "sizeKB", "domains", "text", "js/css", "imgs", "objs*", "sizeKB*")
	r.Printf("%s", "  (* = published Table 1 value; unstarred = generated, averaged over seeds)")

	var genTot, pubTot float64
	for _, spec := range specs {
		var objs, kb, doms, text, jscss, imgs float64
		for i := 0; i < h.Runs; i++ {
			rng := sim.NewRNG(h.Seed + uint64(i))
			page := webpage.Generate(spec, rng.Fork(uint64(spec.Index)))
			objs += float64(len(page.Objects))
			kb += float64(page.TotalBytes()) / 1024
			doms += float64(len(page.Domains()))
			text += float64(page.CountKind(webpage.KindHTML) + page.CountKind(webpage.KindText))
			jscss += float64(page.CountKind(webpage.KindJS) + page.CountKind(webpage.KindCSS))
			imgs += float64(page.CountKind(webpage.KindImg))
		}
		n := float64(h.Runs)
		r.Printf("%-4d %-14s | %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f | %8.1f %8.1f",
			spec.Index, spec.Category, objs/n, kb/n, doms/n, text/n, jscss/n, imgs/n,
			spec.TotalObjs, spec.AvgSizeKB)
		genTot += objs / n
		pubTot += spec.TotalObjs
	}
	r.Metric("generated total objects (all sites)", genTot, "objects")
	r.Metric("published total objects (all sites)", pubTot, "objects")
	return r
}
