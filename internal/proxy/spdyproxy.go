package proxy

import (
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// chunkSize is the DATA frame payload granularity the SPDY proxy uses
// when interleaving concurrent responses onto the session.
const chunkSize = 8 << 10

// sendHighWater bounds how far ahead of the TCP socket the pump writes:
// it keeps prioritization decisions late (in the pump's queue, where they
// can still reorder) rather than early (in the kernel buffer, where they
// cannot). When the client↔proxy link is the bottleneck, responses pile
// up in the pump queue — the Figure 8 effect of SPDY "moving the
// bottleneck from the client to the proxy".
const sendHighWater = 24 << 10

// SPDYSession is the proxy side of one SPDY connection: it demultiplexes
// request streams, fetches from the origin, and schedules response frames
// strictly by SPDY priority with round-robin interleave within a class.
type SPDYSession struct {
	proxy     *Proxy
	conn      *tcpsim.Conn
	clientAsm *tcpsim.StreamAssembler
	reqAsm    tcpsim.StreamAssembler

	oracle *spdy.SizeOracle // proxy→client header compression context
	queue  spdy.PriorityQueue[*respTask]

	// QueuedResponses gauges the pump backlog for Figure 8 analysis.
	QueuedResponses int
}

// respTask is one response in flight through the pump.
type respTask struct {
	obj       *webpage.Object
	rec       *trace.ProxyRecord
	hooks     ResponseHooks
	priority  spdy.Priority
	headSize  int
	remaining int
	started   bool
}

// NewSPDYSession attaches a SPDY proxy handler to the server-side
// endpoint. The pump re-fills the socket whenever its backlog drains.
func NewSPDYSession(p *Proxy, serverConn *tcpsim.Conn, clientAsm *tcpsim.StreamAssembler) *SPDYSession {
	s := &SPDYSession{
		proxy:     p,
		conn:      serverConn,
		clientAsm: clientAsm,
		oracle:    spdy.NewSizeOracle(),
	}
	serverConn.OnDeliver(s.reqAsm.Deliver)
	serverConn.SetWritableHook(sendHighWater, s.pump)
	return s
}

// Conn exposes the proxy-side TCP endpoint.
func (s *SPDYSession) Conn() *tcpsim.Conn { return s.conn }

// ExpectRequest registers an inbound SYN_STREAM of reqSize bytes for obj.
// The browser calls this immediately before writing the request bytes.
// Unlike HTTP, many requests may be outstanding simultaneously.
func (s *SPDYSession) ExpectRequest(obj *webpage.Object, reqSize int, prio spdy.Priority, hooks ResponseHooks) {
	s.reqAsm.Expect(reqSize, func() {
		rec := s.proxy.record(obj)
		s.proxy.Origin.Fetch(obj,
			func() { rec.OriginFirstByte = s.proxy.Loop.Now() },
			func() {
				rec.OriginDone = s.proxy.Loop.Now()
				s.enqueue(obj, rec, prio, hooks)
			})
	})
}

func (s *SPDYSession) enqueue(obj *webpage.Object, rec *trace.ProxyRecord, prio spdy.Priority, hooks ResponseHooks) {
	head := s.oracle.FrameSize(spdy.SynReply{
		StreamID: uint32(obj.ID*2 + 1),
		Headers:  spdy.ResponseHeaders("200 OK", contentType(obj.Kind), int64(obj.Size)),
	})
	s.queue.Push(prio, &respTask{
		obj:       obj,
		rec:       rec,
		hooks:     hooks,
		priority:  prio,
		headSize:  head,
		remaining: obj.Size,
	})
	s.QueuedResponses++
	s.pump()
}

// pump feeds the socket: highest priority first, one chunk at a time,
// re-queueing unfinished responses behind their priority peers so equal
// priority responses interleave — which is why parallel downloads each
// take longer (observed in Figure 7).
func (s *SPDYSession) pump() {
	for s.conn.BufferedBytes() < sendHighWater {
		task, ok := s.queue.Pop()
		if !ok {
			return
		}
		now := s.proxy.Loop.Now()
		if !task.started {
			task.started = true
			task.rec.SendStart = now
			// SYN_REPLY first.
			hooks := task.hooks
			s.clientAsm.Expect(task.headSize, func() {
				if hooks.OnFirstByte != nil {
					hooks.OnFirstByte()
				}
			})
			s.conn.Write(task.headSize)
		}
		n := task.remaining
		if n > chunkSize {
			n = chunkSize
		}
		task.remaining -= n
		finished := task.remaining == 0
		rec := task.rec
		hooks := task.hooks
		s.clientAsm.Expect(n+spdy.DataFrameOverhead, func() {
			if finished {
				rec.SendDone = s.proxy.Loop.Now()
				if hooks.OnDone != nil {
					hooks.OnDone()
				}
			}
		})
		s.conn.Write(n + spdy.DataFrameOverhead)
		if finished {
			s.QueuedResponses--
		} else {
			s.queue.Push(task.priority, task)
		}
	}
}
