// Package proxy implements the cloud-hosted intermediaries of the paper's
// test setup (Figure 2): an HTTP proxy with persistent connections
// (Squid-like) and a SPDY proxy multiplexing all traffic onto one
// prioritized session (Chromium flip-server-like). Both share one origin
// fetch model, so protocol comparisons isolate the client↔proxy leg —
// the same reason the authors ran both proxies on the same VM.
package proxy

import (
	"time"

	"spdier/internal/sim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// OriginConfig parameterizes the proxy↔origin leg. Figure 8 measured an
// average 14 ms (max 46 ms) to first byte and ~4 ms download, showing
// this leg is never the bottleneck; the defaults reproduce those
// distributions.
type OriginConfig struct {
	// WaitMedian is the median request-to-first-byte latency for the
	// fast (CDN-served) majority of objects.
	WaitMedian time.Duration
	// WaitSigma is the log-normal shape of the wait distribution.
	WaitSigma float64
	// WaitMax truncates the fast wait (the paper observed a 46 ms max
	// on its sampled site).
	WaitMax time.Duration
	// SlowFraction of objects take a dynamic-generation/third-party
	// wait instead (SlowMedian/SlowSigma/SlowMax). Real pages mix
	// CDN-fast assets with slow ad and analytics endpoints; overlapping
	// these waits is a core SPDY-via-proxy advantage.
	SlowFraction float64
	SlowMedian   time.Duration
	SlowSigma    float64
	SlowMax      time.Duration
	// BandwidthBPS is the effective origin→proxy download rate.
	BandwidthBPS int64
	// DownloadFloor is a fixed per-object transfer cost.
	DownloadFloor time.Duration
}

// DefaultOriginConfig returns a mixture: ~80% of objects come back with
// the Figure 8 fast profile (median 12 ms, max 46 ms); the rest carry a
// realistic dynamic-content tail.
func DefaultOriginConfig() OriginConfig {
	return OriginConfig{
		WaitMedian:    12 * time.Millisecond,
		WaitSigma:     0.4,
		WaitMax:       46 * time.Millisecond,
		SlowFraction:  0.2,
		SlowMedian:    220 * time.Millisecond,
		SlowSigma:     0.5,
		SlowMax:       2 * time.Second,
		BandwidthBPS:  400_000_000,
		DownloadFloor: 2 * time.Millisecond,
	}
}

// FastOriginConfig is the pure Figure 8 profile (the paper's dedicated
// test server), used by the experiments that reproduce that figure.
func FastOriginConfig() OriginConfig {
	cfg := DefaultOriginConfig()
	cfg.SlowFraction = 0
	return cfg
}

// Origin simulates fetching objects from web servers over the proxy's
// fat, low-latency cloud uplink.
type Origin struct {
	loop *sim.Loop
	cfg  OriginConfig
	rng  *sim.RNG
}

// NewOrigin creates an origin fetch model.
func NewOrigin(loop *sim.Loop, cfg OriginConfig, rng *sim.RNG) *Origin {
	return &Origin{loop: loop, cfg: cfg, rng: rng}
}

// Fetch retrieves obj: firstByte fires when the origin starts responding,
// done fires when the full body is at the proxy.
func (o *Origin) Fetch(obj *webpage.Object, firstByte, done func()) {
	var wait time.Duration
	if o.cfg.SlowFraction > 0 && o.rng.Bool(o.cfg.SlowFraction) {
		wait = time.Duration(o.rng.LogNorm(float64(o.cfg.SlowMedian), o.cfg.SlowSigma))
		if wait > o.cfg.SlowMax {
			wait = o.cfg.SlowMax
		}
	} else {
		wait = time.Duration(o.rng.LogNorm(float64(o.cfg.WaitMedian), o.cfg.WaitSigma))
		if wait > o.cfg.WaitMax {
			wait = o.cfg.WaitMax
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	dl := o.cfg.DownloadFloor
	if o.cfg.BandwidthBPS > 0 {
		dl += time.Duration(float64(obj.Size*8) / float64(o.cfg.BandwidthBPS) * float64(time.Second))
	}
	o.loop.After(wait, func() {
		if firstByte != nil {
			firstByte()
		}
		o.loop.After(dl, func() {
			if done != nil {
				done()
			}
		})
	})
}

// Proxy aggregates the shared origin model and the per-object proxy-side
// records for Figure 8.
type Proxy struct {
	Loop    *sim.Loop
	Origin  *Origin
	Records []*trace.ProxyRecord
}

// New creates a proxy host with the given origin model.
func New(loop *sim.Loop, origin *Origin) *Proxy {
	return &Proxy{Loop: loop, Origin: origin}
}

// record appends r to the proxy log and returns it.
func (p *Proxy) record(obj *webpage.Object) *trace.ProxyRecord {
	r := &trace.ProxyRecord{Obj: obj, ReqArrived: p.Loop.Now()}
	p.Records = append(p.Records, r)
	return r
}

// ResponseHooks are the browser-side callbacks the proxy fires through
// the client connection's stream assembler as response bytes land.
type ResponseHooks struct {
	// OnFirstByte fires when the response head is delivered client-side.
	OnFirstByte func()
	// OnDone fires when the final body byte is delivered client-side.
	OnDone func()
}
