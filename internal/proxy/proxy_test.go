package proxy

import (
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/webpage"
)

type world struct {
	loop *sim.Loop
	net  *tcpsim.Network
	prox *Proxy
}

func newWorld(seed uint64, downBPS int64) *world {
	loop := sim.NewLoop()
	pc := netem.PathConfig{
		Up:   netem.LinkConfig{BandwidthBPS: 2_000_000, Delay: 30 * time.Millisecond, QueueBytes: 1 << 20},
		Down: netem.LinkConfig{BandwidthBPS: downBPS, Delay: 30 * time.Millisecond, QueueBytes: 1 << 20},
	}
	path := netem.NewPath(loop, pc, sim.NewRNG(seed), nil)
	network := tcpsim.NewNetwork(loop, path)
	origin := NewOrigin(loop, FastOriginConfig(), sim.NewRNG(seed+1))
	return &world{loop: loop, net: network, prox: New(loop, origin)}
}

func obj(id, size int, kind webpage.Kind) *webpage.Object {
	return &webpage.Object{ID: id, Size: size, Kind: kind, Domain: "d.example", Path: "/x"}
}

func TestOriginFetchDistribution(t *testing.T) {
	loop := sim.NewLoop()
	o := NewOrigin(loop, FastOriginConfig(), sim.NewRNG(1))
	var waits []time.Duration
	for i := 0; i < 500; i++ {
		start := loop.Now()
		var fb sim.Time
		o.Fetch(obj(i, 10_000, webpage.KindImg), func() { fb = loop.Now() }, nil)
		loop.RunUntilIdle()
		waits = append(waits, fb.Sub(start))
	}
	var sum time.Duration
	maxW := time.Duration(0)
	for _, w := range waits {
		sum += w
		if w > maxW {
			maxW = w
		}
	}
	mean := sum / time.Duration(len(waits))
	// Figure 8: ~14 ms average, 46 ms max.
	if mean < 8*time.Millisecond || mean > 22*time.Millisecond {
		t.Fatalf("fast origin mean wait %v", mean)
	}
	if maxW > 46*time.Millisecond {
		t.Fatalf("fast origin max wait %v", maxW)
	}
}

func TestOriginSlowTailMixture(t *testing.T) {
	loop := sim.NewLoop()
	o := NewOrigin(loop, DefaultOriginConfig(), sim.NewRNG(2))
	slow := 0
	const n = 1000
	for i := 0; i < n; i++ {
		start := loop.Now()
		var fb sim.Time
		o.Fetch(obj(i, 1000, webpage.KindText), func() { fb = loop.Now() }, nil)
		loop.RunUntilIdle()
		if fb.Sub(start) > 100*time.Millisecond {
			slow++
		}
	}
	if slow < n/10 || slow > n/3 {
		t.Fatalf("slow tail %d/%d, want ≈20%%", slow, n)
	}
}

// dialHTTP builds an established HTTP proxy connection pair.
func dialHTTP(t *testing.T, w *world, id string) (*tcpsim.Conn, *HTTPConn, *tcpsim.StreamAssembler) {
	t.Helper()
	client, server := w.net.NewConnPair(tcpsim.DefaultConfig(), tcpsim.DefaultConfig(), id, "dev")
	asm := &tcpsim.StreamAssembler{}
	client.OnDeliver(asm.Deliver)
	hc := NewHTTPConn(w.prox, server, asm)
	client.Connect()
	w.loop.Run(w.loop.Now().Add(time.Second))
	if !client.Established() {
		t.Fatal("handshake failed")
	}
	return client, hc, asm
}

func TestHTTPConnServesRequest(t *testing.T) {
	w := newWorld(1, 10_000_000)
	client, hc, _ := dialHTTP(t, w, "h1")
	o := obj(1, 50_000, webpage.KindImg)
	var first, done sim.Time
	hc.ExpectRequest(o, HTTPReqSize(o), ResponseHooks{
		OnFirstByte: func() { first = w.loop.Now() },
		OnDone:      func() { done = w.loop.Now() },
	})
	client.Write(HTTPReqSize(o))
	w.loop.Run(w.loop.Now().Add(30 * time.Second))
	if first == 0 || done <= first {
		t.Fatalf("timeline: first=%v done=%v", first, done)
	}
	if len(w.prox.Records) != 1 || w.prox.Records[0].SendDone == 0 {
		t.Fatalf("proxy record missing: %+v", w.prox.Records)
	}
}

func TestHTTPPipelinedResponsesKeepRequestOrder(t *testing.T) {
	w := newWorld(2, 10_000_000)
	client, hc, _ := dialHTTP(t, w, "h2")
	// Request a large object then a tiny one; the tiny one's origin
	// fetch finishes first but HTTP must answer in request order.
	big, small := obj(1, 400_000, webpage.KindImg), obj(2, 500, webpage.KindText)
	var order []int
	hc.ExpectRequest(big, HTTPReqSize(big), ResponseHooks{OnDone: func() { order = append(order, 1) }})
	hc.ExpectRequest(small, HTTPReqSize(small), ResponseHooks{OnDone: func() { order = append(order, 2) }})
	client.Write(HTTPReqSize(big))
	client.Write(HTTPReqSize(small))
	w.loop.Run(w.loop.Now().Add(60 * time.Second))
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("HOL order violated: %v", order)
	}
}

// dialSPDY builds an established SPDY session pair.
func dialSPDY(t *testing.T, w *world, id string) (*tcpsim.Conn, *SPDYSession) {
	t.Helper()
	client, server := w.net.NewConnPair(tcpsim.DefaultConfig(), tcpsim.DefaultConfig(), id, "dev")
	asm := &tcpsim.StreamAssembler{}
	client.OnDeliver(asm.Deliver)
	sess := NewSPDYSession(w.prox, server, asm)
	client.Connect()
	w.loop.Run(w.loop.Now().Add(time.Second))
	return client, sess
}

func TestSPDYSessionPriorityOrdering(t *testing.T) {
	// On a slow downlink, a high-priority response requested after three
	// bulk ones must still finish first.
	w := newWorld(3, 1_000_000)
	client, sess := dialSPDY(t, w, "s1")
	var order []int
	request := func(o *webpage.Object, prio spdy.Priority) {
		id := o.ID
		sess.ExpectRequest(o, 100, prio, ResponseHooks{OnDone: func() { order = append(order, id) }})
		client.Write(100)
	}
	for i := 1; i <= 3; i++ {
		request(obj(i, 300_000, webpage.KindImg), 5)
	}
	w.loop.Run(w.loop.Now().Add(500 * time.Millisecond))
	request(obj(99, 4_000, webpage.KindHTML), 0)
	w.loop.Run(w.loop.Now().Add(60 * time.Second))
	if len(order) != 4 {
		t.Fatalf("completions %v", order)
	}
	if order[0] != 99 {
		t.Fatalf("priority 0 did not preempt bulk: %v", order)
	}
}

func TestSPDYSessionInterleavesEqualPriority(t *testing.T) {
	// Two equal-priority objects requested together should finish close
	// to each other (round-robin), not strictly one after the other.
	w := newWorld(4, 2_000_000)
	client, sess := dialSPDY(t, w, "s2")
	var done []sim.Time
	for i := 1; i <= 2; i++ {
		o := obj(i, 200_000, webpage.KindImg)
		sess.ExpectRequest(o, 100, 4, ResponseHooks{OnDone: func() { done = append(done, w.loop.Now()) }})
		client.Write(100)
	}
	w.loop.Run(w.loop.Now().Add(60 * time.Second))
	if len(done) != 2 {
		t.Fatalf("completions %d", len(done))
	}
	gap := done[1].Sub(done[0])
	// Serialized service would separate them by a full object time
	// (200KB at 2Mbit/s ≈ 800ms); interleave keeps the gap small.
	if gap > 300*time.Millisecond {
		t.Fatalf("no interleave: gap %v", gap)
	}
}

func TestSPDYQueueGauge(t *testing.T) {
	w := newWorld(5, 500_000) // very slow downlink
	client, sess := dialSPDY(t, w, "s3")
	for i := 1; i <= 5; i++ {
		o := obj(i, 100_000, webpage.KindImg)
		sess.ExpectRequest(o, 100, 4, ResponseHooks{})
		client.Write(100)
	}
	w.loop.Run(w.loop.Now().Add(2 * time.Second))
	if sess.QueuedResponses < 2 {
		t.Fatalf("no proxy-side queueing on a slow link: %d", sess.QueuedResponses)
	}
	w.loop.Run(w.loop.Now().Add(60 * time.Second))
	if sess.QueuedResponses != 0 {
		t.Fatalf("queue did not drain: %d", sess.QueuedResponses)
	}
}

func TestSPDYGroupLateBindingSpreadsChunks(t *testing.T) {
	w := newWorld(6, 4_000_000)
	group := NewSPDYGroup(w.prox)
	var clients []*tcpsim.Conn
	var asms []*tcpsim.StreamAssembler
	for i := 0; i < 3; i++ {
		client, server := w.net.NewConnPair(tcpsim.DefaultConfig(), tcpsim.DefaultConfig(), "g"+string(rune('0'+i)), "dev")
		asm := &tcpsim.StreamAssembler{}
		client.OnDeliver(asm.Deliver)
		group.AddSession(server, asm)
		client.Connect()
		clients = append(clients, client)
		asms = append(asms, asm)
	}
	w.loop.Run(w.loop.Now().Add(time.Second))

	completed := 0
	for i := 1; i <= 6; i++ {
		o := obj(i, 150_000, webpage.KindImg)
		group.ExpectRequest(i%3, o, 100, 4, ResponseHooks{OnDone: func() { completed++ }})
		clients[i%3].Write(100)
	}
	w.loop.Run(w.loop.Now().Add(60 * time.Second))
	if completed != 6 {
		t.Fatalf("completed %d of 6", completed)
	}
	// Late binding must have used more than one downstream connection.
	used := 0
	for _, c := range clients {
		if c.BytesRcvdApp > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("responses pinned to %d connection(s)", used)
	}
}

func TestReqAndRespSizeHelpers(t *testing.T) {
	o := obj(1, 123456, webpage.KindImg)
	if n := HTTPReqSize(o); n < 300 || n > 1380 {
		t.Fatalf("req size %d", n)
	}
	if n := HTTPRespHeadSize(o); n < 150 || n > 600 {
		t.Fatalf("resp head %d", n)
	}
	if contentType(webpage.KindHTML) != "text/html; charset=utf-8" || contentType(webpage.KindImg) != "image/jpeg" {
		t.Fatal("content types")
	}
}
