package proxy

import (
	"spdier/internal/h2"
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// QUICClientStreams demultiplexes a client QUICConn's per-stream
// delivery callback into per-stream assemblers, so response hooks fire
// per stream rather than per connection — the receiver-side half of
// stream-level loss isolation. The map is only ever looked up by key.
type QUICClientStreams struct {
	asms map[uint32]*tcpsim.StreamAssembler
}

// NewQUICClientStreams returns an empty demultiplexer; wire it with
// client.OnStreamDeliver(cs.Deliver).
func NewQUICClientStreams() *QUICClientStreams {
	return &QUICClientStreams{asms: make(map[uint32]*tcpsim.StreamAssembler)}
}

func (c *QUICClientStreams) asm(streamID uint32) *tcpsim.StreamAssembler {
	a := c.asms[streamID]
	if a == nil {
		a = &tcpsim.StreamAssembler{}
		c.asms[streamID] = a
	}
	return a
}

// Expect registers the next size-byte message on one stream.
func (c *QUICClientStreams) Expect(streamID uint32, size int, done func()) {
	c.asm(streamID).Expect(size, done)
}

// Deliver reports n in-order bytes arriving on one stream.
func (c *QUICClientStreams) Deliver(streamID uint32, n int) {
	c.asm(streamID).Deliver(n)
}

// QUICSession is the proxy side of one QUIC-style connection. The pump
// is the SPDY session's — strict priority, chunked round-robin within a
// class, same high-water mark — but each response rides its own
// transport stream: a retransmission on one stream never delays
// delivery on another, and there is no per-DATA-frame overhead beyond
// the packet headers the transport already charges. Response headers
// are priced by the same HPACK model as h2 (QPACK behaves alike at this
// fidelity).
type QUICSession struct {
	proxy   *Proxy
	conn    *tcpsim.QUICConn
	streams *QUICClientStreams // client-side per-stream assemblers

	reqAsms map[uint32]*tcpsim.StreamAssembler
	sizer   *h2.HeaderSizer
	queue   spdy.PriorityQueue[*quicTask]

	// QueuedResponses gauges the pump backlog, as on the SPDY session.
	QueuedResponses int
}

// quicTask is one response in flight through the pump.
type quicTask struct {
	obj       *webpage.Object
	rec       *trace.ProxyRecord
	hooks     ResponseHooks
	priority  spdy.Priority
	sid       uint32
	headSize  int
	remaining int
	started   bool
}

// NewQUICSession attaches a proxy handler to the server-side QUIC
// endpoint. clientStreams is the browser-side demultiplexer through
// which response hooks fire.
func NewQUICSession(p *Proxy, serverConn *tcpsim.QUICConn, clientStreams *QUICClientStreams) *QUICSession {
	s := &QUICSession{
		proxy:   p,
		conn:    serverConn,
		streams: clientStreams,
		reqAsms: make(map[uint32]*tcpsim.StreamAssembler),
		sizer:   h2.NewHeaderSizer(),
	}
	serverConn.OnStreamDeliver(func(streamID uint32, n int) {
		s.reqAsm(streamID).Deliver(n)
	})
	serverConn.SetWritableHook(sendHighWater, s.pump)
	return s
}

// Conn exposes the proxy-side QUIC endpoint.
func (s *QUICSession) Conn() *tcpsim.QUICConn { return s.conn }

func (s *QUICSession) reqAsm(streamID uint32) *tcpsim.StreamAssembler {
	a := s.reqAsms[streamID]
	if a == nil {
		a = &tcpsim.StreamAssembler{}
		s.reqAsms[streamID] = a
	}
	return a
}

// ExpectRequest registers an inbound request of reqSize bytes for obj on
// streamID. The browser calls this immediately before writing the
// request bytes on that stream.
func (s *QUICSession) ExpectRequest(obj *webpage.Object, streamID uint32, reqSize int, prio spdy.Priority, hooks ResponseHooks) {
	s.reqAsm(streamID).Expect(reqSize, func() {
		rec := s.proxy.record(obj)
		s.proxy.Origin.Fetch(obj,
			func() { rec.OriginFirstByte = s.proxy.Loop.Now() },
			func() {
				rec.OriginDone = s.proxy.Loop.Now()
				s.enqueue(obj, streamID, rec, prio, hooks)
			})
	})
}

func (s *QUICSession) enqueue(obj *webpage.Object, streamID uint32, rec *trace.ProxyRecord, prio spdy.Priority, hooks ResponseHooks) {
	s.queue.Push(prio, &quicTask{
		obj:       obj,
		rec:       rec,
		hooks:     hooks,
		priority:  prio,
		sid:       streamID,
		headSize:  s.sizer.ResponseSize("200 OK", contentType(obj.Kind), int64(obj.Size)),
		remaining: obj.Size,
	})
	s.QueuedResponses++
	s.pump()
}

// pump feeds the transport: highest priority first, one chunk at a
// time, each chunk written to the response's own stream.
func (s *QUICSession) pump() {
	for s.conn.BufferedBytes() < sendHighWater {
		task, ok := s.queue.Pop()
		if !ok {
			return
		}
		now := s.proxy.Loop.Now()
		if !task.started {
			task.started = true
			task.rec.SendStart = now
			hooks := task.hooks
			s.streams.Expect(task.sid, task.headSize, func() {
				if hooks.OnFirstByte != nil {
					hooks.OnFirstByte()
				}
			})
			s.conn.WriteStream(task.sid, task.headSize)
		}
		n := task.remaining
		if n > chunkSize {
			n = chunkSize
		}
		task.remaining -= n
		finished := task.remaining == 0
		rec := task.rec
		hooks := task.hooks
		s.streams.Expect(task.sid, n, func() {
			if finished {
				rec.SendDone = s.proxy.Loop.Now()
				if hooks.OnDone != nil {
					hooks.OnDone()
				}
			}
		})
		s.conn.WriteStream(task.sid, n)
		if finished {
			s.QueuedResponses--
		} else {
			s.queue.Push(task.priority, task)
		}
	}
}
