package proxy

import (
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// SPDYGroup implements the remedy §6.2 of the paper proposes for the
// failed multi-connection experiment of §6.1: SPDY striped over several
// TCP connections with *late binding* — a response is bound to whichever
// connection is currently able to transmit, instead of being pinned to
// the connection that carried its request. A connection wedged by
// spurious retransmissions then delays only the chunks already handed to
// it, not every pending object.
type SPDYGroup struct {
	proxy   *Proxy
	members []*groupMember
	queue   spdy.PriorityQueue[*groupTask]

	// QueuedResponses gauges the shared backlog.
	QueuedResponses int
}

type groupMember struct {
	group     *SPDYGroup
	conn      *tcpsim.Conn
	clientAsm *tcpsim.StreamAssembler
	reqAsm    tcpsim.StreamAssembler
	oracle    *spdy.SizeOracle
}

type groupTask struct {
	obj      *webpage.Object
	rec      *trace.ProxyRecord
	hooks    ResponseHooks
	priority spdy.Priority
	// remaining counts bytes not yet written; deliveredLeft counts bytes
	// not yet delivered at the client. They differ because chunks of one
	// object may ride different connections and land out of order.
	remaining     int
	deliveredLeft int
	started       bool
}

// NewSPDYGroup creates an empty late-binding group.
func NewSPDYGroup(p *Proxy) *SPDYGroup {
	return &SPDYGroup{proxy: p}
}

// AddSession registers one proxy-side connection and its client-side
// assembler; it returns the session index used by ExpectRequest.
func (g *SPDYGroup) AddSession(serverConn *tcpsim.Conn, clientAsm *tcpsim.StreamAssembler) int {
	m := &groupMember{
		group:     g,
		conn:      serverConn,
		clientAsm: clientAsm,
		oracle:    spdy.NewSizeOracle(),
	}
	serverConn.OnDeliver(m.reqAsm.Deliver)
	serverConn.SetWritableHook(sendHighWater, g.pump)
	g.members = append(g.members, m)
	return len(g.members) - 1
}

// ExpectRequest registers an inbound SYN_STREAM of reqSize bytes on the
// given session. The response is *not* bound to that session.
func (g *SPDYGroup) ExpectRequest(session int, obj *webpage.Object, reqSize int, prio spdy.Priority, hooks ResponseHooks) {
	m := g.members[session]
	m.reqAsm.Expect(reqSize, func() {
		rec := g.proxy.record(obj)
		g.proxy.Origin.Fetch(obj,
			func() { rec.OriginFirstByte = g.proxy.Loop.Now() },
			func() {
				rec.OriginDone = g.proxy.Loop.Now()
				g.queue.Push(prio, &groupTask{
					obj: obj, rec: rec, hooks: hooks,
					priority: prio, remaining: obj.Size, deliveredLeft: obj.Size,
				})
				g.QueuedResponses++
				g.pump()
			})
	})
}

// bestMember returns the established connection with the shallowest
// unsent backlog — "available" in the paper's sense of having an open
// congestion window — or nil if every socket is saturated.
func (g *SPDYGroup) bestMember() *groupMember {
	var best *groupMember
	for _, m := range g.members {
		if !m.conn.Established() || m.conn.BufferedBytes() >= sendHighWater {
			continue
		}
		if best == nil || m.conn.BufferedBytes() < best.conn.BufferedBytes() {
			best = m
		}
	}
	return best
}

// pump drains the shared priority queue onto whichever connections can
// take data right now.
func (g *SPDYGroup) pump() {
	for {
		m := g.bestMember()
		if m == nil {
			return
		}
		task, ok := g.queue.Pop()
		if !ok {
			return
		}
		now := g.proxy.Loop.Now()
		if !task.started {
			task.started = true
			task.rec.SendStart = now
			head := m.oracle.FrameSize(spdy.SynReply{
				StreamID: uint32(task.obj.ID*2 + 1),
				Headers:  spdy.ResponseHeaders("200 OK", contentType(task.obj.Kind), int64(task.obj.Size)),
			})
			hooks := task.hooks
			m.clientAsm.Expect(head, func() {
				if hooks.OnFirstByte != nil {
					hooks.OnFirstByte()
				}
			})
			m.conn.Write(head)
		}
		n := task.remaining
		if n > chunkSize {
			n = chunkSize
		}
		task.remaining -= n
		t := task
		m.clientAsm.Expect(n+spdy.DataFrameOverhead, func() {
			t.deliveredLeft -= n
			if t.deliveredLeft == 0 {
				t.rec.SendDone = g.proxy.Loop.Now()
				if t.hooks.OnDone != nil {
					t.hooks.OnDone()
				}
			}
		})
		m.conn.Write(n + spdy.DataFrameOverhead)
		if task.remaining == 0 {
			g.QueuedResponses--
		} else {
			g.queue.Push(task.priority, task)
		}
	}
}
