package proxy

import (
	"spdier/internal/httpwire"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// HTTPReqSize returns the wire size of the proxied GET for obj —
// absolute-form request line plus a Chrome-like header set including
// cookies. This is the several-hundred-byte per-request overhead SPDY's
// header compression removes.
func HTTPReqSize(obj *webpage.Object) int {
	return httpwire.RequestSize("http://"+obj.Domain+obj.Path, obj.Domain)
}

// HTTPRespHeadSize returns the wire size of the response head for obj.
func HTTPRespHeadSize(obj *webpage.Object) int {
	return httpwire.ResponseHeadSize(contentType(obj.Kind), obj.Size)
}

func contentType(k webpage.Kind) string {
	switch k {
	case webpage.KindHTML:
		return "text/html; charset=utf-8"
	case webpage.KindJS:
		return "text/javascript"
	case webpage.KindCSS:
		return "text/css"
	case webpage.KindImg:
		return "image/jpeg"
	default:
		return "text/plain"
	}
}

// HTTPConn is the proxy side of one persistent HTTP connection. Without
// pipelining (the paper's configuration — Squid's support was
// rudimentary) the client sends one request at a time. With pipelining
// enabled the client may send several, and HTTP/1.1 requires the proxy
// to return responses in request order, which is where head-of-line
// blocking comes from: a slow first object holds back finished ones.
type HTTPConn struct {
	proxy     *Proxy
	conn      *tcpsim.Conn            // proxy-side endpoint
	clientAsm *tcpsim.StreamAssembler // registered against the browser conn
	reqAsm    tcpsim.StreamAssembler  // reassembles inbound request bytes

	// Pipelined response ordering: responses must leave in request
	// order, so finished fetches wait for their turn.
	reqSeq   int
	nextSend int
	ready    map[int]*pipelinedResp
}

type pipelinedResp struct {
	obj   *webpage.Object
	rec   *trace.ProxyRecord
	hooks ResponseHooks
}

// NewHTTPConn attaches a proxy handler to the server-side endpoint of a
// connection. clientAsm is the assembler observing in-order delivery at
// the browser end, through which response hooks are fired.
func NewHTTPConn(p *Proxy, serverConn *tcpsim.Conn, clientAsm *tcpsim.StreamAssembler) *HTTPConn {
	h := &HTTPConn{proxy: p, conn: serverConn, clientAsm: clientAsm, ready: make(map[int]*pipelinedResp)}
	serverConn.OnDeliver(h.reqAsm.Deliver)
	return h
}

// Conn exposes the proxy-side TCP endpoint (for probes and tests).
func (h *HTTPConn) Conn() *tcpsim.Conn { return h.conn }

// ExpectRequest registers the next request on this connection: when
// reqSize bytes arrive, the proxy fetches obj from the origin and writes
// the response in request order. hooks fire at the client as the
// response is delivered. The browser must call this immediately before
// writing the request bytes, keeping the FIFO books consistent.
func (h *HTTPConn) ExpectRequest(obj *webpage.Object, reqSize int, hooks ResponseHooks) {
	idx := h.reqSeq
	h.reqSeq++
	h.reqAsm.Expect(reqSize, func() {
		rec := h.proxy.record(obj)
		h.proxy.Origin.Fetch(obj,
			func() { rec.OriginFirstByte = h.proxy.Loop.Now() },
			func() {
				rec.OriginDone = h.proxy.Loop.Now()
				h.ready[idx] = &pipelinedResp{obj: obj, rec: rec, hooks: hooks}
				h.flush()
			})
	})
}

// flush writes every consecutively-ready response, preserving request
// order (HTTP/1.1 §8.1.2.2).
func (h *HTTPConn) flush() {
	for {
		r, ok := h.ready[h.nextSend]
		if !ok {
			return
		}
		delete(h.ready, h.nextSend)
		h.nextSend++
		h.respond(r.obj, r.rec, r.hooks)
	}
}

// respond writes head+body onto the proxy-side socket and registers the
// matching client-side delivery expectations. The whole response is
// committed to this connection at once: per-connection FIFO, no
// cross-object interleaving.
func (h *HTTPConn) respond(obj *webpage.Object, rec *trace.ProxyRecord, hooks ResponseHooks) {
	now := h.proxy.Loop.Now()
	rec.SendStart = now
	head := HTTPRespHeadSize(obj)

	h.clientAsm.Expect(head, func() {
		if hooks.OnFirstByte != nil {
			hooks.OnFirstByte()
		}
	})
	h.clientAsm.Expect(obj.Size, func() {
		rec.SendDone = h.proxy.Loop.Now()
		if hooks.OnDone != nil {
			hooks.OnDone()
		}
	})
	h.conn.Write(head + obj.Size)
}
