package proxy

import (
	"fmt"

	"spdier/internal/h2"
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// H2ConnWindow is the connection-level flow-control window the h2 proxy
// advertises via SETTINGS/WINDOW_UPDATE at session start (per-stream
// windows stay at the RFC 7540 default).
const H2ConnWindow = 1 << 20

// equalFramingWindow is the effectively-infinite window used by the
// equal-framing oracle mode: flow control never binds, so the byte
// stream is identical to SPDY's.
const equalFramingWindow = 1 << 30

// h2Framing abstracts the one thing that differs between true-h2 and
// the equal-framing oracle mode: how response frames are priced.
type h2Framing interface {
	// ReplyHeadSize prices the response HEADERS (or SYN_REPLY) frame.
	ReplyHeadSize(obj *webpage.Object) int
	// DataOverhead is the per-DATA-frame framing cost.
	DataOverhead() int
}

// hpackFraming prices frames the HTTP/2 way: HPACK header blocks and
// 9-octet frame headers.
type hpackFraming struct{ sizer *h2.HeaderSizer }

func (f hpackFraming) ReplyHeadSize(obj *webpage.Object) int {
	return f.sizer.ResponseSize("200 OK", contentType(obj.Kind), int64(obj.Size))
}
func (f hpackFraming) DataOverhead() int { return h2.DataFrameOverhead }

// spdyEqualFraming prices frames exactly as the SPDY session does —
// same zlib oracle, same 8-byte DATA overhead. Combined with
// never-binding windows, an equal-framing H2Session emits a byte stream
// identical to SPDYSession's, which is what the zero-loss
// "h2 PLT == SPDY PLT" metamorphic oracle pins.
type spdyEqualFraming struct{ oracle *spdy.SizeOracle }

func (f spdyEqualFraming) ReplyHeadSize(obj *webpage.Object) int {
	return f.oracle.FrameSize(spdy.SynReply{
		StreamID: uint32(obj.ID*2 + 1),
		Headers:  spdy.ResponseHeaders("200 OK", contentType(obj.Kind), int64(obj.Size)),
	})
}
func (f spdyEqualFraming) DataOverhead() int { return spdy.DataFrameOverhead }

// H2Session is the proxy side of one HTTP/2 connection. It is the
// SPDYSession pump — same chunk size, same high-water mark, same strict
// priority with intra-class round-robin — composed with two h2-specific
// layers: HPACK-priced headers instead of the shared zlib stream, and
// credit-based per-stream flow control gating every DATA frame.
type H2Session struct {
	proxy     *Proxy
	conn      *tcpsim.Conn
	clientAsm *tcpsim.StreamAssembler
	reqAsm    tcpsim.StreamAssembler

	framing h2Framing
	fc      *h2.FlowController
	equal   bool

	queue   spdy.PriorityQueue[*h2Task]
	blocked []*h2Task // tasks parked on an empty flow-control window

	// onClientChunk, when set, fires as each DATA payload lands at the
	// client; the browser uses it to drive WINDOW_UPDATE generation.
	onClientChunk func(streamID uint32, payload int)

	// streamIDs records every stream ever opened, for the end-of-run
	// conservation audit.
	streamIDs []uint32

	// QueuedResponses gauges the pump backlog, as on the SPDY session.
	QueuedResponses int
}

// h2Task is one response in flight through the pump.
type h2Task struct {
	obj       *webpage.Object
	rec       *trace.ProxyRecord
	hooks     ResponseHooks
	priority  spdy.Priority
	sid       uint32
	headSize  int
	remaining int
	started   bool
}

// NewH2Session attaches an HTTP/2 proxy handler to the server-side
// endpoint. equalFraming selects the oracle mode: SPDY-identical frame
// pricing and never-binding windows, used by the differential tests.
func NewH2Session(p *Proxy, serverConn *tcpsim.Conn, clientAsm *tcpsim.StreamAssembler, equalFraming bool) *H2Session {
	s := &H2Session{
		proxy:     p,
		conn:      serverConn,
		clientAsm: clientAsm,
		equal:     equalFraming,
	}
	if equalFraming {
		s.framing = spdyEqualFraming{oracle: spdy.NewSizeOracle()}
		s.fc = h2.NewFlowController(equalFramingWindow, equalFramingWindow)
	} else {
		s.framing = hpackFraming{sizer: h2.NewHeaderSizer()}
		s.fc = h2.NewFlowController(H2ConnWindow, h2.DefaultInitialWindow)
	}
	serverConn.OnDeliver(s.reqAsm.Deliver)
	serverConn.SetWritableHook(sendHighWater, s.pump)
	return s
}

// Conn exposes the proxy-side TCP endpoint.
func (s *H2Session) Conn() *tcpsim.Conn { return s.conn }

// NeedsWindowUpdates reports whether the client must replenish windows
// (false in equal-framing mode, where flow control never binds).
func (s *H2Session) NeedsWindowUpdates() bool { return !s.equal }

// OnClientChunk registers the per-DATA-payload client-delivery callback.
func (s *H2Session) OnClientChunk(fn func(streamID uint32, payload int)) { s.onClientChunk = fn }

// CheckFlowConservation audits the credit books over every stream the
// session ever opened: windows must equal initial + granted − consumed.
func (s *H2Session) CheckFlowConservation() error {
	return s.fc.CheckConservation(s.streamIDs)
}

// ExpectRequest registers an inbound HEADERS frame of reqSize bytes for
// obj. The browser calls this immediately before writing the request
// bytes; many requests may be outstanding simultaneously.
func (s *H2Session) ExpectRequest(obj *webpage.Object, reqSize int, prio spdy.Priority, hooks ResponseHooks) {
	s.reqAsm.Expect(reqSize, func() {
		rec := s.proxy.record(obj)
		s.proxy.Origin.Fetch(obj,
			func() { rec.OriginFirstByte = s.proxy.Loop.Now() },
			func() {
				rec.OriginDone = s.proxy.Loop.Now()
				s.enqueue(obj, rec, prio, hooks)
			})
	})
}

// ExpectWindowUpdate registers an inbound WINDOW_UPDATE: when its bytes
// arrive, n octets are credited to the stream (or, with connLevel, the
// connection) and any starved responses resume. The browser calls this
// immediately before writing the frame bytes.
func (s *H2Session) ExpectWindowUpdate(streamID uint32, n int64, connLevel bool) {
	s.reqAsm.Expect(h2.WindowUpdateFrameSize, func() {
		var err error
		if connLevel {
			err = s.fc.GrantConn(n)
		} else {
			err = s.fc.Grant(streamID, n)
		}
		if err != nil {
			panic(fmt.Sprintf("proxy: h2 window update rejected: %v", err))
		}
		s.requeueBlocked()
		s.pump()
	})
}

// requeueBlocked returns every parked task to the priority queue; the
// pump re-parks any that are still starved.
func (s *H2Session) requeueBlocked() {
	for _, t := range s.blocked {
		s.queue.Push(t.priority, t)
	}
	s.blocked = s.blocked[:0]
}

func (s *H2Session) enqueue(obj *webpage.Object, rec *trace.ProxyRecord, prio spdy.Priority, hooks ResponseHooks) {
	sid := uint32(obj.ID*2 + 1)
	s.streamIDs = append(s.streamIDs, sid)
	s.queue.Push(prio, &h2Task{
		obj:       obj,
		rec:       rec,
		hooks:     hooks,
		priority:  prio,
		sid:       sid,
		headSize:  s.framing.ReplyHeadSize(obj),
		remaining: obj.Size,
	})
	s.QueuedResponses++
	s.pump()
}

// pump feeds the socket exactly like the SPDY pump, with one extra
// gate: a DATA chunk may not exceed the stream's flow-control credit.
// A response whose window is empty parks in blocked until the client's
// WINDOW_UPDATE arrives — HTTP/2's per-stream backpressure, the
// mechanism SPDY/3-as-deployed lacked.
func (s *H2Session) pump() {
	for s.conn.BufferedBytes() < sendHighWater {
		task, ok := s.queue.Pop()
		if !ok {
			return
		}
		now := s.proxy.Loop.Now()
		if !task.started {
			task.started = true
			task.rec.SendStart = now
			// HEADERS first; header frames are not flow controlled.
			hooks := task.hooks
			s.clientAsm.Expect(task.headSize, func() {
				if hooks.OnFirstByte != nil {
					hooks.OnFirstByte()
				}
			})
			s.conn.Write(task.headSize)
		}
		avail := s.fc.Avail(task.sid)
		if avail <= 0 {
			s.blocked = append(s.blocked, task)
			continue
		}
		n := task.remaining
		if n > chunkSize {
			n = chunkSize
		}
		if int64(n) > avail {
			n = int(avail)
		}
		if err := s.fc.Consume(task.sid, int64(n)); err != nil {
			panic(fmt.Sprintf("proxy: h2 pump overdraw: %v", err))
		}
		task.remaining -= n
		finished := task.remaining == 0
		rec := task.rec
		hooks := task.hooks
		sid := task.sid
		payload := n
		s.clientAsm.Expect(n+s.framing.DataOverhead(), func() {
			if s.onClientChunk != nil {
				s.onClientChunk(sid, payload)
			}
			if finished {
				rec.SendDone = s.proxy.Loop.Now()
				if hooks.OnDone != nil {
					hooks.OnDone()
				}
			}
		})
		s.conn.Write(n + s.framing.DataOverhead())
		if finished {
			s.QueuedResponses--
		} else {
			s.queue.Push(task.priority, task)
		}
	}
}
