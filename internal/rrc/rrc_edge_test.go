package rrc

import (
	"testing"
	"time"

	"spdier/internal/sim"
)

// Edge-case suite for the timer races the basic tests do not reach:
// activity landing just inside a demotion deadline, promotions racing a
// pending demotion timer, and repeated idle/active cycling. Each case
// drives the machine with a scripted sequence of ReadyAt calls and
// asserts the exact resulting state at checkpoints plus the full
// transition log — a demotion that sneaks through a promotion window
// shows up as an extra transition even when the final state looks right.

// step is one scripted activity event.
type step struct {
	at    time.Duration // absolute sim time of the ReadyAt call
	bytes int
}

// check is one state assertion.
type check struct {
	at   time.Duration // absolute sim time to inspect at
	want State
}

func runScript(t *testing.T, p Profile, steps []step, checks []check, wantTransitions []struct{ from, to State }) *Machine {
	t.Helper()
	loop := sim.NewLoop()
	m := NewMachine(loop, p)
	for _, s := range steps {
		s := s
		loop.At(sim.Time(s.at), func() { m.ReadyAt(s.bytes) })
	}
	for _, c := range checks {
		c := c
		loop.At(sim.Time(c.at), func() {
			if got := m.State(); got != c.want {
				t.Errorf("t=%v: state %v, want %v", c.at, got, c.want)
			}
		})
	}
	loop.RunUntilIdle()
	if wantTransitions != nil {
		trs := m.Transitions()
		if len(trs) != len(wantTransitions) {
			t.Fatalf("transition log %v, want %d entries", trs, len(wantTransitions))
		}
		for i, w := range wantTransitions {
			if trs[i].From != w.from || trs[i].To != w.to {
				t.Errorf("transition %d: %v -> %v, want %v -> %v",
					i, trs[i].From, trs[i].To, w.from, w.to)
			}
		}
	}
	return m
}

func TestEdge3GActivityJustBeforeDemotionDeadline(t *testing.T) {
	// Promotion completes at 2s; DCH→FACH would fire at 7s. Activity at
	// 6.999s must push the demotion to 11.999s, not cancel it.
	runScript(t, Profile3G(),
		[]step{{0, 1400}, {6999 * time.Millisecond, 1400}},
		[]check{
			{7500 * time.Millisecond, DCH},  // old deadline passed, still DCH
			{11900 * time.Millisecond, DCH}, // just inside the refreshed deadline
			{12100 * time.Millisecond, FACH},
		},
		nil)
}

func TestEdge3GPromotionWhileDemotionPending(t *testing.T) {
	// Enter FACH at 7s; FACH→IDLE is armed for 19s. At 18.9s a large
	// write starts a 1.5s FACH→DCH promotion. The pending demotion timer
	// fires at 19s — inside the promotion window — and must be swallowed
	// by the promoting guard: the radio may never touch IDLE on its way
	// up, and the log must show FACH→DCH, not FACH→IDLE→DCH.
	m := runScript(t, Profile3G(),
		[]step{{0, 1400}, {18900 * time.Millisecond, 1400}},
		[]check{
			{8 * time.Second, FACH},
			{19100 * time.Millisecond, FACH}, // promotion pending: still FACH
			{20500 * time.Millisecond, DCH},  // 18.9s + 1.5s = 20.4s
		},
		[]struct{ from, to State }{
			{Idle3G, DCH}, {DCH, FACH}, {FACH, DCH}, {DCH, FACH}, {FACH, Idle3G},
		})
	if m.Promotions() != 2 {
		t.Errorf("%d promotions, want 2 (cold + FACH→DCH)", m.Promotions())
	}
}

func TestEdge3GBackToBackIdleGaps(t *testing.T) {
	// Three bursts separated by > 17s of idle: each gap walks the full
	// DCH→FACH→IDLE chain, and each new burst pays the cold promotion.
	m := runScript(t, Profile3G(),
		[]step{{0, 1400}, {25 * time.Second, 1400}, {50 * time.Second, 1400}},
		[]check{
			{24 * time.Second, Idle3G}, // 2+5+12=19s, fully idle before burst 2
			{28 * time.Second, DCH},
			{49 * time.Second, Idle3G},
			{53 * time.Second, DCH},
		},
		[]struct{ from, to State }{
			{Idle3G, DCH}, {DCH, FACH}, {FACH, Idle3G},
			{Idle3G, DCH}, {DCH, FACH}, {FACH, Idle3G},
			{Idle3G, DCH}, {DCH, FACH}, {FACH, Idle3G},
		})
	if m.Promotions() != 3 {
		t.Errorf("%d promotions, want 3", m.Promotions())
	}
	if e := m.EnergyMilliJoules(); e <= 0 {
		t.Errorf("energy %v mJ after three DCH episodes", e)
	}
}

func TestEdgeLTEDRXWakeWhileLongDRXDemotionPending(t *testing.T) {
	// Connected at 0.4s; ShortDRX at 0.5s; LongDRX at 0.9s; the LongDRX→
	// IDLE release is armed for 12.4s. Waking at 12.39s starts a 40ms DRX
	// exit — the release timer fires at 12.4s inside that window and must
	// not drop the radio to RRC_IDLE underneath the promotion.
	runScript(t, ProfileLTE(),
		[]step{{0, 1400}, {12390 * time.Millisecond, 1400}},
		[]check{
			{1 * time.Second, LongDRX},
			{12395 * time.Millisecond, LongDRX}, // wake in progress
			{12500 * time.Millisecond, Continuous},
		},
		[]struct{ from, to State }{
			{IdleLTE, Continuous}, {Continuous, ShortDRX}, {ShortDRX, LongDRX},
			{LongDRX, Continuous}, {Continuous, ShortDRX}, {ShortDRX, LongDRX},
			{LongDRX, IdleLTE},
		})
}

func TestEdgeLTEShortDRXWakeRearmsDescent(t *testing.T) {
	// Wake from ShortDRX (20ms) at 0.55s, then idle: the machine must
	// restart the full descent from Continuous rather than resuming the
	// old ShortDRX→LongDRX timer.
	runScript(t, ProfileLTE(),
		[]step{{0, 1400}, {550 * time.Millisecond, 1400}},
		[]check{
			{530 * time.Millisecond, ShortDRX},
			{600 * time.Millisecond, Continuous}, // 0.55s + 20ms wake
			{650 * time.Millisecond, Continuous}, // fresh 100ms idle window
			{700 * time.Millisecond, ShortDRX},   // 0.57s + 100ms
			{1200 * time.Millisecond, LongDRX},   // + 400ms
		},
		nil)
}

func TestEdgeRepeatedActivityHoldsContinuous(t *testing.T) {
	// Activity every 80ms — inside the 100ms Continuous→ShortDRX timer —
	// must hold LTE in Continuous indefinitely: exactly one transition.
	steps := []step{{0, 1400}}
	for at := 500 * time.Millisecond; at <= 2*time.Second; at += 80 * time.Millisecond {
		steps = append(steps, step{at, 600})
	}
	loop := sim.NewLoop()
	m := NewMachine(loop, ProfileLTE())
	for _, s := range steps {
		s := s
		loop.At(sim.Time(s.at), func() { m.ReadyAt(s.bytes) })
	}
	loop.Run(sim.Time(2 * time.Second))
	if m.State() != Continuous {
		t.Fatalf("state %v, want Continuous under sustained activity", m.State())
	}
	if n := len(m.Transitions()); n != 1 {
		t.Fatalf("%d transitions under sustained activity, want 1: %v", n, m.Transitions())
	}
}
