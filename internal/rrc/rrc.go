// Package rrc models cellular Radio Resource Control state machines.
//
// Every device in a cellular network follows a well-defined radio state
// machine (3GPP TS 25.331 for UMTS, TS 36.331 for LTE) that determines
// when it may send or receive data. The machine exists to share radio
// resources and save battery: after a period of inactivity the radio is
// demoted toward an idle state, and the next transfer must wait for a
// *promotion delay* before any data flows.
//
// This promotion delay — roughly 2 seconds on 3G, 400 ms on LTE — is the
// causal mechanism behind the paper's headline result: it exceeds TCP's
// retransmission timeout computed from the RTTs observed while the radio
// was active, so the first transfer after an idle period suffers spurious
// timeouts and retransmissions.
//
// The package provides a generic Machine driven by activity notifications
// and inactivity timers, with concrete profiles for 3G UMTS
// (IDLE / CELL_FACH / CELL_DCH) and LTE (RRC_IDLE / RRC_CONNECTED with
// Continuous reception, Short DRX and Long DRX sub-states), matching
// Figure 18 of the paper.
package rrc

import (
	"fmt"
	"time"

	"spdier/internal/sim"
)

// State identifies a radio state across both 3G and LTE machines.
type State int

const (
	// Idle3G: no radio resources allocated, no power drawn. 3G.
	Idle3G State = iota
	// FACH: shared forward access channel; low-rate transfers only. 3G.
	FACH
	// DCH: dedicated channel; full-rate transfers. 3G.
	DCH
	// IdleLTE: RRC_IDLE, radio released. LTE.
	IdleLTE
	// Continuous: RRC_CONNECTED continuous reception, full rate. LTE.
	Continuous
	// ShortDRX: RRC_CONNECTED short discontinuous reception. LTE.
	ShortDRX
	// LongDRX: RRC_CONNECTED long discontinuous reception. LTE.
	LongDRX
	// AlwaysOn models a wired or WiFi NIC: no state machine at all.
	AlwaysOn
)

func (s State) String() string {
	switch s {
	case Idle3G:
		return "IDLE"
	case FACH:
		return "CELL_FACH"
	case DCH:
		return "CELL_DCH"
	case IdleLTE:
		return "RRC_IDLE"
	case Continuous:
		return "CONTINUOUS"
	case ShortDRX:
		return "SHORT_DRX"
	case LongDRX:
		return "LONG_DRX"
	case AlwaysOn:
		return "ALWAYS_ON"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Active reports whether data can flow at full rate in this state.
func (s State) Active() bool {
	return s == DCH || s == Continuous || s == AlwaysOn
}

// Transition records one state change for tracing and tests.
type Transition struct {
	At   sim.Time
	From State
	To   State
}

// Profile describes the timers, promotion delays and power draw of one
// radio technology. All delays follow Figure 18 and Appendix A of the
// paper; the paper notes the exact timer values vary across vendors and
// carriers, so everything is a parameter.
type Profile struct {
	Name string

	// Initial is the state a freshly created machine starts in.
	Initial State

	// PromotionDelay maps a (from → active) promotion to the delay the
	// device incurs before data can flow. During this window packets are
	// buffered by the network and nothing — not even ACKs — moves.
	PromotionDelay map[State]time.Duration

	// Demotions lists inactivity-driven transitions: after Idle of
	// inactivity in From, the machine moves to To.
	Demotions []Demotion

	// FACHQueueThreshold is the number of queued bytes that triggers a
	// FACH→DCH promotion on 3G (the "queue size > threshold" arc in
	// Figure 18). Zero means any data in FACH triggers promotion.
	FACHQueueThreshold int

	// FACHRate is the low bit rate available in CELL_FACH, bits/sec.
	// Zero means no data can flow outside the full-rate state.
	FACHRate int64

	// Power draw per state in milliwatts, for energy accounting
	// (Figure 14's "keeping the radio in DCH wastes battery" point).
	PowerMW map[State]float64
}

// Demotion is an inactivity-driven downward transition.
type Demotion struct {
	From State
	To   State
	Idle time.Duration
}

// Profile3G returns the UMTS profile from Figure 18: ~2 s IDLE→DCH
// promotion, DCH→FACH after 5 s idle, FACH→IDLE after a further 12 s,
// and a 1.5 s FACH→DCH promotion when the queue builds up.
func Profile3G() Profile {
	return Profile{
		Name:    "3G-UMTS",
		Initial: Idle3G,
		PromotionDelay: map[State]time.Duration{
			Idle3G: 2 * time.Second,
			FACH:   1500 * time.Millisecond,
		},
		Demotions: []Demotion{
			{From: DCH, To: FACH, Idle: 5 * time.Second},
			{From: FACH, To: Idle3G, Idle: 12 * time.Second},
		},
		FACHQueueThreshold: 512,
		FACHRate:           16_000, // shared channel, a few KB/s
		PowerMW: map[State]float64{
			Idle3G: 0,
			FACH:   460,
			DCH:    800,
		},
	}
}

// ProfileLTE returns the LTE profile from Figure 18: 400 ms
// RRC_IDLE→CONNECTED promotion, 100 ms to Short DRX, 400 ms of Short DRX
// before Long DRX, and 11.5 s of Long DRX before releasing to RRC_IDLE.
// Waking from DRX is fast (one DRX cycle) compared to a full promotion.
func ProfileLTE() Profile {
	return Profile{
		Name:    "LTE",
		Initial: IdleLTE,
		PromotionDelay: map[State]time.Duration{
			IdleLTE:  400 * time.Millisecond,
			ShortDRX: 20 * time.Millisecond,
			LongDRX:  40 * time.Millisecond,
		},
		Demotions: []Demotion{
			{From: Continuous, To: ShortDRX, Idle: 100 * time.Millisecond},
			{From: ShortDRX, To: LongDRX, Idle: 400 * time.Millisecond},
			{From: LongDRX, To: IdleLTE, Idle: 11500 * time.Millisecond},
		},
		PowerMW: map[State]float64{
			IdleLTE:    15,
			Continuous: 1000,
			ShortDRX:   700,
			LongDRX:    600,
		},
	}
}

// ProfileAlwaysOn returns a degenerate machine for wired/WiFi paths:
// always active, zero promotion delay. Using the same Machine type keeps
// the link code identical across access technologies.
func ProfileAlwaysOn() Profile {
	return Profile{
		Name:           "always-on",
		Initial:        AlwaysOn,
		PromotionDelay: map[State]time.Duration{},
		PowerMW:        map[State]float64{AlwaysOn: 0},
	}
}

// Machine is an RRC state machine instance bound to a simulation loop.
type Machine struct {
	loop    *sim.Loop
	profile Profile

	state        State
	promoting    bool
	promoteDone  sim.Time
	promoteTo    State
	lastActivity sim.Time
	demoteTimer  sim.Timer

	// Prebound timer callbacks. The demotion timer is re-armed on every
	// packet, so its callback must not be a fresh closure each time; the
	// pending demotion's parameters live in demoteFrom/demoteTarget
	// (always consistent because arming stops any previous timer first).
	demoteFn     func()
	demoteFrom   sim.Time
	demoteTarget State
	promoteFn    func()

	// Energy accounting.
	lastPowerAt sim.Time
	energyMJ    float64 // millijoules = mW * s

	transitions []Transition
	onChange    func(Transition)
	promotions  int
}

// NewMachine creates a machine in the profile's initial state.
func NewMachine(loop *sim.Loop, p Profile) *Machine {
	m := &Machine{
		loop:        loop,
		profile:     p,
		state:       p.Initial,
		lastPowerAt: loop.Now(),
	}
	m.demoteFn = func() {
		// Only demote if truly idle since demoteFrom.
		if m.lastActivity > m.demoteFrom || m.promoting {
			return
		}
		m.setState(m.demoteTarget)
		m.scheduleDemotionChain(m.loop.Now())
	}
	m.promoteFn = func() {
		m.promoting = false
		m.setState(m.promoteTo)
		m.armDemotion(m.loop.Now())
	}
	return m
}

// State returns the current radio state. During a promotion the machine
// reports the *target is not yet reached*: state remains the old state
// until the promotion delay elapses.
func (m *Machine) State() State { return m.state }

// Profile returns the machine's profile.
func (m *Machine) Profile() Profile { return m.profile }

// Promotions reports how many promotions (with non-zero delay) occurred.
func (m *Machine) Promotions() int { return m.promotions }

// Transitions returns the recorded state-change log.
func (m *Machine) Transitions() []Transition { return m.transitions }

// OnChange registers a callback invoked on every state change.
func (m *Machine) OnChange(fn func(Transition)) { m.onChange = fn }

// EnergyMilliJoules returns the accumulated radio energy up to now.
func (m *Machine) EnergyMilliJoules() float64 {
	m.accrueEnergy()
	return m.energyMJ
}

func (m *Machine) accrueEnergy() {
	now := m.loop.Now()
	dt := now.Sub(m.lastPowerAt).Seconds()
	if dt > 0 {
		m.energyMJ += m.profile.PowerMW[m.state] * dt
		m.lastPowerAt = now
	}
}

func (m *Machine) setState(s State) {
	if s == m.state {
		return
	}
	m.accrueEnergy()
	tr := Transition{At: m.loop.Now(), From: m.state, To: s}
	m.state = s
	m.transitions = append(m.transitions, tr)
	if m.onChange != nil {
		m.onChange(tr)
	}
}

// fullRateState returns the state data transfers promote into.
func (m *Machine) fullRateState() State {
	switch m.profile.Initial {
	case IdleLTE:
		return Continuous
	case AlwaysOn:
		return AlwaysOn
	default:
		return DCH
	}
}

// ReadyAt records data activity of size bytes at the current time and
// returns the virtual time at which the radio can actually carry that
// data. For an active radio this is now; for an idle radio it is
// now + promotion delay. Small transfers on 3G may ride CELL_FACH without
// promotion (the "ping trick" of Figure 14 exploits exactly this: FACH
// still resets the demotion timers).
//
// ReadyAt also (re)arms the inactivity demotion timer.
func (m *Machine) ReadyAt(bytes int) sim.Time {
	now := m.loop.Now()
	m.lastActivity = now

	if m.state == AlwaysOn {
		return now
	}

	// A promotion already in progress: data rides once it completes.
	if m.promoting {
		m.armDemotion(m.promoteDone)
		return m.promoteDone
	}

	if m.state.Active() {
		m.armDemotion(now)
		return now
	}

	// FACH can carry small transfers without promotion.
	if m.state == FACH && m.profile.FACHQueueThreshold > 0 && bytes <= m.profile.FACHQueueThreshold {
		m.armDemotion(now)
		return now
	}

	// Need a promotion.
	delay, ok := m.profile.PromotionDelay[m.state]
	if !ok {
		// No promotion defined (shouldn't happen with the built-in
		// profiles); treat as instantaneous.
		m.setState(m.fullRateState())
		m.armDemotion(now)
		return now
	}
	m.promoting = true
	m.promoteDone = now.Add(delay)
	m.promoteTo = m.fullRateState()
	if delay > 0 {
		m.promotions++
	}
	m.loop.At(m.promoteDone, m.promoteFn)
	return m.promoteDone
}

// armDemotion schedules the inactivity demotion appropriate for the state
// the machine will be in at time from, cancelling any previous timer.
func (m *Machine) armDemotion(from sim.Time) {
	m.demoteTimer.Stop()
	m.scheduleDemotionChain(from)
}

func (m *Machine) scheduleDemotionChain(from sim.Time) {
	st := m.state
	if m.promoting {
		st = m.promoteTo
	}
	var d *Demotion
	for i := range m.profile.Demotions {
		if m.profile.Demotions[i].From == st {
			d = &m.profile.Demotions[i]
			break
		}
	}
	if d == nil {
		return
	}
	m.demoteFrom = from
	m.demoteTarget = d.To
	m.demoteTimer = m.loop.At(from.Add(d.Idle), m.demoteFn)
}

// CurrentRate returns the data rate ceiling imposed by the radio state in
// bits/sec, or 0 for "unconstrained by RRC" (full-rate states delegate to
// the link's configured bandwidth). While a promotion is in progress the
// ceiling is already the target state's: packets held for the promotion
// are delivered at the promoted rate, not the old shared-channel rate.
func (m *Machine) CurrentRate() int64 {
	if m.promoting {
		return 0
	}
	if m.state == FACH {
		return m.profile.FACHRate
	}
	return 0
}
