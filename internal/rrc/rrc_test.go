package rrc

import (
	"testing"
	"time"

	"spdier/internal/sim"
)

func new3G(t *testing.T) (*sim.Loop, *Machine) {
	t.Helper()
	loop := sim.NewLoop()
	return loop, NewMachine(loop, Profile3G())
}

func TestInitialStates(t *testing.T) {
	loop := sim.NewLoop()
	if s := NewMachine(loop, Profile3G()).State(); s != Idle3G {
		t.Fatalf("3G initial %v", s)
	}
	if s := NewMachine(loop, ProfileLTE()).State(); s != IdleLTE {
		t.Fatalf("LTE initial %v", s)
	}
	if s := NewMachine(loop, ProfileAlwaysOn()).State(); s != AlwaysOn {
		t.Fatalf("always-on initial %v", s)
	}
}

func Test3GPromotionDelay(t *testing.T) {
	loop, m := new3G(t)
	ready := m.ReadyAt(1400)
	if ready != sim.Time(2*time.Second) {
		t.Fatalf("IDLE promotion ready at %v, want 2s", ready)
	}
	loop.RunUntilIdle()
	// After the promotion the machine is in DCH until demotion.
	loop2, m2 := new3G(t)
	m2.ReadyAt(1400)
	loop2.Run(sim.Time(3 * time.Second))
	if m2.State() != DCH {
		t.Fatalf("state %v after promotion, want DCH", m2.State())
	}
}

func Test3GDemotionChain(t *testing.T) {
	loop, m := new3G(t)
	m.ReadyAt(1400) // promotes at 2s
	// DCH→FACH 5 s after the promotion completes, FACH→IDLE 12 s later.
	loop.Run(sim.Time(2*time.Second + 4*time.Second))
	if m.State() != DCH {
		t.Fatalf("demoted too early: %v", m.State())
	}
	loop.Run(sim.Time(2*time.Second + 5*time.Second + 100*time.Millisecond))
	if m.State() != FACH {
		t.Fatalf("not in FACH: %v", m.State())
	}
	loop.Run(sim.Time(2*time.Second + 17*time.Second + 100*time.Millisecond))
	if m.State() != Idle3G {
		t.Fatalf("not back to IDLE: %v", m.State())
	}
	wantTransitions := []struct{ from, to State }{
		{Idle3G, DCH}, {DCH, FACH}, {FACH, Idle3G},
	}
	trs := m.Transitions()
	if len(trs) != len(wantTransitions) {
		t.Fatalf("transitions %v", trs)
	}
	for i, w := range wantTransitions {
		if trs[i].From != w.from || trs[i].To != w.to {
			t.Fatalf("transition %d: %v", i, trs[i])
		}
	}
}

func TestFACHCarriesSmallPackets(t *testing.T) {
	loop, m := new3G(t)
	m.ReadyAt(1400)
	loop.Run(sim.Time(8 * time.Second)) // now in FACH
	if m.State() != FACH {
		t.Fatalf("precondition: %v", m.State())
	}
	// A packet at/below the threshold rides FACH with no delay…
	if ready := m.ReadyAt(100); ready != loop.Now() {
		t.Fatalf("small packet delayed in FACH: %v vs now %v", ready, loop.Now())
	}
	if m.State() != FACH {
		t.Fatalf("small packet should not promote: %v", m.State())
	}
	// …and refreshes the demotion timer.
	loop.Run(loop.Now().Add(11 * time.Second))
	if m.State() != FACH {
		t.Fatalf("FACH demoted despite activity: %v", m.State())
	}
}

func TestFACHToDCHPromotionOnLargeData(t *testing.T) {
	loop, m := new3G(t)
	m.ReadyAt(1400)
	loop.Run(sim.Time(8 * time.Second)) // FACH
	before := loop.Now()
	ready := m.ReadyAt(1400) // exceeds the queue threshold
	if got := ready.Sub(before); got != 1500*time.Millisecond {
		t.Fatalf("FACH→DCH promotion delay %v, want 1.5s", got)
	}
	loop.Run(ready.Add(time.Millisecond))
	if m.State() != DCH {
		t.Fatalf("state %v, want DCH", m.State())
	}
}

func TestPromotionInProgressSharedByLaterPackets(t *testing.T) {
	loop, m := new3G(t)
	r1 := m.ReadyAt(1400)
	loop.Run(sim.Time(500 * time.Millisecond))
	r2 := m.ReadyAt(1400)
	if r1 != r2 {
		t.Fatalf("second packet got a different promotion deadline: %v vs %v", r2, r1)
	}
}

func TestLTEChain(t *testing.T) {
	loop := sim.NewLoop()
	m := NewMachine(loop, ProfileLTE())
	ready := m.ReadyAt(1400)
	if ready != sim.Time(400*time.Millisecond) {
		t.Fatalf("LTE promotion %v, want 400ms", ready)
	}
	// Continuous → ShortDRX after 100 ms idle, → LongDRX 400 ms later,
	// → RRC_IDLE 11.5 s after that.
	loop.Run(sim.Time(400*time.Millisecond + 150*time.Millisecond))
	if m.State() != ShortDRX {
		t.Fatalf("not ShortDRX: %v", m.State())
	}
	loop.Run(sim.Time(400*time.Millisecond + 600*time.Millisecond))
	if m.State() != LongDRX {
		t.Fatalf("not LongDRX: %v", m.State())
	}
	loop.Run(sim.Time(400*time.Millisecond + 500*time.Millisecond + 11600*time.Millisecond))
	if m.State() != IdleLTE {
		t.Fatalf("not RRC_IDLE: %v", m.State())
	}
}

func TestLTEDRXWakeFasterThanColdPromotion(t *testing.T) {
	loop := sim.NewLoop()
	m := NewMachine(loop, ProfileLTE())
	m.ReadyAt(1400)
	loop.Run(sim.Time(1 * time.Second)) // LongDRX by now
	if m.State() != LongDRX {
		t.Fatalf("precondition %v", m.State())
	}
	wake := m.ReadyAt(1400).Sub(loop.Now())
	if wake >= 400*time.Millisecond {
		t.Fatalf("DRX wake %v should be far below cold promotion 400ms", wake)
	}
}

func TestAlwaysOnNeverDelays(t *testing.T) {
	loop := sim.NewLoop()
	m := NewMachine(loop, ProfileAlwaysOn())
	for i := 0; i < 5; i++ {
		if r := m.ReadyAt(9999); r != loop.Now() {
			t.Fatalf("always-on delayed: %v", r)
		}
		loop.Run(loop.Now().Add(time.Hour))
	}
	if m.Promotions() != 0 {
		t.Fatalf("always-on counted promotions: %d", m.Promotions())
	}
}

func TestEnergyAccounting(t *testing.T) {
	loop, m := new3G(t)
	m.ReadyAt(1400)
	loop.Run(sim.Time(4 * time.Second)) // 2s idle-promo (0 mW), 2s DCH (800 mW)
	got := m.EnergyMilliJoules()
	want := 800.0 * 2.0
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("energy %v mJ, want ≈%v", got, want)
	}
}

func TestCurrentRateDuringPromotionIsUnconstrained(t *testing.T) {
	loop, m := new3G(t)
	m.ReadyAt(1400)
	loop.Run(sim.Time(8 * time.Second)) // FACH
	if m.CurrentRate() != Profile3G().FACHRate {
		t.Fatalf("FACH rate %d", m.CurrentRate())
	}
	m.ReadyAt(1400) // starts FACH→DCH promotion
	if m.CurrentRate() != 0 {
		t.Fatalf("rate during promotion should be unconstrained, got %d", m.CurrentRate())
	}
}

func TestOnChangeCallback(t *testing.T) {
	loop, m := new3G(t)
	var events []Transition
	m.OnChange(func(tr Transition) { events = append(events, tr) })
	m.ReadyAt(1400)
	loop.Run(sim.Time(25 * time.Second))
	if len(events) < 3 {
		t.Fatalf("expected ≥3 transitions, got %v", events)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Idle3G: "IDLE", FACH: "CELL_FACH", DCH: "CELL_DCH",
		IdleLTE: "RRC_IDLE", Continuous: "CONTINUOUS",
		ShortDRX: "SHORT_DRX", LongDRX: "LONG_DRX", AlwaysOn: "ALWAYS_ON",
	} {
		if s.String() != want {
			t.Fatalf("%v != %v", s.String(), want)
		}
	}
	if !DCH.Active() || !Continuous.Active() || FACH.Active() || Idle3G.Active() {
		t.Fatal("Active() wrong")
	}
}
