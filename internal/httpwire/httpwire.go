// Package httpwire implements a minimal HTTP/1.1 message layer: request
// and response head serialization (used by the simulator to charge
// realistic byte counts, and by the live proxy/origin to speak actual
// HTTP), plus a small parser for the live track.
//
// Only the subset the reproduction needs is implemented: GET requests in
// origin and absolute (proxy) form, Content-Length framing, persistent
// connections. No chunked encoding, no trailers.
package httpwire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Request is a parsed or to-be-serialized HTTP/1.1 request.
type Request struct {
	Method  string
	Target  string // origin-form path or absolute-form URL
	Headers map[string]string
}

// Response is a parsed or to-be-serialized HTTP/1.1 response.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// DefaultRequestHeaders returns the header set a Chrome-like client
// sends on every request; its serialized size is what HTTP pays per
// request and SPDY compresses away.
func DefaultRequestHeaders(host string) map[string]string {
	return map[string]string{
		"Host":            host,
		"Connection":      "keep-alive",
		"Accept":          "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
		"User-Agent":      "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.11 Chrome/23.0 Safari/537.11",
		"Accept-Encoding": "gzip,deflate,sdch",
		"Accept-Language": "en-US,en;q=0.8",
		"Cookie":          "session=0123456789abcdef0123456789abcdef; pref=lang%3Den-US%7Ctz%3DAmerica%2FNew_York",
	}
}

// Marshal serializes the request head (through the final CRLF CRLF).
func (r *Request) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.Target)
	names := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Headers[k])
	}
	b.WriteString("\r\n")
	return []byte(b.String())
}

// Marshal serializes the response head followed by the body.
func (r *Response) Marshal() []byte {
	var b strings.Builder
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, reason)
	names := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Headers[k])
	}
	b.WriteString("\r\n")
	out := append([]byte(b.String()), r.Body...)
	return out
}

// HeadSize returns the serialized size of the response head alone.
func (r *Response) HeadSize() int {
	body := r.Body
	r.Body = nil
	n := len(r.Marshal())
	r.Body = body
	return n
}

// RequestSize returns the wire size of a standard proxied GET for the
// given absolute URL — the per-request HTTP overhead in the simulator.
func RequestSize(absURL, host string) int {
	req := Request{Method: "GET", Target: absURL, Headers: DefaultRequestHeaders(host)}
	return len(req.Marshal())
}

// ResponseHeadSize returns the wire size of a typical 200 response head.
func ResponseHeadSize(contentType string, contentLength int) int {
	resp := Response{
		Status: 200,
		Headers: map[string]string{
			"Content-Type":   contentType,
			"Content-Length": strconv.Itoa(contentLength),
			"Date":           "Thu, 18 Apr 2013 01:02:03 GMT",
			"Server":         "Apache/2.2.22",
			"Cache-Control":  "max-age=3600",
			"Via":            "1.1 proxy.cell.example (squid/3.1)",
			"Connection":     "keep-alive",
		},
	}
	return resp.HeadSize()
}

// StatusText returns the reason phrase for the handful of codes used.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 206:
		return "Partial Content"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 502:
		return "Bad Gateway"
	case 504:
		return "Gateway Timeout"
	default:
		return "Unknown"
	}
}

// errMalformed reports protocol violations in the parser.
var errMalformed = errors.New("httpwire: malformed message")

const maxHeaderLines = 100

// ReadRequest parses one request head from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("%w: request line %q", errMalformed, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Headers: map[string]string{}}
	if err := readHeaders(br, req.Headers); err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse parses one response (head and Content-Length body).
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: status line %q", errMalformed, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: status code %q", errMalformed, parts[1])
	}
	resp := &Response{Status: code, Headers: map[string]string{}}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	if err := readHeaders(br, resp.Headers); err != nil {
		return nil, err
	}
	if cl := resp.Headers["Content-Length"]; cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: content-length %q", errMalformed, cl)
		}
		resp.Body = make([]byte, n)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaders(br *bufio.Reader, into map[string]string) error {
	for i := 0; i < maxHeaderLines; i++ {
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if line == "" {
			return nil
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("%w: header line %q", errMalformed, line)
		}
		into[canonical(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return fmt.Errorf("%w: too many header lines", errMalformed)
}

// canonical normalizes header names to Canonical-Dash-Case.
func canonical(name string) string {
	b := []byte(name)
	upper := true
	for i, c := range b {
		if upper && 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		} else if !upper && 'A' <= c && c <= 'Z' {
			b[i] = c - 'A' + 'a'
		}
		upper = c == '-'
	}
	return string(b)
}
