package httpwire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method:  "GET",
		Target:  "http://example.com/index.html",
		Headers: DefaultRequestHeaders("example.com"),
	}
	got, err := ReadRequest(bufio.NewReader(bytes.NewReader(req.Marshal())))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != req.Target {
		t.Fatalf("request line: %+v", got)
	}
	if got.Headers["Host"] != "example.com" || got.Headers["User-Agent"] == "" {
		t.Fatalf("headers: %v", got.Headers)
	}
}

func TestResponseRoundTripWithBody(t *testing.T) {
	resp := &Response{
		Status: 200,
		Headers: map[string]string{
			"Content-Type":   "text/plain",
			"Content-Length": "11",
		},
		Body: []byte("hello world"),
	}
	got, err := ReadResponse(bufio.NewReader(bytes.NewReader(resp.Marshal())))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != 200 || string(got.Body) != "hello world" {
		t.Fatalf("%+v", got)
	}
	if got.Reason != "OK" {
		t.Fatalf("reason %q", got.Reason)
	}
}

func TestPersistentConnectionParsesSequentialMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		buf.Write((&Response{
			Status:  200,
			Headers: map[string]string{"Content-Length": "3"},
			Body:    []byte{'a' + byte(i), 'b', 'c'},
		}).Marshal())
	}
	br := bufio.NewReader(&buf)
	for i := 0; i < 3; i++ {
		resp, err := ReadResponse(br)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if resp.Body[0] != 'a'+byte(i) {
			t.Fatalf("message %d body %q", i, resp.Body)
		}
	}
}

func TestCanonicalHeaderNames(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nhOsT: x\r\ncontent-length: 0\r\nX-CUSTOM-THING: v\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Host", "Content-Length", "X-Custom-Thing"} {
		if _, ok := req.Headers[want]; !ok {
			t.Fatalf("missing canonical %q in %v", want, req.Headers)
		}
	}
}

func TestMalformedInputsRejected(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",                       // missing version
		"HTTP/1.1\r\n\r\n",                    // status line too short
		"HTTP/1.1 abc OK\r\n\r\n",             // non-numeric status
		"GET / HTTP/1.1\r\nbadheader\r\n\r\n", // no colon
	}
	for _, c := range cases {
		br := bufio.NewReader(strings.NewReader(c))
		if strings.HasPrefix(c, "HTTP/") {
			if _, err := ReadResponse(br); err == nil {
				t.Errorf("accepted response %q", c)
			}
		} else {
			if _, err := ReadRequest(br); err == nil {
				t.Errorf("accepted request %q", c)
			}
		}
	}
}

func TestNegativeContentLengthRejected(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("negative content-length accepted")
	}
}

func TestTruncatedBodyRejected(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestHeaderLineLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < maxHeaderLines+1; i++ {
		b.WriteString("X-A: 1\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String()))); err == nil {
		t.Fatal("unbounded headers accepted")
	}
}

func TestRequestSizeRealistic(t *testing.T) {
	n := RequestSize("http://www.example.com/some/path.html", "www.example.com")
	// A Chrome-like proxied GET with cookies is a few hundred bytes and
	// must fit one TCP packet — the paper notes all requests did.
	if n < 300 || n > 1380 {
		t.Fatalf("request size %d implausible", n)
	}
}

func TestResponseHeadSizeRealistic(t *testing.T) {
	n := ResponseHeadSize("image/jpeg", 123456)
	if n < 150 || n > 600 {
		t.Fatalf("response head %d implausible", n)
	}
}

func TestHeadSizeExcludesBody(t *testing.T) {
	r := &Response{Status: 200, Headers: map[string]string{"Content-Length": "5"}, Body: []byte("12345")}
	if r.HeadSize() != len(r.Marshal())-5 {
		t.Fatalf("head size %d vs total %d", r.HeadSize(), len(r.Marshal()))
	}
	if string(r.Body) != "12345" {
		t.Fatal("HeadSize clobbered the body")
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(404) != "Not Found" || StatusText(999) != "Unknown" {
		t.Fatal("status text")
	}
}

func TestRequestMarshalDeterministic(t *testing.T) {
	check := func(seed uint8) bool {
		req := &Request{Method: "GET", Target: "/x", Headers: DefaultRequestHeaders("h.example")}
		a := req.Marshal()
		b := req.Marshal()
		return bytes.Equal(a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
