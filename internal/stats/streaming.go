// Streaming, mergeable accumulators for population-scale sweeps. Each
// type consumes one observation at a time in O(1) memory and supports a
// deterministic Merge, so per-worker shards folded in seed order and
// merged in shard-index order produce bit-for-bit the same state as a
// serial fold — regardless of which shard finished first.
//
// Moments/QuantileSketch/Hist are the streaming counterparts of
// Mean/CI95, Quantile and CDF: they trade the sample vector for fixed
// state, which is what lets `spdysim -exp all -runs 1000` run at flat
// memory. They are NOT bit-identical to their vector-based counterparts
// (float addition is not associative), which is why the experiments that
// reproduce the paper's figures keep exact per-run vectors and only the
// population-scale paths use these.
package stats

import (
	"math"
	"sort"
)

// Moments maintains running count/mean/variance via Welford's update,
// with the Chan et al. pairwise rule for Merge.
type Moments struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (m *Moments) Add(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// Merge folds another accumulator in. Merging shard states in a fixed
// order is deterministic; the result is mathematically (not bitwise)
// equal to folding all samples into one accumulator.
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n1, n2 := float64(m.n), float64(o.n)
	n := n1 + n2
	delta := o.mean - m.mean
	m.mean += delta * n2 / n
	m.m2 += o.m2 + delta*delta*n1*n2/n
	m.n += o.n
}

// N reports the observation count.
func (m *Moments) N() int { return int(m.n) }

// Mean returns the running mean (0 for empty input).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the
// mean, matching the semantics of the package-level CI95 (0 for n < 2).
func (m *Moments) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	return 1.96 * m.StdDev() / math.Sqrt(float64(m.n))
}

const (
	// sketchExactMax is the sample-count threshold below which the sketch
	// keeps raw samples: quantile queries sort a copy and interpolate, so
	// small-`runs` sweeps report bit-identically to Quantile().
	sketchExactMax = 2048
	// sketchBins is the fixed resolution after collapse; quantile error
	// is bounded by one bin width, O((max-min)/sketchBins).
	sketchBins = 512
)

// QuantileSketch estimates quantiles in bounded memory. Below
// sketchExactMax samples it stores them exactly; beyond that it
// collapses into a fixed-size histogram over [min, max] whose range
// doubles (pair-merging bins) whenever a sample lands outside it.
type QuantileSketch struct {
	exact    []float64 // raw samples while small; nil once collapsed
	n        uint64
	min, max float64
	lo       float64  // inclusive lower bound of bin 0
	width    float64  // bin width
	bins     []uint64 // nil while exact
}

// NewQuantileSketch returns an empty sketch.
func NewQuantileSketch() *QuantileSketch { return &QuantileSketch{} }

// N reports the observation count.
func (s *QuantileSketch) N() int { return int(s.n) }

// Exact reports whether the sketch still holds raw samples (queries are
// bit-identical to Quantile over the same values).
func (s *QuantileSketch) Exact() bool { return s.bins == nil }

// Min and Max are exact regardless of mode.
func (s *QuantileSketch) Min() float64 { return s.min }
func (s *QuantileSketch) Max() float64 { return s.max }

// Add folds one observation in.
func (s *QuantileSketch) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	if s.bins == nil {
		s.exact = append(s.exact, x)
		if len(s.exact) > sketchExactMax {
			s.collapse()
		}
		return
	}
	s.insert(x)
}

// collapse switches from exact storage to the fixed-bin histogram.
func (s *QuantileSketch) collapse() {
	lo, hi := s.min, s.max
	if hi <= lo {
		hi = lo + 1 // degenerate (constant) input still needs a range
	}
	s.lo = lo
	// Divide by bins-1 so the current max falls inside the last bin
	// rather than on the exclusive upper edge.
	s.width = (hi - lo) / float64(sketchBins-1)
	s.bins = make([]uint64, sketchBins)
	for _, x := range s.exact {
		s.insert(x)
	}
	s.exact = nil
}

// insert counts x into its bin, doubling the covered range as needed.
func (s *QuantileSketch) insert(x float64) {
	for x < s.lo {
		s.growDown()
	}
	for x >= s.lo+s.width*float64(sketchBins) {
		s.growUp()
	}
	i := int((x - s.lo) / s.width)
	if i >= sketchBins {
		i = sketchBins - 1
	}
	s.bins[i]++
}

// growUp doubles the range upward: adjacent bin pairs merge into the
// lower half and the upper half opens up empty.
func (s *QuantileSketch) growUp() {
	next := make([]uint64, sketchBins)
	for i := 0; i < sketchBins/2; i++ {
		next[i] = s.bins[2*i] + s.bins[2*i+1]
	}
	s.bins = next
	s.width *= 2
}

// growDown doubles the range downward: existing bins pair-merge into the
// upper half and the lower half opens up empty below the old lo.
func (s *QuantileSketch) growDown() {
	next := make([]uint64, sketchBins)
	for i := 0; i < sketchBins/2; i++ {
		next[sketchBins/2+i] = s.bins[2*i] + s.bins[2*i+1]
	}
	oldRange := s.width * float64(sketchBins)
	s.bins = next
	s.width *= 2
	s.lo -= oldRange
}

// Quantile returns the estimated q-quantile. Exact mode matches
// Quantile() bit-for-bit; sketch mode interpolates within the covering
// bin and clamps to the exact [min, max].
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if s.bins == nil {
		c := append([]float64(nil), s.exact...)
		sort.Float64s(c)
		return quantileSorted(c, q)
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := q * float64(s.n-1)
	var cum float64
	for i, c := range s.bins {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if rank < cum+fc {
			v := s.lo + float64(i)*s.width + s.width*(rank-cum)/fc
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
		cum += fc
	}
	return s.max
}

// Merge folds another sketch in. If both sides are exact and the union
// still fits the exact threshold, samples concatenate (receiver first),
// preserving the bit-exact small-N path; otherwise the receiver collapses
// and the argument's mass is re-inserted (exact samples directly, sketch
// bins at their midpoints). Deterministic for a fixed merge order.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.n = o.n
		s.min, s.max = o.min, o.max
		s.lo, s.width = o.lo, o.width
		s.exact = append([]float64(nil), o.exact...)
		if o.bins != nil {
			s.bins = append([]uint64(nil), o.bins...)
		}
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	if s.bins == nil && o.bins == nil && len(s.exact)+len(o.exact) <= sketchExactMax {
		s.exact = append(s.exact, o.exact...)
		s.n += o.n
		return
	}
	if s.bins == nil {
		s.collapse()
	}
	if o.bins == nil {
		for _, x := range o.exact {
			s.insert(x)
		}
		s.n += o.n
		return
	}
	for i, c := range o.bins {
		if c == 0 {
			continue
		}
		mid := o.lo + (float64(i)+0.5)*o.width
		for mid < s.lo {
			s.growDown()
		}
		for mid >= s.lo+s.width*float64(sketchBins) {
			s.growUp()
		}
		j := int((mid - s.lo) / s.width)
		if j >= sketchBins {
			j = sketchBins - 1
		}
		s.bins[j] += c
	}
	s.n += o.n
}

// Hist is a streaming fixed-width histogram — the mergeable counterpart
// of CDF for known-scale quantities (e.g. page load times in seconds).
type Hist struct {
	width float64
	bins  []uint64
	n     uint64
}

// NewHist creates a histogram with the given bin width.
func NewHist(width float64) *Hist {
	if width <= 0 {
		width = 1
	}
	return &Hist{width: width}
}

// Width reports the bin width.
func (h *Hist) Width() float64 { return h.width }

// N reports the observation count.
func (h *Hist) N() int { return int(h.n) }

// Add counts x into its bin (negative values count into bin 0).
func (h *Hist) Add(x float64) {
	i := 0
	if x > 0 {
		i = int(x / h.width)
	}
	for len(h.bins) <= i {
		h.bins = append(h.bins, 0)
	}
	h.bins[i]++
	h.n++
}

// Merge folds another histogram in; widths must match.
func (h *Hist) Merge(o *Hist) {
	if o.width != h.width {
		panic("stats: merging histograms of different widths")
	}
	for len(h.bins) < len(o.bins) {
		h.bins = append(h.bins, 0)
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.n += o.n
}

// At returns the estimated P(X ≤ x): whole bins below x plus a uniform
// fraction of the bin containing x.
func (h *Hist) At(x float64) float64 {
	if h.n == 0 || x < 0 {
		return 0
	}
	i := int(x / h.width)
	var cum uint64
	for j := 0; j < i && j < len(h.bins); j++ {
		cum += h.bins[j]
	}
	est := float64(cum)
	if i < len(h.bins) {
		est += (x/h.width - float64(i)) * float64(h.bins[i])
	}
	if p := est / float64(h.n); p < 1 {
		return p
	}
	return 1
}

// Bins returns the bin counts (shared slice; callers must not mutate).
func (h *Hist) Bins() []uint64 { return h.bins }
