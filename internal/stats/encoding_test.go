package stats

import (
	"reflect"
	"testing"
)

// rng is a tiny deterministic generator for encoding tests (the package
// must not touch math/rand's global state).
type encRNG uint64

func (r *encRNG) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(uint32(*r>>33)) / float64(1<<32)
}

// TestMomentsEncodingRoundTrip: decode(encode(m)) must reproduce the
// accumulator bit for bit, including the zero value.
func TestMomentsEncodingRoundTrip(t *testing.T) {
	r := encRNG(7)
	for _, n := range []int{0, 1, 2, 100} {
		var m Moments
		for i := 0; i < n; i++ {
			m.Add(r.next() * 50)
		}
		data, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		var got Moments
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if !reflect.DeepEqual(&got, &m) {
			t.Fatalf("n=%d: round trip differs:\n got %+v\nwant %+v", n, got, m)
		}
	}
}

// TestQuantileSketchEncodingRoundTrip covers both the exact and the
// collapsed (binned) modes, which must survive the trip unchanged —
// including the exact-mode raw samples in insertion order.
func TestQuantileSketchEncodingRoundTrip(t *testing.T) {
	r := encRNG(13)
	for _, n := range []int{0, 1, 500, sketchExactMax + 100} {
		s := NewQuantileSketch()
		for i := 0; i < n; i++ {
			s.Add(r.next() * 30)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		got := NewQuantileSketch()
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("n=%d: round trip differs", n)
		}
		if got.Exact() != s.Exact() {
			t.Fatalf("n=%d: mode flipped across the trip", n)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if a, b := got.Quantile(q), s.Quantile(q); a != b {
				t.Fatalf("n=%d: Quantile(%g) = %v after trip, want %v", n, q, a, b)
			}
		}
	}
}

// TestHistEncodingRoundTrip: histograms round-trip bit-exactly.
func TestHistEncodingRoundTrip(t *testing.T) {
	r := encRNG(99)
	for _, n := range []int{0, 1, 300} {
		h := NewHist(0.5)
		for i := 0; i < n; i++ {
			h.Add(r.next() * 20)
		}
		data, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		got := NewHist(0.5)
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("n=%d: round trip differs:\n got %+v\nwant %+v", n, got, h)
		}
	}
}

// TestEncodingRejectsDamage: version bumps, truncation and trailing
// garbage must all fail loudly, never decode to a plausible state.
func TestEncodingRejectsDamage(t *testing.T) {
	var m Moments
	m.Add(1)
	m.Add(2)
	data, _ := m.MarshalBinary()

	bad := append([]byte(nil), data...)
	bad[0] = 99
	if err := new(Moments).UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown Moments version decoded without error")
	}
	if err := new(Moments).UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated Moments decoded without error")
	}
	if err := new(Moments).UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("oversized Moments decoded without error")
	}

	s := NewQuantileSketch()
	s.Add(3)
	sdata, _ := s.MarshalBinary()
	if err := NewQuantileSketch().UnmarshalBinary(sdata[:len(sdata)-1]); err == nil {
		t.Fatal("truncated QuantileSketch decoded without error")
	}
	bad = append([]byte(nil), sdata...)
	bad[1] = 7 // unknown mode
	if err := NewQuantileSketch().UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown QuantileSketch mode decoded without error")
	}

	h := NewHist(1)
	h.Add(2)
	hdata, _ := h.MarshalBinary()
	if err := NewHist(1).UnmarshalBinary(hdata[:len(hdata)-2]); err == nil {
		t.Fatal("truncated Hist decoded without error")
	}
}

// TestEncodedMergeMatchesDirect: the fabric's core property in
// miniature — folding a shard remotely, encoding, decoding and merging
// must equal merging the original accumulator directly.
func TestEncodedMergeMatchesDirect(t *testing.T) {
	r := encRNG(5)
	var a1, a2, b Moments
	s1, s2 := NewQuantileSketch(), NewQuantileSketch()
	h1, h2 := NewHist(1), NewHist(1)
	for i := 0; i < 400; i++ {
		x := r.next() * 10
		a1.Add(x)
		a2.Add(x)
		s1.Add(x)
		s2.Add(x)
		h1.Add(x)
		h2.Add(x)
	}
	for i := 0; i < 300; i++ {
		b.Add(r.next() * 10)
	}

	// Direct merge.
	direct := a1
	direct.Merge(&b)

	// Remote merge: b travels through the encoding.
	data, _ := b.MarshalBinary()
	var remote Moments
	if err := remote.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	viaWire := a2
	viaWire.Merge(&remote)
	if !reflect.DeepEqual(&viaWire, &direct) {
		t.Fatalf("merge through encoding differs:\n got %+v\nwant %+v", viaWire, direct)
	}

	// Same for the sketch: s2's copy travels the wire, then merges into
	// a third accumulator; compare against merging s1 directly.
	t1, t2 := NewQuantileSketch(), NewQuantileSketch()
	t1.Merge(s1)
	sdata, _ := s2.MarshalBinary()
	sRemote := NewQuantileSketch()
	if err := sRemote.UnmarshalBinary(sdata); err != nil {
		t.Fatal(err)
	}
	t2.Merge(sRemote)
	if !reflect.DeepEqual(t2, t1) {
		t.Fatal("sketch merge through encoding differs from direct merge")
	}

	hdata, _ := h2.MarshalBinary()
	hRemote := NewHist(1)
	if err := hRemote.UnmarshalBinary(hdata); err != nil {
		t.Fatal(err)
	}
	u1, u2 := NewHist(1), NewHist(1)
	u1.Merge(h1)
	u2.Merge(hRemote)
	if !reflect.DeepEqual(u2, u1) {
		t.Fatal("hist merge through encoding differs from direct merge")
	}
}
