// Package stats provides the summary statistics the paper's figures use:
// box-plot five-number summaries (Figures 3 and 16), means with 95%
// confidence intervals (Figure 4), empirical CDFs (Figure 14),
// per-second binned series (Figure 9) and relative differences
// (Figure 15).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// (normal approximation).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
// The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted is Quantile over an already-sorted non-empty slice.
func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Quantiles returns the q-quantile for each requested q, copying and
// sorting the input once rather than once per quantile. Each result is
// bit-identical to the corresponding Quantile(xs, q) call.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxPlot is a five-number summary plus mean, the exact contents of each
// box in Figures 3 and 16.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box computes the summary of xs, copying and sorting the input once
// rather than once per quantile.
func Box(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return BoxPlot{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(xs), // original order: bit-identical to the pre-sort behavior
		N:      len(s),
	}
}

// CDF is an empirical distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Inverse returns the p-quantile of the distribution.
func (c *CDF) Inverse(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return quantileSorted(c.sorted, p)
}

// Len reports the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// BinSeries accumulates values into fixed-width bins indexed from zero —
// Figure 9's per-second transferred-bytes series.
type BinSeries struct {
	Width float64
	Bins  []float64
}

// NewBinSeries creates a series with the given bin width.
func NewBinSeries(width float64) *BinSeries { return &BinSeries{Width: width} }

// Add accumulates v into the bin containing position x (x ≥ 0).
func (s *BinSeries) Add(x, v float64) {
	if x < 0 {
		return
	}
	i := int(x / s.Width)
	for len(s.Bins) <= i {
		s.Bins = append(s.Bins, 0)
	}
	s.Bins[i] += v
}

// MeanOver divides every bin by n (averaging across n runs).
func (s *BinSeries) MeanOver(n int) {
	if n <= 0 {
		return
	}
	for i := range s.Bins {
		s.Bins[i] /= float64(n)
	}
}

// RelDiff returns (a-b)/b as a percentage, guarding b == 0.
func RelDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}
