package stats

import (
	"bytes"
	"reflect"
	"testing"
)

// These tests are the runtime twins of the fieldcover rules on the
// accumulator codecs: for every struct field there is a pair of values
// differing only in that field whose encodings must differ (encode
// covers the field), and a round trip must restore the field exactly
// (decode covers it). The NumField pins force this table to grow with
// the struct, mirroring how fieldcover forces the codec to.

func mustMarshal(t *testing.T, enc interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	out, err := enc.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	return out
}

func TestMomentsCodecCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(Moments{}).NumField(); n != 3 {
		t.Fatalf("Moments has %d fields; extend the variants below (and the codec) for the new one", n)
	}
	base := Moments{n: 3, mean: 1.5, m2: 0.75}
	variants := map[string]Moments{
		"n":    {n: 4, mean: 1.5, m2: 0.75},
		"mean": {n: 3, mean: 2.5, m2: 0.75},
		"m2":   {n: 3, mean: 1.5, m2: 1.75},
	}
	enc := mustMarshal(t, &base)
	for name, v := range variants {
		if bytes.Equal(enc, mustMarshal(t, &v)) {
			t.Errorf("Moments.%s: two accumulators differing only in this field encode identically", name)
		}
	}
	var rt Moments
	if err := rt.UnmarshalBinary(enc); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if rt != base {
		t.Errorf("round trip lost state: got %+v, want %+v", rt, base)
	}
}

func TestQuantileSketchCodecCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(QuantileSketch{}).NumField(); n != 7 {
		t.Fatalf("QuantileSketch has %d fields; extend the variants below (and the codec) for the new one", n)
	}
	// A collapsed (binned) sketch exercises every scalar plus bins; the
	// exact-mode pair covers the raw-sample path.
	base := QuantileSketch{n: 5, min: 1, max: 9, lo: 0, width: 1, bins: []uint64{2, 3}}
	variants := map[string]QuantileSketch{
		"n":     {n: 6, min: 1, max: 9, lo: 0, width: 1, bins: []uint64{2, 3}},
		"min":   {n: 5, min: 2, max: 9, lo: 0, width: 1, bins: []uint64{2, 3}},
		"max":   {n: 5, min: 1, max: 8, lo: 0, width: 1, bins: []uint64{2, 3}},
		"lo":    {n: 5, min: 1, max: 9, lo: 1, width: 1, bins: []uint64{2, 3}},
		"width": {n: 5, min: 1, max: 9, lo: 0, width: 2, bins: []uint64{2, 3}},
		"bins":  {n: 5, min: 1, max: 9, lo: 0, width: 1, bins: []uint64{3, 2}},
	}
	enc := mustMarshal(t, &base)
	for name, v := range variants {
		v := v
		if bytes.Equal(enc, mustMarshal(t, &v)) {
			t.Errorf("QuantileSketch.%s: two sketches differing only in this field encode identically", name)
		}
	}
	exactA := QuantileSketch{n: 2, min: 1, max: 4, exact: []float64{1, 4}}
	exactB := QuantileSketch{n: 2, min: 1, max: 4, exact: []float64{4, 1}}
	if bytes.Equal(mustMarshal(t, &exactA), mustMarshal(t, &exactB)) {
		t.Error("QuantileSketch.exact: two sketches differing only in raw samples encode identically")
	}

	for _, s := range []QuantileSketch{base, exactA} {
		s := s
		var rt QuantileSketch
		if err := rt.UnmarshalBinary(mustMarshal(t, &s)); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		if !reflect.DeepEqual(rt, s) {
			t.Errorf("round trip lost state: got %+v, want %+v", rt, s)
		}
	}
}

func TestHistCodecCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(Hist{}).NumField(); n != 3 {
		t.Fatalf("Hist has %d fields; extend the variants below (and the codec) for the new one", n)
	}
	base := Hist{width: 2, bins: []uint64{1, 2}, n: 3}
	variants := map[string]Hist{
		"width": {width: 3, bins: []uint64{1, 2}, n: 3},
		"bins":  {width: 2, bins: []uint64{2, 1}, n: 3},
		"n":     {width: 2, bins: []uint64{1, 2}, n: 4},
	}
	enc := mustMarshal(t, &base)
	for name, v := range variants {
		v := v
		if bytes.Equal(enc, mustMarshal(t, &v)) {
			t.Errorf("Hist.%s: two histograms differing only in this field encode identically", name)
		}
	}
	var rt Hist
	if err := rt.UnmarshalBinary(enc); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if !reflect.DeepEqual(rt, base) {
		t.Errorf("round trip lost state: got %+v, want %+v", rt, base)
	}
}
