// Stable binary encodings for the mergeable accumulators. The sweep
// fabric streams shard accumulator state between worker processes and
// journals it into on-disk checkpoints, so the encodings must be
// bit-exact (floats travel as their IEEE-754 bit patterns, never
// through text) and versioned (a journal written by one build must
// either decode identically or fail loudly under another).
//
// Every type encodes as: one version byte, then the fields in a fixed
// little-endian order. Decoding verifies the version and the exact
// payload length, so truncated or concatenated state cannot alias.
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding versions. Bump when a field is added or its meaning changes;
// decoders reject unknown versions rather than guessing.
const (
	momentsEncVersion byte = 1
	sketchEncVersion  byte = 1
	histEncVersion    byte = 1
)

func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// byteReader consumes a decode buffer with sticky underflow detection.
type byteReader struct {
	b   []byte
	bad bool
}

func (r *byteReader) take(n int) []byte {
	if r.bad || len(r.b) < n {
		r.bad = true
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *byteReader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *byteReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *byteReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *byteReader) f64() float64 { return math.Float64frombits(r.u64()) }

// done reports a clean decode: no underflow and no trailing bytes.
func (r *byteReader) done() bool { return !r.bad && len(r.b) == 0 }

// MarshalBinary encodes the accumulator bit-exactly.
func (m *Moments) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 1+3*8)
	out = append(out, momentsEncVersion)
	out = appendU64(out, m.n)
	out = appendF64(out, m.mean)
	out = appendF64(out, m.m2)
	return out, nil
}

// UnmarshalBinary replaces the accumulator with the encoded state.
func (m *Moments) UnmarshalBinary(data []byte) error {
	r := &byteReader{b: data}
	if v := r.u8(); v != momentsEncVersion {
		return fmt.Errorf("stats: Moments encoding version %d, want %d", v, momentsEncVersion)
	}
	n := r.u64()
	mean := r.f64()
	m2 := r.f64()
	if !r.done() {
		return fmt.Errorf("stats: malformed Moments encoding (%d bytes)", len(data))
	}
	m.n, m.mean, m.m2 = n, mean, m2
	return nil
}

// Sketch mode discriminants in the encoded form.
const (
	sketchModeExact  byte = 0
	sketchModeBinned byte = 1
)

// MarshalBinary encodes the sketch bit-exactly, preserving whether it is
// still in the exact (raw-sample) mode.
func (s *QuantileSketch) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 64+8*len(s.exact)+8*len(s.bins))
	out = append(out, sketchEncVersion)
	mode := sketchModeExact
	if s.bins != nil {
		mode = sketchModeBinned
	}
	out = append(out, mode)
	out = appendU64(out, s.n)
	out = appendF64(out, s.min)
	out = appendF64(out, s.max)
	out = appendF64(out, s.lo)
	out = appendF64(out, s.width)
	out = appendU32(out, uint32(len(s.exact)))
	for _, x := range s.exact {
		out = appendF64(out, x)
	}
	out = appendU32(out, uint32(len(s.bins)))
	for _, c := range s.bins {
		out = appendU64(out, c)
	}
	return out, nil
}

// UnmarshalBinary replaces the sketch with the encoded state.
func (s *QuantileSketch) UnmarshalBinary(data []byte) error {
	r := &byteReader{b: data}
	if v := r.u8(); v != sketchEncVersion {
		return fmt.Errorf("stats: QuantileSketch encoding version %d, want %d", v, sketchEncVersion)
	}
	mode := r.u8()
	if mode != sketchModeExact && mode != sketchModeBinned {
		return fmt.Errorf("stats: QuantileSketch encoding has unknown mode %d", mode)
	}
	n := r.u64()
	min, max := r.f64(), r.f64()
	lo, width := r.f64(), r.f64()
	nExact := int(r.u32())
	if r.bad || nExact > len(r.b)/8 {
		return fmt.Errorf("stats: malformed QuantileSketch encoding (%d bytes)", len(data))
	}
	var exact []float64
	if nExact > 0 {
		exact = make([]float64, nExact)
		for i := range exact {
			exact[i] = r.f64()
		}
	}
	nBins := int(r.u32())
	if r.bad || nBins > len(r.b)/8 {
		return fmt.Errorf("stats: malformed QuantileSketch encoding (%d bytes)", len(data))
	}
	var bins []uint64
	if nBins > 0 || mode == sketchModeBinned {
		bins = make([]uint64, nBins)
		for i := range bins {
			bins[i] = r.u64()
		}
	}
	if !r.done() {
		return fmt.Errorf("stats: malformed QuantileSketch encoding (%d bytes)", len(data))
	}
	if mode == sketchModeExact && bins != nil {
		return fmt.Errorf("stats: QuantileSketch encoding mixes exact mode with bins")
	}
	s.n = n
	s.min, s.max = min, max
	s.lo, s.width = lo, width
	s.exact = exact
	s.bins = bins
	return nil
}

// MarshalBinary encodes the histogram bit-exactly.
func (h *Hist) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 32+8*len(h.bins))
	out = append(out, histEncVersion)
	out = appendF64(out, h.width)
	out = appendU64(out, h.n)
	out = appendU32(out, uint32(len(h.bins)))
	for _, c := range h.bins {
		out = appendU64(out, c)
	}
	return out, nil
}

// UnmarshalBinary replaces the histogram with the encoded state.
func (h *Hist) UnmarshalBinary(data []byte) error {
	r := &byteReader{b: data}
	if v := r.u8(); v != histEncVersion {
		return fmt.Errorf("stats: Hist encoding version %d, want %d", v, histEncVersion)
	}
	width := r.f64()
	n := r.u64()
	nBins := int(r.u32())
	if r.bad || nBins > len(r.b)/8 {
		return fmt.Errorf("stats: malformed Hist encoding (%d bytes)", len(data))
	}
	var bins []uint64
	if nBins > 0 {
		bins = make([]uint64, nBins)
		for i := range bins {
			bins[i] = r.u64()
		}
	}
	if !r.done() {
		return fmt.Errorf("stats: malformed Hist encoding (%d bytes)", len(data))
	}
	h.width, h.n, h.bins = width, n, bins
	return nil
}
