package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func sampleSets() map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	sorted := make([]float64, 5000)
	for i := range sorted {
		sorted[i] = float64(i) * 0.01
	}
	constant := make([]float64, 5000)
	for i := range constant {
		constant[i] = 7.5
	}
	bimodal := make([]float64, 5000)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 2 + rng.Float64()
		} else {
			bimodal[i] = 40 + rng.Float64()
		}
	}
	uniform := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = rng.Float64() * 100
	}
	return map[string][]float64{
		"sorted": sorted, "constant": constant, "bimodal": bimodal, "uniform": uniform,
	}
}

func TestMomentsMatchBatchStats(t *testing.T) {
	for name, xs := range sampleSets() {
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		if got, want := m.Mean(), Mean(xs); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: mean %g want %g", name, got, want)
		}
		// Batch StdDev divides by n-1 (sample), as does Moments.
		if got, want := m.StdDev(), StdDev(xs); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: stddev %g want %g", name, got, want)
		}
		if got, want := m.CI95(), CI95(xs); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: ci95 %g want %g", name, got, want)
		}
		if m.N() != len(xs) {
			t.Errorf("%s: n %d want %d", name, m.N(), len(xs))
		}
	}
}

// shardAccs is one complete set of streaming accumulators.
type shardAccs struct {
	m Moments
	q QuantileSketch
	h Hist
}

// fillShards partitions xs into `shards` contiguous chunks (the
// deterministic partition SweepStream uses) and folds each chunk into its
// own accumulator set. When parallel, each shard fills in its own
// goroutine; the fold order *within* a shard is identical either way.
func fillShards(xs []float64, shards int, parallel bool) []*shardAccs {
	accs := make([]*shardAccs, shards)
	per := (len(xs) + shards - 1) / shards
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		accs[s] = &shardAccs{h: *NewHist(1.0)}
		lo, hi := s*per, (s+1)*per
		if hi > len(xs) {
			hi = len(xs)
		}
		fill := func(a *shardAccs, part []float64) {
			for _, x := range part {
				a.m.Add(x)
				a.q.Add(x)
				a.h.Add(x)
			}
		}
		if parallel {
			wg.Add(1)
			go func(a *shardAccs, part []float64) {
				defer wg.Done()
				fill(a, part)
			}(accs[s], xs[lo:hi:hi])
		} else {
			fill(accs[s], xs[lo:hi:hi])
		}
	}
	wg.Wait()
	return accs
}

// mergeShards combines shard accumulators in index order.
func mergeShards(accs []*shardAccs) *shardAccs {
	out := accs[0]
	for _, a := range accs[1:] {
		out.m.Merge(&a.m)
		out.q.Merge(&a.q)
		out.h.Merge(&a.h)
	}
	return out
}

// TestShardedMergeBitIdentical is the determinism contract of the sweep
// engine: with a fixed shard partition, filling the shards concurrently
// and merging in shard-index order yields state bit-identical to filling
// them one after another — for every accumulator type. Under -race this
// also proves the concurrent fill is data-race free.
func TestShardedMergeBitIdentical(t *testing.T) {
	for name, xs := range sampleSets() {
		for _, shards := range []int{1, 2, 7} {
			serial := mergeShards(fillShards(xs, shards, false))
			conc := mergeShards(fillShards(xs, shards, true))
			if serial.m != conc.m {
				t.Errorf("%s/%d shards: moments differ: %+v vs %+v", name, shards, conc.m, serial.m)
			}
			if !reflect.DeepEqual(serial.q, conc.q) {
				t.Errorf("%s/%d shards: sketch state differs", name, shards)
			}
			if !reflect.DeepEqual(serial.h, conc.h) {
				t.Errorf("%s/%d shards: hist state differs", name, shards)
			}
		}
	}
}

// TestMomentsMergeAccuracy: Chan's pairwise merge reorders the floating
// point ops relative to one long Welford fold, so cross-structure results
// agree only to rounding — which is all downstream reporting needs.
func TestMomentsMergeAccuracy(t *testing.T) {
	for name, xs := range sampleSets() {
		var flat Moments
		for _, x := range xs {
			flat.Add(x)
		}
		for _, shards := range []int{2, 7} {
			merged := mergeShards(fillShards(xs, shards, true))
			if math.Abs(merged.m.Mean()-flat.Mean()) > 1e-9 {
				t.Errorf("%s/%d shards: mean %g vs %g", name, shards, merged.m.Mean(), flat.Mean())
			}
			if math.Abs(merged.m.StdDev()-flat.StdDev()) > 1e-9 {
				t.Errorf("%s/%d shards: stddev %g vs %g", name, shards, merged.m.StdDev(), flat.StdDev())
			}
			if merged.m.N() != flat.N() {
				t.Errorf("%s/%d shards: n %d vs %d", name, shards, merged.m.N(), flat.N())
			}
		}
	}
}

func sketchTolerance(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	// A collapsed sketch quantizes to (range / bins); merges can cost a
	// few extra bin widths of resolution.
	return 8*(hi-lo)/float64(sketchBins) + 1e-12
}

// TestSketchExactRegimeBitIdentical: below the exact-buffer threshold the
// sketch must return precisely what the batch Quantile helper returns.
func TestSketchExactRegimeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, sketchExactMax)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 13
	}
	var s QuantileSketch
	for _, x := range xs {
		s.Add(x)
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got, want := s.Quantile(q), Quantile(xs, q); got != want {
			t.Fatalf("exact regime q=%g: sketch %v != batch %v", q, got, want)
		}
	}
}

// TestSketchErrorBounds: in the collapsed regime the sketch must land
// within a few bin widths of the exact value, or — where interpolation
// across an empty region makes value distance meaningless (the bimodal
// median) — within 2% rank error, the standard sketch guarantee.
func TestSketchErrorBounds(t *testing.T) {
	for name, xs := range sampleSets() {
		var s QuantileSketch
		for _, x := range xs {
			s.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		tol := sketchTolerance(xs)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			got, want := s.Quantile(q), Quantile(xs, q)
			if math.Abs(got-want) <= tol {
				continue
			}
			rankLo := float64(sort.SearchFloat64s(sorted, got-tol)) / float64(len(sorted))
			rankHi := float64(sort.SearchFloat64s(sorted, got+tol)) / float64(len(sorted))
			if q < rankLo-0.02 || q > rankHi+0.02 {
				t.Errorf("%s q=%g: sketch %g, exact %g, value tol %g, rank [%g,%g]",
					name, q, got, want, tol, rankLo, rankHi)
			}
		}
	}
}

func TestSketchMergeExactBuffersStayExact(t *testing.T) {
	var a, b QuantileSketch
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = float64((i * 37) % 600)
		if i < 300 {
			a.Add(xs[i])
		} else {
			b.Add(xs[i])
		}
	}
	a.Merge(&b)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got, want := a.Quantile(q), Quantile(xs, q); got != want {
			t.Fatalf("merged exact sketch q=%g: %g want %g", q, got, want)
		}
	}
}

func TestHistAtAndMerge(t *testing.T) {
	h := NewHist(1.0)
	for _, x := range []float64{0.5, 1.5, 1.6, 2.5, 9} {
		h.Add(x)
	}
	if got := h.At(2); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("At(2) = %g, want 0.6", got)
	}
	if got := h.At(100); got != 1 {
		t.Fatalf("At(100) = %g, want 1", got)
	}
	o := NewHist(2.0)
	defer func() {
		if recover() == nil {
			t.Fatalf("merging mismatched widths should panic")
		}
	}()
	h.Merge(o)
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	for name, xs := range sampleSets() {
		qs := []float64{0, 0.1, 0.5, 0.9, 1}
		got := Quantiles(xs, qs...)
		for i, q := range qs {
			if want := Quantile(xs, q); got[i] != want {
				t.Errorf("%s q=%g: Quantiles %v != Quantile %v", name, q, got[i], want)
			}
		}
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Errorf("empty input: got %v", got)
	}
	// Quantiles must not mutate its input.
	xs := []float64{3, 1, 2}
	Quantiles(xs, 0.5)
	if !sort.Float64sAreSorted([]float64{xs[0]}) || xs[0] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}
