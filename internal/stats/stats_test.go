package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	// Sample stddev of this classic set is ~2.138.
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.01 {
		t.Fatalf("stddev %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := []float64{1, 2, 3, 4, 5}
	var big []float64
	for i := 0; i < 20; i++ {
		big = append(big, small...)
	}
	if CI95(big) >= CI95(small) {
		t.Fatalf("CI did not shrink: %v vs %v", CI95(big), CI95(small))
	}
}

func TestQuantileExactPoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 0.25: 20, 0.5: 30, 0.75: 40, 1: 50}
	for q, want := range cases {
		if got := Quantile(xs, q); got != want {
			t.Fatalf("q%.2f = %v, want %v", q, got, want)
		}
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Fatalf("interpolated median %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantileProperties(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return Quantile(xs, 0.5) == 0
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		med := Quantile(xs, 0.5)
		if med < sorted[0] || med > sorted[len(sorted)-1] {
			return false
		}
		// Monotone in q.
		return Quantile(xs, 0.25) <= med && med <= Quantile(xs, 0.75)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxSummary(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 100})
	if b.Min != 1 || b.Max != 100 || b.Median != 3 || b.N != 5 {
		t.Fatalf("%+v", b)
	}
	if b.Mean != 22 {
		t.Fatalf("mean %v", b.Mean)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles %v %v", b.Q1, b.Q3)
	}
	if z := Box(nil); z.N != 0 {
		t.Fatal("empty box")
	}
}

// TestBoxMatchesQuantiles pins the single-sort Box to the reference
// per-quantile computation, on unsorted input, without mutating it.
func TestBoxMatchesQuantiles(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		orig := append([]float64(nil), xs...)
		b := Box(xs)
		for i := range xs {
			if xs[i] != orig[i] {
				return false // input mutated
			}
		}
		if len(xs) == 0 {
			return b == BoxPlot{}
		}
		return b.Min == Quantile(xs, 0) &&
			b.Q1 == Quantile(xs, 0.25) &&
			b.Median == Quantile(xs, 0.5) &&
			b.Q3 == Quantile(xs, 0.75) &&
			b.Max == Quantile(xs, 1) &&
			b.Mean == Mean(xs) &&
			b.N == len(xs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.At(0) != 0 {
		t.Fatalf("At(0) = %v", c.At(0))
	}
	if c.At(2) != 0.6 {
		t.Fatalf("At(2) = %v", c.At(2))
	}
	if c.At(10) != 1 || c.At(100) != 1 {
		t.Fatal("upper tail")
	}
	if c.Inverse(0) != 1 || c.Inverse(1) != 10 {
		t.Fatal("inverse extremes")
	}
	if c.Len() != 5 {
		t.Fatal("len")
	}
}

func TestCDFMonotone(t *testing.T) {
	check := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		c := NewCDF(xs)
		prev := -1.0
		for _, x := range []float64{-1e9, -1, 0, 1, 1e9} {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinSeries(t *testing.T) {
	s := NewBinSeries(1.0)
	s.Add(0.2, 5)
	s.Add(0.9, 5)
	s.Add(2.5, 7)
	s.Add(-1, 99) // ignored
	if len(s.Bins) != 3 {
		t.Fatalf("bins %v", s.Bins)
	}
	if s.Bins[0] != 10 || s.Bins[1] != 0 || s.Bins[2] != 7 {
		t.Fatalf("bins %v", s.Bins)
	}
	s.MeanOver(2)
	if s.Bins[0] != 5 {
		t.Fatalf("mean over: %v", s.Bins)
	}
}

func TestRelDiff(t *testing.T) {
	if RelDiff(110, 100) != 10 {
		t.Fatal("positive")
	}
	if RelDiff(90, 100) != -10 {
		t.Fatal("negative")
	}
	if RelDiff(5, 0) != 0 {
		t.Fatal("zero denominator")
	}
}
