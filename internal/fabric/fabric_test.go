// Integration tests for the sweep fabric. The worker processes are
// re-execs of this test binary: TestMain diverts into WorkerMain when
// the SPDYSIM_FABRIC_WORKER gate is set, so the tests exercise the real
// spawn/frame/respawn machinery end to end.
package fabric

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"spdier/internal/browser"
	"spdier/internal/experiment"
	"spdier/internal/webpage"
)

func TestMain(m *testing.M) {
	if os.Getenv("SPDYSIM_FABRIC_WORKER") == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout))
	}
	os.Exit(m.Run())
}

// testCondition is the shared sweep the integration tests compare
// across execution paths: small site slice so a shard folds in well
// under a second even with -race.
func testCondition(runs int) (experiment.Harness, experiment.Options) {
	h := experiment.Harness{Runs: runs, Seed: 1}
	base := experiment.Options{
		Mode:    browser.ModeHTTP,
		Network: experiment.NetWiFi,
		Sites:   webpage.Table1()[:2],
	}
	return h, base
}

func newPLTShard(t testing.TB) func() experiment.Folder {
	t.Helper()
	if _, ok := experiment.NewFolder("plt"); !ok {
		t.Fatal(`folder "plt" not registered`)
	}
	return func() experiment.Folder {
		f, _ := experiment.NewFolder("plt")
		return f
	}
}

// encodeSweep runs the sweep on r and returns the folded accumulator's
// canonical bytes — the unit of the fabric's bit-identity contract.
func encodeSweep(t testing.TB, r *experiment.Runner, runs int) []byte {
	t.Helper()
	h, base := testCondition(runs)
	f := r.SweepStream(h, base, newPLTShard(t))
	enc, err := experiment.EncodeFolder(f)
	if err != nil {
		t.Fatalf("encoding sweep result: %v", err)
	}
	return enc
}

func newTestCoordinator(t testing.TB, cfg Config) *Coordinator {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg.WorkerCmd = []string{exe}
	cfg.WorkerEnv = append(cfg.WorkerEnv, "SPDYSIM_FABRIC_WORKER=1")
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFabricBitEquality is the fabric's headline contract: the merged
// accumulator bytes are identical to the in-process engine at every
// worker count, and every shard actually travelled through a worker
// process.
func TestFabricBitEquality(t *testing.T) {
	const runs = 48
	want := encodeSweep(t, experiment.NewRunner(1), runs)
	for _, workers := range []int{1, 3, 8} {
		var progress atomic.Int64
		c := newTestCoordinator(t, Config{
			Workers:    workers,
			OnProgress: func(n int) { progress.Add(int64(n)) },
		})
		r := experiment.NewRunner(0)
		r.SetShardExecutor(c)
		got := encodeSweep(t, r, runs)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: fabric bytes differ from in-process (%d vs %d bytes)", workers, len(got), len(want))
		}
		if st := c.Stats(); st.ShardsRemote != experiment.ShardCount(runs) {
			t.Errorf("workers=%d: %d of %d shards went remote", workers, st.ShardsRemote, experiment.ShardCount(runs))
		}
		if progress.Load() != runs {
			t.Errorf("workers=%d: progress frames credited %d runs, want %d", workers, progress.Load(), runs)
		}
	}
}

// TestFabricWorkerKill SIGKILLs a worker mid-shard and asserts the
// coordinator respawns a replacement and the sweep still completes
// byte-identically.
func TestFabricWorkerKill(t *testing.T) {
	const runs = 64
	want := encodeSweep(t, experiment.NewRunner(1), runs)
	c := newTestCoordinator(t, Config{Workers: 2})
	r := experiment.NewRunner(0)
	r.SetShardExecutor(c)

	killed := make(chan int, 1)
	go func() {
		// Kill the first worker that appears; at that moment its first
		// shard job is already on its stdin.
		for i := 0; i < 2000; i++ {
			if pids := c.WorkerPIDs(); len(pids) > 0 {
				syscall.Kill(pids[0], syscall.SIGKILL)
				killed <- pids[0]
				return
			}
			time.Sleep(time.Millisecond)
		}
		killed <- 0
	}()

	got := encodeSweep(t, r, runs)
	if pid := <-killed; pid == 0 {
		t.Fatal("no worker PID ever appeared; nothing was killed")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fabric bytes differ from in-process after worker kill")
	}
	if st := c.Stats(); st.Respawns < 1 {
		t.Errorf("killed a worker mid-shard but Respawns = %d", st.Respawns)
	}
}

// TestFabricResume checkpoints a sweep, hand-truncates the journal to
// simulate a coordinator killed mid-sweep, and asserts a resumed run
// replays exactly the journaled shards, recomputes only the missing
// ones, and produces the same bytes.
func TestFabricResume(t *testing.T) {
	const runs = 48
	dir := t.TempDir()
	want := encodeSweep(t, experiment.NewRunner(1), runs)
	shards := experiment.ShardCount(runs)

	c1 := newTestCoordinator(t, Config{Workers: 2, CheckpointDir: dir})
	r1 := experiment.NewRunner(0)
	r1.SetShardExecutor(c1)
	if got := encodeSweep(t, r1, runs); !bytes.Equal(got, want) {
		t.Fatal("checkpointed sweep bytes differ from in-process")
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a coordinator killed after one shard: keep the header and
	// the first record, drop the rest (plus a torn half-record, which
	// resume must tolerate).
	matches, err := filepath.Glob(filepath.Join(dir, "sweep-*.journal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one journal in %s, got %v (err %v)", dir, matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < shards+1 {
		t.Fatalf("journal has %d lines, want header + %d records", len(lines), shards)
	}
	truncated := append([]byte{}, lines[0]...)
	truncated = append(truncated, lines[1]...)
	truncated = append(truncated, lines[2][:len(lines[2])/2]...) // torn tail
	if err := os.WriteFile(matches[0], truncated, 0o666); err != nil {
		t.Fatal(err)
	}

	var progress atomic.Int64
	c2 := newTestCoordinator(t, Config{
		Workers:       2,
		CheckpointDir: dir,
		Resume:        true,
		OnProgress:    func(n int) { progress.Add(int64(n)) },
	})
	r2 := experiment.NewRunner(0)
	r2.SetShardExecutor(c2)
	got := encodeSweep(t, r2, runs)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed sweep bytes differ from in-process")
	}
	st := c2.Stats()
	if st.ShardsReplayed != 1 {
		t.Errorf("resume replayed %d shards, want 1 (the surviving journal record)", st.ShardsReplayed)
	}
	if st.ShardsRemote != shards-1 {
		t.Errorf("resume recomputed %d shards, want %d (only the missing ones)", st.ShardsRemote, shards-1)
	}
	if progress.Load() != runs {
		t.Errorf("resume credited %d runs of progress, want %d (replayed + recomputed)", progress.Load(), runs)
	}

	// A second resume replays everything: the journal was repaired and
	// completed by the first resume.
	c3 := newTestCoordinator(t, Config{Workers: 1, CheckpointDir: dir, Resume: true})
	r3 := experiment.NewRunner(0)
	r3.SetShardExecutor(c3)
	if got := encodeSweep(t, r3, runs); !bytes.Equal(got, want) {
		t.Errorf("second resume bytes differ from in-process")
	}
	if st := c3.Stats(); st.ShardsReplayed != shards || st.ShardsRemote != 0 {
		t.Errorf("second resume: replayed %d / remote %d, want %d / 0", st.ShardsReplayed, st.ShardsRemote, shards)
	}
}

// TestJournalRefusesForeignSweep guards the fingerprint check: a journal
// written for one sweep must not resume another.
func TestJournalRefusesForeignSweep(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "aaaabbbbccccdddd0000", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, "fp0", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Same 16-char filename prefix, different full fingerprint: the
	// header check must reject it.
	if _, err := OpenJournal(dir, "aaaabbbbccccdddd1111", true); err == nil {
		t.Fatal("journal resumed against a different sweep fingerprint")
	}
}

// TestWirePipe sanity-checks the frame codec over an in-memory pipe.
func TestWirePipe(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"runs":1}`)
	if err := writeFrame(&buf, msgProgress, payload); err != nil {
		t.Fatal(err)
	}
	fr, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.typ != msgProgress || !bytes.Equal(fr.payload, payload) {
		t.Fatalf("frame round trip mangled: type %d payload %q", fr.typ, fr.payload)
	}
	// Corrupt a payload byte: the checksum must catch it.
	if err := writeFrame(&buf, msgProgress, payload); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-6] ^= 0xff
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted frame passed the checksum")
	}
}
