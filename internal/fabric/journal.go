// The checkpoint journal: an append-only on-disk manifest of completed
// shards, one JSON line per record, fronted by a header naming the
// sweep fingerprint it belongs to. A resumed coordinator replays the
// journal and re-runs only the missing shards; records are keyed by a
// per-shard input fingerprint, so a journal written against different
// inputs (other seeds, runs, options or folder) can never be replayed
// into the wrong sweep. Each record is fsynced as it lands: a
// SIGKILLed coordinator loses at most the shard in flight, and a
// half-written tail line is detected and truncated away on reopen.
package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

const journalVersion = 1

type journalHeader struct {
	V     int    `json:"v"`
	Sweep string `json:"sweep"`
}

type journalRecord struct {
	Shard       int    `json:"shard"`
	Fingerprint string `json:"fp"`
	Agg         []byte `json:"agg"`
}

// Journal is the on-disk checkpoint manifest for one sweep. Safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[int]journalRecord
}

// journalPath derives the manifest filename from the sweep fingerprint,
// so distinct sweeps sharing one checkpoint directory never collide and
// -resume naturally finds only its own journal.
func journalPath(dir, sweepFP string) string {
	short := sweepFP
	if len(short) > 16 {
		short = short[:16]
	}
	return filepath.Join(dir, "sweep-"+short+".journal")
}

// OpenJournal opens the manifest for sweepFP under dir. With resume
// false any existing manifest is truncated (a fresh sweep); with resume
// true existing records are loaded for replay, tolerating a torn tail
// line from a killed coordinator. A manifest whose header names a
// different sweep fingerprint is an error, never silently reused.
func OpenJournal(dir, sweepFP string, resume bool) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	path := journalPath(dir, sweepFP)
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o666)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, entries: map[int]journalRecord{}}
	if resume {
		if err := j.load(sweepFP); err != nil {
			f.Close()
			return nil, err
		}
	}
	if len(j.entries) == 0 && !j.hasHeader() {
		if err := j.writeHeader(sweepFP); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// hasHeader reports whether the file already starts with a header (set
// during load); a fresh or truncated file needs one written.
func (j *Journal) hasHeader() bool {
	st, err := j.f.Stat()
	return err == nil && st.Size() > 0
}

func (j *Journal) writeHeader(sweepFP string) error {
	line, err := json.Marshal(journalHeader{V: journalVersion, Sweep: sweepFP})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// load replays the manifest: header first, then records until EOF or
// the first torn line, which is truncated away so subsequent appends
// start at a clean boundary.
func (j *Journal) load(sweepFP string) error {
	st, err := j.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return nil
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return err
	}
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 64<<10), maxFramePayload)
	var valid int64
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			var hdr journalHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return fmt.Errorf("fabric: journal %s has no parsable header: %w", j.f.Name(), err)
			}
			if hdr.V != journalVersion {
				return fmt.Errorf("fabric: journal %s has version %d, want %d", j.f.Name(), hdr.V, journalVersion)
			}
			if hdr.Sweep != sweepFP {
				return fmt.Errorf("fabric: journal %s belongs to sweep %.16s…, not %.16s… — refusing to resume against changed inputs",
					j.f.Name(), hdr.Sweep, sweepFP)
			}
			first = false
			valid += int64(len(line)) + 1
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail from a killed coordinator; truncate below
		}
		j.entries[rec.Shard] = rec
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && valid == 0 {
		return err
	}
	if valid < st.Size() {
		if err := j.f.Truncate(valid); err != nil {
			return err
		}
	}
	_, err = j.f.Seek(valid, 0)
	return err
}

// Lookup returns the journaled aggregate for shard, provided the
// record's input fingerprint matches the one expected now.
func (j *Journal) Lookup(shard int, fingerprint string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.entries[shard]
	if !ok || rec.Fingerprint != fingerprint {
		return nil, false
	}
	return rec.Agg, true
}

// Len reports how many shards the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Append journals one completed shard and fsyncs it durable.
func (j *Journal) Append(shard int, fingerprint string, agg []byte) error {
	rec := journalRecord{Shard: shard, Fingerprint: fingerprint, Agg: agg}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.entries[shard] = rec
	return nil
}

// Close releases the manifest file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
