// The worker side of the fabric: a hidden re-exec mode of the current
// binary (`spdysim -fabric-worker`, or a test binary under an env
// gate). A worker reads job frames from stdin, folds the assigned shard
// with exactly the in-process engine's FillShard, and streams progress
// and the encoded shard aggregate back on stdout. The loop is
// deterministic and wallclock-clean — it never reads real time — so a
// shard computed here is bit-identical to one computed in-process;
// only the coordinator touches deadlines.
package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"spdier/internal/experiment"
)

// WorkerMain runs the worker loop until stdin closes (the coordinator
// exiting or discarding the worker) or a shutdown frame arrives, and
// returns the process exit code. Job failures are reported as error
// frames, not exits: a worker only dies on a protocol breakdown, which
// the coordinator answers with a respawn.
func WorkerMain(in io.Reader, out io.Writer) int {
	br := bufio.NewReader(in)
	bw := bufio.NewWriter(out)
	for {
		fr, err := readFrame(br)
		if err == io.EOF {
			return 0
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabric worker: %v\n", err)
			return 1
		}
		switch fr.typ {
		case msgShutdown:
			return 0
		case msgJob:
			var job jobSpec
			if err := json.Unmarshal(fr.payload, &job); err != nil {
				fmt.Fprintf(os.Stderr, "fabric worker: bad job payload: %v\n", err)
				return 1
			}
			if err := runJob(bw, job); err != nil {
				payload, _ := json.Marshal(errorMsg{Msg: err.Error()})
				if werr := writeFrame(bw, msgError, payload); werr != nil {
					return 1
				}
				if bw.Flush() != nil {
					return 1
				}
			}
		default:
			// Unknown frame types from a newer coordinator are skipped so
			// version skew degrades to per-shard errors, not worker death.
		}
	}
}

// runJob folds one shard and streams the result frame. A progress frame
// follows every folded run; the coordinator uses them both for -progress
// aggregation and as the liveness signal its no-progress deadline
// watches.
func runJob(bw *bufio.Writer, job jobSpec) error {
	f, ok := experiment.NewFolder(job.Folder)
	if !ok {
		return fmt.Errorf("folder %q not registered in this binary", job.Folder)
	}
	if shards := experiment.ShardCount(job.Runs); job.Shard < 0 || job.Shard >= shards {
		return fmt.Errorf("shard %d out of range (sweep has %d)", job.Shard, shards)
	}
	// Parallelism 1: worker processes are the fan-out; inside one shard
	// the fold order must stay the serial seed order.
	r := experiment.NewRunner(1)
	h := experiment.Harness{Runs: job.Runs, Seed: job.Seed}
	progress, _ := json.Marshal(progressMsg{Runs: 1})
	r.FillShard(h, job.Opts, job.Shard, f, func() {
		// Write errors surface at the final flush; the fold itself must
		// not be interrupted mid-shard.
		_ = writeFrame(bw, msgProgress, progress)
		_ = bw.Flush()
	})
	agg, err := experiment.EncodeFolder(f)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(shardResult{Shard: job.Shard, Fingerprint: job.Fingerprint, Agg: agg})
	if err != nil {
		return err
	}
	if err := writeFrame(bw, msgResult, payload); err != nil {
		return err
	}
	return bw.Flush()
}
