// The coordinator side of the fabric: the one file in this package that
// owns real time, processes and deadlines. It implements
// experiment.ShardExecutor over a pool of worker processes, so plugging
// it into a Runner routes SweepStream shards through workers while the
// merge (and therefore the bytes of every report) stays exactly the
// in-process engine's shard-order merge.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spdier/internal/experiment"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Workers is the worker-process pool size (<= 0 selects 1).
	Workers int
	// WorkerCmd re-execs the worker: argv[0] plus arguments that put the
	// binary into worker mode (e.g. the current binary with
	// -fabric-worker). Required.
	WorkerCmd []string
	// WorkerEnv appends extra variables to the inherited environment.
	WorkerEnv []string
	// CheckpointDir, when non-empty, journals completed shards for
	// -resume. Empty disables checkpointing.
	CheckpointDir string
	// Resume replays an existing journal instead of truncating it.
	Resume bool
	// ShardTimeout bounds how long a shard may go without a progress
	// frame before its worker is declared hung and respawned (<= 0
	// selects 2 minutes). It is a liveness deadline, not a duration
	// budget: any progress resets it.
	ShardTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per shard before the shard
	// falls back in-process (<= 0 selects 3).
	MaxAttempts int
	// OnProgress, when non-nil, receives run-completion counts from
	// worker progress frames and journal replays.
	OnProgress func(runs int)
	// Stderr receives worker stderr and coordinator diagnostics (nil
	// selects os.Stderr).
	Stderr io.Writer
}

// Stats counts what the fabric did during a sweep.
type Stats struct {
	ShardsRemote   int // shards computed by worker processes
	ShardsReplayed int // shards replayed from the checkpoint journal
	Respawns       int // workers killed and replaced (hang or exit)
}

// worker is one live worker process plus its frame-reader goroutine.
type worker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	frames chan frame
	// readErr is set (before frames closes) when the reader goroutine
	// stops on anything but a clean EOF.
	readErrMu sync.Mutex
	readErr   error
}

func (w *worker) readError() error {
	w.readErrMu.Lock()
	defer w.readErrMu.Unlock()
	return w.readErr
}

// Coordinator fans SweepStream shards out to worker processes. It is
// safe for concurrent ExecuteShard calls (SweepStream dispatches shards
// from its worker-pool goroutines).
type Coordinator struct {
	cfg Config

	// slots is the worker pool: capacity cfg.Workers, pre-filled with
	// nil tokens. A nil token is the right to spawn a worker; a non-nil
	// token is a live idle worker. Acquire by receive, release by send.
	slots chan *worker

	mu       sync.Mutex
	live     map[*worker]bool
	journals map[string]*Journal
	closed   bool

	shardsRemote   atomic.Int64
	shardsReplayed atomic.Int64
	respawns       atomic.Int64
}

// NewCoordinator validates cfg and builds the (lazily spawned) pool.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.WorkerCmd) == 0 {
		return nil, fmt.Errorf("fabric: Config.WorkerCmd is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	c := &Coordinator{
		cfg:      cfg,
		slots:    make(chan *worker, cfg.Workers),
		live:     map[*worker]bool{},
		journals: map[string]*Journal{},
	}
	for i := 0; i < cfg.Workers; i++ {
		c.slots <- nil
	}
	return c, nil
}

// Workers reports the configured pool size.
func (c *Coordinator) Workers() int { return c.cfg.Workers }

// Stats snapshots the fabric counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		ShardsRemote:   int(c.shardsRemote.Load()),
		ShardsReplayed: int(c.shardsReplayed.Load()),
		Respawns:       int(c.respawns.Load()),
	}
}

// WorkerPIDs snapshots the PIDs of live worker processes (tests use it
// to kill one mid-shard).
func (c *Coordinator) WorkerPIDs() []int {
	c.mu.Lock()
	var pids []int
	for w := range c.live {
		if w.cmd.Process != nil {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	c.mu.Unlock()
	sort.Ints(pids)
	return pids
}

// sweepFingerprint keys the checkpoint journal: it covers everything
// that determines a sweep's bytes — the canonical condition encoding,
// the folder, and the seed space.
func sweepFingerprint(key, folder string, runs int, seed uint64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v1|%s|folder=%s|runs=%d|seed=%d", key, folder, runs, seed)))
	return hex.EncodeToString(sum[:])
}

// shardFingerprint keys one journal record.
func shardFingerprint(sweepFP string, shard int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|shard=%d", sweepFP, shard)))
	return hex.EncodeToString(sum[:])
}

// journalFor lazily opens (once) the journal for a sweep fingerprint.
// Returns nil when checkpointing is disabled or the journal cannot be
// opened (the sweep still runs, just without a checkpoint).
func (c *Coordinator) journalFor(sweepFP string) *Journal {
	if c.cfg.CheckpointDir == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.journals[sweepFP]; ok {
		return j
	}
	j, err := OpenJournal(c.cfg.CheckpointDir, sweepFP, c.cfg.Resume)
	if err != nil {
		fmt.Fprintf(c.cfg.Stderr, "fabric: checkpoint disabled for sweep %.16s…: %v\n", sweepFP, err)
		j = nil
	}
	c.journals[sweepFP] = j
	return j
}

// ExecuteShard implements experiment.ShardExecutor: replay the shard
// from the journal if possible, otherwise dispatch it to a worker,
// journal the result, and decode it. Returns nil to decline — the sweep
// then folds that shard in-process, so fabric failures degrade to
// slower, never to wrong or missing results.
func (c *Coordinator) ExecuteShard(h experiment.Harness, base experiment.Options, shard int, newShard func() experiment.Folder) experiment.Folder {
	name, ok := experiment.FolderName(newShard())
	if !ok {
		return nil // unregistered accumulator; only in-process can fold it
	}
	key, ok := experiment.CacheKey(base)
	if !ok {
		return nil // non-canonical condition (explicit Pages); not shippable
	}
	sweepFP := sweepFingerprint(key, name, h.Runs, h.Seed)
	shardFP := shardFingerprint(sweepFP, shard)
	lo, hi := experiment.ShardRange(h.Runs, shard)

	journal := c.journalFor(sweepFP)
	if journal != nil {
		if agg, ok := journal.Lookup(shard, shardFP); ok {
			f, err := experiment.DecodeFolder(name, agg)
			if err != nil {
				fmt.Fprintf(c.cfg.Stderr, "fabric: journal replay of shard %d failed: %v\n", shard, err)
			} else {
				c.shardsReplayed.Add(1)
				if c.cfg.OnProgress != nil {
					c.cfg.OnProgress(hi - lo)
				}
				return f
			}
		}
	}

	payload, err := json.Marshal(jobSpec{
		Shard: shard, Runs: h.Runs, Seed: h.Seed,
		Folder: name, Fingerprint: shardFP, Opts: base,
	})
	if err != nil {
		return nil
	}

	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		w, err := c.acquire()
		if err != nil {
			fmt.Fprintf(c.cfg.Stderr, "fabric: cannot spawn worker: %v\n", err)
			return nil
		}
		if w == nil {
			return nil // coordinator closed
		}
		agg, err := c.runJob(w, payload)
		if err != nil {
			fmt.Fprintf(c.cfg.Stderr, "fabric: shard %d attempt %d/%d: %v\n", shard, attempt, c.cfg.MaxAttempts, err)
			c.discard(w)
			continue
		}
		c.release(w)
		f, err := experiment.DecodeFolder(name, agg)
		if err != nil {
			fmt.Fprintf(c.cfg.Stderr, "fabric: shard %d result undecodable: %v\n", shard, err)
			return nil
		}
		if journal != nil {
			if err := journal.Append(shard, shardFP, agg); err != nil {
				fmt.Fprintf(c.cfg.Stderr, "fabric: journaling shard %d failed: %v\n", shard, err)
			}
		}
		c.shardsRemote.Add(1)
		return f
	}
	fmt.Fprintf(c.cfg.Stderr, "fabric: shard %d exhausted %d attempts; folding in-process\n", shard, c.cfg.MaxAttempts)
	return nil
}

// runJob sends one job to a worker and waits for its result, treating
// progress frames as liveness: the deadline resets on every one, so a
// slow shard survives but a hung or dead worker is detected.
func (c *Coordinator) runJob(w *worker, payload []byte) ([]byte, error) {
	if err := writeFrame(w.stdin, msgJob, payload); err != nil {
		return nil, fmt.Errorf("sending job: %w", err)
	}
	timer := time.NewTimer(c.cfg.ShardTimeout)
	defer timer.Stop()
	for {
		select {
		case fr, ok := <-w.frames:
			if !ok {
				if err := w.readError(); err != nil {
					return nil, fmt.Errorf("worker exited: %w", err)
				}
				return nil, fmt.Errorf("worker exited")
			}
			switch fr.typ {
			case msgProgress:
				var p progressMsg
				if json.Unmarshal(fr.payload, &p) == nil && c.cfg.OnProgress != nil {
					c.cfg.OnProgress(p.Runs)
				}
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(c.cfg.ShardTimeout)
			case msgResult:
				var res shardResult
				if err := json.Unmarshal(fr.payload, &res); err != nil {
					return nil, fmt.Errorf("bad result payload: %w", err)
				}
				return res.Agg, nil
			case msgError:
				var em errorMsg
				_ = json.Unmarshal(fr.payload, &em)
				return nil, fmt.Errorf("worker reported: %s", em.Msg)
			}
		case <-timer.C:
			return nil, fmt.Errorf("no progress for %v (hung worker?)", c.cfg.ShardTimeout)
		}
	}
}

// acquire takes a pool token, spawning a worker if the token is nil.
// Returns (nil, nil) when the coordinator is closed.
func (c *Coordinator) acquire() (*worker, error) {
	w := <-c.slots
	if w != nil {
		return w, nil
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		c.slots <- nil
		return nil, nil
	}
	w, err := c.spawn()
	if err != nil {
		c.slots <- nil // return the spawn right; another attempt may succeed
		return nil, err
	}
	return w, nil
}

// release returns a healthy worker to the pool.
func (c *Coordinator) release(w *worker) {
	c.slots <- w
}

// discard kills a misbehaving worker and returns its slot as a spawn
// token, so the next acquire replaces it.
func (c *Coordinator) discard(w *worker) {
	c.kill(w)
	c.respawns.Add(1)
	c.slots <- nil
}

// spawn starts one worker process and its frame-reader goroutine.
func (c *Coordinator) spawn() (*worker, error) {
	cmd := exec.Command(c.cfg.WorkerCmd[0], c.cfg.WorkerCmd[1:]...)
	cmd.Env = append(os.Environ(), c.cfg.WorkerEnv...)
	cmd.Stderr = c.cfg.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &worker{cmd: cmd, stdin: stdin, frames: make(chan frame, 64)}
	go func() {
		for {
			fr, err := readFrame(stdout)
			if err != nil {
				if err != io.EOF {
					w.readErrMu.Lock()
					w.readErr = err
					w.readErrMu.Unlock()
				}
				close(w.frames)
				return
			}
			w.frames <- fr
		}
	}()
	c.mu.Lock()
	c.live[w] = true
	c.mu.Unlock()
	return w, nil
}

// kill tears one worker down: close its stdin, kill the process, drain
// the frame channel (unblocking the reader goroutine), and reap it.
func (c *Coordinator) kill(w *worker) {
	c.mu.Lock()
	delete(c.live, w)
	c.mu.Unlock()
	w.stdin.Close()
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
	for range w.frames {
	}
	_ = w.cmd.Wait()
}

// Close shuts the pool down: live workers are killed (they hold no
// unjournaled state — results are journaled as they land) and journals
// are closed. Safe to call once per coordinator.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	workers := make([]*worker, 0, len(c.live))
	for w := range c.live {
		workers = append(workers, w) //lint:allow maprange kill order is irrelevant: workers are independent processes
	}
	journals := make([]*Journal, 0, len(c.journals))
	for _, j := range c.journals {
		if j != nil {
			journals = append(journals, j) //lint:allow maprange close order is irrelevant: journals are independent files
		}
	}
	c.mu.Unlock()
	for _, w := range workers {
		c.kill(w)
	}
	var firstErr error
	for _, j := range journals {
		if err := j.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
