// Package fabric fans SweepStream shards out to worker processes: a
// coordinator partitions a sweep's seed space into the same fixed
// 16-run shards the in-process engine uses (experiment.ShardCount /
// ShardRange), spawns N re-execs of the current binary in a hidden
// worker mode, streams each completed shard's accumulator state back
// over a length-prefixed binary protocol on the worker's stdout pipe,
// and hands the decoded shards to SweepStream's shard-order merge — so
// the merged result is bit-identical to the single-process engine at
// any worker count. Completed shards are journaled to an on-disk
// checkpoint manifest keyed by an input fingerprint, so a killed sweep
// resumes by replaying the journal and re-running only missing shards;
// per-shard no-progress deadlines and worker respawn handle hung or
// died workers.
//
// Layering: worker.go and this file are on the deterministic side of
// the fence (no wall-clock time — enforced by simlint); coordinator.go
// alone owns real time, processes and deadlines.
package fabric

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"spdier/internal/experiment"
)

// Frame layout: magic(4) | type(1) | payloadLen(4) | payload | crc32(4),
// all little-endian; the checksum covers the payload only. The magic
// leads every frame so a worker that accidentally writes to stdout
// (a stray Print in an experiment) desynchronizes loudly instead of
// being parsed as a length.
const (
	frameMagic      = 0x31424653 // "SFB1" little-endian
	maxFramePayload = 64 << 20   // a shard aggregate is KBs; 64 MB is a corruption guard
)

// Frame types.
const (
	msgJob      byte = 1 // coordinator → worker: jobSpec
	msgResult   byte = 2 // worker → coordinator: shardResult
	msgProgress byte = 3 // worker → coordinator: progressMsg
	msgError    byte = 4 // worker → coordinator: errorMsg
	msgShutdown byte = 5 // coordinator → worker: clean exit
)

type frame struct {
	typ     byte
	payload []byte
}

// jobSpec assigns one shard of one sweep to a worker. Opts must be
// canonical (no explicit Pages) — the coordinator only dispatches
// cacheable conditions.
type jobSpec struct {
	Shard       int                `json:"shard"`
	Runs        int                `json:"runs"`
	Seed        uint64             `json:"seed"`
	Folder      string             `json:"folder"`
	Fingerprint string             `json:"fp"`
	Opts        experiment.Options `json:"opts"`
}

// shardResult carries a completed shard's encoded accumulator state.
type shardResult struct {
	Shard       int    `json:"shard"`
	Fingerprint string `json:"fp"`
	Agg         []byte `json:"agg"`
}

// progressMsg reports folded runs since the last report.
type progressMsg struct {
	Runs int `json:"runs"`
}

// errorMsg reports a failed job; the worker stays alive for the next.
type errorMsg struct {
	Msg string `json:"msg"`
}

// writeFrame emits one frame. Callers flush any buffering themselves.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("fabric: frame payload %d bytes exceeds limit", len(payload))
	}
	hdr := make([]byte, 9)
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

// readFrame consumes one frame, verifying magic, size and checksum.
// io.EOF is returned untouched at a clean frame boundary so callers can
// distinguish an orderly pipe close from a mid-frame truncation.
func readFrame(r io.Reader) (frame, error) {
	hdr := make([]byte, 9)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return frame{}, fmt.Errorf("fabric: truncated frame header")
		}
		return frame{}, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != frameMagic {
		return frame{}, fmt.Errorf("fabric: bad frame magic %#x (stray bytes on the pipe?)", m)
	}
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("fabric: frame payload %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, fmt.Errorf("fabric: truncated frame payload: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return frame{}, fmt.Errorf("fabric: truncated frame checksum: %w", err)
	}
	if got, want := binary.LittleEndian.Uint32(sum[:]), crc32.ChecksumIEEE(payload); got != want {
		return frame{}, fmt.Errorf("fabric: frame checksum mismatch (%#x != %#x)", got, want)
	}
	return frame{typ: hdr[4], payload: payload}, nil
}
