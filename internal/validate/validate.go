// Package validate is the differential track of the test pyramid: the
// same synthetic page workload is replayed twice — once through the
// discrete-event simulator (internal/browser + internal/proxy over an
// emulated path) and once through the real SPDY/3 wire (internal/spdy
// frames between internal/liveproxy's client, proxy and origin on
// loopback sockets) — and the two executions must agree on everything
// that is time-scale independent: which objects complete in which
// order, how many bytes each carries, and that one multiplexed session
// carried them all concurrently.
//
// The live wire is asynchronous, so the workload is engineered until
// its outcome is deterministic on both tracks: each page has exactly
// one object per SPDY priority class (strict priority then fully
// decides drain order), sizes are staircased at least two flow-control
// windows apart in priority order (so a lower-priority stream can never
// sneak out before a higher one even across scheduling jitter), and the
// live proxy holds its write loop behind a barrier until every response
// body is queued (so origin-fetch goroutine races cannot leak into the
// observable order).
package validate

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"spdier/internal/browser"
	"spdier/internal/liveproxy"
	"spdier/internal/netem"
	"spdier/internal/proxy"
	"spdier/internal/sim"
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// Object is one resource of a differential page.
type Object struct {
	Kind webpage.Kind
	Size int
}

// Path is the request path for the object: the live origin serves
// /size/<n> with a deterministic body, and the simulator treats the
// path as an opaque label, so using the size as the name keeps the two
// tracks trivially aligned.
func (o Object) Path() string { return fmt.Sprintf("/size/%d", o.Size) }

// Page is a self-validating workload: Objects[0] is the main HTML
// document; the rest are its direct subresources, one per priority
// class, sizes strictly increasing with priority number.
type Page struct {
	Name    string
	Objects []Object
}

// host is the synthetic domain both tracks request from.
const host = "site.test"

// Pages returns the differential corpus. Every page keeps one object
// per priority class (html=0, css=1, js=2, text=3, img=4). The main
// document fits in a single 64 KiB flow-control window (it drains first
// by priority alone, never parking); consecutive subresources are
// spaced at least two windows apart, so the completion order is pinned
// to the priority order on both tracks.
func Pages() []Page {
	return []Page{
		{Name: "five-class", Objects: []Object{
			{webpage.KindHTML, 32 << 10},
			{webpage.KindCSS, 64 << 10},
			{webpage.KindJS, 192 << 10},
			{webpage.KindText, 320 << 10},
			{webpage.KindImg, 448 << 10},
		}},
		{Name: "no-css", Objects: []Object{
			{webpage.KindHTML, 16 << 10},
			{webpage.KindJS, 80 << 10},
			{webpage.KindText, 224 << 10},
			{webpage.KindImg, 368 << 10},
		}},
		{Name: "script-heavy", Objects: []Object{
			{webpage.KindHTML, 48 << 10},
			{webpage.KindCSS, 96 << 10},
			{webpage.KindJS, 240 << 10},
			{webpage.KindImg, 400 << 10},
		}},
	}
}

// Replay is what one track observed, reduced to the properties the two
// tracks can be expected to share.
type Replay struct {
	// Order lists object paths in completion order.
	Order []string
	// Bytes maps each path to the response body size the client ended up
	// with (modeled size on the sim track, received-and-verified bytes on
	// the live track).
	Bytes map[string]int
	// Sessions is the number of transport connections used.
	Sessions int
	// Overlapped reports that every subresource request was outstanding
	// before the first subresource completed — the multiplexing SPDY
	// promises, as opposed to sequential request/response.
	Overlapped bool
}

// build converts a differential page into the simulator's page model:
// the main document reveals every subresource at once with no
// processing delay, mirroring the live track issuing all requests
// up front.
func (pg Page) build() *webpage.Page {
	objs := make([]*webpage.Object, len(pg.Objects))
	for i, o := range pg.Objects {
		parent, wave := 0, 1
		if i == 0 {
			parent, wave = -1, 0
		}
		objs[i] = &webpage.Object{
			ID:     i,
			Kind:   o.Kind,
			Size:   o.Size,
			Domain: host,
			Path:   o.Path(),
			Parent: parent,
			Wave:   wave,
		}
	}
	return &webpage.Page{Name: pg.Name, Category: "validate", Objects: objs}
}

// RunSim replays the page through the simulator: SPDY mode over a clean
// WiFi-profile path (loss zeroed — the oracle is about ordering, not
// recovery) against the fast origin model.
func RunSim(pg Page, seed uint64) (*Replay, error) {
	loop := sim.NewLoop()
	rng := sim.NewRNG(seed)
	pc := netem.ProfileWiFi()
	pc.Up.LossRate, pc.Down.LossRate = 0, 0
	path := netem.NewPath(loop, pc, rng.Fork(0xBEEF), nil)
	nw := tcpsim.NewNetwork(loop, path)
	origin := proxy.NewOrigin(loop, proxy.FastOriginConfig(), rng.Fork(0x0417))
	prox := proxy.New(loop, origin)
	cfg := browser.DefaultConfig(browser.ModeSPDY)
	cfg.Beacons = false
	br := browser.New(loop, nw, prox, cfg, rng.Fork(0xB0B))

	var rec *trace.PageRecord
	br.LoadPage(pg.build(), func(r *trace.PageRecord) { rec = r })
	loop.RunUntilIdle()
	if rec == nil {
		return nil, fmt.Errorf("validate: sim page %q never completed", pg.Name)
	}
	if rec.Aborted {
		return nil, fmt.Errorf("validate: sim page %q aborted by watchdog", pg.Name)
	}
	if len(rec.Objects) != len(pg.Objects) {
		return nil, fmt.Errorf("validate: sim page %q loaded %d objects, want %d",
			pg.Name, len(rec.Objects), len(pg.Objects))
	}

	ordered := append([]*trace.ObjectRecord(nil), rec.Objects...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Done < ordered[j].Done })
	rp := &Replay{Bytes: make(map[string]int, len(ordered))}
	conns := map[string]bool{}
	var lastSubReq, firstSubDone sim.Time
	for _, or := range ordered {
		rp.Order = append(rp.Order, or.Obj.Path)
		rp.Bytes[or.Obj.Path] = or.Obj.Size
		conns[or.ConnID] = true
		if or.Obj.Parent >= 0 {
			if or.Requested > lastSubReq {
				lastSubReq = or.Requested
			}
			if firstSubDone == 0 || or.Done < firstSubDone {
				firstSubDone = or.Done
			}
		}
	}
	rp.Sessions = len(conns)
	rp.Overlapped = lastSubReq < firstSubDone
	return rp, nil
}

// RunLive replays the page over real sockets: origin, SPDY proxy and
// client on loopback, every request issued up front on one session, the
// proxy's write barrier holding all responses until each is queued.
func RunLive(pg Page) (*Replay, error) {
	origin, err := liveproxy.StartOrigin("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer origin.Close()
	prox, err := liveproxy.StartSPDYProxy("127.0.0.1:0", origin.Addr())
	if err != nil {
		return nil, err
	}
	defer prox.Close()
	prox.SetBarrier(len(pg.Objects))
	client, err := liveproxy.DialSPDY(prox.Addr())
	if err != nil {
		return nil, err
	}
	defer client.Close()

	type pending struct {
		path  string
		sent  time.Time
		ch    <-chan liveproxy.FetchResult
		isSub bool
	}
	reqs := make([]pending, 0, len(pg.Objects))
	for i, o := range pg.Objects {
		ch, err := client.Get(host, o.Path(), spdy.PriorityForType(string(o.Kind)))
		if err != nil {
			return nil, fmt.Errorf("validate: live get %s: %w", o.Path(), err)
		}
		reqs = append(reqs, pending{path: o.Path(), sent: time.Now(), ch: ch, isSub: i > 0})
	}
	lastSent := reqs[len(reqs)-1].sent

	type completion struct {
		path      string
		bytes     int
		seq       int
		firstByte time.Time
		isSub     bool
	}
	comps := make([]completion, 0, len(reqs))
	for i, rq := range reqs {
		var res liveproxy.FetchResult
		select {
		case res = <-rq.ch:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("validate: live fetch %s timed out", rq.path)
		}
		if res.Err != nil {
			return nil, fmt.Errorf("validate: live fetch %s: %w", rq.path, res.Err)
		}
		if !bytes.Equal(res.Body, liveproxy.Body(pg.Objects[i].Size)) {
			return nil, fmt.Errorf("validate: live fetch %s: body corrupt (%d bytes)",
				rq.path, len(res.Body))
		}
		comps = append(comps, completion{
			path:      rq.path,
			bytes:     len(res.Body),
			seq:       res.Seq,
			firstByte: rq.sent.Add(res.FirstByte),
			isSub:     rq.isSub,
		})
	}

	// The client read loop stamps each stream with its session-wide
	// completion sequence in frame order, so sorting by Seq recovers the
	// exact wire-level completion order — no clock comparison involved.
	sort.Slice(comps, func(i, j int) bool { return comps[i].seq < comps[j].seq })
	rp := &Replay{Bytes: make(map[string]int, len(comps))}
	var earliestFirstByte time.Time
	for _, c := range comps {
		rp.Order = append(rp.Order, c.path)
		rp.Bytes[c.path] = c.bytes
		if earliestFirstByte.IsZero() || c.firstByte.Before(earliestFirstByte) {
			earliestFirstByte = c.firstByte
		}
	}
	sessions, streams := prox.Stats()
	rp.Sessions = sessions
	if streams != len(pg.Objects) {
		return nil, fmt.Errorf("validate: proxy served %d streams, want %d", streams, len(pg.Objects))
	}
	// Stronger than "outstanding before the first completion": behind the
	// write barrier, not even the first response byte may precede the
	// last request.
	rp.Overlapped = lastSent.Before(earliestFirstByte)
	return rp, nil
}

// Compare checks that the two replays agree on ordering, byte counts
// and multiplexing. It returns nil when the tracks agree.
func Compare(simR, liveR *Replay) error {
	if len(simR.Order) != len(liveR.Order) {
		return fmt.Errorf("object counts differ: sim %d, live %d", len(simR.Order), len(liveR.Order))
	}
	for i := range simR.Order {
		if simR.Order[i] != liveR.Order[i] {
			return fmt.Errorf("completion order diverges at position %d: sim %v, live %v",
				i, simR.Order, liveR.Order)
		}
	}
	for path, n := range simR.Bytes {
		if liveR.Bytes[path] != n {
			return fmt.Errorf("%s: sim %d bytes, live %d bytes", path, n, liveR.Bytes[path])
		}
	}
	if simR.Sessions != 1 || liveR.Sessions != 1 {
		return fmt.Errorf("not a single multiplexed session: sim %d, live %d",
			simR.Sessions, liveR.Sessions)
	}
	if !simR.Overlapped || !liveR.Overlapped {
		return fmt.Errorf("requests not concurrently outstanding: sim %t, live %t",
			simR.Overlapped, liveR.Overlapped)
	}
	return nil
}
