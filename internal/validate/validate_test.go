package validate

import (
	"testing"

	"spdier/internal/spdy"
	"spdier/internal/webpage"
)

// TestCorpusIsWellFormed checks the invariants the determinism argument
// rests on: strictly ascending priority (one object per class), a main
// document small enough to never park on flow control, and consecutive
// subresources at least two flow-control windows apart.
func TestCorpusIsWellFormed(t *testing.T) {
	pages := Pages()
	if len(pages) < 3 {
		t.Fatalf("%d differential pages, want >= 3", len(pages))
	}
	const window = 64 << 10
	for _, pg := range pages {
		if pg.Objects[0].Kind != webpage.KindHTML {
			t.Errorf("%s: first object is %s, want html", pg.Name, pg.Objects[0].Kind)
		}
		if pg.Objects[0].Size > window {
			t.Errorf("%s: main document %d bytes exceeds one flow-control window", pg.Name, pg.Objects[0].Size)
		}
		for i := 1; i < len(pg.Objects); i++ {
			prev, cur := pg.Objects[i-1], pg.Objects[i]
			pp := spdy.PriorityForType(string(prev.Kind))
			cp := spdy.PriorityForType(string(cur.Kind))
			if cp <= pp {
				t.Errorf("%s: object %d priority %d not above %d", pg.Name, i, cp, pp)
			}
			if i >= 2 && cur.Size-prev.Size < 2*window {
				t.Errorf("%s: subresource %d only %d bytes above its predecessor, want >= %d",
					pg.Name, i, cur.Size-prev.Size, 2*window)
			}
		}
	}
}

// TestSimAgreesWithLiveWire is the differential oracle itself: for every
// corpus page, the simulator and the real SPDY wire must agree on
// completion order, per-object byte counts and single-session
// multiplexing.
func TestSimAgreesWithLiveWire(t *testing.T) {
	for _, pg := range Pages() {
		pg := pg
		t.Run(pg.Name, func(t *testing.T) {
			simR, err := RunSim(pg, 1)
			if err != nil {
				t.Fatalf("sim replay: %v", err)
			}
			liveR, err := RunLive(pg)
			if err != nil {
				t.Fatalf("live replay: %v", err)
			}
			if err := Compare(simR, liveR); err != nil {
				t.Fatalf("tracks disagree: %v\nsim:  %+v\nlive: %+v", err, simR, liveR)
			}
		})
	}
}

// TestSimReplayDeterministic pins the sim track: same page, same seed,
// identical replay; and the completion order must follow the priority
// staircase exactly.
func TestSimReplayDeterministic(t *testing.T) {
	pg := Pages()[0]
	a, err := RunSim(pg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(pg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(a, b); err != nil {
		t.Fatalf("same-seed sim replays differ: %v", err)
	}
	for i, o := range pg.Objects {
		if a.Order[i] != o.Path() {
			t.Fatalf("completion order %v does not follow the priority staircase", a.Order)
		}
	}
}
