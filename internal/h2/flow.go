package h2

import "fmt"

// Flow-control constants (RFC 7540 §6.9).
const (
	// DefaultInitialWindow is the initial per-stream (and connection)
	// window before SETTINGS.
	DefaultInitialWindow = 65_535
	// MaxWindow is the largest legal window; an increment pushing a
	// window past it is a protocol error.
	MaxWindow = 1<<31 - 1
)

// FlowController enforces HTTP/2 credit-based flow control on the
// sending side of one connection: DATA consumes credit from both the
// stream's window and the shared connection window, WINDOW_UPDATE
// restores it. Two invariants hold at all times and are fuzzed in
// FuzzStreamFlowControl:
//
//  1. No window is ever negative: Consume rejects (and leaves state
//     untouched) rather than overdraw.
//  2. Conservation of granted bytes: every window equals its initial
//     size plus exactly the sum of its grants minus the sum of its
//     consumptions — credit is never minted or lost by bookkeeping.
type FlowController struct {
	conn        int64
	initStream  int64
	streams     map[uint32]*streamWindow
	consumedAll int64 // total bytes consumed (== sum over streams)
	grantedConn int64 // total connection-level grants
	initConn    int64
}

type streamWindow struct {
	window   int64
	granted  int64
	consumed int64
}

// NewFlowController returns a controller with the given initial
// connection and per-stream windows (use DefaultInitialWindow for the
// pre-SETTINGS default). Non-positive values are protocol nonsense and
// panic — they always indicate a wiring bug, not runtime input.
func NewFlowController(connWin, streamWin int64) *FlowController {
	if connWin <= 0 || connWin > MaxWindow || streamWin <= 0 || streamWin > MaxWindow {
		panic(fmt.Sprintf("h2: invalid initial windows %d/%d", connWin, streamWin))
	}
	return &FlowController{
		conn:       connWin,
		initConn:   connWin,
		initStream: streamWin,
		streams:    make(map[uint32]*streamWindow),
	}
}

func (f *FlowController) stream(id uint32) *streamWindow {
	s := f.streams[id]
	if s == nil {
		s = &streamWindow{window: f.initStream}
		f.streams[id] = s
	}
	return s
}

// Avail returns the bytes sendable on the stream right now: the minimum
// of the stream window and the shared connection window.
func (f *FlowController) Avail(id uint32) int64 {
	s := f.stream(id)
	if s.window < f.conn {
		return s.window
	}
	return f.conn
}

// ConnWindow returns the current connection-level window.
func (f *FlowController) ConnWindow() int64 { return f.conn }

// StreamWindow returns the current window of one stream.
func (f *FlowController) StreamWindow(id uint32) int64 { return f.stream(id).window }

// Consume debits n DATA bytes from the stream and connection windows.
// It fails — changing nothing — if n is not positive or exceeds either
// window: a well-behaved sender never overdraws, so an error here means
// the caller's pacing logic is broken.
func (f *FlowController) Consume(id uint32, n int64) error {
	if n <= 0 {
		return fmt.Errorf("h2: consume of %d bytes on stream %d", n, id)
	}
	s := f.stream(id)
	if n > s.window {
		return fmt.Errorf("h2: stream %d window underflow: consume %d > window %d", id, n, s.window)
	}
	if n > f.conn {
		return fmt.Errorf("h2: connection window underflow: consume %d > window %d", n, f.conn)
	}
	s.window -= n
	s.consumed += n
	f.conn -= n
	f.consumedAll += n
	return nil
}

// Grant credits n bytes to one stream's window (a stream-level
// WINDOW_UPDATE). Zero or negative increments and overflow past
// MaxWindow are protocol errors (RFC 7540 §6.9.1) and change nothing.
func (f *FlowController) Grant(id uint32, n int64) error {
	if n <= 0 {
		return fmt.Errorf("h2: WINDOW_UPDATE of %d on stream %d", n, id)
	}
	s := f.stream(id)
	if s.window > MaxWindow-n {
		return fmt.Errorf("h2: stream %d window overflow: %d + %d > %d", id, s.window, n, int64(MaxWindow))
	}
	s.window += n
	s.granted += n
	return nil
}

// GrantConn credits n bytes to the connection window.
func (f *FlowController) GrantConn(n int64) error {
	if n <= 0 {
		return fmt.Errorf("h2: connection WINDOW_UPDATE of %d", n)
	}
	if f.conn > MaxWindow-n {
		return fmt.Errorf("h2: connection window overflow: %d + %d > %d", f.conn, n, int64(MaxWindow))
	}
	f.conn += n
	f.grantedConn += n
	return nil
}

// CheckConservation verifies invariant (2) for the connection and every
// stream ever touched, returning the first violation. The experiment
// harness calls it at end of run; the fuzz target after every op.
func (f *FlowController) CheckConservation(streamIDs []uint32) error {
	if f.conn != f.initConn+f.grantedConn-f.consumedAll {
		return fmt.Errorf("h2: connection credit leak: window %d != %d+%d-%d",
			f.conn, f.initConn, f.grantedConn, f.consumedAll)
	}
	if f.conn < 0 {
		return fmt.Errorf("h2: negative connection window %d", f.conn)
	}
	var sum int64
	for _, id := range streamIDs {
		s := f.stream(id)
		if s.window != f.initStream+s.granted-s.consumed {
			return fmt.Errorf("h2: stream %d credit leak: window %d != %d+%d-%d",
				id, s.window, f.initStream, s.granted, s.consumed)
		}
		if s.window < 0 {
			return fmt.Errorf("h2: negative window %d on stream %d", s.window, id)
		}
		sum += s.consumed
	}
	if len(streamIDs) > 0 && sum != f.consumedAll {
		return fmt.Errorf("h2: per-stream consumption %d != connection consumption %d", sum, f.consumedAll)
	}
	return nil
}
