package h2

import (
	"strconv"
	"strings"
	"testing"
)

func TestFlowControlBasics(t *testing.T) {
	f := NewFlowController(100, 60)

	if got := f.Avail(1); got != 60 {
		t.Fatalf("Avail(fresh stream) = %d, want stream window 60", got)
	}
	if err := f.Consume(1, 60); err != nil {
		t.Fatalf("Consume(60): %v", err)
	}
	if got := f.Avail(1); got != 0 {
		t.Fatalf("Avail after drain = %d, want 0", got)
	}
	// Stream 3 has credit of its own, but the shared connection window
	// now binds at 40.
	if got := f.Avail(3); got != 40 {
		t.Fatalf("Avail(3) = %d, want connection remainder 40", got)
	}
	if err := f.Consume(3, 41); err == nil {
		t.Fatal("Consume beyond connection window succeeded")
	}
	if err := f.Consume(1, 1); err == nil {
		t.Fatal("Consume beyond stream window succeeded")
	}
	if err := f.Grant(1, 10); err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if got := f.Avail(1); got != 10 {
		t.Fatalf("Avail after grant = %d, want 10", got)
	}
	if err := f.CheckConservation([]uint32{1, 3}); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

func TestFlowControlErrorsChangeNothing(t *testing.T) {
	f := NewFlowController(100, 60)
	mustState := func(conn, s1 int64) {
		t.Helper()
		if f.ConnWindow() != conn || f.StreamWindow(1) != s1 {
			t.Fatalf("state = conn %d / stream %d, want %d / %d",
				f.ConnWindow(), f.StreamWindow(1), conn, s1)
		}
	}
	for _, err := range []error{
		f.Consume(1, 0),
		f.Consume(1, -5),
		f.Consume(1, 61),
		f.Grant(1, 0),
		f.Grant(1, -1),
		f.Grant(1, MaxWindow),
		f.GrantConn(0),
		f.GrantConn(MaxWindow),
	} {
		if err == nil {
			t.Fatal("invalid op reported success")
		}
	}
	mustState(100, 60)
	if err := f.CheckConservation([]uint32{1}); err != nil {
		t.Fatalf("conservation after rejected ops: %v", err)
	}
}

func TestFlowControlOverflowDetection(t *testing.T) {
	f := NewFlowController(MaxWindow, MaxWindow)
	if err := f.Grant(1, 1); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("Grant at ceiling: err = %v, want overflow", err)
	}
	if err := f.GrantConn(1); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("GrantConn at ceiling: err = %v, want overflow", err)
	}
}

func TestHeaderSizerWarmsLikeHPACK(t *testing.T) {
	h := NewHeaderSizer()
	ua := "Mozilla/5.0 (Windows NT 6.1) Chrome/23.0"
	first := h.RequestSize("GET", "http", "example.org", "/", ua)
	second := h.RequestSize("GET", "http", "example.org", "/", ua)
	if second >= first {
		t.Fatalf("repeat request did not shrink: first %d, second %d", first, second)
	}
	// A fully warmed repeat is one indexed byte per field + frame header:
	// 8 fields for this vocabulary.
	if want := FrameHeaderSize + 8; second != want {
		t.Fatalf("warm request size = %d, want %d", second, want)
	}
	// A different path only pays for the changed field.
	third := h.RequestSize("GET", "http", "example.org", "/style.css", ua)
	if delta := third - second; delta != 1+len("/style.css") {
		t.Fatalf("cold-path delta = %d, want literal cost %d", delta, 1+len("/style.css"))
	}
}

func TestHeaderSizerResponse(t *testing.T) {
	h := NewHeaderSizer()
	first := h.ResponseSize("200 OK", "text/html", 1234)
	same := h.ResponseSize("200 OK", "text/html", 1234)
	if same >= first {
		t.Fatalf("repeat response did not shrink: %d -> %d", first, same)
	}
	// :status 200 is in the static table: even the first emission costs
	// a single byte for that field.
	h2 := NewHeaderSizer()
	with200 := h2.ResponseSize("200 OK", "x", 1)
	h3 := NewHeaderSizer()
	with404 := h3.ResponseSize("404 Not Found", "x", 1)
	if with200 >= with404 {
		t.Fatalf("static-table :status 200 (%d) not cheaper than 404 (%d)", with200, with404)
	}
}

func TestHeaderSizerEviction(t *testing.T) {
	h := NewHeaderSizer()
	// Fill the dynamic table past its bound with distinct paths...
	for i := 0; i < hpackDynamicEntries+10; i++ {
		h.FieldSize(":path", "/obj"+strconv.Itoa(i))
	}
	// ...the earliest entry must have been evicted and re-pay literal cost.
	if got := h.FieldSize(":path", "/obj0"); got == 1 {
		t.Fatal("evicted entry still priced as indexed")
	}
	// A recent entry is still indexed.
	if got := h.FieldSize(":path", "/obj"+strconv.Itoa(hpackDynamicEntries+9)); got != 1 {
		t.Fatalf("recent entry not indexed: size %d", got)
	}
}
