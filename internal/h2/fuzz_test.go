package h2

import (
	"strings"
	"testing"
)

// FuzzStreamFlowControl drives a FlowController with an arbitrary
// interleaving of DATA consumption and stream/connection
// WINDOW_UPDATEs decoded from the fuzz input, checking after every
// operation that:
//
//  1. no window (stream or connection) is ever negative,
//  2. Avail is exactly min(stream window, connection window),
//  3. granted bytes are conserved — every window equals initial +
//     grants − consumptions, and per-stream consumption sums to the
//     connection's,
//  4. rejected operations change no state.
//
// Each input byte pair encodes one op: the first byte selects the kind
// and stream, the second the amount (scaled so both under- and
// over-window requests occur).
func FuzzStreamFlowControl(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x10, 0x41, 0x20, 0x82, 0x7f, 0xc3, 0xff})
	f.Add([]byte{0x01, 0xff, 0x01, 0xff, 0x01, 0xff, 0x01, 0xff})
	f.Add([]byte{0x80, 0x01, 0x00, 0x01, 0x81, 0x01, 0x40, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			initConn   = 1 << 14
			initStream = 1 << 12
		)
		fc := NewFlowController(initConn, initStream)

		// Reference model, maintained independently.
		type ref struct{ window, granted, consumed int64 }
		streams := map[uint32]*ref{}
		ids := []uint32{}
		conn := int64(initConn)
		var connGranted, consumedAll int64

		model := func(id uint32) *ref {
			r := streams[id]
			if r == nil {
				r = &ref{window: initStream}
				streams[id] = r
				ids = append(ids, id)
			}
			return r
		}

		check := func(id uint32) {
			t.Helper()
			r := model(id)
			if fc.ConnWindow() != conn {
				t.Fatalf("conn window %d, model %d", fc.ConnWindow(), conn)
			}
			if got := fc.StreamWindow(id); got != r.window {
				t.Fatalf("stream %d window %d, model %d", id, got, r.window)
			}
			if fc.ConnWindow() < 0 || fc.StreamWindow(id) < 0 {
				t.Fatalf("negative window: conn %d stream %d", fc.ConnWindow(), fc.StreamWindow(id))
			}
			wantAvail := r.window
			if conn < wantAvail {
				wantAvail = conn
			}
			if got := fc.Avail(id); got != wantAvail {
				t.Fatalf("Avail(%d) = %d, want min(%d, %d)", id, got, r.window, conn)
			}
			if err := fc.CheckConservation(ids); err != nil {
				t.Fatalf("conservation: %v", err)
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op := data[i]
			// Stream IDs from a small set so ops collide on streams.
			id := uint32(1 + 2*((op>>2)&0x07))
			// Amounts span 1..~2× the stream window, exercising both
			// grantable/consumable and must-reject sizes.
			amt := int64(data[i+1])*33 + 1
			switch op & 0x03 {
			case 0, 1: // consume (twice as likely: DATA dominates)
				r := model(id)
				err := fc.Consume(id, amt)
				if wantErr := amt > r.window || amt > conn; wantErr != (err != nil) {
					t.Fatalf("Consume(%d, %d): err=%v, model wantErr=%v (win %d conn %d)",
						id, amt, err, wantErr, r.window, conn)
				}
				if err == nil {
					r.window -= amt
					r.consumed += amt
					conn -= amt
					consumedAll += amt
				}
			case 2: // stream WINDOW_UPDATE
				r := model(id)
				err := fc.Grant(id, amt)
				if wantErr := r.window > MaxWindow-amt; wantErr != (err != nil) {
					t.Fatalf("Grant(%d, %d): err=%v, model wantErr=%v", id, amt, err, wantErr)
				}
				if err == nil {
					r.window += amt
					r.granted += amt
				}
			case 3: // connection WINDOW_UPDATE
				err := fc.GrantConn(amt)
				if wantErr := conn > MaxWindow-amt; wantErr != (err != nil) {
					t.Fatalf("GrantConn(%d): err=%v, model wantErr=%v", amt, err, wantErr)
				}
				if err == nil {
					conn += amt
					connGranted += amt
				}
			}
			check(id)
		}
		_ = connGranted
	})
}

// FuzzHeaderSizer feeds arbitrary header names/values through the HPACK
// sizer: sizes must be positive, repeats never dearer than first
// emissions, and an indexed hit always exactly one byte.
func FuzzHeaderSizer(f *testing.F) {
	f.Add("x-custom", "value")
	f.Add(":path", "/index.html")
	f.Add("user-agent", strings.Repeat("a", 300))

	f.Fuzz(func(t *testing.T, name, value string) {
		h := NewHeaderSizer()
		first := h.FieldSize(name, value)
		if first < 1 {
			t.Fatalf("FieldSize = %d, want >= 1", first)
		}
		second := h.FieldSize(name, value)
		if second != 1 {
			t.Fatalf("repeat FieldSize = %d, want indexed cost 1", second)
		}
		if second > first {
			t.Fatalf("repeat (%d) dearer than first (%d)", second, first)
		}
	})
}
