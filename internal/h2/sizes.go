// Package h2 models the HTTP/2 framing-layer costs that differ from
// SPDY/3: HPACK header compression (a shared static table plus a
// per-connection dynamic table, instead of SPDY's zlib stream) and
// credit-based per-stream flow control (WINDOW_UPDATE), which SPDY/3
// as deployed in 2013 did not enforce per stream.
//
// Like internal/spdy, nothing here touches real sockets; the package
// prices frames and enforces window arithmetic so the simulator charges
// byte-accurate overheads. Everything is deterministic: map state is
// only ever looked up by key, never iterated.
package h2

import "strconv"

// Frame-size constants (RFC 7540 §4.1): every frame carries a 9-octet
// header (3 length + 1 type + 1 flags + 4 stream id).
const (
	// FrameHeaderSize is the fixed HTTP/2 frame header.
	FrameHeaderSize = 9
	// DataFrameOverhead is the per-DATA-frame cost — the frame header
	// alone (no padding modeled). SPDY's equivalent is 8.
	DataFrameOverhead = FrameHeaderSize
	// WindowUpdateFrameSize is a WINDOW_UPDATE frame: header + 4-octet
	// increment.
	WindowUpdateFrameSize = FrameHeaderSize + 4
	// SettingsAckSize is an empty SETTINGS (or its ACK).
	SettingsAckSize = FrameHeaderSize
)

// staticNames is the HPACK static-table name set relevant to the
// simulated header vocabularies (RFC 7541 Appendix A). A name present
// here never costs literal bytes, only its value does.
var staticNames = map[string]bool{
	":authority":      true,
	":method":         true,
	":path":           true,
	":scheme":         true,
	":status":         true,
	"accept":          true,
	"accept-encoding": true,
	"accept-language": true,
	"content-length":  true,
	"content-type":    true,
	"server":          true,
	"user-agent":      true,
}

// staticPairs are full (name, value) entries of the static table: these
// encode in a single indexed byte from the very first use.
var staticPairs = map[string]bool{
	":method\x00GET":                  true,
	":scheme\x00http":                 true,
	":scheme\x00https":                true,
	":status\x00200":                  true,
	"accept-encoding\x00gzip,deflate": true,
}

// hpackDynamicEntries bounds the modeled dynamic table by entry count —
// a stand-in for the 4096-octet SETTINGS_HEADER_TABLE_SIZE default.
const hpackDynamicEntries = 128

// HeaderSizer prices HPACK-encoded header blocks on one connection
// direction. The first emission of a (name, value) pair pays literal
// bytes and installs it in the dynamic table; repeats cost one indexed
// byte — the h2 analogue of the warmed zlib dictionary that
// spdy.SizeOracle models, without SPDY's cross-stream compression of
// values it has never seen.
type HeaderSizer struct {
	dyn   map[string]bool
	order []string // FIFO eviction order for the dynamic table
}

// NewHeaderSizer returns a sizer with an empty dynamic table.
func NewHeaderSizer() *HeaderSizer {
	return &HeaderSizer{dyn: make(map[string]bool)}
}

// FieldSize prices one header field and updates the dynamic table.
func (h *HeaderSizer) FieldSize(name, value string) int {
	key := name + "\x00" + value
	if staticPairs[key] || h.dyn[key] {
		return 1 // indexed header field
	}
	// Literal with incremental indexing: prefix byte, then value (length
	// prefix + octets), plus name octets when the name is not indexed.
	n := 1 + 1 + len(value)
	if !staticNames[name] {
		n += 1 + len(name)
	}
	h.insert(key)
	return n
}

func (h *HeaderSizer) insert(key string) {
	if len(h.order) >= hpackDynamicEntries {
		evict := h.order[0]
		h.order = h.order[1:]
		delete(h.dyn, evict)
	}
	h.dyn[key] = true
	h.order = append(h.order, key)
}

// RequestSize prices a HEADERS frame for a GET request carrying the
// same field vocabulary the SPDY path sends (minus :version, which
// HTTP/2 drops), including the 9-octet frame header.
func (h *HeaderSizer) RequestSize(method, scheme, host, path, userAgent string) int {
	n := FrameHeaderSize
	n += h.FieldSize(":method", method)
	n += h.FieldSize(":scheme", scheme)
	n += h.FieldSize(":authority", host)
	n += h.FieldSize(":path", path)
	n += h.FieldSize("accept", "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8")
	n += h.FieldSize("accept-encoding", "gzip,deflate,sdch")
	n += h.FieldSize("accept-language", "en-US,en;q=0.8")
	if userAgent != "" {
		n += h.FieldSize("user-agent", userAgent)
	}
	return n
}

// ResponseSize prices the response HEADERS frame matching
// spdy.ResponseHeaders' vocabulary.
func (h *HeaderSizer) ResponseSize(status, contentType string, contentLength int64) int {
	n := FrameHeaderSize
	n += h.FieldSize(":status", statusCode(status))
	n += h.FieldSize("content-type", contentType)
	n += h.FieldSize("content-length", strconv.FormatInt(contentLength, 10))
	n += h.FieldSize("server", "spdier-origin/1.0")
	return n
}

// statusCode reduces a reason-phrase status ("200 OK") to the bare code
// HTTP/2 transmits.
func statusCode(status string) string {
	for i := 0; i < len(status); i++ {
		if status[i] == ' ' {
			return status[:i]
		}
	}
	return status
}
