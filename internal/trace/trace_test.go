package trace

import (
	"testing"
	"time"

	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/webpage"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestObjectRecordPhases(t *testing.T) {
	or := &ObjectRecord{
		Discovered: ms(100),
		Requested:  ms(400),
		FirstByte:  ms(900),
		Done:       ms(1500),
	}
	if or.Init() != 300*time.Millisecond {
		t.Fatalf("init %v", or.Init())
	}
	if or.Wait() != 500*time.Millisecond {
		t.Fatalf("wait %v", or.Wait())
	}
	if or.Recv() != 600*time.Millisecond {
		t.Fatalf("recv %v", or.Recv())
	}
}

func TestPageRecordPLTAndMeanPhase(t *testing.T) {
	pr := &PageRecord{
		Start:  ms(1000),
		OnLoad: ms(6000),
		Objects: []*ObjectRecord{
			{Discovered: ms(1000), Requested: ms(1100), FirstByte: ms(1200), Done: ms(1300)},
			{Discovered: ms(1000), Requested: ms(1300), FirstByte: ms(1500), Done: ms(1900)},
		},
	}
	if pr.PLT() != 5*time.Second {
		t.Fatalf("PLT %v", pr.PLT())
	}
	if got := pr.MeanPhase((*ObjectRecord).Init); got != 200*time.Millisecond {
		t.Fatalf("mean init %v", got)
	}
	empty := &PageRecord{}
	if empty.MeanPhase((*ObjectRecord).Init) != 0 {
		t.Fatal("empty mean phase")
	}
}

func TestProxyRecordPhases(t *testing.T) {
	pr := &ProxyRecord{
		Obj:             &webpage.Object{ID: 1},
		ReqArrived:      ms(0),
		OriginFirstByte: ms(14),
		OriginDone:      ms(18),
		SendStart:       ms(500),
		SendDone:        ms(900),
	}
	if pr.OriginWait() != 14*time.Millisecond || pr.OriginDownload() != 4*time.Millisecond {
		t.Fatalf("origin leg: %v %v", pr.OriginWait(), pr.OriginDownload())
	}
	if pr.QueueDelay() != 482*time.Millisecond {
		t.Fatalf("queue %v", pr.QueueDelay())
	}
	if pr.Transfer() != 400*time.Millisecond {
		t.Fatalf("transfer %v", pr.Transfer())
	}
}

func retxSample(at sim.Time, conn string) tcpsim.ProbeSample {
	return tcpsim.ProbeSample{At: at, ConnID: conn, Event: tcpsim.EvRetransmit}
}

func TestFindRetxBurstsClusters(t *testing.T) {
	rec := tcpsim.NewRecorder()
	// Burst 1: three events on one connection within 200 ms.
	rec.Sample(retxSample(ms(1000), "a"))
	rec.Sample(retxSample(ms(1100), "a"))
	rec.Sample(retxSample(ms(1200), "a"))
	// Gap ≫ 500 ms. Burst 2: two connections.
	rec.Sample(retxSample(ms(5000), "b"))
	rec.Sample(retxSample(ms(5100), "c"))
	// Non-retx events must be ignored.
	rec.Sample(tcpsim.ProbeSample{At: ms(5200), ConnID: "x", Event: tcpsim.EvAck})

	bursts := FindRetxBursts(rec, 500*time.Millisecond)
	if len(bursts) != 2 {
		t.Fatalf("bursts %v", bursts)
	}
	if bursts[0].Count != 3 || len(bursts[0].Conns) != 1 || bursts[0].Conns["a"] != 3 {
		t.Fatalf("burst 0: %+v", bursts[0])
	}
	if bursts[1].Count != 2 || len(bursts[1].Conns) != 2 {
		t.Fatalf("burst 1: %+v", bursts[1])
	}
	if f := SingleConnBurstFraction(bursts); f != 0.5 {
		t.Fatalf("single-conn fraction %v", f)
	}
}

func TestFindRetxBurstsIncludesFastRetx(t *testing.T) {
	rec := tcpsim.NewRecorder()
	rec.Sample(tcpsim.ProbeSample{At: ms(100), ConnID: "a", Event: tcpsim.EvFastRetx})
	bursts := FindRetxBursts(rec, time.Second)
	if len(bursts) != 1 || bursts[0].Count != 1 {
		t.Fatalf("%v", bursts)
	}
}

func TestSingleConnBurstFractionEmpty(t *testing.T) {
	if SingleConnBurstFraction(nil) != 0 {
		t.Fatal("empty input")
	}
}
