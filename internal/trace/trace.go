// Package trace defines the measurement records the experiments analyze:
// per-object download timelines (what Chrome's remote debugging interface
// gave the authors), per-page results, proxy-side fetch/queue timings
// (Figure 8), and retransmission burst analysis over tcp_probe samples
// (Figure 13).
package trace

import (
	"sort"
	"time"

	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/webpage"
)

// ObjectRecord is the lifecycle of one object at the browser, split into
// the four phases of Figure 5.
type ObjectRecord struct {
	Obj *webpage.Object

	Discovered sim.Time // browser learned it needs the object
	Requested  sim.Time // request written to the network
	FirstByte  sim.Time // first byte of the response arrived
	Done       sim.Time // last byte arrived
	ConnID     string   // which TCP connection carried it
}

// Init is the time from discovery to the request leaving the browser
// (connection setup or pool wait for HTTP; ~0 for SPDY).
func (r *ObjectRecord) Init() time.Duration { return r.Requested.Sub(r.Discovered) }

// Send approximates the time to put the request on the wire. Requests
// fit in one packet for both protocols, so this is effectively zero;
// kept for fidelity with the paper's four-way split.
func (r *ObjectRecord) Send() time.Duration { return time.Millisecond }

// Wait is request-to-first-byte — where SPDY pays its queueing penalty.
func (r *ObjectRecord) Wait() time.Duration { return r.FirstByte.Sub(r.Requested) }

// Recv is first-to-last byte.
func (r *ObjectRecord) Recv() time.Duration { return r.Done.Sub(r.FirstByte) }

// PageRecord is one page-load measurement.
type PageRecord struct {
	Page    *webpage.Page
	Start   sim.Time
	OnLoad  sim.Time // all objects complete (the onLoad() event)
	Objects []*ObjectRecord
	Aborted bool // watchdog fired before completion
}

// PLT returns the page load time.
func (p *PageRecord) PLT() time.Duration { return p.OnLoad.Sub(p.Start) }

// MeanPhase returns the average of one phase across the page's objects.
func (p *PageRecord) MeanPhase(phase func(*ObjectRecord) time.Duration) time.Duration {
	if len(p.Objects) == 0 {
		return 0
	}
	var sum time.Duration
	for _, o := range p.Objects {
		sum += phase(o)
	}
	return sum / time.Duration(len(p.Objects))
}

// ProxyRecord is the proxy-side view of one object (Figure 8): when the
// request arrived, when the origin produced its first and last byte, and
// when the proxy actually started and finished transferring the response
// toward the client — the red region whose length exposes the proxy-side
// queue that SPDY builds up.
type ProxyRecord struct {
	Obj             *webpage.Object
	ReqArrived      sim.Time
	OriginFirstByte sim.Time
	OriginDone      sim.Time
	SendStart       sim.Time
	SendDone        sim.Time
}

// OriginWait is request-arrival to origin first byte (≈14 ms avg in the
// paper).
func (r *ProxyRecord) OriginWait() time.Duration { return r.OriginFirstByte.Sub(r.ReqArrived) }

// OriginDownload is origin first-to-last byte (≈4 ms avg in the paper).
func (r *ProxyRecord) OriginDownload() time.Duration { return r.OriginDone.Sub(r.OriginFirstByte) }

// QueueDelay is the time the complete response sat at the proxy before
// transfer to the client began.
func (r *ProxyRecord) QueueDelay() time.Duration { return r.SendStart.Sub(r.OriginDone) }

// Transfer is the client-side transfer duration.
func (r *ProxyRecord) Transfer() time.Duration { return r.SendDone.Sub(r.SendStart) }

// RetxBurst is one run of temporally clustered retransmissions and the
// set of connections it touched (Figure 13's analysis).
type RetxBurst struct {
	Start, End sim.Time
	Count      int
	Conns      map[string]int
}

// FindRetxBursts clusters the retransmission samples in rec: events
// separated by no more than gap belong to the same burst.
func FindRetxBursts(rec *tcpsim.Recorder, gap time.Duration) []RetxBurst {
	var events []tcpsim.ProbeSample
	rec.Each(func(s tcpsim.ProbeSample) bool {
		if s.Event == tcpsim.EvRetransmit || s.Event == tcpsim.EvFastRetx {
			events = append(events, s)
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	var bursts []RetxBurst
	for _, e := range events {
		if n := len(bursts); n > 0 && e.At.Sub(bursts[n-1].End) <= gap {
			b := &bursts[n-1]
			b.End = e.At
			b.Count++
			b.Conns[e.ConnID]++
			continue
		}
		bursts = append(bursts, RetxBurst{
			Start: e.At, End: e.At, Count: 1,
			Conns: map[string]int{e.ConnID: 1},
		})
	}
	return bursts
}

// SingleConnBurstFraction reports the fraction of bursts confined to one
// TCP connection — the paper observes bursts "typically affect a few
// (usually one) TCP connections".
func SingleConnBurstFraction(bursts []RetxBurst) float64 {
	if len(bursts) == 0 {
		return 0
	}
	single := 0
	for _, b := range bursts {
		if len(b.Conns) == 1 {
			single++
		}
	}
	return float64(single) / float64(len(bursts))
}
