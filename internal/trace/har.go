package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// HAR export: page records serialize to a minimal HTTP Archive 1.2
// document, so downstream tooling (waterfall viewers, HAR diffing) can
// consume simulated page loads the same way it consumes real captures
// from Chrome's remote debugging interface — the instrument the paper
// itself used.

// HAR is the top-level archive document.
type HAR struct {
	Log HARLog `json:"log"`
}

// HARLog is the log body of a HAR document.
type HARLog struct {
	Version string     `json:"version"`
	Creator HARCreator `json:"creator"`
	Pages   []HARPage  `json:"pages"`
	Entries []HAREntry `json:"entries"`
}

// HARCreator identifies the producing tool.
type HARCreator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// HARPage is one page load.
type HARPage struct {
	StartedDateTime string         `json:"startedDateTime"`
	ID              string         `json:"id"`
	Title           string         `json:"title"`
	PageTimings     HARPageTimings `json:"pageTimings"`
}

// HARPageTimings carries the onLoad milestone.
type HARPageTimings struct {
	OnLoad float64 `json:"onLoad"` // ms
}

// HAREntry is one object fetch.
type HAREntry struct {
	Pageref         string      `json:"pageref"`
	StartedDateTime string      `json:"startedDateTime"`
	Time            float64     `json:"time"` // total ms
	Request         HARRequest  `json:"request"`
	Response        HARResponse `json:"response"`
	Timings         HARTimings  `json:"timings"`
	Connection      string      `json:"connection,omitempty"`
}

// HARRequest is the request summary.
type HARRequest struct {
	Method string `json:"method"`
	URL    string `json:"url"`
}

// HARResponse is the response summary.
type HARResponse struct {
	Status   int        `json:"status"`
	Content  HARContent `json:"content"`
	BodySize int        `json:"bodySize"`
}

// HARContent describes the body.
type HARContent struct {
	Size     int    `json:"size"`
	MimeType string `json:"mimeType"`
}

// HARTimings is the phase split — blocked maps to the paper's "init",
// send/wait/receive to its other three phases (Figure 5).
type HARTimings struct {
	Blocked float64 `json:"blocked"`
	Send    float64 `json:"send"`
	Wait    float64 `json:"wait"`
	Receive float64 `json:"receive"`
}

// epoch anchors virtual time zero for ISO timestamps; the absolute value
// is arbitrary (the simulation has no wall clock), chosen as the first
// day of the paper's measurement year.
var epoch = time.Date(2013, time.January, 1, 0, 0, 0, 0, time.UTC)

func isoAt(d time.Duration) string {
	return epoch.Add(d).Format("2006-01-02T15:04:05.000Z07:00")
}

func mimeFor(kind string) string {
	switch kind {
	case "html":
		return "text/html"
	case "js":
		return "text/javascript"
	case "css":
		return "text/css"
	case "img":
		return "image/jpeg"
	default:
		return "text/plain"
	}
}

// BuildHAR converts page records into a HAR document.
func BuildHAR(pages []*PageRecord) *HAR {
	har := &HAR{Log: HARLog{
		Version: "1.2",
		Creator: HARCreator{Name: "spdier", Version: "1.0"},
	}}
	for i, pr := range pages {
		if pr == nil {
			continue
		}
		id := fmt.Sprintf("page_%d", i)
		har.Log.Pages = append(har.Log.Pages, HARPage{
			StartedDateTime: isoAt(pr.Start.Duration()),
			ID:              id,
			Title:           pr.Page.Name,
			PageTimings:     HARPageTimings{OnLoad: float64(pr.PLT()) / float64(time.Millisecond)},
		})
		for _, or := range pr.Objects {
			if or.Done == 0 {
				continue
			}
			har.Log.Entries = append(har.Log.Entries, HAREntry{
				Pageref:         id,
				StartedDateTime: isoAt(or.Discovered.Duration()),
				Time:            float64(or.Done.Sub(or.Discovered)) / float64(time.Millisecond),
				Request: HARRequest{
					Method: "GET",
					URL:    "http://" + or.Obj.Domain + or.Obj.Path,
				},
				Response: HARResponse{
					Status:   200,
					BodySize: or.Obj.Size,
					Content:  HARContent{Size: or.Obj.Size, MimeType: mimeFor(string(or.Obj.Kind))},
				},
				Timings: HARTimings{
					Blocked: float64(or.Init()) / float64(time.Millisecond),
					// Send is folded into Wait (FirstByte−Requested)
					// already; exporting the nominal 1 ms again would
					// break the HAR invariant time == Σ timings.
					Send:    0,
					Wait:    float64(or.Wait()) / float64(time.Millisecond),
					Receive: float64(or.Recv()) / float64(time.Millisecond),
				},
				Connection: or.ConnID,
			})
		}
	}
	return har
}

// WriteHAR serializes pages as indented HAR JSON.
func WriteHAR(w io.Writer, pages []*PageRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildHAR(pages))
}
