package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spdier/internal/webpage"
)

func samplePage() *PageRecord {
	obj := &webpage.Object{ID: 1, Kind: webpage.KindImg, Size: 5000, Domain: "d.example", Path: "/a.jpg"}
	return &PageRecord{
		Page:   &webpage.Page{Name: "p", Objects: []*webpage.Object{obj}},
		Start:  ms(1000),
		OnLoad: ms(3000),
		Objects: []*ObjectRecord{{
			Obj:        obj,
			Discovered: ms(1000),
			Requested:  ms(1100),
			FirstByte:  ms(1400),
			Done:       ms(1900),
			ConnID:     "h001",
		}},
	}
}

func TestBuildHAR(t *testing.T) {
	har := BuildHAR([]*PageRecord{samplePage(), nil})
	if len(har.Log.Pages) != 1 || len(har.Log.Entries) != 1 {
		t.Fatalf("pages=%d entries=%d", len(har.Log.Pages), len(har.Log.Entries))
	}
	p := har.Log.Pages[0]
	if p.PageTimings.OnLoad != 2000 {
		t.Fatalf("onLoad %v", p.PageTimings.OnLoad)
	}
	e := har.Log.Entries[0]
	if e.Request.URL != "http://d.example/a.jpg" {
		t.Fatalf("url %q", e.Request.URL)
	}
	if e.Timings.Blocked != 100 || e.Timings.Wait != 300 || e.Timings.Receive != 500 {
		t.Fatalf("timings %+v", e.Timings)
	}
	// HAR invariant: time == blocked + send + wait + receive.
	if sum := e.Timings.Blocked + e.Timings.Send + e.Timings.Wait + e.Timings.Receive; sum != e.Time {
		t.Fatalf("timings sum %v != time %v", sum, e.Time)
	}
	if e.Time != 900 {
		t.Fatalf("total %v", e.Time)
	}
	if e.Response.Content.MimeType != "image/jpeg" || e.Response.BodySize != 5000 {
		t.Fatalf("response %+v", e.Response)
	}
	if e.Connection != "h001" {
		t.Fatalf("connection %q", e.Connection)
	}
}

func TestWriteHARIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHAR(&buf, []*PageRecord{samplePage()}); err != nil {
		t.Fatal(err)
	}
	var round HAR
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if round.Log.Version != "1.2" || round.Log.Creator.Name != "spdier" {
		t.Fatalf("log head %+v", round.Log)
	}
	if !strings.Contains(buf.String(), "startedDateTime") {
		t.Fatal("missing timestamps")
	}
}

func TestHARSkipsIncompleteObjects(t *testing.T) {
	pr := samplePage()
	pr.Objects = append(pr.Objects, &ObjectRecord{
		Obj:        pr.Page.Objects[0],
		Discovered: ms(1500), // never finished
	})
	har := BuildHAR([]*PageRecord{pr})
	if len(har.Log.Entries) != 1 {
		t.Fatalf("incomplete object exported: %d entries", len(har.Log.Entries))
	}
}
