package liveproxy

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"spdier/internal/spdy"
)

// startStack brings up origin + SPDY proxy on loopback.
func startStack(t *testing.T) (*Origin, *SPDYProxy, *SPDYClient) {
	t.Helper()
	origin, err := StartOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	t.Cleanup(func() { origin.Close() })
	proxy, err := StartSPDYProxy("127.0.0.1:0", origin.Addr())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })
	client, err := DialSPDY(proxy.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return origin, proxy, client
}

func TestLiveSPDYSingleFetch(t *testing.T) {
	_, _, client := startStack(t)
	ch, err := client.Get("test.example", "/size/10000", 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatalf("fetch: %v", res.Err)
	}
	if res.Status != "200 OK" {
		t.Fatalf("status %q", res.Status)
	}
	if !bytes.Equal(res.Body, Body(10000)) {
		t.Fatalf("body corrupted: %d bytes", len(res.Body))
	}
	if res.FirstByte <= 0 || res.Done < res.FirstByte {
		t.Fatalf("timing incoherent: fb=%v done=%v", res.FirstByte, res.Done)
	}
}

func TestLiveSPDYConcurrentStreams(t *testing.T) {
	origin, proxy, client := startStack(t)
	const n = 40
	chans := make([]<-chan FetchResult, n)
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		sizes[i] = 1000 + i*517
		ch, err := client.Get("test.example", "/size/"+itoa(sizes[i]), spdy.Priority(i%8))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("stream %d: %v", i, res.Err)
		}
		if !bytes.Equal(res.Body, Body(sizes[i])) {
			t.Fatalf("stream %d: wrong body (%d bytes, want %d)", i, len(res.Body), sizes[i])
		}
	}
	if got := origin.Served(); got != n {
		t.Fatalf("origin served %d, want %d", got, n)
	}
	if sessions, streams := proxy.Stats(); sessions != 1 || streams != n {
		t.Fatalf("proxy stats: sessions=%d streams=%d", sessions, streams)
	}
}

func TestLiveSPDYPing(t *testing.T) {
	_, _, client := startStack(t)
	rtt, err := client.Ping(7, 2*time.Second)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("implausible loopback ping RTT %v", rtt)
	}
}

func TestLiveHTTPProxy(t *testing.T) {
	origin, err := StartOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer origin.Close()
	proxy, err := StartHTTPProxy("127.0.0.1:0", origin.Addr())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()

	resp, elapsed, err := HTTPProxyGet(proxy.Addr(), "test.example", "/size/5000")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, Body(5000)) {
		t.Fatalf("bad response: %d, %d bytes", resp.Status, len(resp.Body))
	}
	if resp.Headers["Via"] == "" {
		t.Fatalf("missing Via header")
	}
	if elapsed <= 0 {
		t.Fatalf("bad timing %v", elapsed)
	}
}

func TestLiveConduitAddsLatency(t *testing.T) {
	origin, err := StartOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer origin.Close()
	proxy, err := StartSPDYProxy("127.0.0.1:0", origin.Addr())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()

	const delay = 60 * time.Millisecond
	conduit, err := StartConduit("127.0.0.1:0", proxy.Addr(), delay, 0)
	if err != nil {
		t.Fatalf("conduit: %v", err)
	}
	defer conduit.Close()

	client, err := DialSPDY(conduit.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	rtt, err := client.Ping(1, 5*time.Second)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if rtt < 2*delay {
		t.Fatalf("conduit failed to add latency: RTT %v < %v", rtt, 2*delay)
	}
	ch, err := client.Get("test.example", "/size/20000", 2)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	res := <-ch
	if res.Err != nil || !bytes.Equal(res.Body, Body(20000)) {
		t.Fatalf("shaped fetch failed: %v (%d bytes)", res.Err, len(res.Body))
	}
}

func TestLivePriorityOrdering(t *testing.T) {
	// Saturate the session through a slow conduit and verify that a
	// high-priority response overtakes queued low-priority bulk data.
	origin, err := StartOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer origin.Close()
	proxy, err := StartSPDYProxy("127.0.0.1:0", origin.Addr())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()
	conduit, err := StartConduit("127.0.0.1:0", proxy.Addr(), 5*time.Millisecond, 4_000_000)
	if err != nil {
		t.Fatalf("conduit: %v", err)
	}
	defer conduit.Close()
	client, err := DialSPDY(conduit.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	var mu sync.Mutex
	var order []string

	// Three 400 KB low-priority objects, then a small high-priority one.
	var wg sync.WaitGroup
	collect := func(name string, ch <-chan FetchResult) {
		defer wg.Done()
		res := <-ch
		if res.Err != nil {
			t.Errorf("%s: %v", name, res.Err)
			return
		}
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	for i := 0; i < 3; i++ {
		bulkCh, bulkErr := client.Get("test.example", "/size/400000", 7)
		if bulkErr != nil {
			t.Fatalf("bulk get: %v", bulkErr)
		}
		wg.Add(1)
		go collect("bulk", bulkCh)
	}
	time.Sleep(50 * time.Millisecond) // let bulk queue up at the proxy
	ch, err := client.Get("test.example", "/size/2000", 0)
	if err != nil {
		t.Fatalf("urgent get: %v", err)
	}
	wg.Add(1)
	go collect("urgent", ch)
	wg.Wait()

	if len(order) != 4 {
		t.Fatalf("expected 4 completions, got %v", order)
	}
	if order[0] != "urgent" {
		t.Fatalf("high-priority stream did not finish first: %v", order)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestLiveServerPush(t *testing.T) {
	origin, err := StartOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer origin.Close()
	proxy, err := StartSPDYProxy("127.0.0.1:0", origin.Addr())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()
	proxy.PushMap = map[string][]string{
		"/size/1000": {"/size/2000", "/size/3000"},
	}
	client, err := DialSPDY(proxy.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	ch, err := client.Get("test.example", "/size/1000", 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	res := <-ch
	if res.Err != nil || len(res.Body) != 1000 {
		t.Fatalf("primary fetch: %v (%d bytes)", res.Err, len(res.Body))
	}

	got := map[string]int{}
	for i := 0; i < 2; i++ {
		select {
		case p := <-client.Pushed():
			if !p.Pushed {
				t.Fatal("push not flagged")
			}
			if !bytes.Equal(p.Body, Body(len(p.Body))) {
				t.Fatalf("pushed body corrupted: %s", p.Path)
			}
			got[p.Path] = len(p.Body)
		case <-time.After(3 * time.Second):
			t.Fatalf("push %d never arrived (got %v)", i, got)
		}
	}
	if got["/size/2000"] != 2000 || got["/size/3000"] != 3000 {
		t.Fatalf("pushed set wrong: %v", got)
	}
	// The origin served primary + 2 pushes, the client sent 1 request.
	if origin.Served() != 3 {
		t.Fatalf("origin served %d", origin.Served())
	}
}

func TestLiveFlowControlLargeTransfer(t *testing.T) {
	// 1 MB ≫ the 64 KiB initial stream window: the transfer only
	// completes if WINDOW_UPDATE credit flows back correctly.
	_, _, client := startStack(t)
	ch, err := client.Get("test.example", "/size/1000000", 1)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	select {
	case res := <-ch:
		if res.Err != nil {
			t.Fatalf("fetch: %v", res.Err)
		}
		if !bytes.Equal(res.Body, Body(1000000)) {
			t.Fatalf("body corrupted: %d bytes", len(res.Body))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flow-controlled transfer wedged")
	}
}

func TestLiveFlowControlConcurrentLargeStreams(t *testing.T) {
	_, _, client := startStack(t)
	const n = 6
	chans := make([]<-chan FetchResult, n)
	for i := 0; i < n; i++ {
		ch, err := client.Get("test.example", "/size/300000", spdy.Priority(i%8))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil || len(res.Body) != 300000 {
				t.Fatalf("stream %d: %v (%d bytes)", i, res.Err, len(res.Body))
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("stream %d wedged under per-stream flow control", i)
		}
	}
}
