// Package liveproxy is the live-socket track of the reproduction: a real
// HTTP/1.1 origin server, a real SPDY/3 proxy (the role Chromium's flip
// server played in the paper's testbed), an HTTP forward proxy (the
// Squid role), a SPDY client, and a latency/bandwidth-shaping conduit —
// all over actual TCP sockets using only the standard library and the
// internal/spdy and internal/httpwire codecs.
//
// The simulator answers the paper's questions; this package proves the
// protocol layer is real: frames marshal on the wire, the shared zlib
// header context survives a session, priorities reorder responses, and
// many streams multiplex over one connection.
package liveproxy

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"spdier/internal/httpwire"
)

// Origin is a minimal HTTP/1.1 origin server. Request paths of the form
// /size/<n> return n bytes of deterministic payload; /echo/<text>
// returns the text; anything else returns a small index page. Keep-alive
// connections are served until the client closes.
type Origin struct {
	ln net.Listener

	mu     sync.Mutex
	served int
	closed bool
}

// StartOrigin listens on addr ("127.0.0.1:0" for an ephemeral port).
func StartOrigin(addr string) (*Origin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("liveproxy: origin listen: %w", err)
	}
	o := &Origin{ln: ln}
	go o.acceptLoop()
	return o, nil
}

// Addr returns the listening address.
func (o *Origin) Addr() string { return o.ln.Addr().String() }

// Served returns the number of requests answered.
func (o *Origin) Served() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.served
}

// Close stops the listener.
func (o *Origin) Close() error {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	return o.ln.Close()
}

func (o *Origin) acceptLoop() {
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			return
		}
		go o.serve(conn)
	}
}

func (o *Origin) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		req, err := httpwire.ReadRequest(br)
		if err != nil {
			return
		}
		resp := o.respond(req)
		if _, err := conn.Write(resp.Marshal()); err != nil {
			return
		}
		o.mu.Lock()
		o.served++
		o.mu.Unlock()
		if strings.EqualFold(req.Headers["Connection"], "close") {
			return
		}
	}
}

// Body generates the deterministic payload for a given size, so clients
// can verify integrity end to end.
func Body(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + (i % 26))
	}
	return b
}

func (o *Origin) respond(req *httpwire.Request) *httpwire.Response {
	path := req.Target
	// Absolute-form from proxies: strip scheme://host.
	if i := strings.Index(path, "://"); i >= 0 {
		rest := path[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			path = rest[j:]
		} else {
			path = "/"
		}
	}
	var body []byte
	ctype := "text/plain"
	switch {
	case strings.HasPrefix(path, "/size/"):
		n, err := strconv.Atoi(strings.TrimPrefix(path, "/size/"))
		if err != nil || n < 0 || n > 64<<20 {
			return &httpwire.Response{Status: 400, Headers: map[string]string{"Content-Length": "0"}}
		}
		body = Body(n)
	case strings.HasPrefix(path, "/echo/"):
		body = []byte(strings.TrimPrefix(path, "/echo/"))
	default:
		body = []byte("<html><body>spdier test origin</body></html>")
		ctype = "text/html"
	}
	return &httpwire.Response{
		Status: 200,
		Headers: map[string]string{
			"Content-Type":   ctype,
			"Content-Length": strconv.Itoa(len(body)),
			"Server":         "spdier-origin/1.0",
		},
		Body: body,
	}
}
