package liveproxy

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conduit is a TCP relay that adds one-way latency and caps bandwidth in
// both directions — a loopback stand-in for the cellular leg, so the
// live proxy stack can be exercised under high-RTT conditions without a
// modem (the role Dummynet played in the Google SPDY study the paper
// cites).
type Conduit struct {
	ln     net.Listener
	target string

	// Delay is the added one-way latency per direction.
	Delay time.Duration
	// BandwidthBPS caps throughput per direction (0 = unlimited).
	BandwidthBPS int64
	// MaxBuffer bounds bytes buffered inside the conduit per direction;
	// beyond it the reader blocks, pushing backpressure to the sender so
	// upstream prioritization stays meaningful. Default 64 KiB.
	MaxBuffer int

	mu    sync.Mutex
	conns int
}

// StartConduit relays addr → target with shaping.
func StartConduit(addr, target string, delay time.Duration, bandwidthBPS int64) (*Conduit, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("liveproxy: conduit listen: %w", err)
	}
	c := &Conduit{ln: ln, target: target, Delay: delay, BandwidthBPS: bandwidthBPS}
	go c.acceptLoop()
	return c, nil
}

// Addr returns the conduit's listening address.
func (c *Conduit) Addr() string { return c.ln.Addr().String() }

// Conns returns the number of relayed connections.
func (c *Conduit) Conns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conns
}

// Close stops accepting; existing relays drain.
func (c *Conduit) Close() error { return c.ln.Close() }

func (c *Conduit) acceptLoop() {
	for {
		down, err := c.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", c.target)
		if err != nil {
			down.Close()
			continue
		}
		c.mu.Lock()
		c.conns++
		c.mu.Unlock()
		go c.relay(down, up)
		go c.relay(up, down)
	}
}

// relay copies src→dst, delaying each chunk by Delay and pacing to the
// bandwidth cap. Chunks are timestamped on arrival and released in
// order, so the added latency does not also serialize throughput.
func (c *Conduit) relay(src, dst net.Conn) {
	defer dst.Close()
	type chunk struct {
		data []byte
		due  time.Time
	}
	maxBuf := c.MaxBuffer
	if maxBuf <= 0 {
		maxBuf = 64 << 10
	}
	ch := make(chan chunk, 4096)
	var mu sync.Mutex
	queued := 0
	spaceFree := sync.NewCond(&mu)
	go func() {
		defer close(ch)
		var budgetAt time.Time
		buf := make([]byte, 8<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				mu.Lock()
				for queued > maxBuf {
					spaceFree.Wait()
				}
				queued += n
				mu.Unlock()
				data := make([]byte, n)
				copy(data, buf[:n])
				now := time.Now()
				due := now.Add(c.Delay)
				if c.BandwidthBPS > 0 {
					tx := time.Duration(float64(n*8) / float64(c.BandwidthBPS) * float64(time.Second))
					if budgetAt.Before(now) {
						budgetAt = now
					}
					budgetAt = budgetAt.Add(tx)
					if budgetAt.After(due) {
						due = budgetAt
					}
				}
				ch <- chunk{data: data, due: due}
			}
			if err != nil {
				return
			}
		}
	}()
	for ck := range ch {
		if d := time.Until(ck.due); d > 0 {
			time.Sleep(d)
		}
		_, err := dst.Write(ck.data)
		mu.Lock()
		queued -= len(ck.data)
		spaceFree.Signal()
		mu.Unlock()
		if err != nil {
			// Unblock and drain the reader side so its goroutine exits.
			mu.Lock()
			queued = 0
			spaceFree.Broadcast()
			mu.Unlock()
			go func() {
				for range ch {
					mu.Lock()
					queued = 0
					spaceFree.Broadcast()
					mu.Unlock()
				}
			}()
			return
		}
	}
}

// Discard drains a reader (helper for benchmarks).
func Discard(r io.Reader) (int64, error) { return io.Copy(io.Discard, r) }
