package liveproxy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"spdier/internal/httpwire"
	"spdier/internal/spdy"
)

// SPDYProxy accepts SPDY/3 sessions and proxies each stream to an
// HTTP/1.1 origin — the role the Chromium flip server played in the
// paper's deployment. Responses are scheduled strictly by SPDY priority
// with round-robin chunk interleave within a class.
type SPDYProxy struct {
	ln net.Listener

	// OriginOverride, when non-empty, routes every request to one origin
	// address regardless of the :host header (test deployments).
	OriginOverride string

	// ChunkSize bounds DATA frame payloads (default 8 KiB).
	ChunkSize int

	// PushMap configures SPDY server push ("server-initiated data
	// exchange", §2.2 of the paper): when a stream for a key path
	// completes its fetch, the proxy pushes the associated paths on
	// server-initiated (even-numbered) unidirectional streams, saving
	// the client a round trip per resource.
	PushMap map[string][]string

	mu       sync.Mutex
	streams  int
	sessions int
	barrier  int
	closed   bool
}

// SetBarrier makes each subsequently accepted session hold its write
// loop until n response bodies have been fully enqueued. The live wire
// is asynchronous — origin fetches race on goroutines — so without a
// barrier the completion order of similarly-timed streams depends on
// scheduler luck. With the barrier, every response is queued before the
// first byte leaves, and the strict-priority drain alone decides the
// order: the property the differential harness compares against the
// simulator. n <= 0 (the default) disables the hold. A session whose
// streams cannot produce n bodies (e.g. a fetch error replaced a body
// with RST_STREAM) will stall; the barrier is a test-harness knob, not
// a production mode.
func (p *SPDYProxy) SetBarrier(n int) {
	p.mu.Lock()
	p.barrier = n
	p.mu.Unlock()
}

// StartSPDYProxy listens for SPDY sessions on addr.
func StartSPDYProxy(addr, originOverride string) (*SPDYProxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("liveproxy: spdy proxy listen: %w", err)
	}
	p := &SPDYProxy{ln: ln, OriginOverride: originOverride, ChunkSize: 8 << 10}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listening address.
func (p *SPDYProxy) Addr() string { return p.ln.Addr().String() }

// Stats returns (sessions accepted, streams served).
func (p *SPDYProxy) Stats() (sessions, streams int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sessions, p.streams
}

// Close stops the listener.
func (p *SPDYProxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *SPDYProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.sessions++
		p.mu.Unlock()
		s := newProxySession(p, conn)
		go func() {
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); s.readLoop() }()
			go func() { defer wg.Done(); s.writeLoop() }()
			// Both loops have quiesced: safe to hand the session's zlib
			// contexts back to the pool.
			wg.Wait()
			s.framer.Release()
		}()
	}
}

// outFrame is one queued write with its SPDY priority.
type outFrame struct {
	prio  spdy.Priority
	frame spdy.Frame
}

// proxySession is the server side of one SPDY connection.
type proxySession struct {
	p      *SPDYProxy
	conn   net.Conn
	framer *spdy.Framer

	mu         sync.Mutex
	cond       *sync.Cond
	queue      spdy.PriorityQueue[outFrame]
	nextPushID uint32
	flows      map[uint32]*streamFlow
	barrier    int // write loop holds until bodies >= barrier (0 = off)
	bodies     int // response bodies fully enqueued so far
	closed     bool
}

// streamFlow is the SPDY/3 per-stream flow-control state: a 64 KiB send
// window replenished by the client's WINDOW_UPDATE frames. DATA beyond
// the window parks here until credit returns.
type streamFlow struct {
	window int
	prio   spdy.Priority
	parked []spdy.DataFrame
}

// initialStreamWindow is the SPDY/3 default per-stream window.
const initialStreamWindow = 64 << 10

func newProxySession(p *SPDYProxy, conn net.Conn) *proxySession {
	// Keep the kernel send buffer small so prioritization decisions stay
	// in the session's queue (where they can still reorder) rather than
	// in socket buffers (where they cannot).
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetWriteBuffer(16 << 10)
		tc.SetNoDelay(true)
	}
	p.mu.Lock()
	barrier := p.barrier
	p.mu.Unlock()
	s := &proxySession{
		p:          p,
		conn:       conn,
		framer:     spdy.NewFramer(conn),
		nextPushID: 2,
		flows:      make(map[uint32]*streamFlow),
		barrier:    barrier,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue schedules a frame for the write loop.
func (s *proxySession) enqueue(prio spdy.Priority, fr spdy.Frame) {
	s.mu.Lock()
	s.queue.Push(prio, outFrame{prio: prio, frame: fr})
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *proxySession) shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.conn.Close()
}

// readLoop parses inbound frames; each SYN_STREAM spawns a fetch.
func (s *proxySession) readLoop() {
	defer s.shutdown()
	for {
		fr, err := s.framer.ReadFrame()
		if err != nil {
			return
		}
		switch fr := fr.(type) {
		case spdy.SynStream:
			s.p.mu.Lock()
			s.p.streams++
			s.p.mu.Unlock()
			go s.fetch(fr)
		case spdy.Ping:
			// Echo pings immediately at top priority (RTT probes and the
			// Figure 14 radio keep-alive).
			s.enqueue(0, fr)
		case spdy.Goaway:
			return
		case spdy.WindowUpdate:
			s.credit(fr.StreamID, int(fr.Delta))
		case spdy.RstStream, spdy.SettingsFrame, spdy.HeadersFrame, spdy.DataFrame:
			// Request bodies and remaining session control are accepted
			// and ignored: the proxy only serves GETs, as the paper's
			// workload did.
		}
	}
}

// errBadGateway marks origin fetch failures.
var errBadGateway = errors.New("liveproxy: origin fetch failed")

// fetch retrieves the stream's object from the origin and enqueues the
// response frames at the stream's priority.
func (s *proxySession) fetch(syn spdy.SynStream) {
	host := syn.Headers.Get(":host")
	path := syn.Headers.Get(":path")
	if path == "" {
		path = "/"
	}
	addr := s.p.OriginOverride
	if addr == "" {
		addr = host
		if !strings.Contains(addr, ":") {
			addr += ":80"
		}
	}
	resp, err := fetchHTTP(addr, host, path)
	if err != nil {
		s.enqueue(syn.Priority, spdy.RstStream{StreamID: syn.StreamID, Status: spdy.StatusRefusedStream})
		return
	}

	s.enqueue(syn.Priority, spdy.SynReply{
		StreamID: syn.StreamID,
		Headers: spdy.ResponseHeaders(
			fmt.Sprintf("%d %s", resp.Status, httpwire.StatusText(resp.Status)),
			resp.Headers["Content-Type"], int64(len(resp.Body))),
	})
	s.enqueueBody(syn.StreamID, syn.Priority, resp.Body)

	// Server push: resources associated with this path ride even-ID
	// unidirectional streams without waiting to be asked for.
	for _, assoc := range s.p.PushMap[path] {
		go s.push(syn, host, addr, assoc)
	}
}

// enqueueBody chunks a response body onto the write queue, honoring the
// stream's flow-control window: chunks beyond the window park until the
// client sends WINDOW_UPDATE credit.
func (s *proxySession) enqueueBody(streamID uint32, prio spdy.Priority, body []byte) {
	chunk := s.p.ChunkSize
	if chunk <= 0 {
		chunk = 8 << 10
	}
	s.mu.Lock()
	fl := s.flows[streamID]
	if fl == nil {
		fl = &streamFlow{window: initialStreamWindow, prio: prio}
		s.flows[streamID] = fl
	}
	for off := 0; ; off += chunk {
		end := off + chunk
		if end >= len(body) {
			fl.parked = append(fl.parked, spdy.DataFrame{StreamID: streamID, Fin: true, Data: body[off:]})
			break
		}
		fl.parked = append(fl.parked, spdy.DataFrame{StreamID: streamID, Data: body[off:end]})
	}
	s.drainFlowLocked(streamID, fl)
	s.bodies++
	s.mu.Unlock()
	s.cond.Signal()
}

// drainFlowLocked moves parked DATA into the write queue while window
// credit remains. Caller holds s.mu.
func (s *proxySession) drainFlowLocked(streamID uint32, fl *streamFlow) {
	for len(fl.parked) > 0 && fl.window >= len(fl.parked[0].Data) {
		fr := fl.parked[0]
		fl.parked = fl.parked[1:]
		fl.window -= len(fr.Data)
		s.queue.Push(fl.prio, outFrame{prio: fl.prio, frame: fr})
		if fr.Fin && len(fl.parked) == 0 {
			delete(s.flows, streamID)
		}
	}
}

// credit applies a WINDOW_UPDATE from the client.
func (s *proxySession) credit(streamID uint32, delta int) {
	s.mu.Lock()
	if fl := s.flows[streamID]; fl != nil {
		fl.window += delta
		s.drainFlowLocked(streamID, fl)
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// push fetches one associated resource and streams it to the client on a
// server-initiated stream tied to the triggering request.
func (s *proxySession) push(parent spdy.SynStream, host, addr, path string) {
	resp, err := fetchHTTP(addr, host, path)
	if err != nil {
		return // pushes are best-effort
	}
	s.mu.Lock()
	id := s.nextPushID
	s.nextPushID += 2
	s.mu.Unlock()

	h := spdy.ResponseHeaders("200 OK", resp.Headers["Content-Type"], int64(len(resp.Body)))
	h[":scheme"] = "http"
	h[":host"] = host
	h[":path"] = path
	s.enqueue(parent.Priority, spdy.SynStream{
		StreamID: id,
		AssocID:  parent.StreamID,
		Priority: parent.Priority,
		Headers:  h,
	})
	s.enqueueBody(id, parent.Priority, resp.Body)
}

// writeLoop drains the priority queue onto the wire. Because frames sit
// in this queue (not the kernel buffer) until the socket accepts them,
// late-arriving high-priority responses overtake queued low-priority
// data — the prioritization SPDY promises.
func (s *proxySession) writeLoop() {
	for {
		s.mu.Lock()
		for (s.queue.Len() == 0 || s.bodies < s.barrier) && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		item, _ := s.queue.Pop()
		s.mu.Unlock()
		if err := s.framer.WriteFrame(item.frame); err != nil {
			s.shutdown()
			return
		}
	}
}

// fetchHTTP performs one HTTP/1.1 GET over a fresh connection.
func fetchHTTP(addr, host, path string) (*httpwire.Response, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadGateway, err)
	}
	defer conn.Close()
	req := httpwire.Request{
		Method:  "GET",
		Target:  path,
		Headers: map[string]string{"Host": host, "Connection": "close"},
	}
	if _, err := conn.Write(req.Marshal()); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadGateway, err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadGateway, err)
	}
	return resp, nil
}

// HTTPProxy is a minimal Squid-role forward proxy: absolute-form GETs
// over persistent client connections, one outstanding request per
// connection, no pipelining (matching the paper's configuration).
type HTTPProxy struct {
	ln             net.Listener
	OriginOverride string

	mu     sync.Mutex
	served int
}

// StartHTTPProxy listens on addr.
func StartHTTPProxy(addr, originOverride string) (*HTTPProxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("liveproxy: http proxy listen: %w", err)
	}
	p := &HTTPProxy{ln: ln, OriginOverride: originOverride}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listening address.
func (p *HTTPProxy) Addr() string { return p.ln.Addr().String() }

// Served returns the number of proxied requests.
func (p *HTTPProxy) Served() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.served
}

// Close stops the listener.
func (p *HTTPProxy) Close() error { return p.ln.Close() }

func (p *HTTPProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

func (p *HTTPProxy) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		req, err := httpwire.ReadRequest(br)
		if err != nil {
			return
		}
		host, path := splitAbsolute(req.Target)
		addr := p.OriginOverride
		if addr == "" {
			addr = host
			if !strings.Contains(addr, ":") {
				addr += ":80"
			}
		}
		resp, err := fetchHTTP(addr, host, path)
		if err != nil {
			resp = &httpwire.Response{Status: 502, Headers: map[string]string{"Content-Length": "0"}}
		}
		resp.Headers["Via"] = "1.1 spdier-proxy"
		if _, err := conn.Write(resp.Marshal()); err != nil {
			return
		}
		p.mu.Lock()
		p.served++
		p.mu.Unlock()
	}
}

// splitAbsolute splits an absolute-form request target into host and path.
func splitAbsolute(target string) (host, path string) {
	rest := target
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		return rest[:j], rest[j:]
	}
	return rest, "/"
}
