package liveproxy

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"spdier/internal/httpwire"
	"spdier/internal/spdy"
)

// FetchResult is one completed stream at the client.
type FetchResult struct {
	Path      string
	Status    string
	Body      []byte
	FirstByte time.Duration // request write → SYN_REPLY
	Done      time.Duration // request write → final DATA
	Seq       int           // session-wide completion order (1 = finished first)
	Pushed    bool          // arrived via server push, never requested
	Err       error
}

// SPDYClient multiplexes concurrent GETs over one SPDY session, as
// Chrome did against the paper's SPDY proxy.
type SPDYClient struct {
	conn   net.Conn
	framer *spdy.Framer

	mu          sync.Mutex
	writeMu     sync.Mutex
	nextID      uint32
	finishSeq   int
	streams     map[uint32]*clientStream
	pingWaiters []pingWaiter
	pushed      chan FetchResult
	err         error
	done        chan struct{}
}

type clientStream struct {
	path    string
	started time.Time
	res     FetchResult
	ch      chan FetchResult
}

// DialSPDY opens a session to a SPDY proxy.
func DialSPDY(addr string) (*SPDYClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("liveproxy: dial spdy: %w", err)
	}
	c := &SPDYClient{
		conn:    conn,
		framer:  spdy.NewFramer(conn),
		nextID:  1,
		streams: make(map[uint32]*clientStream),
		pushed:  make(chan FetchResult, 32),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the session down.
func (c *SPDYClient) Close() error { return c.conn.Close() }

// Get starts a stream for host/path at the given priority and returns a
// channel delivering the final result.
func (c *SPDYClient) Get(host, path string, prio spdy.Priority) (<-chan FetchResult, error) {
	st := &clientStream{path: path, ch: make(chan FetchResult, 1)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID += 2
	c.streams[id] = st
	c.mu.Unlock()

	syn := spdy.SynStream{
		StreamID: id,
		Priority: prio,
		Fin:      true,
		Headers:  spdy.RequestHeaders("GET", "http", host, path, "spdier-client/1.0"),
	}
	st.started = time.Now()
	c.writeMu.Lock()
	err := c.framer.WriteFrame(syn)
	c.writeMu.Unlock()
	if err != nil {
		c.fail(err)
		return nil, err
	}
	return st.ch, nil
}

// Ping sends a PING frame and returns the measured round trip.
func (c *SPDYClient) Ping(id uint32, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.pingWaiters = append(c.pingWaiters, pingWaiter{id: id, ch: ch})
	c.mu.Unlock()
	c.writeMu.Lock()
	err := c.framer.WriteFrame(spdy.Ping{ID: id})
	c.writeMu.Unlock()
	if err != nil {
		return 0, err
	}
	select {
	case <-ch:
		return time.Since(start), nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("liveproxy: ping %d timed out", id)
	case <-c.done:
		return 0, fmt.Errorf("liveproxy: session closed")
	}
}

type pingWaiter struct {
	id uint32
	ch chan struct{}
}

func (c *SPDYClient) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
		for id, st := range c.streams {
			st.res.Err = err
			if st.ch != nil {
				st.ch <- st.res
			}
			delete(c.streams, id)
		}
	}
	c.mu.Unlock()
}

func (c *SPDYClient) readLoop() {
	// The session is dead once this loop exits; recycle the zlib contexts.
	// Writers serialize on writeMu, so taking it here means no Get/Ping is
	// mid-WriteFrame when the framer is released — late writers get
	// ErrFramerReleased instead.
	defer func() {
		c.writeMu.Lock()
		c.framer.Release()
		c.writeMu.Unlock()
	}()
	for {
		fr, err := c.framer.ReadFrame()
		if err != nil {
			c.fail(err)
			return
		}
		switch fr := fr.(type) {
		case spdy.SynStream:
			// Server push: an even-numbered, server-initiated stream
			// announcing a resource the client never requested.
			if fr.StreamID%2 == 0 {
				c.mu.Lock()
				c.streams[fr.StreamID] = &clientStream{
					path:    fr.Headers.Get(":path"),
					started: time.Now(),
					res: FetchResult{
						Status: fr.Headers.Get(":status"),
						Pushed: true,
					},
					ch: nil, // delivered via Pushed()
				}
				c.mu.Unlock()
			}
		case spdy.SynReply:
			c.mu.Lock()
			if st := c.streams[fr.StreamID]; st != nil {
				st.res.Status = fr.Headers.Get(":status")
				st.res.FirstByte = time.Since(st.started)
				if fr.Fin {
					c.finish(fr.StreamID, st)
				}
			}
			c.mu.Unlock()
		case spdy.DataFrame:
			c.mu.Lock()
			if st := c.streams[fr.StreamID]; st != nil {
				st.res.Body = append(st.res.Body, fr.Data...)
				if fr.Fin {
					c.finish(fr.StreamID, st)
				}
			}
			c.mu.Unlock()
			// Flow control: return window credit for consumed bytes so
			// the proxy can keep the stream moving (SPDY/3 §2.6.8).
			if n := len(fr.Data); n > 0 {
				c.writeMu.Lock()
				werr := c.framer.WriteFrame(spdy.WindowUpdate{StreamID: fr.StreamID, Delta: uint32(n)})
				c.writeMu.Unlock()
				if werr != nil {
					c.fail(werr)
					return
				}
			}
		case spdy.RstStream:
			c.mu.Lock()
			if st := c.streams[fr.StreamID]; st != nil {
				st.res.Err = fmt.Errorf("liveproxy: stream %d reset, status %d", fr.StreamID, fr.Status)
				c.finish(fr.StreamID, st)
			}
			c.mu.Unlock()
		case spdy.Ping:
			c.mu.Lock()
			for i, w := range c.pingWaiters {
				if w.id == fr.ID {
					w.ch <- struct{}{}
					c.pingWaiters = append(c.pingWaiters[:i], c.pingWaiters[i+1:]...)
					break
				}
			}
			c.mu.Unlock()
		case spdy.Goaway:
			c.fail(fmt.Errorf("liveproxy: GOAWAY status %d", fr.Status))
			return
		}
	}
}

// finish must be called with c.mu held. The completion sequence is
// assigned here, in the read loop's frame order, so callers can recover
// the exact wire-level completion order without comparing per-stream
// clocks (whose start skew exceeds loopback inter-completion gaps).
func (c *SPDYClient) finish(id uint32, st *clientStream) {
	c.finishSeq++
	st.res.Seq = c.finishSeq
	st.res.Path = st.path
	st.res.Done = time.Since(st.started)
	if st.ch != nil {
		st.ch <- st.res
	} else {
		// Server-pushed stream: hand to the push channel, dropping on
		// overflow (pushes are best-effort hints).
		select {
		case c.pushed <- st.res:
		default:
		}
	}
	delete(c.streams, id)
}

// Pushed returns the channel of completed server-pushed resources.
func (c *SPDYClient) Pushed() <-chan FetchResult { return c.pushed }

// HTTPProxyGet performs one GET through an HTTP forward proxy over a
// fresh connection (the per-request path of the Squid role).
func HTTPProxyGet(proxyAddr, host, path string) (*httpwire.Response, time.Duration, error) {
	start := time.Now()
	conn, err := net.Dial("tcp", proxyAddr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	req := httpwire.Request{
		Method:  "GET",
		Target:  "http://" + host + path,
		Headers: httpwire.DefaultRequestHeaders(host),
	}
	if _, err := conn.Write(req.Marshal()); err != nil {
		return nil, 0, err
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, 0, err
	}
	return resp, time.Since(start), nil
}
