// Package transport composes an endpoint's transport stack from
// independent layers — congestion control, loss recovery, idle policy,
// undo policy, connection metrics, instrumentation — instead of
// hand-assigning tcpsim.Config flags at every call site (ROADMAP
// item 1).
//
// A Layer is a Config transformer; Compose folds layers over a base
// Config in order. The composition is *config-level* on purpose: the
// resulting Config is field-for-field identical to what the legacy
// direct assignments produced, so the refactor cannot perturb a single
// RNG draw or event timestamp — which is what lets the golden-report
// tests pin "composed stack ≡ pre-refactor monolith" byte for byte
// (see internal/experiment/layering_test.go).
//
// Kind names the wire protocol multiplexing layer above the transport;
// the browser/proxy pair select their session machinery from it, while
// the Spec below carries everything the transport itself needs.
package transport

import "spdier/internal/tcpsim"

// Layer is one composable stack ingredient: a pure Config transformer.
type Layer func(*tcpsim.Config)

// Compose applies layers to a copy of base, left to right, and returns
// the finished Config. Later layers win on overlapping fields.
func Compose(base tcpsim.Config, layers ...Layer) tcpsim.Config {
	for _, l := range layers {
		if l != nil {
			l(&base)
		}
	}
	return base
}

// CC selects the congestion-control variant by registry name
// ("cubic", "reno", or anything installed via tcpsim.RegisterCC). An
// empty name defers to the base Config's variant.
func CC(name string) Layer {
	return func(c *tcpsim.Config) {
		if name != "" {
			c.CC = name
		}
	}
}

// Recovery installs a loss-recovery policy (the PR-6 TLP/RACK/F-RTO
// arms as one unit).
func Recovery(p tcpsim.RecoveryPolicy) Layer {
	return func(c *tcpsim.Config) { *c = c.WithRecovery(p) }
}

// Idle sets the idle-window policy pair the paper's §6 revolves around:
// Linux cwnd validation and the §6.2.1 RTT-reset fix.
func Idle(slowStartAfterIdle, resetRTTAfterIdle bool) Layer {
	return func(c *tcpsim.Config) {
		c.SlowStartAfterIdle = slowStartAfterIdle
		c.ResetRTTAfterIdle = resetRTTAfterIdle
	}
}

// Undo disables (or re-enables) DSACK/Eifel undo of spurious loss
// episodes — the §6.2.1 ablation arm.
func Undo(disabled bool) Layer {
	return func(c *tcpsim.Config) { c.DisableUndo = disabled }
}

// Metrics attaches the shared per-destination cache (§6.2.4); nil
// detaches it.
func Metrics(mc *tcpsim.MetricsCache) Layer {
	return func(c *tcpsim.Config) { c.Metrics = mc }
}

// Probe attaches tcp_probe-style instrumentation; nil detaches it.
func Probe(p tcpsim.Probe) Layer {
	return func(c *tcpsim.Config) { c.Probe = p }
}

// ZeroRTT toggles 0-RTT resumption on QUIC-style endpoints (ignored by
// TCP transports).
func ZeroRTT(on bool) Layer {
	return func(c *tcpsim.Config) { c.ZeroRTT = on }
}

// Kind names the protocol stack above the transport.
type Kind string

// Protocol arms of the `protocols` experiment.
const (
	// KindHTTP is HTTP/1.1 over per-request TCP connections.
	KindHTTP Kind = "http"
	// KindSPDY is SPDY/3 framing over one TCP connection (the paper's).
	KindSPDY Kind = "spdy"
	// KindH2 is HTTP/2-like framing (HPACK-sized headers, per-stream
	// flow control) over one TCP connection.
	KindH2 Kind = "h2"
	// KindQUIC is the QUIC-style transport: stream-level loss isolation
	// over tcpsim.QUICConn, 0-RTT resumption.
	KindQUIC Kind = "quic"
)

// Multiplexed reports whether the kind carries many resources on one
// transport connection (the paper's "single connection absorbs all the
// damage" regime).
func (k Kind) Multiplexed() bool { return k == KindSPDY || k == KindH2 || k == KindQUIC }

// OverTCP reports whether the kind rides the TCP Conn (as opposed to
// the QUIC-style transport).
func (k Kind) OverTCP() bool { return k != KindQUIC }

// Spec is one fully composed transport stack, ready to apply to any
// base Config. The zero value composes the paper-era proxy stack minus
// instrumentation: cubic-by-default CC (empty name defers to the base
// Config), no recovery arms, idle validation off, undo enabled.
type Spec struct {
	//lint:allow fieldcover Kind selects which client/conn the arm builds, not a tcpsim.Config knob; Apply composes every config-bearing field via Layers
	Kind               Kind
	CC                 string
	Recovery           tcpsim.RecoveryPolicy
	SlowStartAfterIdle bool
	ResetRTTAfterIdle  bool
	DisableUndo        bool
	ZeroRTT            bool
	Metrics            *tcpsim.MetricsCache
	Probe              tcpsim.Probe
}

// Layers returns the Spec as an ordered layer list.
func (s Spec) Layers() []Layer {
	return []Layer{
		CC(s.CC),
		Recovery(s.Recovery),
		Idle(s.SlowStartAfterIdle, s.ResetRTTAfterIdle),
		Undo(s.DisableUndo),
		ZeroRTT(s.ZeroRTT),
		Metrics(s.Metrics),
		Probe(s.Probe),
	}
}

// Apply composes the Spec onto base and returns the finished Config.
func (s Spec) Apply(base tcpsim.Config) tcpsim.Config {
	return Compose(base, s.Layers()...)
}
