package transport

import (
	"reflect"
	"testing"

	"spdier/internal/tcpsim"
)

// TestSpecApplyMatchesLegacyAssignments is the config-level half of the
// layering-equivalence bar: for every knob combination the experiment
// harness ever sets, Spec.Apply must produce a Config field-for-field
// identical to the legacy direct assignments it replaced. (The
// trace-level half lives in internal/experiment/layering_test.go.)
func TestSpecApplyMatchesLegacyAssignments(t *testing.T) {
	rec := tcpsim.NewRecorder()
	mc := tcpsim.NewMetricsCache()

	for _, cc := range []string{"cubic", "reno"} {
		for _, pol := range []tcpsim.RecoveryPolicy{
			{}, {TLP: true}, {RACK: true}, {FRTO: true}, tcpsim.ModernLinux(),
		} {
			for _, ssai := range []bool{true, false} {
				for _, rst := range []bool{true, false} {
					for _, noUndo := range []bool{true, false} {
						base := tcpsim.DefaultConfig()
						base.TLS = true

						legacy := base
						legacy.Probe = rec
						legacy.CC = cc
						legacy.SlowStartAfterIdle = ssai
						legacy.ResetRTTAfterIdle = rst
						legacy.DisableUndo = noUndo
						legacy.TLP = pol.TLP
						legacy.RACK = pol.RACK
						legacy.FRTO = pol.FRTO
						legacy.Metrics = mc

						composed := Spec{
							Kind:               KindSPDY,
							CC:                 cc,
							Recovery:           pol,
							SlowStartAfterIdle: ssai,
							ResetRTTAfterIdle:  rst,
							DisableUndo:        noUndo,
							Metrics:            mc,
							Probe:              rec,
						}.Apply(base)

						if !reflect.DeepEqual(legacy, composed) {
							t.Fatalf("cc=%s pol=%+v ssai=%v rst=%v noUndo=%v:\nlegacy   %+v\ncomposed %+v",
								cc, pol, ssai, rst, noUndo, legacy, composed)
						}
					}
				}
			}
		}
	}
}

func TestComposeOrderAndPurity(t *testing.T) {
	base := tcpsim.DefaultConfig()
	got := Compose(base, CC("reno"), CC("cubic"), nil, Undo(true))
	if got.CC != "cubic" {
		t.Fatalf("later layer did not win: CC = %q", got.CC)
	}
	if !got.DisableUndo {
		t.Fatal("Undo(true) not applied")
	}
	if base.DisableUndo || base.CC != "cubic" {
		t.Fatalf("Compose mutated its base: %+v", base)
	}
	// Empty CC defers to the base variant.
	if got := Compose(base, CC("")); got.CC != base.CC {
		t.Fatalf("CC(\"\") overwrote base variant: %q", got.CC)
	}
}

func TestIndividualLayers(t *testing.T) {
	base := tcpsim.DefaultConfig()

	c := Compose(base, Recovery(tcpsim.RecoveryPolicy{TLP: true, FRTO: true}))
	if !c.TLP || c.RACK || !c.FRTO {
		t.Fatalf("Recovery layer: got TLP=%v RACK=%v FRTO=%v", c.TLP, c.RACK, c.FRTO)
	}
	if got := c.Recovery(); got != (tcpsim.RecoveryPolicy{TLP: true, FRTO: true}) {
		t.Fatalf("Config.Recovery() = %+v", got)
	}

	c = Compose(base, Idle(false, true))
	if c.SlowStartAfterIdle || !c.ResetRTTAfterIdle {
		t.Fatalf("Idle layer: got ssai=%v reset=%v", c.SlowStartAfterIdle, c.ResetRTTAfterIdle)
	}

	c = Compose(base, ZeroRTT(true))
	if !c.ZeroRTT {
		t.Fatal("ZeroRTT layer not applied")
	}

	mc := tcpsim.NewMetricsCache()
	c = Compose(base, Metrics(mc))
	if c.Metrics != mc {
		t.Fatal("Metrics layer not applied")
	}

	rec := tcpsim.NewRecorder()
	c = Compose(base, Probe(rec))
	if c.Probe != tcpsim.Probe(rec) {
		t.Fatal("Probe layer not applied")
	}
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k     Kind
		mux   bool
		onTCP bool
	}{
		{KindHTTP, false, true},
		{KindSPDY, true, true},
		{KindH2, true, true},
		{KindQUIC, true, false},
	}
	for _, c := range cases {
		if c.k.Multiplexed() != c.mux || c.k.OverTCP() != c.onTCP {
			t.Errorf("%s: Multiplexed=%v OverTCP=%v, want %v/%v",
				c.k, c.k.Multiplexed(), c.k.OverTCP(), c.mux, c.onTCP)
		}
	}
}

// TestPaperEraAndModernLinux pins the two named policy bundles.
func TestPaperEraAndModernLinux(t *testing.T) {
	if p := tcpsim.PaperEra(); p.TLP || p.RACK || p.FRTO {
		t.Fatalf("PaperEra = %+v, want all arms off", p)
	}
	if m := tcpsim.ModernLinux(); !m.TLP || !m.RACK || !m.FRTO {
		t.Fatalf("ModernLinux = %+v, want all arms on", m)
	}
}
