package transport

import (
	"reflect"
	"testing"

	"spdier/internal/tcpsim"
)

type sinkProbe struct{}

func (sinkProbe) Sample(tcpsim.ProbeSample) {}

// TestApplyCoversEverySpecField is the runtime twin of the transitive
// fieldcover rule on (Spec, Apply): every Spec field except Kind must
// change the composed Config under some perturbation, so an arm that
// sets a field is guaranteed to configure what it claims to measure.
// Kind is exempt by policy (it selects client/session machinery, not a
// Config knob) — the same exemption the //lint:allow on the field
// records. A new Spec field fails this test until a perturbation (and a
// Layers entry) exists for it.
func TestApplyCoversEverySpecField(t *testing.T) {
	perturb := map[string]func(*Spec){
		"Kind":               nil, // exempt: not a Config knob
		"CC":                 func(s *Spec) { s.CC = "reno" },
		"Recovery":           func(s *Spec) { s.Recovery = tcpsim.RecoveryPolicy{TLP: true, RACK: true, FRTO: true} },
		"SlowStartAfterIdle": func(s *Spec) { s.SlowStartAfterIdle = true },
		"ResetRTTAfterIdle":  func(s *Spec) { s.ResetRTTAfterIdle = true },
		"DisableUndo":        func(s *Spec) { s.DisableUndo = true },
		"ZeroRTT":            func(s *Spec) { s.ZeroRTT = true },
		"Metrics":            func(s *Spec) { s.Metrics = tcpsim.NewMetricsCache() },
		"Probe":              func(s *Spec) { s.Probe = sinkProbe{} },
	}

	base := tcpsim.Config{}
	zero := Spec{}.Apply(base)

	typ := reflect.TypeOf(Spec{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		fn, covered := perturb[name]
		if !covered {
			t.Errorf("Spec.%s has no perturbation here: decide how Apply composes it (and add a Layers entry)", name)
			continue
		}
		if fn == nil {
			continue
		}
		var s Spec
		fn(&s)
		if reflect.DeepEqual(s.Apply(base), zero) {
			t.Errorf("Spec.%s: perturbation did not change the composed Config — the field is not wired through Layers", name)
		}
	}
}
