// Package browser models the Chrome 23 client of the paper's testbed:
// dependency-driven object discovery (JS/CSS waves with sequential
// processing), an HTTP mode with per-domain persistent-connection pools
// (6 per domain, 32 total, one outstanding request per connection, no
// pipelining) and a SPDY mode with one TLS session carrying prioritized
// concurrent streams — optionally striped over N sessions for the §6.1
// multi-connection experiment. It produces the per-object timelines the
// authors collected over Chrome's remote debugging interface.
package browser

import (
	"fmt"
	"time"

	"spdier/internal/h2"
	"spdier/internal/proxy"
	"spdier/internal/sim"
	"spdier/internal/spdy"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// Mode selects the protocol the browser speaks to its proxy.
type Mode string

// Protocol modes.
const (
	ModeHTTP Mode = "http"
	ModeSPDY Mode = "spdy"
	// ModeH2 is HTTP/2-like framing over one TCP connection: HPACK-sized
	// headers and credit-based per-stream flow control.
	ModeH2 Mode = "h2"
	// ModeQUIC rides the QUIC-style transport: per-stream loss
	// isolation, connection-level recovery, optional 0-RTT resumption.
	ModeQUIC Mode = "quic"
)

// Config holds browser behaviour knobs.
type Config struct {
	Mode Mode

	// MaxConnsPerDomain and MaxTotalConns are Chrome's HTTP connection
	// budget (6 and 32).
	MaxConnsPerDomain int
	MaxTotalConns     int

	// SPDYSessions stripes SPDY over N connections with early binding
	// (requests assigned round-robin at issue time), reproducing the
	// §6.1 experiment. Normal SPDY operation is 1.
	SPDYSessions int

	// SPDYLateBinding switches striped SPDY to the remedy §6.2 proposes:
	// responses bind to whichever connection can transmit right now
	// instead of the one that carried the request.
	SPDYLateBinding bool

	// Pipelining enables HTTP/1.1 pipelining with PipelineDepth
	// outstanding requests per connection — the capability the paper
	// could not evaluate because Squid's support was rudimentary.
	Pipelining    bool
	PipelineDepth int

	// ClientTCP and ProxyTCP configure the two TCP stacks. The proxy
	// side is the data sender, so its config carries the probe, the
	// metrics cache and the idle-restart options under study.
	ClientTCP tcpsim.Config
	ProxyTCP  tcpsim.Config

	// IdleConnTimeout closes idle HTTP connections, as browsers do.
	IdleConnTimeout time.Duration

	// PageTimeout aborts a load that hasn't finished (browser stall
	// watchdog; the paper saw occasional stalls on site 2).
	PageTimeout time.Duration

	// Beacons enables the post-onLoad periodic transfers (ads,
	// analytics, refreshes) that §5.7 identifies as a trigger of
	// idle/active cycling during the user's think time.
	Beacons bool

	// H2EqualFraming makes the h2 mode price frames exactly as SPDY does
	// (shared zlib oracle, 8-byte DATA overhead) with never-binding
	// windows — the differential-oracle configuration under which h2 and
	// SPDY byte streams, and therefore PLTs, are identical.
	H2EqualFraming bool

	// QUICZeroRTT lets QUIC connections resume with 0-RTT when the
	// client's metrics cache knows the destination.
	QUICZeroRTT bool
}

// DefaultConfig returns the Chrome-like defaults for a mode.
func DefaultConfig(mode Mode) Config {
	clientTCP := tcpsim.DefaultConfig()
	proxyTCP := tcpsim.DefaultConfig()
	cfg := Config{
		Mode:              mode,
		MaxConnsPerDomain: 6,
		MaxTotalConns:     32,
		SPDYSessions:      1,
		ClientTCP:         clientTCP,
		ProxyTCP:          proxyTCP,
		IdleConnTimeout:   30 * time.Second,
		PageTimeout:       55 * time.Second,
		Beacons:           true,
	}
	if mode == ModeSPDY || mode == ModeH2 {
		cfg.ClientTCP.TLS = true
		cfg.ProxyTCP.TLS = true
	}
	if mode == ModeQUIC {
		// QUIC's crypto rides the transport handshake itself; the TCP TLS
		// surcharge does not apply. Resumption is on by default.
		cfg.QUICZeroRTT = true
	}
	return cfg
}

// Browser is one simulated client device running one protocol mode.
type Browser struct {
	loop *sim.Loop
	net  *tcpsim.Network
	prox *proxy.Proxy
	cfg  Config
	rng  *sim.RNG

	// HTTP state. poolOrder keeps deterministic pump order (map
	// iteration order would make runs unreproducible).
	pools      map[string]*domainPool
	poolOrder  []*domainPool
	totalConns int
	connSeq    int

	// SPDY state. group is non-nil in late-binding mode.
	sessions []*spdyHandle
	group    *proxy.SPDYGroup
	reqSeq   int

	// h2 and QUIC state: one session each, created on first use.
	h2sess   *h2Handle
	quicSess *quicHandle

	// All proxy-side endpoints ever created, for fleet-wide metrics
	// (bytes in flight, concurrent connection counts).
	proxyConns []*tcpsim.Conn
	proxyQUIC  []*tcpsim.QUICConn

	cur *pageLoad
}

// New creates a browser bound to a network and proxy host.
func New(loop *sim.Loop, net *tcpsim.Network, prox *proxy.Proxy, cfg Config, rng *sim.RNG) *Browser {
	return &Browser{
		loop:  loop,
		net:   net,
		prox:  prox,
		cfg:   cfg,
		rng:   rng,
		pools: make(map[string]*domainPool),
	}
}

// ProxyConns returns every proxy-side TCP endpoint created so far.
func (b *Browser) ProxyConns() []*tcpsim.Conn { return b.proxyConns }

// ProxyQUICConns returns every proxy-side QUIC endpoint created so far.
func (b *Browser) ProxyQUICConns() []*tcpsim.QUICConn { return b.proxyQUIC }

// H2Session returns the h2 proxy session, if the browser has opened one
// (for flow-conservation audits).
func (b *Browser) H2Session() *proxy.H2Session {
	if b.h2sess == nil {
		return nil
	}
	return b.h2sess.sess
}

// ActiveConns counts currently established HTTP connections plus SPDY
// sessions (the paper's "42.6 concurrent TCP connections" statistic).
func (b *Browser) ActiveConns() int {
	n := 0
	for _, p := range b.pools {
		for _, h := range p.conns {
			if h.established {
				n++
			}
		}
	}
	for _, s := range b.sessions {
		if s.established {
			n++
		}
	}
	if b.h2sess != nil && b.h2sess.established {
		n++
	}
	if b.quicSess != nil && b.quicSess.established {
		n++
	}
	return n
}

// --- page load bookkeeping ---

type pageLoad struct {
	page           *webpage.Page
	rec            *trace.PageRecord
	outstanding    int
	pendingReveals int
	finished       bool
	done           func(*trace.PageRecord)
	watchdog       sim.Timer
}

// LoadPage begins loading page; done fires at onLoad (or watchdog abort).
// Loads must not overlap: callers space them out (60 s in the paper).
func (b *Browser) LoadPage(page *webpage.Page, done func(*trace.PageRecord)) {
	pl := &pageLoad{
		page: page,
		rec:  &trace.PageRecord{Page: page, Start: b.loop.Now()},
		done: done,
	}
	b.cur = pl
	pl.watchdog = b.loop.After(b.cfg.PageTimeout, func() {
		if !pl.finished {
			pl.finished = true
			pl.rec.Aborted = true
			pl.rec.OnLoad = b.loop.Now()
			b.afterPage(pl)
		}
	})
	b.discover(pl, page.Main())
}

func (b *Browser) discover(pl *pageLoad, obj *webpage.Object) {
	if pl.finished {
		return
	}
	or := &trace.ObjectRecord{Obj: obj, Discovered: b.loop.Now()}
	pl.rec.Objects = append(pl.rec.Objects, or)
	pl.outstanding++
	onDone := func() { b.objectDone(pl, obj, or) }
	b.request(obj, or, onDone)
}

// request dispatches one object fetch to the mode's protocol machinery.
func (b *Browser) request(obj *webpage.Object, or *trace.ObjectRecord, onDone func()) {
	switch b.cfg.Mode {
	case ModeSPDY:
		b.requestSPDY(obj, or, onDone)
	case ModeH2:
		b.requestH2(obj, or, onDone)
	case ModeQUIC:
		b.requestQUIC(obj, or, onDone)
	default:
		b.requestHTTP(obj, or, onDone)
	}
}

func (b *Browser) objectDone(pl *pageLoad, obj *webpage.Object, or *trace.ObjectRecord) {
	pl.outstanding--
	children := pl.page.Children(obj.ID)
	if len(children) > 0 && !pl.finished {
		pl.pendingReveals++
		b.loop.After(time.Duration(obj.ProcessingDelay), func() {
			pl.pendingReveals--
			for _, c := range children {
				b.discover(pl, c)
			}
			b.checkDone(pl)
		})
	}
	b.checkDone(pl)
}

func (b *Browser) checkDone(pl *pageLoad) {
	if pl.finished || pl.outstanding > 0 || pl.pendingReveals > 0 {
		return
	}
	pl.finished = true
	pl.rec.OnLoad = b.loop.Now()
	pl.watchdog.Stop()
	b.afterPage(pl)
}

func (b *Browser) afterPage(pl *pageLoad) {
	if b.cfg.Beacons {
		b.scheduleBeacons(pl.page)
	}
	if pl.done != nil {
		pl.done(pl.rec)
	}
}

// scheduleBeacons models the periodic post-load transfers (analytics,
// ad refreshes) that keep poking the radio during think time.
func (b *Browser) scheduleBeacons(page *webpage.Page) {
	n := 2 + b.rng.Intn(2)
	at := b.loop.Now()
	for i := 0; i < n; i++ {
		at = at.Add(time.Duration(5+b.rng.Intn(14)) * time.Second)
		beacon := &webpage.Object{
			ID:     10000 + i,
			Kind:   webpage.KindText,
			Size:   300 + b.rng.Intn(1200),
			Domain: page.Main().Domain,
			Path:   fmt.Sprintf("/beacon/%d", i),
		}
		b.loop.At(at, func() {
			or := &trace.ObjectRecord{Obj: beacon, Discovered: b.loop.Now()}
			b.request(beacon, or, func() {})
		})
	}
}

// --- HTTP mode ---

type domainPool struct {
	domain  string
	conns   []*connHandle
	waiting []*pendingReq
}

type pendingReq struct {
	obj    *webpage.Object
	or     *trace.ObjectRecord
	onDone func()
}

type connHandle struct {
	id          string
	domain      string
	client      *tcpsim.Conn
	asm         *tcpsim.StreamAssembler
	hc          *proxy.HTTPConn
	established bool
	outstanding int // requests awaiting their response
	closed      bool
	idleTimer   sim.Timer
}

func (b *Browser) pool(domain string) *domainPool {
	p, ok := b.pools[domain]
	if !ok {
		p = &domainPool{domain: domain}
		b.pools[domain] = p
		b.poolOrder = append(b.poolOrder, p)
	}
	return p
}

// pumpAll services every waiting pool in deterministic order. Needed
// whenever a global connection slot frees up: the unblocked request may
// live in any domain's queue.
func (b *Browser) pumpAll() {
	for _, p := range b.poolOrder {
		b.pumpPool(p)
	}
}

func (b *Browser) requestHTTP(obj *webpage.Object, or *trace.ObjectRecord, onDone func()) {
	p := b.pool(obj.Domain)
	p.waiting = append(p.waiting, &pendingReq{obj: obj, or: or, onDone: onDone})
	b.pumpPool(p)
}

func (b *Browser) pumpPool(p *domainPool) {
	for len(p.waiting) > 0 {
		h := b.dispatchable(p)
		if h == nil {
			break
		}
		req := p.waiting[0]
		p.waiting = p.waiting[1:]
		b.dispatch(p, h, req)
	}
	// Open connections for queued requests not already covered by an
	// in-progress handshake, within the per-domain and global budgets.
	connecting := 0
	for _, h := range p.conns {
		if !h.established {
			connecting++
		}
	}
	for need := len(p.waiting) - connecting; need > 0; need-- {
		if len(p.conns) >= b.cfg.MaxConnsPerDomain {
			break
		}
		if b.totalConns >= b.cfg.MaxTotalConns {
			// Global pool full: steal an idle socket from another group,
			// as Chrome's socket pool does, else this domain starves.
			if !b.reclaimIdleConn(p) {
				break
			}
		}
		b.openConn(p)
	}
}

// reclaimIdleConn closes one established idle connection belonging to a
// pool with no queued work, freeing a global slot. Returns false if no
// connection is reclaimable.
func (b *Browser) reclaimIdleConn(needy *domainPool) bool {
	for _, p := range b.poolOrder {
		if p == needy || len(p.waiting) > 0 {
			continue
		}
		for _, h := range p.conns {
			if h.established && h.outstanding == 0 && !h.closed {
				b.closeConn(p, h)
				return true
			}
		}
	}
	return false
}

// dispatchable returns the established connection with spare request
// capacity (1 without pipelining, PipelineDepth with) that has the
// fewest outstanding requests.
func (b *Browser) dispatchable(p *domainPool) *connHandle {
	capacity := 1
	if b.cfg.Pipelining {
		capacity = b.cfg.PipelineDepth
		if capacity < 2 {
			capacity = 2
		}
	}
	var best *connHandle
	for _, h := range p.conns {
		if !h.established || h.closed || h.outstanding >= capacity {
			continue
		}
		if best == nil || h.outstanding < best.outstanding {
			best = h
		}
	}
	return best
}

func (b *Browser) openConn(p *domainPool) {
	b.connSeq++
	b.totalConns++
	id := fmt.Sprintf("h%03d.%s", b.connSeq, p.domain)
	client, server := b.net.NewConnPair(b.cfg.ClientTCP, b.cfg.ProxyTCP, id, "device")
	asm := &tcpsim.StreamAssembler{}
	client.OnDeliver(asm.Deliver)
	h := &connHandle{id: id, domain: p.domain, client: client, asm: asm}
	h.hc = proxy.NewHTTPConn(b.prox, server, asm)
	b.proxyConns = append(b.proxyConns, server)
	p.conns = append(p.conns, h)
	client.OnEstablished(func() {
		h.established = true
		b.armIdle(p, h)
		b.pumpPool(p)
	})
	client.Connect()
}

func (b *Browser) dispatch(p *domainPool, h *connHandle, req *pendingReq) {
	h.outstanding++
	h.idleTimer.Stop()
	req.or.Requested = b.loop.Now()
	req.or.ConnID = h.id
	reqSize := proxy.HTTPReqSize(req.obj)
	or := req.or
	h.hc.ExpectRequest(req.obj, reqSize, proxy.ResponseHooks{
		OnFirstByte: func() { or.FirstByte = b.loop.Now() },
		OnDone: func() {
			or.Done = b.loop.Now()
			h.outstanding--
			if h.outstanding == 0 {
				b.armIdle(p, h)
			}
			req.onDone()
			b.pumpAll()
		},
	})
	h.client.Write(reqSize)
}

func (b *Browser) armIdle(p *domainPool, h *connHandle) {
	h.idleTimer.Stop()
	h.idleTimer = b.loop.After(b.cfg.IdleConnTimeout, func() {
		if h.outstanding > 0 || h.closed {
			return
		}
		b.closeConn(p, h)
		b.pumpAll()
	})
}

func (b *Browser) closeConn(p *domainPool, h *connHandle) {
	h.closed = true
	h.client.Close()
	h.hc.Conn().Close()
	b.totalConns--
	for i, c := range p.conns {
		if c == h {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			break
		}
	}
}

// --- SPDY mode ---

type spdyHandle struct {
	id          string
	client      *tcpsim.Conn
	asm         *tcpsim.StreamAssembler
	sess        *proxy.SPDYSession // exclusive with groupIdx
	groupIdx    int                // valid when the browser runs late-binding
	oracle      *spdy.SizeOracle
	established bool
	streamSeq   uint32
	backlog     []*pendingReq
}

func (b *Browser) requestSPDY(obj *webpage.Object, or *trace.ObjectRecord, onDone func()) {
	if len(b.sessions) == 0 {
		n := b.cfg.SPDYSessions
		if n < 1 {
			n = 1
		}
		if b.cfg.SPDYLateBinding && n > 1 {
			b.group = proxy.NewSPDYGroup(b.prox)
		}
		for i := 0; i < n; i++ {
			b.sessions = append(b.sessions, b.openSession(i))
		}
	}
	// Early binding: round-robin at request-issue time (§6.1).
	s := b.sessions[b.reqSeq%len(b.sessions)]
	b.reqSeq++
	req := &pendingReq{obj: obj, or: or, onDone: onDone}
	if !s.established {
		s.backlog = append(s.backlog, req)
		return
	}
	b.sendSPDY(s, req)
}

func (b *Browser) openSession(i int) *spdyHandle {
	id := fmt.Sprintf("spdy%02d", i)
	client, server := b.net.NewConnPair(b.cfg.ClientTCP, b.cfg.ProxyTCP, id, "device")
	asm := &tcpsim.StreamAssembler{}
	client.OnDeliver(asm.Deliver)
	s := &spdyHandle{
		id:     id,
		client: client,
		asm:    asm,
		oracle: spdy.NewSizeOracle(),
	}
	if b.group != nil {
		s.groupIdx = b.group.AddSession(server, asm)
	} else {
		s.sess = proxy.NewSPDYSession(b.prox, server, asm)
	}
	b.proxyConns = append(b.proxyConns, server)
	client.OnEstablished(func() {
		s.established = true
		backlog := s.backlog
		s.backlog = nil
		for _, req := range backlog {
			b.sendSPDY(s, req)
		}
	})
	client.Connect()
	return s
}

func (b *Browser) sendSPDY(s *spdyHandle, req *pendingReq) {
	req.or.Requested = b.loop.Now()
	req.or.ConnID = s.id
	s.streamSeq += 2
	prio := spdy.PriorityForType(string(req.obj.Kind))
	size := s.oracle.FrameSize(spdy.SynStream{
		StreamID: s.streamSeq + 1,
		Priority: prio,
		Fin:      true,
		Headers: spdy.RequestHeaders("GET", "http", req.obj.Domain, req.obj.Path,
			"Mozilla/5.0 (Windows NT 6.1) Chrome/23.0"),
	})
	or := req.or
	onDone := req.onDone
	hooks := proxy.ResponseHooks{
		OnFirstByte: func() { or.FirstByte = b.loop.Now() },
		OnDone: func() {
			or.Done = b.loop.Now()
			onDone()
		},
	}
	if b.group != nil {
		b.group.ExpectRequest(s.groupIdx, req.obj, size, prio, hooks)
	} else {
		s.sess.ExpectRequest(req.obj, size, prio, hooks)
	}
	s.client.Write(size)
}

// --- HTTP/2 mode ---

// userAgent is the Chrome 23 UA string every protocol mode sends.
const userAgent = "Mozilla/5.0 (Windows NT 6.1) Chrome/23.0"

type h2Handle struct {
	id          string
	client      *tcpsim.Conn
	asm         *tcpsim.StreamAssembler
	sess        *proxy.H2Session
	reqSizer    *h2.HeaderSizer  // HPACK request pricing
	reqOracle   *spdy.SizeOracle // equal-framing mode: SPDY-identical requests
	established bool
	streamSeq   uint32
	backlog     []*pendingReq

	// WINDOW_UPDATE bookkeeping: response bytes delivered client-side
	// but not yet re-credited to the proxy. Lookup-only maps.
	pendingStream map[uint32]int64
	pendingConn   int64
}

func (b *Browser) requestH2(obj *webpage.Object, or *trace.ObjectRecord, onDone func()) {
	if b.h2sess == nil {
		b.h2sess = b.openH2()
	}
	h := b.h2sess
	req := &pendingReq{obj: obj, or: or, onDone: onDone}
	if !h.established {
		h.backlog = append(h.backlog, req)
		return
	}
	b.sendH2(h, req)
}

func (b *Browser) openH2() *h2Handle {
	id := "h2s00"
	client, server := b.net.NewConnPair(b.cfg.ClientTCP, b.cfg.ProxyTCP, id, "device")
	asm := &tcpsim.StreamAssembler{}
	client.OnDeliver(asm.Deliver)
	h := &h2Handle{
		id:            id,
		client:        client,
		asm:           asm,
		pendingStream: make(map[uint32]int64),
	}
	if b.cfg.H2EqualFraming {
		h.reqOracle = spdy.NewSizeOracle()
	} else {
		h.reqSizer = h2.NewHeaderSizer()
	}
	h.sess = proxy.NewH2Session(b.prox, server, asm, b.cfg.H2EqualFraming)
	if h.sess.NeedsWindowUpdates() {
		h.sess.OnClientChunk(func(sid uint32, payload int) { b.h2Consumed(h, sid, payload) })
	}
	b.proxyConns = append(b.proxyConns, server)
	client.OnEstablished(func() {
		h.established = true
		backlog := h.backlog
		h.backlog = nil
		for _, req := range backlog {
			b.sendH2(h, req)
		}
	})
	client.Connect()
	return h
}

func (b *Browser) sendH2(h *h2Handle, req *pendingReq) {
	req.or.Requested = b.loop.Now()
	req.or.ConnID = h.id
	prio := spdy.PriorityForType(string(req.obj.Kind))
	var size int
	if h.reqOracle != nil {
		// Equal-framing oracle mode: the request bytes must match SPDY's
		// exactly, SYN_STREAM framing included.
		h.streamSeq += 2
		size = h.reqOracle.FrameSize(spdy.SynStream{
			StreamID: h.streamSeq + 1,
			Priority: prio,
			Fin:      true,
			Headers: spdy.RequestHeaders("GET", "http", req.obj.Domain, req.obj.Path,
				userAgent),
		})
	} else {
		size = h.reqSizer.RequestSize("GET", "http", req.obj.Domain, req.obj.Path, userAgent)
	}
	or := req.or
	onDone := req.onDone
	hooks := proxy.ResponseHooks{
		OnFirstByte: func() { or.FirstByte = b.loop.Now() },
		OnDone: func() {
			or.Done = b.loop.Now()
			onDone()
		},
	}
	h.sess.ExpectRequest(req.obj, size, prio, hooks)
	h.client.Write(size)
}

// h2Consumed drives WINDOW_UPDATE generation: once half a stream's (or
// the connection's) window worth of DATA has landed, the browser
// re-credits the proxy with exactly the delivered bytes — the
// conservation the fuzz target and end-of-run audit check.
func (b *Browser) h2Consumed(h *h2Handle, sid uint32, n int) {
	h.pendingStream[sid] += int64(n)
	h.pendingConn += int64(n)
	if p := h.pendingStream[sid]; p >= h2.DefaultInitialWindow/2 {
		h.pendingStream[sid] = 0
		h.sess.ExpectWindowUpdate(sid, p, false)
		h.client.Write(h2.WindowUpdateFrameSize)
	}
	if p := h.pendingConn; p >= proxy.H2ConnWindow/2 {
		h.pendingConn = 0
		h.sess.ExpectWindowUpdate(0, p, true)
		h.client.Write(h2.WindowUpdateFrameSize)
	}
}

// --- QUIC mode ---

type quicHandle struct {
	id          string
	client      *tcpsim.QUICConn
	streams     *proxy.QUICClientStreams
	sess        *proxy.QUICSession
	sizer       *h2.HeaderSizer
	established bool
	backlog     []*pendingReq
	outstanding int
	idleTimer   sim.Timer
	closed      bool
}

func (b *Browser) requestQUIC(obj *webpage.Object, or *trace.ObjectRecord, onDone func()) {
	if b.quicSess == nil {
		b.quicSess = b.openQUIC()
	}
	q := b.quicSess
	q.outstanding++
	q.idleTimer.Stop()
	req := &pendingReq{obj: obj, or: or, onDone: onDone}
	if !q.established {
		q.backlog = append(q.backlog, req)
		return
	}
	b.sendQUIC(q, req)
}

// armQUICIdle closes the QUIC connection after the browser's idle
// timeout, flushing transport metrics to the shared cache. The next
// page then opens a fresh connection that — with QUICZeroRTT — resumes
// without a handshake round trip: the transfer rides the very radio
// promotion the handshake used to wait out.
func (b *Browser) armQUICIdle(q *quicHandle) {
	q.idleTimer.Stop()
	q.idleTimer = b.loop.After(b.cfg.IdleConnTimeout, func() {
		if q.outstanding > 0 || q.closed {
			return
		}
		q.closed = true
		q.client.Close()
		q.sess.Conn().Close()
		if b.quicSess == q {
			b.quicSess = nil
		}
	})
}

func (b *Browser) openQUIC() *quicHandle {
	id := "quic00"
	ccfg := b.cfg.ClientTCP
	ccfg.ZeroRTT = b.cfg.QUICZeroRTT
	client, server := b.net.NewQUICPair(ccfg, b.cfg.ProxyTCP, id, "device")
	streams := proxy.NewQUICClientStreams()
	client.OnStreamDeliver(streams.Deliver)
	q := &quicHandle{
		id:      id,
		client:  client,
		streams: streams,
		sizer:   h2.NewHeaderSizer(),
	}
	q.sess = proxy.NewQUICSession(b.prox, server, streams)
	b.proxyQUIC = append(b.proxyQUIC, server)
	client.OnEstablished(func() {
		q.established = true
		backlog := q.backlog
		q.backlog = nil
		for _, req := range backlog {
			b.sendQUIC(q, req)
		}
	})
	client.Connect()
	return q
}

func (b *Browser) sendQUIC(q *quicHandle, req *pendingReq) {
	req.or.Requested = b.loop.Now()
	req.or.ConnID = q.id
	prio := spdy.PriorityForType(string(req.obj.Kind))
	// Each request/response pair rides its own transport stream.
	sid := uint32(req.obj.ID*2 + 1)
	size := q.sizer.RequestSize("GET", "http", req.obj.Domain, req.obj.Path, userAgent)
	or := req.or
	onDone := req.onDone
	hooks := proxy.ResponseHooks{
		OnFirstByte: func() { or.FirstByte = b.loop.Now() },
		OnDone: func() {
			or.Done = b.loop.Now()
			q.outstanding--
			if q.outstanding == 0 {
				b.armQUICIdle(q)
			}
			onDone()
		},
	}
	q.sess.ExpectRequest(req.obj, sid, size, prio, hooks)
	q.client.WriteStream(sid, size)
}
