package browser

import (
	"strings"
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/proxy"
	"spdier/internal/rrc"
	"spdier/internal/sim"
	"spdier/internal/tcpsim"
	"spdier/internal/trace"
	"spdier/internal/webpage"
)

// world wires a full browser stack over a chosen radio profile.
type world struct {
	loop  *sim.Loop
	net   *tcpsim.Network
	prox  *proxy.Proxy
	radio *rrc.Machine
}

func newWorld(seed uint64, cellular bool) *world {
	loop := sim.NewLoop()
	rng := sim.NewRNG(seed)
	var radio *rrc.Machine
	var pc netem.PathConfig
	if cellular {
		radio = rrc.NewMachine(loop, rrc.Profile3G())
		pc = netem.Profile3G()
	} else {
		pc = netem.ProfileWiFi()
	}
	path := netem.NewPath(loop, pc, rng.Fork(1), radio)
	network := tcpsim.NewNetwork(loop, path)
	origin := proxy.NewOrigin(loop, proxy.DefaultOriginConfig(), rng.Fork(2))
	return &world{loop: loop, net: network, prox: proxy.New(loop, origin), radio: radio}
}

func (w *world) browser(cfg Config, seed uint64) *Browser {
	return New(w.loop, w.net, w.prox, cfg, sim.NewRNG(seed))
}

func loadOnce(t *testing.T, w *world, b *Browser, page *webpage.Page) *trace.PageRecord {
	t.Helper()
	var rec *trace.PageRecord
	b.LoadPage(page, func(pr *trace.PageRecord) { rec = pr })
	w.loop.Run(w.loop.Now().Add(120 * time.Second))
	if rec == nil {
		t.Fatal("page never completed")
	}
	return rec
}

func TestHTTPLoadCompletesAllObjects(t *testing.T) {
	w := newWorld(1, false)
	b := w.browser(DefaultConfig(ModeHTTP), 3)
	page := webpage.Generate(webpage.Table1()[6], sim.NewRNG(5))
	rec := loadOnce(t, w, b, page)
	if rec.Aborted {
		t.Fatal("aborted")
	}
	if len(rec.Objects) != len(page.Objects) {
		t.Fatalf("loaded %d of %d objects", len(rec.Objects), len(page.Objects))
	}
	for _, or := range rec.Objects {
		if or.Done == 0 || or.FirstByte == 0 || or.Requested == 0 {
			t.Fatalf("object %d timeline incomplete: %+v", or.Obj.ID, or)
		}
		if or.Requested < or.Discovered || or.FirstByte < or.Requested || or.Done < or.FirstByte {
			t.Fatalf("object %d timeline out of order", or.Obj.ID)
		}
	}
}

func TestHTTPRespectsConnectionBudgets(t *testing.T) {
	w := newWorld(2, false)
	cfg := DefaultConfig(ModeHTTP)
	b := w.browser(cfg, 3)
	page := webpage.Generate(webpage.Table1()[14], sim.NewRNG(5)) // 323 objects, 85 domains

	maxTotal := 0
	var watch func()
	watch = func() {
		total := 0
		for _, p := range b.pools {
			perDomain := len(p.conns)
			if perDomain > cfg.MaxConnsPerDomain {
				t.Errorf("domain %s has %d conns", p.domain, perDomain)
			}
			total += perDomain
		}
		if total > maxTotal {
			maxTotal = total
		}
		if total > cfg.MaxTotalConns {
			t.Errorf("total conns %d exceeds %d", total, cfg.MaxTotalConns)
		}
		if w.loop.Pending() > 0 {
			w.loop.After(100*time.Millisecond, watch)
		}
	}
	w.loop.After(100*time.Millisecond, watch)
	loadOnce(t, w, b, page)
	if maxTotal < 10 {
		t.Fatalf("parallelism never materialized: max %d conns", maxTotal)
	}
}

func TestSPDYUsesSingleSessionAcrossPages(t *testing.T) {
	w := newWorld(3, false)
	b := w.browser(DefaultConfig(ModeSPDY), 3)
	for i := 0; i < 3; i++ {
		page := webpage.Generate(webpage.Table1()[i], sim.NewRNG(uint64(i)))
		rec := loadOnce(t, w, b, page)
		for _, or := range rec.Objects {
			if or.ConnID != "spdy00" {
				t.Fatalf("object rode %q", or.ConnID)
			}
		}
	}
	if len(b.sessions) != 1 {
		t.Fatalf("%d sessions", len(b.sessions))
	}
	if got := len(b.ProxyConns()); got != 1 {
		t.Fatalf("%d proxy conns", got)
	}
}

func TestSPDYStripingRoundRobin(t *testing.T) {
	w := newWorld(4, false)
	cfg := DefaultConfig(ModeSPDY)
	cfg.SPDYSessions = 4
	b := w.browser(cfg, 3)
	page := webpage.Generate(webpage.Table1()[6], sim.NewRNG(5))
	rec := loadOnce(t, w, b, page)
	used := map[string]int{}
	for _, or := range rec.Objects {
		used[or.ConnID]++
	}
	if len(used) != 4 {
		t.Fatalf("striping used %d sessions: %v", len(used), used)
	}
}

func TestSPDYLateBindingCompletes(t *testing.T) {
	w := newWorld(5, true)
	cfg := DefaultConfig(ModeSPDY)
	cfg.SPDYSessions = 4
	cfg.SPDYLateBinding = true
	b := w.browser(cfg, 3)
	page := webpage.Generate(webpage.Table1()[6], sim.NewRNG(5))
	rec := loadOnce(t, w, b, page)
	if rec.Aborted {
		t.Fatal("late-binding load aborted")
	}
	for _, or := range rec.Objects {
		if or.Done == 0 {
			t.Fatalf("object %d incomplete", or.Obj.ID)
		}
	}
}

func TestPipeliningAllowsMultipleOutstanding(t *testing.T) {
	w := newWorld(6, false)
	cfg := DefaultConfig(ModeHTTP)
	cfg.Pipelining = true
	cfg.PipelineDepth = 4
	b := w.browser(cfg, 3)
	page := webpage.TestPage(true) // 50 objects on one domain
	maxOut := 0
	var watch func()
	watch = func() {
		for _, p := range b.pools {
			for _, h := range p.conns {
				if h.outstanding > maxOut {
					maxOut = h.outstanding
				}
				if h.outstanding > 4 {
					t.Errorf("outstanding %d exceeds depth", h.outstanding)
				}
			}
		}
		if w.loop.Pending() > 0 {
			w.loop.After(20*time.Millisecond, watch)
		}
	}
	w.loop.After(20*time.Millisecond, watch)
	rec := loadOnce(t, w, b, page)
	if rec.Aborted {
		t.Fatal("aborted")
	}
	if maxOut < 2 {
		t.Fatalf("pipelining never stacked requests (max %d)", maxOut)
	}
}

func TestPipeliningFasterThanSerialOnHighRTT(t *testing.T) {
	run := func(pipeline bool) time.Duration {
		w := newWorld(7, true)
		cfg := DefaultConfig(ModeHTTP)
		cfg.Pipelining = pipeline
		cfg.PipelineDepth = 6
		b := w.browser(cfg, 3)
		rec := loadOnce(t, w, b, webpage.TestPage(true))
		return rec.PLT()
	}
	serial, piped := run(false), run(true)
	if piped >= serial {
		t.Fatalf("pipelining not faster on 3G single domain: %v vs %v", piped, serial)
	}
}

func TestWatchdogAbortsStalledLoad(t *testing.T) {
	w := newWorld(8, false)
	cfg := DefaultConfig(ModeHTTP)
	cfg.PageTimeout = 300 * time.Millisecond // absurdly tight
	b := w.browser(cfg, 3)
	page := webpage.Generate(webpage.Table1()[16], sim.NewRNG(1)) // 4.7 MB
	rec := loadOnce(t, w, b, page)
	if !rec.Aborted {
		t.Fatal("watchdog did not fire")
	}
	if rec.PLT() > 400*time.Millisecond {
		t.Fatalf("abort PLT %v", rec.PLT())
	}
}

func TestIdleConnectionsClose(t *testing.T) {
	w := newWorld(9, false)
	cfg := DefaultConfig(ModeHTTP)
	cfg.IdleConnTimeout = 2 * time.Second
	cfg.Beacons = false
	b := w.browser(cfg, 3)
	loadOnce(t, w, b, webpage.Generate(webpage.Table1()[0], sim.NewRNG(5)))
	w.loop.Run(w.loop.Now().Add(10 * time.Second))
	if got := b.ActiveConns(); got != 0 {
		t.Fatalf("%d connections survive idle timeout", got)
	}
	if b.totalConns != 0 {
		t.Fatalf("budget accounting leaked: %d", b.totalConns)
	}
}

func TestBeaconsGenerateBackgroundTraffic(t *testing.T) {
	w := newWorld(10, false)
	cfg := DefaultConfig(ModeHTTP)
	cfg.Beacons = true
	b := w.browser(cfg, 3)
	var bytesAtLoad int64
	done := false
	b.LoadPage(webpage.Generate(webpage.Table1()[8], sim.NewRNG(5)), func(*trace.PageRecord) {
		done = true
		bytesAtLoad = w.net.Path().BtoA.Stats().Bytes
	})
	w.loop.Run(w.loop.Now().Add(60 * time.Second))
	if !done {
		t.Fatal("page never loaded")
	}
	if w.net.Path().BtoA.Stats().Bytes <= bytesAtLoad {
		t.Fatal("no beacon traffic during think time")
	}
}

func TestSocketStealingUnblocksNewDomains(t *testing.T) {
	w := newWorld(11, false)
	cfg := DefaultConfig(ModeHTTP)
	cfg.MaxTotalConns = 4 // force contention
	b := w.browser(cfg, 3)
	page := webpage.TestPage(false) // 50 distinct domains
	rec := loadOnce(t, w, b, page)
	if rec.Aborted {
		t.Fatal("load starved under tight global budget")
	}
	domains := map[string]bool{}
	for _, or := range rec.Objects {
		if or.Done == 0 {
			t.Fatalf("object %d starved", or.Obj.ID)
		}
		if or.ConnID != "" {
			domains[strings.SplitN(or.ConnID, ".", 2)[1]] = true
		}
	}
	if len(domains) != 51 {
		t.Fatalf("served %d domains", len(domains))
	}
}
