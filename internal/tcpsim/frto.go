package tcpsim

// F-RTO with Eifel-style undo (RFC 5682 + RFC 3522's response).
//
// The baseline connection already carries a quasi-F-RTO: after an RTO,
// retransmissions beyond the head segment are held back for one ACK,
// and an ACK covering a segment that was marked lost but never
// retransmitted proves the timeout spurious and clears the loss marks
// (see trySend and processNewAck). What the baseline does NOT do is
// repair the damage: cwnd stays collapsed at the restart window,
// ssthresh stays halved until DSACKs trickle back (and only partially,
// per performUndo), and the RTO backoff persists. In the paper's idle
// scenario — a 2 s radio promotion beating a ~600 ms stale RTO — that
// residue is precisely the "lasting damage" of Figure 12.
//
// The FRTO arm turns the detection into the full in-protocol bugfix:
// the moment the spurious verdict lands, the pre-timeout cwnd and
// ssthresh are restored, the congestion controller rolls back its loss
// bookkeeping, the exponential backoff is cleared, and the connection
// returns to the open state without waiting for DSACK confirmation.

// frtoEligible reports whether the spurious-timeout verdict should
// trigger the full Eifel undo: the arm is on, we are still in the loss
// state the RTO opened, and a pre-collapse snapshot exists.
func (c *Conn) frtoEligible() bool {
	return c.cfg.FRTO && c.caState == caLoss && c.undoActive
}

// frtoUndo performs the Eifel undo after a spurious-timeout verdict.
// The caller has already cleared the loss marks (stopping go-back-N);
// this restores window state as if the timeout had never fired.
func (c *Conn) frtoUndo() {
	if c.cwnd < c.undoCwnd {
		c.cwnd = c.undoCwnd
	}
	if c.ssthresh < c.undoSsthresh {
		c.ssthresh = c.undoSsthresh
	}
	c.cc.OnUndo(c.loop.Now(), c.cwnd)
	c.rtt.progress()
	c.caState = caOpen
	c.dupAcks = 0
	c.lossAcks = 0
	// The episode is fully undone: later DSACKs for its head
	// retransmissions must not replay the partial DSACK undo.
	c.undoActive = false
	c.FrtoUndos++
	c.probe(EvFRTOUndo)
}
