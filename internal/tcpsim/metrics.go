package tcpsim

import "time"

// MetricsCache models the Linux per-destination TCP metrics cache
// (ip tcp_metrics): ssthresh and RTT statistics observed on one
// connection are reused to seed the next connection to the same
// destination. Section 6.2.4 of the paper shows that disabling this
// cache (net.ipv4.tcp_no_metrics_save=1) improved page load times by
// ~35% at the median, because stale pessimistic metrics from an earlier
// spurious-timeout episode poison fresh connections.
//
// The cache is shared by all connections of one simulated host; pass nil
// to a Conn to disable caching.
type MetricsCache struct {
	entries map[string]*MetricsEntry

	// Hits/Stores are exposed for tests and ablation reporting.
	Hits   int
	Stores int
}

// MetricsEntry is the cached state for one destination.
type MetricsEntry struct {
	Ssthresh float64
	SRTT     time.Duration
	RTTVar   time.Duration
}

// NewMetricsCache returns an empty cache.
func NewMetricsCache() *MetricsCache {
	return &MetricsCache{entries: make(map[string]*MetricsEntry)}
}

// Lookup returns the cached entry for dest, or nil.
func (m *MetricsCache) Lookup(dest string) *MetricsEntry {
	if m == nil {
		return nil
	}
	e := m.entries[dest]
	if e != nil {
		m.Hits++
	}
	return e
}

// Store records metrics for dest, merging with any existing entry the
// way Linux does: ssthresh is the maximum of old and new only when the
// connection ends in good standing, otherwise overwritten; we keep the
// simple overwrite model, which is what produces the pathology.
func (m *MetricsCache) Store(dest string, e MetricsEntry) {
	if m == nil {
		return
	}
	m.Stores++
	cp := e
	m.entries[dest] = &cp
}

// Len reports the number of cached destinations.
func (m *MetricsCache) Len() int {
	if m == nil {
		return 0
	}
	return len(m.entries)
}
