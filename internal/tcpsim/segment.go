// Package tcpsim implements a segment-level TCP model faithful enough to
// reproduce the paper's cross-layer pathology: RFC 6298 retransmission
// timers with Karn's rule, slow start and congestion avoidance, NewReno
// fast retransmit/recovery, Reno and CUBIC congestion control, congestion
// window validation after idle (Linux tcp_slow_start_after_idle), a
// per-destination metrics cache (Linux tcp_metrics), receive-window flow
// control, and the paper's proposed RTT-reset-after-idle fix.
//
// Payload bytes are modeled as counts, not buffers: the application
// writes N bytes and the peer application is told when in-order bytes
// arrive. A StreamAssembler maps byte arrival back to message boundaries
// for the HTTP/SPDY layers above.
package tcpsim

import (
	"spdier/internal/netem"
	"spdier/internal/sim"
)

// segment flags.
const (
	flagSYN = 1 << iota
	flagACK
	flagFIN
	flagCTRL // out-of-band handshake payload (TLS model); no seq space
)

// headerBytes is the wire overhead charged per segment (IP + TCP with
// timestamps, rounded).
const headerBytes = 40

// segPooling gates segment recycling. Tests set it to false to prove
// pooled and unpooled runs are bit-for-bit identical; production code
// never touches it.
var segPooling = true

// SetSegmentPooling enables or disables segment recycling process-wide.
// It exists solely for determinism tests and must not be toggled while
// simulations are running on other goroutines.
func SetSegmentPooling(on bool) { segPooling = on }

// Segment is the unit crossing the emulated path.
type Segment struct {
	to      *Conn  // receiving endpoint, set by transmit
	From    string // sender conn ID, for tracing
	Flags   int
	Seq     uint64      // first payload byte
	Len     int         // payload bytes
	Ack     uint64      // cumulative ack (valid if flagACK)
	Wnd     int         // advertised receive window, bytes
	Retx    bool        // this is a retransmission
	Dsack   bool        // ACK reports receipt of an already-received segment
	Delayed bool        // pure ACK released by the delayed-ACK timer, not an arrival
	Sack    [][2]uint64 // SACK blocks: out-of-order byte ranges held by the receiver
	TSVal   sim.Time    // sender timestamp (RFC 7323), set on data segments
	TSEcr   sim.Time    // echoed timestamp on ACKs; drives RTT sampling
	CtrlLen int         // modeled control payload (TLS handshake legs)
}

// wireSize is the number of bytes the segment occupies on the link.
func (s *Segment) wireSize() int { return headerBytes + s.Len + s.CtrlLen }

// DupPayload implements netem.Duplicable for wire duplication: the
// duplicate must be an independent copy, because delivered segments are
// recycled into the pool — handing the same pointer to the demuxer
// twice would recycle it twice and alias two future segments. The copy
// comes from (and retires to) the same pool, with its own SACK backing
// array.
func (s *Segment) DupPayload() netem.Payload {
	var cp *Segment
	if s.to != nil && s.to.net != nil {
		cp = s.to.net.getSeg()
	} else {
		cp = &Segment{}
	}
	sack := append(cp.Sack[:0], s.Sack...)
	*cp = *s
	cp.Sack = sack
	// Delayed is evidence about the *receiver's* ACK generation (it feeds
	// the fast-retransmit-off-coalesced-ACK invariant); a wire duplicate
	// is the network's doing and must not carry that evidence.
	cp.Delayed = false
	return cp
}

// Retransmit-cause tags recorded on sentSeg.lostBy. A segment marked
// lost carries the mechanism that marked it, so the eventual
// retransmission is attributed to exactly one cause in the counters and
// the probe stream. SACK-hole inference inside an episode keeps the
// legacy RTO attribution, matching the pre-RACK accounting.
const (
	causeRTO uint8 = iota
	causeRACK
)

// sentSeg is the sender's record of an in-flight segment.
type sentSeg struct {
	seq    uint64
	len    int
	sentAt sim.Time
	retx   bool  // ever retransmitted (Karn: no RTT sample)
	lost   bool  // marked lost after an RTO; awaiting retransmission
	sacked bool  // receiver holds this segment (SACK); never retransmit
	lostBy uint8 // cause of the lost mark (causeRTO / causeRACK)
}

// StreamAssembler converts the in-order byte arrivals reported by a Conn
// back into application message completions. Messages complete strictly
// in the order they were expected, mirroring the FIFO byte stream.
type StreamAssembler struct {
	queue []expected
	avail int // delivered bytes not yet consumed by a message
}

type expected struct {
	size int
	done func()
}

// Expect registers the next message of the given size; done fires when
// the final byte of the message has been delivered in order.
func (a *StreamAssembler) Expect(size int, done func()) {
	if size < 0 {
		panic("tcpsim: negative message size")
	}
	a.queue = append(a.queue, expected{size: size, done: done})
	a.drain()
}

// Deliver feeds n newly arrived in-order bytes into the assembler.
func (a *StreamAssembler) Deliver(n int) {
	a.avail += n
	a.drain()
}

func (a *StreamAssembler) drain() {
	for len(a.queue) > 0 && a.avail >= a.queue[0].size {
		m := a.queue[0]
		a.queue = a.queue[1:]
		a.avail -= m.size
		if m.done != nil {
			m.done()
		}
	}
}

// PendingMessages reports how many expected messages are incomplete.
func (a *StreamAssembler) PendingMessages() int { return len(a.queue) }
