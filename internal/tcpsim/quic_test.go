package tcpsim

import (
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
)

func newQuicTestNet(t *testing.T, cfg netem.PathConfig) (*sim.Loop, *Network) {
	t.Helper()
	loop := sim.NewLoop()
	path := netem.NewPath(loop, cfg, sim.NewRNG(7), nil)
	return loop, NewNetwork(loop, path)
}

func quietWiFi() netem.PathConfig {
	cfg := netem.ProfileWiFi()
	cfg.Up.LossRate, cfg.Down.LossRate = 0, 0
	cfg.Up.Jitter, cfg.Down.Jitter = 0, 0
	return cfg
}

// TestQUICTransfer: a basic multi-stream transfer completes, delivers
// every byte in order per stream, and retires every pooled packet.
func TestQUICTransfer(t *testing.T) {
	loop, net := newQuicTestNet(t, quietWiFi())
	cfg := DefaultConfig()
	client, server := net.NewQUICPair(cfg, cfg, "q1", "example.org")

	got := map[uint32]int{}
	server.OnStreamDeliver(func(sid uint32, n int) { got[sid] += n })
	client.OnEstablished(func() {
		client.WriteStream(1, 50_000)
		client.WriteStream(3, 20_000)
	})
	client.Connect()
	loop.RunUntilIdle()

	if !client.Established() || !server.Established() {
		t.Fatalf("not established: client=%v server=%v", client.Established(), server.Established())
	}
	if got[1] != 50_000 || got[3] != 20_000 {
		t.Fatalf("delivered = %v, want 50000/20000", got)
	}
	if live := net.LiveSegments(); live != 0 {
		t.Fatalf("LiveSegments = %d after idle, want 0", live)
	}
	if client.ZeroRTTResumed {
		t.Fatal("cold connection claims 0-RTT resumption")
	}
}

// TestQUICZeroRTT: with cached metrics and ZeroRTT enabled the client
// is established synchronously at Connect; without a cache hit it is
// not.
func TestQUICZeroRTT(t *testing.T) {
	loop, net := newQuicTestNet(t, quietWiFi())
	mc := NewMetricsCache()
	mc.Store("example.org", MetricsEntry{SRTT: 80 * time.Millisecond, RTTVar: 10 * time.Millisecond})
	cfg := DefaultConfig()
	cfg.ZeroRTT = true
	cfg.Metrics = mc
	client, _ := net.NewQUICPair(cfg, cfg, "q1", "example.org")
	client.Connect()
	if !client.Established() || !client.ZeroRTTResumed {
		t.Fatalf("cache hit + ZeroRTT: established=%v resumed=%v, want true/true",
			client.Established(), client.ZeroRTTResumed)
	}

	cold, _ := net.NewQUICPair(cfg, cfg, "q2", "fresh.example")
	cold.Connect()
	if cold.Established() {
		t.Fatal("cache miss: established before handshake round trip")
	}
	loop.RunUntilIdle()
	if !cold.Established() || cold.ZeroRTTResumed {
		t.Fatalf("after handshake: established=%v resumed=%v, want true/false",
			cold.Established(), cold.ZeroRTTResumed)
	}
	if live := net.LiveSegments(); live != 0 {
		t.Fatalf("LiveSegments = %d after idle, want 0", live)
	}
}

// TestQUICStreamLossIsolation is the transport-level half of the no-HoL
// metamorphic oracle: drop only stream 1's data packets via a link
// filter; streams 3 and 5 must deliver at exactly their zero-loss
// times, while stream 1 finishes later (it needed recovery).
func TestQUICStreamLossIsolation(t *testing.T) {
	const perStream = 40_000

	run := func(dropStream1 bool) (map[uint32]sim.Time, int) {
		loop, net := newQuicTestNet(t, quietWiFi())
		cfg := DefaultConfig()
		cfg.InitialCwnd = 1 << 14 // CC never binds; isolate the loss behaviour
		client, server := net.NewQUICPair(cfg, cfg, "q1", "example.org")

		if dropStream1 {
			dropped := 0
			net.Path().AtoB.SetFilter(func(p netem.Payload, _ int) bool {
				qp, ok := p.(*QUICPacket)
				if !ok || qp.Ack || qp.Hs != 0 || qp.StreamID != 1 {
					return true
				}
				// Deterministic pattern: drop the first two stream-1
				// data packets (original + first probe survives after).
				if dropped < 2 {
					dropped++
					return false
				}
				return true
			})
		}

		done := map[uint32]sim.Time{}
		got := map[uint32]int{}
		server.OnStreamDeliver(func(sid uint32, n int) {
			got[sid] += n
			if got[sid] == perStream {
				done[sid] = loop.Now()
			}
		})
		client.OnEstablished(func() {
			// Interleave MSS-sized rounds across the three streams so
			// stream 1's packets sit between its siblings' on the wire.
			for i := 0; i < perStream/1380; i++ {
				client.WriteStream(1, 1380)
				client.WriteStream(3, 1380)
				client.WriteStream(5, 1380)
			}
			client.WriteStream(1, perStream%1380)
			client.WriteStream(3, perStream%1380)
			client.WriteStream(5, perStream%1380)
		})
		client.Connect()
		loop.RunUntilIdle()

		for _, sid := range []uint32{1, 3, 5} {
			if got[sid] != perStream {
				t.Fatalf("stream %d delivered %d bytes, want %d (drop=%v)", sid, got[sid], perStream, dropStream1)
			}
		}
		if live := net.LiveSegments(); live != 0 {
			t.Fatalf("LiveSegments = %d after idle, want 0", live)
		}
		return done, client.Retransmits
	}

	clean, cleanRetx := run(false)
	lossy, lossyRetx := run(true)

	if cleanRetx != 0 {
		t.Fatalf("zero-loss run retransmitted %d packets", cleanRetx)
	}
	if lossyRetx == 0 {
		t.Fatal("lossy run retransmitted nothing; filter did not bite")
	}
	// The untouched streams complete no later than their zero-loss
	// trace: stream 1's recovery does not head-of-line block them.
	for _, sid := range []uint32{3, 5} {
		if lossy[sid] > clean[sid] {
			t.Errorf("stream %d: lossy completion %v later than zero-loss %v (HoL blocking)", sid, lossy[sid], clean[sid])
		}
	}
	if lossy[1] <= clean[1] {
		t.Errorf("stream 1: lossy completion %v not later than zero-loss %v; loss had no effect", lossy[1], clean[1])
	}
}

// TestQUICSpuriousUndo: stall the downlink ACK path long enough for a
// probe timeout, then let the original flight's ACKs through — the
// probe is proven spurious and the window restored.
func TestQUICSpuriousUndo(t *testing.T) {
	cfg := quietWiFi()
	loop := sim.NewLoop()
	path := netem.NewPath(loop, cfg, sim.NewRNG(7), nil)
	net := NewNetwork(loop, path)

	ccfg := DefaultConfig()
	ccfg.MinRTO = 50 * time.Millisecond
	client, server := net.NewQUICPair(ccfg, ccfg, "q1", "example.org")
	server.OnStreamDeliver(func(uint32, int) {})

	// Hold all server->client traffic for 1.5s starting once the
	// transfer is in flight: ACKs stall, the client's PTO fires, and the
	// eventually-released ACKs prove the probes spurious.
	holdUntil := sim.Time(0)
	path.BtoA.SetFilter(func(p netem.Payload, _ int) bool {
		return loop.Now() >= holdUntil
	})

	client.OnEstablished(func() {
		holdUntil = loop.Now().Add(1500 * time.Millisecond)
		client.WriteStream(1, 4*1380)
	})
	client.Connect()
	loop.RunUntilIdle()

	if client.Retransmits == 0 {
		t.Fatal("stall produced no probe retransmission")
	}
	if client.SpuriousRetx == 0 {
		t.Fatal("released originals did not register as spurious")
	}
}
