package tcpsim

import (
	"testing"
	"time"
)

func newTestEstimator() rttEstimator {
	return newRTTEstimator(3*time.Second, 200*time.Millisecond, 120*time.Second)
}

func TestRTTFirstSample(t *testing.T) {
	e := newTestEstimator()
	if e.current() != 3*time.Second {
		t.Fatalf("initial RTO %v", e.current())
	}
	e.sample(100 * time.Millisecond)
	// RFC 6298: SRTT=R, RTTVAR=R/2, RTO=SRTT+4*RTTVAR = 300ms.
	if e.srtt != 100*time.Millisecond || e.rttvar != 50*time.Millisecond {
		t.Fatalf("srtt=%v rttvar=%v", e.srtt, e.rttvar)
	}
	if e.current() != 300*time.Millisecond {
		t.Fatalf("RTO %v, want 300ms", e.current())
	}
}

func TestRTTSmoothing(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond)
	e.sample(200 * time.Millisecond)
	// srtt = 7/8*100 + 1/8*200 = 112.5ms
	want := time.Duration(112500) * time.Microsecond
	if e.srtt != want {
		t.Fatalf("srtt %v, want %v", e.srtt, want)
	}
}

func TestRTOMinClamp(t *testing.T) {
	e := newTestEstimator()
	for i := 0; i < 50; i++ {
		e.sample(10 * time.Millisecond) // stable tiny RTT
	}
	if e.current() != 200*time.Millisecond {
		t.Fatalf("RTO %v should clamp to MinRTO", e.current())
	}
}

func TestBackoffDoublesAndProgressResets(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond) // RTO 300ms
	e.backoff()
	if e.current() != 600*time.Millisecond {
		t.Fatalf("after 1 backoff: %v", e.current())
	}
	e.backoff()
	e.backoff()
	if e.current() != 2400*time.Millisecond {
		t.Fatalf("after 3 backoffs: %v", e.current())
	}
	e.progress()
	if e.current() != 300*time.Millisecond {
		t.Fatalf("progress did not clear backoff: %v", e.current())
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond)
	for i := 0; i < 40; i++ {
		e.backoff()
	}
	if e.current() != 120*time.Second {
		t.Fatalf("RTO %v should cap at MaxRTO", e.current())
	}
}

func TestResetRestoresInitial(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond)
	e.backoff()
	e.reset()
	if e.valid || e.srtt != 0 || e.current() != 3*time.Second {
		t.Fatalf("reset incomplete: %+v current=%v", e, e.current())
	}
	// The paper's fix depends on this exceeding the promotion delay.
	if e.current() <= 2*time.Second {
		t.Fatal("initial RTO must exceed the 3G promotion delay")
	}
}

func TestSeedFloorsDeviation(t *testing.T) {
	e := newTestEstimator()
	e.seed(200*time.Millisecond, 5*time.Millisecond)
	// tcp_init_metrics floors mdev at srtt/2 ⇒ RTO = 200 + 4*100 = 600ms.
	if e.rttvar != 100*time.Millisecond {
		t.Fatalf("seeded rttvar %v, want floor 100ms", e.rttvar)
	}
	if e.current() != 600*time.Millisecond {
		t.Fatalf("seeded RTO %v", e.current())
	}
	// A large cached variance is preserved as-is.
	e2 := newTestEstimator()
	e2.seed(200*time.Millisecond, 150*time.Millisecond)
	if e2.rttvar != 150*time.Millisecond {
		t.Fatalf("large rttvar clobbered: %v", e2.rttvar)
	}
}

func TestSeedIgnoresZero(t *testing.T) {
	e := newTestEstimator()
	e.seed(0, 0)
	if e.valid {
		t.Fatal("zero seed should be ignored")
	}
}

func TestSampleZeroClampsToGranularity(t *testing.T) {
	e := newTestEstimator()
	e.sample(0)
	if !e.valid || e.srtt != clockGranularity {
		t.Fatalf("zero sample handling: %v", e.srtt)
	}
}

func TestVarianceTracksJitter(t *testing.T) {
	e := newTestEstimator()
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			e.sample(100 * time.Millisecond)
		} else {
			e.sample(300 * time.Millisecond)
		}
	}
	// rttvar should stay near the mean deviation (~100ms), keeping RTO
	// well above srtt.
	if e.rttvar < 60*time.Millisecond {
		t.Fatalf("rttvar collapsed despite jitter: %v", e.rttvar)
	}
	if e.current() < e.srtt+200*time.Millisecond {
		t.Fatalf("RTO too tight: %v vs srtt %v", e.current(), e.srtt)
	}
}
