package tcpsim

import (
	"testing"
	"time"
)

func newTestEstimator() rttEstimator {
	return newRTTEstimator(3*time.Second, 200*time.Millisecond, 120*time.Second)
}

func TestRTTFirstSample(t *testing.T) {
	e := newTestEstimator()
	if e.current() != 3*time.Second {
		t.Fatalf("initial RTO %v", e.current())
	}
	e.sample(100 * time.Millisecond)
	// RFC 6298: SRTT=R, RTTVAR=R/2, RTO=SRTT+4*RTTVAR = 300ms.
	if e.srtt != 100*time.Millisecond || e.rttvar != 50*time.Millisecond {
		t.Fatalf("srtt=%v rttvar=%v", e.srtt, e.rttvar)
	}
	if e.current() != 300*time.Millisecond {
		t.Fatalf("RTO %v, want 300ms", e.current())
	}
}

func TestRTTSmoothing(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond)
	e.sample(200 * time.Millisecond)
	// srtt = 7/8*100 + 1/8*200 = 112.5ms
	want := time.Duration(112500) * time.Microsecond
	if e.srtt != want {
		t.Fatalf("srtt %v, want %v", e.srtt, want)
	}
}

func TestRTOMinClamp(t *testing.T) {
	e := newTestEstimator()
	for i := 0; i < 50; i++ {
		e.sample(10 * time.Millisecond) // stable tiny RTT
	}
	if e.current() != 200*time.Millisecond {
		t.Fatalf("RTO %v should clamp to MinRTO", e.current())
	}
}

func TestBackoffDoublesAndProgressResets(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond) // RTO 300ms
	e.backoff()
	if e.current() != 600*time.Millisecond {
		t.Fatalf("after 1 backoff: %v", e.current())
	}
	e.backoff()
	e.backoff()
	if e.current() != 2400*time.Millisecond {
		t.Fatalf("after 3 backoffs: %v", e.current())
	}
	e.progress()
	if e.current() != 300*time.Millisecond {
		t.Fatalf("progress did not clear backoff: %v", e.current())
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond)
	for i := 0; i < 40; i++ {
		e.backoff()
	}
	if e.current() != 120*time.Second {
		t.Fatalf("RTO %v should cap at MaxRTO", e.current())
	}
}

func TestResetRestoresInitial(t *testing.T) {
	e := newTestEstimator()
	e.sample(100 * time.Millisecond)
	e.backoff()
	e.reset()
	if e.valid || e.srtt != 0 || e.current() != 3*time.Second {
		t.Fatalf("reset incomplete: %+v current=%v", e, e.current())
	}
	// The paper's fix depends on this exceeding the promotion delay.
	if e.current() <= 2*time.Second {
		t.Fatal("initial RTO must exceed the 3G promotion delay")
	}
}

func TestSeedFloorsDeviation(t *testing.T) {
	e := newTestEstimator()
	e.seed(200*time.Millisecond, 5*time.Millisecond)
	// tcp_init_metrics floors mdev at srtt/2 ⇒ RTO = 200 + 4*100 = 600ms.
	if e.rttvar != 100*time.Millisecond {
		t.Fatalf("seeded rttvar %v, want floor 100ms", e.rttvar)
	}
	if e.current() != 600*time.Millisecond {
		t.Fatalf("seeded RTO %v", e.current())
	}
	// A large cached variance is preserved as-is.
	e2 := newTestEstimator()
	e2.seed(200*time.Millisecond, 150*time.Millisecond)
	if e2.rttvar != 150*time.Millisecond {
		t.Fatalf("large rttvar clobbered: %v", e2.rttvar)
	}
}

func TestSeedIgnoresZero(t *testing.T) {
	e := newTestEstimator()
	e.seed(0, 0)
	if e.valid {
		t.Fatal("zero seed should be ignored")
	}
}

func TestSampleZeroClampsToGranularity(t *testing.T) {
	e := newTestEstimator()
	e.sample(0)
	if !e.valid || e.srtt != clockGranularity {
		t.Fatalf("zero sample handling: %v", e.srtt)
	}
}

// TestEffectiveRTOSequences pins the exact effective-RTO ladder for
// several (base RTO, maxRTO) pairs: the sequence must be
// min(rto·2ⁿ, maxRTO) at every step, the step count must saturate at
// the backoffN cap, and no choice of maxRTO — including one adjacent to
// the time.Duration ceiling — may overflow into a negative or shrinking
// timeout.
func TestEffectiveRTOSequences(t *testing.T) {
	cases := []struct {
		name     string
		sample   time.Duration // single RTT sample establishing the base
		min, max time.Duration
		want     []time.Duration // effective RTO after n backoffs, n=0..
	}{
		{
			name: "typical-300ms-base", sample: 100 * time.Millisecond,
			min: 200 * time.Millisecond, max: 120 * time.Second,
			want: []time.Duration{
				300 * time.Millisecond, 600 * time.Millisecond,
				1200 * time.Millisecond, 2400 * time.Millisecond,
				4800 * time.Millisecond, 9600 * time.Millisecond,
				19200 * time.Millisecond, 38400 * time.Millisecond,
				76800 * time.Millisecond, 120 * time.Second, // saturates
				120 * time.Second,
			},
		},
		{
			name: "min-clamped-base", sample: 10 * time.Millisecond,
			min: 200 * time.Millisecond, max: time.Second,
			want: []time.Duration{
				200 * time.Millisecond, 400 * time.Millisecond,
				800 * time.Millisecond, time.Second, time.Second,
			},
		},
		{
			name: "max-near-duration-ceiling", sample: time.Second,
			min: 200 * time.Millisecond, max: maxDuration - 1,
			// 3s base doubles cleanly 16 times (cap), never overflows.
			want: func() []time.Duration {
				seq := make([]time.Duration, 20)
				d := 3 * time.Second
				for i := range seq {
					seq[i] = d
					if i < 16 {
						d *= 2
					}
				}
				return seq
			}(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newRTTEstimator(3*time.Second, tc.min, tc.max)
			e.sample(tc.sample)
			base := e.rto
			for n, want := range tc.want {
				if got := e.current(); got != want {
					t.Fatalf("after %d backoffs: RTO %v, want %v", n, got, want)
				}
				if got := e.current(); got < 0 {
					t.Fatalf("after %d backoffs: negative RTO %v", n, got)
				}
				if e.base() != base {
					t.Fatalf("after %d backoffs: base() drifted %v -> %v", n, base, e.base())
				}
				e.backoff()
			}
		})
	}
}

// TestBackoffCountSaturates: the counter itself stops at 16, so an
// unbounded timeout storm cannot push the shift amount into undefined
// territory even when maxRTO is effectively infinite.
func TestBackoffCountSaturates(t *testing.T) {
	e := newRTTEstimator(3*time.Second, 200*time.Millisecond, maxDuration-1)
	e.sample(100 * time.Millisecond)
	for i := 0; i < 1000; i++ {
		e.backoff()
	}
	if e.backoffN != 16 {
		t.Fatalf("backoffN=%d, want cap 16", e.backoffN)
	}
	want := 300 * time.Millisecond << 16
	if got := e.current(); got != want {
		t.Fatalf("saturated RTO %v, want %v", got, want)
	}
}

// TestConstructorAndResetClamp: an initial RTO outside [min,max] is
// clamped at construction and again after reset, so the first armed
// timer always satisfies the rto-clamp invariant.
func TestConstructorAndResetClamp(t *testing.T) {
	lo := newRTTEstimator(50*time.Millisecond, 200*time.Millisecond, time.Second)
	if lo.current() != 200*time.Millisecond {
		t.Fatalf("low initial not clamped up: %v", lo.current())
	}
	hi := newRTTEstimator(time.Hour, 200*time.Millisecond, time.Second)
	if hi.current() != time.Second {
		t.Fatalf("high initial not clamped down: %v", hi.current())
	}
	hi.sample(100 * time.Millisecond)
	hi.backoff()
	hi.reset()
	if hi.current() != time.Second || hi.backoffN != 0 {
		t.Fatalf("reset did not re-clamp: %v backoffN=%d", hi.current(), hi.backoffN)
	}
}

func TestVarianceTracksJitter(t *testing.T) {
	e := newTestEstimator()
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			e.sample(100 * time.Millisecond)
		} else {
			e.sample(300 * time.Millisecond)
		}
	}
	// rttvar should stay near the mean deviation (~100ms), keeping RTO
	// well above srtt.
	if e.rttvar < 60*time.Millisecond {
		t.Fatalf("rttvar collapsed despite jitter: %v", e.rttvar)
	}
	if e.current() < e.srtt+200*time.Millisecond {
		t.Fatalf("RTO too tight: %v vs srtt %v", e.current(), e.srtt)
	}
}
