package tcpsim

import (
	"testing"
	"testing/quick"
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
)

// testWorld builds a clean wired network for protocol-logic tests.
type testWorld struct {
	loop *sim.Loop
	net  *Network
}

func newWorld(cfg netem.PathConfig, seed uint64) *testWorld {
	loop := sim.NewLoop()
	path := netem.NewPath(loop, cfg, sim.NewRNG(seed), nil)
	return &testWorld{loop: loop, net: NewNetwork(loop, path)}
}

func cleanPath() netem.PathConfig {
	return netem.PathConfig{
		Up:   netem.LinkConfig{BandwidthBPS: 10_000_000, Delay: 20 * time.Millisecond, QueueBytes: 1 << 20},
		Down: netem.LinkConfig{BandwidthBPS: 10_000_000, Delay: 20 * time.Millisecond, QueueBytes: 1 << 20},
	}
}

func TestHandshakeEstablishesBothEnds(t *testing.T) {
	w := newWorld(cleanPath(), 1)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "hs", "d")
	var clientUp, serverUp sim.Time
	client.OnEstablished(func() { clientUp = w.loop.Now() })
	server.OnEstablished(func() { serverUp = w.loop.Now() })
	client.Connect()
	// Server must see data to finish; send one byte after establishment.
	client.OnEstablished(func() { clientUp = w.loop.Now(); client.Write(10) })
	w.loop.RunUntilIdle()
	if clientUp == 0 || serverUp == 0 {
		t.Fatalf("handshake incomplete: client=%v server=%v", clientUp, serverUp)
	}
	// One RTT for SYN/SYN-ACK: ~40 ms.
	if clientUp < sim.Time(40*time.Millisecond) || clientUp > sim.Time(45*time.Millisecond) {
		t.Fatalf("client established at %v, want ≈1 RTT", clientUp)
	}
}

func TestTLSHandshakeAddsTwoRTTs(t *testing.T) {
	w := newWorld(cleanPath(), 1)
	plain, _ := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "p", "d")
	tlsCfgC, tlsCfgS := DefaultConfig(), DefaultConfig()
	tlsCfgC.TLS, tlsCfgS.TLS = true, true
	secure, _ := w.net.NewConnPair(tlsCfgC, tlsCfgS, "s", "d")

	var plainUp, tlsUp sim.Time
	plain.OnEstablished(func() { plainUp = w.loop.Now() })
	secure.OnEstablished(func() { tlsUp = w.loop.Now() })
	plain.Connect()
	secure.Connect()
	w.loop.RunUntilIdle()
	extra := tlsUp - plainUp
	// Two extra round trips ≈ 80 ms (plus serialization).
	if extra < sim.Time(80*time.Millisecond) || extra > sim.Time(100*time.Millisecond) {
		t.Fatalf("TLS extra %v, want ≈2 RTTs", extra)
	}
}

func TestBulkDeliveryExactBytes(t *testing.T) {
	w := newWorld(cleanPath(), 2)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "b", "d")
	got := 0
	client.OnDeliver(func(n int) { got += n })
	client.OnEstablished(func() { server.Write(1_000_000) })
	client.Connect()
	w.loop.Run(60 * sim.Second)
	if got != 1_000_000 {
		t.Fatalf("delivered %d", got)
	}
	if server.InFlightBytes() != 0 || server.BufferedBytes() != 0 {
		t.Fatalf("sender not drained: inflight=%d buffered=%d", server.InFlightBytes(), server.BufferedBytes())
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	w := newWorld(cleanPath(), 3)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "bi", "d")
	cGot, sGot := 0, 0
	client.OnDeliver(func(n int) { cGot += n })
	server.OnDeliver(func(n int) { sGot += n })
	client.OnEstablished(func() {
		client.Write(50_000)
		server.Write(200_000)
	})
	client.Connect()
	w.loop.Run(30 * sim.Second)
	if cGot != 200_000 || sGot != 50_000 {
		t.Fatalf("client got %d, server got %d", cGot, sGot)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	w := newWorld(cleanPath(), 4)
	cfg := DefaultConfig()
	client, server := w.net.NewConnPair(DefaultConfig(), cfg, "ss", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(3_000_000) })
	client.Connect()
	// After ~3 RTTs of slow start from IW10, cwnd should be ≳40.
	w.loop.Run(sim.Time(40*time.Millisecond) * 5)
	if server.Cwnd() < 40 {
		t.Fatalf("cwnd %v after 4 RTTs of slow start", server.Cwnd())
	}
	if !server.InSlowStart() {
		t.Fatalf("left slow start without loss: cwnd=%v ssthresh=%v", server.Cwnd(), server.Ssthresh())
	}
}

func TestReceiveWindowLimitsInFlight(t *testing.T) {
	w := newWorld(cleanPath(), 5)
	clientCfg := DefaultConfig()
	clientCfg.RecvBuffer = 20_000 // tiny rwnd
	client, server := w.net.NewConnPair(clientCfg, DefaultConfig(), "rw", "d")
	client.OnDeliver(func(int) {})
	maxInflight := 0
	client.OnEstablished(func() { server.Write(500_000) })
	client.Connect()
	for i := 0; i < 4000; i++ {
		w.loop.Run(w.loop.Now().Add(5 * time.Millisecond))
		if f := server.InFlightBytes(); f > maxInflight {
			maxInflight = f
		}
		if w.loop.Pending() == 0 {
			break
		}
	}
	if maxInflight > 20_000+1380 {
		t.Fatalf("in-flight %d exceeded receive window 20000", maxInflight)
	}
	if client.BytesRcvdApp != 500_000 {
		t.Fatalf("transfer incomplete under rwnd limit: %d", client.BytesRcvdApp)
	}
}

func TestFastRetransmitRepairsSingleLoss(t *testing.T) {
	// A shallow queue drops part of a burst; fast retransmit must repair
	// it without waiting for the RTO.
	cfg := cleanPath()
	cfg.Down.QueueBytes = 30_000
	w := newWorld(cfg, 6)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "fr", "d")
	got := 0
	client.OnDeliver(func(n int) { got += n })
	client.OnEstablished(func() { server.Write(400_000) })
	client.Connect()
	w.loop.Run(60 * sim.Second)
	if got != 400_000 {
		t.Fatalf("delivered %d", got)
	}
	if server.FastRetransmits == 0 {
		t.Fatal("expected fast retransmits from queue drops")
	}
}

func TestIdleRestartResetsCwndNotSsthresh(t *testing.T) {
	w := newWorld(cleanPath(), 7)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "ir", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(2_000_000) })
	client.Connect()
	w.loop.Run(30 * sim.Second)
	grown := server.Cwnd()
	if grown < 50 {
		t.Fatalf("precondition: cwnd %v too small", grown)
	}
	ssBefore := server.Ssthresh()
	// Go idle well past the RTO, then write again.
	at := w.loop.Now().Add(10 * time.Second)
	w.loop.At(at, func() { server.Write(10_000) })
	w.loop.RunUntilIdle()
	if server.IdleRestarts != 1 {
		t.Fatalf("idle restarts %d", server.IdleRestarts)
	}
	if server.Ssthresh() != ssBefore {
		t.Fatalf("idle restart touched ssthresh: %v → %v", ssBefore, server.Ssthresh())
	}
}

func TestIdleRestartDisabled(t *testing.T) {
	w := newWorld(cleanPath(), 8)
	scfg := DefaultConfig()
	scfg.SlowStartAfterIdle = false
	client, server := w.net.NewConnPair(DefaultConfig(), scfg, "ird", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(2_000_000) })
	client.Connect()
	w.loop.Run(30 * sim.Second)
	grown := server.Cwnd()
	at := w.loop.Now().Add(10 * time.Second)
	w.loop.At(at, func() { server.Write(10_000) })
	w.loop.RunUntilIdle()
	if server.IdleRestarts != 0 {
		t.Fatalf("idle restart fired despite being disabled")
	}
	if server.Cwnd() < grown {
		t.Fatalf("cwnd collapsed with slow-start-after-idle off: %v → %v", grown, server.Cwnd())
	}
}

func TestMetricsCacheSeedsNewConnections(t *testing.T) {
	w := newWorld(cleanPath(), 9)
	cache := NewMetricsCache()
	scfg := DefaultConfig()
	scfg.Metrics = cache

	c1, s1 := w.net.NewConnPair(DefaultConfig(), scfg, "m1", "device")
	c1.OnDeliver(func(int) {})
	c1.OnEstablished(func() { s1.Write(300_000) })
	c1.Connect()
	w.loop.Run(20 * sim.Second)
	s1.Close()
	if cache.Stores == 0 {
		t.Fatal("close did not store metrics")
	}

	_, s2 := w.net.NewConnPair(DefaultConfig(), scfg, "m2", "device")
	if s2.SRTT() == 0 {
		t.Fatal("second connection not seeded with cached RTT")
	}
	if cache.Hits == 0 {
		t.Fatal("lookup not counted")
	}
	if s2.RTO() < 3*s2.SRTT() {
		t.Fatalf("seeded RTO %v not conservative vs srtt %v", s2.RTO(), s2.SRTT())
	}
}

func TestStreamAssemblerFIFO(t *testing.T) {
	var a StreamAssembler
	var done []int
	a.Expect(100, func() { done = append(done, 1) })
	a.Expect(50, func() { done = append(done, 2) })
	a.Deliver(99)
	if len(done) != 0 {
		t.Fatal("early completion")
	}
	a.Deliver(1)
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("first message: %v", done)
	}
	a.Deliver(50)
	if len(done) != 2 || done[1] != 2 {
		t.Fatalf("second message: %v", done)
	}
	// Zero-size messages complete immediately.
	a.Expect(0, func() { done = append(done, 3) })
	if len(done) != 3 {
		t.Fatal("zero-size message did not complete")
	}
}

func TestStreamAssemblerProperty(t *testing.T) {
	// For any sizes and any delivery chunking, messages complete exactly
	// once, in order, and only when enough bytes have arrived.
	check := func(sizes []uint16, chunks []uint16) bool {
		var a StreamAssembler
		total := 0
		completed := make([]bool, len(sizes))
		for i, s := range sizes {
			i := i
			size := int(s % 5000)
			total += size
			a.Expect(size, func() {
				if completed[i] {
					panic("double completion")
				}
				// All earlier messages must already be complete.
				for j := 0; j < i; j++ {
					if !completed[j] {
						panic("out of order")
					}
				}
				completed[i] = true
			})
		}
		delivered := 0
		for _, c := range chunks {
			n := int(c % 4000)
			if delivered+n > total {
				n = total - delivered
			}
			a.Deliver(n)
			delivered += n
		}
		a.Deliver(total - delivered)
		for _, ok := range completed {
			if !ok {
				return false
			}
		}
		return a.PendingMessages() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseSendsFinAndNotifiesPeer(t *testing.T) {
	w := newWorld(cleanPath(), 10)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "fin", "d")
	closed := false
	server.OnClose(func() { closed = true })
	client.OnEstablished(func() { client.Write(10) })
	client.Connect()
	w.loop.Run(5 * sim.Second)
	client.Close()
	w.loop.Run(10 * sim.Second)
	if !closed {
		t.Fatal("peer did not observe FIN")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, float64) {
		w := newWorld(netem.Profile3G(), 77)
		client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "det", "d")
		got := 0
		client.OnDeliver(func(n int) { got += n })
		client.OnEstablished(func() { server.Write(500_000) })
		client.Connect()
		w.loop.Run(60 * sim.Second)
		return got, server.Cwnd()
	}
	g1, c1 := run()
	g2, c2 := run()
	if g1 != g2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", g1, c1, g2, c2)
	}
}

func TestRetransmissionCounters(t *testing.T) {
	// Lossy path: total retransmissions reported by counters must match
	// probe events.
	cfg := cleanPath()
	cfg.Down.LossRate = 0.02
	w := newWorld(cfg, 11)
	rec := NewRecorder()
	scfg := DefaultConfig()
	scfg.Probe = rec
	client, server := w.net.NewConnPair(DefaultConfig(), scfg, "rc", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(800_000) })
	client.Connect()
	w.loop.Run(120 * sim.Second)
	if client.BytesRcvdApp != 800_000 {
		t.Fatalf("lossy transfer incomplete: %d", client.BytesRcvdApp)
	}
	if server.Retransmits+server.FastRetransmits == 0 {
		t.Fatal("no retransmissions on 2% loss")
	}
	if got := rec.Retransmissions(); got != server.Retransmits+server.FastRetransmits {
		t.Fatalf("probe count %d != counters %d", got, server.Retransmits+server.FastRetransmits)
	}
}

func TestSACKRecoveryMultiHole(t *testing.T) {
	// Drop a comb of segments mid-window by overflowing a tiny queue,
	// then verify the transfer completes promptly (SACK repairs all
	// holes without per-hole RTOs).
	cfg := cleanPath()
	cfg.Down.QueueBytes = 20_000
	w := newWorld(cfg, 12)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "sack", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(600_000) })
	client.Connect()
	end := w.loop.Run(sim.Forever)
	if client.BytesRcvdApp != 600_000 {
		t.Fatalf("incomplete: %d", client.BytesRcvdApp)
	}
	// 600 KB at 10 Mbit/s ≈ 0.5 s ideal; allow generous recovery slack
	// but fail on wedge-like multi-minute tails.
	if end > 30*sim.Second {
		t.Fatalf("recovery took %v — wedged", end)
	}
}

func TestDSACKUndoRestoresCwnd(t *testing.T) {
	// Artificial spurious timeout: tiny MinRTO and a long-delay path so
	// every first-flight ACK arrives after the RTO.
	cfg := cleanPath()
	cfg.Down.Delay = 300 * time.Millisecond
	cfg.Up.Delay = 300 * time.Millisecond
	w := newWorld(cfg, 13)
	scfg := DefaultConfig()
	scfg.InitialRTO = 250 * time.Millisecond // below the 600 ms RTT
	scfg.MinRTO = 100 * time.Millisecond
	rec := NewRecorder()
	scfg.Probe = rec
	client, server := w.net.NewConnPair(DefaultConfig(), scfg, "undo", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(13_800) })
	client.Connect()
	w.loop.Run(30 * sim.Second)
	if client.BytesRcvdApp != 13_800 {
		t.Fatalf("incomplete: %d", client.BytesRcvdApp)
	}
	if server.Retransmits == 0 {
		t.Fatal("expected a spurious timeout")
	}
	if server.Undos == 0 {
		t.Fatal("DSACK undo never fired")
	}
	if server.Cwnd() < DefaultConfig().InitialCwnd {
		t.Fatalf("cwnd not restored after undo: %v", server.Cwnd())
	}
}

func TestWritableHookKeepsSocketFed(t *testing.T) {
	w := newWorld(cleanPath(), 14)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "wh", "d")
	client.OnDeliver(func(int) {})
	remaining := 40
	server.SetWritableHook(8000, func() {
		if remaining > 0 {
			remaining--
			server.Write(4000)
		}
	})
	client.OnEstablished(func() { server.Write(4000); remaining-- })
	client.Connect()
	w.loop.Run(30 * sim.Second)
	if client.BytesRcvdApp != 40*4000 {
		t.Fatalf("hook-fed transfer incomplete: %d", client.BytesRcvdApp)
	}
}
