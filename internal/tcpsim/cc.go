package tcpsim

import (
	"math"
	"time"

	"spdier/internal/sim"
)

// CongestionControl is the pluggable window-growth policy. The connection
// calls it on ACKs in congestion avoidance and asks it for the new
// ssthresh after a loss event; slow start (cwnd += 1 per ACKed segment
// while cwnd < ssthresh) is common to all variants and handled by Conn.
//
// cwnd and ssthresh are counted in segments, as the paper reports them.
type CongestionControl interface {
	Name() string
	// OnAckCA returns the cwnd increment (in segments, may be
	// fractional) for ackedSegs newly acknowledged segments while in
	// congestion avoidance with the given cwnd.
	OnAckCA(now sim.Time, cwnd float64, ackedSegs int, srtt time.Duration) float64
	// SsthreshAfterLoss returns the new ssthresh given the cwnd at loss.
	SsthreshAfterLoss(cwnd float64) float64
	// OnLoss lets the variant snapshot state (CUBIC records W_max and
	// restarts its epoch).
	OnLoss(now sim.Time, cwnd float64)
	// OnUndo is called when a loss episode is proven spurious and the
	// connection restores its pre-loss cwnd/ssthresh (F-RTO / Eifel
	// undo): the variant rolls back the bookkeeping OnLoss installed, so
	// a phantom loss leaves no trace in its growth trajectory.
	OnUndo(now sim.Time, cwnd float64)
	// OnExitRecovery is called when recovery completes.
	OnExitRecovery(now sim.Time, cwnd float64)
	// Reset clears variant state (new connection or idle restart).
	Reset()
}

// NewCC constructs a congestion control variant by name ("reno" or
// "cubic"); unknown names panic, since they always indicate an
// experiment-config typo.
func NewCC(name string) CongestionControl {
	if name == "" {
		name = "reno"
	}
	if ctor, ok := ccRegistry[name]; ok {
		return ctor()
	}
	panic("tcpsim: unknown congestion control " + name)
}

// Reno is classic AIMD: +1 segment per RTT in congestion avoidance,
// multiplicative decrease to half on loss.
type Reno struct{}

func (r *Reno) Name() string { return "reno" }

func (r *Reno) OnAckCA(_ sim.Time, cwnd float64, ackedSegs int, _ time.Duration) float64 {
	if cwnd <= 0 {
		cwnd = 1
	}
	return float64(ackedSegs) / cwnd
}

func (r *Reno) SsthreshAfterLoss(cwnd float64) float64 {
	s := cwnd / 2
	if s < 2 {
		s = 2
	}
	return s
}

func (r *Reno) OnLoss(sim.Time, float64)         {}
func (r *Reno) OnUndo(sim.Time, float64)         {}
func (r *Reno) OnExitRecovery(sim.Time, float64) {}
func (r *Reno) Reset()                           {}

// Cubic implements RFC 8312 CUBIC congestion avoidance, the Linux
// default the paper's proxy ran. Its window is a cubic function of time
// since the last loss: it first plateaus near W_max (probing) and then
// grows aggressively — the "first probes and then has an exponential
// growth" pattern the paper observes in Figure 12.
type Cubic struct {
	c    float64 // scaling constant, 0.4
	beta float64 // multiplicative decrease, 0.7

	wMax       float64
	priorWMax  float64 // wMax before the last OnLoss, for spurious-loss undo
	epochStart sim.Time
	hasEpoch   bool
	k          float64 // time (s) to regrow to wMax
	ackCount   float64 // for the TCP-friendly estimate
	wEst       float64
}

// NewCubic returns CUBIC with the RFC 8312 constants.
func NewCubic() *Cubic {
	return &Cubic{c: 0.4, beta: 0.7}
}

func (cu *Cubic) Name() string { return "cubic" }

func (cu *Cubic) Reset() {
	cu.wMax = 0
	cu.priorWMax = 0
	cu.hasEpoch = false
	cu.k = 0
	cu.ackCount = 0
	cu.wEst = 0
}

func (cu *Cubic) OnLoss(now sim.Time, cwnd float64) {
	cu.priorWMax = cu.wMax
	// Fast convergence (RFC 8312 §4.6).
	if cwnd < cu.wMax {
		cu.wMax = cwnd * (1 + cu.beta) / 2
	} else {
		cu.wMax = cwnd
	}
	cu.hasEpoch = false
}

// OnUndo rolls back the last OnLoss: the loss was phantom, so the
// fast-convergence W_max reduction must not depress the next epoch's
// plateau (Linux tcp_cubic leaves this to the generic undo restoring
// cwnd; restoring W_max keeps the cubic target consistent with it).
func (cu *Cubic) OnUndo(now sim.Time, cwnd float64) {
	cu.wMax = cu.priorWMax
	if cu.wMax < cwnd {
		cu.wMax = cwnd
	}
	cu.hasEpoch = false
}

func (cu *Cubic) OnExitRecovery(now sim.Time, cwnd float64) {
	cu.hasEpoch = false
}

func (cu *Cubic) SsthreshAfterLoss(cwnd float64) float64 {
	s := cwnd * cu.beta
	if s < 2 {
		s = 2
	}
	return s
}

func (cu *Cubic) OnAckCA(now sim.Time, cwnd float64, ackedSegs int, srtt time.Duration) float64 {
	if srtt <= 0 {
		srtt = 100 * time.Millisecond
	}
	if !cu.hasEpoch {
		cu.epochStart = now
		cu.hasEpoch = true
		if cu.wMax < cwnd {
			cu.wMax = cwnd
		}
		cu.k = math.Cbrt(cu.wMax * (1 - cu.beta) / cu.c)
		cu.ackCount = 0
		cu.wEst = cwnd
	}

	t := now.Sub(cu.epochStart).Seconds() + srtt.Seconds()
	target := cu.c*math.Pow(t-cu.k, 3) + cu.wMax

	// TCP-friendly region (RFC 8312 §4.2).
	cu.ackCount += float64(ackedSegs)
	cu.wEst += 3 * (1 - cu.beta) / (1 + cu.beta) * float64(ackedSegs) / cwnd
	if cu.wEst < cwnd {
		cu.wEst = cwnd
	}
	if target < cu.wEst {
		target = cu.wEst
	}

	if target <= cwnd {
		// Probing plateau: crawl forward very slowly.
		return float64(ackedSegs) / (100 * cwnd)
	}
	// Spread the climb to target over roughly one RTT of ACKs.
	inc := (target - cwnd) / cwnd * float64(ackedSegs)
	// Cap growth at slow-start pace.
	if inc > float64(ackedSegs) {
		inc = float64(ackedSegs)
	}
	return inc
}
