package tcpsim

import (
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/rrc"
	"spdier/internal/sim"
)

// wiredNet builds a loss-free fast path for basic correctness tests.
func wiredNet(loop *sim.Loop, seed uint64) *Network {
	cfg := netem.PathConfig{
		Up:   netem.LinkConfig{BandwidthBPS: 10_000_000, Delay: 10 * time.Millisecond},
		Down: netem.LinkConfig{BandwidthBPS: 10_000_000, Delay: 10 * time.Millisecond},
	}
	path := netem.NewPath(loop, cfg, sim.NewRNG(seed), nil)
	return NewNetwork(loop, path)
}

func TestSmokeTransfer(t *testing.T) {
	loop := sim.NewLoop()
	nw := wiredNet(loop, 1)
	client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "t", "client")

	const total = 500_000
	got := 0
	client.OnDeliver(func(n int) { got += n })
	client.OnEstablished(func() {
		server.Write(total)
	})
	client.Connect()
	loop.Run(30 * sim.Second)

	if got != total {
		t.Fatalf("delivered %d bytes, want %d", got, total)
	}
	if server.Retransmits != 0 {
		t.Fatalf("unexpected retransmits on clean path: %d", server.Retransmits)
	}
	t.Logf("done at %v, cwnd=%.1f srtt=%v", loop.Now(), server.Cwnd(), server.SRTT())
}

func TestSmoke3GPromotionSpuriousRetx(t *testing.T) {
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	pc := netem.Profile3G()
	pc.Up.LossRate = 0
	pc.Down.LossRate = 0
	path := netem.NewPath(loop, pc, sim.NewRNG(2), radio)
	nw := NewNetwork(loop, path)

	scfg := DefaultConfig()
	rec := NewRecorder()
	scfg.Probe = rec
	client, server := nw.NewConnPair(DefaultConfig(), scfg, "g", "client")

	got := 0
	client.OnDeliver(func(n int) { got += n })
	client.OnEstablished(func() { server.Write(200_000) })
	client.Connect()
	loop.Run(30 * sim.Second)
	if got != 200_000 {
		t.Fatalf("first burst: got %d", got)
	}

	// Go idle long enough for the radio to demote to IDLE (5s + 12s),
	// then send again: the promotion delay (2s) should beat the RTO and
	// trigger a spurious retransmission.
	idleUntil := loop.Now().Add(20 * time.Second)
	loop.At(idleUntil, func() { server.Write(100_000) })
	loop.Run(idleUntil.Add(30 * time.Second))

	if got != 300_000 {
		t.Fatalf("after idle: got %d want 300000", got)
	}
	if server.Retransmits == 0 {
		t.Fatalf("expected RTO retransmissions after idle+promotion, got none (radio state %v, promotions %d)",
			radio.State(), radio.Promotions())
	}
	if client.SpuriousArrivals == 0 {
		t.Fatalf("expected spurious (duplicate) arrivals at client")
	}
	t.Logf("retx=%d spurious=%d idleRestarts=%d promotions=%d cwnd=%.1f ssthresh=%.1f",
		server.Retransmits, client.SpuriousArrivals, server.IdleRestarts, radio.Promotions(),
		server.Cwnd(), server.Ssthresh())
}

func TestSmokeRTTResetFixAvoidsSpurious(t *testing.T) {
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	pc := netem.Profile3G()
	pc.Up.LossRate = 0
	pc.Down.LossRate = 0
	path := netem.NewPath(loop, pc, sim.NewRNG(2), radio)
	nw := NewNetwork(loop, path)

	scfg := DefaultConfig()
	scfg.ResetRTTAfterIdle = true
	client, server := nw.NewConnPair(DefaultConfig(), scfg, "f", "client")

	got := 0
	client.OnDeliver(func(n int) { got += n })
	client.OnEstablished(func() { server.Write(200_000) })
	client.Connect()
	loop.Run(30 * sim.Second)

	idleUntil := loop.Now().Add(20 * time.Second)
	loop.At(idleUntil, func() { server.Write(100_000) })
	loop.Run(idleUntil.Add(30 * time.Second))

	if got != 300_000 {
		t.Fatalf("after idle: got %d want 300000", got)
	}
	if server.Retransmits != 0 {
		t.Fatalf("RTT-reset fix should avoid spurious RTO, got %d retransmits", server.Retransmits)
	}
}
