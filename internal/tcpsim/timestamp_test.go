package tcpsim

import (
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/rrc"
	"spdier/internal/sim"
)

// TestTimestampSamplingTracksPathRTT verifies that after a multi-hole
// recovery, RTT samples reflect the current path RTT (timestamp echo of
// the repairing segment) rather than the age of long-stuck segments.
func TestTimestampSamplingTracksPathRTT(t *testing.T) {
	cfg := cleanPath()
	cfg.Down.QueueBytes = 30_000 // force drop bursts
	w := newWorld(cfg, 6)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "ts", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(400_000) })
	client.Connect()
	end := w.loop.Run(sim.Forever)
	if client.BytesRcvdApp != 400_000 {
		t.Fatalf("incomplete: %d", client.BytesRcvdApp)
	}
	// Base RTT is 40 ms + ~25 ms of queue; a sampler polluted by stuck
	// segments would report seconds.
	if server.SRTT() > 300*time.Millisecond {
		t.Fatalf("srtt %v polluted by cumulative-ack ambiguity", server.SRTT())
	}
	if end > 20*sim.Second {
		t.Fatalf("recovery dragged to %v", end)
	}
}

// TestTimestampSamplesPromotionDelay verifies the paper's §5.5.1
// observation: the RTT sample taken across a radio promotion inflates
// the estimate, so a subsequent short idle does NOT time out spuriously
// ("the RTO value [had] grown large enough").
func TestTimestampSamplesPromotionDelay(t *testing.T) {
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	pc := netem.Profile3G()
	pc.Up.LossRate, pc.Down.LossRate = 0, 0
	path := netem.NewPath(loop, pc, sim.NewRNG(2), radio)
	nw := NewNetwork(loop, path)
	client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "pd", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(20_000) })
	client.Connect()
	loop.Run(10 * sim.Second)
	// The handshake absorbed the initial promotion; data samples are
	// ordinary path RTTs here.
	if server.SRTT() > 600*time.Millisecond {
		t.Fatalf("active-radio srtt %v implausible", server.SRTT())
	}
	// Idle long enough for the radio to sleep, then send: the first
	// post-idle flight sits through the 2 s promotion, and its ACK's
	// timestamp echo must pull the estimate up (§5.5.1: "the RTO value
	// [has] grown large enough to accommodate the increased RTT").
	at := loop.Now().Add(25 * time.Second)
	loop.At(at, func() { server.Write(20_000) })
	loop.Run(at.Add(100 * time.Millisecond))
	preRTO := server.RTO()
	loop.Run(at.Add(10 * time.Second))
	if server.SRTT() < 500*time.Millisecond {
		t.Fatalf("srtt %v did not absorb the promotion delay", server.SRTT())
	}
	if server.RTO() <= preRTO {
		t.Fatalf("RTO did not grow after sampling the promotion: %v vs %v", server.RTO(), preRTO)
	}
}

// TestCwndValidationCapsGrowthAtReceiveWindow: with a transfer limited by
// the peer's receive window, cwnd must stop growing near the limit
// instead of inflating unboundedly (RFC 7661; the paper's Table 2 max
// cwnd sits at the receive-buffer ceiling).
func TestCwndValidationCapsGrowthAtReceiveWindow(t *testing.T) {
	cfg := cleanPath()
	cfg.Down.Delay = 100 * time.Millisecond // BDP above rwnd
	cfg.Up.Delay = 100 * time.Millisecond
	w := newWorld(cfg, 7)
	ccfg := DefaultConfig()
	ccfg.RecvBuffer = 64 << 10
	client, server := w.net.NewConnPair(ccfg, DefaultConfig(), "cv", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(5_000_000) })
	client.Connect()
	w.loop.Run(sim.Forever)
	rwndSegs := float64(64<<10) / 1380
	if server.Cwnd() > rwndSegs*2 {
		t.Fatalf("cwnd %.0f inflated far past the %0.f-segment receive window", server.Cwnd(), rwndSegs)
	}
}

// TestDisableUndoKeepsDamage: with undo disabled, a spurious timeout's
// ssthresh collapse must persist.
func TestDisableUndoKeepsDamage(t *testing.T) {
	run := func(disable bool) (ssthresh float64, undos int) {
		loop := sim.NewLoop()
		radio := rrc.NewMachine(loop, rrc.Profile3G())
		pc := netem.Profile3G()
		pc.Up.LossRate, pc.Down.LossRate = 0, 0
		path := netem.NewPath(loop, pc, sim.NewRNG(2), radio)
		nw := NewNetwork(loop, path)
		scfg := DefaultConfig()
		scfg.DisableUndo = disable
		client, server := nw.NewConnPair(DefaultConfig(), scfg, "du", "d")
		client.OnDeliver(func(int) {})
		client.OnEstablished(func() { server.Write(200_000) })
		client.Connect()
		loop.Run(30 * sim.Second)
		// Long idle so the radio sleeps, then a post-idle burst that hits
		// a spurious timeout.
		at := loop.Now().Add(25 * time.Second)
		loop.At(at, func() { server.Write(100_000) })
		loop.Run(at.Add(30 * time.Second))
		return server.Ssthresh(), server.Undos
	}
	withUndoSS, withUndos := run(false)
	noUndoSS, noUndos := run(true)
	if noUndos != 0 {
		t.Fatalf("undo fired despite being disabled: %d", noUndos)
	}
	if withUndos == 0 {
		t.Fatalf("undo never fired on the stock stack")
	}
	if noUndoSS >= withUndoSS {
		t.Fatalf("disabled undo should leave ssthresh depressed: %v vs %v", noUndoSS, withUndoSS)
	}
}
