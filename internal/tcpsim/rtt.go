package tcpsim

import "time"

// rttEstimator implements RFC 6298 smoothed RTT / RTO computation.
// It is the component the paper indicts: the estimate survives idle
// periods even though the cellular latency profile does not.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	rto    time.Duration // base RTO before exponential backoff
	valid  bool          // at least one sample taken

	// backoffN counts consecutive timeouts. The effective timeout is
	// rto << backoffN; progress (an ACK advancing snd_una) clears it,
	// as Linux clears icsk_backoff.
	backoffN uint

	initialRTO time.Duration
	minRTO     time.Duration
	maxRTO     time.Duration
}

// current returns the effective (backed-off) retransmission timeout.
// The doubling saturates at maxRTO before each shift, so even a
// pathological maxRTO near the Duration ceiling cannot overflow into a
// negative timeout; combined with the backoffN cap of 16 the sequence
// is min(rto·2ⁿ, maxRTO) for every n.
func (e *rttEstimator) current() time.Duration {
	d := e.rto
	for i := uint(0); i < e.backoffN; i++ {
		if d >= e.maxRTO || d > maxDuration/2 {
			return e.maxRTO
		}
		d *= 2
	}
	if d > e.maxRTO {
		d = e.maxRTO
	}
	return d
}

// base returns the un-backed-off timeout. Idle detection compares
// against this: whether a connection has been idle "longer than the
// RTO" (Linux tcp_cwnd_restart) is a property of the path estimate,
// not of how many timeouts the previous burst happened to suffer.
func (e *rttEstimator) base() time.Duration { return e.rto }

const clockGranularity = time.Millisecond

const maxDuration = time.Duration(1<<63 - 1)

func newRTTEstimator(initial, min, max time.Duration) rttEstimator {
	e := rttEstimator{
		rto:        initial,
		initialRTO: initial,
		minRTO:     min,
		maxRTO:     max,
	}
	// The configured initial RTO must itself respect the clamp window;
	// otherwise the first armed timer would violate the rto-clamp
	// invariant before any sample is taken.
	e.clamp()
	return e
}

// sample folds one RTT measurement in (RFC 6298 §2).
func (e *rttEstimator) sample(rtt time.Duration) {
	if rtt <= 0 {
		rtt = clockGranularity
	}
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
	} else {
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.rto = e.srtt + max4(clockGranularity, 4*e.rttvar)
	e.clamp()
}

func max4(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func (e *rttEstimator) clamp() {
	if e.rto < e.minRTO {
		e.rto = e.minRTO
	}
	if e.rto > e.maxRTO {
		e.rto = e.maxRTO
	}
}

// backoff doubles the effective RTO after a timeout (RFC 6298 §5.5).
func (e *rttEstimator) backoff() {
	var before time.Duration
	if invOn {
		before = e.current()
	}
	if e.backoffN < 16 {
		e.backoffN++
	}
	if invOn {
		checkBackoffMonotone(before, e.current())
	}
}

// progress clears exponential backoff when the peer acknowledges new
// data, even if Karn's rule prevented an RTT sample. Callers must gate
// this on the ACK covering at least one never-retransmitted segment OR
// carrying a timestamp echo (which disambiguates retransmissions,
// RFC 7323 §4): a bare ACK for retransmitted data only proves the
// retransmission worked, not that the path sustains the un-backed-off
// timeout (Karn's rule as Linux applies it to icsk_backoff).
func (e *rttEstimator) progress() {
	e.backoffN = 0
}

// reset discards the estimate entirely, restoring the conservative
// initial RTO. This is the paper's §6.2.1 proposal applied after idle:
// the multi-second default exceeds the 3G promotion delay, so the first
// post-idle transfer no longer times out spuriously.
func (e *rttEstimator) reset() {
	e.valid = false
	e.srtt = 0
	e.rttvar = 0
	e.rto = e.initialRTO
	e.backoffN = 0
	e.clamp()
}

// seed installs a cached estimate (Linux tcp_metrics behaviour at
// connection establishment). Like tcp_init_metrics, the deviation is
// floored at srtt/2 so a fresh connection starts with a conservative
// RTO (≈3·srtt) and tightens only after its own samples.
func (e *rttEstimator) seed(srtt, rttvar time.Duration) {
	if srtt <= 0 {
		return
	}
	e.srtt = srtt
	e.rttvar = rttvar
	if floor := srtt / 2; e.rttvar < floor {
		e.rttvar = floor
	}
	e.valid = true
	e.rto = e.srtt + max4(clockGranularity, 4*e.rttvar)
	e.clamp()
}
