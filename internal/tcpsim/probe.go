package tcpsim

import (
	"spdier/internal/sim"
)

// ProbeEvent labels why a probe sample was taken, mirroring what the
// paper extracted from the tcp_probe kernel module and tcpdump.
type ProbeEvent string

const (
	EvAck         ProbeEvent = "ack"
	EvSend        ProbeEvent = "send"
	EvRetransmit  ProbeEvent = "retransmit"  // RTO-driven
	EvFastRetx    ProbeEvent = "fastretx"    // triple-dupack
	EvIdleRestart ProbeEvent = "idlerestart" // cwnd validation after idle
	EvRTTReset    ProbeEvent = "rttreset"    // the §6.2.1 fix firing
	EvEstablished ProbeEvent = "established"
	EvSpurious    ProbeEvent = "spurious" // retransmit later proven unnecessary
	EvUndo        ProbeEvent = "undo"     // DSACK proved the episode spurious; cwnd/ssthresh restored
)

// ProbeSample is one tcp_probe-style record.
type ProbeSample struct {
	At       sim.Time
	ConnID   string
	Event    ProbeEvent
	Cwnd     float64 // segments
	Ssthresh float64 // segments
	InFlight int     // bytes outstanding (unacknowledged)
	RTOms    float64
	SRTTms   float64
}

// Probe receives samples from connections. Implementations must be cheap;
// they run inline with the event loop.
type Probe interface {
	Sample(ProbeSample)
}

// Recorder is a Probe that retains every sample, with per-event counters.
type Recorder struct {
	Samples []ProbeSample
	Counts  map[ProbeEvent]int
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{Counts: make(map[ProbeEvent]int)}
}

// Sample implements Probe.
func (r *Recorder) Sample(s ProbeSample) {
	r.Samples = append(r.Samples, s)
	r.Counts[s.Event]++
}

// Retransmissions reports the total retransmission count (timeout plus
// fast retransmit), the quantity Figures 11-13 analyze.
func (r *Recorder) Retransmissions() int {
	return r.Counts[EvRetransmit] + r.Counts[EvFastRetx]
}

// SpuriousRetransmissions reports retransmissions for which the original
// segment's ACK later arrived, proving the timeout premature.
func (r *Recorder) SpuriousRetransmissions() int { return r.Counts[EvSpurious] }

// Filter returns the samples matching the given event.
func (r *Recorder) Filter(ev ProbeEvent) []ProbeSample {
	var out []ProbeSample
	for _, s := range r.Samples {
		if s.Event == ev {
			out = append(out, s)
		}
	}
	return out
}

// ByConn splits samples per connection ID.
func (r *Recorder) ByConn() map[string][]ProbeSample {
	out := make(map[string][]ProbeSample)
	for _, s := range r.Samples {
		out[s.ConnID] = append(out[s.ConnID], s)
	}
	return out
}

// MaxCwnd returns the largest congestion window seen (Table 2's
// "Max cwnd" row).
func (r *Recorder) MaxCwnd() float64 {
	var m float64
	for _, s := range r.Samples {
		if s.Cwnd > m {
			m = s.Cwnd
		}
	}
	return m
}

// MeanCwnd returns the average congestion window across samples
// (Table 2's "Avg cwnd" row).
func (r *Recorder) MeanCwnd() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Samples {
		sum += s.Cwnd
	}
	return sum / float64(len(r.Samples))
}
