package tcpsim

import (
	"spdier/internal/sim"
)

// ProbeEvent labels why a probe sample was taken, mirroring what the
// paper extracted from the tcp_probe kernel module and tcpdump.
type ProbeEvent string

const (
	EvAck         ProbeEvent = "ack"
	EvSend        ProbeEvent = "send"
	EvRetransmit  ProbeEvent = "retransmit"  // RTO-driven
	EvFastRetx    ProbeEvent = "fastretx"    // triple-dupack
	EvIdleRestart ProbeEvent = "idlerestart" // cwnd validation after idle
	EvRTTReset    ProbeEvent = "rttreset"    // the §6.2.1 fix firing
	EvEstablished ProbeEvent = "established"
	EvSpurious    ProbeEvent = "spurious" // retransmit later proven unnecessary
	EvUndo        ProbeEvent = "undo"     // DSACK proved the episode spurious; cwnd/ssthresh restored
	EvTLPProbe    ProbeEvent = "tlpprobe" // tail loss probe fired (PTO before the RTO)
	EvRACKRetx    ProbeEvent = "rackretx" // retransmission of a RACK-marked segment
	EvFRTOUndo    ProbeEvent = "frtoundo" // F-RTO verdict: timeout spurious; full Eifel undo
)

// evCodes assigns each event a compact code for columnar storage.
// Append-only: the code is the array index, and retained recorder
// columns store codes, so reordering or inserting would silently
// relabel historical traces and golden reports.
var evCodes = [...]ProbeEvent{
	EvAck, EvSend, EvRetransmit, EvFastRetx, EvIdleRestart,
	EvRTTReset, EvEstablished, EvSpurious, EvUndo,
	EvTLPProbe, EvRACKRetx, EvFRTOUndo,
}

func evCode(ev ProbeEvent) uint8 {
	for i, e := range evCodes {
		if e == ev {
			return uint8(i)
		}
	}
	// Unknown events (none exist today) share a sentinel code.
	return uint8(len(evCodes))
}

func evFromCode(c uint8) ProbeEvent {
	if int(c) < len(evCodes) {
		return evCodes[c]
	}
	return ProbeEvent("unknown")
}

// Events lists every probe event class, in stable code order.
func Events() []ProbeEvent {
	out := make([]ProbeEvent, len(evCodes))
	copy(out, evCodes[:])
	return out
}

// ProbeSample is one tcp_probe-style record.
type ProbeSample struct {
	At       sim.Time
	ConnID   string
	Event    ProbeEvent
	Cwnd     float64 // segments
	Ssthresh float64 // segments
	InFlight int     // bytes outstanding (unacknowledged)
	RTOms    float64
	SRTTms   float64
}

// Probe receives samples from connections. Implementations must be cheap;
// they run inline with the event loop.
type Probe interface {
	Sample(ProbeSample)
}

// Consumer receives every sample offered to a Recorder, before any
// retention policy is applied. It lets streaming pipelines observe the
// full probe stream without the Recorder materializing it.
type Consumer interface {
	Consume(ProbeSample)
}

// Recorder is a Probe that retains samples in struct-of-arrays columnar
// form: parallel slices with narrow element types (~34 bytes/sample
// instead of ~80 for the boxed struct), with connection IDs interned.
//
// A stride > 1 additionally downsamples the two bulk event classes
// (EvAck, EvSend), retaining every stride-th one. Rare events —
// retransmissions, idle restarts, undos, RTT resets, establishment,
// spurious arrivals — are always retained, so event counting, burst
// analysis and the figures' event ledgers are unaffected. Aggregate
// statistics (Counts, MeanCwnd, MaxCwnd) are maintained over every
// sample offered, downsampled or not, so they are exact regardless of
// stride.
type Recorder struct {
	// counts is indexed by event code; the extra slot absorbs unknown
	// events. An array lookup per sample instead of a string-keyed map
	// access — Sample runs inline with the event loop.
	counts [len(evCodes) + 1]int

	stride   int  // retain every stride-th bulk sample; <=1 keeps all
	rareOnly bool // drop all bulk samples; rare events still retained
	bulkSeen int  // bulk samples offered, for stride selection

	sink Consumer // optional tee observing every sample offered

	// Columnar sample storage.
	at       []sim.Time
	conn     []uint16
	event    []uint8
	cwnd     []float32
	ssthresh []float32
	inflight []int32
	rtoMs    []float32
	srttMs   []float32

	// Connection-ID intern table. lastConn/lastCode short-circuit the
	// map lookup for the common case of consecutive samples from one
	// connection (ACK trains, send bursts).
	connIDs  []string
	connIdx  map[string]uint16
	lastConn string
	lastCode uint16

	// Exact aggregates over all samples offered.
	total   int
	cwndSum float64
	cwndMax float64
}

// NewRecorder returns an empty Recorder retaining every sample.
func NewRecorder() *Recorder { return NewRecorderStride(1) }

// NewRecorderStride returns an empty Recorder that retains every
// stride-th bulk (ack/send) sample. stride <= 1 retains everything.
func NewRecorderStride(stride int) *Recorder {
	if stride < 1 {
		stride = 1
	}
	return &Recorder{
		stride:  stride,
		connIdx: make(map[string]uint16),
	}
}

// NewRecorderRareOnly returns a Recorder that retains no bulk (ack/send)
// samples at all. Rare events — retransmissions, idle restarts, undos,
// RTT resets, establishment, spurious arrivals — are still retained, so
// retransmission burst analysis works unchanged, and the exact aggregates
// (Counts, MeanCwnd, MaxCwnd, TotalSamples) are identical to a full
// Recorder's. This is the bounded-memory mode the streaming sweep path
// uses: aggregate-only experiments never materialize the columnar trace.
func NewRecorderRareOnly() *Recorder {
	r := NewRecorderStride(1)
	r.rareOnly = true
	return r
}

// SetConsumer installs a tee that observes every sample offered,
// regardless of the retention policy. A nil consumer removes the tee.
func (r *Recorder) SetConsumer(c Consumer) { r.sink = c }

// RareOnly reports whether bulk samples are dropped entirely.
func (r *Recorder) RareOnly() bool { return r.rareOnly }

// Sample implements Probe.
func (r *Recorder) Sample(s ProbeSample) {
	code := evCode(s.Event)
	r.counts[code]++
	r.total++
	r.cwndSum += s.Cwnd
	if s.Cwnd > r.cwndMax {
		r.cwndMax = s.Cwnd
	}
	if r.sink != nil {
		r.sink.Consume(s)
	}
	if s.Event == EvAck || s.Event == EvSend {
		keep := !r.rareOnly && r.bulkSeen%r.stride == 0
		r.bulkSeen++
		if !keep {
			return
		}
	}
	ci := r.lastCode
	if s.ConnID != r.lastConn {
		var ok bool
		ci, ok = r.connIdx[s.ConnID]
		if !ok {
			ci = uint16(len(r.connIDs))
			r.connIDs = append(r.connIDs, s.ConnID)
			r.connIdx[s.ConnID] = ci
		}
		r.lastConn, r.lastCode = s.ConnID, ci
	}
	r.at = append(r.at, s.At)
	r.conn = append(r.conn, ci)
	r.event = append(r.event, code)
	r.cwnd = append(r.cwnd, float32(s.Cwnd))
	r.ssthresh = append(r.ssthresh, float32(s.Ssthresh))
	r.inflight = append(r.inflight, int32(s.InFlight))
	r.rtoMs = append(r.rtoMs, float32(s.RTOms))
	r.srttMs = append(r.srttMs, float32(s.SRTTms))
}

// Len reports the number of retained samples.
func (r *Recorder) Len() int { return len(r.at) }

// TotalSamples reports how many samples were offered, including bulk
// samples dropped by the stride.
func (r *Recorder) TotalSamples() int { return r.total }

// Stride returns the configured bulk downsampling stride.
func (r *Recorder) Stride() int { return r.stride }

// RetainedBytes estimates the resident size of the columnar store.
func (r *Recorder) RetainedBytes() int {
	per := 8 + 2 + 1 + 4 + 4 + 4 + 4 + 4 // one element in each column
	return cap(r.at)*per + len(r.connIDs)*24
}

// Get reassembles the i-th retained sample.
func (r *Recorder) Get(i int) ProbeSample {
	return ProbeSample{
		At:       r.at[i],
		ConnID:   r.connIDs[r.conn[i]],
		Event:    evFromCode(r.event[i]),
		Cwnd:     float64(r.cwnd[i]),
		Ssthresh: float64(r.ssthresh[i]),
		InFlight: int(r.inflight[i]),
		RTOms:    float64(r.rtoMs[i]),
		SRTTms:   float64(r.srttMs[i]),
	}
}

// Each calls fn for every retained sample in order, stopping early if fn
// returns false.
func (r *Recorder) Each(fn func(ProbeSample) bool) {
	for i := range r.at {
		if !fn(r.Get(i)) {
			return
		}
	}
}

// Count reports how many samples of the given event class were offered
// (exact regardless of stride).
func (r *Recorder) Count(ev ProbeEvent) int { return r.counts[evCode(ev)] }

// Retransmissions reports the total retransmission count across every
// cause — timeout, fast retransmit, tail loss probes and RACK-driven
// repairs — the quantity Figures 11-13 analyze. With the recovery fix
// arms off the last two classes never occur, so the total is unchanged
// from the pre-recovery accounting.
func (r *Recorder) Retransmissions() int {
	return r.Count(EvRetransmit) + r.Count(EvFastRetx) +
		r.Count(EvTLPProbe) + r.Count(EvRACKRetx)
}

// SpuriousRetransmissions reports retransmissions for which the original
// segment's ACK later arrived, proving the timeout premature.
func (r *Recorder) SpuriousRetransmissions() int { return r.Count(EvSpurious) }

// Filter returns the retained samples matching the given event.
func (r *Recorder) Filter(ev ProbeEvent) []ProbeSample {
	var out []ProbeSample
	code := evCode(ev)
	for i := range r.at {
		if r.event[i] == code {
			out = append(out, r.Get(i))
		}
	}
	return out
}

// ByConn splits retained samples per connection ID.
func (r *Recorder) ByConn() map[string][]ProbeSample {
	out := make(map[string][]ProbeSample)
	for i := range r.at {
		s := r.Get(i)
		out[s.ConnID] = append(out[s.ConnID], s)
	}
	return out
}

// MaxCwnd returns the largest congestion window seen (Table 2's
// "Max cwnd" row). Exact: computed over every sample offered, not just
// the retained ones.
func (r *Recorder) MaxCwnd() float64 { return r.cwndMax }

// MeanCwnd returns the average congestion window across all samples
// offered (Table 2's "Avg cwnd" row). Exact regardless of stride.
func (r *Recorder) MeanCwnd() float64 {
	if r.total == 0 {
		return 0
	}
	return r.cwndSum / float64(r.total)
}
