package tcpsim

import (
	"fmt"
	"time"

	"spdier/internal/sim"
)

// Protocol invariant checker. Enabled by the package's tests (and any
// caller that wants it), it audits every connection's sender and
// receiver state at the natural commit points — end of ACK processing,
// end of data receipt, end of an RTO — against the rules the model
// claims to implement: TCP sequence/byte accounting, cwnd/ssthresh
// legality per RFC 5681, RTO backoff monotonicity and clamping per
// RFC 6298, and "never acknowledge unsent data". The checks are pure
// reads; enabling them cannot perturb a simulation, only observe it.
//
// invOn is written only from EnableInvariants/DisableInvariants, which
// must not race with running simulations (tests flip it in TestMain,
// before any simulation goroutine exists).

// InvariantViolation describes one failed protocol invariant.
type InvariantViolation struct {
	Conn   string // connection ID, empty for component-level checks
	Rule   string // short rule identifier, e.g. "ack-unsent"
	Detail string
	At     sim.Time
}

func (v InvariantViolation) Error() string {
	return fmt.Sprintf("tcpsim invariant %q violated at %v on %s: %s", v.Rule, v.At, v.Conn, v.Detail)
}

var (
	invOn      bool
	invHandler func(InvariantViolation)
)

// EnableInvariants turns the checker on. A nil handler panics on the
// first violation — the right default for tests, where any violation is
// a simulator bug.
func EnableInvariants(handler func(InvariantViolation)) {
	invOn = true
	invHandler = handler
}

// DisableInvariants turns the checker off.
func DisableInvariants() {
	invOn = false
	invHandler = nil
}

// InvariantsEnabled reports whether the checker is active.
func InvariantsEnabled() bool { return invOn }

func violate(v InvariantViolation) {
	if invHandler != nil {
		invHandler(v)
		return
	}
	panic(v)
}

func (c *Conn) violateConn(rule, format string, args ...any) {
	violate(InvariantViolation{
		Conn:   c.id,
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
		At:     c.loop.Now(),
	})
}

// checkAckValid rejects acknowledgments of data that was never sent.
// Called before the defensive clamp in receiveAck: the clamp keeps the
// production model robust, the invariant makes the corruption visible.
func (c *Conn) checkAckValid(seg *Segment) {
	if seg.Ack > c.sndNxt {
		c.violateConn("ack-unsent", "ack=%d beyond sndNxt=%d", seg.Ack, c.sndNxt)
	}
}

// checkSender audits sequence accounting and congestion state legality.
func (c *Conn) checkSender(where string) {
	if c.sndUna > c.sndNxt {
		c.violateConn("snd-order", "%s: sndUna=%d > sndNxt=%d", where, c.sndUna, c.sndNxt)
	}
	fl := c.infl()
	if len(fl) == 0 {
		if c.sndUna != c.sndNxt {
			c.violateConn("inflight-empty", "%s: empty inflight but sndUna=%d sndNxt=%d", where, c.sndUna, c.sndNxt)
		}
	} else {
		if fl[0].seq != c.sndUna {
			c.violateConn("inflight-head", "%s: head seq=%d, sndUna=%d", where, fl[0].seq, c.sndUna)
		}
		next := fl[0].seq
		for i := range fl {
			if fl[i].seq != next {
				c.violateConn("inflight-gap", "%s: segment %d at seq=%d, expected %d", where, i, fl[i].seq, next)
			}
			if fl[i].len <= 0 {
				c.violateConn("inflight-len", "%s: segment %d has len=%d", where, i, fl[i].len)
			}
			next = fl[i].seq + uint64(fl[i].len)
		}
		if next != c.sndNxt {
			c.violateConn("inflight-tail", "%s: inflight ends at %d, sndNxt=%d", where, next, c.sndNxt)
		}
	}
	// RFC 5681 legality: cwnd is at least one segment (the restart
	// window after an RTO), ssthresh never collapses below two segments.
	// The negated comparisons also catch NaN.
	if !(c.cwnd >= 1) || c.cwnd > 1<<24 {
		c.violateConn("cwnd-range", "%s: cwnd=%v", where, c.cwnd)
	}
	if !(c.ssthresh >= 2) {
		c.violateConn("ssthresh-min", "%s: ssthresh=%v", where, c.ssthresh)
	}
	if c.sendQueue < 0 {
		c.violateConn("sendq-negative", "%s: sendQueue=%d", where, c.sendQueue)
	}
	// Retransmit attribution: every wire retransmission is counted by
	// exactly one cause counter. TLP probes that carried new data are not
	// retransmissions and are excluded.
	attributed := c.Retransmits + c.FastRetransmits + c.RACKRetransmits + (c.TLPProbes - c.tlpNewData)
	if c.retxWire != attributed {
		c.violateConn("retx-attribution", "%s: %d wire retransmissions but %d attributed (rto=%d fast=%d rack=%d tlpRetx=%d)",
			where, c.retxWire, attributed, c.Retransmits, c.FastRetransmits, c.RACKRetransmits, c.TLPProbes-c.tlpNewData)
	}
	// Fix-arm gating: an arm that is off must leave no trace.
	if !c.cfg.TLP && (c.tlp.probing || c.TLPProbes > 0) {
		c.violateConn("tlp-gated", "%s: TLP state active with the arm off", where)
	}
	if !c.cfg.FRTO && c.FrtoUndos > 0 {
		c.violateConn("frto-gated", "%s: F-RTO undo fired with the arm off", where)
	}
	for i := range fl {
		if fl[i].lost && fl[i].sacked {
			c.violateConn("lost-sacked", "%s: segment %d both lost and sacked", where, i)
		}
		if fl[i].lost && fl[i].lostBy == causeRACK && !c.cfg.RACK {
			c.violateConn("rack-gated", "%s: RACK loss mark with the arm off", where)
		}
	}
	checkRTT(c, &c.rtt, where)
}

// checkNotCoalesced asserts that a loss-repair path is not being entered
// on the strength of an ACK the peer's delayed-ACK timer released. A
// timer release can never legitimately be the deciding duplicate: every
// event that arms the timer advances the ACK value past any duplicate's,
// and every out-of-order or duplicate arrival cancels the timer with an
// immediate ACK. Firing recovery off one would mean the receiver
// coalesced an ACK the sender's dupACK heuristics depend on (RFC 5681
// §4.2's prohibition on delaying out-of-order ACKs).
func (c *Conn) checkNotCoalesced(seg *Segment, path string) {
	if invOn && seg.Delayed {
		c.violateConn("coalesced-dupack", "%s triggered by a delayed-ACK-timer release (una=%d)", path, c.sndUna)
	}
}

// checkReceiver audits in-order byte accounting and the out-of-order
// buffer.
func (c *Conn) checkReceiver(where string) {
	if c.BytesRcvdApp != int64(c.rcvNxt) {
		c.violateConn("rcv-accounting", "%s: BytesRcvdApp=%d but rcvNxt=%d", where, c.BytesRcvdApp, c.rcvNxt)
	}
	sum := 0
	for seq, l := range c.ooo {
		if l <= 0 {
			c.violateConn("ooo-len", "%s: buffered segment at %d has len=%d", where, seq, l)
		}
		if seq <= c.rcvNxt {
			c.violateConn("ooo-below-window", "%s: buffered seq=%d at or below rcvNxt=%d", where, seq, c.rcvNxt)
		}
		sum += l
	}
	if sum != c.oooBytes {
		c.violateConn("ooo-bytes", "%s: buffered %d bytes but oooBytes=%d", where, sum, c.oooBytes)
	}
	if w := c.recvWindow(); w < 0 || w > c.cfg.RecvBuffer {
		c.violateConn("rwnd-range", "%s: advertised window %d outside [0,%d]", where, w, c.cfg.RecvBuffer)
	}
}

// checkRTT audits RFC 6298 clamping of the RTO estimator.
func checkRTT(c *Conn, e *rttEstimator, where string) {
	if e.rto < e.minRTO || e.rto > e.maxRTO {
		c.violateConn("rto-clamp", "%s: base rto=%v outside [%v,%v]", where, e.rto, e.minRTO, e.maxRTO)
	}
	if cur := e.current(); cur < e.rto && cur < e.maxRTO {
		c.violateConn("rto-backoff", "%s: backed-off rto=%v below base %v", where, cur, e.rto)
	}
	if e.valid && e.srtt <= 0 {
		c.violateConn("srtt-positive", "%s: srtt=%v with valid estimate", where, e.srtt)
	}
}

// checkBackoffMonotone asserts that one backoff step never shrinks the
// effective timeout (called from rttEstimator.backoff).
func checkBackoffMonotone(before, after time.Duration) {
	if after < before {
		violate(InvariantViolation{
			Rule:   "rto-backoff-monotone",
			Detail: fmt.Sprintf("backoff moved RTO %v -> %v", before, after),
		})
	}
}

// checkedCC wraps a CongestionControl and audits its outputs: the
// congestion-avoidance increment is non-negative and never exceeds
// slow-start pace (one segment per ACKed segment, RFC 5681 §3.1), and
// ssthresh after loss respects the two-segment floor.
type checkedCC struct {
	CongestionControl
}

func (cc checkedCC) OnAckCA(now sim.Time, cwnd float64, ackedSegs int, srtt time.Duration) float64 {
	inc := cc.CongestionControl.OnAckCA(now, cwnd, ackedSegs, srtt)
	if !(inc >= 0) || inc > float64(ackedSegs) {
		violate(InvariantViolation{
			Rule:   "cc-increment",
			At:     now,
			Detail: fmt.Sprintf("%s returned increment %v for %d acked segs (cwnd=%v)", cc.Name(), inc, ackedSegs, cwnd),
		})
	}
	return inc
}

func (cc checkedCC) SsthreshAfterLoss(cwnd float64) float64 {
	s := cc.CongestionControl.SsthreshAfterLoss(cwnd)
	if !(s >= 2) {
		violate(InvariantViolation{
			Rule:   "cc-ssthresh",
			Detail: fmt.Sprintf("%s returned ssthresh %v (cwnd=%v), below the 2-segment floor", cc.Name(), s, cwnd),
		})
	}
	return s
}
