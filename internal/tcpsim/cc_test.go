package tcpsim

import (
	"testing"
	"time"

	"spdier/internal/sim"
)

func TestNewCCVariants(t *testing.T) {
	if NewCC("reno").Name() != "reno" || NewCC("").Name() != "reno" {
		t.Fatal("reno construction")
	}
	if NewCC("cubic").Name() != "cubic" {
		t.Fatal("cubic construction")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown CC should panic")
		}
	}()
	NewCC("vegas")
}

func TestRenoCongestionAvoidanceRate(t *testing.T) {
	r := &Reno{}
	// One full window of ACKed segments grows cwnd by ~1.
	cwnd := 20.0
	var total float64
	for i := 0; i < 20; i++ {
		total += r.OnAckCA(0, cwnd, 1, 100*time.Millisecond)
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("Reno grew %v per window, want 1", total)
	}
}

func TestRenoSsthreshHalves(t *testing.T) {
	r := &Reno{}
	if got := r.SsthreshAfterLoss(40); got != 20 {
		t.Fatalf("ssthresh %v", got)
	}
	if got := r.SsthreshAfterLoss(2); got != 2 {
		t.Fatalf("ssthresh floor %v", got)
	}
}

func TestCubicSsthreshBeta(t *testing.T) {
	c := NewCubic()
	if got := c.SsthreshAfterLoss(100); got != 70 {
		t.Fatalf("cubic ssthresh %v, want 70", got)
	}
}

func TestCubicRegrowthTowardWmax(t *testing.T) {
	c := NewCubic()
	loop := sim.NewLoop()
	// Loss at cwnd 100 → Wmax 100, cwnd drops to 70.
	c.OnLoss(loop.Now(), 100)
	cwnd := 70.0
	// Simulate ACK clocking at ~10 ACKs per 100 ms RTT for 30 s.
	for step := 0; step < 300; step++ {
		now := sim.Time(step) * sim.Time(100*time.Millisecond)
		for ack := 0; ack < 10; ack++ {
			cwnd += c.OnAckCA(now, cwnd, 1, 100*time.Millisecond)
		}
	}
	if cwnd < 95 {
		t.Fatalf("cubic failed to regrow toward Wmax: %v", cwnd)
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	// The defining CUBIC shape ("first probes and then has an
	// exponential growth", §5.5.1): growth is slow while approaching
	// W_max and accelerates well past the epoch's inflection point K.
	c := NewCubic()
	c.OnLoss(0, 100)
	cwnd := 70.0
	k := c.k // filled on first OnAckCA; prime it
	_ = k
	var earlyGrowth, lateGrowth float64
	const step = 50 * time.Millisecond
	for i := 0; i < 600; i++ {
		now := sim.Time(i) * sim.Time(step)
		inc := c.OnAckCA(now, cwnd, 1, 100*time.Millisecond)
		cwnd += inc
		sec := now.Seconds()
		switch {
		case sec < 2:
			earlyGrowth += inc
		case sec >= 8 && sec < 10:
			lateGrowth += inc
		}
	}
	if lateGrowth < 2*earlyGrowth {
		t.Fatalf("no convex acceleration: early=%v late=%v", earlyGrowth, lateGrowth)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := NewCubic()
	c.OnLoss(0, 100)
	if c.wMax != 100 {
		t.Fatalf("wMax %v", c.wMax)
	}
	// Second loss below the previous Wmax shrinks the target.
	c.OnLoss(0, 80)
	want := 80 * (1 + 0.7) / 2
	if c.wMax != want {
		t.Fatalf("fast convergence wMax %v, want %v", c.wMax, want)
	}
}

func TestCubicGrowthCappedAtSlowStartPace(t *testing.T) {
	c := NewCubic()
	c.OnLoss(0, 400)
	// Far past K, the cubic term is enormous; per-ACK growth must still
	// be capped at 1 segment per ACKed segment.
	inc := c.OnAckCA(sim.Time(60*time.Second), 10, 1, 100*time.Millisecond)
	if inc > 1 {
		t.Fatalf("uncapped growth %v", inc)
	}
}

func TestCubicResetClearsEpoch(t *testing.T) {
	c := NewCubic()
	c.OnLoss(0, 100)
	c.OnAckCA(0, 70, 1, 100*time.Millisecond)
	if !c.hasEpoch {
		t.Fatal("epoch not started")
	}
	c.Reset()
	if c.hasEpoch || c.wMax != 0 {
		t.Fatal("reset incomplete")
	}
}
