package tcpsim

import (
	"time"

	"spdier/internal/sim"
)

// rackState implements time-based loss detection (RACK, RFC 8985
// simplified): track the send time of the most recently *delivered*
// segment; any outstanding segment sent more than a reordering window
// earlier than that delivery was passed over on the wire and is marked
// lost. This replaces counting duplicate ACKs: one SACK for a late
// segment can condemn an arbitrary number of earlier holes, paced by
// time rather than by the arrival of three separate dupACKs.
//
// Deterministic simplification: no reordering timer. A segment inside
// the reordering window is simply re-examined on the next delivery,
// which in a discrete-event world costs one extra ACK of latency at
// most and keeps the event stream identical across runs.
type rackState struct {
	// xmitTime/endSeq describe the most recently sent segment known
	// delivered (cumulatively acked or SACKed). Only original
	// transmissions update it: a retransmission's delivery time is
	// ambiguous under Karn's rule.
	xmitTime sim.Time
	endSeq   uint64
}

// rackReoWnd is the reordering tolerance: srtt/4 (the RFC 8985 default
// starting window), floored at the clock granularity so a zero-srtt
// estimator cannot condemn same-flight segments.
func (c *Conn) rackReoWnd() time.Duration {
	w := c.rtt.srtt / 4
	if w < clockGranularity {
		w = clockGranularity
	}
	return w
}

// rackSeen records the delivery of an original (never-retransmitted)
// segment with the given send time and end sequence.
func (c *Conn) rackSeen(sentAt sim.Time, endSeq uint64) {
	if sentAt > c.rack.xmitTime || (sentAt == c.rack.xmitTime && endSeq > c.rack.endSeq) {
		c.rack.xmitTime = sentAt
		c.rack.endSeq = endSeq
	}
}

// rackDetectLoss marks outstanding segments lost whose send time
// precedes the newest delivery by more than the reordering window.
// Returns whether any new mark was made.
func (c *Conn) rackDetectLoss() bool {
	if c.rack.xmitTime == 0 {
		return false
	}
	reo := c.rackReoWnd()
	marked := false
	fl := c.infl()
	for i := range fl {
		s := &fl[i]
		if s.sacked || s.lost || s.retx {
			continue
		}
		if c.rack.xmitTime.Sub(s.sentAt) > reo {
			s.lost = true
			s.lostBy = causeRACK
			marked = true
		}
	}
	return marked
}

// rackEnterRecovery opens a fast-recovery episode for RACK-marked
// losses from the open state: snapshot for undo, collapse ssthresh,
// and let the trySend recovery loop drain the marked backlog paced by
// the window — no triple-dupACK threshold involved.
func (c *Conn) rackEnterRecovery() {
	c.undoActive = true
	c.undoCwnd = c.cwnd
	c.undoSsthresh = c.ssthresh
	c.undoRetrans = 0
	c.undoEpisode = 0

	c.ssthresh = c.cc.SsthreshAfterLoss(c.cwnd)
	c.cc.OnLoss(c.loop.Now(), c.cwnd)
	c.recoverPoint = c.sndNxt
	c.caState = caRecovery
	c.cwnd = c.ssthresh
	c.abortTLP()
	c.armRTO()
}

// rackOnAck runs the RACK pipeline after SACK/cumulative processing of
// one ACK: advance the delivered-time watermark (done by the callers
// that still hold the acked records), detect losses, and open recovery
// if new marks were made outside an episode.
func (c *Conn) rackOnAck() {
	if !c.cfg.RACK {
		return
	}
	if c.rackDetectLoss() && c.caState == caOpen {
		c.rackEnterRecovery()
	}
}
