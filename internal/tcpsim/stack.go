package tcpsim

// Composable stack layers. The transport-interface refactor (ROADMAP
// item 1) decomposes an endpoint's behaviour into independently
// selectable layers — congestion control, loss recovery, idle policy,
// undo policy, instrumentation — that compose onto a Config instead of
// being hand-assigned flag by flag at every call site. The Config fields
// themselves are unchanged, so a composed stack is field-for-field (and
// therefore simulation-for-simulation) identical to the legacy direct
// assignments; the layering-equivalence tests in internal/experiment pin
// that equivalence trace by trace.

// RecoveryPolicy bundles the modern loss-recovery fix arms (PR 6) into
// one composable unit. The zero value is the paper-era stack.
type RecoveryPolicy struct {
	// TLP enables tail loss probes (see Config.TLP).
	TLP bool
	// RACK enables time-based loss detection (see Config.RACK).
	RACK bool
	// FRTO enables RFC 5682 spurious-timeout detection with Eifel undo
	// (see Config.FRTO).
	FRTO bool
}

// PaperEra is the recovery policy of the paper's 2013 proxy stack: no
// modern arms at all.
func PaperEra() RecoveryPolicy { return RecoveryPolicy{} }

// ModernLinux is the composition Linux actually ships today: all three
// arms stacked.
func ModernLinux() RecoveryPolicy { return RecoveryPolicy{TLP: true, RACK: true, FRTO: true} }

// Recovery reports the endpoint's recovery policy as one value.
func (c Config) Recovery() RecoveryPolicy {
	return RecoveryPolicy{TLP: c.TLP, RACK: c.RACK, FRTO: c.FRTO}
}

// WithRecovery returns a copy of the Config with the recovery arms set
// from the policy.
func (c Config) WithRecovery(p RecoveryPolicy) Config {
	c.TLP, c.RACK, c.FRTO = p.TLP, p.RACK, p.FRTO
	return c
}

// ccRegistry maps congestion-control names to constructors. The two
// built-in variants are registered at init; experiments and tests may
// register additional variants. Lookup only — the map is never ranged
// over, so registration order cannot perturb a simulation.
var ccRegistry = map[string]func() CongestionControl{}

// RegisterCC installs a congestion-control constructor under name.
// Registering an existing name replaces it (tests use this to wrap a
// variant); registration must happen before simulations start.
func RegisterCC(name string, ctor func() CongestionControl) {
	if ctor == nil {
		panic("tcpsim: RegisterCC with nil constructor")
	}
	ccRegistry[name] = ctor
}

func init() {
	RegisterCC("reno", func() CongestionControl { return &Reno{} })
	RegisterCC("cubic", func() CongestionControl { return NewCubic() })
}
