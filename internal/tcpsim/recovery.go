// Loss-recovery fix arms.
//
// The paper's central finding is a loss-recovery bug: a stale RTT
// estimate after RRC idle fires a spurious RTO, and SPDY's single
// multiplexed connection absorbs all of the damage. The repo's baseline
// carries the paper-era remedies (RTT-reset-after-idle, disabling the
// metrics cache); this file and its siblings add the fixes the real
// kernel shipped since, as three independently-toggleable arms:
//
//   - TLP  (this file):  a probe timeout ≈ 2·srtt that retransmits the
//     tail before the (longer) RTO can fire. During a radio promotion
//     the probe also pushes the re-armed RTO past the stall, so short
//     promotions no longer collapse the window at all.
//   - RACK (rack.go):    time-based loss marking — a segment is lost
//     when one sent reo_wnd later has been (s)acked — replacing pure
//     dupACK-count thresholds.
//   - F-RTO (frto.go):   after an RTO fires, the first ACK covering a
//     never-retransmitted segment proves the timeout spurious; the arm
//     performs the full Eifel undo (cwnd, ssthresh, backoff, CC state)
//     instead of the baseline's partial DSACK-gated undo.
//
// Composition order per ACK: SACK application → TLP episode resolution
// (inside cumulative-ACK processing, where the F-RTO verdict also
// fires) → RACK delivery-time advance and loss marking → transmission.
// Each arm only marks state or restores state; all retransmissions
// flow through the one recovery loop in trySend, which attributes each
// wire retransmission to exactly one cause.
package tcpsim

import (
	"time"

	"spdier/internal/sim"
)

// tlpState tracks one tail-loss-probe episode (Linux tcp_send_loss_probe).
type tlpState struct {
	timer sim.Timer
	// probing marks an open episode: a probe was sent and the episode
	// resolves when the cumulative ACK reaches highSeq.
	probing bool
	highSeq uint64 // sndNxt when the probe was sent
	sentAt  sim.Time
	// newData records that the probe carried new data (nothing was
	// retransmitted), so episode resolution implies no loss.
	newData bool
	// dsacked: the receiver reported the probe as a duplicate — the
	// original tail arrived, the episode was spurious.
	dsacked bool
}

// tlpPTO computes the probe timeout: 2·srtt, plus the peer's worst-case
// delayed-ACK wait when a lone segment is in flight (its ACK may
// legitimately sit out the delack timer), floored well above clock
// granularity. Callers arm it only when it beats the RTO.
func (c *Conn) tlpPTO() time.Duration {
	pto := 2 * c.rtt.srtt
	if c.pktsInFlight() == 1 {
		pto += c.cfg.DelayedAckTimeout
	}
	if pto < 10*time.Millisecond {
		pto = 10 * time.Millisecond
	}
	return pto
}

// maybeArmTLP (re)arms the probe timer after a transmission or an ACK,
// mirroring how the RTO is re-armed. The probe is only useful from the
// open state with a valid estimate, one probe per flight, and only when
// the PTO actually undercuts the effective RTO.
func (c *Conn) maybeArmTLP() {
	if !c.cfg.TLP {
		return
	}
	c.tlp.timer.Stop()
	if c.caState != caOpen || c.tlp.probing || !c.rtt.valid || len(c.infl()) == 0 {
		return
	}
	pto := c.tlpPTO()
	if pto >= c.rtt.current() {
		return // the RTO fires first; a probe adds nothing
	}
	c.tlp.timer = c.loop.After(pto, c.onTLPFn)
}

// onTLP fires the tail loss probe: transmit one new segment if the
// application has queued data (the probe may exceed cwnd by one
// segment), otherwise retransmit the highest-sequence unsacked segment.
// Either way the RTO is re-armed from now, which is what converts a
// tail-drop (or promotion-stall) timeout into probe-triggered recovery:
// the original flight's ACKs usually arrive before the pushed-out RTO.
func (c *Conn) onTLP() {
	if !c.cfg.TLP || c.caState != caOpen || c.tlp.probing || len(c.infl()) == 0 {
		return
	}
	now := c.loop.Now()
	if c.sendQueue > 0 && c.InFlightBytes()+c.cfg.MSS <= c.peerWnd {
		payload := c.cfg.MSS
		if payload > c.sendQueue {
			payload = c.sendQueue
		}
		seg := c.newSeg()
		seg.Flags = flagACK
		seg.Seq = c.sndNxt
		seg.Len = payload
		seg.Ack = c.rcvNxt
		seg.Wnd = c.recvWindow()
		seg.TSVal = now
		seg.TSEcr = c.tsRecent
		c.sndNxt += uint64(payload)
		c.sendQueue -= payload
		c.pushInflight(sentSeg{seq: seg.Seq, len: payload, sentAt: now})
		c.ackPiggybacked()
		c.transmit(seg)
		c.lastDataSend = now
		c.tlp.newData = true
		c.tlpNewData++
	} else {
		fl := c.infl()
		var probe *sentSeg
		for i := len(fl) - 1; i >= 0; i-- {
			if !fl[i].sacked {
				probe = &fl[i]
				break
			}
		}
		if probe == nil {
			return
		}
		probe.retx = true
		probe.sentAt = now
		c.retransmitSeg(probe)
		c.tlp.newData = false
	}
	c.TLPProbes++
	c.probe(EvTLPProbe)
	c.tlp.probing = true
	c.tlp.highSeq = c.sndNxt
	c.tlp.sentAt = now
	c.tlp.dsacked = false
	c.armRTO()
	if invOn {
		c.checkSender("onTLP")
	}
}

// resolveTLP closes an open probe episode once the cumulative ACK
// reaches the probe's high sequence. If the probe was a retransmission
// and nothing indicates the original arrived — no DSACK for the
// duplicate, and the ACK's timestamp echo stamps the probe itself —
// then the tail really was lost and the episode must not mask the
// congestion response the bypassed RTO would have taken.
func (c *Conn) resolveTLP(ack uint64, seg *Segment) {
	if !c.tlp.probing || ack < c.tlp.highSeq {
		return
	}
	c.tlp.probing = false
	if c.tlp.newData || c.tlp.dsacked {
		return
	}
	if seg.TSEcr > 0 && seg.TSEcr < c.tlp.sentAt {
		// Eifel check: the ACK was triggered by a segment sent before
		// the probe — the original tail arrived, nothing was lost.
		return
	}
	if c.caState != caOpen {
		// A loss episode opened since the probe (RACK or dupACKs saw
		// the same holes); it already took the congestion response.
		return
	}
	c.ssthresh = c.cc.SsthreshAfterLoss(c.cwnd)
	c.cc.OnLoss(c.loop.Now(), c.cwnd)
	if c.cwnd > c.ssthresh {
		c.cwnd = c.ssthresh
	}
}

// abortTLP cancels the probe timer and any open episode; conventional
// recovery (RTO or fast retransmit) owns the flight from here.
func (c *Conn) abortTLP() {
	if !c.cfg.TLP {
		return
	}
	c.tlp.timer.Stop()
	c.tlp.probing = false
}

// noteRetransmit attributes one wire retransmission of a recovery-loop
// repair to its cause tag and emits the matching probe event. The RTO
// head retransmit, NewReno partial-ACK repair and fast retransmit call
// their counters directly; this covers segments drained from the
// marked-lost backlog.
func (c *Conn) noteRetransmit(cause uint8) {
	if cause == causeRACK {
		c.RACKRetransmits++
		c.probe(EvRACKRetx)
		return
	}
	c.Retransmits++
	c.probe(EvRetransmit)
}
