package tcpsim

import (
	"math"
	"strings"
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
)

// captureViolations swaps the panic handler for a recorder for the
// duration of one test and restores panic-on-violation afterwards.
func captureViolations(t *testing.T) *[]InvariantViolation {
	t.Helper()
	var got []InvariantViolation
	EnableInvariants(func(v InvariantViolation) { got = append(got, v) })
	t.Cleanup(func() { EnableInvariants(nil) })
	return &got
}

func rules(vs []InvariantViolation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.Rule)
		b.WriteString(";")
	}
	return b.String()
}

// establishedPair returns a connected pair on a clean wired path.
func establishedPair(t *testing.T, seed uint64) (*testWorld, *Conn, *Conn) {
	t.Helper()
	w := newWorld(cleanPath(), seed)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "inv", "d")
	client.OnEstablished(func() { client.Write(10) })
	client.Connect()
	w.loop.RunUntilIdle()
	if !client.Established() || !server.Established() {
		t.Fatal("pair did not establish")
	}
	return w, client, server
}

// TestInvariantCatchesForgedAck injects the classic corruption the
// checker exists for — an acknowledgment of data that was never sent —
// and asserts it is reported rather than silently clamped.
func TestInvariantCatchesForgedAck(t *testing.T) {
	got := captureViolations(t)
	_, client, _ := establishedPair(t, 42)

	forged := &Segment{Flags: flagACK, Ack: client.sndNxt + 1<<20, Wnd: 64 << 10}
	client.handleSegment(forged)

	found := false
	for _, v := range *got {
		if v.Rule == "ack-unsent" {
			found = true
		}
	}
	if !found {
		t.Fatalf("forged ACK not caught; violations: %s", rules(*got))
	}
}

// TestInvariantCatchesCwndCorruption poisons the congestion window with
// NaN — the kind of bug a broken CC increment would introduce — and
// asserts the next ACK-path audit flags it.
func TestInvariantCatchesCwndCorruption(t *testing.T) {
	got := captureViolations(t)
	w, _, server := establishedPair(t, 7)

	server.cwnd = math.NaN()
	server.Write(30 * 1380)
	w.loop.RunUntilIdle()

	found := false
	for _, v := range *got {
		if v.Rule == "cwnd-range" {
			found = true
		}
	}
	if !found {
		t.Fatalf("NaN cwnd not caught; violations: %s", rules(*got))
	}
}

// TestInvariantCatchesInflightCorruption shifts an in-flight sequence
// number — breaking byte accounting — and asserts the contiguity audit
// reports it when the next ACK arrives.
func TestInvariantCatchesInflightCorruption(t *testing.T) {
	got := captureViolations(t)
	w, _, server := establishedPair(t, 13)

	server.Write(20 * 1380)
	// Let some segments get in flight, then corrupt one mid-window.
	w.loop.Run(w.loop.Now().Add(25 * time.Millisecond))
	if fl := server.infl(); len(fl) > 1 {
		fl[1].seq += 77
	} else {
		t.Fatal("no in-flight window to corrupt")
	}
	w.loop.RunUntilIdle()

	found := false
	for _, v := range *got {
		if v.Rule == "inflight-gap" || v.Rule == "inflight-tail" || v.Rule == "inflight-head" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inflight corruption not caught; violations: %s", rules(*got))
	}
}

// TestInvariantCatchesCoalescedDupAck forges the situation RFC 5681
// §4.2 forbids — a third duplicate ACK that the receiver's delayed-ACK
// timer released — and asserts the fast-retransmit entry point refuses
// to fire recovery off it. The real receiver can never produce this
// (arming the timer always advances the ACK value; out-of-order
// arrivals cancel it), so the forgery is the only way to prove the
// guard is wired in.
func TestInvariantCatchesCoalescedDupAck(t *testing.T) {
	got := captureViolations(t)
	w, _, server := establishedPair(t, 21)

	server.Write(20 * 1380)
	w.loop.Run(w.loop.Now().Add(25 * time.Millisecond))
	if len(server.infl()) == 0 {
		t.Fatal("no flight to forge duplicates against")
	}
	dup := func(delayed bool) *Segment {
		return &Segment{
			Flags: flagACK, Ack: server.sndUna, Wnd: 1 << 20,
			TSVal: w.loop.Now(), TSEcr: server.tsRecent, Delayed: delayed,
		}
	}
	server.receiveAck(dup(false))
	server.receiveAck(dup(false))
	server.receiveAck(dup(true)) // the firing duplicate claims timer origin

	found := false
	for _, v := range *got {
		if v.Rule == "coalesced-dupack" {
			found = true
		}
	}
	if !found {
		t.Fatalf("coalesced firing dupACK not caught; violations: %s", rules(*got))
	}
}

// TestInvariantsSilentOnImpairedTransfer runs a hostile link — bursty
// loss, reordering, duplication, a shallow queue — and asserts the
// checker stays silent: impairments must surface as protocol events
// (retransmits, DSACKs), never as state corruption.
func TestInvariantsSilentOnImpairedTransfer(t *testing.T) {
	if !InvariantsEnabled() {
		t.Fatal("invariants not armed by TestMain")
	}
	loop := sim.NewLoop()
	cfg := netem.PathConfig{
		Up: netem.LinkConfig{
			BandwidthBPS: 2_000_000, Delay: 30 * time.Millisecond,
			Jitter: 10 * time.Millisecond, QueueBytes: 32 << 10, LossRate: 0.01,
		},
		Down: netem.LinkConfig{
			BandwidthBPS: 4_000_000, Delay: 30 * time.Millisecond,
			Jitter: 10 * time.Millisecond, QueueBytes: 16 << 10, LossRate: 0.01,
		},
	}.WithImpairments(netem.Impairments{
		GEGoodToBad: 0.01, GEBadToGood: 0.3, GELossBad: 0.5,
		ReorderProb: 0.02, ReorderDelay: 15 * time.Millisecond,
		DupProb:     0.02,
		ExtraJitter: 5 * time.Millisecond,
	})
	path := netem.NewPath(loop, cfg, sim.NewRNG(99), nil)
	nw := NewNetwork(loop, path)
	client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "imp", "d")
	done := false
	var asm StreamAssembler
	const total = 300 << 10
	client.OnDeliver(asm.Deliver)
	asm.Expect(total, func() { done = true })
	client.OnEstablished(func() { client.Write(200) })
	server.OnDeliver(func(int) { server.Write(total) })
	client.Connect()
	loop.RunUntilIdle()
	if !done {
		t.Fatal("impaired transfer did not complete")
	}
	// The impairments must actually have fired for this to mean much.
	down := path.BtoA.Stats()
	if down.DroppedBurst == 0 && down.Reordered == 0 && down.Duplicated == 0 {
		t.Fatalf("impairments inert: %+v", down)
	}
}

// TestSegmentPoolNoLeakUnderDropsAndImpairments is the pool-accounting
// audit: every segment handed out by the pool must retire exactly once,
// across queue-overflow drops, random and burst loss, duplication
// (which mints pool copies) and reordering. A quiesced network with a
// nonzero live count is a leak; a negative count is a double free.
func TestSegmentPoolNoLeakUnderDropsAndImpairments(t *testing.T) {
	for _, pooling := range []bool{true, false} {
		SetSegmentPooling(pooling)
		loop := sim.NewLoop()
		cfg := netem.PathConfig{
			Up: netem.LinkConfig{
				BandwidthBPS: 2_000_000, Delay: 20 * time.Millisecond,
				QueueBytes: 8 << 10, LossRate: 0.02,
			},
			Down: netem.LinkConfig{
				// Queue shallower than one IW10 burst: guarantees
				// overflow drops on the send path.
				BandwidthBPS: 3_000_000, Delay: 20 * time.Millisecond,
				QueueBytes: 6 << 10, LossRate: 0.02,
			},
		}.WithImpairments(netem.Impairments{
			GEGoodToBad: 0.02, GEBadToGood: 0.25, GELossBad: 0.5,
			ReorderProb: 0.03, DupProb: 0.05,
		})
		path := netem.NewPath(loop, cfg, sim.NewRNG(5), nil)
		nw := NewNetwork(loop, path)
		client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "leak", "d")
		client.OnDeliver(func(int) {})
		client.OnEstablished(func() { client.Write(500) })
		server.OnDeliver(func(int) { server.Write(150 << 10) })
		client.Connect()
		loop.RunUntilIdle()

		down := path.BtoA.Stats()
		if down.DroppedQueue == 0 {
			t.Fatalf("pooling=%v: no queue drops; the leak path was not exercised (%+v)", pooling, down)
		}
		if down.Duplicated == 0 {
			t.Fatalf("pooling=%v: no duplicates; the pool-copy path was not exercised", pooling)
		}
		if live := nw.LiveSegments(); live != 0 {
			t.Fatalf("pooling=%v: %d segments leaked (negative = double free)", pooling, live)
		}
	}
	SetSegmentPooling(true)
}
