package tcpsim

import (
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
)

// TestRegressionHalfOpenHandshake reproduces a deadlock found by the
// transfer property test: the client's final handshake ACK is lost, the
// application only ever sends server→client, and without SYN-ACK
// retransmission (and duplicate-SYN-ACK re-ACKing) the server waits in
// SYN_RCVD forever while its send queue grows.
func TestRegressionHalfOpenHandshake(t *testing.T) {
	seed := uint64(13675054744402028457)
	loop := sim.NewLoop()
	cfg := netem.PathConfig{
		Up: netem.LinkConfig{
			BandwidthBPS: 2_000_000, Delay: 50 * time.Millisecond,
			Jitter: 10 * time.Millisecond, QueueBytes: 128 << 10, LossRate: 0.03 / 4,
		},
		Down: netem.LinkConfig{
			BandwidthBPS: 8_000_000, Delay: 50 * time.Millisecond,
			Jitter: 10 * time.Millisecond, QueueBytes: 20_000, LossRate: 0.03,
		},
	}
	path := netem.NewPath(loop, cfg, sim.NewRNG(seed), nil)
	nw := NewNetwork(loop, path)
	client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "prop", "d")
	total := 0
	client.OnEstablished(func() {
		rng := sim.NewRNG(seed ^ 0xfeed)
		at := loop.Now()
		for i := 0; i < 2; i++ {
			n := 10_000 + rng.Intn(150_000)
			total += n
			at = at.Add(time.Duration(rng.Intn(8000)) * time.Millisecond)
			loop.At(at, func() { server.Write(n) })
		}
	})
	client.Connect()
	loop.Run(10 * sim.Minute)
	if int(client.BytesRcvdApp) != total {
		t.Fatalf("half-open handshake deadlock: delivered %d of %d (server %v)",
			client.BytesRcvdApp, total, server)
	}
}
