package tcpsim

import (
	"testing"
	"testing/quick"
	"time"

	"spdier/internal/netem"
	"spdier/internal/rrc"
	"spdier/internal/sim"
)

// TestPropertyTransferAlwaysCompletes is the failure-injection invariant:
// for any seed, loss rate up to 5%, shallow or deep queues, radio or no
// radio, and any write pattern, every byte written is delivered exactly
// once, in order, within a bounded simulated time, and the sender drains.
func TestPropertyTransferAlwaysCompletes(t *testing.T) {
	check := func(seed uint64, lossPct, queueSel, radioSel, writeSel uint8) bool {
		loop := sim.NewLoop()
		var radio *rrc.Machine
		if radioSel%2 == 1 {
			radio = rrc.NewMachine(loop, rrc.Profile3G())
		}
		loss := float64(lossPct%6) / 100 // 0–5%
		queue := []int{20_000, 64_000, 512_000}[int(queueSel)%3]
		cfg := netem.PathConfig{
			Up: netem.LinkConfig{
				BandwidthBPS: 2_000_000, Delay: 50 * time.Millisecond,
				Jitter: 10 * time.Millisecond, QueueBytes: 128 << 10, LossRate: loss / 4,
			},
			Down: netem.LinkConfig{
				BandwidthBPS: 8_000_000, Delay: 50 * time.Millisecond,
				Jitter: 10 * time.Millisecond, QueueBytes: queue, LossRate: loss,
			},
		}
		path := netem.NewPath(loop, cfg, sim.NewRNG(seed), radio)
		nw := NewNetwork(loop, path)
		client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "prop", "d")

		total := 0
		writes := 1 + int(writeSel%5)
		client.OnDeliver(func(n int) {
			if n <= 0 {
				t.Fatalf("non-positive delivery %d", n)
			}
		})
		client.OnEstablished(func() {
			rng := sim.NewRNG(seed ^ 0xfeed)
			at := loop.Now()
			for i := 0; i < writes; i++ {
				n := 10_000 + rng.Intn(150_000)
				total += n
				// Spread writes out, some across idle gaps.
				at = at.Add(time.Duration(rng.Intn(8000)) * time.Millisecond)
				loop.At(at, func() { server.Write(n) })
			}
		})
		client.Connect()
		loop.Run(10 * sim.Minute)

		if int(client.BytesRcvdApp) != total {
			t.Logf("seed=%d loss=%.2f queue=%d radio=%v writes=%d: delivered %d of %d",
				seed, loss, queue, radio != nil, writes, client.BytesRcvdApp, total)
			return false
		}
		if server.BufferedBytes() != 0 || server.InFlightBytes() != 0 {
			t.Logf("sender not drained: q=%d inflight=%d", server.BufferedBytes(), server.InFlightBytes())
			return false
		}
		// cwnd and ssthresh must stay in sane ranges.
		if server.Cwnd() < 1 || server.Ssthresh() < 2 {
			t.Logf("windows insane: cwnd=%v ssthresh=%v", server.Cwnd(), server.Ssthresh())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBidirectionalUnderLoss: both directions transfer
// concurrently over a lossy path; both complete exactly.
func TestPropertyBidirectionalUnderLoss(t *testing.T) {
	check := func(seed uint64) bool {
		loop := sim.NewLoop()
		cfg := netem.PathConfig{
			Up:   netem.LinkConfig{BandwidthBPS: 3_000_000, Delay: 40 * time.Millisecond, QueueBytes: 64 << 10, LossRate: 0.01},
			Down: netem.LinkConfig{BandwidthBPS: 6_000_000, Delay: 40 * time.Millisecond, QueueBytes: 64 << 10, LossRate: 0.01},
		}
		path := netem.NewPath(loop, cfg, sim.NewRNG(seed), nil)
		nw := NewNetwork(loop, path)
		client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "bidi", "d")
		client.OnEstablished(func() {
			client.Write(120_000)
			server.Write(360_000)
		})
		client.Connect()
		loop.Run(5 * sim.Minute)
		return client.BytesRcvdApp == 360_000 && server.BytesRcvdApp == 120_000
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySpuriousDetectionConsistency: on a lossless gated path,
// every RTO retransmission is eventually reported spurious by the
// receiver (nothing was truly lost), and undo count never exceeds the
// retransmission count.
func TestPropertySpuriousDetectionConsistency(t *testing.T) {
	check := func(seed uint64, idleSel uint8) bool {
		loop := sim.NewLoop()
		radio := rrc.NewMachine(loop, rrc.Profile3G())
		pc := netem.Profile3G()
		pc.Up.LossRate, pc.Down.LossRate = 0, 0
		path := netem.NewPath(loop, pc, sim.NewRNG(seed), radio)
		nw := NewNetwork(loop, path)
		client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "spur", "d")
		client.OnDeliver(func(int) {})
		client.OnEstablished(func() { server.Write(100_000) })
		client.Connect()
		loop.Run(20 * sim.Second)
		idle := time.Duration(18+int(idleSel%20)) * time.Second
		at := loop.Now().Add(idle)
		loop.At(at, func() { server.Write(100_000) })
		loop.Run(at.Add(40 * time.Second))

		if client.BytesRcvdApp != 200_000 {
			return false
		}
		totalRetx := server.Retransmits + server.FastRetransmits
		if client.SpuriousArrivals > totalRetx {
			t.Logf("more spurious arrivals (%d) than retransmissions (%d)",
				client.SpuriousArrivals, totalRetx)
			return false
		}
		if server.Undos > totalRetx {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
