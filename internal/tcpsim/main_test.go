package tcpsim

import (
	"os"
	"testing"
)

// TestMain arms the protocol invariant checker for the entire package
// suite: every existing test — handshakes, loss recovery, F-RTO, undo,
// SACK, idle restarts, the property-based sweeps — now runs with
// sequence/byte accounting, cwnd/ssthresh legality, RTO monotonicity
// and ack-validity audited at every commit point, and panics on the
// first violation.
func TestMain(m *testing.M) {
	EnableInvariants(nil)
	os.Exit(m.Run())
}
