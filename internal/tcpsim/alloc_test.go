package tcpsim

import (
	"testing"

	"spdier/internal/sim"
)

// TestSegmentRoundTripAllocations is the tcpsim hot-path guardrail: once
// the segment pool, inflight deque and event-slot pool are warm, a full
// one-MSS write→serialize→deliver→delayed-ack round trip must cost at
// most 2 allocations (budget for map/rare-path noise; the steady path
// itself is allocation-free).
func TestSegmentRoundTripAllocations(t *testing.T) {
	loop := sim.NewLoop()
	nw := wiredNet(loop, 1)
	client, server := nw.NewConnPair(DefaultConfig(), DefaultConfig(), "a", "client")

	client.OnDeliver(func(int) {})
	client.OnEstablished(func() {})
	client.Connect()
	loop.RunUntilIdle()
	if !client.Established() || !server.Established() {
		t.Fatal("handshake did not complete")
	}

	// Warm every pool: segments, event slots, inflight deque, ooo map.
	for i := 0; i < 200; i++ {
		server.Write(DefaultConfig().MSS)
		loop.RunUntilIdle()
	}

	mss := DefaultConfig().MSS
	allocs := testing.AllocsPerRun(500, func() {
		server.Write(mss)
		loop.RunUntilIdle()
	})
	if allocs > 2 {
		t.Fatalf("segment round trip allocates %.1f per run, want <= 2", allocs)
	}
}

// TestSegmentPoolingToggle proves recycled segments cannot leak state: a
// lossy, radio-gated transfer produces identical counters and probe
// traces with pooling on and off.
func TestSegmentPoolingToggle(t *testing.T) {
	type outcome struct {
		delivered  int
		retransmit int
		fastRetx   int
		spurious   int
		samples    int
		end        sim.Time
	}
	run := func() outcome {
		loop := sim.NewLoop()
		nw := wiredNet(loop, 7)
		rec := NewRecorder()
		scfg := DefaultConfig()
		scfg.Probe = rec
		client, server := nw.NewConnPair(DefaultConfig(), scfg, "p", "client")
		got := 0
		client.OnDeliver(func(n int) { got += n })
		client.OnEstablished(func() { server.Write(400_000) })
		client.Connect()
		loop.Run(60 * sim.Second)
		return outcome{
			delivered:  got,
			retransmit: server.Retransmits,
			fastRetx:   server.FastRetransmits,
			spurious:   client.SpuriousArrivals,
			samples:    rec.Len(),
			end:        loop.Now(),
		}
	}
	defer SetSegmentPooling(true)
	SetSegmentPooling(true)
	pooled := run()
	SetSegmentPooling(false)
	unpooled := run()
	if pooled != unpooled {
		t.Fatalf("pooled %+v != unpooled %+v", pooled, unpooled)
	}
}
