package tcpsim

import (
	"testing"
	"time"

	"spdier/internal/netem"
	"spdier/internal/rrc"
	"spdier/internal/sim"
)

// tailDropWorld runs a warm-up transfer to establish an RTT estimate,
// then a late burst sized so the shallow downlink queue drops exactly
// the burst's tail — the pathology TLP exists for: no following
// segments means no duplicate ACKs, so the paper-era stack can only
// wait out the RTO. Returns the sender and the completion time.
func tailDropWorld(t *testing.T, arm func(*Config), burst int) (*Conn, sim.Time) {
	t.Helper()
	cfg := cleanPath()
	cfg.Down.QueueBytes = 12_000 // ≈8 segments of headroom
	w := newWorld(cfg, 11)
	scfg := DefaultConfig()
	if arm != nil {
		arm(&scfg)
	}
	client, server := w.net.NewConnPair(DefaultConfig(), scfg, "td", "d")
	total := 5_000 + burst
	var doneAt sim.Time
	client.OnDeliver(func(int) {
		if client.BytesRcvdApp == int64(total) {
			doneAt = w.loop.Now()
		}
	})
	client.OnEstablished(func() { server.Write(5_000) })
	client.Connect()
	w.loop.Run(2 * sim.Second)
	if client.BytesRcvdApp != 5_000 {
		t.Fatalf("warmup incomplete: %d", client.BytesRcvdApp)
	}
	// Short pause (below the idle-restart threshold), then the burst.
	at := w.loop.Now().Add(50 * time.Millisecond)
	w.loop.At(at, func() { server.Write(burst) })
	w.loop.Run(sim.Forever)
	if client.BytesRcvdApp != int64(total) {
		t.Fatalf("burst incomplete: %d", client.BytesRcvdApp)
	}
	return server, doneAt
}

// TestTLPConvertsTailDropToProbeRecovery: a pure tail drop leaves the
// baseline stack with nothing but the RTO — window collapse to 1,
// exponential backoff, go-back-N bookkeeping. The TLP arm retransmits
// the tail after ≈2·srtt instead: the timeout never fires, the
// retransmission is attributed to the probe, and the congestion
// response is the gentler ssthresh halving of an ordinary loss event.
func TestTLPConvertsTailDropToProbeRecovery(t *testing.T) {
	const burst = 9 * 1380 // one segment past the queue's headroom

	base, baseEnd := tailDropWorld(t, nil, burst)
	if base.Retransmits == 0 {
		t.Fatalf("baseline tail drop should only be repairable by RTO (retx=%d fast=%d)",
			base.Retransmits, base.FastRetransmits)
	}

	tlp, tlpEnd := tailDropWorld(t, func(c *Config) { c.TLP = true }, burst)
	t.Logf("baseline: end=%v retx=%d fast=%d | tlp: end=%v retx=%d fast=%d probes=%d",
		baseEnd, base.Retransmits, base.FastRetransmits, tlpEnd, tlp.Retransmits, tlp.FastRetransmits, tlp.TLPProbes)
	if tlp.TLPProbes == 0 {
		t.Fatal("TLP arm never fired a probe on a pure tail drop")
	}
	if tlp.Retransmits != 0 {
		t.Fatalf("TLP arm still took %d RTO retransmissions", tlp.Retransmits)
	}
	if tlpEnd >= baseEnd {
		t.Fatalf("probe recovery (%v) not faster than RTO recovery (%v)", tlpEnd, baseEnd)
	}
}

// TestRACKCondemnsHolesBelowSackedProbe: drop the last TWO segments of
// a burst. The TLP probe retransmits only the highest one; its SACK
// cannot raise three duplicate ACKs, so without time-based loss
// detection the remaining hole still waits out the RTO. With RACK the
// SACKed probe advances the delivery watermark (timestamp-disambiguated
// per RFC 8985) and condemns the older hole within a reordering window.
func TestRACKCondemnsHolesBelowSackedProbe(t *testing.T) {
	const burst = 10 * 1380 // two segments past the queue's headroom

	tlpOnly, tlpEnd := tailDropWorld(t, func(c *Config) { c.TLP = true }, burst)
	both, bothEnd := tailDropWorld(t, func(c *Config) { c.TLP, c.RACK = true, true }, burst)
	t.Logf("tlp-only: end=%v retx=%d fast=%d probes=%d | tlp+rack: end=%v retx=%d fast=%d rack=%d probes=%d",
		tlpEnd, tlpOnly.Retransmits, tlpOnly.FastRetransmits, tlpOnly.TLPProbes,
		bothEnd, both.Retransmits, both.FastRetransmits, both.RACKRetransmits, both.TLPProbes)
	if both.TLPProbes == 0 || both.RACKRetransmits == 0 {
		t.Fatalf("expected probe+RACK repair, got probes=%d rack=%d", both.TLPProbes, both.RACKRetransmits)
	}
	if both.Retransmits != 0 {
		t.Fatalf("TLP+RACK still took %d RTO retransmissions", both.Retransmits)
	}
	if bothEnd >= tlpEnd {
		t.Fatalf("RACK repair (%v) not faster than TLP-only (%v)", bothEnd, tlpEnd)
	}
}

// promotionScenario reproduces the paper's §6 idle pathology without
// the §6.2.1 RTT-reset fix: a transfer, a long idle that sends the 3G
// radio to sleep, then a burst whose first flight sits behind the 2 s
// promotion while the stale ~600 ms RTO fires spuriously.
func promotionScenario(t *testing.T, arm func(*Config)) (server, client *Conn, rtoAfter time.Duration) {
	t.Helper()
	loop := sim.NewLoop()
	radio := rrc.NewMachine(loop, rrc.Profile3G())
	pc := netem.Profile3G()
	pc.Up.LossRate, pc.Down.LossRate = 0, 0
	path := netem.NewPath(loop, pc, sim.NewRNG(2), radio)
	nw := NewNetwork(loop, path)
	scfg := DefaultConfig()
	if arm != nil {
		arm(&scfg)
	}
	c, s := nw.NewConnPair(DefaultConfig(), scfg, "pr", "d")
	c.OnDeliver(func(int) {})
	c.OnEstablished(func() { s.Write(200_000) })
	c.Connect()
	loop.Run(30 * sim.Second)
	at := loop.Now().Add(25 * time.Second)
	loop.At(at, func() { s.Write(100_000) })
	// Probe the effective RTO shortly after the post-promotion flight is
	// acknowledged, while backoff damage (if unrepaired) is still visible.
	var rto time.Duration
	loop.At(at.Add(4*time.Second), func() { rto = s.RTO() })
	loop.Run(at.Add(30 * time.Second))
	if c.BytesRcvdApp != 300_000 {
		t.Fatalf("transfer incomplete: %d", c.BytesRcvdApp)
	}
	return s, c, rto
}

// TestFRTOUndoRepairsPromotionTimeout is the tentpole's metamorphic
// oracle: in the paper's idle scenario (no RTT-reset fix), the F-RTO
// arm must detect the spurious timeout from the first post-RTO ACK and
// repair ALL of the damage in-protocol — ssthresh and cwnd restored,
// exponential backoff cleared — and the spurious retransmission count
// seen by the receiver stays at the irreducible floor (the head
// retransmissions the firing timeout itself sent, ~0 go-back-N tail).
func TestFRTOUndoRepairsPromotionTimeout(t *testing.T) {
	base, baseClient, baseRTO := promotionScenario(t, nil)
	frto, frtoClient, frtoRTO := promotionScenario(t, func(c *Config) { c.FRTO = true })
	t.Logf("baseline: ssthresh=%v undos=%d spurious=%d retx=%d rto=%v",
		base.Ssthresh(), base.Undos, baseClient.SpuriousArrivals, base.Retransmits, baseRTO)
	t.Logf("frto:     ssthresh=%v frtoUndos=%d spurious=%d retx=%d rto=%v",
		frto.Ssthresh(), frto.FrtoUndos, frtoClient.SpuriousArrivals, frto.Retransmits, frtoRTO)

	if frto.FrtoUndos == 0 {
		t.Fatal("F-RTO arm never detected the spurious promotion timeout")
	}
	if frto.Ssthresh() < base.Ssthresh() {
		t.Fatalf("F-RTO left ssthresh lower than baseline: %v < %v", frto.Ssthresh(), base.Ssthresh())
	}
	// Spurious retransmissions: at most the head retransmissions of the
	// (few, backoff-spaced) timer firings during the 2 s stall; the
	// go-back-N tail must be fully suppressed.
	if frtoClient.SpuriousArrivals > 3 {
		t.Fatalf("%d spurious arrivals with F-RTO on; go-back-N not suppressed", frtoClient.SpuriousArrivals)
	}
	if frtoClient.SpuriousArrivals > baseClient.SpuriousArrivals {
		t.Fatalf("F-RTO increased spurious retransmissions: %d > %d",
			frtoClient.SpuriousArrivals, baseClient.SpuriousArrivals)
	}
	// The Eifel undo must also clear the exponential backoff: shortly
	// after recovery the effective RTO reflects the path, not the stall.
	if frtoRTO > baseRTO {
		t.Fatalf("F-RTO left RTO backoff in place: %v > baseline %v", frtoRTO, baseRTO)
	}

	// Sharper separation: the baseline's partial undo leans on receiver
	// DSACKs, but F-RTO's verdict comes from the first post-RTO cumulative
	// ACK alone. With DSACK undo disabled (the paper-era ablation) the
	// baseline keeps the ssthresh collapse for good, while F-RTO still
	// repairs it.
	noUndo, _, _ := promotionScenario(t, func(c *Config) { c.DisableUndo = true })
	frtoNoUndo, _, _ := promotionScenario(t, func(c *Config) { c.DisableUndo, c.FRTO = true, true })
	t.Logf("disable-undo: baseline ssthresh=%v | frto ssthresh=%v frtoUndos=%d",
		noUndo.Ssthresh(), frtoNoUndo.Ssthresh(), frtoNoUndo.FrtoUndos)
	if frtoNoUndo.FrtoUndos == 0 {
		t.Fatal("F-RTO undo should not depend on DSACK undo machinery")
	}
	if frtoNoUndo.Ssthresh() <= noUndo.Ssthresh() {
		t.Fatalf("F-RTO did not repair the collapse DSACK undo cannot: %v <= %v",
			frtoNoUndo.Ssthresh(), noUndo.Ssthresh())
	}
}

// TestStackedArmsHoldInvariantsUnderImpairment drives all three arms
// together through a lossy, duplicating, jittery path with the
// invariant checker armed (TestMain), exercising every recovery
// interleaving: probes colliding with RTOs, RACK marks inside F-RTO
// episodes, undo vs DSACK accounting. Completion plus zero violations
// is the assertion; the checker panics on any accounting drift.
func TestStackedArmsHoldInvariantsUnderImpairment(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23, 41} {
		cfg := cleanPath()
		cfg.Down.QueueBytes = 30_000
		cfg.Up.LossRate, cfg.Down.LossRate = 0.01, 0.02
		w := newWorld(cfg, seed)
		scfg := DefaultConfig()
		scfg.TLP, scfg.RACK, scfg.FRTO = true, true, true
		ccfg := DefaultConfig()
		ccfg.TLP, ccfg.RACK, ccfg.FRTO = true, true, true
		client, server := w.net.NewConnPair(ccfg, scfg, "st", "d")
		client.OnDeliver(func(int) {})
		server.OnDeliver(func(int) {})
		client.OnEstablished(func() {
			server.Write(400_000)
			client.Write(60_000)
		})
		client.Connect()
		w.loop.Run(sim.Forever)
		if client.BytesRcvdApp != 400_000 || server.BytesRcvdApp != 60_000 {
			t.Fatalf("seed %d: incomplete transfer: down=%d up=%d", seed, client.BytesRcvdApp, server.BytesRcvdApp)
		}
		if w.net.LiveSegments() != 0 {
			t.Fatalf("seed %d: %d segments leaked", seed, w.net.LiveSegments())
		}
	}
}

// TestRetransmitAttributionExactlyOnce: every wire retransmission is
// counted under exactly one cause, the probe recorder's per-event
// counts agree with the connection counters, and the rare-only
// (bounded-memory) recorder retains the same totals — recovery events
// are never downsampled.
func TestRetransmitAttributionExactlyOnce(t *testing.T) {
	run := func(rec *Recorder) (*Conn, *Conn) {
		cfg := cleanPath()
		cfg.Down.QueueBytes = 30_000
		cfg.Up.LossRate, cfg.Down.LossRate = 0.01, 0.02
		w := newWorld(cfg, 23)
		scfg := DefaultConfig()
		scfg.TLP, scfg.RACK, scfg.FRTO = true, true, true
		scfg.Probe = rec
		client, server := w.net.NewConnPair(DefaultConfig(), scfg, "at", "d")
		client.OnDeliver(func(int) {})
		client.OnEstablished(func() { server.Write(400_000) })
		client.Connect()
		w.loop.Run(sim.Forever)
		if client.BytesRcvdApp != 400_000 {
			t.Fatalf("incomplete: %d", client.BytesRcvdApp)
		}
		return server, client
	}

	full, lean := NewRecorder(), NewRecorderRareOnly()
	server, _ := run(full)
	leanServer, _ := run(lean)

	t.Logf("retx=%d fast=%d rack=%d probes=%d newdata=%d wire=%d",
		server.Retransmits, server.FastRetransmits, server.RACKRetransmits,
		server.TLPProbes, server.tlpNewData, server.retxWire)

	// Deterministic replay: both runs must agree exactly.
	if leanServer.retxWire != server.retxWire {
		t.Fatalf("replay diverged: wire retx %d vs %d", leanServer.retxWire, server.retxWire)
	}
	// Exactly-once attribution (also enforced continuously by the
	// invariant checker at every commit point).
	attributed := server.Retransmits + server.FastRetransmits + server.RACKRetransmits +
		(server.TLPProbes - server.tlpNewData)
	if server.retxWire != attributed {
		t.Fatalf("wire retx %d, attributed %d", server.retxWire, attributed)
	}
	// Recorder counts mirror the counters, per cause.
	for _, rec := range []*Recorder{full, lean} {
		if got := rec.Count(EvRetransmit); got != server.Retransmits {
			t.Errorf("recorder EvRetransmit=%d, conn=%d", got, server.Retransmits)
		}
		if got := rec.Count(EvFastRetx); got != server.FastRetransmits {
			t.Errorf("recorder EvFastRetx=%d, conn=%d", got, server.FastRetransmits)
		}
		if got := rec.Count(EvRACKRetx); got != server.RACKRetransmits {
			t.Errorf("recorder EvRACKRetx=%d, conn=%d", got, server.RACKRetransmits)
		}
		if got := rec.Count(EvTLPProbe); got != server.TLPProbes {
			t.Errorf("recorder EvTLPProbe=%d, conn=%d", got, server.TLPProbes)
		}
		if got := rec.Count(EvFRTOUndo); got != server.FrtoUndos {
			t.Errorf("recorder EvFRTOUndo=%d, conn=%d", got, server.FrtoUndos)
		}
	}
	if full.Retransmissions() != lean.Retransmissions() {
		t.Fatalf("rare-only recorder lost recovery events: %d vs %d",
			lean.Retransmissions(), full.Retransmissions())
	}
}

// TestArmsOffLeavesBaselineUntouched: with every arm disabled the new
// state must stay inert — no probes, no RACK marks, no F-RTO undos, no
// new counters — so that existing experiments remain byte-identical
// (the golden report tests pin this end to end; this pins the
// connection-level mechanism).
func TestArmsOffLeavesBaselineUntouched(t *testing.T) {
	server, _ := tailDropWorld(t, nil, 9*1380)
	if server.TLPProbes != 0 || server.RACKRetransmits != 0 || server.FrtoUndos != 0 || server.tlpNewData != 0 {
		t.Fatalf("fix-arm counters moved with arms off: tlp=%d rack=%d frto=%d",
			server.TLPProbes, server.RACKRetransmits, server.FrtoUndos)
	}
	if server.tlp.probing || server.tlp.timer.Pending() {
		t.Fatal("TLP state active with the arm off")
	}
	if server.rack.xmitTime != 0 {
		t.Fatal("RACK watermark advanced with the arm off")
	}
}
