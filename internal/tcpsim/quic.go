package tcpsim

import (
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
)

// QUIC-style transport model. This is not QUIC-the-wire-protocol; it is
// the three architectural properties of QUIC that answer the paper's
// pathology, modeled at the same fidelity as the TCP Conn beside it:
//
//  1. Stream-level loss isolation: packets carry (stream, offset) data
//     and the receiver reassembles per stream, so a retransmission on
//     one stream never head-of-line-blocks delivery on another — the
//     transport-level contrast to SPDY-over-TCP, where one lost segment
//     stalls every multiplexed resource behind it.
//  2. Connection-level loss recovery decoupled from streams: packet
//     numbers are never reused (retransmissions get fresh PNs), so RTT
//     samples are never ambiguous (Karn's rule dissolves) and spurious
//     recovery is detected exactly — an original packet acknowledged
//     after its data was re-sent *proves* the loss declaration wrong.
//  3. 0-RTT resumption: a destination with cached metrics skips the
//     handshake round trips entirely, the QUIC answer to §6.2.4's
//     "cache more aggressively" direction.
//
// The sender reuses rttEstimator and CongestionControl verbatim — the
// composability the transport refactor is for: loss recovery and window
// growth are layers, not properties of TCP.

// quicHeaderBytes models the short-header QUIC packet overhead
// (flags + CID + PN) plus the UDP/IP headers — comparable to TCP's 40
// so protocol deltas come from behaviour, not header-size accounting.
const quicHeaderBytes = 38

// quicPacketThreshold is the reordering threshold (RFC 9002 §6.1.1):
// a packet is declared lost when one sent this many PNs later has been
// acknowledged. Matches the TCP stack's three-dupACK fast retransmit.
const quicPacketThreshold = 3

// quicInitialPad models the anti-amplification padding of Initial
// flights (RFC 9000 §14.1).
const quicInitialPad = 1200

// quicZeroRTTLen models the un-padded 0-RTT resumption ticket packet.
const quicZeroRTTLen = 300

// QUICPacket is the unit carried across the emulated path for a
// QUICConn: stream data addressed by (StreamID, Offset) plus optional
// ACK and handshake framing. Packets are pooled exactly like Segments.
type QUICPacket struct {
	to   *QUICConn
	From string

	PN       uint64
	StreamID uint32
	Offset   uint64
	Len      int
	Fin      bool

	// Hs marks handshake legs: 0 none, 1 client Initial, 2 server reply.
	Hs      int
	CtrlLen int

	Ack        bool
	AckLargest uint64
	AckRanges  [][2]uint64 // closed PN intervals, ascending
}

// wireSize is the number of bytes the packet occupies on the link.
func (p *QUICPacket) wireSize() int {
	n := quicHeaderBytes + p.Len + p.CtrlLen
	if p.Ack {
		n += 12 + 8*len(p.AckRanges)
	}
	return n
}

// DupPayload implements netem.Duplicable: like Segment.DupPayload, the
// duplicate must be an independent pooled copy with its own ranges
// backing array, because delivered packets are recycled.
func (p *QUICPacket) DupPayload() netem.Payload {
	var cp *QUICPacket
	if p.to != nil && p.to.net != nil {
		cp = p.to.net.getQPkt()
	} else {
		cp = &QUICPacket{}
	}
	ranges := append(cp.AckRanges[:0], p.AckRanges...)
	*cp = *p
	cp.AckRanges = ranges
	return cp
}

// qSent is the sender's record of one in-flight (or resolved) packet.
// Records retire from the front of the deque once acknowledged; a
// declared-lost record stays until its fate is known — acknowledged
// after all (spurious declaration) or superseded by an acknowledged
// retransmission (loss confirmed).
type qSent struct {
	pn       uint64
	streamID uint32
	offset   uint64
	length   int
	fin      bool
	sentAt   sim.Time
	origPN   uint64 // set when this packet re-sends an earlier packet's data
	hasOrig  bool
	lost     bool // declared lost (bytes already removed from flight)
	acked    bool // resolved: acknowledged, or loss confirmed via retx ack
}

// qChunk is one WriteStream call, packetized FIFO.
type qChunk struct {
	streamID  uint32
	offset    uint64
	remaining int
}

// qRange is a half-open byte range [start, end) buffered out of order.
type qRange struct{ start, end uint64 }

// qRecvStream reassembles one stream independently of its siblings —
// the no-transport-HoL-blocking property under test by the
// cross-protocol metamorphic oracles.
type qRecvStream struct {
	nxt uint64
	ooo []qRange // disjoint, ascending
}

// QUICConn is one endpoint of a simulated QUIC-style connection.
type QUICConn struct {
	loop *sim.Loop
	cfg  Config
	id   string
	dest string

	isClient bool
	peer     *QUICConn
	out      *netem.Link
	net      *Network

	state         int
	onEstablished func()
	onStreamDel   func(streamID uint32, n int)
	hsRetry       sim.Timer
	hsSentAt      sim.Time

	// --- sender half (shared layers: rttEstimator + CongestionControl) ---
	cc            CongestionControl
	rtt           rttEstimator
	cwnd          float64
	ssthresh      float64
	nextPN        uint64
	largestAcked  uint64
	ackedAny      bool
	sent          []qSent
	sentHead      int
	bytesInFlight int
	sendq         []qChunk
	sendqHead     int
	queuedBytes   int
	streamOffs    map[uint32]uint64
	everSent      bool
	lastDataSend  sim.Time

	// Loss episodes mirror the TCP stack's once-per-window reduction:
	// losses of packets below recoveryEnd belong to the episode that
	// already reduced the window.
	inRecovery   bool
	recoveryEnd  uint64
	undoValid    bool
	undoCwnd     float64
	undoSsthresh float64

	ptoTimer sim.Timer
	ptoFn    func()

	writableThresh int
	writableHook   func()
	inWritableHook bool

	// --- receiver half ---
	rcvRanges    [][2]uint64 // received PNs, merged, ascending
	largestRcvd  uint64
	pktsSinceAck int
	delayedAck   sim.Timer
	delayedAckFn func()
	streams      map[uint32]*qRecvStream

	// --- counters (mirror Conn's public ledger) ---
	BytesSentApp   int64
	Retransmits    int
	SpuriousRetx   int
	IdleRestarts   int
	ZeroRTTResumed bool
}

// NewQUICPair creates a client endpoint (side A, the device) and server
// endpoint (side B, the proxy) wired through the network, exactly
// mirroring NewConnPair. dest keys both metrics caches.
func (n *Network) NewQUICPair(clientCfg, serverCfg Config, id, dest string) (client, server *QUICConn) {
	client = newQUICConn(n.loop, clientCfg, id+":c", dest, true)
	server = newQUICConn(n.loop, serverCfg, id+":s", dest, false)
	client.net, server.net = n, n
	client.peer, server.peer = server, client
	client.out = n.path.AtoB
	server.out = n.path.BtoA
	n.qconns = append(n.qconns, client, server)
	return client, server
}

// QUICConns returns every QUIC endpoint created through this network.
func (n *Network) QUICConns() []*QUICConn { return n.qconns }

func newQUICConn(loop *sim.Loop, cfg Config, id, dest string, isClient bool) *QUICConn {
	if cfg.MSS <= 0 {
		cfg = DefaultConfig()
	}
	q := &QUICConn{
		loop:       loop,
		cfg:        cfg,
		id:         id,
		dest:       dest,
		isClient:   isClient,
		cc:         NewCC(cfg.CC),
		rtt:        newRTTEstimator(cfg.InitialRTO, cfg.MinRTO, cfg.MaxRTO),
		cwnd:       cfg.InitialCwnd,
		ssthresh:   1 << 20,
		streamOffs: map[uint32]uint64{},
		streams:    map[uint32]*qRecvStream{},
	}
	q.ptoFn = q.onPTO
	q.delayedAckFn = func() {
		if q.pktsSinceAck > 0 {
			q.sendAckNow()
		}
	}
	if e := cfg.Metrics.Lookup(dest); e != nil {
		if e.Ssthresh > 0 {
			q.ssthresh = e.Ssthresh
		}
		q.rtt.seed(e.SRTT, e.RTTVar)
	}
	return q
}

func (q *QUICConn) releaseRuntime() {
	q.sent, q.sentHead = nil, 0
	q.sendq, q.sendqHead = nil, 0
	q.streamOffs, q.streams = nil, nil
	q.rcvRanges = nil
	q.onEstablished, q.onStreamDel, q.writableHook = nil, nil, nil
	q.ptoFn, q.delayedAckFn = nil, nil
	q.ptoTimer, q.delayedAck, q.hsRetry = sim.Timer{}, sim.Timer{}, sim.Timer{}
	q.cfg.Probe = nil
}

// OnEstablished registers the connection-ready callback.
func (q *QUICConn) OnEstablished(fn func()) { q.onEstablished = fn }

// OnStreamDeliver registers the per-stream in-order delivery callback:
// fn(streamID, n) reports n contiguous new bytes on that stream.
func (q *QUICConn) OnStreamDeliver(fn func(streamID uint32, n int)) { q.onStreamDel = fn }

// Established reports whether the connection is ready to carry data.
func (q *QUICConn) Established() bool { return q.state == stEstablished }

// InFlightBytes returns unacknowledged stream bytes on the wire.
func (q *QUICConn) InFlightBytes() int { return q.bytesInFlight }

// BufferedBytes returns bytes written but not yet packetized.
func (q *QUICConn) BufferedBytes() int { return q.queuedBytes }

// SetWritableHook mirrors Conn.SetWritableHook for the proxy pump.
func (q *QUICConn) SetWritableHook(threshold int, fn func()) {
	q.writableThresh = threshold
	q.writableHook = fn
}

func (q *QUICConn) fireWritable() {
	if q.writableHook == nil || q.inWritableHook {
		return
	}
	if q.queuedBytes > q.writableThresh {
		return
	}
	q.inWritableHook = true
	q.writableHook()
	q.inWritableHook = false
}

// Connect starts the handshake. With ZeroRTT and cached metrics for the
// destination, the connection is usable immediately (resumption); the
// Initial still travels to wake the server side.
func (q *QUICConn) Connect() {
	if !q.isClient {
		panic("tcpsim: Connect on server QUIC endpoint")
	}
	if q.state != stClosed {
		return
	}
	if q.cfg.ZeroRTT && q.cfg.Metrics.Lookup(q.dest) != nil {
		q.ZeroRTTResumed = true
		q.state = stEstablished
		init := q.newPkt()
		init.Hs = 1
		init.CtrlLen = quicZeroRTTLen
		q.transmit(init)
		q.probe(EvEstablished)
		if q.onEstablished != nil {
			q.onEstablished()
		}
		return
	}
	q.state = stSynSent
	q.hsSentAt = q.loop.Now()
	init := q.newPkt()
	init.Hs = 1
	init.CtrlLen = quicInitialPad
	q.transmit(init)
	q.armHandshakeRetry(q.cfg.InitialRTO)
}

func (q *QUICConn) armHandshakeRetry(d time.Duration) {
	q.hsRetry.Stop()
	q.hsRetry = q.loop.After(d, func() {
		if q.state != stSynSent {
			return
		}
		init := q.newPkt()
		init.Hs = 1
		init.CtrlLen = quicInitialPad
		q.transmit(init)
		q.armHandshakeRetry(2 * d)
	})
}

// WriteStream queues n application bytes on the given stream.
func (q *QUICConn) WriteStream(streamID uint32, n int) {
	if n <= 0 {
		return
	}
	if q.state == stClosed && q.isClient {
		q.Connect()
	}
	q.BytesSentApp += int64(n)
	q.maybeIdleRestart()
	off := q.streamOffs[streamID]
	q.streamOffs[streamID] = off + uint64(n)
	// Coalesce with the tail chunk when contiguous on the same stream,
	// so chatty writers don't grow the queue one entry per call.
	if ln := len(q.sendq); ln > q.sendqHead {
		t := &q.sendq[ln-1]
		if t.streamID == streamID && t.offset+uint64(t.remaining) == off {
			t.remaining += n
			q.queuedBytes += n
			q.trySend()
			return
		}
	}
	q.sendq = append(q.sendq, qChunk{streamID: streamID, offset: off, remaining: n})
	q.queuedBytes += n
	q.trySend()
}

// Close flushes metrics to the cache. QUIC's CONNECTION_CLOSE is not
// modeled; experiments read counters, not teardown timing.
func (q *QUICConn) Close() {
	if q.state == stClosing || q.state == stClosed {
		return
	}
	q.storeMetrics()
	q.state = stClosing
}

func (q *QUICConn) storeMetrics() {
	if q.cfg.Metrics == nil {
		return
	}
	e := MetricsEntry{SRTT: q.rtt.srtt, RTTVar: q.rtt.rttvar}
	if q.ssthresh < 1<<20 {
		e.Ssthresh = q.ssthresh
	}
	if e.SRTT > 0 || e.Ssthresh > 0 {
		q.cfg.Metrics.Store(q.dest, e)
	}
}

// maybeIdleRestart applies the same congestion-window validation policy
// as the TCP stack — the layer composes unchanged onto a different
// transport, which is the refactor's point.
func (q *QUICConn) maybeIdleRestart() {
	if q.cfg.NoIdleDemotion || !q.everSent || q.bytesInFlight > 0 || q.queuedBytes > 0 {
		return
	}
	idle := q.loop.Now().Sub(q.lastDataSend)
	if idle <= q.rtt.base() {
		return
	}
	if q.cfg.SlowStartAfterIdle {
		if q.cwnd > q.cfg.InitialCwnd {
			q.cwnd = q.cfg.InitialCwnd
		}
		q.cc.Reset()
		q.IdleRestarts++
		q.probe(EvIdleRestart)
	}
	if q.cfg.ResetRTTAfterIdle {
		q.rtt.reset()
		q.probe(EvRTTReset)
	}
}

func (q *QUICConn) probe(ev ProbeEvent) {
	if q.cfg.Probe == nil {
		return
	}
	q.cfg.Probe.Sample(ProbeSample{
		At:       q.loop.Now(),
		ConnID:   q.id,
		Event:    ev,
		Cwnd:     q.cwnd,
		Ssthresh: q.ssthresh,
		InFlight: q.bytesInFlight,
		RTOms:    float64(q.rtt.current()) / float64(time.Millisecond),
		SRTTms:   float64(q.rtt.srtt) / float64(time.Millisecond),
	})
}

func (q *QUICConn) newPkt() *QUICPacket {
	if q.net != nil {
		return q.net.getQPkt()
	}
	return &QUICPacket{}
}

func (q *QUICConn) transmit(p *QUICPacket) {
	p.From = q.id
	p.to = q.peer
	if !q.out.Send(p, p.wireSize()) && q.net != nil {
		q.net.putQPkt(p)
	}
}

// trySend packetizes queued chunks while the congestion window allows,
// one stream frame per packet.
func (q *QUICConn) trySend() {
	if q.state != stEstablished {
		return
	}
	cwndBytes := int(q.cwnd) * q.cfg.MSS
	for q.sendqHead < len(q.sendq) && q.bytesInFlight < cwndBytes {
		ch := &q.sendq[q.sendqHead]
		n := ch.remaining
		if n > q.cfg.MSS {
			n = q.cfg.MSS
		}
		q.sendData(ch.streamID, ch.offset, n, false, 0, false)
		ch.offset += uint64(n)
		ch.remaining -= n
		q.queuedBytes -= n
		if ch.remaining == 0 {
			q.sendqHead++
			if q.sendqHead == len(q.sendq) {
				q.sendq = q.sendq[:0]
				q.sendqHead = 0
			}
		}
	}
	q.fireWritable()
}

// sendData emits one stream-frame packet with a fresh packet number and
// records it in flight. origPN marks retransmissions of earlier data.
func (q *QUICConn) sendData(sid uint32, off uint64, n int, hasOrig bool, origPN uint64, fin bool) {
	pn := q.nextPN
	q.nextPN++
	p := q.newPkt()
	p.PN = pn
	p.StreamID = sid
	p.Offset = off
	p.Len = n
	p.Fin = fin
	q.pushSent(qSent{
		pn: pn, streamID: sid, offset: off, length: n, fin: fin,
		sentAt: q.loop.Now(), origPN: origPN, hasOrig: hasOrig,
	})
	q.bytesInFlight += n
	q.everSent = true
	q.lastDataSend = q.loop.Now()
	q.transmit(p)
	q.probe(EvSend)
	q.armPTO()
}

func (q *QUICConn) pushSent(s qSent) {
	if len(q.sent) == cap(q.sent) && q.sentHead > 0 {
		n := copy(q.sent, q.sent[q.sentHead:])
		q.sent = q.sent[:n]
		q.sentHead = 0
	}
	q.sent = append(q.sent, s)
}

// flight returns the live window of the sent-packet deque.
func (q *QUICConn) flight() []qSent { return q.sent[q.sentHead:] }

// compactFlight retires resolved records from the front.
func (q *QUICConn) compactFlight() {
	for q.sentHead < len(q.sent) && q.sent[q.sentHead].acked {
		q.sentHead++
	}
	if q.sentHead == len(q.sent) {
		q.sent = q.sent[:0]
		q.sentHead = 0
	}
}

func (q *QUICConn) armPTO() {
	q.ptoTimer.Stop()
	if q.bytesInFlight == 0 {
		return
	}
	q.ptoTimer = q.loop.After(q.rtt.current(), q.ptoFn)
}

// onPTO handles a probe timeout: re-send the earliest outstanding data
// under a fresh packet number and back off the timer. Unlike a TCP RTO
// the window is NOT collapsed — loss is only declared by the packet
// threshold once acknowledgments return, or by persistent congestion
// after repeated fruitless probes (RFC 9002 §7.6). A stall that turns
// out to be a radio promotion therefore costs a duplicate packet, not
// the connection's whole window.
func (q *QUICConn) onPTO() {
	var tgt *qSent
	fl := q.flight()
	for i := range fl {
		if !fl[i].acked && !fl[i].lost {
			tgt = &fl[i]
			break
		}
	}
	if tgt == nil {
		return
	}
	q.Retransmits++
	// A probe of a probe tracks the nearest copy: spuriousness is a
	// per-declaration question, not a per-datum one.
	orig := tgt.pn
	q.probe(EvRetransmit)
	q.sendData(tgt.streamID, tgt.offset, tgt.length, true, orig, tgt.fin)
	q.rtt.backoff()
	// Persistent congestion: two consecutive fruitless probe timeouts
	// collapse the window to the minimum, as RFC 9002 §7.6.2 does for a
	// lost span exceeding the persistent-congestion duration. The undo
	// snapshot lets a later spurious proof restore everything.
	if q.rtt.backoffN >= 2 {
		q.congestionEvent(orig)
		if q.cwnd > 2 {
			q.cwnd = 2
		}
	}
	q.armPTO()
}

// congestionEvent applies the once-per-episode window reduction for a
// loss involving packet pn, snapshotting state for Eifel-style undo.
func (q *QUICConn) congestionEvent(pn uint64) {
	if q.inRecovery && pn < q.recoveryEnd {
		return
	}
	q.undoValid = true
	q.undoCwnd, q.undoSsthresh = q.cwnd, q.ssthresh
	q.cc.OnLoss(q.loop.Now(), q.cwnd)
	q.ssthresh = q.cc.SsthreshAfterLoss(q.cwnd)
	if q.ssthresh < 2 {
		q.ssthresh = 2
	}
	q.cwnd = q.ssthresh
	q.inRecovery = true
	q.recoveryEnd = q.nextPN
}

// undoCongestionEvent restores the pre-episode window after a spurious
// loss declaration is proven by the original packet's acknowledgment.
func (q *QUICConn) undoCongestionEvent() {
	if !q.undoValid || q.cfg.DisableUndo {
		return
	}
	q.cwnd, q.ssthresh = q.undoCwnd, q.undoSsthresh
	q.cc.OnUndo(q.loop.Now(), q.cwnd)
	q.undoValid = false
	q.probe(EvUndo)
}

// handlePacket is the receive demultiplexer for one endpoint.
func (q *QUICConn) handlePacket(p *QUICPacket) {
	if p.Hs == 1 {
		q.handleInitial()
		return
	}
	if p.Hs == 2 {
		q.handleHandshakeReply()
		return
	}
	if p.Ack {
		q.handleAck(p)
		return
	}
	// A data packet from the client also completes the server's
	// handshake view under 0-RTT (the Initial may have been lost).
	if q.state == stClosed && !q.isClient {
		q.becomeEstablished()
	}
	if q.state == stSynSent && q.isClient {
		// Data cannot arrive before the reply in FIFO order, but a
		// reordered reply can; treat any peer packet as proof.
		q.hsRetry.Stop()
		q.becomeEstablished()
	}
	q.receiveData(p)
}

func (q *QUICConn) handleInitial() {
	if q.isClient {
		return
	}
	if q.state == stClosed {
		q.becomeEstablished()
	}
	// Always (re-)send the reply: a duplicate Initial means the client
	// retried, so the previous reply was likely lost.
	rep := q.newPkt()
	rep.Hs = 2
	rep.CtrlLen = quicInitialPad
	q.transmit(rep)
}

func (q *QUICConn) handleHandshakeReply() {
	if !q.isClient || q.state != stSynSent {
		return
	}
	q.hsRetry.Stop()
	q.rtt.sample(q.loop.Now().Sub(q.hsSentAt))
	q.becomeEstablished()
}

func (q *QUICConn) becomeEstablished() {
	if q.state == stEstablished {
		return
	}
	q.state = stEstablished
	q.probe(EvEstablished)
	if q.onEstablished != nil {
		q.onEstablished()
	}
	q.trySend()
}

// handleAck processes an ACK packet: resolve newly acknowledged
// records, sample RTT on the largest, detect spurious retransmissions,
// then run packet-threshold loss detection.
func (q *QUICConn) handleAck(p *QUICPacket) {
	fl := q.flight()
	newlyAcked := 0
	var largestNew *qSent
	for i := range fl {
		e := &fl[i]
		if e.acked || !ackRangesContain(p, e.pn) {
			continue
		}
		if e.lost {
			// Declared lost, retransmitted — and here is the original's
			// acknowledgment after all: the declaration was spurious.
			e.acked = true
			q.SpuriousRetx++
			q.probe(EvSpurious)
			q.undoCongestionEvent()
			continue
		}
		e.acked = true
		q.bytesInFlight -= e.length
		newlyAcked++
		if largestNew == nil || e.pn > largestNew.pn {
			largestNew = e
		}
		if e.hasOrig {
			q.resolveOriginal(e.origPN)
		} else {
			q.checkSpuriousProbe(e.pn, fl)
		}
	}
	if newlyAcked == 0 {
		q.compactFlight()
		return
	}
	if p.AckLargest > q.largestAcked || !q.ackedAny {
		q.largestAcked = p.AckLargest
		q.ackedAny = true
	}
	// PNs are never reused, so every sample is unambiguous — no Karn
	// exclusion needed, which is exactly property (2) above.
	if largestNew != nil && largestNew.pn == p.AckLargest {
		q.rtt.sample(q.loop.Now().Sub(largestNew.sentAt))
	}
	q.rtt.progress()
	if q.inRecovery && q.largestAcked >= q.recoveryEnd {
		q.inRecovery = false
		q.undoValid = false
		q.cc.OnExitRecovery(q.loop.Now(), q.cwnd)
	}
	if !q.inRecovery {
		if q.cwnd < q.ssthresh {
			q.cwnd += float64(newlyAcked)
			if q.cwnd > q.ssthresh {
				q.cwnd = q.ssthresh
			}
		} else {
			q.cwnd += q.cc.OnAckCA(q.loop.Now(), q.cwnd, newlyAcked, q.rtt.srtt)
		}
	}
	q.probe(EvAck)
	q.detectLosses()
	q.compactFlight()
	q.armPTO()
	q.trySend()
}

// resolveOriginal marks the chain of earlier copies of just-acked
// retransmitted data as resolved: their loss is confirmed (the data
// only arrived via the retransmission), so they may retire.
func (q *QUICConn) resolveOriginal(pn uint64) {
	fl := q.flight()
	for {
		var e *qSent
		for i := range fl {
			if fl[i].pn == pn {
				e = &fl[i]
				break
			}
		}
		if e == nil || e.acked {
			return
		}
		e.acked = true
		if e.lost {
			// bytes already left the flight when declared lost
		} else {
			q.bytesInFlight -= e.length
		}
		if !e.hasOrig {
			return
		}
		pn = e.origPN
	}
}

// checkSpuriousProbe detects the PTO analogue of a spurious timeout:
// the original packet was acknowledged while an un-acked probe copy of
// its data is still in flight — the probe was unnecessary.
func (q *QUICConn) checkSpuriousProbe(pn uint64, fl []qSent) {
	for i := range fl {
		r := &fl[i]
		if r.hasOrig && r.origPN == pn && !r.acked {
			q.SpuriousRetx++
			q.probe(EvSpurious)
			q.undoCongestionEvent()
			return
		}
	}
}

// detectLosses declares packets lost by the reordering threshold and
// retransmits their data under fresh packet numbers.
func (q *QUICConn) detectLosses() {
	if !q.ackedAny {
		return
	}
	fl := q.flight()
	for i := range fl {
		e := &fl[i]
		if e.acked || e.lost {
			continue
		}
		if e.pn+quicPacketThreshold > q.largestAcked {
			break // deque is PN-ordered; nothing further qualifies
		}
		e.lost = true
		q.bytesInFlight -= e.length
		if q.ackedRetxOf(e.pn) {
			// The data already arrived via an earlier probe copy; the
			// loss is real (count the episode) but nothing to resend.
			e.acked = true
			q.congestionEvent(e.pn)
			continue
		}
		q.Retransmits++
		q.probe(EvFastRetx)
		q.congestionEvent(e.pn)
		q.sendData(e.streamID, e.offset, e.length, true, e.pn, e.fin)
	}
}

func (q *QUICConn) ackedRetxOf(pn uint64) bool {
	fl := q.flight()
	for i := range fl {
		if fl[i].hasOrig && fl[i].origPN == pn && fl[i].acked {
			return true
		}
	}
	return false
}

func ackRangesContain(p *QUICPacket, pn uint64) bool {
	for _, r := range p.AckRanges {
		if pn >= r[0] && pn <= r[1] {
			return true
		}
	}
	return false
}

// --- receiver half ---

// receiveData handles a stream-data packet: PN-level dedup and ACK
// bookkeeping at the connection level, then per-stream reassembly.
func (q *QUICConn) receiveData(p *QUICPacket) {
	fresh := q.recordPN(p.PN)
	if fresh {
		q.deliverStream(p.StreamID, p.Offset, p.Len)
	}
	q.pktsSinceAck++
	if q.pktsSinceAck >= 2 {
		q.sendAckNow()
	} else {
		q.delayedAck.Stop()
		q.delayedAck = q.loop.After(q.cfg.DelayedAckTimeout, q.delayedAckFn)
	}
}

// recordPN merges pn into the received-PN interval set, reporting
// whether it was new. The set is kept small by construction: in-order
// arrival extends the last interval in place.
func (q *QUICConn) recordPN(pn uint64) bool {
	if pn > q.largestRcvd {
		q.largestRcvd = pn
	}
	rs := q.rcvRanges
	// Fast path: extend or duplicate at the tail.
	if n := len(rs); n > 0 {
		last := &rs[n-1]
		if pn >= last[0] && pn <= last[1] {
			return false
		}
		if pn == last[1]+1 {
			last[1] = pn
			return true
		}
		if pn > last[1] {
			q.rcvRanges = append(rs, [2]uint64{pn, pn})
			q.capRcvRanges()
			return true
		}
	} else {
		q.rcvRanges = append(rs, [2]uint64{pn, pn})
		return true
	}
	// Out-of-order: insert/merge in the ascending interval list.
	for i := range rs {
		r := &rs[i]
		if pn >= r[0] && pn <= r[1] {
			return false
		}
		if pn < r[0] {
			if pn == r[0]-1 {
				r[0] = pn
				q.mergeRcvAt(i)
				return true
			}
			if i > 0 && pn == rs[i-1][1]+1 {
				rs[i-1][1] = pn
				q.mergeRcvAt(i - 1)
				return true
			}
			q.rcvRanges = append(rs, [2]uint64{})
			copy(q.rcvRanges[i+1:], q.rcvRanges[i:])
			q.rcvRanges[i] = [2]uint64{pn, pn}
			q.capRcvRanges()
			return true
		}
	}
	return false // unreachable: tail cases handled above
}

func (q *QUICConn) mergeRcvAt(i int) {
	rs := q.rcvRanges
	if i+1 < len(rs) && rs[i][1]+1 >= rs[i+1][0] {
		if rs[i+1][1] > rs[i][1] {
			rs[i][1] = rs[i+1][1]
		}
		q.rcvRanges = append(rs[:i+1], rs[i+2:]...)
	}
}

// capRcvRanges bounds the interval set by forgetting the lowest ranges;
// those packets were acknowledged long ago.
func (q *QUICConn) capRcvRanges() {
	const maxRanges = 32
	if len(q.rcvRanges) > maxRanges {
		n := copy(q.rcvRanges, q.rcvRanges[len(q.rcvRanges)-maxRanges:])
		q.rcvRanges = q.rcvRanges[:n]
	}
}

func (q *QUICConn) sendAckNow() {
	q.delayedAck.Stop()
	q.pktsSinceAck = 0
	p := q.newPkt()
	p.PN = q.nextPN
	q.nextPN++
	p.Ack = true
	p.AckLargest = q.largestRcvd
	p.AckRanges = append(p.AckRanges[:0], q.rcvRanges...)
	q.transmit(p)
}

// deliverStream reassembles [off, off+n) on the given stream and
// delivers any newly contiguous bytes — entirely independently of every
// other stream (property 1: no transport HoL blocking).
func (q *QUICConn) deliverStream(sid uint32, off uint64, n int) {
	if n <= 0 {
		return
	}
	st := q.streams[sid]
	if st == nil {
		st = &qRecvStream{}
		q.streams[sid] = st
	}
	end := off + uint64(n)
	if end <= st.nxt {
		return // duplicate data from a spurious retransmission
	}
	if off > st.nxt {
		st.buffer(off, end)
		return
	}
	// Contiguous: advance, then drain any now-adjacent buffered ranges.
	old := st.nxt
	st.nxt = end
	for len(st.ooo) > 0 && st.ooo[0].start <= st.nxt {
		if st.ooo[0].end > st.nxt {
			st.nxt = st.ooo[0].end
		}
		st.ooo = st.ooo[1:]
	}
	if q.onStreamDel != nil {
		q.onStreamDel(sid, int(st.nxt-old))
	}
}

// buffer inserts [start, end) into the out-of-order set, merging
// overlaps, keeping the set disjoint and ascending.
func (st *qRecvStream) buffer(start, end uint64) {
	i := 0
	for i < len(st.ooo) && st.ooo[i].end < start {
		i++
	}
	if i == len(st.ooo) {
		st.ooo = append(st.ooo, qRange{start, end})
		return
	}
	if end < st.ooo[i].start {
		st.ooo = append(st.ooo, qRange{})
		copy(st.ooo[i+1:], st.ooo[i:])
		st.ooo[i] = qRange{start, end}
		return
	}
	// Overlaps/abuts run [i, j): merge into one.
	if st.ooo[i].start < start {
		start = st.ooo[i].start
	}
	j := i
	for j < len(st.ooo) && st.ooo[j].start <= end {
		if st.ooo[j].end > end {
			end = st.ooo[j].end
		}
		j++
	}
	st.ooo[i] = qRange{start, end}
	st.ooo = append(st.ooo[:i+1], st.ooo[j:]...)
}
