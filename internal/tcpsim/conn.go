package tcpsim

import (
	"fmt"
	"sort"
	"time"

	"spdier/internal/netem"
	"spdier/internal/sim"
)

// debugLog, when set by tests, receives verbose per-event diagnostics.
var debugLog func(string)

// SetDebugLog installs (or clears, with nil) the package debug logger.
func SetDebugLog(fn func(string)) { debugLog = fn }

// Config holds the tunables of one endpoint's TCP stack. Defaults mirror
// the Linux 3.x stack on the paper's proxy VM.
type Config struct {
	// MSS is the maximum segment payload in bytes.
	MSS int
	// InitialCwnd is the initial congestion window in segments (IW10,
	// the then-new Linux default discussed in §7 via RFC 6928).
	InitialCwnd float64
	// InitialRTO is the pre-measurement retransmission timeout
	// (RFC 6298 says 1 s, classic BSD used 3 s; the paper's fix relies
	// on this being "multiple seconds", larger than the promotion delay).
	InitialRTO time.Duration
	// MinRTO floors the computed RTO (Linux: 200 ms).
	MinRTO time.Duration
	// MaxRTO caps RTO backoff.
	MaxRTO time.Duration
	// DelayedAckTimeout is the receiver's delayed-ACK timer.
	DelayedAckTimeout time.Duration
	// RecvBuffer bounds the advertised receive window in bytes.
	RecvBuffer int
	// SlowStartAfterIdle enables Linux congestion-window validation:
	// after an idle period longer than the RTO, cwnd is reset to the
	// initial window (ssthresh and the RTT estimate are NOT touched —
	// precisely the asymmetry the paper identifies).
	SlowStartAfterIdle bool
	// ResetRTTAfterIdle is the paper's §6.2.1 proposal: on the same idle
	// trigger, also discard the RTT estimate and restore the initial
	// multi-second RTO so the radio promotion delay cannot beat it.
	ResetRTTAfterIdle bool
	// CC selects the congestion control variant: "cubic" or "reno".
	CC string
	// Metrics, when non-nil, seeds new connections from (and stores
	// results into) the shared per-destination cache (§6.2.4).
	Metrics *MetricsCache
	// Probe receives tcp_probe-style samples; may be nil.
	Probe Probe
	// TLS models an SSL handshake (two extra round trips of control
	// data) before the connection is reported established, as Chrome's
	// SPDY sessions require.
	TLS bool
	// NoIdleDemotion disables idle-restart entirely (for unit tests).
	NoIdleDemotion bool
	// DisableUndo turns off DSACK-based undo of spurious loss episodes,
	// modeling stacks whose undo machinery is ineffective — the ablation
	// that recovers the paper's full §6.2.1 claim.
	DisableUndo bool

	// --- loss-recovery fix arms (recovery.go / rack.go / frto.go).
	// Independently toggleable; all off reproduces the paper-era stack
	// bit for bit. ---

	// TLP enables tail loss probes: a probe timeout ≈ 2·srtt
	// retransmits the tail (or sends one new segment) before the longer
	// RTO can fire, converting tail-drop timeouts into ACK-driven
	// recovery and pushing the re-armed RTO past short radio stalls.
	TLP bool
	// RACK enables time-based loss detection: a segment is marked lost
	// when a segment sent at least a reordering window later has been
	// delivered, replacing pure dupACK-count thresholds.
	RACK bool
	// FRTO enables RFC 5682 spurious-timeout handling with the full
	// Eifel-style undo: when the first ACK after an RTO covers a
	// never-retransmitted segment, cwnd/ssthresh/backoff and the CC
	// variant's state are restored — the in-protocol fix for the
	// paper's §6 pathology, applied without resetting the estimator.
	FRTO bool

	// ZeroRTT enables 0-RTT resumption on QUIC-style endpoints: when the
	// metrics cache holds an entry for the destination, Connect skips
	// the handshake round trip entirely. Ignored by TCP Conns.
	ZeroRTT bool
}

// DefaultConfig returns the Linux-like defaults used by the experiments.
func DefaultConfig() Config {
	return Config{
		MSS:                1380,
		InitialCwnd:        10,
		InitialRTO:         3 * time.Second,
		MinRTO:             200 * time.Millisecond,
		MaxRTO:             120 * time.Second,
		DelayedAckTimeout:  40 * time.Millisecond,
		RecvBuffer:         256 << 10,
		SlowStartAfterIdle: true,
		CC:                 "cubic",
	}
}

// Connection lifecycle states.
const (
	stClosed = iota
	stSynSent
	stSynRcvd
	stEstablished
	stClosing
)

// Congestion state machine (RFC 5681 / Linux CA states).
const (
	caOpen = iota
	caRecovery
	caLoss
)

// Network binds TCP connections to a netem.Path, demultiplexing segments
// of many connections over the same emulated links — exactly how many
// browser connections share one radio bearer.
type Network struct {
	loop     *sim.Loop
	path     *netem.Path
	conns    []*Conn
	qconns   []*QUICConn
	segFree  []*Segment
	qpktFree []*QUICPacket
	// segsLive counts segments and QUIC packets handed out by
	// getSeg/getQPkt and not yet retired through putSeg/putQPkt. Every
	// unit retires exactly once — delivered, dropped at the
	// queue/loss/burst stage, or duplicated-and-delivered — so a
	// quiesced network must read zero; anything else is a pool leak or
	// a double free.
	segsLive int
}

// LiveSegments returns the number of outstanding pool segments. After
// the loop runs idle it must be zero (negative values indicate a
// double free).
func (n *Network) LiveSegments() int { return n.segsLive }

// Conns returns every connection endpoint created through this network.
func (n *Network) Conns() []*Conn { return n.conns }

// ReleaseRuntime frees simulation-time state a finished run no longer
// needs — the segment pool, per-connection queues, scratch buffers and
// application callbacks — while keeping every counter and accessor that
// results read (Conns, Path, Retransmits, String). A memoized Result
// then retains statistics, not the closure graph of the whole run.
func (n *Network) ReleaseRuntime() {
	n.segFree = nil
	n.qpktFree = nil
	for _, c := range n.conns {
		c.releaseRuntime()
	}
	for _, q := range n.qconns {
		q.releaseRuntime()
	}
}

func (c *Conn) releaseRuntime() {
	c.inflight, c.inflHead = nil, 0
	c.ooo = nil
	c.sackScratch = nil
	c.onEstablished, c.onDeliver, c.onClose = nil, nil, nil
	c.writableHook = nil
	c.onRTOFn, c.delayedAckFn, c.onTLPFn = nil, nil, nil
	c.rtoTimer, c.delayedAck = sim.Timer{}, sim.Timer{}
	c.tlp = tlpState{}
	c.cfg.Probe = nil
}

// NewNetwork installs segment demultiplexers on both directions of path.
func NewNetwork(loop *sim.Loop, path *netem.Path) *Network {
	n := &Network{loop: loop, path: path}
	deliver := func(p netem.Payload) {
		// TCP segments and QUIC packets share the path (and may share it
		// with non-transport traffic such as the Figure 14 keep-alive
		// pinger); dispatch by concrete type, ignore anything else.
		switch v := p.(type) {
		case *Segment:
			to := v.to
			to.handleSegment(v)
			n.putSeg(v)
		case *QUICPacket:
			to := v.to
			to.handlePacket(v)
			n.putQPkt(v)
		}
	}
	path.AtoB.SetReceiver(deliver)
	path.BtoA.SetReceiver(deliver)
	return n
}

// getSeg returns a zeroed segment, recycled from the pool when possible.
// Segments live exactly one send→link→deliver cycle: transmit hands them
// to the link, the network demuxer returns them after handleSegment, so
// steady-state traffic allocates no segments at all.
func (n *Network) getSeg() *Segment {
	n.segsLive++
	if ln := len(n.segFree); segPooling && ln > 0 {
		s := n.segFree[ln-1]
		n.segFree = n.segFree[:ln-1]
		return s
	}
	return &Segment{}
}

// putSeg zeroes a delivered segment and returns it to the pool, keeping
// the Sack backing array so later ACKs reuse it.
func (n *Network) putSeg(s *Segment) {
	n.segsLive--
	if !segPooling {
		return
	}
	sack := s.Sack[:0]
	*s = Segment{}
	s.Sack = sack
	n.segFree = append(n.segFree, s)
}

// getQPkt / putQPkt mirror getSeg / putSeg for QUIC packets, sharing the
// segsLive balance so LiveSegments covers both transports.
func (n *Network) getQPkt() *QUICPacket {
	n.segsLive++
	if ln := len(n.qpktFree); segPooling && ln > 0 {
		p := n.qpktFree[ln-1]
		n.qpktFree = n.qpktFree[:ln-1]
		return p
	}
	return &QUICPacket{}
}

// putQPkt zeroes a delivered packet and returns it to the pool, keeping
// the AckRanges backing array so later ACKs reuse it.
func (n *Network) putQPkt(p *QUICPacket) {
	n.segsLive--
	if !segPooling {
		return
	}
	ranges := p.AckRanges[:0]
	*p = QUICPacket{}
	p.AckRanges = ranges
	n.qpktFree = append(n.qpktFree, p)
}

// Loop returns the simulation loop.
func (n *Network) Loop() *sim.Loop { return n.loop }

// Path returns the underlying emulated path.
func (n *Network) Path() *netem.Path { return n.path }

// NewConnPair creates a client endpoint (side A, the device) and server
// endpoint (side B, the proxy) wired through the network. dest keys the
// server's metrics cache. The connection is idle until client.Connect().
func (n *Network) NewConnPair(clientCfg, serverCfg Config, id, dest string) (client, server *Conn) {
	client = newConn(n.loop, clientCfg, id+":c", dest, true)
	server = newConn(n.loop, serverCfg, id+":s", dest, false)
	client.net = n
	server.net = n
	client.peer = server
	server.peer = client
	client.out = n.path.AtoB
	server.out = n.path.BtoA
	n.conns = append(n.conns, client, server)
	return client, server
}

// PeerWnd returns the last advertised peer receive window.
func (c *Conn) PeerWnd() int { return c.peerWnd }

// Conn is one endpoint of a simulated TCP connection.
type Conn struct {
	loop *sim.Loop
	cfg  Config
	id   string
	dest string

	isClient bool
	peer     *Conn
	out      *netem.Link
	net      *Network

	state         int
	onEstablished func()
	onDeliver     func(int)
	onClose       func()
	tlsStep       int

	// --- sender half ---
	cc        CongestionControl
	rtt       rttEstimator
	cwnd      float64
	ssthresh  float64
	sndUna    uint64
	sndNxt    uint64
	sendQueue int
	// inflight is a head-indexed deque: acked segments advance inflHead
	// instead of reslicing away front capacity, so the backing array is
	// reused for the whole connection lifetime.
	inflight     []sentSeg
	inflHead     int
	dupAcks      int
	recoverPoint uint64
	caState      int
	// lossAcks counts cumulative ACKs processed since the last RTO.
	// F-RTO: retransmissions beyond the first segment are held back
	// until a second ACK arrives, so a spurious timeout (originals
	// merely delayed) is detected before a go-back-N storm starts.
	lossAcks int
	// wasCwndLimited records whether the last transmission opportunity
	// was cut short by the congestion window (RFC 7661 validation).
	wasCwndLimited bool
	rtoTimer       sim.Timer
	lastDataSend   sim.Time
	everSent       bool
	peerWnd        int
	finSent        bool

	// --- DSACK undo state (Linux tcp_try_undo_dsack): when every
	// retransmission of a loss episode is reported back as a duplicate,
	// the episode was spurious and the pre-collapse cwnd/ssthresh are
	// restored. This is what lets ssthresh "grow back quickly" in
	// Figure 12 after a promotion-delay timeout.
	undoActive   bool
	undoCwnd     float64
	undoSsthresh float64
	undoRetrans  int
	undoEpisode  int // total retransmissions in the episode
	Undos        int

	// --- loss-recovery fix-arm state (inert unless the arm is on) ---
	tlp  tlpState
	rack rackState

	// --- receiver half ---
	rcvNxt       uint64
	ooo          map[uint64]int
	oooBytes     int
	delayedAck   sim.Timer
	segsSinceAck int
	pendingDsack bool
	// sackScratch is reused across sackBlocks calls to sort the
	// out-of-order sequence numbers without allocating.
	sackScratch []uint64
	// tsRecent is the RFC 7323 TS.Recent value: the send timestamp of
	// the last segment that advanced the in-order window; echoed on
	// every ACK so the peer samples true round trips even when a single
	// repair releases a large cumulative ACK.
	tsRecent sim.Time
	finRcvd  bool

	// writable hook: invoked when the send queue drains to or below the
	// threshold, letting an application (the SPDY proxy pump) keep the
	// socket fed without deep buffering.
	writableThresh int
	writableHook   func()
	inWritableHook bool

	// Prebound timer callbacks: method values allocate a closure per use,
	// so the RTO and delayed-ACK callbacks — re-armed on nearly every
	// ACK — are bound once at construction.
	onRTOFn      func()
	delayedAckFn func()
	onTLPFn      func()

	// --- counters ---
	Retransmits      int // RTO-driven (and SACK-hole repairs inside an episode)
	FastRetransmits  int
	RACKRetransmits  int // retransmissions of RACK-marked segments
	TLPProbes        int // tail loss probes fired (retransmitted tail or new data)
	FrtoUndos        int // F-RTO spurious verdicts with full Eifel undo
	SpuriousArrivals int // duplicate data received (peer retransmitted needlessly)
	IdleRestarts     int
	BytesSentApp     int64
	BytesRcvdApp     int64

	// tlpNewData counts TLP probes that carried new data rather than a
	// retransmission; retxWire counts wire-level retransmissions (every
	// retransmitSeg call). Together they let the invariant checker prove
	// each retransmission is attributed to exactly one cause:
	// retxWire == Retransmits + FastRetransmits + RACKRetransmits +
	// (TLPProbes - tlpNewData).
	tlpNewData int
	retxWire   int
}

func newConn(loop *sim.Loop, cfg Config, id, dest string, isClient bool) *Conn {
	if cfg.MSS <= 0 {
		cfg = DefaultConfig()
	}
	c := &Conn{
		loop:     loop,
		cfg:      cfg,
		id:       id,
		dest:     dest,
		isClient: isClient,
		cc:       NewCC(cfg.CC),
		rtt:      newRTTEstimator(cfg.InitialRTO, cfg.MinRTO, cfg.MaxRTO),
		cwnd:     cfg.InitialCwnd,
		ssthresh: 1 << 20, // "infinite" until first loss
		peerWnd:  64 << 10,
	}
	c.onRTOFn = c.onRTO
	c.onTLPFn = c.onTLP
	c.delayedAckFn = func() {
		if c.segsSinceAck > 0 {
			c.sendAck(true)
		}
	}
	if invOn {
		c.cc = checkedCC{c.cc}
	}
	if e := cfg.Metrics.Lookup(dest); e != nil {
		// Linux tcp_metrics: seed ssthresh and RTT state from the cache.
		if e.Ssthresh > 0 {
			c.ssthresh = e.Ssthresh
		}
		c.rtt.seed(e.SRTT, e.RTTVar)
	}
	return c
}

// ID returns the connection identifier used in traces.
func (c *Conn) ID() string { return c.id }

// OnEstablished registers the callback fired when the handshake (and TLS
// exchange, if configured) completes at this endpoint.
func (c *Conn) OnEstablished(fn func()) { c.onEstablished = fn }

// OnDeliver registers the callback fired with the count of newly
// delivered in-order application bytes at this endpoint.
func (c *Conn) OnDeliver(fn func(int)) { c.onDeliver = fn }

// OnClose registers a callback fired when the peer's FIN arrives.
func (c *Conn) OnClose(fn func()) { c.onClose = fn }

// Established reports whether the connection is fully set up.
func (c *Conn) Established() bool { return c.state == stEstablished }

// Cwnd returns the congestion window in segments.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// Ssthresh returns the slow-start threshold in segments.
func (c *Conn) Ssthresh() float64 { return c.ssthresh }

// SRTT returns the smoothed RTT estimate (zero if no sample yet).
func (c *Conn) SRTT() time.Duration { return c.rtt.srtt }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() time.Duration { return c.rtt.current() }

// InFlightBytes returns unacknowledged bytes (Figure 10's metric).
func (c *Conn) InFlightBytes() int { return int(c.sndNxt - c.sndUna) }

// BufferedBytes returns bytes written but not yet transmitted — the
// proxy-side response queue of Figure 8.
func (c *Conn) BufferedBytes() int { return c.sendQueue }

// InSlowStart reports whether the sender is below ssthresh.
func (c *Conn) InSlowStart() bool { return c.cwnd < c.ssthresh }

// SetWritableHook registers fn to be called whenever, after transmission
// opportunities are exhausted, the unsent backlog is at or below
// threshold bytes. The hook may call Write; re-entrant invocations are
// suppressed.
func (c *Conn) SetWritableHook(threshold int, fn func()) {
	c.writableThresh = threshold
	c.writableHook = fn
}

func (c *Conn) fireWritable() {
	if c.writableHook == nil || c.inWritableHook {
		return
	}
	if c.sendQueue > c.writableThresh {
		return
	}
	c.inWritableHook = true
	c.writableHook()
	c.inWritableHook = false
}

// Connect starts the client-side handshake.
func (c *Conn) Connect() {
	if !c.isClient {
		panic("tcpsim: Connect on server endpoint")
	}
	if c.state != stClosed {
		return
	}
	c.state = stSynSent
	syn := c.newSeg()
	syn.Flags = flagSYN
	c.transmit(syn)
	c.armHandshakeRetry()
}

func (c *Conn) armHandshakeRetry() {
	deadline := c.cfg.InitialRTO
	c.loop.After(deadline, func() {
		if c.state == stSynSent {
			syn := c.newSeg()
			syn.Flags = flagSYN
			c.transmit(syn)
			c.armHandshakeRetry()
		}
	})
}

// Write queues n application bytes for transmission.
func (c *Conn) Write(n int) {
	if n <= 0 {
		return
	}
	if c.state == stClosed && c.isClient {
		c.Connect()
	}
	c.BytesSentApp += int64(n)
	c.maybeIdleRestart()
	c.sendQueue += n
	c.trySend()
}

// Close sends a FIN and flushes metrics to the cache.
func (c *Conn) Close() {
	if c.state == stClosing || c.state == stClosed {
		return
	}
	c.storeMetrics()
	c.state = stClosing
	if !c.finSent {
		c.finSent = true
		fin := c.newSeg()
		fin.Flags = flagFIN | flagACK
		fin.Ack = c.rcvNxt
		fin.Wnd = c.recvWindow()
		c.transmit(fin)
	}
}

func (c *Conn) storeMetrics() {
	if c.cfg.Metrics == nil {
		return
	}
	e := MetricsEntry{SRTT: c.rtt.srtt, RTTVar: c.rtt.rttvar}
	if c.ssthresh < 1<<20 {
		e.Ssthresh = c.ssthresh
	}
	if e.SRTT > 0 || e.Ssthresh > 0 {
		c.cfg.Metrics.Store(c.dest, e)
	}
}

// maybeIdleRestart applies Linux congestion-window validation: if the
// connection has been idle (no data sent) for longer than one RTO, the
// cwnd snaps back to the initial window. With ResetRTTAfterIdle the RTT
// estimate is also discarded — the paper's fix.
func (c *Conn) maybeIdleRestart() {
	if c.cfg.NoIdleDemotion || !c.everSent || len(c.infl()) > 0 || c.sendQueue > 0 {
		return
	}
	idle := c.loop.Now().Sub(c.lastDataSend)
	// Compare against the un-backed-off timeout: whether the connection
	// went idle is a property of the path's RTT, not of how many times a
	// timer fired. Using the backed-off RTO here let a connection that
	// had just suffered (possibly spurious) timeouts dodge window
	// validation entirely, because its inflated RTO out-waited the idle
	// gap.
	if idle <= c.rtt.base() {
		return
	}
	if c.cfg.SlowStartAfterIdle {
		if c.cwnd > c.cfg.InitialCwnd {
			c.cwnd = c.cfg.InitialCwnd
		}
		c.cc.Reset()
		c.IdleRestarts++
		c.probe(EvIdleRestart)
	}
	if c.cfg.ResetRTTAfterIdle {
		c.rtt.reset()
		c.probe(EvRTTReset)
	}
}

func (c *Conn) probe(ev ProbeEvent) {
	if c.cfg.Probe == nil {
		return
	}
	c.cfg.Probe.Sample(ProbeSample{
		At:       c.loop.Now(),
		ConnID:   c.id,
		Event:    ev,
		Cwnd:     c.cwnd,
		Ssthresh: c.ssthresh,
		InFlight: c.InFlightBytes(),
		RTOms:    float64(c.rtt.current()) / float64(time.Millisecond),
		SRTTms:   float64(c.rtt.srtt) / float64(time.Millisecond),
	})
}

// infl returns the live window of the inflight deque.
func (c *Conn) infl() []sentSeg { return c.inflight[c.inflHead:] }

// pushInflight appends a segment record, compacting the deque in place
// before the backing array would have to grow.
func (c *Conn) pushInflight(s sentSeg) {
	if len(c.inflight) == cap(c.inflight) && c.inflHead > 0 {
		n := copy(c.inflight, c.inflight[c.inflHead:])
		c.inflight = c.inflight[:n]
		c.inflHead = 0
	}
	c.inflight = append(c.inflight, s)
}

// popInflightFront drops the oldest in-flight segment (it was acked).
func (c *Conn) popInflightFront() {
	c.inflHead++
	if c.inflHead == len(c.inflight) {
		c.inflight = c.inflight[:0]
		c.inflHead = 0
	}
}

// pktsInFlight counts outstanding segments not currently marked lost —
// the quantity congestion control paces against during loss recovery.
func (c *Conn) pktsInFlight() int {
	n := 0
	fl := c.infl()
	for i := range fl {
		if !fl[i].lost && !fl[i].sacked {
			n++
		}
	}
	return n
}

// trySend transmits as much queued data as the congestion and receive
// windows allow. Segments marked lost by a timeout are retransmitted
// first, paced by the (slow-starting) window — Linux's loss recovery —
// then new data follows.
func (c *Conn) trySend() {
	if c.state != stEstablished && c.state != stClosing {
		return
	}
	// Loss recovery: retransmit marked-lost segments as the window opens.
	// The F-RTO window (exactly one ACK since the timeout) holds this
	// back: if the timeout was spurious, the very next ACK will cover an
	// original transmission and cancel the loss marks entirely.
	if (c.caState == caLoss && c.lossAcks != 1) || c.caState == caRecovery {
		fl := c.infl()
		for i := range fl {
			if float64(c.pktsInFlight()) >= c.cwnd {
				break
			}
			if !fl[i].lost || fl[i].sacked {
				continue
			}
			cause := fl[i].lostBy
			fl[i].lost = false
			fl[i].retx = true
			fl[i].sentAt = c.loop.Now()
			c.retransmitSeg(&fl[i])
			c.noteRetransmit(cause)
		}
	}
	c.wasCwndLimited = false
	for c.sendQueue > 0 {
		if float64(c.pktsInFlight()) >= c.cwnd {
			c.wasCwndLimited = true
			break
		}
		payload := c.cfg.MSS
		if payload > c.sendQueue {
			payload = c.sendQueue
		}
		if c.InFlightBytes()+payload > c.peerWnd {
			break
		}
		seg := c.newSeg()
		seg.Flags = flagACK
		seg.Seq = c.sndNxt
		seg.Len = payload
		seg.Ack = c.rcvNxt
		seg.Wnd = c.recvWindow()
		seg.TSVal = c.loop.Now()
		seg.TSEcr = c.tsRecent
		c.sndNxt += uint64(payload)
		c.sendQueue -= payload
		c.pushInflight(sentSeg{seq: seg.Seq, len: payload, sentAt: c.loop.Now()})
		c.ackPiggybacked()
		c.transmit(seg)
		c.lastDataSend = c.loop.Now()
		c.everSent = true
		c.probe(EvSend)
		if !c.rtoTimer.Pending() {
			c.armRTO()
		}
	}
	c.maybeArmTLP()
	c.fireWritable()
}

// newSeg allocates or recycles a segment for transmission.
func (c *Conn) newSeg() *Segment {
	if c.net != nil {
		return c.net.getSeg()
	}
	return &Segment{}
}

func (c *Conn) transmit(seg *Segment) {
	seg.From = c.id
	seg.to = c.peer
	if debugLog != nil {
		debugLog(fmt.Sprintf("%v %s tx seq=%d len=%d ack=%d flags=%d", c.loop.Now(), c.id, seg.Seq, seg.Len, seg.Ack, seg.Flags))
	}
	if !c.out.Send(seg, seg.wireSize()) && c.net != nil {
		c.net.putSeg(seg)
	}
}

func (c *Conn) armRTO() {
	c.rtoTimer.Stop()
	c.rtoTimer = c.loop.After(c.rtt.current(), c.onRTOFn)
}

func (c *Conn) stopRTO() {
	c.rtoTimer.Stop()
}

// onRTO handles a retransmission timeout: collapse the window, back off
// the timer, retransmit the earliest unacknowledged segment. When the
// timeout is spurious — the original segments were merely stalled behind
// a radio promotion — all of this damage was for nothing, which is the
// paper's central finding.
func (c *Conn) onRTO() {
	if len(c.infl()) == 0 {
		return
	}
	c.abortTLP() // conventional timeout recovery owns the flight now
	if c.caState != caLoss {
		// Entering loss: snapshot for a possible DSACK undo, then
		// collapse ssthresh based on the current cwnd.
		c.undoActive = true
		c.undoCwnd = c.cwnd
		c.undoSsthresh = c.ssthresh
		c.undoRetrans = 0
		c.undoEpisode = 0

		c.ssthresh = c.cc.SsthreshAfterLoss(c.cwnd)
		c.cc.OnLoss(c.loop.Now(), c.cwnd)
		c.recoverPoint = c.sndNxt
	}
	c.caState = caLoss
	c.cwnd = 1
	c.dupAcks = 0
	c.lossAcks = 0
	c.Retransmits++

	// Mark every outstanding segment lost (Linux tcp_enter_loss):
	// the first is retransmitted immediately, the rest follow through
	// trySend as ACKs grow the window back.
	fl := c.infl()
	for i := range fl {
		if !fl[i].sacked {
			fl[i].lost = true
			fl[i].lostBy = causeRTO
		}
	}
	first := &fl[0]
	first.lost = false
	first.retx = true
	first.sentAt = c.loop.Now()
	c.retransmitSeg(first)
	c.probe(EvRetransmit)

	c.rtt.backoff()
	c.armRTO()
	if invOn {
		c.checkSender("onRTO")
	}
}

func (c *Conn) retransmitSeg(s *sentSeg) {
	c.retxWire++
	if c.undoActive {
		c.undoRetrans++
		c.undoEpisode++
	}
	seg := c.newSeg()
	seg.Flags = flagACK
	seg.Seq = s.seq
	seg.Len = s.len
	seg.Ack = c.rcvNxt
	seg.Wnd = c.recvWindow()
	seg.Retx = true
	seg.TSVal = c.loop.Now()
	seg.TSEcr = c.tsRecent
	c.transmit(seg)
	c.lastDataSend = c.loop.Now()
}

// handleSegment is the demuxed receive entry point.
func (c *Conn) handleSegment(seg *Segment) {
	switch {
	case seg.Flags&flagSYN != 0 && seg.Flags&flagACK == 0:
		c.handleSYN()
		return
	case seg.Flags&flagSYN != 0 && seg.Flags&flagACK != 0:
		c.handleSYNACK()
		return
	}
	if seg.Flags&flagCTRL != 0 {
		c.handleTLS(seg)
		return
	}
	if c.state == stSynRcvd {
		// First non-SYN segment from the client completes our side.
		c.becomeEstablished()
	}
	if seg.Len > 0 {
		c.receiveData(seg)
		if invOn {
			c.checkReceiver("receiveData")
		}
	}
	if seg.Flags&flagACK != 0 {
		c.receiveAck(seg)
		if invOn {
			c.checkSender("receiveAck")
		}
	}
	if seg.Flags&flagFIN != 0 && !c.finRcvd {
		c.finRcvd = true
		c.sendAckNow()
		if c.onClose != nil {
			c.onClose()
		}
	}
}

func (c *Conn) handleSYN() {
	if c.isClient {
		return // simultaneous open not modeled
	}
	if c.state == stClosed {
		c.state = stSynRcvd
		// Retransmit the SYN-ACK until the handshake completes: if the
		// client's final ACK is lost and the application never sends
		// upstream data, this timer is the only way out of SYN_RCVD.
		var retry func()
		retry = func() {
			if c.state != stSynRcvd {
				return
			}
			c.transmitSynAck()
			c.loop.After(c.cfg.InitialRTO, retry)
		}
		c.loop.After(c.cfg.InitialRTO, retry)
	}
	c.transmitSynAck()
}

func (c *Conn) transmitSynAck() {
	sa := c.newSeg()
	sa.Flags = flagSYN | flagACK
	sa.Wnd = c.recvWindow()
	c.transmit(sa)
}

func (c *Conn) handleSYNACK() {
	if !c.isClient {
		return
	}
	if c.state != stSynSent {
		// Duplicate SYN-ACK: our handshake ACK was lost. Re-ACK so the
		// server can leave SYN_RCVD.
		if c.state == stEstablished || c.state == stClosing {
			ack := c.newSeg()
			ack.Flags = flagACK
			ack.Ack = c.rcvNxt
			ack.Wnd = c.recvWindow()
			c.transmit(ack)
		}
		return
	}
	c.state = stEstablished
	// Handshake ACK.
	hack := c.newSeg()
	hack.Flags = flagACK
	hack.Wnd = c.recvWindow()
	c.transmit(hack)
	if c.cfg.TLS {
		c.tlsStep = 1
		c.transmitCtrl(250) // ClientHello
		return
	}
	c.finishEstablish()
}

func (c *Conn) becomeEstablished() {
	if c.state != stSynRcvd {
		return
	}
	c.state = stEstablished
	if !c.cfg.TLS {
		c.finishEstablish()
	}
}

func (c *Conn) finishEstablish() {
	c.probe(EvEstablished)
	if c.onEstablished != nil {
		fn := c.onEstablished
		c.onEstablished = nil
		fn()
	}
	c.trySend()
}

// handleTLS walks a modeled 2-RTT SSL exchange: ClientHello →
// ServerHello+cert → client Finished → server Finished. Control bytes
// ride the wire (and wake the radio) but occupy no TCP sequence space.
func (c *Conn) handleTLS(seg *Segment) {
	if c.state == stSynRcvd {
		c.state = stEstablished
	}
	if c.isClient {
		switch c.tlsStep {
		case 1: // got ServerHello+cert
			c.tlsStep = 2
			c.transmitCtrl(350) // key exchange + Finished
		case 2: // got server Finished
			c.tlsStep = 3
			c.finishEstablish()
		}
		return
	}
	// Server side.
	switch c.tlsStep {
	case 0: // got ClientHello
		c.tlsStep = 1
		c.transmitCtrl(3000) // ServerHello + certs
	case 1: // got client Finished
		c.tlsStep = 2
		c.transmitCtrl(60) // server Finished
		c.finishEstablish()
	}
}

func (c *Conn) transmitCtrl(n int) {
	seg := c.newSeg()
	seg.Flags = flagCTRL
	seg.CtrlLen = n
	c.transmit(seg)
}

func (c *Conn) recvWindow() int {
	w := c.cfg.RecvBuffer - c.oooBytes
	if w < 0 {
		w = 0
	}
	return w
}

// receiveData handles the receiver half: in-order delivery, out-of-order
// buffering with duplicate detection, delayed ACKs.
func (c *Conn) receiveData(seg *Segment) {
	end := seg.Seq + uint64(seg.Len)
	switch {
	case end <= c.rcvNxt:
		// Entirely old data: the peer retransmitted something we already
		// have. This is the observable signature of a spurious
		// retransmission; report it back as a DSACK.
		c.SpuriousArrivals++
		c.probe(EvSpurious)
		c.pendingDsack = true
		c.sendAckNow()
		return
	case seg.Seq > c.rcvNxt:
		// Hole: buffer and emit an immediate duplicate ACK.
		if _, dup := c.ooo[seg.Seq]; !dup {
			if c.ooo == nil {
				c.ooo = make(map[uint64]int, 8)
			}
			c.ooo[seg.Seq] = seg.Len
			c.oooBytes += seg.Len
		}
		c.sendAckNow()
		return
	}
	// In-order (possibly partially overlapping) delivery.
	c.tsRecent = seg.TSVal
	advance := int(end - c.rcvNxt)
	c.rcvNxt = end
	// Drain contiguous out-of-order buffer.
	for {
		l, ok := c.ooo[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.ooo, c.rcvNxt)
		c.oooBytes -= l
		c.rcvNxt += uint64(l)
		advance += l
	}
	c.BytesRcvdApp += int64(advance)
	// Schedule the ACK before notifying the application: the app may
	// react by writing (e.g. the next HTTP request), whose piggybacked
	// ACK then cancels the pending delayed ACK. Doing this after the
	// callback would leave a stale timer that later fires a duplicate
	// pure ACK — which the peer would count toward fast retransmit.
	//
	// Note RFC 5681's SHOULD for immediately ACKing gap-fills is NOT
	// implemented: the sender's NewReno inflation/deflation model is
	// calibrated against coalesced partial ACKs, and per-fill immediate
	// ACKs defeat its deflation entirely (cwnd -= 1; cwnd++ per ACK),
	// which measurably inflates recovery-time sending on bursty links.
	// What RFC 5681 makes mandatory for the sender's heuristics — that a
	// duplicate ACK is never generated by the delayed-ACK timer — is
	// enforced structurally below (the hole and duplicate branches above
	// send immediately) and audited by the peer in processDupAck.
	c.scheduleAck()
	if c.onDeliver != nil {
		c.onDeliver(advance)
	}
}

// scheduleAck implements delayed ACKs: every second segment immediately,
// otherwise after the delayed-ACK timeout. A pending DSACK must never
// reach this path — duplicate arrivals report it with an immediate ACK,
// and sitting on it would starve the peer's undo accounting.
func (c *Conn) scheduleAck() {
	if invOn && c.pendingDsack {
		c.violateConn("scheduleAck", "delayed-ACK coalescing with a DSACK pending")
	}
	c.segsSinceAck++
	if c.segsSinceAck >= 2 {
		c.sendAckNow()
		return
	}
	if !c.delayedAck.Pending() {
		c.delayedAck = c.loop.After(c.cfg.DelayedAckTimeout, c.delayedAckFn)
	}
}

func (c *Conn) sendAckNow() { c.sendAck(false) }

// sendAck emits a pure ACK; delayed marks it as released by the
// delayed-ACK timer rather than triggered by an arrival, so the peer's
// invariant checker can prove fast retransmit never fires off a
// coalesced ACK.
func (c *Conn) sendAck(delayed bool) {
	c.ackPiggybacked()
	if debugLog != nil {
		debugLog(fmt.Sprintf("%v %s sendAck ack=%d dsack=%v", c.loop.Now(), c.id, c.rcvNxt, c.pendingDsack))
	}
	seg := c.newSeg()
	seg.Flags = flagACK
	seg.Ack = c.rcvNxt
	seg.Wnd = c.recvWindow()
	seg.Dsack = c.pendingDsack
	seg.Sack = c.appendSackBlocks(seg.Sack[:0])
	seg.TSEcr = c.tsRecent
	seg.Delayed = delayed
	c.transmit(seg)
	c.pendingDsack = false
}

// appendSackBlocks summarizes the out-of-order buffer as up to four
// merged byte ranges, ascending — the SACK option of RFC 2018. Blocks
// are appended into dst (the segment's own recycled backing array, never
// shared scratch: the segment is in flight while this endpoint's state
// advances, so it must own its blocks).
func (c *Conn) appendSackBlocks(dst [][2]uint64) [][2]uint64 {
	if len(c.ooo) == 0 {
		return dst[:0]
	}
	seqs := c.sackScratch[:0]
	for seq := range c.ooo {
		seqs = append(seqs, seq)
	}
	c.sackScratch = seqs
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	blocks := dst[:0]
	for _, seq := range seqs {
		end := seq + uint64(c.ooo[seq])
		if n := len(blocks); n > 0 && blocks[n-1][1] == seq {
			blocks[n-1][1] = end
			continue
		}
		blocks = append(blocks, [2]uint64{seq, end})
	}
	if len(blocks) > 4 {
		blocks = blocks[:4]
	}
	return blocks
}

// ackPiggybacked resets delayed-ACK state because an ACK is about to ride
// out (either pure or on a data segment).
func (c *Conn) ackPiggybacked() {
	c.segsSinceAck = 0
	c.delayedAck.Stop()
}

// receiveAck handles the sender half: cumulative ACK processing, RTT
// sampling under Karn's rule, window growth, NewReno recovery.
func (c *Conn) receiveAck(seg *Segment) {
	c.peerWnd = seg.Wnd
	c.applySack(seg)
	if seg.Dsack && c.cfg.TLP && c.tlp.probing && !c.tlp.newData {
		// The duplicate the receiver reports is the probe itself: the
		// original tail arrived, so the open TLP episode is spurious and
		// must resolve without a congestion penalty. Consume the DSACK
		// here — it must not also count toward the undo bookkeeping of a
		// loss episode the probe never opened.
		c.tlp.dsacked = true
	} else if seg.Dsack && c.undoActive && !c.cfg.DisableUndo {
		c.undoRetrans--
		if c.undoRetrans <= 0 {
			c.performUndo()
		}
	}
	if invOn {
		c.checkAckValid(seg)
	}
	ack := seg.Ack
	if ack > c.sndNxt {
		ack = c.sndNxt
	}
	if ack > c.sndUna {
		c.processNewAck(ack, seg)
	} else if ack == c.sndUna && seg.Len == 0 && len(c.infl()) > 0 {
		c.processDupAck(seg)
	}
	// RACK runs after cumulative/SACK processing advanced the
	// delivered-time watermark, and before transmission so trySend can
	// repair anything it marks.
	c.rackOnAck()
	c.trySend()
}

func (c *Conn) processNewAck(ack uint64, seg *Segment) {
	ackedSegs := 0
	ackedOriginal := false
	spuriousTimeout := false
	for {
		fl := c.infl()
		if len(fl) == 0 {
			break
		}
		s := fl[0]
		if s.seq+uint64(s.len) > ack {
			break
		}
		if !s.retx {
			ackedOriginal = true
			if c.cfg.RACK {
				c.rackSeen(s.sentAt, s.seq+uint64(s.len))
			}
			if s.lost {
				// F-RTO: the ACK covers a segment we marked lost but
				// never retransmitted — the original made it through, so
				// the timeout was spurious.
				spuriousTimeout = true
			}
		} else if c.cfg.RACK && seg.TSEcr > 0 && seg.TSEcr >= s.sentAt {
			// Retransmission proven delivered by its timestamp echo
			// (RFC 8985 §6.1): it advances the delivery watermark too.
			c.rackSeen(s.sentAt, s.seq+uint64(s.len))
		}
		c.popInflightFront()
		ackedSegs++
	}
	if spuriousTimeout {
		// Stop the go-back-N: nothing was actually lost.
		fl := c.infl()
		for i := range fl {
			fl[i].lost = false
		}
		if c.frtoEligible() {
			c.frtoUndo()
		}
	}
	c.sndUna = ack
	// Karn's rule (RFC 6298 §5): an ACK covering only retransmitted data
	// is ambiguous — it may acknowledge the original rather than the
	// copy — so without further evidence it must neither feed the
	// estimator nor clear the exponential backoff. A timestamp echo is
	// that further evidence (RFC 7323 §4): TSEcr names the transmission
	// that triggered the ACK, so the measured interval is one true round
	// trip regardless of retransmission — including any radio promotion
	// stall the segment sat through, which is how the paper's RTO "grows
	// large enough to accommodate the increased round trip time"
	// (§5.5.1).
	tsValid := seg.TSEcr > 0
	if ackedOriginal || tsValid {
		c.rtt.progress()
	}
	if tsValid {
		c.rtt.sample(c.loop.Now().Sub(seg.TSEcr))
	}
	c.resolveTLP(ack, seg)

	switch c.caState {
	case caOpen:
		c.growWindow(ackedSegs)
	case caRecovery:
		if ack >= c.recoverPoint {
			c.cwnd = c.ssthresh
			c.caState = caOpen
			c.dupAcks = 0
			c.cc.OnExitRecovery(c.loop.Now(), c.cwnd)
		} else {
			// NewReno partial ACK: retransmit the next hole, deflate. A
			// head already marked lost is owned by the paced recovery
			// loop in trySend — retransmitting it here as well would
			// bypass the pacing once per partial ACK, double the repair
			// machinery, and (with a receiver that correctly ACKs every
			// gap-fill immediately) flood the bad state of a bursty link
			// with unpaced copies.
			if fl := c.infl(); len(fl) > 0 && !fl[0].retx && !fl[0].lost {
				fl[0].retx = true
				fl[0].sentAt = c.loop.Now()
				c.retransmitSeg(&fl[0])
				c.FastRetransmits++
				c.probe(EvFastRetx)
			}
			c.cwnd -= float64(ackedSegs)
			if c.cwnd < 1 {
				c.cwnd = 1
			}
			c.cwnd++
		}
	case caLoss:
		c.lossAcks++
		c.growWindow(ackedSegs)
		if ack >= c.recoverPoint {
			c.caState = caOpen
			c.dupAcks = 0
		}
	}

	c.probe(EvAck)
	if len(c.infl()) == 0 {
		c.stopRTO()
		c.abortTLP()
	} else {
		c.armRTO()
		c.maybeArmTLP()
	}
}

// applySack marks inflight segments held by the receiver and infers
// losses: an unsacked segment with sacked data above it has been passed
// over on the wire (RFC 6675 reordering threshold, simplified), so it is
// queued for retransmission through the recovery path.
func (c *Conn) applySack(ack *Segment) {
	blocks := ack.Sack
	if len(blocks) == 0 {
		return
	}
	var highest uint64
	fl := c.infl()
	for _, b := range blocks {
		if b[1] > highest {
			highest = b[1]
		}
		for i := range fl {
			sg := &fl[i]
			if !sg.sacked && sg.seq >= b[0] && sg.seq+uint64(sg.len) <= b[1] {
				sg.sacked = true
				sg.lost = false
				// RACK delivery watermark: originals always advance it.
				// A SACKed retransmission is ambiguous under Karn's rule
				// — the SACK may be for the original — so it advances
				// the watermark only when the timestamp echo names the
				// copy, or when a full reordering window has elapsed
				// since the copy went out (Linux tcp_rack_advance's
				// too-low-RTT guard, inverted): an out-of-order ACK
				// does not refresh tsRecent, so elapsed time is the
				// usable disambiguator for SACKed tail-loss probes.
				if c.cfg.RACK && (!sg.retx ||
					(ack.TSEcr > 0 && ack.TSEcr >= sg.sentAt) ||
					c.loop.Now().Sub(sg.sentAt) >= c.rackReoWnd()) {
					c.rackSeen(sg.sentAt, sg.seq+uint64(sg.len))
				}
			}
		}
	}
	if c.caState == caOpen {
		return
	}
	// Loss inference only inside a recovery episode: holes below the
	// highest sacked byte are marked lost so the recovery loop repairs
	// them paced by cwnd, instead of one hole per RTT.
	for i := range fl {
		sg := &fl[i]
		if !sg.sacked && !sg.retx && sg.seq+uint64(sg.len) <= highest {
			sg.lost = true
			sg.lostBy = causeRTO
		}
	}
}

// performUndo rolls back a loss episode after DSACKs proved every
// retransmission unnecessary (the radio promotion stalled the originals;
// nothing was lost). The congestion window is restored, but — matching
// what the paper observes in Figure 12, where ssthresh stays depressed
// after a spurious timeout and the connection crawls through congestion
// avoidance — the collapsed ssthresh is left in place. That lasting
// damage is exactly what the §6.2.1 RTT-reset fix removes.
func (c *Conn) performUndo() {
	c.undoActive = false
	fl := c.infl()
	for i := range fl {
		fl[i].lost = false
	}
	if c.cwnd < c.undoCwnd {
		c.cwnd = c.undoCwnd
	}
	// A short episode (one spurious timeout plus at most one backoff)
	// undoes fully, ssthresh included — Figure 12's "ssthresh grows back
	// quickly". Longer backoff chains leave ssthresh collapsed (repeated
	// timeouts stop re-saving prior_ssthresh in Linux), which is the
	// lasting damage the §6.2.1 fix removes.
	if c.undoEpisode <= 2 && c.undoSsthresh > c.ssthresh {
		c.ssthresh = c.undoSsthresh
	}
	c.caState = caOpen
	c.dupAcks = 0
	c.Undos++
	c.probe(EvUndo)
	c.trySend()
}

func (c *Conn) growWindow(ackedSegs int) {
	if ackedSegs <= 0 {
		return
	}
	// Congestion window validation (RFC 7661): only grow while the
	// window was actually the limiting factor in the last transmission
	// round. Without this, cwnd grows without bound while the receive
	// window or the application caps transmission — the paper's Table 2
	// max cwnd (197 segments ≈ the client's receive buffer) reflects
	// exactly this behaviour.
	if !c.wasCwndLimited {
		return
	}
	if c.cwnd < c.ssthresh {
		// Slow start: one segment per ACKed segment.
		c.cwnd += float64(ackedSegs)
		if c.cwnd > c.ssthresh && c.caState == caOpen {
			c.cwnd = c.ssthresh + c.cc.OnAckCA(c.loop.Now(), c.ssthresh, ackedSegs, c.rtt.srtt)
		}
		return
	}
	c.cwnd += c.cc.OnAckCA(c.loop.Now(), c.cwnd, ackedSegs, c.rtt.srtt)
}

func (c *Conn) processDupAck(seg *Segment) {
	c.dupAcks++
	if debugLog != nil {
		debugLog(fmt.Sprintf("%v %s dupack#%d una=%d nxt=%d inflight=%d ca=%d",
			c.loop.Now(), c.id, c.dupAcks, c.sndUna, c.sndNxt, len(c.infl()), c.caState))
	}
	switch c.caState {
	case caOpen:
		if c.dupAcks >= 3 {
			c.checkNotCoalesced(seg, "fast-retransmit")
			// Fast retransmit + fast recovery.
			c.undoActive = true
			c.undoCwnd = c.cwnd
			c.undoSsthresh = c.ssthresh
			c.undoRetrans = 0
			c.undoEpisode = 0

			c.ssthresh = c.cc.SsthreshAfterLoss(c.cwnd)
			c.cc.OnLoss(c.loop.Now(), c.cwnd)
			c.recoverPoint = c.sndNxt
			c.caState = caRecovery
			c.cwnd = c.ssthresh + 3
			if fl := c.infl(); len(fl) > 0 {
				fl[0].retx = true
				fl[0].sentAt = c.loop.Now()
				c.retransmitSeg(&fl[0])
			}
			c.FastRetransmits++
			c.probe(EvFastRetx)
			c.armRTO()
		}
	case caRecovery:
		// Window inflation: each dup ACK signals a departed segment.
		c.cwnd++
	case caLoss:
		// Duplicate ACKs during timeout recovery mean the receiver is
		// taking delivery beyond the hole (out-of-order buffering), so
		// the hole — original and any retransmission — was lost. Repair
		// it on every third dupACK instead of waiting out the RTO
		// backoff, as SACK-based Linux recovery effectively does.
		fl := c.infl()
		if c.dupAcks%3 == 0 && len(fl) > 0 && !fl[0].sacked {
			c.checkNotCoalesced(seg, "loss-dupack-repair")
			first := &fl[0]
			// Only re-send the hole if it hasn't been retransmitted
			// within roughly one RTT — the copy may still be in flight.
			rtt := c.rtt.srtt
			if rtt <= 0 {
				rtt = c.cfg.MinRTO
			}
			if !first.retx || c.loop.Now().Sub(first.sentAt) > rtt {
				first.lost = false
				first.retx = true
				first.sentAt = c.loop.Now()
				c.retransmitSeg(first)
				c.FastRetransmits++
				c.probe(EvFastRetx)
				c.armRTO()
			}
		}
	}
}

// String renders a compact state summary for debugging.
func (c *Conn) String() string {
	return fmt.Sprintf("%s state=%d cwnd=%.1f ssthresh=%.1f una=%d nxt=%d q=%d inflight=%d",
		c.id, c.state, c.cwnd, c.ssthresh, c.sndUna, c.sndNxt, c.sendQueue, len(c.infl()))
}
