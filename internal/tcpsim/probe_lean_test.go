package tcpsim

import (
	"fmt"
	"reflect"
	"testing"

	"spdier/internal/sim"
)

// probeStream synthesizes a realistic mixed event stream: ACK/send trains
// on a few connections with rare events sprinkled in.
func probeStream() []ProbeSample {
	var out []ProbeSample
	for i := 0; i < 400; i++ {
		conn := fmt.Sprintf("conn%d", i%3)
		ev := EvAck
		switch {
		case i%97 == 5:
			ev = EvRetransmit
		case i%61 == 7:
			ev = EvFastRetx
		case i%131 == 11:
			ev = EvSpurious
		case i%50 == 0:
			ev = EvEstablished
		case i%2 == 1:
			ev = EvSend
		}
		out = append(out, ProbeSample{
			At:     sim.Time(i) * sim.Time(1e6),
			ConnID: conn,
			Event:  ev,
			Cwnd:   float64(2 + i%40),
			RTOms:  200,
			SRTTms: float64(50 + i%10),
		})
	}
	return out
}

// TestRareOnlyAggregatesExact: the rare-only recorder must report the
// same counts and cwnd aggregates as a full recorder, and retain exactly
// the non-bulk samples.
func TestRareOnlyAggregatesExact(t *testing.T) {
	full := NewRecorder()
	lean := NewRecorderRareOnly()
	for _, s := range probeStream() {
		full.Sample(s)
		lean.Sample(s)
	}
	if full.TotalSamples() != lean.TotalSamples() {
		t.Fatalf("total: full %d lean %d", full.TotalSamples(), lean.TotalSamples())
	}
	for _, ev := range Events() {
		if full.Count(ev) != lean.Count(ev) {
			t.Errorf("count[%s]: full %d lean %d", ev, full.Count(ev), lean.Count(ev))
		}
	}
	if full.Retransmissions() != lean.Retransmissions() {
		t.Errorf("retx: full %d lean %d", full.Retransmissions(), lean.Retransmissions())
	}
	if full.MeanCwnd() != lean.MeanCwnd() {
		t.Errorf("mean cwnd: full %g lean %g", full.MeanCwnd(), lean.MeanCwnd())
	}
	if full.MaxCwnd() != lean.MaxCwnd() {
		t.Errorf("max cwnd: full %g lean %g", full.MaxCwnd(), lean.MaxCwnd())
	}
	if !lean.RareOnly() {
		t.Errorf("RareOnly() = false on rare-only recorder")
	}

	// The lean store holds exactly the full store's non-bulk samples, in
	// the same order.
	var wantRare []ProbeSample
	full.Each(func(s ProbeSample) bool {
		if s.Event != EvAck && s.Event != EvSend {
			wantRare = append(wantRare, s)
		}
		return true
	})
	var gotRare []ProbeSample
	lean.Each(func(s ProbeSample) bool {
		gotRare = append(gotRare, s)
		return true
	})
	if !reflect.DeepEqual(gotRare, wantRare) {
		t.Fatalf("rare retention mismatch: got %d samples, want %d", len(gotRare), len(wantRare))
	}
	if lean.Len() >= full.Len() {
		t.Fatalf("rare-only should retain less: lean %d full %d", lean.Len(), full.Len())
	}
}

type captureConsumer struct{ seen []ProbeSample }

func (c *captureConsumer) Consume(s ProbeSample) { c.seen = append(c.seen, s) }

// TestConsumerSeesEverySample: the tee observes the full offered stream
// even when the recorder itself retains nothing bulk.
func TestConsumerSeesEverySample(t *testing.T) {
	stream := probeStream()
	for _, mk := range []func() *Recorder{NewRecorderRareOnly, func() *Recorder { return NewRecorderStride(16) }} {
		r := mk()
		var c captureConsumer
		r.SetConsumer(&c)
		for _, s := range stream {
			r.Sample(s)
		}
		if !reflect.DeepEqual(c.seen, stream) {
			t.Fatalf("consumer saw %d samples, want %d (stride=%d rareOnly=%v)",
				len(c.seen), len(stream), r.Stride(), r.RareOnly())
		}
		r.SetConsumer(nil)
		r.Sample(stream[0])
		if len(c.seen) != len(stream) {
			t.Fatalf("nil consumer still receiving")
		}
	}
}
