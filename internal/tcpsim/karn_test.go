package tcpsim

import (
	"testing"
	"time"

	"spdier/internal/sim"
)

// Karn's rule audit (RFC 6298 §5.3): an ACK that covers only
// retransmitted data is ambiguous — it may acknowledge the original
// transmission rather than the copy — so unless a timestamp echo
// disambiguates it, it must neither feed the RTT estimator nor clear
// the exponential backoff. Every ACK the simulated receiver generates
// carries a timestamp echo (the model always negotiates RFC 7323), so
// the no-timestamp arm of the rule is only reachable with hand-crafted
// segments; these tests build them directly against an established,
// quiescent connection.

// karnWorld returns an established server conn with a warm RTT
// estimate, an empty flight, and three levels of RTO backoff applied —
// the state a timeout storm leaves behind.
func karnWorld(t *testing.T) (*testWorld, *Conn) {
	t.Helper()
	w := newWorld(cleanPath(), 5)
	client, server := w.net.NewConnPair(DefaultConfig(), DefaultConfig(), "karn", "d")
	client.OnDeliver(func(int) {})
	client.OnEstablished(func() { server.Write(20_000) })
	client.Connect()
	w.loop.Run(5 * sim.Second)
	if client.BytesRcvdApp != 20_000 {
		t.Fatalf("warmup incomplete: %d", client.BytesRcvdApp)
	}
	if len(server.infl()) != 0 || !server.rtt.valid {
		t.Fatalf("warmup left dirty state: inflight=%d valid=%v", len(server.infl()), server.rtt.valid)
	}
	server.rtt.backoffN = 3
	return w, server
}

// karnAck injects a hand-built pure ACK for everything in flight.
func karnAck(w *testWorld, c *Conn, tsecr sim.Time) {
	seg := &Segment{
		Flags: flagACK,
		Ack:   c.sndNxt,
		Wnd:   c.cfg.RecvBuffer,
		TSVal: w.loop.Now(),
		TSEcr: tsecr,
	}
	c.receiveAck(seg)
}

// TestKarnRetxOnlyAckKeepsBackoffAndEstimate: without a timestamp echo,
// an ACK covering nothing but a retransmission proves only that the
// copy (or the original — unknowable) arrived. Backoff must survive and
// the estimator must not take a sample.
func TestKarnRetxOnlyAckKeepsBackoffAndEstimate(t *testing.T) {
	w, server := karnWorld(t)
	srtt := server.rtt.srtt

	server.pushInflight(sentSeg{seq: server.sndUna, len: 1000, sentAt: w.loop.Now(), retx: true})
	server.sndNxt += 1000
	karnAck(w, server, 0)

	if server.sndUna != server.sndNxt {
		t.Fatalf("ACK not applied: una=%d nxt=%d", server.sndUna, server.sndNxt)
	}
	if server.rtt.backoffN != 3 {
		t.Fatalf("ambiguous ACK cleared backoff: backoffN=%d", server.rtt.backoffN)
	}
	if server.rtt.srtt != srtt {
		t.Fatalf("ambiguous ACK fed the estimator: srtt %v -> %v", srtt, server.rtt.srtt)
	}
}

// TestKarnOriginalAckClearsBackoff: covering a never-retransmitted
// segment is unambiguous forward progress — backoff clears even without
// a timestamp echo (Linux clears icsk_backoff on any snd_una advance by
// original data), though the estimator still waits for a timestamped
// sample.
func TestKarnOriginalAckClearsBackoff(t *testing.T) {
	w, server := karnWorld(t)
	srtt := server.rtt.srtt

	server.pushInflight(sentSeg{seq: server.sndUna, len: 1000, sentAt: w.loop.Now()})
	server.sndNxt += 1000
	karnAck(w, server, 0)

	if server.rtt.backoffN != 0 {
		t.Fatalf("original-data ACK left backoff: backoffN=%d", server.rtt.backoffN)
	}
	if server.rtt.srtt != srtt {
		t.Fatalf("un-timestamped ACK fed the estimator: srtt %v -> %v", srtt, server.rtt.srtt)
	}
}

// TestKarnTimestampDisambiguatesRetx: a timestamp echo stamping the
// retransmission itself lifts the ambiguity (RFC 7323 §4) — the ACK
// both clears backoff and yields one true RTT sample, which is how a
// promotion-stalled retransmission teaches the estimator the new path
// RTT (the paper's §5.5.1 accommodation).
func TestKarnTimestampDisambiguatesRetx(t *testing.T) {
	w, server := karnWorld(t)
	srtt := server.rtt.srtt

	sentAt := w.loop.Now()
	server.pushInflight(sentSeg{seq: server.sndUna, len: 1000, sentAt: sentAt, retx: true})
	server.sndNxt += 1000
	// The echo names the copy: TSEcr equals the retransmission's send
	// time, and the "measured" interval is 80 ms.
	w.loop.At(w.loop.Now().Add(80*time.Millisecond), func() {
		karnAck(w, server, sentAt)
	})
	w.loop.Run(sim.Forever)

	if server.rtt.backoffN != 0 {
		t.Fatalf("disambiguated ACK left backoff: backoffN=%d", server.rtt.backoffN)
	}
	if server.rtt.srtt == srtt {
		t.Fatal("disambiguated ACK did not feed the estimator")
	}
	want := (7*srtt + 80*time.Millisecond) / 8
	if server.rtt.srtt != want {
		t.Fatalf("srtt %v, want %v (sample = ACK delay, not original send)", server.rtt.srtt, want)
	}
}
