package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 core) used everywhere the simulator needs randomness.
// It is seedable and cheap to fork, so every experiment run is
// reproducible from a single root seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed zero is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9E3779B97F4A7C15}
}

// Fork derives an independent generator from this one. The derived stream
// is a deterministic function of the parent state and label.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xBF58476D1CE4E5B9))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns a normally distributed float with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normally distributed float parameterized by the
// desired median and a shape sigma (sigma of the underlying normal).
func (r *RNG) LogNorm(median, sigma float64) float64 {
	return median * math.Exp(r.Norm(0, sigma))
}

// Exp returns an exponentially distributed float with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
