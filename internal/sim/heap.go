package sim

// heapSched is the 4-ary heap scheduler ordered by (at, seq) — the
// original event queue, retained behind the scheduler interface so
// differential tests can diff wheel-vs-heap event orderings directly.
//
// A 4-ary layout halves the tree depth of a binary heap; combined with
// inline keys this makes sift operations short, branch-predictable loops
// over one contiguous slice. slots[id].pos tracks each entry's heap index
// so cancel can remove an arbitrary entry in O(log n).
type heapSched struct {
	l    *Loop
	heap []heapEntry
}

// heapEntry is one 4-ary heap element. The ordering key (at, seq) is
// stored inline so sifting never chases the slot pool.
type heapEntry struct {
	at  Time
	seq uint64
	id  int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *heapSched) schedule(at Time, seq uint64, id int32) {
	h.heap = append(h.heap, heapEntry{at: at, seq: seq, id: id})
	h.siftUp(len(h.heap) - 1)
}

func (h *heapSched) cancel(id int32) {
	h.remove(int(h.l.slots[id].pos))
}

func (h *heapSched) pending() int { return len(h.heap) }

func (h *heapSched) release() { h.heap = nil }

func (h *heapSched) run(deadline Time) Time {
	l := h.l
	for len(h.heap) > 0 && !l.stopped {
		e := h.heap[0]
		if e.at > deadline {
			l.now = deadline
			return l.now
		}
		fn := l.slots[e.id].fn
		h.remove(0)
		l.freeSlot(e.id)
		if e.at > l.now {
			l.now = e.at
		}
		l.fired++
		fn()
	}
	if deadline != Forever && l.now < deadline && len(h.heap) == 0 {
		l.now = deadline
	}
	return l.now
}

// remove deletes the entry at index i, preserving heap order.
func (h *heapSched) remove(i int) {
	n := len(h.heap) - 1
	last := h.heap[n]
	h.heap = h.heap[:n]
	if i == n {
		return
	}
	h.heap[i] = last
	h.l.slots[last.id].pos = int32(i)
	if i > 0 && entryLess(last, h.heap[(i-1)>>2]) {
		h.siftUp(i)
	} else {
		h.siftDown(i)
	}
}

func (h *heapSched) siftUp(i int) {
	hp := h.heap
	e := hp[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(e, hp[p]) {
			break
		}
		hp[i] = hp[p]
		h.l.slots[hp[i].id].pos = int32(i)
		i = p
	}
	hp[i] = e
	h.l.slots[e.id].pos = int32(i)
}

func (h *heapSched) siftDown(i int) {
	hp := h.heap
	n := len(hp)
	e := hp[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(hp[j], hp[m]) {
				m = j
			}
		}
		if !entryLess(hp[m], e) {
			break
		}
		hp[i] = hp[m]
		h.l.slots[hp[i].id].pos = int32(i)
		i = m
	}
	hp[i] = e
	h.l.slots[e.id].pos = int32(i)
}
