package sim

import (
	"fmt"
	"testing"
	"time"
)

// bothSchedulers runs fn once per scheduler so every edge case below is
// pinned on the wheel and the heap alike.
func bothSchedulers(t *testing.T, fn func(t *testing.T, s Scheduler)) {
	t.Helper()
	for _, s := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		t.Run(s.String(), func(t *testing.T) { fn(t, s) })
	}
}

// TestWheelStopThenFireSameBatch schedules several events at one
// timestamp and has the first fired callback stop a later one in the
// same batch. The stopped event must not fire even though it was already
// detached into the in-flight batch when Stop ran.
func TestWheelStopThenFireSameBatch(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		var fired []int
		var victim Timer
		loop.At(100, func() {
			fired = append(fired, 0)
			if !victim.Stop() {
				t.Error("Stop of same-batch pending timer reported false")
			}
		})
		victim = loop.At(100, func() { fired = append(fired, 1) })
		loop.At(100, func() { fired = append(fired, 2) })
		loop.RunUntilIdle()
		want := []int{0, 2}
		if fmt.Sprint(fired) != fmt.Sprint(want) {
			t.Fatalf("fired %v, want %v", fired, want)
		}
		if got := loop.Fired(); got != 2 {
			t.Fatalf("Fired() = %d, want 2", got)
		}
		if loop.Pending() != 0 {
			t.Fatalf("Pending() = %d after idle, want 0", loop.Pending())
		}
	})
}

// TestWheelRescheduleInCallback has a callback stop its sibling and
// reschedule the same logical work later, including rescheduling at the
// current instant (which must join the tail of the running batch).
func TestWheelRescheduleInCallback(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		var trace []string
		var later Timer
		loop.At(50, func() {
			trace = append(trace, "first@"+loop.Now().String())
			later.Stop()
			// Reschedule at the same instant: must fire within this
			// same tick, after already-queued same-time events.
			loop.At(50, func() { trace = append(trace, "requeued@"+loop.Now().String()) })
			loop.At(200, func() { trace = append(trace, "moved@"+loop.Now().String()) })
		})
		later = loop.At(120, func() { trace = append(trace, "later") })
		loop.At(50, func() { trace = append(trace, "second@"+loop.Now().String()) })
		loop.RunUntilIdle()
		want := "[first@50ns second@50ns requeued@50ns moved@200ns]"
		if got := fmt.Sprint(trace); got != want {
			t.Fatalf("trace %s, want %s", got, want)
		}
	})
}

// TestWheelSameTimestampSeqAcrossBuckets pins (time, seq) ordering when
// equal-time events enter the wheel through different buckets: one
// scheduled far ahead (landing in a high level, later split down) and
// one scheduled for the same instant from a callback running just before
// it (landing directly in level 0). Sequence order must still win.
func TestWheelSameTimestampSeqAcrossBuckets(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		const target = Time(1 << 20) // well beyond level 0's 64 ns span
		var fired []string
		// seq 1: placed from t=0, lands in a high-level bucket.
		loop.At(target, func() { fired = append(fired, "early-sched") })
		// seq 2: a callback one tick before target schedules for target;
		// by then cur is close enough that it lands in a low bucket.
		loop.At(target-1, func() {
			loop.At(target, func() { fired = append(fired, "late-sched") })
		})
		loop.RunUntilIdle()
		want := "[early-sched late-sched]"
		if got := fmt.Sprint(fired); got != want {
			t.Fatalf("fired %s, want %s (seq order must survive bucket geometry)", got, want)
		}
	})
}

// TestWheelForeverNeverCascades parks an event at t=Forever behind a
// normal workload. The sentinel must sit in the overflow bucket without
// ever being cascaded or blocking progress, and a deadline-bounded Run
// must not fire it.
func TestWheelForeverNeverCascades(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		foreverFired := false
		tm := loop.At(Forever, func() { foreverFired = true })
		count := 0
		for i := 1; i <= 100; i++ {
			loop.At(Time(i)*Time(time.Millisecond), func() { count++ })
		}
		loop.Run(Time(200 * time.Millisecond))
		if count != 100 {
			t.Fatalf("fired %d normal events, want 100", count)
		}
		if foreverFired {
			t.Fatal("Forever-scheduled event fired during bounded run")
		}
		if !tm.Pending() {
			t.Fatal("Forever-scheduled event no longer pending")
		}
		if got := loop.Now(); got != Time(200*time.Millisecond) {
			t.Fatalf("Now() = %v, want 200ms", got)
		}
		// An unbounded run does fire it — Forever is a timestamp, not a
		// tombstone — and both schedulers agree.
		loop.RunUntilIdle()
		if !foreverFired {
			t.Fatal("Forever-scheduled event never fired under RunUntilIdle")
		}
		if got := loop.Now(); got != Forever {
			t.Fatalf("Now() = %v after firing Forever event, want forever", got)
		}
	})
}

// TestWheelDeadlineResume runs to a deadline that lands between events,
// asserts the clock parks exactly there, then resumes and checks nothing
// was lost or reordered by the pause.
func TestWheelDeadlineResume(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		var fired []Time
		for _, at := range []Time{10, 1000, 70_000, 5_000_000} {
			at := at
			loop.At(at, func() { fired = append(fired, at) })
		}
		loop.Run(500)
		if got := fmt.Sprint(fired); got != "[10ns]" {
			t.Fatalf("fired %s before deadline 500, want [10ns]", got)
		}
		if loop.Now() != 500 {
			t.Fatalf("Now() = %v at deadline, want 500ns", loop.Now())
		}
		// Schedule more work from the paused state, below and above the
		// already-queued horizon.
		loop.At(600, func() { fired = append(fired, 600) })
		loop.RunUntilIdle()
		want := "[10ns 600ns 1µs 70µs 5ms]"
		if got := fmt.Sprint(fired); got != want {
			t.Fatalf("fired %s, want %s", got, want)
		}
	})
}

// TestWheelStopMidBatchResume stops the loop from inside a same-time
// batch; the untouched remainder of the batch must survive and fire, in
// seq order, on the next Run.
func TestWheelStopMidBatchResume(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		var fired []int
		for i := 0; i < 6; i++ {
			i := i
			loop.At(1000, func() {
				fired = append(fired, i)
				if i == 2 {
					loop.Stop()
				}
			})
		}
		loop.RunUntilIdle()
		if got := fmt.Sprint(fired); got != "[0 1 2]" {
			t.Fatalf("fired %s after Stop, want [0 1 2]", got)
		}
		if got := loop.Pending(); got != 3 {
			t.Fatalf("Pending() = %d after mid-batch stop, want 3", got)
		}
		loop.RunUntilIdle()
		if got := fmt.Sprint(fired); got != "[0 1 2 3 4 5]" {
			t.Fatalf("fired %s after resume, want [0 1 2 3 4 5]", got)
		}
	})
}

// TestWheelReleaseMidBatch releases the loop (epoch bump + arena drop)
// and checks stale handles are inert and the loop stays usable.
func TestWheelReleaseReuse(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		stale := loop.At(500, func() { t.Error("released event fired") })
		loop.At(900, func() { t.Error("released event fired") })
		loop.Release()
		if stale.Pending() {
			t.Fatal("stale handle Pending after Release")
		}
		if stale.Stop() {
			t.Fatal("stale handle Stop reported true after Release")
		}
		if loop.Pending() != 0 {
			t.Fatalf("Pending() = %d after Release, want 0", loop.Pending())
		}
		ok := false
		loop.At(1200, func() { ok = true })
		loop.RunUntilIdle()
		if !ok {
			t.Fatal("loop unusable after Release")
		}
	})
}

// traceEvent is one firing observed by the differential workload.
type traceEvent struct {
	at    Time
	label int
}

// runScheduleWorkload drives one pseudo-random schedule/stop/reschedule
// workload against a loop and returns the full firing trace. The
// workload exercises every wheel path: dense same-timestamp batches,
// far-future events that cascade through multiple levels, cancels of
// queued and in-flight timers, nested scheduling from callbacks, and
// deadline-bounded run segments.
func runScheduleWorkload(s Scheduler, seed uint64) ([]traceEvent, uint64) {
	loop := NewLoopWith(s)
	rng := NewRNG(seed)
	var trace []traceEvent
	var live []Timer
	label := 0

	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := label
		label++
		return func() {
			trace = append(trace, traceEvent{at: loop.Now(), label: id})
			if depth >= 3 {
				return
			}
			// From inside a callback, sometimes schedule more work —
			// including same-instant events and far-horizon events —
			// and sometimes stop a random live timer.
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				var d Time
				switch rng.Intn(4) {
				case 0:
					d = 0 // same tick: joins the running batch
				case 1:
					d = Time(rng.Intn(64)) // same level-0 span
				case 2:
					d = Time(rng.Intn(1 << 14)) // mid levels
				default:
					d = Time(rng.Intn(1 << 30)) // deep levels / overflow
				}
				live = append(live, loop.At(loop.Now()+d, spawn(depth+1)))
			}
			if len(live) > 0 && rng.Bool(0.3) {
				live[rng.Intn(len(live))].Stop()
			}
		}
	}

	for i := 0; i < 200; i++ {
		live = append(live, loop.At(Time(rng.Intn(1<<22)), spawn(0)))
	}
	// Alternate bounded runs (pausing mid-workload) with more external
	// scheduling, then drain.
	for _, frac := range []Time{1 << 18, 1 << 20, 1 << 21} {
		loop.Run(frac)
		for i := 0; i < 20; i++ {
			live = append(live, loop.At(loop.Now()+Time(rng.Intn(1<<22)), spawn(0)))
		}
	}
	loop.RunUntilIdle()
	return trace, loop.Fired()
}

// TestSchedulerDifferentialRandom replays identical seeded workloads
// through the heap and the wheel and requires bit-identical firing
// traces (timestamp and label of every callback, in order) and Fired()
// counts. Labels are assigned in seq order, so trace equality pins the
// (time, seq) contract across every bucket/cascade/cancel path the
// workload touches.
func TestSchedulerDifferentialRandom(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			heapTrace, heapFired := runScheduleWorkload(SchedulerHeap, seed)
			wheelTrace, wheelFired := runScheduleWorkload(SchedulerWheel, seed)
			if heapFired != wheelFired {
				t.Fatalf("Fired(): heap %d, wheel %d", heapFired, wheelFired)
			}
			if len(heapTrace) != len(wheelTrace) {
				t.Fatalf("trace length: heap %d, wheel %d", len(heapTrace), len(wheelTrace))
			}
			for i := range heapTrace {
				if heapTrace[i] != wheelTrace[i] {
					t.Fatalf("trace[%d]: heap %+v, wheel %+v", i, heapTrace[i], wheelTrace[i])
				}
			}
		})
	}
}

// TestWheelPendingAcrossLevels cross-checks Pending() bookkeeping while
// timers spread over every level are scheduled, cancelled and fired.
func TestWheelPendingAcrossLevels(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, s Scheduler) {
		loop := NewLoopWith(s)
		var timers []Timer
		// One timer per level span, plus overflow.
		for _, at := range []Time{3, 200, 9000, 1 << 19, 1 << 25, 1 << 31, 1 << 40} {
			timers = append(timers, loop.At(at, func() {}))
		}
		if got := loop.Pending(); got != len(timers) {
			t.Fatalf("Pending() = %d, want %d", got, len(timers))
		}
		// Cancel every other one.
		cancelled := 0
		for i := 0; i < len(timers); i += 2 {
			if timers[i].Stop() {
				cancelled++
			}
		}
		if got := loop.Pending(); got != len(timers)-cancelled {
			t.Fatalf("Pending() = %d after cancels, want %d", got, len(timers)-cancelled)
		}
		loop.RunUntilIdle()
		if got := loop.Pending(); got != 0 {
			t.Fatalf("Pending() = %d after drain, want 0", got)
		}
		if got := loop.Fired(); got != uint64(len(timers)-cancelled) {
			t.Fatalf("Fired() = %d, want %d", got, len(timers)-cancelled)
		}
	})
}
