package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	loop := NewLoop()
	var got []int
	loop.After(30*time.Millisecond, func() { got = append(got, 3) })
	loop.After(10*time.Millisecond, func() { got = append(got, 1) })
	loop.After(20*time.Millisecond, func() { got = append(got, 2) })
	loop.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if loop.Now() != Time(30*time.Millisecond) {
		t.Fatalf("clock %v", loop.Now())
	}
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	loop := NewLoop()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		loop.At(Time(5*time.Millisecond), func() { got = append(got, i) })
	}
	loop.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestTimerStop(t *testing.T) {
	loop := NewLoop()
	fired := false
	tm := loop.After(10*time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	loop.RunUntilIdle()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunDeadlineStopsClock(t *testing.T) {
	loop := NewLoop()
	fired := false
	loop.After(100*time.Millisecond, func() { fired = true })
	end := loop.Run(Time(50 * time.Millisecond))
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	if end != Time(50*time.Millisecond) {
		t.Fatalf("clock %v, want 50ms", end)
	}
	// Resuming runs the remaining event.
	loop.RunUntilIdle()
	if !fired {
		t.Fatal("event lost after deadline resume")
	}
}

func TestNestedScheduling(t *testing.T) {
	loop := NewLoop()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 10 {
			loop.After(time.Millisecond, recurse)
		}
	}
	loop.After(time.Millisecond, recurse)
	loop.RunUntilIdle()
	if depth != 10 {
		t.Fatalf("depth %d", depth)
	}
	if loop.Now() != Time(10*time.Millisecond) {
		t.Fatalf("clock %v", loop.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	loop := NewLoop()
	loop.After(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		loop.At(Time(time.Millisecond), func() {})
	})
	loop.RunUntilIdle()
}

func TestStopHaltsLoop(t *testing.T) {
	loop := NewLoop()
	n := 0
	for i := 1; i <= 10; i++ {
		loop.After(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 3 {
				loop.Stop()
			}
		})
	}
	loop.RunUntilIdle()
	if n != 3 {
		t.Fatalf("ran %d events after Stop", n)
	}
}

func TestPendingCount(t *testing.T) {
	loop := NewLoop()
	t1 := loop.After(time.Millisecond, func() {})
	loop.After(2*time.Millisecond, func() {})
	if loop.Pending() != 2 {
		t.Fatalf("pending %d", loop.Pending())
	}
	t1.Stop()
	if loop.Pending() != 1 {
		t.Fatalf("pending after cancel %d", loop.Pending())
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(1500 * time.Millisecond)
	if a.Seconds() != 1.5 {
		t.Fatalf("Seconds %v", a.Seconds())
	}
	if a.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds %v", a.Milliseconds())
	}
	if a.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatalf("Add")
	}
	if a.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatalf("Sub")
	}
	if Forever.String() != "forever" {
		t.Fatalf("Forever string %q", Forever.String())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at %d", i)
		}
	}
	c := NewRNG(12346)
	same := 0
	a = NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork(1)
	f2 := parent.Fork(1) // same label after state advanced — still distinct
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("sequential forks identical")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.47 || mean > 0.53 {
		t.Fatalf("uniform mean implausible: %v", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn missed values: %v", seen)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(11)
	var sum, ss float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		ss += (v - 10) * (v - 10)
	}
	mean := sum / n
	sd := math.Sqrt(ss / n)
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("norm mean %v", mean)
	}
	if sd < 1.9 || sd > 2.1 {
		t.Fatalf("norm sd %v", sd)
	}
}

func TestRNGLogNormMedian(t *testing.T) {
	r := NewRNG(13)
	const n = 20001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNorm(50, 0.5)
	}
	// Median should be near 50; count how many fall below.
	below := 0
	for _, v := range vals {
		if v < 50 {
			below++
		}
		if v <= 0 {
			t.Fatalf("lognormal non-positive: %v", v)
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median fraction %v", frac)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(17)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(30)
	}
	if mean := sum / n; mean < 28.5 || mean > 31.5 {
		t.Fatalf("exp mean %v", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(23)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.2) {
			hits++
		}
	}
	if hits < 1800 || hits > 2200 {
		t.Fatalf("Bool(0.2) hit %d/10000", hits)
	}
}
