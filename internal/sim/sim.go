// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, a binary-heap event queue, cancellable timers, and a
// seedable pseudo-random number generator.
//
// Everything in the simulator universe — TCP endpoints, radio state
// machines, link queues, browsers, proxies — schedules work through a
// single *Loop. Events fire in strict (time, sequence) order, so two runs
// with the same seed are bit-for-bit identical.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured as a duration since the start of
// the simulation. It is deliberately distinct from time.Time so that wall
// clock values cannot leak into the simulation.
type Time time.Duration

// Common simulated durations.
const (
	Nanosecond  = Time(time.Nanosecond)
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)

	// Forever is a sentinel for "no deadline".
	Forever = Time(math.MaxInt64)
)

// Duration converts a virtual timestamp to a time.Duration since t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as floating-point seconds since t=0.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds reports the timestamp as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(time.Duration(t)) / float64(time.Millisecond) }

// Add returns the timestamp advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return time.Duration(t).String()
}

// event is a scheduled callback.
type event struct {
	at     Time
	seq    uint64 // tie-break so equal-time events fire FIFO
	fn     func()
	index  int // heap index, -1 when popped/cancelled
	cancel bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Loop is a discrete-event scheduler. The zero value is not usable; call
// NewLoop.
type Loop struct {
	now     Time
	seq     uint64
	heap    eventHeap
	running bool
	stopped bool
	fired   uint64
}

// NewLoop returns a scheduler with the clock at zero.
func NewLoop() *Loop {
	return &Loop{}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Fired reports the number of events executed so far; useful as a progress
// and runaway-loop metric in tests.
func (l *Loop) Fired() uint64 { return l.fired }

// Timer is a handle to a scheduled event. Stop cancels it.
type Timer struct {
	loop *Loop
	ev   *event
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancel {
		return false
	}
	if t.ev.index < 0 {
		// Already fired or popped.
		return false
	}
	t.ev.cancel = true
	return true
}

// Pending reports whether the timer has yet to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancel && t.ev.index >= 0
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return Forever
	}
	return t.ev.at
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it always indicates a logic bug in a discrete-event model.
func (l *Loop) At(at Time, fn func()) *Timer {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, l.now))
	}
	l.seq++
	e := &event{at: at, seq: l.seq, fn: fn}
	heap.Push(&l.heap, e)
	return &Timer{loop: l, ev: e}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (l *Loop) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// Stop halts the loop after the current event finishes.
func (l *Loop) Stop() { l.stopped = true }

// Run executes events until the queue is empty, the loop is stopped, or
// the clock passes deadline. It returns the virtual time at exit.
func (l *Loop) Run(deadline Time) Time {
	if l.running {
		panic("sim: Run called re-entrantly")
	}
	l.running = true
	defer func() { l.running = false }()
	l.stopped = false
	for len(l.heap) > 0 && !l.stopped {
		e := l.heap[0]
		if e.cancel {
			heap.Pop(&l.heap)
			continue
		}
		if e.at > deadline {
			l.now = deadline
			return l.now
		}
		heap.Pop(&l.heap)
		if e.at > l.now {
			l.now = e.at
		}
		l.fired++
		e.fn()
	}
	if deadline != Forever && l.now < deadline && len(l.heap) == 0 {
		l.now = deadline
	}
	return l.now
}

// RunUntilIdle executes all pending events with no deadline.
func (l *Loop) RunUntilIdle() Time { return l.Run(Forever) }

// Pending reports the number of queued (non-cancelled) events.
func (l *Loop) Pending() int {
	n := 0
	for _, e := range l.heap {
		if !e.cancel {
			n++
		}
	}
	return n
}
