// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, a specialized event queue, cancellable timers, and a
// seedable pseudo-random number generator.
//
// Everything in the simulator universe — TCP endpoints, radio state
// machines, link queues, browsers, proxies — schedules work through a
// single *Loop. Events fire in strict (time, sequence) order, so two runs
// with the same seed are bit-for-bit identical.
//
// The queue is built for zero steady-state allocation: events live in a
// slot pool recycled through a free list, and Timer handles are plain
// values carrying generation and epoch numbers, so At/After/Stop allocate
// nothing once the pool is warm. Stopping a timer removes its entry from
// the queue immediately, so cancelled events never linger and Pending()
// is O(1).
//
// Two interchangeable schedulers implement the queue, selectable per
// loop (NewLoopWith) or process-wide (SetDefaultScheduler):
//
//   - SchedulerWheel (default): a hierarchical timing wheel with O(1)
//     insert/stop and batched same-timestamp delivery — see wheel.go.
//   - SchedulerHeap: the previous index-based 4-ary heap with O(log n)
//     insert/expire — see heap.go. Retained so differential tests can
//     diff wheel-vs-heap event orderings directly.
//
// Both fire events in identical (time, seq) order; the golden reports
// and the scheduler-differential tests pin that equivalence.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured as a duration since the start of
// the simulation. It is deliberately distinct from time.Time so that wall
// clock values cannot leak into the simulation.
type Time time.Duration

// Common simulated durations.
const (
	Nanosecond  = Time(time.Nanosecond)
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)

	// Forever is a sentinel for "no deadline".
	Forever = Time(math.MaxInt64)
)

// Duration converts a virtual timestamp to a time.Duration since t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as floating-point seconds since t=0.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds reports the timestamp as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(time.Duration(t)) / float64(time.Millisecond) }

// Add returns the timestamp advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return time.Duration(t).String()
}

// recycleEvents gates the slot free list. Tests set it to false to prove
// pooled and unpooled runs are bit-for-bit identical; production code
// never touches it.
var recycleEvents = true

// SetEventRecycling enables or disables event-slot recycling process-wide.
// It exists solely for determinism tests (pooled vs unpooled equality) and
// must not be toggled while loops are running on other goroutines.
func SetEventRecycling(on bool) { recycleEvents = on }

// Scheduler selects the event-queue implementation backing a Loop.
type Scheduler int

// Available schedulers.
const (
	// SchedulerWheel is the hierarchical timing wheel: O(1)
	// insert/stop/expire, batched same-timestamp delivery.
	SchedulerWheel Scheduler = iota
	// SchedulerHeap is the 4-ary heap: O(log n) insert/expire. Kept for
	// differential wheel-vs-heap ordering tests.
	SchedulerHeap
)

func (s Scheduler) String() string {
	switch s {
	case SchedulerWheel:
		return "wheel"
	case SchedulerHeap:
		return "heap"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// defaultScheduler backs NewLoop. Like SetEventRecycling, the setter
// exists for differential tests that replay identical runs through both
// implementations; production code never changes it.
var defaultScheduler = SchedulerWheel

// SetDefaultScheduler replaces the scheduler NewLoop selects. It returns
// the previous default so tests can restore it, and must not be called
// while loops are being constructed on other goroutines.
func SetDefaultScheduler(s Scheduler) Scheduler {
	prev := defaultScheduler
	defaultScheduler = s
	return prev
}

// DefaultScheduler reports the scheduler NewLoop currently selects.
func DefaultScheduler() Scheduler { return defaultScheduler }

// slot.pos states shared by both schedulers. The heap stores its real
// heap index (>= 0); the wheel only tracks membership, using posQueued
// for every bucketed event (its bucket is recomputed from the timestamp
// on cancel, never stored).
const (
	posFree     = -1 // slot not queued (fired, stopped, or never used)
	posInFlight = -2 // wheel only: detached into the current drain batch
	posQueued   = 0  // wheel only: queued in some bucket
)

// eventSlot is pooled storage for one scheduled callback. Slots are
// addressed by index so the pool can grow without invalidating handles;
// gen disambiguates reuse so stale Timer values are inert.
type eventSlot struct {
	fn  func()
	at  Time
	gen uint32
	pos int32 // scheduler position state (see posFree/posInFlight/posQueued)
}

// scheduler is the event-queue contract. Implementations own the (time,
// seq) ordering structure; the Loop owns slots, the clock and the seq
// counter. Both implementations must fire events in identical (time,
// seq) order — the differential tests pin this.
type scheduler interface {
	// schedule enqueues slot id at (at, seq) and marks the slot's pos as
	// queued (heap: real index; wheel: posQueued).
	schedule(at Time, seq uint64, id int32)
	// cancel removes a queued slot (pos != posFree) from the structure.
	// The caller frees the slot afterwards.
	cancel(id int32)
	// run executes events until the queue is empty, the loop is stopped,
	// or the clock passes deadline, and returns the virtual time at exit.
	run(deadline Time) Time
	// pending reports the number of queued events, including any that
	// are mid-batch but not yet fired.
	pending() int
	// release drops every queued entry and any auxiliary storage; the
	// scheduler must remain usable for fresh events afterwards.
	release()
}

// Loop is a discrete-event scheduler. The zero value is not usable; call
// NewLoop or NewLoopWith.
type Loop struct {
	now     Time
	seq     uint64
	epoch   uint32
	slots   []eventSlot
	free    []int32
	sched   scheduler
	running bool
	stopped bool
	fired   uint64
}

// NewLoop returns a scheduler with the clock at zero, backed by the
// process-wide default scheduler (the timing wheel unless a test has
// switched it).
func NewLoop() *Loop { return NewLoopWith(defaultScheduler) }

// NewLoopWith returns a loop backed by an explicit scheduler choice.
func NewLoopWith(s Scheduler) *Loop {
	l := &Loop{}
	switch s {
	case SchedulerHeap:
		l.sched = &heapSched{l: l}
	case SchedulerWheel:
		l.sched = newWheelSched(l)
	default:
		panic(fmt.Sprintf("sim: unknown scheduler %d", int(s)))
	}
	return l
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Fired reports the number of events executed so far; useful as a progress
// and runaway-loop metric in tests.
func (l *Loop) Fired() uint64 { return l.fired }

// Timer is a handle to a scheduled event. The zero value is an inert
// handle: Stop and Pending report false and When reports Forever. Handles
// are values — copying one is free and a handle outlives its event safely
// (the generation and epoch checks make handles to fired, stopped or
// released events inert even after their slot is recycled).
type Timer struct {
	loop  *Loop
	id    int32
	gen   uint32
	epoch uint32
}

// valid reports whether the handle still refers to its scheduled event.
// The epoch check must come first: after Release the slot arena is gone
// and only the epoch mismatch keeps stale handles from indexing it.
func (t Timer) valid() bool {
	return t.loop != nil && t.epoch == t.loop.epoch && t.loop.slots[t.id].gen == t.gen
}

// Stop cancels the timer, removing its event from the queue immediately
// (the slot is recycled rather than lingering until popped). It reports
// whether the timer was still pending. Stopping an already-fired or
// already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	if !t.valid() {
		return false
	}
	l := t.loop
	if l.slots[t.id].pos == posFree {
		return false
	}
	l.sched.cancel(t.id)
	l.freeSlot(t.id)
	return true
}

// Pending reports whether the timer has yet to fire.
func (t Timer) Pending() bool {
	return t.valid() && t.loop.slots[t.id].pos != posFree
}

// When returns the virtual time at which the timer fires, or Forever once
// the timer has fired or been stopped.
func (t Timer) When() Time {
	if !t.Pending() {
		return Forever
	}
	return t.loop.slots[t.id].at
}

// allocSlot returns a free slot index, growing the pool if needed.
func (l *Loop) allocSlot() int32 {
	if n := len(l.free); n > 0 {
		id := l.free[n-1]
		l.free = l.free[:n-1]
		return id
	}
	l.slots = append(l.slots, eventSlot{pos: posFree})
	return int32(len(l.slots) - 1)
}

// freeSlot releases a slot back to the pool. The generation bump makes
// every outstanding Timer for this slot inert.
func (l *Loop) freeSlot(id int32) {
	s := &l.slots[id]
	s.fn = nil
	s.gen++
	s.pos = posFree
	if recycleEvents {
		l.free = append(l.free, id)
	}
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it always indicates a logic bug in a discrete-event model.
func (l *Loop) At(at Time, fn func()) Timer {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, l.now))
	}
	l.seq++
	id := l.allocSlot()
	s := &l.slots[id]
	s.fn = fn
	s.at = at
	l.sched.schedule(at, l.seq, id)
	return Timer{loop: l, id: id, gen: l.slots[id].gen, epoch: l.epoch}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (l *Loop) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// Stop halts the loop after the current event finishes.
func (l *Loop) Stop() { l.stopped = true }

// Run executes events until the queue is empty, the loop is stopped, or
// the clock passes deadline. It returns the virtual time at exit.
func (l *Loop) Run(deadline Time) Time {
	if l.running {
		panic("sim: Run called re-entrantly")
	}
	l.running = true
	defer func() { l.running = false }()
	l.stopped = false
	return l.sched.run(deadline)
}

// RunUntilIdle executes all pending events with no deadline.
func (l *Loop) RunUntilIdle() Time { return l.Run(Forever) }

// Release drops every scheduled callback, the queue structure, and the
// slot arena in O(levels), not O(slots): the epoch bump makes every
// outstanding Timer inert without walking the arena, and the arena
// itself is dropped in one pointer swap so the object graph its
// callbacks close over is immediately collectable. Call it once a
// simulation has finished and its results have been extracted — a
// retained Loop (e.g. reachable from a memoized result) must not pin the
// run's browser/proxy/connection graph. The loop itself remains usable
// for scheduling fresh events.
func (l *Loop) Release() {
	l.epoch++
	l.slots = nil
	l.free = nil
	l.sched.release()
}

// Pending reports the number of queued events. Stopped timers are removed
// from the queue eagerly, so this is an exact O(1) count.
func (l *Loop) Pending() int { return l.sched.pending() }
