// Package sim provides a deterministic discrete-event simulation core:
// a virtual clock, a specialized event queue, cancellable timers, and a
// seedable pseudo-random number generator.
//
// Everything in the simulator universe — TCP endpoints, radio state
// machines, link queues, browsers, proxies — schedules work through a
// single *Loop. Events fire in strict (time, sequence) order, so two runs
// with the same seed are bit-for-bit identical.
//
// The queue is built for zero steady-state allocation: events live in a
// slot pool recycled through a free list, the priority queue is an
// index-based 4-ary heap of (time, seq, slot) entries, and Timer handles
// are plain values carrying a generation number, so At/After/Stop allocate
// nothing once the pool is warm. Stopping a timer removes its entry from
// the heap immediately, so cancelled events never linger in the queue and
// Pending() is O(1).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured as a duration since the start of
// the simulation. It is deliberately distinct from time.Time so that wall
// clock values cannot leak into the simulation.
type Time time.Duration

// Common simulated durations.
const (
	Nanosecond  = Time(time.Nanosecond)
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)

	// Forever is a sentinel for "no deadline".
	Forever = Time(math.MaxInt64)
)

// Duration converts a virtual timestamp to a time.Duration since t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as floating-point seconds since t=0.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Milliseconds reports the timestamp as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(time.Duration(t)) / float64(time.Millisecond) }

// Add returns the timestamp advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return time.Duration(t).String()
}

// recycleEvents gates the slot free list. Tests set it to false to prove
// pooled and unpooled runs are bit-for-bit identical; production code
// never touches it.
var recycleEvents = true

// SetEventRecycling enables or disables event-slot recycling process-wide.
// It exists solely for determinism tests (pooled vs unpooled equality) and
// must not be toggled while loops are running on other goroutines.
func SetEventRecycling(on bool) { recycleEvents = on }

// eventSlot is pooled storage for one scheduled callback. Slots are
// addressed by index so the pool can grow without invalidating handles;
// gen disambiguates reuse so stale Timer values are inert.
type eventSlot struct {
	fn  func()
	at  Time
	gen uint32
	pos int32 // index into Loop.heap, -1 when not queued
}

// heapEntry is one 4-ary heap element. The ordering key (at, seq) is
// stored inline so sifting never chases the slot pool.
type heapEntry struct {
	at  Time
	seq uint64
	id  int32
}

// Loop is a discrete-event scheduler. The zero value is not usable; call
// NewLoop.
type Loop struct {
	now     Time
	seq     uint64
	slots   []eventSlot
	free    []int32
	heap    []heapEntry
	running bool
	stopped bool
	fired   uint64
}

// NewLoop returns a scheduler with the clock at zero.
func NewLoop() *Loop {
	return &Loop{}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Fired reports the number of events executed so far; useful as a progress
// and runaway-loop metric in tests.
func (l *Loop) Fired() uint64 { return l.fired }

// Timer is a handle to a scheduled event. The zero value is an inert
// handle: Stop and Pending report false and When reports Forever. Handles
// are values — copying one is free and a handle outlives its event safely
// (the generation check makes handles to fired or stopped events inert
// even after their slot is recycled).
type Timer struct {
	loop *Loop
	id   int32
	gen  uint32
}

// valid reports whether the handle still refers to its scheduled event.
func (t Timer) valid() bool {
	return t.loop != nil && t.loop.slots[t.id].gen == t.gen
}

// Stop cancels the timer, removing its event from the queue immediately
// (the slot is recycled rather than lingering until popped). It reports
// whether the timer was still pending. Stopping an already-fired or
// already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	if !t.valid() {
		return false
	}
	l := t.loop
	pos := l.slots[t.id].pos
	if pos < 0 {
		return false
	}
	l.heapRemove(int(pos))
	l.freeSlot(t.id)
	return true
}

// Pending reports whether the timer has yet to fire.
func (t Timer) Pending() bool {
	return t.valid() && t.loop.slots[t.id].pos >= 0
}

// When returns the virtual time at which the timer fires, or Forever once
// the timer has fired or been stopped.
func (t Timer) When() Time {
	if !t.Pending() {
		return Forever
	}
	return t.loop.slots[t.id].at
}

// allocSlot returns a free slot index, growing the pool if needed.
func (l *Loop) allocSlot() int32 {
	if n := len(l.free); n > 0 {
		id := l.free[n-1]
		l.free = l.free[:n-1]
		return id
	}
	l.slots = append(l.slots, eventSlot{})
	return int32(len(l.slots) - 1)
}

// freeSlot releases a slot back to the pool. The generation bump makes
// every outstanding Timer for this slot inert.
func (l *Loop) freeSlot(id int32) {
	s := &l.slots[id]
	s.fn = nil
	s.gen++
	s.pos = -1
	if recycleEvents {
		l.free = append(l.free, id)
	}
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it always indicates a logic bug in a discrete-event model.
func (l *Loop) At(at Time, fn func()) Timer {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, l.now))
	}
	l.seq++
	id := l.allocSlot()
	s := &l.slots[id]
	s.fn = fn
	s.at = at
	l.heapPush(heapEntry{at: at, seq: l.seq, id: id})
	return Timer{loop: l, id: id, gen: s.gen}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (l *Loop) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// Stop halts the loop after the current event finishes.
func (l *Loop) Stop() { l.stopped = true }

// Run executes events until the queue is empty, the loop is stopped, or
// the clock passes deadline. It returns the virtual time at exit.
func (l *Loop) Run(deadline Time) Time {
	if l.running {
		panic("sim: Run called re-entrantly")
	}
	l.running = true
	defer func() { l.running = false }()
	l.stopped = false
	for len(l.heap) > 0 && !l.stopped {
		e := l.heap[0]
		if e.at > deadline {
			l.now = deadline
			return l.now
		}
		fn := l.slots[e.id].fn
		l.heapRemove(0)
		l.freeSlot(e.id)
		if e.at > l.now {
			l.now = e.at
		}
		l.fired++
		fn()
	}
	if deadline != Forever && l.now < deadline && len(l.heap) == 0 {
		l.now = deadline
	}
	return l.now
}

// RunUntilIdle executes all pending events with no deadline.
func (l *Loop) RunUntilIdle() Time { return l.Run(Forever) }

// Release drops every scheduled callback, the heap, and the slot free
// list. Call it once a simulation has finished and its results have been
// extracted: a retained Loop (e.g. reachable from a memoized result)
// must not pin the object graph its callbacks close over. Outstanding
// Timer handles become inert, exactly as if they had been stopped, and
// the loop itself remains usable for scheduling fresh events.
func (l *Loop) Release() {
	for i := range l.slots {
		l.slots[i] = eventSlot{gen: l.slots[i].gen + 1, pos: -1}
	}
	l.heap = nil
	l.free = nil
}

// Pending reports the number of queued events. Stopped timers are removed
// from the heap eagerly, so this is simply the heap length — O(1), where
// the previous lazy-cancellation queue had to scan every entry.
func (l *Loop) Pending() int { return len(l.heap) }

// --- 4-ary heap ordered by (at, seq) ---
//
// A 4-ary layout halves the tree depth of a binary heap; combined with
// inline keys this makes sift operations short, branch-predictable loops
// over one contiguous slice. slots[id].pos tracks each entry's heap index
// so Stop can remove an arbitrary entry in O(log n).

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (l *Loop) heapPush(e heapEntry) {
	l.heap = append(l.heap, e)
	l.siftUp(len(l.heap) - 1)
}

// heapRemove deletes the entry at index i, preserving heap order.
func (l *Loop) heapRemove(i int) {
	n := len(l.heap) - 1
	last := l.heap[n]
	l.heap = l.heap[:n]
	if i == n {
		return
	}
	l.heap[i] = last
	l.slots[last.id].pos = int32(i)
	if i > 0 && entryLess(last, l.heap[(i-1)>>2]) {
		l.siftUp(i)
	} else {
		l.siftDown(i)
	}
}

func (l *Loop) siftUp(i int) {
	h := l.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		l.slots[h[i].id].pos = int32(i)
		i = p
	}
	h[i] = e
	l.slots[e.id].pos = int32(i)
}

func (l *Loop) siftDown(i int) {
	h := l.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], e) {
			break
		}
		h[i] = h[m]
		l.slots[h[i].id].pos = int32(i)
		i = m
	}
	h[i] = e
	l.slots[e.id].pos = int32(i)
}
