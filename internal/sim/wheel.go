package sim

import "math/bits"

// wheelSched is a hierarchical timing wheel: six levels of 64 slots at
// 1 ns granularity, giving O(1) insert and cancel across the simulator's
// whole timer spectrum — sub-millisecond link/serialization events up
// through multi-second RTO/RRC/think-time timers — with an unsorted
// overflow list for events outside the current ~68.7 s (2^36 ns) window.
//
// Geometry. Placement is by 64-ary digits of the absolute timestamp: an
// event lands at level k = the highest digit in which at and cur differ
// (one Len64 of at XOR cur), in slot (at >> 6k) & 63. Digit placement
// (rather than classic delta placement) buys two structural invariants:
//
//   - An event's bucket is a pure function of (at, cur). Cancel
//     recomputes it and swap-removes after a short scan, so neither the
//     slot pool nor the buckets carry position indexes, and re-placing
//     an event never writes to the slot pool at all.
//   - Slots never wrap: every occupied slot at level k shares all
//     higher digits with cur and exceeds cur's own digit k, so "next
//     event" is TrailingZeros64 on the lowest non-empty occupancy
//     bitmap — no carry or rotation handling anywhere.
//
// A level-k bucket spans exactly one level-k tick (its events share all
// digits above k), so the lowest bucket of the lowest non-empty level
// holds the global minimum. Advancing the clock jumps cur straight to
// that bucket's earliest timestamp and splits the bucket once: events
// at the minimum go directly into the drain batch, later ones re-place
// at a strictly lower level. An event is touched at most once per level
// on its way to firing, and the common cases — the next event alone in
// its bucket, or an entire bucket sharing one timestamp — cost a single
// detach.
//
// Events whose timestamp leaves the current 2^36 ns window (think
// timers, Forever watchdogs) sit unsorted in the overflow bucket with a
// tracked minimum; they are pulled into the wheel only when that
// minimum would precede the next wheel event, so a Forever watchdog
// costs one integer compare per scheduling decision and never cascades.
//
// Firing order. A level-0 slot holds exactly one tick (one exact
// timestamp), so global (time, seq) order reduces to seq order within a
// batch. Buckets are unsorted (cancel is swap-remove, a split appends),
// so the detached batch is sorted by seq — a no-op check in the common
// already-ordered case — then fired without touching the wheel again.
// That is the batched same-timestamp delivery: no per-event re-sift,
// and events scheduled for the same tick by the batch's own callbacks
// join a fresh pass with strictly higher seqs. The heap scheduler
// (heap.go) fires in bit-identical order; differential tests replay
// full runs through both.
type wheelSched struct {
	l   *Loop
	cur Time // wheel position: every queued event has at >= cur

	count   int
	occ     [wheelLevels]uint64
	ovMin   Time // min at in the overflow bucket; Forever when empty
	buckets [numBuckets][]bref
	scratch []flight
	// batchPending marks that nextTick already detached the returned
	// tick's events into scratch, so drainTick starts there instead of
	// at the level-0 bucket.
	batchPending bool
	arena        []bref // initial backing storage, sliced across buckets
}

const (
	wheelBits    = 6
	wheelSlots   = 1 << wheelBits
	wheelMask    = wheelSlots - 1
	wheelLevels  = 6
	wheelHorizon = Time(1) << (wheelBits * wheelLevels)

	// overflowIdx is the bucket index of the outside-the-window list.
	overflowIdx = wheelLevels * wheelSlots
	numBuckets  = overflowIdx + 1

	// bucketSeed is the preallocated per-bucket capacity. Buckets that
	// outgrow it reallocate once and keep the larger backing; seeding
	// keeps the warm hot path allocation-free from the first event.
	bucketSeed = 2
)

// bref is one bucket entry. The (at, seq) key is stored inline so
// min-scans, splits and overflow pulls never chase the slot pool.
type bref struct {
	at  Time
	seq uint64
	id  int32
}

// flight is one detached drain-batch entry; gen makes entries whose
// timer was stopped by an earlier callback in the same batch inert.
type flight struct {
	seq uint64
	id  int32
	gen uint32
}

func newWheelSched(l *Loop) *wheelSched {
	w := &wheelSched{l: l, ovMin: Forever}
	w.seed()
	return w
}

// seed gives every bucket a small private capacity carved from one
// arena allocation, so first-touch appends during a warm run allocate
// nothing.
func (w *wheelSched) seed() {
	w.arena = make([]bref, numBuckets*bucketSeed)
	for i := range w.buckets {
		w.buckets[i] = w.arena[i*bucketSeed : i*bucketSeed : (i+1)*bucketSeed]
	}
	w.scratch = make([]flight, 0, wheelSlots)
}

// bucketFor returns the bucket index for timestamp at under the current
// wheel position: the digit-placement rule shared by place and cancel.
func (w *wheelSched) bucketFor(at Time) int {
	x := uint64(at ^ w.cur)
	if x >= uint64(wheelHorizon) {
		return overflowIdx
	}
	level := 0
	if x > wheelMask {
		level = (bits.Len64(x) - 1) / wheelBits
	}
	return level*wheelSlots + int(uint64(at)>>(uint(level)*wheelBits))&wheelMask
}

func (w *wheelSched) schedule(at Time, seq uint64, id int32) {
	w.count++
	// pos tracks only membership: posQueued until the event is detached
	// into a drain batch (posInFlight) or fired/stopped (posFree). The
	// slot line is already hot — At just wrote fn and at.
	w.l.slots[id].pos = posQueued
	w.place(at, seq, id)
}

// place files an event into its bucket. Re-placement during splits and
// overflow pulls comes through here too and touches only bucket memory,
// never the slot pool.
func (w *wheelSched) place(at Time, seq uint64, id int32) {
	b := w.bucketFor(at)
	w.buckets[b] = append(w.buckets[b], bref{at: at, seq: seq, id: id})
	if b < overflowIdx {
		w.occ[b>>wheelBits] |= 1 << uint(b&wheelMask)
	} else if at < w.ovMin {
		w.ovMin = at
	}
}

func (w *wheelSched) cancel(id int32) {
	w.count--
	s := &w.l.slots[id]
	if s.pos == posInFlight {
		// Detached into the current drain batch; the batch's gen check
		// (against the freed slot) makes its entry inert.
		return
	}
	b := w.bucketFor(s.at)
	bk := w.buckets[b]
	last := len(bk) - 1
	for p := last; ; p-- {
		if bk[p].id != id {
			continue
		}
		bk[p] = bk[last]
		w.buckets[b] = bk[:last]
		break
	}
	if last == 0 {
		if b == overflowIdx {
			w.ovMin = Forever
		} else {
			w.occ[b>>wheelBits] &^= 1 << uint(b&wheelMask)
		}
	}
	// A cancelled overflow minimum can leave ovMin stale-low; that only
	// triggers an early pull, which recomputes it.
}

func (w *wheelSched) pending() int { return w.count }

// release is the arena swap: one struct reset drops every bucket, the
// scratch batch and the occupancy state without walking queued events
// (the Loop's epoch bump has already made their handles inert).
func (w *wheelSched) release() {
	l := w.l
	*w = wheelSched{l: l, cur: l.now, ovMin: Forever}
	w.seed()
}

func (w *wheelSched) run(deadline Time) Time {
	l := w.l
	for !l.stopped {
		t, ok := w.nextTick(deadline)
		if !ok {
			if deadline != Forever && l.now < deadline {
				l.now = deadline
			}
			return l.now
		}
		if t > l.now {
			l.now = t
		}
		w.drainTick(t)
	}
	if deadline != Forever && l.now < deadline && w.count == 0 {
		l.now = deadline
	}
	return l.now
}

// nextTick advances the wheel to the earliest queued timestamp if it is
// within deadline, and reports it. cur only ever moves to timestamps
// that are about to fire (or to the overflow minimum, equally about to
// be examined), so a deadline-bounded Run leaves the wheel untouched
// beyond the last fired event and consistent for later scheduling.
func (w *wheelSched) nextTick(deadline Time) (Time, bool) {
search:
	for {
		// Level 0: one tick per slot, never behind cur, so the lowest
		// set bit is the earliest level-0 timestamp.
		if w.occ[0] != 0 {
			t := (w.cur &^ Time(wheelMask)) | Time(bits.TrailingZeros64(w.occ[0]))
			// The overflow-empty check breaks the Forever tie: with
			// events queued at t == Forever the ovMin sentinel equals t
			// without anything to pull.
			if w.ovMin <= t && len(w.buckets[overflowIdx]) != 0 {
				if w.ovMin > deadline {
					return 0, false
				}
				w.pull()
				continue search
			}
			if t > deadline {
				return 0, false
			}
			w.cur = t
			return t, true
		}

		// Higher levels: the lowest bucket of the lowest non-empty
		// level holds the global wheel minimum (its events share their
		// upper digits with cur; anything at a higher level differs in
		// a higher digit and so lies beyond all of them).
		for k := 1; k < wheelLevels; k++ {
			if w.occ[k] == 0 {
				continue
			}
			p := bits.TrailingZeros64(w.occ[k])
			bIdx := k*wheelSlots + p
			bk := w.buckets[bIdx]
			minAt := bk[0].at
			for j := 1; j < len(bk); j++ {
				if bk[j].at < minAt {
					minAt = bk[j].at
				}
			}
			if w.ovMin <= minAt {
				if w.ovMin > deadline {
					return 0, false
				}
				// ovMin lies between cur and an in-window wheel
				// timestamp, so it shares cur's window and the pull is
				// guaranteed to file it.
				w.pull()
				continue search
			}
			if minAt > deadline {
				return 0, false
			}
			// Jump straight to the minimum and split the bucket once:
			// minimum-timestamp events go directly into the drain
			// batch, later ones re-place at a strictly lower level
			// (they share digit k and everything above it with the new
			// cur, so they can never land back in this bucket).
			w.buckets[bIdx] = bk[:0]
			w.occ[k] &^= 1 << uint(p)
			w.cur = minAt
			w.scratch = w.scratch[:0]
			for _, e := range bk {
				if e.at != minAt {
					w.place(e.at, e.seq, e.id)
					continue
				}
				s := &w.l.slots[e.id]
				w.scratch = append(w.scratch, flight{seq: e.seq, id: e.id, gen: s.gen})
				s.pos = posInFlight
			}
			w.batchPending = true
			return minAt, true
		}

		// Wheel empty: only the overflow bucket (if anything) remains.
		// Jump straight to its minimum — this is the one place a
		// Forever-scheduled event is ever examined.
		if len(w.buckets[overflowIdx]) == 0 || w.ovMin > deadline {
			return 0, false
		}
		w.cur = w.ovMin
		w.pull()
	}
}

// pull re-files every overflow event inside the current window and
// recomputes the overflow minimum. place never appends to the overflow
// bucket for an in-window timestamp, so in-place compaction is safe.
func (w *wheelSched) pull() {
	ov := w.buckets[overflowIdx]
	keep := ov[:0]
	minKeep := Forever
	for _, e := range ov {
		if uint64(e.at^w.cur) < uint64(wheelHorizon) {
			w.place(e.at, e.seq, e.id)
			continue
		}
		keep = append(keep, e)
		if e.at < minKeep {
			minKeep = e.at
		}
	}
	w.buckets[overflowIdx] = keep
	w.ovMin = minKeep
}

// drainTick fires every event of one tick as a batch: detach, sort by
// seq, fire. Callbacks may schedule into the same tick (picked up by
// the next pass, with higher seqs), stop not-yet-fired batch members
// (the gen check skips them), or stop the loop (the remainder is
// re-queued so a later Run resumes exactly where the heap would).
func (w *wheelSched) drainTick(t Time) {
	l := w.l
	slot := int(uint64(t) & wheelMask)
	bit := uint64(1) << uint(slot)
	if w.batchPending {
		// nextTick already detached this tick's events; fire them
		// without touching the level-0 bucket. A singleton batch — the
		// dominant sparse-queue case — needs no sort and, since no
		// callback has run since the detach, no gen or stop check.
		w.batchPending = false
		if len(w.scratch) == 1 {
			e := w.scratch[0]
			s := &l.slots[e.id]
			fn := s.fn
			w.count--
			l.freeSlot(e.id)
			l.fired++
			fn()
		} else if !w.fireBatch(slot, bit) {
			return
		}
	}
	for {
		if l.stopped {
			return // unfired same-tick events stay queued in the bucket
		}
		bk := w.buckets[slot] // level-0 bucket index == slot index
		if len(bk) == 0 {
			w.occ[0] &^= bit
			return
		}
		if len(bk) == 1 {
			// Singleton tick: no batch to sort and no mid-batch stop to
			// arbitrate, so fire directly without the scratch detach.
			e := bk[0]
			s := &l.slots[e.id]
			fn := s.fn
			w.buckets[slot] = bk[:0]
			w.occ[0] &^= bit
			w.count--
			l.freeSlot(e.id)
			l.fired++
			fn()
			continue
		}
		w.scratch = w.scratch[:0]
		for _, e := range bk {
			s := &l.slots[e.id]
			w.scratch = append(w.scratch, flight{seq: e.seq, id: e.id, gen: s.gen})
			s.pos = posInFlight
		}
		w.buckets[slot] = bk[:0]
		w.occ[0] &^= bit
		if !w.fireBatch(slot, bit) {
			return
		}
	}
}

// fireBatch sorts the detached scratch batch by seq and fires it,
// re-queuing the unfired remainder if a callback stops the loop. It
// reports whether the drain should continue.
func (w *wheelSched) fireBatch(slot int, bit uint64) bool {
	l := w.l
	sortFlights(w.scratch)
	for i := 0; i < len(w.scratch); i++ {
		if l.stopped {
			w.requeue(slot, bit, w.scratch[i:])
			return false
		}
		e := w.scratch[i]
		s := &l.slots[e.id]
		if s.gen != e.gen {
			continue // stopped by an earlier callback in this batch
		}
		fn := s.fn
		w.count--
		l.freeSlot(e.id)
		l.fired++
		fn()
	}
	return true
}

// requeue puts the unfired tail of a stopped batch back into its
// level-0 bucket. Order relative to any events the batch's callbacks
// scheduled for the same tick is irrelevant: the next drain re-sorts
// by seq.
func (w *wheelSched) requeue(slot int, bit uint64, rest []flight) {
	l := w.l
	for _, e := range rest {
		s := &l.slots[e.id]
		if s.gen != e.gen {
			continue
		}
		s.pos = posQueued
		w.buckets[slot] = append(w.buckets[slot], bref{at: s.at, seq: e.seq, id: e.id})
		w.occ[0] |= bit
	}
}

// sortFlights orders a drain batch by seq. Insertion order is already
// seq order unless a split interleaved with direct placement, so an
// O(n) sortedness check guards an in-place heapsort.
func sortFlights(s []flight) {
	for i := 1; i < len(s); i++ {
		if s[i].seq < s[i-1].seq {
			goto sort
		}
	}
	return
sort:
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftFlight(s, i, n)
	}
	for end := n - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftFlight(s, 0, end)
	}
}

func siftFlight(s []flight, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && s[c+1].seq > s[c].seq {
			c++
		}
		if s[i].seq >= s[c].seq {
			return
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
}
