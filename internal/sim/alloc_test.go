package sim

import (
	"testing"
	"time"
)

func TestTimerWhenAfterFireAndStop(t *testing.T) {
	loop := NewLoop()
	tm := loop.After(10*time.Millisecond, func() {})
	if got := tm.When(); got != Time(10*time.Millisecond) {
		t.Fatalf("pending When %v", got)
	}
	loop.RunUntilIdle()
	if got := tm.When(); got != Forever {
		t.Fatalf("fired timer When %v, want Forever", got)
	}

	tm2 := loop.After(10*time.Millisecond, func() {})
	tm2.Stop()
	if got := tm2.When(); got != Forever {
		t.Fatalf("stopped timer When %v, want Forever", got)
	}

	var zero Timer
	if zero.When() != Forever || zero.Pending() || zero.Stop() {
		t.Fatal("zero Timer must be inert")
	}
}

// TestStaleHandleIsInert pins the generation check: a handle whose slot
// was recycled for a new event must not observe or cancel the new event.
func TestStaleHandleIsInert(t *testing.T) {
	loop := NewLoop()
	t1 := loop.After(time.Millisecond, func() {})
	loop.RunUntilIdle()

	fired := false
	t2 := loop.After(time.Millisecond, func() { fired = true })
	if t1.Stop() {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	if t1.Pending() {
		t.Fatal("stale handle reports pending")
	}
	loop.RunUntilIdle()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	_ = t2
}

// TestTimerInertDuringOwnCallback: while an event's callback runs, its
// slot is already released, so the handle reports fired.
func TestTimerInertDuringOwnCallback(t *testing.T) {
	loop := NewLoop()
	var tm Timer
	tm = loop.After(time.Millisecond, func() {
		if tm.Pending() {
			t.Error("timer pending inside its own callback")
		}
		if tm.When() != Forever {
			t.Error("timer When not Forever inside its own callback")
		}
	})
	loop.RunUntilIdle()
}

// TestManyCancellationsKeepPendingExact drives interleaved schedule /
// cancel / fire traffic and checks Pending() (now O(1)) stays exact.
func TestManyCancellationsKeepPendingExact(t *testing.T) {
	loop := NewLoop()
	var timers []Timer
	for i := 0; i < 1000; i++ {
		d := time.Duration(1+i%17) * time.Millisecond
		timers = append(timers, loop.After(d, func() {}))
	}
	cancelled := 0
	for i := 0; i < len(timers); i += 2 {
		if timers[i].Stop() {
			cancelled++
		}
	}
	if got, want := loop.Pending(), len(timers)-cancelled; got != want {
		t.Fatalf("Pending %d, want %d", got, want)
	}
	loop.RunUntilIdle()
	if loop.Pending() != 0 {
		t.Fatalf("Pending %d after drain", loop.Pending())
	}
	if got := loop.Fired(); got != uint64(len(timers)-cancelled) {
		t.Fatalf("fired %d, want %d", got, len(timers)-cancelled)
	}
}

// TestAfterFireAllocationFree is the hot-path guardrail: once the slot
// pool is warm, scheduling and firing an event must not allocate.
func TestAfterFireAllocationFree(t *testing.T) {
	loop := NewLoop()
	fn := func() {}
	// Warm the slot pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		loop.After(time.Millisecond, fn)
	}
	loop.RunUntilIdle()

	allocs := testing.AllocsPerRun(1000, func() {
		loop.After(time.Millisecond, fn)
		loop.RunUntilIdle()
	})
	if allocs != 0 {
		t.Fatalf("After+fire allocates %.1f per run, want 0", allocs)
	}
}

// TestScheduleStopAllocationFree: arming and cancelling (the RTO pattern,
// once per ACK) must also be allocation-free.
func TestScheduleStopAllocationFree(t *testing.T) {
	loop := NewLoop()
	fn := func() {}
	for i := 0; i < 64; i++ {
		loop.After(time.Millisecond, fn)
	}
	loop.RunUntilIdle()

	allocs := testing.AllocsPerRun(1000, func() {
		tm := loop.After(time.Millisecond, fn)
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("After+Stop allocates %.1f per run, want 0", allocs)
	}
}

// TestEventRecyclingToggle proves the free list is observably inert: the
// same schedule produces identical firing order with recycling on or off.
func TestEventRecyclingToggle(t *testing.T) {
	run := func() []int {
		loop := NewLoop()
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			d := time.Duration(i%13) * time.Millisecond
			tm := loop.After(d, func() { got = append(got, i) })
			if i%5 == 0 {
				tm.Stop()
			}
		}
		loop.RunUntilIdle()
		return got
	}
	defer SetEventRecycling(true)
	SetEventRecycling(true)
	pooled := run()
	SetEventRecycling(false)
	unpooled := run()
	if len(pooled) != len(unpooled) {
		t.Fatalf("lengths differ: %d vs %d", len(pooled), len(unpooled))
	}
	for i := range pooled {
		if pooled[i] != unpooled[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, pooled[i], unpooled[i])
		}
	}
}
