// Package suppress exercises the //lint:allow directive paths the
// driver applies on top of raw analyzer output.
package suppress

import "time"

// ownLine: a directive alone on its line shields the next line.
func ownLine() time.Time {
	//lint:allow wallclock startup banner timestamp, never read inside the event loop
	return time.Now()
}

// trailing: a directive at the end of the flagged line works too.
func trailing() time.Time {
	return time.Now() //lint:allow wallclock startup banner timestamp, never read inside the event loop
}

// wrongAnalyzer: suppressing a different analyzer does not shield this
// finding.
func wrongAnalyzer() time.Time {
	//lint:allow maprange reason aimed at the wrong check
	return time.Now() // want `time\.Now is wall-clock`
}

// shieldIsNarrow: a trailing directive covers only its own line, so the
// line after it still reports.
func shieldIsNarrow() time.Time {
	_ = time.Now()    //lint:allow wallclock covers this line only
	return time.Now() // want `time\.Now is wall-clock`
}
