package wallclock

import wall "time"

// renamed: a renamed import is still caught — detection resolves the
// package path, not the identifier spelled in source.
func renamed() wall.Time {
	return wall.Now() // want `time\.Now is wall-clock`
}
