// Package wallclock exercises every banned wall-clock call plus the
// duration arithmetic that must stay allowed.
package wallclock

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond)                 // want `time\.Sleep is wall-clock`
	t := time.Now()                              // want `time\.Now is wall-clock`
	_ = time.Since(t)                            // want `time\.Since is wall-clock`
	_ = time.Until(t)                            // want `time\.Until is wall-clock`
	<-time.After(time.Nanosecond)                // want `time\.After is wall-clock`
	tm := time.NewTimer(time.Second)             // want `time\.NewTimer is wall-clock`
	tk := time.NewTicker(time.Second)            // want `time\.NewTicker is wall-clock`
	af := time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc is wall-clock`
	tm.Stop()
	tk.Stop()
	af.Stop()
	return t
}

// good: time.Duration values, arithmetic and formatting never touch the
// wall clock and stay legal everywhere.
func good(d time.Duration) string {
	d = 2*d + 30*time.Second
	return d.String()
}
