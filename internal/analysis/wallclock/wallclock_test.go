package wallclock_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "wallclock")
}

// TestSuppressions drives the same analyzer through the driver's
// //lint:allow filter: honoured with a reason, ignored for the wrong
// analyzer, and scoped to a single line for trailing directives.
func TestSuppressions(t *testing.T) {
	analysistest.RunSuppressed(t, wallclock.Analyzer, "suppress")
}
