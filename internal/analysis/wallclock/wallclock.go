// Package wallclock forbids wall-clock time sources inside the
// deterministic simulation packages. Every timestamp there must come
// from the sim.Loop virtual clock: a single time.Now() or time.Sleep()
// makes results depend on host speed and scheduling, which breaks the
// serial-vs-parallel bit-equality the whole experiment pipeline is
// built on. time.Duration values and arithmetic remain fine — only
// reading or waiting on the real clock is banned.
package wallclock

import (
	"go/ast"

	"spdier/internal/analysis"
)

// banned lists the time-package functions that read or wait on the wall
// clock. Constructors (NewTimer, NewTicker, After, AfterFunc, Tick) are
// included: the timers they arm fire on real time, not simulated time.
var banned = map[string]string{
	"Now":       "read the sim.Loop clock (loop.Now()) instead",
	"Sleep":     "schedule a callback with loop.After instead of blocking",
	"Since":     "subtract sim.Loop timestamps instead",
	"Until":     "subtract sim.Loop timestamps instead",
	"NewTimer":  "use loop.After, which fires on simulated time",
	"NewTicker": "use a rescheduling loop.After callback",
	"After":     "use loop.After, which fires on simulated time",
	"AfterFunc": "use loop.After, which fires on simulated time",
	"Tick":      "use a rescheduling loop.After callback",
}

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time (time.Now, time.Sleep, time.Since, timer constructors) " +
		"in deterministic simulation packages; all time must come from the sim.Loop clock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, isPkgFn := analysis.PkgFuncCall(pass.TypesInfo, call)
			if !isPkgFn || pkgPath != "time" {
				return true
			}
			if hint, isBanned := banned[name]; isBanned {
				pass.Reportf(call.Pos(), "time.%s is wall-clock time in a deterministic package; %s", name, hint)
			}
			return true
		})
	}
	return nil
}
