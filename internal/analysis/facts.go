// The facts layer: serializable per-object (and per-package) findings
// an analyzer exports while analyzing one package and imports while
// analyzing its dependents — the mechanism that turns the per-package
// linter into a cross-package analysis engine. The shape mirrors
// x/tools' AnalyzerFact protocol (Analyzer.FactTypes, Pass.Export/
// ImportObjectFact), so analyzers written against it port directly.
//
// Facts travel two ways:
//
//   - standalone (`simlint ./...`): `go list -deps` emits dependencies
//     before dependents, so one shared in-memory FactStore naturally
//     sees every callee's facts before its callers are analyzed;
//   - vettool (one process per package): facts are serialized into the
//     .vetx file cmd/go asks for (vetConfig.VetxOutput) and re-read
//     from the dependency facts files it supplies (PackageVetx) —
//     exported alongside the compiler export data, exactly like the
//     real unitchecker.
//
// Facts attach to package-level objects only — package-scope funcs,
// vars, types, and methods (addressed as "Type.Method") — which is all
// the analyzers here need and keeps the object naming trivial and
// stable (no objectpath machinery).
package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Fact is a marker interface for analyzer facts. Implementations must
// be pointers to JSON-serializable structs and must be registered (via
// Analyzer.FactTypes or RegisterFactType) before any decode.
type Fact interface {
	AFact() // marker method; no behaviour
}

// factTypeName returns the stable wire name of a fact's dynamic type,
// e.g. "*fieldcover.AccessFact" → "fieldcover.AccessFact".
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.String()
}

var factRegistry = struct {
	sync.Mutex
	byName map[string]reflect.Type // wire name -> struct type (not pointer)
}{byName: map[string]reflect.Type{}}

// RegisterFactType makes a fact type decodable by name. Registration is
// idempotent; registering two distinct types under one name panics.
// Analyzer packages call this from init (and RunAnalyzersFacts registers
// Analyzer.FactTypes automatically), so decoding a facts file only
// requires importing the analyzers that produced it.
func RegisterFactType(f Fact) {
	name := factTypeName(f)
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("analysis: fact %s must be a pointer to a struct", name))
	}
	factRegistry.Lock()
	defer factRegistry.Unlock()
	if prev, ok := factRegistry.byName[name]; ok {
		if prev != t.Elem() {
			panic(fmt.Sprintf("analysis: fact name %s registered for two types", name))
		}
		return
	}
	factRegistry.byName[name] = t.Elem()
}

func newFactByName(name string) (Fact, bool) {
	factRegistry.Lock()
	t, ok := factRegistry.byName[name]
	factRegistry.Unlock()
	if !ok {
		return nil, false
	}
	return reflect.New(t).Interface().(Fact), true
}

// factKey addresses one stored fact. object is "" for package facts.
type factKey struct {
	analyzer string
	pkg      string
	object   string
	typ      string
}

// FactStore holds every fact produced (or imported) during one lint
// run. It is shared across all packages of a standalone run and seeded
// from dependency .vetx files in vettool mode. Safe for concurrent use.
type FactStore struct {
	mu    sync.Mutex
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[factKey]Fact{}}
}

func (s *FactStore) put(k factKey, f Fact) {
	s.mu.Lock()
	s.facts[k] = f
	s.mu.Unlock()
}

// get copies the stored fact for k into dst (a pointer) via a JSON
// round trip, so callers can never alias the stored value.
func (s *FactStore) get(k factKey, dst Fact) bool {
	s.mu.Lock()
	src, ok := s.facts[k]
	s.mu.Unlock()
	if !ok {
		return false
	}
	data, err := json.Marshal(src)
	if err != nil {
		return false
	}
	return json.Unmarshal(data, dst) == nil
}

// ObjectPath names a package-level object for fact addressing: "Name"
// for package-scope functions, vars and types, "Type.Method" for
// methods (receiver pointer-ness ignored). ok is false for objects
// facts cannot attach to (locals, fields, imported package names).
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, isFn := obj.(*types.Func); isFn {
		sig, isSig := fn.Type().(*types.Signature)
		if isSig && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// ExportObjectFact attaches a fact about obj (which must belong to the
// package under analysis) for dependent packages to import. Objects
// facts cannot address are silently skipped.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return
	}
	p.facts.put(factKey{p.Analyzer.Name, obj.Pkg().Path(), path, factTypeName(f)}, f)
}

// ImportObjectFact copies the fact of f's type previously exported for
// obj (by this analyzer, in obj's package) into f. It reports whether a
// fact was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	return p.facts.get(factKey{p.Analyzer.Name, obj.Pkg().Path(), path, factTypeName(f)}, f)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts == nil {
		return
	}
	p.facts.put(factKey{p.Analyzer.Name, p.Pkg.Path(), "", factTypeName(f)}, f)
}

// ImportPackageFact copies the package fact of f's type exported for
// pkg into f, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.get(factKey{p.Analyzer.Name, pkg.Path(), "", factTypeName(f)}, f)
}

// Wire format: a JSON object with a magic field, so a facts file
// written by an older simlint (or any other tool's vetx output) is
// recognized and ignored rather than misdecoded.
const factsMagic = "simlint-facts"

type wireFacts struct {
	Magic   string     `json:"simlintFacts"`
	Version int        `json:"v"`
	Facts   []wireFact `json:"facts"`
}

type wireFact struct {
	Analyzer string          `json:"a"`
	Pkg      string          `json:"pkg"`
	Object   string          `json:"obj,omitempty"`
	Type     string          `json:"t"`
	Data     json.RawMessage `json:"d"`
}

// Encode serializes every fact in the store (the package under analysis
// plus everything imported into it, so dependents see transitive facts
// regardless of how cmd/go prunes its PackageVetx map). The output is
// deterministic: facts are sorted by (pkg, object, analyzer, type).
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	keys := make([]factKey, 0, len(s.facts))
	for k := range s.facts {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.object != b.object {
			return a.object < b.object
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.typ < b.typ
	})
	w := wireFacts{Magic: factsMagic, Version: 1}
	for _, k := range keys {
		s.mu.Lock()
		f := s.facts[k]
		s.mu.Unlock()
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("analysis: encoding fact %s/%s: %w", k.pkg, k.object, err)
		}
		w.Facts = append(w.Facts, wireFact{Analyzer: k.analyzer, Pkg: k.pkg, Object: k.object, Type: k.typ, Data: data})
	}
	return json.Marshal(w)
}

// Decode merges a facts file into the store. Unrecognized files (no
// magic — e.g. a legacy placeholder vetx) are ignored without error;
// facts whose type is not registered are skipped (an analyzer that was
// removed can leave stale facts behind harmlessly).
func (s *FactStore) Decode(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if !strings.HasPrefix(trimmed, "{") || !strings.Contains(trimmed, factsMagic) {
		return nil
	}
	var w wireFacts
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	if w.Magic != factsMagic {
		return nil
	}
	for _, wf := range w.Facts {
		f, ok := newFactByName(wf.Type)
		if !ok {
			continue
		}
		if err := json.Unmarshal(wf.Data, f); err != nil {
			return fmt.Errorf("analysis: decoding %s fact for %s.%s: %w", wf.Type, wf.Pkg, wf.Object, err)
		}
		s.put(factKey{wf.Analyzer, wf.Pkg, wf.Object, wf.Type}, f)
	}
	return nil
}
