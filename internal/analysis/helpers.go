package analysis

import (
	"go/ast"
	"go/types"
)

// PkgFuncCall reports the package path and name of the function a call
// invokes when the callee is a package-qualified identifier
// (pkg.Func(...)); ok is false for method calls, locals and builtins.
func PkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pkgName, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	return pkgName.Imported().Path(), fn.Name(), true
}

// MethodCallName reports the method name of a call on a receiver value
// (x.M(...)); ok is false for package-qualified function calls.
func MethodCallName(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	if s, found := info.Selections[sel]; found && s.Kind() == types.MethodVal {
		return s.Obj().Name(), true
	}
	return "", false
}

// CalleeFunc resolves the function or method a call statically invokes:
// a plain identifier (local or dot-imported function), a
// package-qualified function, or a method on a value. ok is false for
// calls through function values, interface methods resolved
// dynamically, builtins and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, isFn := info.Uses[fun].(*types.Func); isFn {
			return fn, true
		}
	case *ast.SelectorExpr:
		if sel, found := info.Selections[fun]; found && sel.Kind() == types.MethodVal {
			if fn, isFn := sel.Obj().(*types.Func); isFn {
				return fn, true
			}
			return nil, false
		}
		if fn, isFn := info.Uses[fun.Sel].(*types.Func); isFn {
			return fn, true
		}
	}
	return nil, false
}

// IsNamedType reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// EnclosingFunc returns the innermost function declaration or literal
// body containing pos, searching file.
func EnclosingFunc(file *ast.File, pos ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos.End() || n.End() < pos.Pos() {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil && fn.Body.Pos() <= pos.Pos() && pos.End() <= fn.Body.End() {
				body = fn.Body
			}
		case *ast.FuncLit:
			if fn.Body.Pos() <= pos.Pos() && pos.End() <= fn.Body.End() {
				body = fn.Body
			}
		}
		return true
	})
	return body
}
