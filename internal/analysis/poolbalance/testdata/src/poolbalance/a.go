// Package poolbalance exercises acquisition-site leaks and sync.Pool
// Get/Put asymmetry against balanced usage.
package poolbalance

import "sync"

type segment struct{ n int }

type network struct {
	free []*segment
}

func (n *network) getSeg() *segment {
	if ln := len(n.free); ln > 0 {
		s := n.free[ln-1]
		n.free = n.free[:ln-1]
		return s
	}
	return &segment{}
}

func (n *network) putSeg(s *segment) { n.free = append(n.free, s) }

// discard: the classic leak — acquire and drop on the floor.
func discard(n *network) {
	n.getSeg() // want `result of n\.getSeg discarded`
}

// reacquireLeak: the second acquisition overwrites s and is never
// consumed; the first segment was released, the second cannot be.
func reacquireLeak(n *network) {
	s := n.getSeg()
	n.putSeg(s)
	s = n.getSeg() // want `s acquired from n\.getSeg is never used afterwards`
}

// balanced: one acquire, one release — silent.
func balanced(n *network) {
	s := n.getSeg()
	n.putSeg(s)
}

// passedOn: handing the segment to any call counts as consumption; the
// release path is the callee's concern (and the runtime audit's).
func passedOn(n *network, deliver func(*segment)) {
	s := n.getSeg()
	deliver(s)
}

// leakyPool is Get from below but never Put anywhere in the package.
var leakyPool = sync.Pool{New: func() any { return new(segment) }} // want `leakyPool has Get calls but no Put`

func usesLeaky() *segment {
	return leakyPool.Get().(*segment)
}

// balancedPool sees both directions.
var balancedPool = sync.Pool{New: func() any { return new(segment) }}

func getBalanced() *segment  { return balancedPool.Get().(*segment) }
func putBalanced(s *segment) { balancedPool.Put(s) }

// discardGet: dropping a pooled object at the Get site.
func discardGet() {
	balancedPool.Get() // want `result of balancedPool\.Get discarded`
}

// slotLoop mirrors sim's event-slot pool: allocSlot hands out an index
// into a slot arena and freeSlot recycles it. The same acquisition
// discipline applies — a dropped slot id can never be freed.
type slotLoop struct {
	free []int32
}

func (l *slotLoop) allocSlot() int32 {
	if n := len(l.free); n > 0 {
		id := l.free[n-1]
		l.free = l.free[:n-1]
		return id
	}
	return 0
}

func (l *slotLoop) freeSlot(id int32) { l.free = append(l.free, id) }

// discardSlot: an allocated slot index dropped on the floor.
func discardSlot(l *slotLoop) {
	l.allocSlot() // want `result of l\.allocSlot discarded`
}

// slotNeverUsed: bound but never consumed; the slot leaks from the
// arena's free list.
func slotNeverUsed(l *slotLoop) {
	id := l.allocSlot()
	l.freeSlot(id)
	id = l.allocSlot() // want `id acquired from l\.allocSlot is never used afterwards`
}

// slotBalanced: allocate, schedule, free — silent.
func slotBalanced(l *slotLoop) {
	id := l.allocSlot()
	l.freeSlot(id)
}
