// Package poolbalance enforces pool discipline on the hot-path object
// pools: tcpsim's segment pool (getSeg/putSeg, audited dynamically by
// Network.segsLive), sim's event-slot pool (allocSlot/freeSlot, the
// arena behind every Timer), and the sync.Pool recycling in spdy/stats.
// Two static checks complement the runtime audit:
//
//  1. An acquired pooled object must be consumed: a getSeg() or
//     pool.Get() whose result is discarded, or bound to a variable that
//     is never used again, can never be released — the leak exists at
//     the acquisition site, before any test runs.
//  2. A sync.Pool must be used symmetrically within its package: a pool
//     with Get calls but no Put anywhere (or vice versa) defeats
//     recycling entirely and usually means a release path was lost in a
//     refactor.
//
// These are deliberately acquisition-site heuristics, not an escape
// analysis: a conditional path that drops a consumed segment is caught
// by the segsLive invariant checker at run time, not here.
package poolbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"spdier/internal/analysis"
)

// Analyzer is the poolbalance check.
var Analyzer = &analysis.Analyzer{
	Name: "poolbalance",
	Doc: "flag pool acquisitions whose result is discarded or never consumed, and sync.Pool " +
		"variables with asymmetric Get/Put usage",
	Run: run,
}

// poolUse tallies Get/Put calls against one sync.Pool variable.
type poolUse struct {
	decl token.Pos
	name string
	gets int
	puts int
}

func run(pass *analysis.Pass) error {
	pools := map[types.Object]*poolUse{}
	for _, file := range pass.Files {
		collectPoolDecls(pass, file, pools)
	}
	for _, file := range pass.Files {
		checkFile(pass, file, pools)
	}
	reportAsymmetry(pass, pools)
	return nil
}

func checkFile(pass *analysis.Pass, file *ast.File, pools map[types.Object]*poolUse) {
	handled := map[*ast.CallExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, isCall := ast.Unparen(stmt.X).(*ast.CallExpr); isCall {
				handled[call] = true
				if name, poolObj, isAcq := acquisition(pass, call); isAcq {
					tally(pools, poolObj)
					pass.Reportf(call.Pos(), "result of %s discarded: the acquired object can never be released back to the pool", name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
					handled[call] = true
					checkAssignedAcquisition(pass, file, stmt, i, call, pools)
				}
			}
		case *ast.CallExpr:
			// Acquisitions embedded in larger expressions (arguments,
			// returns, composites) are consumed by construction: tally
			// the pool traffic, report nothing.
			if !handled[stmt] {
				if _, poolObj, isAcq := acquisition(pass, stmt); isAcq {
					tally(pools, poolObj)
				}
			}
			if poolObj, isPut := putCall(pass, stmt); isPut {
				if use := pools[poolObj]; use != nil {
					use.puts++
				}
			}
		}
		return true
	})
}

// checkAssignedAcquisition handles `v := pool.Get()` / `seg := n.getSeg()`:
// v must be mentioned again after the acquisition.
func checkAssignedAcquisition(pass *analysis.Pass, file *ast.File, stmt *ast.AssignStmt, i int, call *ast.CallExpr, pools map[types.Object]*poolUse) {
	name, poolObj, isAcq := acquisition(pass, call)
	if !isAcq {
		return
	}
	tally(pools, poolObj)
	if len(stmt.Lhs) <= i {
		return
	}
	id, isID := ast.Unparen(stmt.Lhs[i]).(*ast.Ident)
	if !isID || id.Name == "_" {
		if isID {
			pass.Reportf(call.Pos(), "result of %s assigned to _: the acquired object can never be released back to the pool", name)
		}
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if !usedAfter(pass, file, obj, stmt.End()) {
		pass.Reportf(call.Pos(), "%s acquired from %s is never used afterwards: it can never be released back to the pool", id.Name, name)
	}
}

// acquisition reports whether call acquires a pooled object — a method
// or function named getSeg or allocSlot (the segment and event-slot
// pools), or Get on a sync.Pool. For sync.Pool Get calls on a plain
// identifier it also returns the pool variable.
func acquisition(pass *analysis.Pass, call *ast.CallExpr) (name string, pool types.Object, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "getSeg", "allocSlot":
		return types.ExprString(sel), nil, true
	case "Get":
		recv := pass.TypesInfo.Types[sel.X].Type
		if recv == nil || !analysis.IsNamedType(recv, "sync", "Pool") {
			return "", nil, false
		}
		if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
			pool = pass.TypesInfo.Uses[id]
		}
		return types.ExprString(sel), pool, true
	}
	return "", nil, false
}

// putCall reports whether call is a sync.Pool Put, returning the pool
// variable when the receiver is a plain identifier.
func putCall(pass *analysis.Pass, call *ast.CallExpr) (types.Object, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Put" {
		return nil, false
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil || !analysis.IsNamedType(recv, "sync", "Pool") {
		return nil, false
	}
	if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
		return pass.TypesInfo.Uses[id], true
	}
	return nil, true
}

// usedAfter reports whether obj is referenced anywhere in file after
// pos. A single later mention counts as consumption: the object reached
// a release path, a container, a caller or the wire. Conditional leaks
// beyond that are the runtime pool audit's job.
func usedAfter(pass *analysis.Pass, file *ast.File, obj types.Object, pos token.Pos) bool {
	used := false
	ast.Inspect(file, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, isID := n.(*ast.Ident); isID && id.Pos() > pos && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

// collectPoolDecls records every package-level sync.Pool variable so
// Get/Put traffic can be tallied against its declaration.
func collectPoolDecls(pass *analysis.Pass, file *ast.File, pools map[types.Object]*poolUse) {
	for _, decl := range file.Decls {
		gd, isGen := decl.(*ast.GenDecl)
		if !isGen || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, isVS := spec.(*ast.ValueSpec)
			if !isVS {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj != nil && analysis.IsNamedType(obj.Type(), "sync", "Pool") {
					pools[obj] = &poolUse{decl: name.Pos(), name: name.Name}
				}
			}
		}
	}
}

func tally(pools map[types.Object]*poolUse, obj types.Object) {
	if obj == nil {
		return
	}
	if use := pools[obj]; use != nil {
		use.gets++
	}
}

// reportAsymmetry flags pools whose package never Puts what it Gets (or
// never Gets what it Puts) — in deterministic declaration order.
func reportAsymmetry(pass *analysis.Pass, pools map[types.Object]*poolUse) {
	var uses []*poolUse
	for _, use := range pools {
		uses = append(uses, use)
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].decl < uses[j].decl })
	for _, use := range uses {
		switch {
		case use.gets > 0 && use.puts == 0:
			pass.Reportf(use.decl, "sync.Pool %s has Get calls but no Put in this package: nothing is ever recycled (lost release path?)", use.name)
		case use.puts > 0 && use.gets == 0:
			pass.Reportf(use.decl, "sync.Pool %s has Put calls but no Get in this package: recycled objects are never reused", use.name)
		}
	}
}
