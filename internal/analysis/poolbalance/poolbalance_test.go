package poolbalance_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/poolbalance"
)

func TestPoolBalance(t *testing.T) {
	analysistest.Run(t, poolbalance.Analyzer, "poolbalance")
}
