package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// ExportLookup resolves import paths to compiler export-data files. It
// is seeded from `go list -export` output (standalone mode) or the vet
// unitchecker config (vettool mode), and can fall back to invoking
// `go list` per path for imports discovered late (testdata fixtures).
type ExportLookup struct {
	mu        sync.Mutex
	exports   map[string]string // import path -> export file
	importMap map[string]string // source import path -> canonical
	golist    bool              // fall back to `go list -export` on miss
	dir       string            // working directory for the fallback
}

// NewExportLookup returns a lookup seeded with the given export map.
// When golistFallback is set, unknown paths are resolved by shelling
// out to `go list -export` in dir (module root), so stdlib and
// module-local imports both work without pre-seeding.
func NewExportLookup(exports, importMap map[string]string, golistFallback bool, dir string) *ExportLookup {
	if exports == nil {
		exports = map[string]string{}
	}
	return &ExportLookup{exports: exports, importMap: importMap, golist: golistFallback, dir: dir}
}

// Add registers the export file for an import path.
func (l *ExportLookup) Add(path, file string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.exports[path] = file
}

func (l *ExportLookup) open(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	if mapped, ok := l.importMap[path]; ok {
		path = mapped
	}
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok && l.golist {
		out, err := runGoList(l.dir, "-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %s", path)
		}
		l.Add(path, file)
		ok = true
	}
	if !ok {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	return os.Open(file)
}

// Importer returns a go/types importer that reads gc export data
// through this lookup. The returned importer caches imported packages,
// so it should be shared across all packages of one load.
func (l *ExportLookup) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", l.open)
}

func runGoList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool, type-checks every matched
// (non-dependency) package from source against export data for its
// imports, and returns them in `go list` order. dir is the module root
// the patterns are interpreted in.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-export", "-deps", "-json"}, patterns...)
	out, err := runGoList(dir, args...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	lookup := NewExportLookup(nil, nil, false, dir)
	imp := lookup.Importer(fset)

	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			lookup.Add(lp.ImportPath, lp.Export)
		}
		// -deps emits dependencies before dependents, so by the time a
		// target package is type-checked every import (stdlib or
		// module-local) already has export data registered.
		if lp.DepOnly {
			continue
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := TypeCheck(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheck parses and type-checks one package from the given source
// files, resolving imports through imp.
func TypeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      astFiles,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// LoadDir parses and type-checks a bare directory of Go files that is
// not a listable package (a testdata fixture), resolving its imports by
// shelling out to `go list -export` from moduleRoot. The directory's
// files must all belong to one package.
func LoadDir(dir, moduleRoot string) (*Package, error) {
	pkgs, err := LoadDirs(moduleRoot, []string{dir}, map[string]string{dir: dir})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// sourceImporter resolves a fixed set of import paths to packages
// already type-checked from source, delegating everything else (stdlib,
// module packages) to a fallback export-data importer. It is what lets
// one fixture directory import another without either being listable.
type sourceImporter struct {
	pkgs     map[string]*types.Package
	fallback types.Importer
}

func (si *sourceImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	return si.fallback.Import(path)
}

// LoadDirs type-checks a set of bare fixture directories in the given
// order. order lists import paths; dirs maps each to its directory.
// Later entries may import earlier ones by their import-path key
// (mirroring the analysistest GOPATH-style layout, where
// testdata/src/dep is imported as "dep"); all other imports resolve
// through `go list -export` from moduleRoot.
func LoadDirs(moduleRoot string, order []string, dirs map[string]string) ([]*Package, error) {
	fset := token.NewFileSet()
	lookup := NewExportLookup(nil, nil, true, moduleRoot)
	si := &sourceImporter{pkgs: map[string]*types.Package{}, fallback: lookup.Importer(fset)}
	var pkgs []*Package
	for _, path := range order {
		dir, ok := dirs[path]
		if !ok {
			return nil, fmt.Errorf("no directory given for %s", path)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		pkg, err := TypeCheck(fset, si, path, dir, files)
		if err != nil {
			return nil, err
		}
		si.pkgs[path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
