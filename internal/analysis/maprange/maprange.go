// Package maprange flags map iteration whose body performs
// order-sensitive work: emitting output, accumulating into a slice that
// outlives the loop, scheduling simulator events, or sending on a
// channel. Go randomizes map iteration order per execution, so any such
// loop is a latent bit-equality breaker — the classic way a
// deterministic simulator quietly stops being one. The accepted idiom
// is collect-keys-then-sort, which the analyzer recognizes and leaves
// alone: an append of loop state into a slice that is subsequently
// passed to sort/slices is ordered by the sort, not the map.
//
// Purely commutative bodies (counting, summing, building another map,
// writing through a deterministic index) are not flagged.
package maprange

import (
	"go/ast"
	"go/types"

	"spdier/internal/analysis"
)

// Analyzer is the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map loops that emit output, accumulate slices, schedule events or send on " +
		"channels — map order is randomized per run; sort keys first",
	Run: run,
}

// schedulers are method names that enqueue simulator events; calling
// one per map entry schedules events in random order, which reorders
// every later tiebreak in the event loop.
var schedulers = map[string]bool{
	"After": true, "At": true, "AtTime": true, "Schedule": true, "AfterFunc": true,
}

// printers are fmt functions that render output directly.
var printers = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writeMethods are output-sink method names (io.Writer, bytes.Buffer,
// strings.Builder, the repo's Report type).
var writeMethods = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			rng, isRange := n.(*ast.RangeStmt)
			if !isRange {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, file, rng)
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	sorted := sortedExprsAfter(pass, file, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			if declaredOutside(pass, stmt.Chan, rng) {
				pass.Reportf(stmt.Pos(), "send on %s inside range over map: delivery order is randomized per run; sort the keys first", types.ExprString(stmt.Chan))
			}
		case *ast.AssignStmt:
			checkAppend(pass, stmt, rng, sorted)
		case *ast.CallExpr:
			checkCall(pass, stmt, rng)
		}
		return true
	})
}

// checkCall flags output and event-scheduling calls inside the loop.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) {
	if pkgPath, name, isPkgFn := analysis.PkgFuncCall(pass.TypesInfo, call); isPkgFn {
		if pkgPath == "fmt" && printers[name] {
			pass.Reportf(call.Pos(), "fmt.%s inside range over map: output order is randomized per run; sort the keys first", name)
		}
		return
	}
	name, isMethod := analysis.MethodCallName(pass.TypesInfo, call)
	if !isMethod {
		return
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if schedulers[name] {
		pass.Reportf(call.Pos(), "%s.%s schedules an event inside range over map: events enqueue in randomized order; sort the keys first", types.ExprString(sel.X), name)
		return
	}
	if writeMethods[name] && declaredOutside(pass, sel.X, rng) {
		pass.Reportf(call.Pos(), "%s.%s inside range over map: output order is randomized per run; sort the keys first", types.ExprString(sel.X), name)
	}
}

// checkAppend flags `v = append(v, ...)` where v outlives the loop and
// is never subsequently sorted in the enclosing function.
func checkAppend(pass *analysis.Pass, stmt *ast.AssignStmt, rng *ast.RangeStmt, sorted map[string]bool) {
	for i, rhs := range stmt.Rhs {
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		if !isCall || len(stmt.Lhs) <= i {
			continue
		}
		if id, isID := ast.Unparen(call.Fun).(*ast.Ident); !isID || id.Name != "append" {
			continue
		} else if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		lhs := stmt.Lhs[i]
		if !declaredOutside(pass, lhs, rng) {
			continue
		}
		if sorted[types.ExprString(lhs)] {
			continue // collect-then-sort idiom: order restored after the loop
		}
		if keyedScatter(pass, lhs, rng) {
			// out[key] = append(out[key], v): each map key owns its own
			// bucket, so the per-bucket contents are independent of the
			// iteration order — a commutative scatter, not accumulation.
			continue
		}
		pass.Reportf(stmt.Pos(), "append to %s inside range over map accumulates in randomized order; sort it afterwards or iterate sorted keys", types.ExprString(lhs))
	}
}

// declaredOutside reports whether expr refers to storage declared
// outside the range statement (so per-iteration effects on it outlive
// the loop and their order is observable). Selector and index targets
// are conservatively treated as outside.
func declaredOutside(pass *analysis.Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return true
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return true
}

// keyedScatter reports whether lhs is an index expression whose index
// mentions the range statement's key or value variable, so every
// iteration writes a distinct, key-owned bucket.
func keyedScatter(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	idx, isIdx := ast.Unparen(lhs).(*ast.IndexExpr)
	if !isIdx {
		return false
	}
	loopVars := map[types.Object]bool{}
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if v == nil {
			continue
		}
		if id, isID := ast.Unparen(v).(*ast.Ident); isID {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	mentions := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, isID := n.(*ast.Ident); isID && loopVars[pass.TypesInfo.Uses[id]] {
			mentions = true
		}
		return !mentions
	})
	return mentions
}

// sortedExprsAfter collects the rendered form of every expression that
// is passed to a sort.* / slices.Sort* call after the range loop in the
// same function — the targets of the collect-then-sort idiom.
func sortedExprsAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) map[string]bool {
	out := map[string]bool{}
	body := analysis.EnclosingFunc(file, rng)
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < rng.End() {
			return true
		}
		pkgPath, _, isPkgFn := analysis.PkgFuncCall(pass.TypesInfo, call)
		if !isPkgFn || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			out[types.ExprString(ast.Unparen(arg))] = true
		}
		return true
	})
	return out
}
