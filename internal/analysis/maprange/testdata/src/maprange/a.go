// Package maprange exercises order-sensitive map-iteration bodies
// (flagged) against the commutative and collect-then-sort shapes that
// must stay quiet.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

func emit(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside range over map`
	}
}

func accumulate(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map`
	}
	return out
}

// collectThenSort is the accepted idiom: the sort below re-establishes
// a deterministic order, so the append is not a finding.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type loop struct{}

func (loop) After(d int, fn func()) {}

func schedule(l loop, m map[string]func()) {
	for _, fn := range m {
		l.After(1, fn) // want `schedules an event inside range over map`
	}
}

func send(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `send on ch inside range over map`
	}
}

// keyedScatter writes a distinct bucket per key: buckets commute, no
// finding.
func keyedScatter(src map[int]float64, dst map[int][]float64) {
	for k, v := range src {
		dst[k] = append(dst[k], v)
	}
}

// count is pure commutative aggregation.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// localSink: a writer created inside the loop body is per-iteration
// state, not shared output.
func localSink(m map[string]string) map[string]string {
	out := map[string]string{}
	for k, v := range m {
		var b strings.Builder
		b.WriteString(v)
		out[k] = b.String()
	}
	return out
}

// sharedSink: writing to a builder that outlives the loop is emission
// in random order.
func sharedSink(m map[string]string) string {
	var b strings.Builder
	for _, v := range m {
		b.WriteString(v) // want `b\.WriteString inside range over map`
	}
	return b.String()
}
