package maprange_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, maprange.Analyzer, "maprange")
}
