// Package analysis is a self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built only on the standard
// library so the repo lints itself without network access or external
// module dependencies. It exists to enforce, at compile time, the
// invariants every simulation result rests on: no wall-clock time in
// the deterministic core, no global RNG, no order-dependent map
// iteration feeding output or event scheduling, balanced pool
// acquire/release, and named duration thresholds in probe/report code.
//
// The API mirrors x/tools deliberately (Analyzer, Pass, Diagnostic), so
// if the real dependency ever becomes available the analyzers port over
// with close to zero changes; until then cmd/simlint drives them both
// standalone and through go vet's -vettool unitchecker protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Run inspects a single package
// (one Pass) and reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> <reason> suppression directives.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why, shown by `simlint -help`.
	Doc string

	// FactTypes lists the fact types this analyzer exports or imports
	// (one zero value per type). The driver registers them for wire
	// decoding before any pass runs. Analyzers without facts leave it
	// nil.
	FactTypes []Fact

	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries the per-package inputs an Analyzer.Run needs, and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// fileFilter, when non-nil, restricts reporting to positions whose
	// file basename it accepts. The driver uses it to scope analyzers
	// like clockarith to probe/report/metrics files without the
	// analyzer itself knowing the repo layout. A filter that rejects
	// everything mutes an analyzer's diagnostics entirely while its
	// fact exports still happen — how fact-producing analyzers run
	// over packages outside their reporting scope.
	fileFilter func(base string) bool

	// facts is the run-wide fact store; nil when the driver runs
	// without facts (Export/Import become no-ops).
	facts *FactStore

	diags *[]Diagnostic
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos. Findings outside the pass's file
// filter (when one is installed) are dropped.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.fileFilter != nil && !p.fileFilter(baseName(position.Filename)) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// RunConfig carries the cross-cutting inputs for one analysis run.
type RunConfig struct {
	// Facts is the shared fact store. In a standalone multi-package run
	// the same store is passed for every package (dependency-order
	// loading makes dependee facts visible to dependents); in vettool
	// mode it is seeded from the dependency .vetx files first.
	Facts *FactStore

	// FileFilters maps analyzer name to an optional per-file reporting
	// scope predicate (see Pass.fileFilter).
	FileFilters map[string]func(base string) bool
}

// RunAnalyzers executes each analyzer over the loaded package and
// returns the combined diagnostics sorted by position. fileFilters maps
// analyzer name to an optional per-file scope predicate. Facts are
// confined to a fresh store; multi-package drivers that need
// cross-package facts use RunAnalyzersFacts with a shared store.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, fileFilters map[string]func(base string) bool) ([]Diagnostic, error) {
	return RunAnalyzersFacts(pkg, analyzers, RunConfig{Facts: NewFactStore(), FileFilters: fileFilters})
}

// RunAnalyzersFacts executes each analyzer over the loaded package with
// an explicit run configuration, registering every analyzer's fact
// types first, and returns the combined diagnostics sorted by position.
func RunAnalyzersFacts(pkg *Package, analyzers []*Analyzer, cfg RunConfig) ([]Diagnostic, error) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			RegisterFactType(f)
		}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			fileFilter: cfg.FileFilters[a.Name],
			facts:      cfg.Facts,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the stable order every driver mode prints in.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// Several findings can share a position (fieldcover anchors all
		// of a rule's misses to the mapping function when the struct is
		// foreign); order them by message so output is deterministic.
		return a.Message < b.Message
	})
}
