package fieldcover_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/fieldcover"
)

func TestDirectiveGoldens(t *testing.T) {
	analysistest.Run(t, fieldcover.Analyzer, "fieldcover")
}

func TestSuppression(t *testing.T) {
	analysistest.RunSuppressed(t, fieldcover.Analyzer, "fieldcoverallow")
}

// TestCrossPackageFacts drives a policy rule whose struct lives in a
// dependency: coverage of Wire.A is only visible through the AccessFact
// exported while analyzing fieldcoverdep, so a failure here means facts
// stopped flowing across package boundaries.
func TestCrossPackageFacts(t *testing.T) {
	a := fieldcover.New([]fieldcover.Rule{{
		Pkg:        "fieldcoverx",
		StructPkg:  "fieldcoverdep",
		Struct:     "Wire",
		Func:       "Encode",
		Direction:  fieldcover.Read,
		Transitive: true,
	}})
	analysistest.RunWithDeps(t, a, "fieldcoverx", "fieldcoverdep")
}

// TestCrossPackageWithoutTransitive proves the direct/transitive
// distinction across packages too: the same rule without Transitive
// must flag A (covered only via the dep call) as well as C.
func TestCrossPackageWithoutTransitive(t *testing.T) {
	a := fieldcover.New([]fieldcover.Rule{{
		Pkg:       "fieldcoverx",
		StructPkg: "fieldcoverdep",
		Struct:    "Wire",
		Func:      "Encode",
		Direction: fieldcover.Read,
	}})
	pkgs := analysistest.LoadPackages(t, "fieldcoverx", "fieldcoverdep")
	diags := analysistest.Diagnostics(t, a, pkgs)
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %q, want 2 (A and C uncovered without transitive closure)", len(diags), msgs)
	}
	for i, field := range []string{"Wire.A", "Wire.C"} {
		if got := diags[i].Message; !contains(got, field+" is not read by Encode") {
			t.Errorf("diag %d = %q, want %s uncovered", i, got, field)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
