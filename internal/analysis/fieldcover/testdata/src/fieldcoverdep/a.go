// The dependency side of the cross-package coverage test: declares the
// struct and an exported helper whose field accesses travel to
// dependents as an AccessFact.
package fieldcoverdep

// Wire is mapped by a function in the dependent package fieldcoverx.
type Wire struct {
	A int
	B int
	C int
}

// ReadA reads Wire.A on behalf of callers in other packages.
func ReadA(w Wire) int { return w.A }
