// Suppression corpus: a //lint:allow fieldcover with a reason silences
// the finding on a deliberately unmapped field; uncovered fields
// without one still fire.
package fieldcoverallow

//lint:fieldcover read=Enc
type Rec struct {
	A int
	//lint:allow fieldcover derived at load time, never serialized
	B int
	C int // want `Rec\.C is not read by Enc`
}

// Enc reads only A.
func Enc(r Rec) int { return r.A }
