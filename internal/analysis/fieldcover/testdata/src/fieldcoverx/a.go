// The dependent side of the cross-package coverage test: Encode covers
// Wire.A only through fieldcoverdep.ReadA — visible solely via the
// AccessFact exported when fieldcoverdep was analyzed — and misses
// Wire.C entirely. The struct lives in another package, so the finding
// anchors to the mapping function.
package fieldcoverx

import "fieldcoverdep"

// Encode reads B directly and A through the dep helper; C is uncovered.
func Encode(w fieldcoverdep.Wire) int { // want `Wire\.C is not read by Encode or its callees`
	return fieldcoverdep.ReadA(w) + w.B
}
