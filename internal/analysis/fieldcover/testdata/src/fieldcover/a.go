// The fieldcover golden corpus: directive-driven rules, read and write
// directions, direct vs transitive coverage, composite-literal and
// address-taken accesses, and malformed directives.
package fieldcover

import (
	"fmt"
	"strconv"
)

//lint:fieldcover read=Key write=Load
type Cfg struct {
	A int
	B int // want `Cfg\.B is not written by Load`
	C int // want `Cfg\.C is not read by Key` `Cfg\.C is not written by Load`
}

// Key reads A and B but never C.
func Key(c Cfg) string {
	return fmt.Sprint(c.A, c.B)
}

// Load writes only A.
func Load(c *Cfg) {
	c.A = 1
}

// Transitive coverage: Sum reads X itself and Y through a callee.
//
//lint:fieldcover read=Sum transitive
type Pair struct {
	X int
	Y int
	Z int // want `Pair\.Z is not read by Sum or its callees`
}

func Sum(p Pair) int { return p.X + sumY(p) }

func sumY(p Pair) int { return p.Y }

// Direct (non-transitive) coverage does NOT chase callees: helper reads
// M, but the rule demands Direct itself read it.
//
//lint:fieldcover read=Direct
type Solo struct {
	M int // want `Solo\.M is not read by Direct`
}

func Direct(s Solo) int { return helper(s) }

func helper(s Solo) int { return s.M }

// Method mappings and op-assign / keyed-literal classification.
//
//lint:fieldcover write=Dec.Decode
type Dec struct {
	Buf int
	N   int // want `Dec\.N is not written by Dec\.Decode`
}

// Decode op-assigns Buf (a write) but only reads N.
func (d *Dec) Decode() {
	d.Buf += d.N
}

// A keyed composite literal writes exactly the listed fields; an
// unkeyed one writes all of them.
//
//lint:fieldcover write=MakeKeyed,MakeUnkeyed
type Built struct {
	P int
	Q int // want `Built\.Q is not written by MakeKeyed`
}

func MakeKeyed() Built { return Built{P: 1} }

func MakeUnkeyed() Built { return Built{1, 2} }

// Taking a field's address counts as both a read and a write: the
// callee may do either through the pointer.
//
//lint:fieldcover read=Save write=Restore
type Blob struct {
	Data int
}

func Save(b *Blob) string { return strconv.Itoa(*addr(&b.Data)) }

func Restore(b *Blob) { scan(&b.Data) }

func addr(p *int) *int { return p }

func scan(p *int) { *p = 0 }

//lint:fieldcover frobnicate=Key
type Bad struct { // want `malformed //lint:fieldcover directive on Bad: unknown token frobnicate=Key`
	F int
}

//lint:fieldcover transitive
type Empty struct { // want `malformed //lint:fieldcover directive on Empty: needs at least one read= or write= mapping function`
	G int
}

//lint:fieldcover read=NoSuchFunc
type Orphan struct { // want `fieldcover\.Orphan↔NoSuchFunc: mapping function not found`
	H int
}
