// Package fieldcover enforces struct↔mapping-function coverage: every
// field of a policy-designated struct must be read (or, for decode
// directions, written) by its mapping function, so that adding a field
// without wiring it through the mapping is a lint failure rather than a
// silent bug. This is the static pin under the repo's three
// hand-maintained serializations — the Options cache key (a missed
// field lets two different configurations share one cache entry), the
// accumulator codecs (decode∘encode is only the identity if both
// directions touch every field), and transport.Spec.Apply (a missed
// field means an experiment arm silently doesn't configure what it
// claims to measure).
//
// Coverage is computed from the mapping function's own body (the
// default: the invariant is "THIS function touches every field", so a
// read in some callee does not excuse the mapping) or, for rules marked
// transitive, from the function's call-graph closure — same-package
// callees by walking their bodies, cross-package callees through
// AccessFacts exported when their package was analyzed.
//
// Rules come from two sources: the driver's policy table (simlint), and
// in-source directives in the struct's doc comment:
//
//	//lint:fieldcover read=CacheKey write=Dec.Decode transitive
//	type Options struct { ... }
//
// Each function listed under read= must read every field; each under
// write= must write every field; `transitive` extends all of the
// directive's rules to callees. Deliberately unmapped fields carry a
// //lint:allow fieldcover <reason> on their declaration line.
package fieldcover

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"spdier/internal/analysis"
)

// Direction says which kind of field access a rule demands.
type Direction int

const (
	// Read requires every field to be read by the mapping (encode/key
	// directions).
	Read Direction = iota
	// Write requires every field to be written by the mapping (decode
	// directions).
	Write
)

func (d Direction) verb() string {
	if d == Write {
		return "written"
	}
	return "read"
}

// Rule pins one (struct, mapping function) pair.
type Rule struct {
	// Pkg is the import path of the package declaring the mapping
	// function; the rule activates when that package is analyzed.
	Pkg string
	// StructPkg is the import path declaring the struct; empty means
	// the struct lives in Pkg too.
	StructPkg string
	// Struct is the struct type's name.
	Struct string
	// Func names the mapping: "Name" or "Type.Method".
	Func string
	// Direction selects read or write coverage.
	Direction Direction
	// Transitive extends coverage to the function's callees (same
	// package by body walk, cross package through AccessFacts).
	Transitive bool

	// pos anchors diagnostics about the rule itself (a directive's
	// struct); zero for policy-table rules.
	pos token.Pos
}

// AccessFact is the per-function fact fieldcover exports: which
// named-struct fields the function (including its callees) reads and
// writes, keyed by "importpath.StructName". Dependent packages import
// it to resolve transitive coverage through cross-package calls.
type AccessFact struct {
	Reads  map[string][]string `json:"reads,omitempty"`
	Writes map[string][]string `json:"writes,omitempty"`
}

// AFact marks AccessFact as an analyzer fact.
func (*AccessFact) AFact() {}

// New returns a fieldcover analyzer enforcing the given policy rules in
// addition to any //lint:fieldcover directives found in source.
func New(rules []Rule) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "fieldcover",
		Doc: "require every field of a policy-designated struct to be read (or written) by its mapping " +
			"function — cache keys, codecs and Spec.Apply must cover new fields or explicitly allow them",
		FactTypes: []analysis.Fact{&AccessFact{}},
		Run:       func(pass *analysis.Pass) error { return run(pass, rules) },
	}
}

// Analyzer enforces //lint:fieldcover directives only; drivers with a
// policy table use New.
var Analyzer = New(nil)

const directive = "//lint:fieldcover"

// structKey identifies a named struct type across packages.
type structKey struct {
	pkg  string
	name string
}

func (k structKey) String() string { return k.pkg + "." + k.name }

// accessSet is what one function body touches: fields read and written
// per struct, plus statically resolved callees.
type accessSet struct {
	reads   map[structKey]map[string]bool
	writes  map[structKey]map[string]bool
	calls   map[*types.Func]bool
	declPos token.Pos
}

func newAccessSet(pos token.Pos) *accessSet {
	return &accessSet{
		reads:   map[structKey]map[string]bool{},
		writes:  map[structKey]map[string]bool{},
		calls:   map[*types.Func]bool{},
		declPos: pos,
	}
}

func mark(m map[structKey]map[string]bool, k structKey, field string) {
	if m[k] == nil {
		m[k] = map[string]bool{}
	}
	m[k][field] = true
}

// merge folds other's accesses (not its callees) into s, reporting
// whether anything new appeared.
func (s *accessSet) merge(other *accessSet) bool {
	changed := false
	for _, pair := range [2]struct{ dst, src map[structKey]map[string]bool }{
		{s.reads, other.reads}, {s.writes, other.writes},
	} {
		for k, fields := range pair.src {
			for f := range fields {
				if !pair.dst[k][f] {
					mark(pair.dst, k, f)
					changed = true
				}
			}
		}
	}
	return changed
}

// mergeFact folds an imported cross-package AccessFact into s.
func (s *accessSet) mergeFact(f *AccessFact) {
	for key, fields := range f.Reads {
		if k, ok := parseStructKey(key); ok {
			for _, field := range fields {
				mark(s.reads, k, field)
			}
		}
	}
	for key, fields := range f.Writes {
		if k, ok := parseStructKey(key); ok {
			for _, field := range fields {
				mark(s.writes, k, field)
			}
		}
	}
}

// parseStructKey splits "importpath.Struct" at the last dot (import
// paths may themselves contain dots; type names cannot).
func parseStructKey(s string) (structKey, bool) {
	i := strings.LastIndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return structKey{}, false
	}
	return structKey{pkg: s[:i], name: s[i+1:]}, true
}

func factOf(s *accessSet) *AccessFact {
	f := &AccessFact{}
	if len(s.reads) > 0 {
		f.Reads = map[string][]string{}
		for k, fields := range s.reads {
			f.Reads[k.String()] = sortedKeys(fields)
		}
	}
	if len(s.writes) > 0 {
		f.Writes = map[string][]string{}
		for k, fields := range s.writes {
			f.Writes[k.String()] = sortedKeys(fields)
		}
	}
	return f
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func run(pass *analysis.Pass, policy []Rule) error {
	own := collectPackage(pass)
	closed := closePackage(pass, own)
	for fn, set := range closed {
		if len(set.reads) > 0 || len(set.writes) > 0 {
			pass.ExportObjectFact(fn, factOf(set))
		}
	}
	rules := directiveRules(pass)
	for _, r := range policy {
		if r.Pkg == pass.Pkg.Path() {
			rules = append(rules, r)
		}
	}
	for _, r := range rules {
		checkRule(pass, r, own, closed)
	}
	return nil
}

// collectPackage computes the direct access set of every function
// declared with a body in the package.
func collectPackage(pass *analysis.Pass) map[*types.Func]*accessSet {
	out := map[*types.Func]*accessSet{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !isFn {
				continue
			}
			set := newAccessSet(fd.Name.Pos())
			collectBody(pass, fd.Body, set)
			out[fn] = set
		}
	}
	return out
}

// collectBody walks one function body classifying every named-struct
// field access as a read, a write, or both.
func collectBody(pass *analysis.Pass, body *ast.BlockStmt, set *accessSet) {
	// First pass: find selector expressions in write positions. A plain
	// assignment LHS is a pure write; everything else that mutates
	// (op-assign, ++/--, &x.F escaping, x.F[i] = v) also reads.
	pureWrite := map[*ast.SelectorExpr]bool{}
	writeAlso := map[*ast.SelectorExpr]bool{}
	markTarget := func(e ast.Expr, pure bool) {
		if sel, isSel := ast.Unparen(e).(*ast.SelectorExpr); isSel {
			if pure {
				pureWrite[sel] = true
			} else {
				writeAlso[sel] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				target := ast.Unparen(lhs)
				markTarget(target, s.Tok == token.ASSIGN || s.Tok == token.DEFINE)
				if idx, isIdx := target.(*ast.IndexExpr); isIdx {
					// x.F[i] = v mutates F's contents and reads its header.
					markTarget(idx.X, false)
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				// &x.F escapes: the callee may both read and write it.
				markTarget(s.X, false)
			}
		case *ast.IncDecStmt:
			markTarget(s.X, false)
		}
		return true
	})

	// Second pass: record field selections, composite-literal writes and
	// static callees.
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			sel, found := pass.TypesInfo.Selections[e]
			if !found || sel.Kind() != types.FieldVal {
				return true
			}
			key, ok := structKeyOf(sel.Recv())
			if !ok {
				return true
			}
			field := e.Sel.Name
			switch {
			case pureWrite[e]:
				mark(set.writes, key, field)
			case writeAlso[e]:
				mark(set.reads, key, field)
				mark(set.writes, key, field)
			default:
				mark(set.reads, key, field)
			}
		case *ast.CompositeLit:
			collectCompositeLit(pass, e, set)
		case *ast.CallExpr:
			if fn, ok := analysis.CalleeFunc(pass.TypesInfo, e); ok {
				set.calls[fn] = true
			}
		}
		return true
	})
}

// collectCompositeLit records a struct literal as writes: keyed elements
// write the named fields, an unkeyed literal writes all of them.
func collectCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, set *accessSet) {
	tv, found := pass.TypesInfo.Types[lit]
	if !found {
		return
	}
	key, ok := structKeyOf(tv.Type)
	if !ok {
		return
	}
	st, isStruct := tv.Type.Underlying().(*types.Struct)
	if !isStruct || len(lit.Elts) == 0 {
		return
	}
	keyed := false
	for _, elt := range lit.Elts {
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			keyed = true
			if id, isID := kv.Key.(*ast.Ident); isID {
				mark(set.writes, key, id.Name)
			}
		}
	}
	if !keyed {
		// An unkeyed literal must list every field in order.
		for i := 0; i < st.NumFields(); i++ {
			mark(set.writes, key, st.Field(i).Name())
		}
	}
}

// structKeyOf names the struct type behind t (after pointer
// indirection); ok is false for unnamed or package-less types.
func structKeyOf(t types.Type) (structKey, bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return structKey{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return structKey{}, false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return structKey{}, false
	}
	return structKey{pkg: obj.Pkg().Path(), name: obj.Name()}, true
}

// closePackage computes each function's transitive access set:
// same-package callees by in-package fixpoint, cross-package callees
// through imported AccessFacts.
func closePackage(pass *analysis.Pass, own map[*types.Func]*accessSet) map[*types.Func]*accessSet {
	closed := map[*types.Func]*accessSet{}
	for fn, set := range own {
		c := newAccessSet(set.declPos)
		c.merge(set)
		for callee := range set.calls {
			c.calls[callee] = true
			if callee.Pkg() != nil && callee.Pkg() != pass.Pkg {
				var f AccessFact
				if pass.ImportObjectFact(callee, &f) {
					c.mergeFact(&f)
				}
			}
		}
		closed[fn] = c
	}
	for changed := true; changed; {
		changed = false
		for fn := range closed {
			for callee := range closed[fn].calls {
				if cs, ok := closed[callee]; ok && callee != fn {
					if closed[fn].merge(cs) {
						changed = true
					}
				}
			}
		}
	}
	return closed
}

// directiveRules parses //lint:fieldcover lines from struct doc
// comments into rules scoped to this package, reporting malformed
// directives at the struct they document.
func directiveRules(pass *analysis.Pass) []Rule {
	var rules []Rule
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, isGen := decl.(*ast.GenDecl)
			if !isGen || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, isType := spec.(*ast.TypeSpec)
				if !isType {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if !strings.HasPrefix(c.Text, directive) {
							continue
						}
						rest := strings.TrimPrefix(c.Text, directive)
						if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
							continue
						}
						rules = append(rules, parseDirective(pass, ts, rest)...)
					}
				}
			}
		}
	}
	return rules
}

// parseDirective turns one directive body into rules for the struct it
// documents. Grammar: read=F1,F2 write=F3 [transitive].
func parseDirective(pass *analysis.Pass, ts *ast.TypeSpec, body string) []Rule {
	var reads, writes []string
	transitive := false
	bad := func(why string) []Rule {
		pass.Reportf(ts.Name.Pos(), "malformed %s directive on %s: %s", directive, ts.Name.Name, why)
		return nil
	}
	for _, tok := range strings.Fields(body) {
		switch {
		case tok == "transitive":
			transitive = true
		case strings.HasPrefix(tok, "read="):
			reads = append(reads, strings.Split(tok[len("read="):], ",")...)
		case strings.HasPrefix(tok, "write="):
			writes = append(writes, strings.Split(tok[len("write="):], ",")...)
		default:
			return bad("unknown token " + tok + " (want read=..., write=..., transitive)")
		}
	}
	if len(reads) == 0 && len(writes) == 0 {
		return bad("needs at least one read= or write= mapping function")
	}
	var rules []Rule
	for _, fn := range reads {
		rules = append(rules, Rule{Pkg: pass.Pkg.Path(), Struct: ts.Name.Name, Func: fn, Direction: Read, Transitive: transitive, pos: ts.Name.Pos()})
	}
	for _, fn := range writes {
		rules = append(rules, Rule{Pkg: pass.Pkg.Path(), Struct: ts.Name.Name, Func: fn, Direction: Write, Transitive: transitive, pos: ts.Name.Pos()})
	}
	return rules
}

// lookupFunc resolves "Name" or "Type.Method" in pkg's scope.
func lookupFunc(pkg *types.Package, name string) *types.Func {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		obj := pkg.Scope().Lookup(name[:i])
		if obj == nil {
			return nil
		}
		named, isNamed := obj.Type().(*types.Named)
		if !isNamed {
			return nil
		}
		for m := 0; m < named.NumMethods(); m++ {
			if named.Method(m).Name() == name[i+1:] {
				return named.Method(m)
			}
		}
		return nil
	}
	if fn, isFn := pkg.Scope().Lookup(name).(*types.Func); isFn {
		return fn
	}
	return nil
}

// resolveStruct finds the named struct type, in this package or among
// its imports.
func resolveStruct(pass *analysis.Pass, pkgPath, name string) (*types.Struct, *types.TypeName) {
	scope := pass.Pkg.Scope()
	if pkgPath != pass.Pkg.Path() {
		scope = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == pkgPath {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil, nil
		}
	}
	tn, isTN := scope.Lookup(name).(*types.TypeName)
	if !isTN {
		return nil, nil
	}
	st, isStruct := tn.Type().Underlying().(*types.Struct)
	if !isStruct {
		return nil, nil
	}
	return st, tn
}

// checkRule verifies one rule, reporting every uncovered field — at its
// declaration when the struct is in this package (so //lint:allow
// fieldcover can sit on the field), at the mapping function otherwise.
func checkRule(pass *analysis.Pass, r Rule, own, closed map[*types.Func]*accessSet) {
	structPkg := r.StructPkg
	if structPkg == "" {
		structPkg = r.Pkg
	}
	misconfigured := func(why string) {
		pos := r.pos
		if pos == token.NoPos && len(pass.Files) > 0 {
			pos = pass.Files[0].Name.Pos()
		}
		pass.Reportf(pos, "fieldcover rule %s.%s↔%s: %s", structPkg, r.Struct, r.Func, why)
	}
	st, stObj := resolveStruct(pass, structPkg, r.Struct)
	if st == nil {
		misconfigured("struct not found")
		return
	}
	fn := lookupFunc(pass.Pkg, r.Func)
	if fn == nil {
		misconfigured("mapping function not found")
		return
	}
	sets := own
	if r.Transitive {
		sets = closed
	}
	set := sets[fn]
	if set == nil {
		misconfigured("mapping function has no body in this package")
		return
	}
	key := structKey{pkg: structPkg, name: r.Struct}
	covered := set.reads[key]
	if r.Direction == Write {
		covered = set.writes[key]
	}
	scope := ""
	if r.Transitive {
		scope = " or its callees"
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" || covered[f.Name()] {
			continue
		}
		pos := fieldPos(pass, stObj, f.Name())
		if pos == token.NoPos {
			pos = set.declPos
		}
		pass.Reportf(pos, "%s.%s is not %s by %s%s — wire the field through the mapping or add //lint:allow fieldcover <reason>",
			r.Struct, f.Name(), r.Direction.verb(), r.Func, scope)
	}
}

// fieldPos finds the declaration position of a field of a struct
// declared in this package; NoPos when the struct's AST isn't here.
func fieldPos(pass *analysis.Pass, tn *types.TypeName, field string) token.Pos {
	if tn == nil || tn.Pkg() != pass.Pkg {
		return token.NoPos
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, isGen := decl.(*ast.GenDecl)
			if !isGen || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, isType := spec.(*ast.TypeSpec)
				if !isType || pass.TypesInfo.Defs[ts.Name] != tn {
					continue
				}
				stType, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					continue
				}
				for _, f := range stType.Fields.List {
					for _, name := range f.Names {
						if name.Name == field {
							return name.Pos()
						}
					}
				}
			}
		}
	}
	return token.NoPos
}
