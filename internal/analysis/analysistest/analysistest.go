// Package analysistest is a stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis/analysistest golden-test harness: a
// test package under testdata/src/<name> annotates the lines where an
// analyzer must fire with trailing expectation comments,
//
//	time.Sleep(d) // want `time\.Sleep is wall-clock`
//
// and the harness fails on any unexpected diagnostic, any unmatched
// expectation, or any message not matching its regexp. Expectations are
// quoted Go strings or backquoted regexps; several may follow one want.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spdier/internal/analysis"
)

// Run loads testdata/src/<pkgdir> (relative to the calling test's
// directory), runs the analyzer, and checks raw diagnostics against
// the // want annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgdir string) {
	t.Helper()
	check(t, a, pkgdir, false)
}

// RunSuppressed is Run with //lint:allow suppression filtering applied
// first — what the simlint driver reports. Malformed directives surface
// as "lintdirective" diagnostics and may carry their own want.
func RunSuppressed(t *testing.T, a *analysis.Analyzer, pkgdir string) {
	t.Helper()
	check(t, a, pkgdir, true)
}

func check(t *testing.T, a *analysis.Analyzer, pkgdir string, suppress bool) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgdir)
	pkg, err := analysis.LoadDir(dir, moduleRoot(t))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	if suppress {
		diags = analysis.ApplySuppressions(pkg.Fset, pkg.Files, diags)
	}
	matchAll(t, collectWants(t, pkg), diags)
}

// RunWithDeps is Run for analyzers that communicate through facts: it
// loads the named dependency packages (testdata/src/<dep>, importable
// by the target package as plain "<dep>") in order, runs the analyzer
// over each with one shared fact store — so facts exported while
// analyzing a dep are visible when the target is analyzed, exactly as
// in a dependency-ordered driver run — then runs the target.
// Diagnostics in dependency files are checked against their own
// // want annotations.
func RunWithDeps(t *testing.T, a *analysis.Analyzer, pkgdir string, deps ...string) {
	t.Helper()
	pkgs := LoadPackages(t, pkgdir, deps...)
	all := Diagnostics(t, a, pkgs)
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		for k, v := range collectWants(t, pkg) {
			wants[k] = append(wants[k], v...)
		}
	}
	matchAll(t, wants, all)
}

// LoadPackages loads testdata/src/<dep> for each dep, then
// testdata/src/<pkgdir>, returning them in that (dependency) order.
// Deps are importable by the later packages under their bare names.
func LoadPackages(t *testing.T, pkgdir string, deps ...string) []*analysis.Package {
	t.Helper()
	order := append(append([]string{}, deps...), pkgdir)
	dirs := map[string]string{}
	for _, name := range order {
		dirs[name] = filepath.Join("testdata", "src", name)
	}
	// LoadDirs type-checks in slice order, so deps must precede the
	// packages importing them.
	sorted := append(append([]string{}, deps...), pkgdir)
	pkgs, err := analysis.LoadDirs(moduleRoot(t), sorted, dirs)
	if err != nil {
		t.Fatalf("loading %v: %v", sorted, err)
	}
	return pkgs
}

// Diagnostics runs the analyzer over pkgs in order with one shared fact
// store and returns the combined diagnostics, position-sorted.
func Diagnostics(t *testing.T, a *analysis.Analyzer, pkgs []*analysis.Package) []analysis.Diagnostic {
	t.Helper()
	facts := analysis.NewFactStore()
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzersFacts(pkg, []*analysis.Analyzer{a}, analysis.RunConfig{Facts: facts})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		all = append(all, diags...)
	}
	analysis.SortDiagnostics(all)
	return all
}

// matchAll checks collected diagnostics against collected expectations:
// every diagnostic must match a want on its line, every want must be
// matched by some diagnostic.
func matchAll(t *testing.T, wants map[string][]*want, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !matchWant(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic matched want %q at %s", w.re.String(), key)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// matchWant marks and reports the first unmatched expectation on the
// line whose regexp matches the message.
func matchWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile("// want ((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")
var expectationRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses the // want annotations of every file in pkg,
// keyed by "filename:line".
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				collectComment(t, pkg, c, out)
			}
		}
	}
	return out
}

func collectComment(t *testing.T, pkg *analysis.Package, c *ast.Comment, out map[string][]*want) {
	t.Helper()
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	for _, quoted := range expectationRE.FindAllString(m[1], -1) {
		var pattern string
		if strings.HasPrefix(quoted, "`") {
			pattern = strings.Trim(quoted, "`")
		} else {
			unq, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: bad want expectation %s: %v", key, quoted, err)
			}
			pattern = unq
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", key, pattern, err)
		}
		out[key] = append(out[key], &want{re: re})
	}
}

// moduleRoot walks up from the test's working directory to the
// enclosing go.mod — import resolution for testdata packages runs from
// there.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
