package dettaint_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/dettaint"
)

func TestGoldens(t *testing.T) {
	analysistest.Run(t, dettaint.Analyzer, "dettaint")
}

func TestSuppression(t *testing.T) {
	analysistest.RunSuppressed(t, dettaint.Analyzer, "dettaintallow")
}

// TestCrossPackageFacts proves both fact kinds flow across package
// boundaries: SinkFact (Emit) and OrderedFact (Pick) are exported while
// the helper package is analyzed and consumed analyzing dettaintx.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.RunWithDeps(t, dettaint.Analyzer, "dettaintx", "dettainthelper")
}

// TestLocalBufferIsNotASink guards the locality rule: writing a
// function-local builder inside a map range is invisible outside the
// function, so neither a finding nor a SinkFact should result — the
// Sorted/PrintSorted goldens already pin the cleansing side.
func TestLocalBufferIsNotASink(t *testing.T) {
	pkgs := analysistest.LoadPackages(t, "dettaintlocal")
	diags := analysistest.Diagnostics(t, dettaint.Analyzer, pkgs)
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want none: %v", len(diags), diags)
	}
}
