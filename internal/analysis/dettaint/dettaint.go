// Package dettaint generalizes maprange interprocedurally: it tracks
// values whose ORDER derives from a nondeterministic source — map
// iteration, select winners, sync.Map traversal — and reports when that
// order becomes observable in output, even when the observation happens
// through a function call that maprange (a purely local check) cannot
// see into.
//
// Two facts carry the analysis across package boundaries:
//
//   - SinkFact marks a function whose call produces order-observable
//     effects (it prints, writes a non-local writer, or sends on a
//     non-local channel, directly or via its own callees). Calling a
//     SinkFact function once per map entry leaks iteration order.
//   - OrderedFact marks a function whose return value's order derives
//     from map iteration (it returns from inside a map range, or
//     returns a slice accumulated under one without sorting). Ranging
//     over such a result is as nondeterministic as ranging the map.
//
// The division of labour with maprange is deliberate: inside a plain
// range-over-map, the *direct* effects (fmt calls, writer methods,
// sends, appends, event scheduling) are maprange findings; dettaint
// adds only what maprange is blind to — calls that reach a sink through
// another function, accumulator merges (float folds are order-
// sensitive), regions maprange does not recognize (sync.Map.Range,
// ranges over map-ordered values), select statements, and map-ordered
// values that flow to a sink outside any loop.
//
// The collect-then-sort idiom stays clean here exactly as in maprange:
// passing a value to sort/slices cleanses its taint.
package dettaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"spdier/internal/analysis"
)

// SinkFact marks a function whose call emits order-observable output.
type SinkFact struct {
	// Via names the underlying effect, e.g. "fmt.Println" or a callee
	// chain like "emit (fmt.Println)".
	Via string `json:"via"`
}

// AFact marks SinkFact as an analyzer fact.
func (*SinkFact) AFact() {}

// OrderedFact marks a function returning map-iteration-ordered data.
type OrderedFact struct {
	// Source says where the ordering came from.
	Source string `json:"source"`
}

// AFact marks OrderedFact as an analyzer fact.
func (*OrderedFact) AFact() {}

// Analyzer is the dettaint check.
var Analyzer = &analysis.Analyzer{
	Name: "dettaint",
	Doc: "track map-iteration-ordered values interprocedurally and report when their order reaches " +
		"output sinks, accumulator merges, sync.Map traversals or select races in deterministic code",
	FactTypes: []analysis.Fact{&SinkFact{}, &OrderedFact{}},
	Run:       run,
}

// printers are the fmt functions that render output; the Fprint family
// only sinks when its writer outlives the function.
var printers = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

var fprinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writeMethods are output-sink method names (io.Writer, strings.Builder,
// the repo's Report type).
var writeMethods = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// accumMethods are order-sensitive accumulator folds: float merges are
// non-associative, so folding shards in map order changes the bits.
var accumMethods = map[string]bool{
	"Merge": true, "Fold": true,
}

type regionKind int

const (
	regMapRange regionKind = iota
	regOrderedRange
	regSyncMapRange
)

func (k regionKind) context() string {
	switch k {
	case regOrderedRange:
		return "inside range over map-ordered value"
	case regSyncMapRange:
		return "inside sync.Map.Range callback"
	}
	return "inside range over map"
}

func (k regionKind) advice() string {
	switch k {
	case regOrderedRange:
		return "the order derives from map iteration; sort before iterating"
	case regSyncMapRange:
		return "traversal order is unspecified; snapshot and sort the keys first"
	}
	return "iteration order is randomized per run; sort the keys first"
}

type region struct {
	kind regionKind
	body ast.Node // the loop or callback body searched for effects
}

type analyzer struct {
	pass    *analysis.Pass
	sinks   map[*types.Func]string // local funcs known to sink, by via
	ordered map[*types.Func]string // local funcs returning ordered data
}

func run(pass *analysis.Pass) error {
	a := &analyzer{
		pass:    pass,
		sinks:   map[*types.Func]string{},
		ordered: map[*types.Func]string{},
	}
	// Declarations in source order: the fixpoint below must be
	// deterministic so exported fact contents (and therefore vetx
	// bytes) are reproducible.
	type decl struct {
		fn *types.Func
		fd *ast.FuncDecl
	}
	var decls []decl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			if fn, isFn := pass.TypesInfo.Defs[fd.Name].(*types.Func); isFn {
				decls = append(decls, decl{fn, fd})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			via, src := a.analyzeBody(d.fd, false)
			if via != "" && a.sinks[d.fn] == "" {
				a.sinks[d.fn] = via
				changed = true
			}
			if src != "" && a.ordered[d.fn] == "" {
				a.ordered[d.fn] = src
				changed = true
			}
		}
	}
	for _, d := range decls {
		if via := a.sinks[d.fn]; via != "" {
			pass.ExportObjectFact(d.fn, &SinkFact{Via: via})
		}
		if src := a.ordered[d.fn]; src != "" {
			pass.ExportObjectFact(d.fn, &OrderedFact{Source: src})
		}
	}
	for _, d := range decls {
		a.analyzeBody(d.fd, true)
	}
	return nil
}

// isSink resolves whether a called function sinks output, locally or
// through an imported fact.
func (a *analyzer) isSink(fn *types.Func) (string, bool) {
	if via, ok := a.sinks[fn]; ok && via != "" {
		return via, true
	}
	var f SinkFact
	if a.pass.ImportObjectFact(fn, &f) {
		return f.Via, true
	}
	return "", false
}

// isOrdered resolves whether a called function returns map-ordered
// data, locally or through an imported fact.
func (a *analyzer) isOrdered(fn *types.Func) bool {
	if a.ordered[fn] != "" {
		return true
	}
	var f OrderedFact
	return a.pass.ImportObjectFact(fn, &f)
}

// analyzeBody inspects one function. It returns the function's own
// sink/ordered classification, and when report is true also emits the
// in-body diagnostics.
func (a *analyzer) analyzeBody(fd *ast.FuncDecl, report bool) (sinkVia, orderedSrc string) {
	body := fd.Body
	info := a.pass.TypesInfo

	// Objects passed to sort/slices anywhere in the body are cleansed:
	// the collect-then-sort idiom restores a deterministic order.
	cleansed := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if pkg, _, isPkgFn := analysis.PkgFuncCall(info, call); isPkgFn && (pkg == "sort" || pkg == "slices") {
			for _, arg := range call.Args {
				if obj := rootObj(info, arg); obj != nil {
					cleansed[obj] = true
				}
			}
		}
		return true
	})

	// Taint: variables whose order derives from map iteration. Iterated
	// to a fixpoint so chains (v := Keys(m); w := v) propagate.
	tainted := map[types.Object]bool{}
	taintIdent := func(e ast.Expr) bool {
		id, isID := ast.Unparen(e).(*ast.Ident)
		if !isID {
			return false
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || cleansed[obj] || tainted[obj] {
			return false
		}
		tainted[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				hot := false
				for _, rhs := range s.Rhs {
					if a.exprOrdered(rhs, tainted) {
						hot = true
					}
				}
				if hot {
					for _, lhs := range s.Lhs {
						if taintIdent(lhs) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if a.rangeKind(s, tainted) != nil {
					for _, v := range []ast.Expr{s.Key, s.Value} {
						if v != nil && taintIdent(v) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Nondeterministic-order regions.
	var regions []region
	mapRangeBodies := map[*ast.BlockStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if k := a.rangeKind(s, tainted); k != nil {
				regions = append(regions, region{kind: *k, body: s.Body})
				if *k == regMapRange {
					mapRangeBodies[s.Body] = true
				}
			}
		case *ast.CallExpr:
			if lit, isRange := syncMapRangeCallback(info, s); isRange && lit != nil {
				regions = append(regions, region{kind: regSyncMapRange, body: lit.Body})
			}
		}
		return true
	})

	// The function's own classification.
	sinkVia = a.firstSinkEffect(body)
	orderedSrc = a.orderedReturn(body, mapRangeBodies, tainted)

	if !report {
		return sinkVia, orderedSrc
	}

	reported := map[string]bool{}
	reportOnce := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d:%s", pos, msg)
		if !reported[key] {
			reported[key] = true
			a.pass.Reportf(pos, "%s", msg)
		}
	}

	inRegion := func(pos token.Pos) bool {
		for _, r := range regions {
			if r.body.Pos() <= pos && pos <= r.body.End() {
				return true
			}
		}
		return false
	}

	// Region effects.
	for _, r := range regions {
		a.reportRegion(r, body, reportOnce)
	}

	// Map-ordered values reaching a sink outside any region (inside a
	// region the region rules — or maprange — own the finding).
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || inRegion(call.Pos()) {
			return true
		}
		hot := false
		for _, arg := range call.Args {
			if a.exprOrdered(arg, tainted) {
				hot = true
			}
		}
		if !hot {
			return true
		}
		if desc, isEffect := a.callEffect(call, body, true); isEffect {
			reportOnce(call.Pos(), "%s receives a map-ordered value: sort it before it reaches output", desc)
		}
		return true
	})

	// Select statements: the winner among ready cases is chosen at
	// random by the runtime, so any multi-case select in deterministic
	// code is an ordering hazard regardless of what the cases do.
	ast.Inspect(body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectStmt)
		if isSel && len(sel.Body.List) >= 2 {
			reportOnce(sel.Select, "select with %d cases resolves nondeterministically: deterministic code must not race channels; make the choice explicit", len(sel.Body.List))
		}
		return true
	})

	return sinkVia, orderedSrc
}

// reportRegion emits the findings inside one nondeterministic-order
// region. In plain map ranges only interprocedural effects are reported
// (direct ones are maprange's); in the regions maprange cannot see,
// direct effects are reported too.
func (a *analyzer) reportRegion(r region, fnBody *ast.BlockStmt, reportOnce func(token.Pos, string, ...any)) {
	ctx, advice := r.kind.context(), r.kind.advice()
	ast.Inspect(r.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			// Interprocedural: a call that reaches a sink through
			// another function — invisible to maprange in any region.
			if fn, isStatic := analysis.CalleeFunc(a.pass.TypesInfo, s); isStatic {
				if via, sink := a.isSink(fn); sink {
					reportOnce(s.Pos(), "call to %s (%s) %s reaches an output sink: %s", fn.Name(), via, ctx, advice)
					return true
				}
			}
			// Accumulator folds: order-sensitive in every region, and
			// outside maprange's effect set.
			if name, isMethod := analysis.MethodCallName(a.pass.TypesInfo, s); isMethod && accumMethods[name] {
				sel := ast.Unparen(s.Fun).(*ast.SelectorExpr)
				if !localTo(a.pass.TypesInfo, sel.X, fnBody) {
					reportOnce(s.Pos(), "%s.%s %s folds accumulator state in nondeterministic order: %s", types.ExprString(sel.X), name, ctx, advice)
					return true
				}
			}
			// Direct effects, only where maprange is blind.
			if r.kind != regMapRange {
				if desc, isEffect := a.callEffect(s, fnBody, false); isEffect {
					reportOnce(s.Pos(), "%s %s: %s", desc, ctx, advice)
				}
			}
		case *ast.SendStmt:
			if r.kind != regMapRange && !localTo(a.pass.TypesInfo, s.Chan, fnBody) {
				reportOnce(s.Pos(), "send on %s %s: %s", types.ExprString(s.Chan), ctx, advice)
			}
		}
		return true
	})
}

// callEffect classifies a call as a direct output effect (printer,
// non-local Fprint, non-local write method) or — when includeFacts is
// set — a call into a SinkFact function.
func (a *analyzer) callEffect(call *ast.CallExpr, fnBody *ast.BlockStmt, includeFacts bool) (string, bool) {
	info := a.pass.TypesInfo
	if pkg, name, isPkgFn := analysis.PkgFuncCall(info, call); isPkgFn {
		if pkg == "fmt" && printers[name] {
			return "fmt." + name, true
		}
		if pkg == "fmt" && fprinters[name] && len(call.Args) > 0 && !localTo(info, call.Args[0], fnBody) {
			return "fmt." + name, true
		}
		if includeFacts {
			if fn, isStatic := analysis.CalleeFunc(info, call); isStatic {
				if via, sink := a.isSink(fn); sink {
					return fmt.Sprintf("call to %s (%s)", fn.Name(), via), true
				}
			}
		}
		return "", false
	}
	if name, isMethod := analysis.MethodCallName(info, call); isMethod && writeMethods[name] {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !localTo(info, sel.X, fnBody) {
			return types.ExprString(sel.X) + "." + name, true
		}
		return "", false
	}
	if includeFacts {
		if fn, isStatic := analysis.CalleeFunc(info, call); isStatic {
			if via, sink := a.isSink(fn); sink {
				return fmt.Sprintf("call to %s (%s)", fn.Name(), via), true
			}
		}
	}
	return "", false
}

// firstSinkEffect scans the whole body in source order for the first
// output effect, which becomes the function's SinkFact via.
func (a *analyzer) firstSinkEffect(body *ast.BlockStmt) string {
	via := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if via != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if desc, isEffect := a.callEffect(s, body, true); isEffect {
				via = desc
			}
		case *ast.SendStmt:
			if !localTo(a.pass.TypesInfo, s.Chan, body) {
				via = "send on " + types.ExprString(s.Chan)
			}
		}
		return via == ""
	})
	return via
}

// orderedReturn scans returns: returning from inside a map range, or
// returning a tainted value, makes the function's result map-ordered.
func (a *analyzer) orderedReturn(body *ast.BlockStmt, mapRangeBodies map[*ast.BlockStmt]bool, tainted map[types.Object]bool) string {
	src := ""
	var rangeStack []*ast.BlockStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if src != "" || n == nil {
			return false
		}
		switch s := n.(type) {
		case *ast.BlockStmt:
			if mapRangeBodies[s] {
				rangeStack = append(rangeStack, s)
				for _, stmt := range s.List {
					ast.Inspect(stmt, walk)
				}
				rangeStack = rangeStack[:len(rangeStack)-1]
				return false
			}
		case *ast.FuncLit:
			// A closure's returns are its own, not the enclosing
			// function's.
			return false
		case *ast.ReturnStmt:
			// Only results that mention tainted state are map-ordered:
			// `return 1` inside a map range is still deterministic.
			for _, res := range s.Results {
				if a.exprOrdered(res, tainted) {
					if len(rangeStack) > 0 {
						src = "returns from inside range over map"
					} else {
						src = "returns a map-ordered value"
					}
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return src
}

// exprOrdered reports whether an expression's value carries map
// iteration order: it mentions a tainted variable or calls an
// OrderedFact function. len/cap of a tainted value are order-free.
func (a *analyzer) exprOrdered(e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj := a.pass.TypesInfo.Uses[x]; obj != nil && tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			if id, isID := ast.Unparen(x.Fun).(*ast.Ident); isID && (id.Name == "len" || id.Name == "cap") {
				if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return false // len(v), cap(v): order-insensitive
				}
			}
			if fn, isStatic := analysis.CalleeFunc(a.pass.TypesInfo, x); isStatic && a.isOrdered(fn) {
				found = true
			}
		}
		return !found
	})
	return found
}

// rangeKind classifies a range statement as a nondeterministic-order
// region: over a map, or over a map-ordered value. nil means ordered.
func (a *analyzer) rangeKind(rng *ast.RangeStmt, tainted map[types.Object]bool) *regionKind {
	k := regMapRange
	if tv, found := a.pass.TypesInfo.Types[rng.X]; found && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return &k
		}
	}
	if a.exprOrdered(rng.X, tainted) {
		k = regOrderedRange
		return &k
	}
	return nil
}

// syncMapRangeCallback recognizes m.Range(func(k, v any) bool {...}) on
// a sync.Map and returns the callback literal (nil when the callback is
// not a literal — the named callee is then checked as a region-less
// sink by the caller's other rules).
func syncMapRangeCallback(info *types.Info, call *ast.CallExpr) (*ast.FuncLit, bool) {
	name, isMethod := analysis.MethodCallName(info, call)
	if !isMethod || name != "Range" || len(call.Args) != 1 {
		return nil, false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	tv, found := info.Types[sel.X]
	if !found || !analysis.IsNamedType(tv.Type, "sync", "Map") {
		return nil, false
	}
	lit, isLit := ast.Unparen(call.Args[0]).(*ast.FuncLit)
	if !isLit {
		return nil, true
	}
	return lit, true
}

// localTo reports whether the storage an expression's root identifier
// names is declared inside body — effects on it do not outlive the
// function, so they are not sinks. Anything unresolvable is treated as
// local (no finding) to keep the analyzer conservative.
func localTo(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	obj := rootObj(info, e)
	if obj == nil {
		return true
	}
	return body.Pos() <= obj.Pos() && obj.Pos() <= body.End()
}

// rootObj unwraps an expression to its base identifier's object:
// x.f[i] → x, (&x) → x.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			// A package-qualified name (os.Stdout) roots at the global,
			// not the package name.
			if id, isID := x.X.(*ast.Ident); isID {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if obj := info.Uses[x.Sel]; obj != nil {
						return obj
					}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}
