// Suppression golden: //lint:allow dettaint silences a finding on the
// next line; an unsuppressed sibling still fires.
package dettaintallow

import "fmt"

func emit(s string) { fmt.Println(s) }

// DumpAllowed documents why the order genuinely cannot matter.
func DumpAllowed(m map[string]int) {
	for k := range m {
		//lint:allow dettaint debug-only dump, never parsed or diffed
		emit(k)
	}
}

// DumpBare has no such justification.
func DumpBare(m map[string]int) {
	for k := range m {
		emit(k) // want `call to emit \(fmt\.Println\) inside range over map reaches an output sink`
	}
}
