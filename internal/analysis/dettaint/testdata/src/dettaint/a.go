// Goldens for the dettaint analyzer: interprocedural ordering taint.
// Direct fmt/writer effects inside a plain map range are deliberately
// NOT findings here — those belong to maprange; dettaint owns what
// maprange cannot see.
package dettaint

import (
	"fmt"
	"sort"
	"sync"
)

// emit acquires a SinkFact: it prints directly.
func emit(s string) { fmt.Println(s) }

// relay acquires a SinkFact transitively through emit.
func relay(s string) { emit(s) }

// Dump leaks map order through a call — invisible to a local check.
func Dump(m map[string]int) {
	for k := range m {
		emit(k) // want `call to emit \(fmt\.Println\) inside range over map reaches an output sink`
	}
}

// DumpDeep leaks through two hops.
func DumpDeep(m map[string]int) {
	for k := range m {
		relay(k) // want `call to relay \(call to emit \(fmt\.Println\)\) inside range over map reaches an output sink`
	}
}

// Sorted is the sanctioned idiom: collect, sort, then emit.
func Sorted(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k)
	}
}

// First returns the first key map iteration yields — an OrderedFact
// source with no diagnostic of its own.
func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// UseFirst lets the map-ordered value reach output outside any loop.
func UseFirst(m map[string]int) {
	k := First(m)
	fmt.Println(k) // want `fmt\.Println receives a map-ordered value`
}

// Keys accumulates under a map range without sorting, so its result
// carries iteration order.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// PrintAll ranges over the map-ordered result: direct effects count
// here because maprange does not recognize this loop.
func PrintAll(m map[string]int) {
	for _, k := range Keys(m) {
		fmt.Println(k) // want `fmt\.Println inside range over map-ordered value`
	}
}

// PrintSorted cleanses the same result before iterating.
func PrintSorted(m map[string]int) {
	ks := Keys(m)
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Println(k)
	}
}

// Moments stands in for a float accumulator whose fold order changes
// the bits.
type Moments struct{ n float64 }

// Merge folds another accumulator in.
func (m *Moments) Merge(o Moments) { m.n += o.n }

// Fold merges shards in map order — order-sensitive even though no
// output happens inside the loop.
func Fold(agg *Moments, shards map[string]Moments) {
	for _, s := range shards {
		agg.Merge(s) // want `agg\.Merge inside range over map folds accumulator state in nondeterministic order`
	}
}

// Race lets the runtime pick a winner.
func Race(a, b chan int) int {
	select { // want `select with 2 cases resolves nondeterministically`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// DumpSync iterates a sync.Map, whose traversal order is unspecified.
func DumpSync(m *sync.Map) {
	m.Range(func(k, v any) bool {
		fmt.Println(k) // want `fmt\.Println inside sync\.Map\.Range callback`
		return true
	})
}

// SendAll forwards map-ordered values on an outer channel — a send is
// an observable effect in the regions maprange cannot see.
func SendAll(m map[string]int, ch chan string) {
	for _, k := range Keys(m) {
		ch <- k // want `send on ch inside range over map-ordered value`
	}
}
