// The importing side of the cross-package taint test: every finding
// here depends on a fact exported while dettainthelper was analyzed.
package dettaintx

import (
	"fmt"

	"dettainthelper"
)

// Dump reaches a sink through an imported function.
func Dump(m map[string]int) {
	for k := range m {
		dettainthelper.Emit(k) // want `call to Emit \(fmt\.Println\) inside range over map reaches an output sink`
	}
}

// UsePick receives map-ordered data from an imported function.
func UsePick(m map[string]int) {
	k := dettainthelper.Pick(m)
	fmt.Println(k) // want `fmt\.Println receives a map-ordered value`
}
