// The exported side of the cross-package taint test: Emit sinks, and
// Pick returns map-ordered data. Both facts must survive the package
// boundary for dettaintx's goldens to fire.
package dettainthelper

import "fmt"

// Emit prints its argument.
func Emit(s string) { fmt.Println(s) }

// Pick returns whichever key map iteration yields first.
func Pick(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
