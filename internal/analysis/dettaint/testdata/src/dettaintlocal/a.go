// Negative golden: effects confined to function-local storage are not
// sinks, and sorted accumulation stays clean end to end.
package dettaintlocal

import (
	"sort"
	"strings"
)

// Render writes only a local builder inside the map range; the caller
// observes a single string whose construction order it cannot see
// before the sort... and here the keys are sorted first anyway.
func Render(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}

// Count is order-free arithmetic under a map range.
func Count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
