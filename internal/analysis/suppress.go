package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression is one parsed //lint:allow directive.
//
//	//lint:allow <analyzer> <reason...>
//
// The reason is mandatory: a suppression is a reviewed, written-down
// justification, not an off switch. A directive suppresses findings of
// the named analyzer on its own line and, when it stands alone on a
// line, on the next source line below it.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

const directivePrefix = "//lint:allow"

// DirectiveAnalyzerName is the pseudo-analyzer name under which
// malformed //lint:allow directives are reported.
const DirectiveAnalyzerName = "lintdirective"

// ApplySuppressions filters diags through the //lint:allow directives
// found in files. It returns the surviving diagnostics plus new
// diagnostics for malformed directives (missing analyzer or missing
// reason) — a broken suppression must fail the build, not silently
// suppress nothing. The result is position-sorted.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// fileLine -> suppressions covering that line.
	type key struct {
		file string
		line int
	}
	covering := map[key][]*suppression{}
	var out []Diagnostic

	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowfoo — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					out = append(out, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzerName,
						Message: "//lint:allow needs an analyzer name and a reason"})
					continue
				}
				if len(fields) < 2 {
					out = append(out, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzerName,
						Message: "//lint:allow " + fields[0] + " needs a reason: suppressions document why the finding is acceptable"})
					continue
				}
				s := &suppression{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				}
				covering[key{pos.Filename, pos.Line}] = append(covering[key{pos.Filename, pos.Line}], s)
				// A directive alone on its line shields the line below.
				if onOwnLine(fset, f, c) {
					covering[key{pos.Filename, pos.Line + 1}] = append(covering[key{pos.Filename, pos.Line + 1}], s)
				}
			}
		}
	}

	for _, d := range diags {
		suppressed := false
		for _, s := range covering[key{d.Pos.Filename, d.Pos.Line}] {
			if s.analyzer == d.Analyzer {
				s.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	SortDiagnostics(out)
	return out
}

// onOwnLine reports whether comment c is the only thing on its line
// (no code before it), so it documents the line that follows.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		if _, isFile := n.(*ast.File); !isFile {
			start, end := fset.Position(n.Pos()), fset.Position(n.End())
			// Code starting on the comment's line before it, or ending on
			// that line before it (a trailing `}`), makes it a trailing
			// comment: it shields only its own line, not the next.
			if start.Filename == pos.Filename && start.Line == pos.Line && start.Column < pos.Column {
				own = false
				return false
			}
			if end.Filename == pos.Filename && end.Line == pos.Line && end.Column <= pos.Column {
				own = false
				return false
			}
		}
		return true
	})
	return own
}
