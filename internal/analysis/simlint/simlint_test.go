package simlint_test

import (
	"path/filepath"
	"testing"

	"spdier/internal/analysis/simlint"
)

// TestFixtureTriggersEveryAnalyzer runs the full suite over the seeded
// violation corpus and requires exactly one finding per analyzer. This
// is the canary for the canaries: an analyzer that stops firing here
// has gone silent everywhere.
func TestFixtureTriggersEveryAnalyzer(t *testing.T) {
	dir := filepath.Join("..", "testdata", "fixture")
	moduleRoot := filepath.Join("..", "..", "..")
	diags, err := simlint.CheckDir(dir, moduleRoot)
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	got := map[string]int{}
	for _, d := range diags {
		got[d.Analyzer]++
	}
	for _, a := range simlint.Analyzers {
		if got[a.Name] != 1 {
			t.Errorf("analyzer %s: want exactly 1 finding in the fixture, got %d", a.Name, got[a.Name])
		}
	}
	if len(diags) != len(simlint.Analyzers) {
		for _, d := range diags {
			t.Logf("finding: %s", d.String())
		}
		t.Errorf("want %d findings total, got %d", len(simlint.Analyzers), len(diags))
	}
}

// TestForPackagePolicy pins the policy mapping: deterministic packages
// get the determinism analyzers, pooled packages get poolbalance, and
// everything in the module gets shadow.
func TestForPackagePolicy(t *testing.T) {
	names := func(importPath string) map[string]bool {
		as, _ := simlint.ForPackage(importPath)
		out := map[string]bool{}
		for _, a := range as {
			out[a.Name] = true
		}
		return out
	}

	sim := names("spdier/internal/sim")
	for _, want := range []string{"wallclock", "globalrand", "maprange", "poolbalance", "clockarith", "shadow", "fieldcover", "dettaint"} {
		if !sim[want] {
			t.Errorf("spdier/internal/sim: missing analyzer %s", want)
		}
	}

	spdy := names("spdier/internal/spdy")
	if !spdy["poolbalance"] || !spdy["shadow"] {
		t.Errorf("spdier/internal/spdy: want poolbalance+shadow, got %v", spdy)
	}
	if spdy["wallclock"] {
		t.Errorf("spdier/internal/spdy: wallclock must not apply outside the deterministic set")
	}

	live := names("spdier/internal/liveproxy")
	if live["wallclock"] || live["globalrand"] {
		t.Errorf("spdier/internal/liveproxy talks to real time by design; got %v", live)
	}
	if !live["shadow"] {
		t.Errorf("spdier/internal/liveproxy: shadow applies module-wide")
	}

	if as := names("fmt"); len(as) != 0 {
		t.Errorf("packages outside the module must get no analyzers, got %v", as)
	}
}

// TestDettaintScoping pins the mute-for-facts policy: dettaint runs
// module-wide so its facts exist everywhere, but its reporting filter
// rejects every file outside the deterministic set (and all but the
// worker-side files inside fabric).
func TestDettaintScoping(t *testing.T) {
	filterFor := func(importPath string) (func(string) bool, bool) {
		as, filters := simlint.ForPackage(importPath)
		for _, a := range as {
			if a.Name == "dettaint" {
				f, has := filters["dettaint"]
				return f, has
			}
		}
		t.Fatalf("%s: dettaint not in suite", importPath)
		return nil, false
	}

	if f, has := filterFor("spdier/internal/experiment"); has && f != nil {
		t.Errorf("experiment: dettaint must report unfiltered in the deterministic set")
	}
	f, has := filterFor("spdier/internal/liveproxy")
	if !has || f == nil {
		t.Fatalf("liveproxy: dettaint must be muted outside the deterministic set")
	}
	if f("proxy.go") {
		t.Errorf("liveproxy: dettaint filter must reject every file (facts only)")
	}
	f, has = filterFor("spdier/internal/fabric")
	if !has || f == nil {
		t.Fatalf("fabric: dettaint must be file-scoped")
	}
	if !f("worker.go") || f("coordinator.go") {
		t.Errorf("fabric: dettaint must report in worker.go but not coordinator.go")
	}
}
