// Package simlint assembles the repo's analyzer suite and the policy
// mapping analyzers to the packages whose invariants they guard. The
// analyzers themselves are policy-free; this package is where the
// repo's layout is encoded, and cmd/simlint is a thin driver over it.
//
// The deterministic set is exactly the packages that execute between a
// root seed and a Result: the event loop (sim), the transport model
// (tcpsim), the path emulator (netem), the radio state machine (rrc),
// the client model (browser), the workload (webpage), the sweep engine
// (experiment) and the aggregators (stats). Code outside the set —
// liveproxy, validate, httpwire, cmd — talks to real sockets and real
// time by design, so wall-clock and goroutine-order effects are part of
// its contract, not a bug. The process fabric (fabric) is split down
// the middle: its worker/wire/journal files are held to the
// deterministic bar, its coordinator is not.
package simlint

import (
	"strings"

	"spdier/internal/analysis"
	"spdier/internal/analysis/clockarith"
	"spdier/internal/analysis/dettaint"
	"spdier/internal/analysis/fieldcover"
	"spdier/internal/analysis/globalrand"
	"spdier/internal/analysis/maprange"
	"spdier/internal/analysis/poolbalance"
	"spdier/internal/analysis/shadow"
	"spdier/internal/analysis/wallclock"
)

// FieldcoverRules pins the repo's hand-maintained struct↔function
// mappings: the cache key over Options, the accumulator codecs, the
// shard folder codec, and Spec.Apply. Every field of each struct must
// be read (encode direction) or written (decode direction) by its
// mapping function, or carry a //lint:allow fieldcover with a reason.
//
// CacheKey and the codecs are deliberately non-transitive: the
// invariant is that THOSE function bodies cover every field, so a read
// buried in a helper (withDefaults also reads several Options fields)
// does not count as key coverage. Spec.Apply is transitive because it
// delegates to Layers() by design.
var FieldcoverRules = []fieldcover.Rule{
	{Pkg: "spdier/internal/experiment", Struct: "Options", Func: "CacheKey", Direction: fieldcover.Read},
	{Pkg: "spdier/internal/experiment", Struct: "RunStats", Func: "NewRunStats", Direction: fieldcover.Write},
	{Pkg: "spdier/internal/experiment", Struct: "pltFolder", Func: "pltFolder.MarshalBinary", Direction: fieldcover.Read},
	{Pkg: "spdier/internal/experiment", Struct: "pltFolder", Func: "pltFolder.UnmarshalBinary", Direction: fieldcover.Write},
	{Pkg: "spdier/internal/experiment", Struct: "pltFolder", Func: "pltFolder.Merge", Direction: fieldcover.Read},
	{Pkg: "spdier/internal/stats", Struct: "Moments", Func: "Moments.MarshalBinary", Direction: fieldcover.Read},
	{Pkg: "spdier/internal/stats", Struct: "Moments", Func: "Moments.UnmarshalBinary", Direction: fieldcover.Write},
	{Pkg: "spdier/internal/stats", Struct: "QuantileSketch", Func: "QuantileSketch.MarshalBinary", Direction: fieldcover.Read},
	{Pkg: "spdier/internal/stats", Struct: "QuantileSketch", Func: "QuantileSketch.UnmarshalBinary", Direction: fieldcover.Write},
	{Pkg: "spdier/internal/stats", Struct: "Hist", Func: "Hist.MarshalBinary", Direction: fieldcover.Read},
	{Pkg: "spdier/internal/stats", Struct: "Hist", Func: "Hist.UnmarshalBinary", Direction: fieldcover.Write},
	{Pkg: "spdier/internal/transport", Struct: "Spec", Func: "Spec.Apply", Direction: fieldcover.Read, Transitive: true},
}

// fieldcoverAnalyzer is the policy-carrying instance the suite runs;
// //lint:fieldcover directives work through it anywhere in the module.
var fieldcoverAnalyzer = fieldcover.New(FieldcoverRules)

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	globalrand.Analyzer,
	maprange.Analyzer,
	poolbalance.Analyzer,
	clockarith.Analyzer,
	shadow.Analyzer,
	fieldcoverAnalyzer,
	dettaint.Analyzer,
}

// DeterministicPackages are the packages whose outputs must be a pure
// function of (Options, seed). See the package comment for the
// rationale behind the membership.
var DeterministicPackages = []string{
	"spdier/internal/sim",
	"spdier/internal/tcpsim",
	"spdier/internal/netem",
	"spdier/internal/rrc",
	"spdier/internal/browser",
	"spdier/internal/webpage",
	"spdier/internal/experiment",
	"spdier/internal/stats",
	"spdier/internal/transport",
	"spdier/internal/h2",
}

// pooledPackages additionally run the pool-discipline check: they own
// sync.Pools or segment pools but are not (all) in the deterministic
// set. proxy sits on the sim side of the SPDY framing and shares the
// segment pool through tcpsim.
var pooledPackages = []string{
	"spdier/internal/spdy",
	"spdier/internal/proxy",
}

func isDeterministic(importPath string) bool {
	for _, p := range DeterministicPackages {
		if importPath == p {
			return true
		}
	}
	return false
}

func isPooled(importPath string) bool {
	for _, p := range pooledPackages {
		if importPath == p {
			return true
		}
	}
	return false
}

// fabricDeterministicFile scopes wallclock inside internal/fabric to
// the worker side of its fence: the worker loop, wire codec and journal
// must stay wallclock-clean so a shard folded in a worker process is a
// pure function of its job spec. coordinator.go alone owns real time
// (process deadlines, respawn) by design, so it is excluded.
func fabricDeterministicFile(base string) bool {
	switch base {
	case "worker.go", "wire.go", "journal.go":
		return true
	}
	return false
}

// probeReportFile scopes clockarith to the files that render or record
// measurements — where a magic duration threshold changes reported
// numbers rather than simulated behaviour.
func probeReportFile(base string) bool {
	for _, marker := range []string{"probe", "report", "metrics", "stats", "streaming"} {
		if strings.Contains(base, marker) {
			return true
		}
	}
	return false
}

// ForPackage returns the analyzers that apply to importPath plus any
// per-analyzer file filters. Packages outside the module get nothing.
func ForPackage(importPath string) ([]*analysis.Analyzer, map[string]func(string) bool) {
	var out []*analysis.Analyzer
	filters := map[string]func(string) bool{}
	if isDeterministic(importPath) {
		out = append(out,
			wallclock.Analyzer,
			globalrand.Analyzer,
			maprange.Analyzer,
			poolbalance.Analyzer,
			clockarith.Analyzer,
		)
		filters[clockarith.Analyzer.Name] = probeReportFile
	} else if importPath == "spdier/internal/fabric" {
		// The process fabric straddles the fence: its worker loop, wire
		// codec and journal are deterministic (a shard's bytes must not
		// depend on which process folded it), while its coordinator owns
		// real time. Wallclock is therefore scoped per file.
		out = append(out, wallclock.Analyzer, globalrand.Analyzer, maprange.Analyzer)
		filters[wallclock.Analyzer.Name] = fabricDeterministicFile
	} else if isPooled(importPath) {
		out = append(out, poolbalance.Analyzer)
	}
	if strings.HasPrefix(importPath, "spdier/") || importPath == "spdier" {
		out = append(out, shadow.Analyzer)
		// The fact-producing analyzers run module-wide so their facts
		// exist wherever a deterministic package's call graph leads.
		// fieldcover self-scopes (policy rules name their package,
		// directives fire where written); dettaint's reporting is muted
		// outside the deterministic set — an all-rejecting file filter
		// drops its diagnostics while facts still export.
		out = append(out, fieldcoverAnalyzer, dettaint.Analyzer)
		switch {
		case isDeterministic(importPath):
			// report everywhere in the package
		case importPath == "spdier/internal/fabric":
			filters[dettaint.Analyzer.Name] = fabricDeterministicFile
		default:
			filters[dettaint.Analyzer.Name] = func(string) bool { return false }
		}
	}
	return out, filters
}

// Check runs the applicable analyzers over one loaded package and
// applies //lint:allow suppressions. The returned diagnostics are the
// unsuppressed findings plus any malformed-directive findings. Facts
// are confined to the one package; multi-package drivers use
// CheckFacts with a shared store.
func Check(pkg *analysis.Package) ([]analysis.Diagnostic, error) {
	return CheckFacts(pkg, analysis.NewFactStore())
}

// CheckFacts is Check with an explicit fact store. A driver analyzing
// packages in dependency order passes the same store for all of them,
// so facts exported from a dependency (fieldcover's access sets,
// dettaint's sink/ordered classifications) are visible when its
// dependents are analyzed.
func CheckFacts(pkg *analysis.Package, facts *analysis.FactStore) ([]analysis.Diagnostic, error) {
	analyzers, filters := ForPackage(pkg.ImportPath)
	if len(analyzers) == 0 {
		return nil, nil
	}
	diags, err := analysis.RunAnalyzersFacts(pkg, analyzers, analysis.RunConfig{Facts: facts, FileFilters: filters})
	if err != nil {
		return nil, err
	}
	return analysis.ApplySuppressions(pkg.Fset, pkg.Files, diags), nil
}

// RegisterFactTypes registers every suite analyzer's fact types for
// wire decoding — required before seeding a FactStore from .vetx files,
// since decode happens before any analyzer has run.
func RegisterFactTypes() {
	for _, a := range Analyzers {
		for _, f := range a.FactTypes {
			analysis.RegisterFactType(f)
		}
	}
}

// CheckDir runs the ENTIRE suite, unscoped, over a bare directory of Go
// files (a seeded violation fixture under testdata). Suppressions still
// apply, so fixtures can exercise those too.
func CheckDir(dir, moduleRoot string) ([]analysis.Diagnostic, error) {
	pkg, err := analysis.LoadDir(dir, moduleRoot)
	if err != nil {
		return nil, err
	}
	diags, err := analysis.RunAnalyzers(pkg, Analyzers, nil)
	if err != nil {
		return nil, err
	}
	return analysis.ApplySuppressions(pkg.Fset, pkg.Files, diags), nil
}
