// Package fixture is a seeded violation corpus: exactly one finding per
// analyzer in the suite. The simlint acceptance test (and CI) runs the
// full suite over this directory and requires one finding per analyzer
// — if an analyzer regresses into silence, that test fails before any
// real violation can slip through unnoticed.
package fixture

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// segPool has Get calls below but no Put anywhere in the package:
// the poolbalance asymmetry finding.
var segPool = sync.Pool{New: func() any { return new([64]byte) }}

func grab() *[64]byte {
	return segPool.Get().(*[64]byte)
}

func violations(m map[string]int, rtt time.Duration) (time.Time, error) {
	start := time.Now() // wallclock

	n := rand.Intn(6) // globalrand

	for k := range m { // iteration order leaks into output: maprange
		fmt.Println(k, n)
	}

	if rtt > 150*time.Millisecond { // clockarith: magic threshold
		n++
	}

	var err error
	if n > 3 {
		err := fmt.Errorf("n too large: %d", n) // shadow: lost write
		_ = err
	}
	_ = grab()
	return start, err
}

// knob's directive demands cacheKeyOf read every field; cold is left
// out: the fieldcover gap finding.
//
//lint:fieldcover read=cacheKeyOf
type knob struct {
	warm int
	cold int
}

func cacheKeyOf(k knob) int { return k.warm }

// emitKey prints — so it carries a SinkFact — without being one of the
// output calls maprange recognizes locally.
func emitKey(k string) { fmt.Println(k) }

// leakOrder reaches that sink once per map entry: the dettaint
// interprocedural finding (and, deliberately, not a maprange one).
func leakOrder(m map[string]bool) {
	for k := range m {
		emitKey(k)
	}
}
