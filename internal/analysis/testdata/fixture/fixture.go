// Package fixture is a seeded violation corpus: exactly one finding per
// analyzer in the suite. The simlint acceptance test (and CI) runs the
// full suite over this directory and requires all six findings — if an
// analyzer regresses into silence, that test fails before any real
// violation can slip through unnoticed.
package fixture

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// segPool has Get calls below but no Put anywhere in the package:
// the poolbalance asymmetry finding.
var segPool = sync.Pool{New: func() any { return new([64]byte) }}

func grab() *[64]byte {
	return segPool.Get().(*[64]byte)
}

func violations(m map[string]int, rtt time.Duration) (time.Time, error) {
	start := time.Now() // wallclock

	n := rand.Intn(6) // globalrand

	for k := range m { // iteration order leaks into output: maprange
		fmt.Println(k, n)
	}

	if rtt > 150*time.Millisecond { // clockarith: magic threshold
		n++
	}

	var err error
	if n > 3 {
		err := fmt.Errorf("n too large: %d", n) // shadow: lost write
		_ = err
	}
	_ = grab()
	return start, err
}
