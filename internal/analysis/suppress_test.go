package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"spdier/internal/analysis"
)

// apply parses src as test.go and filters diags through its directives.
func apply(t *testing.T, src string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analysis.ApplySuppressions(fset, []*ast.File{f}, diags)
}

func diag(line int, analyzer, msg string) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:      token.Position{Filename: "test.go", Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestTrailingDirectiveSuppressesOwnLine(t *testing.T) {
	src := `package p

func f() {
	g() //lint:allow wallclock startup banner, outside the simulated clock
}

func g() {}
`
	out := apply(t, src, []analysis.Diagnostic{diag(4, "wallclock", "time.Now ...")})
	if len(out) != 0 {
		t.Fatalf("want finding suppressed, got %v", out)
	}
}

func TestOwnLineDirectiveShieldsNextLine(t *testing.T) {
	src := `package p

func f() {
	//lint:allow wallclock startup banner, outside the simulated clock
	g()
}

func g() {}
`
	out := apply(t, src, []analysis.Diagnostic{diag(5, "wallclock", "time.Now ...")})
	if len(out) != 0 {
		t.Fatalf("want finding suppressed, got %v", out)
	}
}

func TestDirectiveWithoutReasonIsRejected(t *testing.T) {
	src := `package p

func f() {
	g() //lint:allow wallclock
}

func g() {}
`
	out := apply(t, src, []analysis.Diagnostic{diag(4, "wallclock", "time.Now ...")})
	// The broken directive must surface AND must not suppress anything.
	var sawDirective, sawOriginal bool
	for _, d := range out {
		switch d.Analyzer {
		case analysis.DirectiveAnalyzerName:
			sawDirective = true
			if !strings.Contains(d.Message, "reason") {
				t.Errorf("directive diagnostic does not mention the missing reason: %q", d.Message)
			}
		case "wallclock":
			sawOriginal = true
		}
	}
	if !sawDirective {
		t.Errorf("reasonless //lint:allow produced no %s diagnostic: %v", analysis.DirectiveAnalyzerName, out)
	}
	if !sawOriginal {
		t.Errorf("reasonless //lint:allow suppressed the finding anyway: %v", out)
	}
}

func TestDirectiveWithoutAnalyzerIsRejected(t *testing.T) {
	src := `package p

func f() {
	//lint:allow
	g()
}

func g() {}
`
	out := apply(t, src, nil)
	if len(out) != 1 || out[0].Analyzer != analysis.DirectiveAnalyzerName {
		t.Fatalf("want one %s diagnostic, got %v", analysis.DirectiveAnalyzerName, out)
	}
}

func TestDirectiveForOtherAnalyzerDoesNotSuppress(t *testing.T) {
	src := `package p

func f() {
	g() //lint:allow globalrand wrong analyzer named here
}

func g() {}
`
	out := apply(t, src, []analysis.Diagnostic{diag(4, "wallclock", "time.Now ...")})
	if len(out) != 1 || out[0].Analyzer != "wallclock" {
		t.Fatalf("want the wallclock finding to survive, got %v", out)
	}
}

func TestTrailingDirectiveDoesNotShieldNextLine(t *testing.T) {
	src := `package p

func f() {
	g() //lint:allow wallclock covers this line only
	g()
}

func g() {}
`
	out := apply(t, src, []analysis.Diagnostic{diag(5, "wallclock", "time.Now ...")})
	if len(out) != 1 {
		t.Fatalf("want the next-line finding to survive a trailing directive, got %v", out)
	}
}
