package globalrand_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, "globalrand")
}
