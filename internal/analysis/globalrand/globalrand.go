// Package globalrand forbids the process-global math/rand generator in
// the deterministic simulation core. Global-source draws are shared
// mutable state: two sweep runs scheduled on different goroutines
// interleave their draws differently on every execution, so results
// stop being a function of the root seed. The simulator's own
// sim.RNG (seedable, forkable, allocation-free) is the replacement;
// an explicitly seeded rand.New(rand.NewSource(seed)) is tolerated
// because it is still a pure function of its seed.
package globalrand

import (
	"go/ast"

	"spdier/internal/analysis"
)

// Analyzer is the globalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand global-source functions and unseeded rand.New in the deterministic core; " +
		"randomness must come from the seeded, forkable sim.RNG",
	Run: run,
}

// randPkgs are the package paths whose global generator is banned.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// allowed names are constructors of explicit, locally owned generators;
// everything else exported from math/rand that is callable draws from
// (or perturbs) the shared global source.
var allowed = map[string]bool{
	"New":        true, // checked separately for an explicit source
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand: the caller already owns a source
	"NewPCG":     true, // math/rand/v2 explicit sources
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, isPkgFn := analysis.PkgFuncCall(pass.TypesInfo, call)
			if !isPkgFn || !randPkgs[pkgPath] {
				return true
			}
			switch {
			case name == "New":
				if !hasExplicitSource(pass, call) {
					pass.Reportf(call.Pos(), "rand.New without an explicit rand.NewSource(seed) argument; use the seeded sim.RNG (or rand.New(rand.NewSource(seed)))")
				}
			case !allowed[name]:
				pass.Reportf(call.Pos(), "rand.%s uses the process-global math/rand source, which is not reproducible from a seed; use the seeded sim.RNG", name)
			}
			return true
		})
	}
	return nil
}

// hasExplicitSource reports whether a rand.New call is given a source
// constructed in place from a seed — rand.New(rand.NewSource(x)) or the
// v2 equivalents — rather than some ambient source value.
func hasExplicitSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, isCall := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !isCall {
		return false
	}
	pkgPath, name, isPkgFn := analysis.PkgFuncCall(pass.TypesInfo, inner)
	if !isPkgFn || !randPkgs[pkgPath] {
		return false
	}
	return name == "NewSource" || name == "NewPCG" || name == "NewChaCha8"
}
