// Package globalrand exercises global-source draws (banned) against
// explicitly seeded generators (allowed).
package globalrand

import "math/rand"

func bad() int {
	n := rand.Intn(10)                 // want `rand\.Intn uses the process-global`
	f := rand.Float64()                // want `rand\.Float64 uses the process-global`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle uses the process-global`
	return n + int(f)
}

// badNew: a generator built from an ambient source value is not
// traceable to a seed at the construction site.
func badNew(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand\.New without an explicit rand\.NewSource`
}

// goodSeeded: rand.New(rand.NewSource(seed)) is a pure function of its
// seed and stays legal (test helpers use it).
func goodSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// goodMethods: draws on an owned generator are fine — the determinism
// question was settled at construction.
func goodMethods(rng *rand.Rand) int {
	return rng.Intn(10)
}
