// Package clockarith flags time.Duration comparisons against inline
// numeric literals in probe/report code. A threshold like
// `rtt > 200*time.Millisecond` buried in a report renderer is a magic
// number two ways: the next reader cannot tell whether 200 ms is the
// paper's figure, a display cutoff or a typo, and two call sites can
// silently diverge. Thresholds must be named constants; comparisons
// against 0 (sign tests) and against other named values are fine.
package clockarith

import (
	"go/ast"
	"go/token"
	"go/types"

	"spdier/internal/analysis"
)

// Analyzer is the clockarith check.
var Analyzer = &analysis.Analyzer{
	Name: "clockarith",
	Doc: "flag time.Duration comparisons against inline literals in probe/report code; " +
		"thresholds must be named constants",
	Run: run,
}

var compareOps = map[token.Token]bool{
	token.LSS: true, token.GTR: true, token.LEQ: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, isBin := n.(*ast.BinaryExpr)
			if !isBin || !compareOps[bin.Op] {
				return true
			}
			if !isDuration(pass, bin.X) && !isDuration(pass, bin.Y) {
				return true
			}
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				if lit := inlineLiteral(pass, side); lit != nil {
					pass.Reportf(bin.Pos(), "time.Duration compared against inline literal %s; name this threshold as a constant", types.ExprString(ast.Unparen(side)))
					return true
				}
			}
			return true
		})
	}
	return nil
}

func isDuration(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	return t != nil && analysis.IsNamedType(t, "time", "Duration")
}

// inlineLiteral returns a numeric literal inside a constant comparison
// operand that is not merely 0 (sign/emptiness tests are idiomatic) and
// is not hidden behind a named constant. `500 * time.Millisecond` and
// `time.Duration(30e9)` report their literal; `maxRTO`, `time.Second`
// and `0` do not.
func inlineLiteral(pass *analysis.Pass, e ast.Expr) *ast.BasicLit {
	tv, known := pass.TypesInfo.Types[e]
	if !known || tv.Value == nil {
		return nil // not a constant expression at all
	}
	var found *ast.BasicLit
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch lit := n.(type) {
		case *ast.BasicLit:
			if (lit.Kind == token.INT || lit.Kind == token.FLOAT) && lit.Value != "0" {
				found = lit
			}
		}
		return true
	})
	return found
}
