// Package clockarith exercises duration-vs-literal comparisons
// (flagged) against named constants and sign tests (allowed).
package clockarith

import "time"

const slowThreshold = 200 * time.Millisecond

func classify(rtt time.Duration) string {
	if rtt > 200*time.Millisecond { // want `compared against inline literal`
		return "slow"
	}
	if time.Duration(250000) < rtt { // want `compared against inline literal`
		return "odd"
	}
	if rtt > slowThreshold { // named constant: fine
		return "slow"
	}
	if rtt <= 0 { // sign test: fine
		return "invalid"
	}
	if rtt == time.Second { // named unit with no literal: fine
		return "exact"
	}
	if rtt < otherDeadline() { // non-constant operand: fine
		return "soon"
	}
	return "fast"
}

func otherDeadline() time.Duration { return slowThreshold * 2 }
