package clockarith_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/clockarith"
)

func TestClockArith(t *testing.T) {
	analysistest.Run(t, clockarith.Analyzer, "clockarith")
}
