package analysis

import (
	"bytes"
	"go/token"
	"go/types"
	"testing"
)

// testFact is a registered fact type for the round-trip tests.
type testFact struct {
	Fields []string `json:"fields"`
	N      int      `json:"n"`
}

func (*testFact) AFact() {}

// otherFact exists to prove facts of different types on one object
// don't collide.
type otherFact struct {
	Tainted bool `json:"tainted"`
}

func (*otherFact) AFact() {}

func init() {
	RegisterFactType(&testFact{})
	RegisterFactType(&otherFact{})
}

// fakePkg builds a types.Package with one package-level var V, one
// func F, and one method T.M, without invoking the go tool.
func fakePkg(path string) (*types.Package, types.Object, types.Object, types.Object) {
	pkg := types.NewPackage(path, "p")
	v := types.NewVar(token.NoPos, pkg, "V", types.Typ[types.Int])
	pkg.Scope().Insert(v)
	f := types.NewFunc(token.NoPos, pkg, "F", types.NewSignatureType(nil, nil, nil, nil, nil, false))
	pkg.Scope().Insert(f)
	tn := types.NewTypeName(token.NoPos, pkg, "T", nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	pkg.Scope().Insert(tn)
	recv := types.NewVar(token.NoPos, pkg, "r", types.NewPointer(named))
	m := types.NewFunc(token.NoPos, pkg, "M", types.NewSignatureType(recv, nil, nil, nil, nil, false))
	return pkg, v, f, m
}

func passFor(pkg *types.Package, store *FactStore) *Pass {
	return &Pass{Analyzer: &Analyzer{Name: "testan"}, Pkg: pkg, facts: store}
}

func TestObjectPath(t *testing.T) {
	pkg, v, f, m := fakePkg("example.com/p")
	for _, tc := range []struct {
		obj  types.Object
		want string
	}{
		{v, "V"},
		{f, "F"},
		{m, "T.M"},
	} {
		got, ok := ObjectPath(tc.obj)
		if !ok || got != tc.want {
			t.Errorf("ObjectPath(%v) = %q, %v; want %q, true", tc.obj, got, ok, tc.want)
		}
	}
	local := types.NewVar(token.NoPos, pkg, "local", types.Typ[types.Int]) // never inserted into package scope
	if _, ok := ObjectPath(local); ok {
		t.Error("ObjectPath accepted a non-package-scope object")
	}
}

func TestFactRoundTripInMemory(t *testing.T) {
	pkg, v, _, m := fakePkg("example.com/p")
	store := NewFactStore()
	p := passFor(pkg, store)

	p.ExportObjectFact(v, &testFact{Fields: []string{"A", "B"}, N: 2})
	p.ExportObjectFact(m, &testFact{Fields: []string{"C"}, N: 1})
	p.ExportObjectFact(m, &otherFact{Tainted: true})
	p.ExportPackageFact(&testFact{N: 99})

	var got testFact
	if !p.ImportObjectFact(v, &got) || got.N != 2 || len(got.Fields) != 2 {
		t.Fatalf("ImportObjectFact(V) = %+v, want fields [A B]", got)
	}
	// Mutating the imported copy must not leak back into the store.
	got.Fields[0] = "MUTATED"
	var again testFact
	if !p.ImportObjectFact(v, &again) || again.Fields[0] != "A" {
		t.Fatalf("imported fact aliases store contents: %+v", again)
	}
	var mf testFact
	if !p.ImportObjectFact(m, &mf) || mf.Fields[0] != "C" {
		t.Fatalf("ImportObjectFact(T.M) = %+v", mf)
	}
	var of otherFact
	if !p.ImportObjectFact(m, &of) || !of.Tainted {
		t.Fatalf("ImportObjectFact(T.M, otherFact) = %+v", of)
	}
	var pf testFact
	if !p.ImportPackageFact(pkg, &pf) || pf.N != 99 {
		t.Fatalf("ImportPackageFact = %+v", pf)
	}
	var missing testFact
	if p.ImportObjectFact(types.NewVar(token.NoPos, pkg, "W", types.Typ[types.Int]), &missing) {
		t.Error("ImportObjectFact found a fact for an object with none")
	}
}

func TestFactEncodeDecodeRoundTrip(t *testing.T) {
	pkg, v, f, m := fakePkg("example.com/p")
	store := NewFactStore()
	p := passFor(pkg, store)
	p.ExportObjectFact(v, &testFact{Fields: []string{"A"}, N: 1})
	p.ExportObjectFact(f, &otherFact{Tainted: true})
	p.ExportObjectFact(m, &testFact{Fields: []string{"X", "Y"}, N: 7})
	p.ExportPackageFact(&otherFact{Tainted: true})

	data, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewFactStore()
	if err := fresh.Decode(data); err != nil {
		t.Fatal(err)
	}
	p2 := passFor(pkg, fresh)
	var got testFact
	if !p2.ImportObjectFact(m, &got) || got.N != 7 || got.Fields[1] != "Y" {
		t.Fatalf("after decode, ImportObjectFact(T.M) = %+v", got)
	}
	var of otherFact
	if !p2.ImportObjectFact(f, &of) || !of.Tainted {
		t.Fatalf("after decode, ImportObjectFact(F) = %+v", of)
	}
	var pf otherFact
	if !p2.ImportPackageFact(pkg, &pf) || !pf.Tainted {
		t.Fatalf("after decode, ImportPackageFact = %+v", pf)
	}

	// Re-encoding the decoded store reproduces the bytes: the wire
	// format is deterministic, which the vet cache depends on.
	data2, err := fresh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("encode not deterministic:\n%s\nvs\n%s", data, data2)
	}
}

func TestFactDecodeToleratesForeignContent(t *testing.T) {
	for _, tc := range []string{
		"",
		"simlint: no facts\n",            // the pre-facts placeholder vetx
		"\x00\x01binary garbage",         // arbitrary vetx from another tool
		`{"some":"other json"}`,          // JSON without the magic
		`{"simlintFacts":"wrong-magic"}`, // magic key, wrong value
	} {
		store := NewFactStore()
		if err := store.Decode([]byte(tc)); err != nil {
			t.Errorf("Decode(%q) = %v, want nil (ignored)", tc, err)
		}
		if len(store.facts) != 0 {
			t.Errorf("Decode(%q) populated the store", tc)
		}
	}
}

func TestFactDecodeSkipsUnregisteredTypes(t *testing.T) {
	data := []byte(`{"simlintFacts":"simlint-facts","v":1,"facts":[` +
		`{"a":"gone","pkg":"example.com/p","obj":"V","t":"gone.RetiredFact","d":{}},` +
		`{"a":"testan","pkg":"example.com/p","obj":"V","t":"analysis.testFact","d":{"fields":["A"],"n":1}}]}`)
	store := NewFactStore()
	if err := store.Decode(data); err != nil {
		t.Fatal(err)
	}
	pkg, v, _, _ := fakePkg("example.com/p")
	var got testFact
	if !passFor(pkg, store).ImportObjectFact(v, &got) || got.N != 1 {
		t.Fatalf("registered fact lost alongside the unregistered one: %+v", got)
	}
	if len(store.facts) != 1 {
		t.Errorf("store has %d facts, want 1 (retired type skipped)", len(store.facts))
	}
}

func TestRunConfigFactsNilIsNoop(t *testing.T) {
	pkg, v, _, _ := fakePkg("example.com/p")
	p := passFor(pkg, nil)
	p.ExportObjectFact(v, &testFact{N: 5}) // must not panic
	var got testFact
	if p.ImportObjectFact(v, &got) {
		t.Error("nil-store ImportObjectFact returned true")
	}
}
