// Package shadow is a stdlib-only port of the x/tools `shadow` vet
// check (which the offline build cannot fetch). It reports an inner
// `:=` or var declaration that reuses the name of a variable from an
// enclosing scope in the same function when the outer variable is still
// used after the inner scope closes and both have the same type — the
// pattern where `err := ...` inside a block silently stops updating the
// `err` the function returns. Shadows whose outer variable is never
// touched again are deliberate narrowing and stay quiet.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"spdier/internal/analysis"
)

// Analyzer is the shadow check.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc: "report declarations that shadow a same-typed variable from an enclosing scope which is " +
		"still used after the inner scope ends",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		inits := initStatements(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				// `if err := f(); ...` / `for i := 0; ...`: the declared
				// variable cannot outlive the statement it initializes, so
				// the shadow is self-contained and idiomatic.
				if stmt.Tok == token.DEFINE && !inits[stmt] {
					for _, lhs := range stmt.Lhs {
						if id, isID := lhs.(*ast.Ident); isID {
							checkShadow(pass, file, id)
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range stmt.Specs {
					if vs, isVS := spec.(*ast.ValueSpec); isVS {
						for _, id := range vs.Names {
							checkShadow(pass, file, id)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// initStatements collects the Init statements of if/for/switch — their
// declarations are scoped to the statement by construction.
func initStatements(file *ast.File) map[ast.Stmt]bool {
	out := map[ast.Stmt]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				out[s.Init] = true
			}
		case *ast.ForStmt:
			if s.Init != nil {
				out[s.Init] = true
			}
		case *ast.SwitchStmt:
			if s.Init != nil {
				out[s.Init] = true
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				out[s.Init] = true
			}
		}
		return true
	})
	return out
}

func checkShadow(pass *analysis.Pass, file *ast.File, id *ast.Ident) {
	if id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	inner := obj.Parent()
	if inner == nil || inner.Parent() == nil {
		return
	}
	// Look the name up from just above the inner declaration's scope.
	_, outerObj := inner.Parent().LookupParent(id.Name, obj.Pos())
	outer, isVar := outerObj.(*types.Var)
	if !isVar || outer == obj {
		return
	}
	// Only intra-function shadows: the outer variable must be local
	// (file-scope/package-scope globals are a different discussion) and
	// declared before the inner one.
	if outer.Parent() == nil || outer.Parent() == pass.Pkg.Scope() || outer.Parent() == types.Universe {
		return
	}
	if outer.Pos() >= obj.Pos() {
		return
	}
	if !types.Identical(outer.Type(), obj.Type()) {
		return
	}
	// The bug signature: the outer variable is used again after the
	// shadowing scope has ended, so a write meant for it was lost.
	if !usedAfter(pass, file, outer, inner.End()) {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows a same-typed variable at line %d that is used after this scope ends",
		id.Name, pass.Fset.Position(outer.Pos()).Line)
}

func usedAfter(pass *analysis.Pass, file *ast.File, obj types.Object, pos token.Pos) bool {
	used := false
	ast.Inspect(file, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, isID := n.(*ast.Ident); isID && id.Pos() > pos && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
