// Package shadow exercises lost-write shadows (flagged) against
// init-statement scoping and deliberate narrowing (allowed).
package shadow

import "errors"

func step() error { return nil }

// lostWrite is the bug signature: the inner := was almost certainly
// meant to be =, and the outer err the function returns never sees the
// failure.
func lostWrite(fail bool) error {
	var err error
	if fail {
		err := errors.New("boom") // want `declaration of "err" shadows`
		_ = err
	}
	return err
}

// initScoped: declarations in if/for/switch init clauses cannot outlive
// their statement — idiomatic, silent.
func initScoped() error {
	var err error
	if err := step(); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if err := step(); err != nil {
			return err
		}
	}
	return err
}

// narrowing: the outer x is never used after the inner scope, so the
// shadow cannot lose a write anyone reads.
func narrowing(flip bool) int {
	x := 1
	y := x
	if flip {
		x := 2
		y += x
	}
	return y
}

// differentType: same name, different type — a rebinding, not a lost
// write.
func differentType(s string) int {
	n := len(s)
	{
		n := "inner"
		_ = n
	}
	return n
}
