package shadow_test

import (
	"testing"

	"spdier/internal/analysis/analysistest"
	"spdier/internal/analysis/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, shadow.Analyzer, "shadow")
}
