package webpage

import (
	"testing"
	"testing/quick"

	"spdier/internal/sim"
)

func TestTable1HasTwentySites(t *testing.T) {
	specs := Table1()
	if len(specs) != 20 {
		t.Fatalf("%d sites", len(specs))
	}
	for i, s := range specs {
		if s.Index != i+1 {
			t.Fatalf("site %d has index %d", i, s.Index)
		}
		if s.TotalObjs <= 0 || s.AvgSizeKB <= 0 || s.Domains < 1 {
			t.Fatalf("site %d degenerate: %+v", i, s)
		}
	}
	// Spot-check published values.
	if specs[8].TotalObjs != 5.1 || specs[14].TotalObjs != 323.0 {
		t.Fatal("published counts corrupted")
	}
	if specs[16].AvgSizeKB != 4691.3 {
		t.Fatal("published size corrupted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Table1()[6]
	a := Generate(spec, sim.NewRNG(99))
	b := Generate(spec, sim.NewRNG(99))
	if len(a.Objects) != len(b.Objects) || a.TotalBytes() != b.TotalBytes() {
		t.Fatal("same seed produced different pages")
	}
	for i := range a.Objects {
		if *a.Objects[i] != *b.Objects[i] {
			t.Fatalf("object %d differs", i)
		}
	}
}

func TestGenerateMatchesMarginals(t *testing.T) {
	for _, spec := range Table1() {
		var objs, kb, doms float64
		const runs = 8
		for s := uint64(0); s < runs; s++ {
			p := Generate(spec, sim.NewRNG(s))
			objs += float64(len(p.Objects))
			kb += float64(p.TotalBytes()) / 1024
			doms += float64(len(p.Domains()))
		}
		objs, kb, doms = objs/runs, kb/runs, doms/runs
		if objs < spec.TotalObjs*0.85 || objs > spec.TotalObjs*1.15 {
			t.Errorf("site %d: objects %.1f vs published %.1f", spec.Index, objs, spec.TotalObjs)
		}
		if kb < spec.AvgSizeKB*0.8 || kb > spec.AvgSizeKB*1.2 {
			t.Errorf("site %d: weight %.0fKB vs published %.0fKB", spec.Index, kb, spec.AvgSizeKB)
		}
		want := float64(int(spec.Domains + 0.5))
		if doms != want && spec.Domains >= 1 {
			t.Errorf("site %d: domains %.1f vs %.1f", spec.Index, doms, want)
		}
	}
}

func TestDependencyGraphWellFormed(t *testing.T) {
	check := func(seed uint64, idx uint8) bool {
		spec := Table1()[int(idx)%20]
		p := Generate(spec, sim.NewRNG(seed))
		if p.Main().ID != 0 || p.Main().Parent != -1 || p.Main().Wave != 0 {
			return false
		}
		byID := map[int]*Object{}
		for _, o := range p.Objects {
			byID[o.ID] = o
		}
		for _, o := range p.Objects[1:] {
			parent, ok := byID[o.Parent]
			if !ok {
				return false // dangling parent
			}
			if parent.Wave != o.Wave-1 {
				return false // waves must step by one
			}
			// Only documents, scripts and stylesheets reveal children.
			if parent.Kind != KindHTML && parent.Kind != KindJS && parent.Kind != KindCSS {
				return false
			}
			if o.Size <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenConsistentWithParents(t *testing.T) {
	p := Generate(Table1()[14], sim.NewRNG(3)) // the 323-object site
	total := 0
	for _, o := range p.Objects {
		for _, c := range p.Children(o.ID) {
			if c.Parent != o.ID {
				t.Fatalf("child %d claims parent %d, found under %d", c.ID, c.Parent, o.ID)
			}
			total++
		}
	}
	if total != len(p.Objects)-1 {
		t.Fatalf("children sum %d, want %d", total, len(p.Objects)-1)
	}
}

func TestScriptHeavySitesRunDeeper(t *testing.T) {
	light := Generate(Table1()[8], sim.NewRNG(1))  // 5-object shopping page
	heavy := Generate(Table1()[14], sim.NewRNG(1)) // 73 scripts news page
	if heavy.MaxWave() <= light.MaxWave() {
		t.Fatalf("script-heavy page not deeper: %d vs %d", heavy.MaxWave(), light.MaxWave())
	}
}

func TestCountKind(t *testing.T) {
	p := Generate(Table1()[0], sim.NewRNG(5))
	sum := p.CountKind(KindHTML) + p.CountKind(KindJS) + p.CountKind(KindCSS) +
		p.CountKind(KindImg) + p.CountKind(KindText)
	if sum != len(p.Objects) {
		t.Fatalf("kind counts %d != %d objects", sum, len(p.Objects))
	}
	if p.CountKind(KindHTML) < 1 {
		t.Fatal("no HTML document")
	}
}

func TestProcessingDelaysOnlyOnScriptsAndSheets(t *testing.T) {
	p := Generate(Table1()[13], sim.NewRNG(9))
	for _, o := range p.Objects {
		switch o.Kind {
		case KindImg, KindText:
			if o.ProcessingDelay != 0 {
				t.Fatalf("object %d (%s) has processing delay", o.ID, o.Kind)
			}
		case KindJS:
			if o.ProcessingDelay <= 0 {
				t.Fatalf("script %d has no processing delay", o.ID)
			}
		}
	}
}

func TestTestPages(t *testing.T) {
	same := TestPage(true)
	diff := TestPage(false)
	for _, p := range []*Page{same, diff} {
		if len(p.Objects) != 51 {
			t.Fatalf("%s: %d objects", p.Name, len(p.Objects))
		}
		if p.MaxWave() != 1 {
			t.Fatalf("%s: interdependencies present (wave %d)", p.Name, p.MaxWave())
		}
		for _, o := range p.Objects[1:] {
			if o.Parent != 0 || o.Kind != KindImg || o.Size != 60<<10 {
				t.Fatalf("%s: object %+v", p.Name, o)
			}
		}
	}
	if n := len(same.Domains()); n != 1 {
		t.Fatalf("same-domain page has %d domains", n)
	}
	if n := len(diff.Domains()); n != 51 {
		t.Fatalf("different-domain page has %d domains", n)
	}
}
