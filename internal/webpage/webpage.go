// Package webpage models web pages as the browser sees them: a main HTML
// document plus objects (scripts, stylesheets, images, text) spread
// across domains, with the dependency structure that controls *when* the
// browser can discover each object.
//
// The catalog reproduces Table 1 of the paper: the 20 most-requested
// full-site pages among top Alexa sites as measured by the authors, with
// per-site average object counts, page weight, domain spread and
// script/stylesheet intensity. Pages are generated deterministically
// from those marginals plus a seed.
package webpage

import (
	"fmt"

	"spdier/internal/sim"
)

// Kind classifies an object for priority and dependency purposes.
type Kind string

// Object kinds.
const (
	KindHTML Kind = "html"
	KindJS   Kind = "js"
	KindCSS  Kind = "css"
	KindText Kind = "text" // XHR, JSON, tracking beacons
	KindImg  Kind = "img"
)

// Object is one fetchable resource of a page.
type Object struct {
	ID     int
	Kind   Kind
	Size   int    // response body bytes
	Domain string // fully qualified host
	Path   string

	// Parent is the object whose processing reveals this one (-1 for
	// the main document itself). Wave is the discovery depth: the main
	// document is wave 0, objects referenced by it are wave 1, objects
	// referenced by wave-1 scripts/stylesheets are wave 2, and so on.
	// This is the stepping Figure 6 observes in SPDY request times.
	Parent int
	Wave   int

	// ProcessingDelay models parse/execute time after download before
	// this object can reveal children (scripts are processed
	// sequentially by the browser; see §5.2).
	ProcessingDelay sim.Time
}

// Page is a complete synthetic web page.
type Page struct {
	Name     string
	Category string
	Objects  []*Object // Objects[0] is always the main HTML document
}

// Main returns the root HTML document.
func (p *Page) Main() *Object { return p.Objects[0] }

// TotalBytes sums all object sizes.
func (p *Page) TotalBytes() int {
	t := 0
	for _, o := range p.Objects {
		t += o.Size
	}
	return t
}

// Domains returns the distinct domains in first-seen order.
func (p *Page) Domains() []string {
	seen := make(map[string]bool)
	var out []string
	for _, o := range p.Objects {
		if !seen[o.Domain] {
			seen[o.Domain] = true
			out = append(out, o.Domain)
		}
	}
	return out
}

// CountKind returns the number of objects of the given kind.
func (p *Page) CountKind(k Kind) int {
	n := 0
	for _, o := range p.Objects {
		if o.Kind == k {
			n++
		}
	}
	return n
}

// MaxWave returns the deepest discovery wave.
func (p *Page) MaxWave() int {
	m := 0
	for _, o := range p.Objects {
		if o.Wave > m {
			m = o.Wave
		}
	}
	return m
}

// Children returns the objects revealed by processing object id.
func (p *Page) Children(id int) []*Object {
	var out []*Object
	for _, o := range p.Objects {
		if o.Parent == id {
			out = append(out, o)
		}
	}
	return out
}

// SiteSpec is one row of Table 1.
type SiteSpec struct {
	Index     int
	Category  string
	TotalObjs float64 // average object count including the home page
	AvgSizeKB float64 // average total page weight in KB
	Domains   float64 // average distinct domains
	TextObjs  float64 // average text objects (HTML/XHR/JSON)
	JSCSS     float64 // average scripts + stylesheets
	ImgsOther float64 // average images and other objects
}

// Table1 returns the characteristics of the 20 tested websites exactly
// as published in Table 1 of the paper.
func Table1() []SiteSpec {
	return []SiteSpec{
		{1, "Finance", 134.8, 626.9, 37.6, 28.6, 41.3, 64.9},
		{2, "Entertainment", 160.6, 2197.3, 36.3, 16.5, 28.0, 116.1},
		{3, "Shopping", 143.8, 1563.1, 15.8, 13.3, 36.8, 93.7},
		{4, "Portal", 121.6, 963.3, 27.5, 9.6, 18.3, 93.7},
		{5, "Technology", 45.2, 602.8, 3.0, 2.0, 18.0, 25.2},
		{6, "ISP", 163.4, 1594.5, 13.2, 13.2, 36.4, 113.8},
		{7, "News", 115.8, 1130.6, 28.5, 9.1, 49.5, 57.2},
		{8, "News", 157.7, 1184.5, 27.3, 29.6, 28.3, 99.8},
		{9, "Shopping", 5.1, 56.2, 2.0, 3.1, 2.0, 0.0},
		{10, "Auction", 59.3, 719.7, 17.9, 6.8, 7.0, 45.5},
		{11, "Online Radio", 122.1, 1489.1, 17.9, 24.1, 21.0, 77.0},
		{12, "Photo Sharing", 29.4, 688.0, 4.0, 2.3, 10.0, 17.1},
		{13, "Technology", 63.4, 895.1, 9.0, 4.1, 15.0, 44.3},
		{14, "Baseball", 167.8, 1130.5, 12.5, 19.5, 94.0, 54.3},
		{15, "News", 323.0, 1722.7, 84.7, 73.4, 73.6, 176.0},
		{16, "Football", 267.1, 2311.0, 75.0, 60.3, 56.9, 149.9},
		{17, "News", 218.5, 4691.3, 37.0, 19.0, 56.3, 143.2},
		{18, "Photo Sharing", 33.6, 1664.8, 9.1, 3.3, 6.7, 23.6},
		{19, "Online Radio", 68.7, 2908.9, 15.5, 5.2, 23.8, 39.7},
		{20, "Weather", 163.2, 1653.8, 48.7, 19.7, 45.3, 98.2},
	}
}

func round(f float64) int {
	n := int(f + 0.5)
	if n < 0 {
		return 0
	}
	return n
}

// Generate builds a page matching spec's marginals. The same spec and
// seed always yield the same page; different runs perturb counts and
// sizes slightly via rng, matching the run-to-run variation the paper
// reports ("numbers are averaged across runs").
func Generate(spec SiteSpec, rng *sim.RNG) *Page {
	jitter := func(f float64) int {
		n := round(f * (0.92 + 0.16*rng.Float64()))
		return n
	}

	nText := jitter(spec.TextObjs)
	nJSCSS := jitter(spec.JSCSS)
	nImg := jitter(spec.ImgsOther)
	if nText < 1 {
		nText = 1 // the main document is a text object
	}
	total := nText + nJSCSS + nImg
	nDomains := round(spec.Domains)
	if nDomains < 1 {
		nDomains = 1
	}

	// Size budget: the main document gets a healthy share, the rest is
	// log-normally spread so a few large images dominate, as real pages do.
	totalBytes := spec.AvgSizeKB * 1024 * (0.92 + 0.16*rng.Float64())
	mainShare := 0.08
	if total < 10 {
		mainShare = 0.4
	}
	mainSize := int(totalBytes * mainShare)
	if mainSize < 4096 {
		mainSize = 4096
	}

	// Domains: primary first, then third parties; object assignment is
	// skewed toward the primary domain like real pages (CDN + trackers).
	domains := make([]string, nDomains)
	domains[0] = fmt.Sprintf("www.site%d.example", spec.Index)
	for i := 1; i < nDomains; i++ {
		domains[i] = fmt.Sprintf("cdn%d.site%d.example", i, spec.Index)
	}
	// Every domain the page "uses" must appear at least once (that is
	// what Table 1's domain counts mean), so the first objects cover the
	// third-party domains and the rest skew toward the primary, like
	// real pages with their CDNs and trackers.
	coverIdx := 0
	pickDomain := func() string {
		if coverIdx < nDomains-1 {
			coverIdx++
			return domains[coverIdx]
		}
		if nDomains == 1 || rng.Bool(0.45) {
			return domains[0]
		}
		return domains[1+rng.Intn(nDomains-1)]
	}

	page := &Page{
		Name:     fmt.Sprintf("site%02d-%s", spec.Index, spec.Category),
		Category: spec.Category,
	}
	main := &Object{
		ID:              0,
		Kind:            KindHTML,
		Size:            mainSize,
		Domain:          domains[0],
		Path:            "/",
		Parent:          -1,
		Wave:            0,
		ProcessingDelay: sim.Time(40 * sim.Millisecond),
	}
	page.Objects = append(page.Objects, main)

	// Build the remaining objects with kinds in a deterministic shuffle.
	kinds := make([]Kind, 0, total-1)
	for i := 0; i < nText-1; i++ {
		kinds = append(kinds, KindText)
	}
	for i := 0; i < nJSCSS; i++ {
		if i%3 == 2 {
			kinds = append(kinds, KindCSS)
		} else {
			kinds = append(kinds, KindJS)
		}
	}
	for i := 0; i < nImg; i++ {
		kinds = append(kinds, KindImg)
	}
	perm := rng.Perm(len(kinds))

	restBytes := totalBytes - float64(mainSize)
	if restBytes < 0 {
		restBytes = 0
	}
	meanObj := restBytes / float64(len(kinds)+1)

	// Dependency structure: JS/CSS objects in earlier waves reveal later
	// waves. Depth scales with script intensity — heavy-scripted pages
	// show more steps in Figure 6.
	maxWave := 2
	if nJSCSS > 20 {
		maxWave = 3
	}
	if nJSCSS > 60 {
		maxWave = 4
	}

	// revealers[w] collects wave-w JS/CSS ids that can parent wave w+1.
	revealers := map[int][]int{0: {0}}

	for i, pi := range perm {
		k := kinds[pi]
		var size int
		switch k {
		case KindImg:
			size = int(rng.LogNorm(meanObj*1.1, 0.9))
		case KindJS, KindCSS:
			size = int(rng.LogNorm(meanObj*0.7, 0.7))
		default:
			size = int(rng.LogNorm(meanObj*0.3, 0.8))
		}
		if size < 120 {
			size = 120
		}
		if size > 1<<21 {
			size = 1 << 21
		}

		// Choose a wave: biased early, deeper for scripted pages.
		wave := 1
		r := rng.Float64()
		switch {
		case r < 0.55:
			wave = 1
		case r < 0.85 && maxWave >= 2:
			wave = 2
		case maxWave >= 3 && r < 0.96:
			wave = 3
		default:
			wave = min(maxWave, 2)
		}
		if wave > maxWave {
			wave = maxWave
		}
		// Parent must be a revealer from the previous wave.
		parents := revealers[wave-1]
		for len(parents) == 0 && wave > 1 {
			wave--
			parents = revealers[wave-1]
		}
		parent := parents[rng.Intn(len(parents))]

		var proc sim.Time
		if k == KindJS {
			proc = sim.Time((5 + sim.Time(rng.Intn(26))) * sim.Millisecond)
		} else if k == KindCSS {
			proc = sim.Time((2 + sim.Time(rng.Intn(9))) * sim.Millisecond)
		}

		o := &Object{
			ID:              i + 1,
			Kind:            k,
			Size:            size,
			Domain:          pickDomain(),
			Path:            fmt.Sprintf("/%s/%d", k, i+1),
			Parent:          parent,
			Wave:            wave,
			ProcessingDelay: proc,
		}
		page.Objects = append(page.Objects, o)
		if (k == KindJS || k == KindCSS) && wave < maxWave {
			revealers[wave] = append(revealers[wave], o.ID)
		}
	}

	// Normalize: the log-normal draws have mean > median, so rescale the
	// non-main objects to land the page on its Table 1 weight budget.
	var drawn float64
	for _, o := range page.Objects[1:] {
		drawn += float64(o.Size)
	}
	if drawn > 0 && restBytes > 0 {
		scale := restBytes / drawn
		for _, o := range page.Objects[1:] {
			o.Size = int(float64(o.Size) * scale)
			if o.Size < 120 {
				o.Size = 120
			}
		}
	}
	return page
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPage builds the §5.2 validation pages: a main HTML document plus
// 50 images with no interdependencies, either all on one domain or each
// on its own domain.
func TestPage(sameDomain bool) *Page {
	name := "testpage-same-domain"
	if !sameDomain {
		name = "testpage-different-domains"
	}
	page := &Page{Name: name, Category: "synthetic"}
	page.Objects = append(page.Objects, &Object{
		ID:              0,
		Kind:            KindHTML,
		Size:            24 << 10,
		Domain:          "test.example",
		Path:            "/",
		Parent:          -1,
		ProcessingDelay: sim.Time(10 * sim.Millisecond),
	})
	for i := 1; i <= 50; i++ {
		domain := "test.example"
		if !sameDomain {
			domain = fmt.Sprintf("d%02d.test.example", i)
		}
		page.Objects = append(page.Objects, &Object{
			ID:     i,
			Kind:   KindImg,
			Size:   60 << 10,
			Domain: domain,
			Path:   fmt.Sprintf("/img/%d.jpg", i),
			Parent: 0,
			Wave:   1,
		})
	}
	return page
}
