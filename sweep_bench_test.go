// Sweep-engine guardrail benchmark. BenchmarkSweep drives the streaming
// sweep path end to end — SweepStream over a real simulated condition —
// and asserts its two contracts before timing anything: sharded-parallel
// merge state bit-identical to serial, and flat memory as the run count
// grows. The headline numbers (runs/sec, peak RSS) go to BENCH_sweep.json
// via TestMain, which CI archives and diffs per commit.
//
//	go test -run '^$' -bench '^BenchmarkSweep$' -benchtime=1x .
package spdier_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"spdier/internal/browser"
	"spdier/internal/experiment"
	"spdier/internal/fabric"
	"spdier/internal/stats"
	"spdier/internal/webpage"
)

// sweepFolder aggregates exactly what the scale experiment does, in
// miniature: mergeable moments plus a quantile sketch over PLTs.
type sweepFolder struct {
	plt  stats.Moments
	pltQ stats.QuantileSketch
}

func newSweepFolder() experiment.Folder { return &sweepFolder{} }

func (f *sweepFolder) Fold(rs *experiment.RunStats) {
	for _, p := range rs.PLTs {
		f.plt.Add(p)
		f.pltQ.Add(p)
	}
}

func (f *sweepFolder) Merge(o experiment.Folder) {
	of := o.(*sweepFolder)
	f.plt.Merge(&of.plt)
	f.pltQ.Merge(&of.pltQ)
}

// peakRSSMB reads VmHWM (peak resident set) from /proc/self/status, in
// MiB; 0 where procfs is unavailable.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmHWM:"); ok {
			kb, _ := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 64)
			return kb / 1024
		}
	}
	return 0
}

func heapAfterGC() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc)
}

func BenchmarkSweep(b *testing.B) {
	const sweepRuns = 32
	sites := webpage.Table1()[:6]
	h := experiment.Harness{Runs: sweepRuns, Seed: 1}
	base := experiment.Options{Mode: browser.ModeHTTP, Network: experiment.NetWiFi, Sites: sites}

	// Guardrail 1 — merge determinism: serial and sharded-parallel
	// SweepStream must produce bit-identical accumulator state.
	serial := experiment.NewRunner(1).SweepStream(h, base, newSweepFolder).(*sweepFolder)
	par := experiment.NewRunner(0).SweepStream(h, base, newSweepFolder).(*sweepFolder)
	if !reflect.DeepEqual(serial, par) {
		b.Fatalf("sharded-parallel SweepStream state differs from serial:\n got %+v\nwant %+v", par, serial)
	}

	// Guardrail 2 — flat memory: quadrupling the run count must not
	// grow the live heap by more than 2× (the streaming engine holds
	// shard accumulators and per-run aggregates, never Results).
	small := experiment.Harness{Runs: sweepRuns / 4, Seed: 1}
	r := experiment.NewRunner(0)
	r.SweepStream(small, base, newSweepFolder)
	heapSmall := heapAfterGC()
	r = experiment.NewRunner(0)
	r.SweepStream(h, base, newSweepFolder)
	heapLarge := heapAfterGC()
	heapRatio := heapLarge / heapSmall
	if heapRatio > 2 {
		b.Fatalf("live heap grew %.2f× from %d to %d runs (%.1f MB -> %.1f MB); streaming sweep should be flat",
			heapRatio, small.Runs, h.Runs, heapSmall/1e6, heapLarge/1e6)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh runner each iteration: no memoized replays, every run
		// simulates.
		experiment.NewRunner(0).SweepStream(h, base, newSweepFolder)
	}
	b.StopTimer()

	runsPerSec := float64(sweepRuns*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(runsPerSec, "runs/s")
	metrics := map[string]float64{
		"runs_per_sec":        runsPerSec,
		"sweep_runs":          sweepRuns,
		"peak_rss_mb":         peakRSSMB(),
		"heap_ratio_8_to_32":  heapRatio,
		"merge_deterministic": 1,
	}
	reportSweep("BenchmarkSweep", metrics)

	// Regression gate: when CI supplies the previous commit's numbers,
	// fail on a >20% runs/sec drop (baselines are hardware-specific, so
	// the gate only runs when the env var is set).
	if path := os.Getenv("SWEEP_BASELINE"); path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			b.Logf("SWEEP_BASELINE unreadable, skipping gate: %v", err)
			return
		}
		var baseline map[string]map[string]float64
		if err := json.Unmarshal(data, &baseline); err != nil {
			b.Logf("SWEEP_BASELINE unparsable, skipping gate: %v", err)
			return
		}
		if want := baseline["BenchmarkSweep"]["runs_per_sec"]; want > 0 && runsPerSec < 0.8*want {
			b.Fatalf("sweep throughput regressed >20%%: %.1f runs/s vs baseline %.1f", runsPerSec, want)
		}
	}
}

// BenchmarkSweepFabric drives the same streaming sweep through the
// multi-process fabric at 1, 2 and 4 worker processes (re-execs of this
// test binary), asserting the merged accumulator state stays
// bit-identical to the in-process engine at every width before timing,
// and records runs/sec per width in BENCH_sweep.json so CI tracks the
// fabric's scaling curve next to the single-process trend line.
//
//	go test -run '^$' -bench '^BenchmarkSweepFabric$' -benchtime=1x .
func BenchmarkSweepFabric(b *testing.B) {
	const sweepRuns = 64 // 4 shards: enough to occupy the widest pool
	sites := webpage.Table1()[:6]
	h := experiment.Harness{Runs: sweepRuns, Seed: 1}
	base := experiment.Options{Mode: browser.ModeHTTP, Network: experiment.NetWiFi, Sites: sites}
	newShard := func() experiment.Folder {
		f, ok := experiment.NewFolder("plt")
		if !ok {
			b.Fatal(`folder "plt" not registered`)
		}
		return f
	}
	want := experiment.NewRunner(1).SweepStream(h, base, newShard)
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}

	metrics := map[string]float64{"sweep_runs": sweepRuns}
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			coord, err := fabric.NewCoordinator(fabric.Config{
				Workers:   workers,
				WorkerCmd: []string{exe},
				WorkerEnv: []string{"SPDYSIM_FABRIC_WORKER=1"},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer coord.Close()

			// Untimed warm-up: spawns the worker pool and asserts the
			// fabric's merge contract at this width.
			r := experiment.NewRunner(0)
			r.SetShardExecutor(coord)
			got := r.SweepStream(h, base, newShard)
			if !reflect.DeepEqual(got, want) {
				b.Fatalf("fabric state at %d workers differs from in-process:\n got %+v\nwant %+v", workers, got, want)
			}
			if coord.Stats().ShardsRemote == 0 {
				b.Fatal("no shards went to worker processes; fabric silently fell back in-process")
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := experiment.NewRunner(0)
				r.SetShardExecutor(coord)
				r.SweepStream(h, base, newShard)
			}
			b.StopTimer()
			rps := float64(sweepRuns*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rps, "runs/s")
			metrics[fmt.Sprintf("workers_%d_runs_per_sec", workers)] = rps
		})
	}
	reportSweep("BenchmarkSweepFabric", metrics)
}
